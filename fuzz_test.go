package indexedrec

// FuzzSolveAgainstOracle drives randomly generated indexed-recurrence
// systems through the hardened parallel solvers and checks every output
// cell against the sequential oracle (core.RunSequential). The property
// under fuzz: the solvers never panic, whenever they succeed they agree
// with the oracle exactly, and a compiled plan (ir.Compile + replay)
// reproduces the direct solve bit for bit. Each input also picks an
// execution configuration — persistent gang vs spawn-per-round,
// monomorphized kernels vs generic dispatch, blocked-scan vs
// pointer-jumping replays of blocked-compiled plans, and the sparse fast
// path vs its dense-expansion fallback — so the equivalence holds across
// every path the hot-path engine can take.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/grid2d"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

// toggleEngine selects the gang, kernel, blocked-scan, and sparse dispatch
// paths from four fuzz seed bits and returns a restore function. The solvers
// must be bit-identical across all sixteen combinations.
func toggleEngine(seed int64) func() {
	prevGang := parallel.SetGangEnabled(seed&1 == 0)
	prevKern := ordinary.SetKernelsEnabled(seed&2 == 0)
	prevBlk := ordinary.SetBlockedEnabled(seed&4 == 0)
	prevGrid := grid2d.SetKernelsEnabled(seed&2 == 0)
	prevSparse := ir.SetSparseEnabled(seed&8 == 0)
	return func() {
		parallel.SetGangEnabled(prevGang)
		ordinary.SetKernelsEnabled(prevKern)
		ordinary.SetBlockedEnabled(prevBlk)
		grid2d.SetKernelsEnabled(prevGrid)
		ir.SetSparseEnabled(prevSparse)
	}
}

func FuzzSolveAgainstOracle(f *testing.F) {
	// Seed corpus: shapes that historically stress the solvers — tiny
	// systems, n ≈ m (dense rewrites), chain-like sparse maps, scatter
	// (non-distinct g with commutative combine), and fib-style GIR fan-in.
	f.Add(int64(1), 8, 8, uint8(0))
	f.Add(int64(2), 1, 1, uint8(0))
	f.Add(int64(3), 64, 200, uint8(0))
	f.Add(int64(4), 100, 30, uint8(1))
	f.Add(int64(5), 16, 64, uint8(1))
	f.Add(int64(6), 32, 32, uint8(2))
	f.Add(int64(7), 2, 300, uint8(2))
	f.Add(int64(8), 500, 499, uint8(0))
	// Long single chains compile to the blocked-scan schedule (m > 256);
	// seed 9 replays it blocked, seed 12 forces the jumping fallback.
	f.Add(int64(9), 512, 511, uint8(3))
	f.Add(int64(12), 512, 511, uint8(3))
	// Sparse-shaped systems (zipfian touched sets in a much larger global
	// array); seed 16 keeps the sparse fast path on, 24 (bit 3 set) forces
	// the dense-expansion fallback, so both halves of the kill switch fuzz.
	f.Add(int64(16), 256, 128, uint8(4))
	f.Add(int64(24), 256, 128, uint8(4))
	f.Add(int64(25), 300, 200, uint8(0))

	f.Fuzz(func(t *testing.T, seed int64, m, n int, kind uint8) {
		if m < 1 || m > 512 || n < 0 || n > 1024 {
			t.Skip("out of budget")
		}
		defer toggleEngine(seed)()
		rng := rand.New(rand.NewSource(seed))
		var s *core.System
		switch kind % 5 {
		case 0:
			s = workload.RandomOrdinary(rng, m, n)
		case 1:
			s = workload.Scatter(rng, n, m)
		case 2:
			s = workload.RandomGIR(rng, m, n)
		case 3:
			// One chain spanning every cell: the shape that selects the
			// blocked-scan schedule once it crosses the length threshold.
			s = workload.Chain(min(n, m-1))
		default:
			// A zipfian touched set scattered over a global array 16x the
			// fuzz budget: the shape the sparse encoding exists for. The
			// dense expansion feeds the oracle; the sparse cross-check
			// below re-compresses it.
			s = workload.SparseZipf(rng, 16*m+2, max(n, 1)).Dense()
		}

		// Commutative, associative, and immune to overflow discrepancies:
		// modular multiplication is safe for both solver families even when
		// a scatter target is combined in a different order than the oracle.
		op := core.MulMod{M: 1_000_003}
		init := workload.InitInt64(rng, s.M, 1_000_000)
		want := core.RunSequential[int64](s, op, init)
		ctx := context.Background()

		if s.Ordinary() && s.GDistinct() {
			res, err := ordinary.SolveCtx[int64](ctx, s, op, init, ordinary.Options{Procs: 4})
			if err != nil {
				t.Fatalf("ordinary.SolveCtx(%v): %v", s, err)
			}
			for i, v := range res.Values {
				if v != want[i] {
					t.Fatalf("ordinary cell %d: parallel %d != sequential %d", i, v, want[i])
				}
			}

			// Compiled-plan equivalence: compiling the system and replaying
			// the plan must be bit-identical to the direct solve, including
			// the schedule cost counters.
			plan, err := ir.Compile(s, ir.CompileOptions{Family: ir.FamilyOrdinary})
			if err != nil {
				t.Fatalf("ir.Compile(ordinary): %v", err)
			}
			prep, err := ir.SolveOrdinaryPlanCtx[int64](ctx, plan, op, init, ir.SolveOptions{Procs: 4})
			if err != nil {
				t.Fatalf("SolveOrdinaryPlanCtx: %v", err)
			}
			for i, v := range prep.Values {
				if v != res.Values[i] {
					t.Fatalf("ordinary plan cell %d: replay %d != direct %d", i, v, res.Values[i])
				}
			}
			// A blocked-scan replay does O(n) combines against the direct
			// solver's O(n log n), so the cost counters only match when the
			// replay actually ran the jumping schedule.
			blockedReplay := plan.Schedule() == "blocked-scan" && seed&4 == 0
			if !blockedReplay && (prep.Rounds != res.Rounds || prep.Combines != res.Combines) {
				t.Fatalf("ordinary plan cost: replay (%d rounds, %d combines) != direct (%d, %d)",
					prep.Rounds, prep.Combines, res.Rounds, res.Combines)
			}

			// IntAdd implements the monomorphized kernel (MulMod does not),
			// so this cross-check is the one that actually drives kernel
			// dispatch when the toggle enables it: direct solve and plan
			// replay must agree bit for bit on whichever path was selected.
			sumDirect, err := ordinary.SolveCtx[int64](ctx, s, ir.IntAdd{}, init, ordinary.Options{Procs: 3})
			if err != nil {
				t.Fatalf("ordinary.SolveCtx(IntAdd): %v", err)
			}
			sumReplay, err := ir.SolveOrdinaryPlanCtx[int64](ctx, plan, ir.IntAdd{}, init, ir.SolveOptions{Procs: 3})
			if err != nil {
				t.Fatalf("SolveOrdinaryPlanCtx(IntAdd): %v", err)
			}
			for i, v := range sumReplay.Values {
				if v != sumDirect.Values[i] {
					t.Fatalf("IntAdd plan cell %d: replay %d != direct %d", i, v, sumDirect.Values[i])
				}
			}
		}

		res, err := gir.SolveCtx[int64](ctx, s, op, init, gir.Options{Procs: 4, MaxExponentBits: 4096})
		if err != nil {
			if errors.Is(err, gir.ErrExponentLimit) {
				t.Skip("path counts beyond cap — acceptable rejection")
			}
			t.Fatalf("gir.SolveCtx: %v", err)
		}
		for i, v := range res.Values {
			if v != want[i] {
				t.Fatalf("gir cell %d: parallel %d != sequential %d", i, v, want[i])
			}
		}

		// Compiled-plan equivalence for the general family: same contract,
		// through the facade's compile + generic replay.
		plan, err := ir.Compile(s, ir.CompileOptions{Family: ir.FamilyGeneral, MaxExponentBits: 4096})
		if err != nil {
			t.Fatalf("ir.Compile(general): %v", err)
		}
		prep, err := ir.SolveGeneralPlanCtx[int64](ctx, plan, op, init, ir.SolveOptions{Procs: 4})
		if err != nil {
			t.Fatalf("SolveGeneralPlanCtx: %v", err)
		}
		for i, v := range prep.Values {
			if v != res.Values[i] {
				t.Fatalf("general plan cell %d: replay %d != direct %d", i, v, res.Values[i])
			}
		}

		// Sparse/dense bit-identity: compress the system and solve the
		// compact form. Whichever route seed bit 3 selected — the compact
		// fast path or the dense-expansion fallback behind the kill switch —
		// every touched cell must reproduce the oracle exactly.
		if s.N > 0 {
			sp, err := ir.CompressSystem(s)
			if err != nil {
				t.Fatalf("ir.CompressSystem: %v", err)
			}
			compact := make([]int64, sp.NumCells())
			for i, c := range sp.Cells {
				compact[i] = init[c]
			}
			if s.Ordinary() && s.GDistinct() {
				sres, err := ir.SolveSparseOrdinaryCtx[int64](ctx, sp, op, compact, ir.SolveOptions{Procs: 4})
				if err != nil {
					t.Fatalf("SolveSparseOrdinaryCtx: %v", err)
				}
				for i, v := range sres.Values {
					if v != want[sp.Cells[i]] {
						t.Fatalf("sparse ordinary compact cell %d (global %d): %d != oracle %d",
							i, sp.Cells[i], v, want[sp.Cells[i]])
					}
				}
			}
			gres, err := ir.SolveSparseGeneralCtx[int64](ctx, sp, op, compact, ir.SolveOptions{Procs: 4, MaxExponentBits: 4096})
			if err != nil {
				t.Fatalf("SolveSparseGeneralCtx: %v", err)
			}
			for i, v := range gres.Values {
				if v != want[sp.Cells[i]] {
					t.Fatalf("sparse general compact cell %d (global %d): %d != oracle %d",
						i, sp.Cells[i], v, want[sp.Cells[i]])
				}
			}
		}
	})
}

// FuzzMoebiusPlanAgainstDirect fuzzes the Möbius/linear families' plan
// equivalence: for random distinct-g systems and random finite
// coefficients, a compiled plan's replay must match the direct solver
// bit for bit — including agreeing on which inputs are rejected
// (ErrNonFinite from a division by zero along a chain). The same contract
// is asserted for the explicit arena replays (including a back-to-back
// second replay on the same arena, proving prime-in-place reuse is stable)
// under fuzz-selected gang and kernel dispatch paths.
func FuzzMoebiusPlanAgainstDirect(f *testing.F) {
	f.Add(int64(1), 8, 8, false)
	f.Add(int64(2), 1, 1, true)
	f.Add(int64(3), 64, 200, false)
	f.Add(int64(4), 300, 120, true)

	f.Fuzz(func(t *testing.T, seed int64, m, n int, full bool) {
		if m < 1 || m > 512 || n < 0 || n > 512 {
			t.Skip("out of budget")
		}
		defer toggleEngine(seed)()
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomOrdinary(rng, m, n) // distinct g, as Möbius requires
		a := make([]float64, s.N)
		b := make([]float64, s.N)
		c := make([]float64, s.N)
		d := make([]float64, s.N)
		for i := 0; i < s.N; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			if full {
				c[i] = rng.NormFloat64() / 8
			}
			d[i] = 1
		}
		x0 := make([]float64, s.M)
		for x := range x0 {
			x0[x] = rng.NormFloat64()
		}
		ctx := context.Background()

		direct, derr := ir.SolveMoebiusCtx(ctx, s.M, s.G, s.F, a, b, c, d, x0, ir.SolveOptions{Procs: 4})
		plan, err := ir.CompileMoebius(s.M, s.G, s.F)
		if err != nil {
			t.Fatalf("ir.CompileMoebius: %v", err)
		}
		replay, rerr := ir.SolveMoebiusPlanCtx(ctx, plan, a, b, c, d, x0, ir.SolveOptions{Procs: 4})
		if (derr == nil) != (rerr == nil) {
			t.Fatalf("error disagreement: direct %v, replay %v", derr, rerr)
		}

		// Explicit arena replays, twice on the same arena: the second run
		// exercises the primed (no init copy) steady state over slots the
		// first replay already dirtied.
		mp, err := moebius.CompilePlan(ctx, s.M, s.G, s.F)
		if err != nil {
			t.Fatalf("moebius.CompilePlan: %v", err)
		}
		ar := mp.NewArena()
		sopt := ordinary.Options{Procs: 4}
		for pass := 1; pass <= 2; pass++ {
			var warm []float64
			var werr error
			if full {
				warm, werr = mp.SolveArenaCtx(ctx, ar, a, b, c, d, x0, sopt)
			} else {
				// c = 0, d = 1 exactly, so the affine fill must reproduce
				// the full solve on these coefficients bit for bit.
				warm, werr = mp.SolveLinearArenaCtx(ctx, ar, a, b, x0, sopt)
			}
			if (derr == nil) != (werr == nil) {
				t.Fatalf("arena pass %d error disagreement: direct %v, arena %v", pass, derr, werr)
			}
			if derr == nil {
				for x, v := range warm {
					if v != direct[x] {
						t.Fatalf("arena pass %d cell %d: arena %v != direct %v", pass, x, v, direct[x])
					}
				}
			}
		}

		if derr != nil {
			if !errors.Is(derr, ir.ErrNonFinite) {
				t.Fatalf("direct solve failed unexpectedly: %v", derr)
			}
			return
		}
		for x, v := range replay {
			if v != direct[x] {
				t.Fatalf("moebius plan cell %d: replay %v != direct %v", x, v, direct[x])
			}
		}
	})
}

// FuzzGrid2DAgainstOracle fuzzes the 2-D grid family: random grids across
// every semiring and term mask must solve identically through the
// sequential row-major oracle, the public facade (compile + wavefront
// replay), and two back-to-back warm replays on an explicit arena — under
// every gang × kernel dispatch combination the toggles select. Errors must
// agree too: when the oracle rejects a solution as non-finite, the
// parallel paths must reject with the same class and name the same cell.
func FuzzGrid2DAgainstOracle(f *testing.F) {
	f.Add(int64(1), 1, 1, uint8(0), uint8(15))
	f.Add(int64(2), 1, 17, uint8(1), uint8(7))
	f.Add(int64(3), 17, 1, uint8(2), uint8(5))
	f.Add(int64(4), 13, 9, uint8(0), uint8(3))
	f.Add(int64(5), 32, 32, uint8(1), uint8(15))
	f.Add(int64(6), 7, 31, uint8(2), uint8(9))
	f.Add(int64(7), 24, 5, uint8(0), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, rows, cols int, ringSel, mask uint8) {
		if rows < 1 || rows > 32 || cols < 1 || cols > 32 {
			t.Skip("grid shape out of fuzz range")
		}
		defer toggleEngine(seed)()
		rng := rand.New(rand.NewSource(seed))
		rings := []string{"affine", "minplus", "maxplus"}
		sys := workload.RandomGrid2D(rng, rows, cols, rings[ringSel%3], mask&15)

		// The oracle operates on the internal system; the wire struct's
		// fields mirror it one for one.
		ring, err := grid2d.RingByName(sys.Semiring)
		if err != nil {
			t.Fatal(err)
		}
		gsys := &grid2d.System{
			Rows: sys.Rows, Cols: sys.Cols, Ring: ring,
			A: sys.A, B: sys.B, D: sys.Diag, C: sys.C,
			North: sys.North, West: sys.West, NW: sys.NorthWest,
		}
		want, wantErr := grid2d.SolveSequential(gsys)

		ctx := context.Background()
		got, gotErr := ir.SolveGrid2DCtx(ctx, sys, ir.SolveOptions{Procs: 4})
		if wantErr != nil {
			if !errors.Is(gotErr, ir.ErrGrid2DNonFinite) || gotErr.Error() != wantErr.Error() {
				t.Fatalf("oracle rejected with %q, facade said %v", wantErr, gotErr)
			}
			return
		}
		if gotErr != nil {
			t.Fatalf("facade failed where the oracle succeeded: %v", gotErr)
		}
		for i, v := range got.Values {
			if v != want.Values[i] {
				t.Fatalf("cell (%d,%d): facade %v != oracle %v", i/cols, i%cols, v, want.Values[i])
			}
		}
		if got.Rounds != rows+cols-1 {
			t.Fatalf("rounds = %d, want %d", got.Rounds, rows+cols-1)
		}

		// Plan replay and two warm arena replays: bit-identical, every time.
		gp, err := grid2d.Compile(ctx, gsys)
		if err != nil {
			t.Fatal(err)
		}
		ar := gp.NewArena()
		for rep := 0; rep < 2; rep++ {
			res, err := ar.SolveCtx(ctx, gsys, 4)
			if err != nil {
				t.Fatalf("arena replay %d: %v", rep, err)
			}
			for i, v := range res.Values {
				if v != want.Values[i] {
					t.Fatalf("arena replay %d cell %d: %v != oracle %v", rep, i, v, want.Values[i])
				}
			}
		}
	})
}
