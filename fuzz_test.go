package indexedrec

// FuzzSolveAgainstOracle drives randomly generated indexed-recurrence
// systems through the hardened parallel solvers and checks every output
// cell against the sequential oracle (core.RunSequential). The property
// under fuzz: the solvers never panic, and whenever they succeed they
// agree with the oracle exactly.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/workload"
)

func FuzzSolveAgainstOracle(f *testing.F) {
	// Seed corpus: shapes that historically stress the solvers — tiny
	// systems, n ≈ m (dense rewrites), chain-like sparse maps, scatter
	// (non-distinct g with commutative combine), and fib-style GIR fan-in.
	f.Add(int64(1), 8, 8, uint8(0))
	f.Add(int64(2), 1, 1, uint8(0))
	f.Add(int64(3), 64, 200, uint8(0))
	f.Add(int64(4), 100, 30, uint8(1))
	f.Add(int64(5), 16, 64, uint8(1))
	f.Add(int64(6), 32, 32, uint8(2))
	f.Add(int64(7), 2, 300, uint8(2))
	f.Add(int64(8), 500, 499, uint8(0))

	f.Fuzz(func(t *testing.T, seed int64, m, n int, kind uint8) {
		if m < 1 || m > 512 || n < 0 || n > 1024 {
			t.Skip("out of budget")
		}
		rng := rand.New(rand.NewSource(seed))
		var s *core.System
		switch kind % 3 {
		case 0:
			s = workload.RandomOrdinary(rng, m, n)
		case 1:
			s = workload.Scatter(rng, n, m)
		default:
			s = workload.RandomGIR(rng, m, n)
		}

		// Commutative, associative, and immune to overflow discrepancies:
		// modular multiplication is safe for both solver families even when
		// a scatter target is combined in a different order than the oracle.
		op := core.MulMod{M: 1_000_003}
		init := workload.InitInt64(rng, s.M, 1_000_000)
		want := core.RunSequential[int64](s, op, init)
		ctx := context.Background()

		if s.Ordinary() && s.GDistinct() {
			res, err := ordinary.SolveCtx[int64](ctx, s, op, init, ordinary.Options{Procs: 4})
			if err != nil {
				t.Fatalf("ordinary.SolveCtx(%v): %v", s, err)
			}
			for i, v := range res.Values {
				if v != want[i] {
					t.Fatalf("ordinary cell %d: parallel %d != sequential %d", i, v, want[i])
				}
			}
		}

		res, err := gir.SolveCtx[int64](ctx, s, op, init, gir.Options{Procs: 4, MaxExponentBits: 4096})
		if err != nil {
			if errors.Is(err, gir.ErrExponentLimit) {
				t.Skip("path counts beyond cap — acceptable rejection")
			}
			t.Fatalf("gir.SolveCtx: %v", err)
		}
		for i, v := range res.Values {
			if v != want[i] {
				t.Fatalf("gir cell %d: parallel %d != sequential %d", i, v, want[i])
			}
		}
	})
}
