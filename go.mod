module indexedrec

go 1.24
