// Package indexedrec is a Go reproduction of "Parallel Solutions of Indexed
// Recurrence Equations" (Yosi Ben-Asher and Gadi Haber, IPPS 1997): parallel
// algorithms that solve sequential loops of the form
//
//	for i = 1 to n:  A[g(i)] := op(A[f(i)], A[h(i)])
//
// in O(log n) time — ordinary IR via pointer jumping (internal/ordinary),
// linear and fractional-linear forms via the Möbius transformation
// (internal/moebius), and general IR via dependence-graph path counting
// (internal/gir, internal/cap) — together with the substrates the paper's
// evaluation needs: a PRAM cost model (internal/pram), a SimParC-style
// assembly-level simulator (internal/simparc), a loop front-end that
// classifies recurrences without dependence analysis (internal/lang), and
// the Livermore Loops (internal/livermore).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate every table and figure; cmd/irbench
// prints them.
package indexedrec
