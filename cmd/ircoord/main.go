// Command ircoord is the ircluster coordinator daemon: it fronts a fleet of
// irserved workers with the same /v1/solve JSON API a single irserved
// exposes, scattering each solve's shards across the fleet and gathering
// the slices into a bit-identical solution (see internal/cluster).
//
//	ircoord                                           # elastic fleet on :8070
//	ircoord -workers host1:8080,host2:8080            # static fleet
//	ircoord -addr :9000 -workers host1:8080 -hedge-after 500ms
//	curl -s localhost:8070/v1/cluster/workers
//
// The fleet is elastic: -workers is optional, and workers started with
// -coordinator-url self-register (POST /v1/cluster/register) and hold
// heartbeat leases of -lease; a missed lease drops the worker and its
// shards re-home by rendezvous hashing. Each worker sits behind a circuit
// breaker tuned by -breaker-threshold/-breaker-cooldown, and retries draw
// on a per-solve -retry-budget. With -cluster-token the membership
// endpoints require the shared token (workers pass the same value to their
// -cluster-token flag); without one they are open and must only be exposed
// on a trusted network.
//
// Endpoints: POST /v1/solve/{ordinary,general,linear,moebius} (the loop
// endpoint is intentionally absent — loop *execution* stays single-node),
// the streaming-session pass-through POST /v1/session, POST
// /v1/session/{id}/append, GET/DELETE /v1/session/{id} (each session is
// pinned by rendezvous hash to one worker and re-homed by replay when that
// worker dies), GET /healthz, /readyz, /metrics, /version, and the
// membership API /v1/cluster/{workers,register,heartbeat,deregister}.
// SIGINT/SIGTERM trigger a graceful shutdown; in-flight solves finish
// under their deadlines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof-addr listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"indexedrec/internal/cluster"
	"indexedrec/internal/server"
)

func main() {
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()
	var (
		addr          = flag.String("addr", ":8070", "listen address")
		workers       = flag.String("workers", "", "comma-separated static worker addresses (optional; elastic workers self-register)")
		retries       = flag.Int("retries", 3, "max per-shard re-sends after the first attempt")
		retryBudget   = flag.Int("retry-budget", 0, "per-solve retry budget shared by all shards (0 = 4 + 2 per shard, negative disables)")
		retryBackoff  = flag.Duration("retry-backoff", 50*time.Millisecond, "base backoff between a shard's attempts")
		maxRetryAfter = flag.Duration("max-retry-after", 2*time.Second, "cap on how far a worker's Retry-After hint stretches one backoff")
		hedgeAfter    = flag.Duration("hedge-after", 2*time.Second, "hedge a duplicate shard request after this long (negative disables)")
		probeInterval = flag.Duration("probe-interval", 5*time.Second, "static-worker health-probe period (negative disables)")
		lease         = flag.Duration("lease", 5*time.Second, "membership lease granted to self-registering workers")
		clusterToken  = flag.String("cluster-token", "", "shared token required on the membership endpoints (empty = open; trusted networks only)")
		brThreshold   = flag.Int("breaker-threshold", 3, "consecutive failures that open a worker's circuit breaker (negative disables)")
		brCooldown    = flag.Duration("breaker-cooldown", 5*time.Second, "wait before an open breaker admits its half-open probe")
		reqTimeout    = flag.Duration("request-timeout", 60*time.Second, "cap on one shard HTTP request")
		planCache     = flag.Int64("plan-cache", 0, "compiled-plan cache budget in bytes (0 = 256 MiB default, negative disables)")
		maxN          = flag.Int("max-n", 4<<20, "max iterations per request")
		procs         = flag.Int("procs", 0, "local-fallback solver goroutines (0 = GOMAXPROCS)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
		showVersion   = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	servePprof(*pprofAddr)

	if *showVersion {
		v := server.BuildVersion()
		fmt.Printf("ircoord %s %s rev %s\n", v.Version, v.Go, v.Revision)
		return
	}

	fleet := splitList(*workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	co := cluster.New(cluster.Config{
		Workers:          fleet,
		MaxRetries:       *retries,
		RetryBudget:      *retryBudget,
		RetryBackoff:     *retryBackoff,
		MaxRetryAfter:    *maxRetryAfter,
		HedgeAfter:       *hedgeAfter,
		ProbeInterval:    *probeInterval,
		LeaseTTL:         *lease,
		ClusterToken:     *clusterToken,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		RequestTimeout:   *reqTimeout,
		PlanCacheBytes:   *planCache,
		MaxN:             *maxN,
		Procs:            *procs,
	})
	if len(fleet) == 0 {
		fmt.Printf("ircoord: elastic fleet on %s (workers self-register; lease %v)\n", *addr, *lease)
	} else {
		fmt.Printf("ircoord: coordinating %d workers on %s\n", len(fleet), *addr)
	}
	if err := co.ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail("%v", err)
	}
	fmt.Println("ircoord: stopped, bye")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ircoord: "+format+"\n", args...)
	os.Exit(1)
}

// servePprof exposes the net/http/pprof endpoints (registered on the default
// mux by the blank import) on their own listener, kept off the service
// address so profiling is never publicly routable by accident.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "ircoord: pprof listener: %v\n", err)
		}
	}()
	fmt.Printf("ircoord: pprof on http://%s/debug/pprof/\n", addr)
}

// splitList parses a comma-separated address list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
