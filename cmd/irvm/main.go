// Command irvm is the SimParC reconstruction as a standalone tool: it
// assembles a program, runs it lock-step, and reports cycles, instruction
// profile and memory.
//
//	irvm -file prog.s -mem 64 -sym N=10 -dump 0:10
//	irvm -builtin reduce -sym N=16 -sym NPROC=4      # run a shipped program
//	irvm -file prog.s -disasm                        # assemble + disassemble only
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"indexedrec/internal/simparc"
)

type symFlags map[string]int64

func (s symFlags) String() string { return fmt.Sprint(map[string]int64(s)) }
func (s symFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=VALUE, got %q", v)
	}
	x, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return err
	}
	s[name] = x
	return nil
}

var builtins = map[string]string{
	"seq":    simparc.SeqIRSource,
	"oir":    simparc.ParallelOIRSource,
	"reduce": simparc.ReduceSource,
	"scan":   simparc.ScanSource,
	"affine": simparc.AffineScanSource,
}

func main() {
	// Last-resort guard: any failure path a specific check misses (e.g. a
	// VM fault on an out-of-range memory size) still exits non-zero with a
	// one-line message instead of a crash dump.
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()
	syms := symFlags{}
	var (
		file    = flag.String("file", "", "assembly source file")
		builtin = flag.String("builtin", "", "run a shipped program: seq|oir|reduce|scan|affine")
		mem     = flag.Int("mem", 1024, "data memory words")
		cap     = flag.Int("cap", 0, "max concurrently active processors (0 = unlimited)")
		maxCyc  = flag.Int64("max-cycles", 1<<30, "cycle budget")
		opx     = flag.String("opx", "add", "OPX binding: add | mul | max | mulmod:P")
		dump    = flag.String("dump", "", "memory range LO:HI to print after the run")
		disasm  = flag.Bool("disasm", false, "disassemble instead of running")
		fill    = flag.String("fill", "", "pre-fill memory LO:HI=VALUE (repeatable via commas)")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	)
	flag.Var(syms, "sym", "symbol binding NAME=VALUE (repeatable)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var src string
	switch {
	case *builtin != "":
		s, ok := builtins[*builtin]
		if !ok {
			fail("unknown -builtin %q", *builtin)
		}
		src = s
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail("%v", err)
		}
		src = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	prog, err := simparc.Assemble(src, syms)
	if err != nil {
		fail("assemble: %v", err)
	}
	if *disasm {
		simparc.Disassemble(prog, os.Stdout)
		return
	}

	vm := simparc.NewVM(prog, *mem)
	vm.Cap = *cap
	switch {
	case *opx == "add":
		vm.OpX = func(a, b int64) int64 { return a + b }
	case *opx == "mul":
		vm.OpX = func(a, b int64) int64 { return a * b }
	case *opx == "max":
		vm.OpX = func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		}
	case strings.HasPrefix(*opx, "mulmod:"):
		p, err := strconv.ParseInt((*opx)[len("mulmod:"):], 0, 64)
		if err != nil || p < 2 {
			fail("bad -opx %q", *opx)
		}
		vm.OpX = func(a, b int64) int64 { return a % p * (b % p) % p }
	default:
		fail("unknown -opx %q", *opx)
	}

	if *fill != "" {
		for _, part := range strings.Split(*fill, ",") {
			rng, val, ok := strings.Cut(part, "=")
			lo, hi, ok2 := parseRange(rng, *mem)
			if !ok || !ok2 {
				fail("bad -fill entry %q", part)
			}
			v, err := strconv.ParseInt(val, 0, 64)
			if err != nil {
				fail("bad -fill value in %q", part)
			}
			for i := lo; i < hi; i++ {
				vm.Mem[i] = v
			}
		}
	}

	if err := vm.RunCtx(ctx, *maxCyc); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fail("timed out after %v (at cycle %d)", *timeout, vm.Cycles)
		}
		if errors.Is(err, context.Canceled) {
			fail("interrupted (at cycle %d)", vm.Cycles)
		}
		fail("run: %v", err)
	}
	vm.Profile(os.Stdout)
	if *dump != "" {
		lo, hi, ok := parseRange(*dump, *mem)
		if !ok {
			fail("bad -dump range %q", *dump)
		}
		fmt.Printf("mem[%d:%d] = %v\n", lo, hi, vm.Mem[lo:hi])
	}
}

func parseRange(s string, mem int) (lo, hi int, ok bool) {
	l, h, found := strings.Cut(s, ":")
	if !found {
		return 0, 0, false
	}
	lo, err1 := strconv.Atoi(l)
	hi, err2 := strconv.Atoi(h)
	if err1 != nil || err2 != nil || lo < 0 || hi > mem || lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "irvm: "+format+"\n", args...)
	os.Exit(1)
}
