package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
	"indexedrec/ir"
)

// clusterCase is one family's local-vs-distributed throughput comparison:
// the same system solved in-process and via the coordinator's solve API,
// results checked bit-identical.
type clusterCase struct {
	id    string
	title string
	run   func(ctx context.Context, c *client.Client, m, iters int) (string, error)
}

// runClusterBench benchmarks an ircluster coordinator (or a single
// irserved) at target against in-process solves of the same systems. With
// asJSON it emits one record per family in the same JSON-lines schema the
// experiment runs use.
func runClusterBench(ctx context.Context, target string, n int, quick, asJSON bool) error {
	base := target
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := client.NewPooled(base, 2*time.Minute)
	if err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("%s unreachable: %w", target, err)
	}

	m, iters := 1<<16, 6
	if quick {
		m, iters = 1<<12, 2
	}
	if n > 0 {
		m = n
	}

	cases := []clusterCase{
		{"cluster-ordinary", "local vs distributed ordinary solve (int64-add chains)", benchClusterOrdinary},
		{"cluster-general", "local vs distributed general solve (mul-mod)", benchClusterGeneral},
		{"cluster-linear", "local vs distributed linear solve (affine chain)", benchClusterLinear},
	}
	enc := json.NewEncoder(os.Stdout)
	for _, cc := range cases {
		start := time.Now()
		out, err := cc.run(ctx, c, m, iters)
		if asJSON {
			rec := result{
				ID:        cc.id,
				Title:     cc.title,
				OK:        err == nil,
				ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
				Output:    out,
			}
			if err != nil {
				rec.Error = err.Error()
			}
			if encErr := enc.Encode(rec); encErr != nil {
				return encErr
			}
			if err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("%s: %w", cc.id, err)
		}
		fmt.Println(out)
	}
	return nil
}

// timedSolves runs f iters times, returning the total wall time.
func timedSolves(iters int, f func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// compareLine renders the throughput comparison for one side pair.
func compareLine(id string, m, n, iters int, local, remote time.Duration, identical bool) string {
	rate := func(d time.Duration) float64 {
		return float64(m) * float64(iters) / d.Seconds() / 1e6
	}
	match := "bit-identical"
	if !identical {
		match = "MISMATCH"
	}
	return fmt.Sprintf(
		"%-16s m=%d n=%d iters=%d\n  local:       %8.2f ms/solve  %7.2f Mcell/s\n  distributed: %8.2f ms/solve  %7.2f Mcell/s  (%.2fx vs local)\n  results: %s",
		id, m, n, iters,
		float64(local.Microseconds())/1000/float64(iters), rate(local),
		float64(remote.Microseconds())/1000/float64(iters), rate(remote),
		local.Seconds()/remote.Seconds(), match)
}

// benchClusterOrdinary races an 8-chain ordinary prefix system: the shape
// the coordinator shards chain-by-chain.
func benchClusterOrdinary(ctx context.Context, c *client.Client, m, iters int) (string, error) {
	const chains = 8
	var g, f []int
	for s := 0; s < chains && s < m; s++ {
		for j := s; j+chains < m; j += chains {
			g = append(g, j+chains)
			f = append(f, j)
		}
	}
	sys := &ir.System{M: m, N: len(g), G: g, F: f}
	init := make([]int64, m)
	for i := range init {
		init[i] = int64(i%7) + 1
	}
	op, err := ir.IntOpByName("int64-add", 0)
	if err != nil {
		return "", err
	}

	var localVals []int64
	local, err := timedSolves(iters, func() error {
		res, err := ir.SolveOrdinaryCtx(ctx, sys, op, init, ir.SolveOptions{})
		if err == nil {
			localVals = res.Values
		}
		return err
	})
	if err != nil {
		return "", fmt.Errorf("local: %w", err)
	}

	rawInit, err := json.Marshal(init)
	if err != nil {
		return "", err
	}
	req := server.OrdinaryRequest{
		System: ir.SystemWire{M: m, G: g, F: f},
		Op:     "int64-add",
		Init:   rawInit,
	}
	var remoteVals []int64
	remote, err := timedSolves(iters, func() error {
		resp, err := c.SolveOrdinary(ctx, req)
		if err == nil {
			remoteVals = resp.ValuesInt
		}
		return err
	})
	if err != nil {
		return "", fmt.Errorf("distributed: %w", err)
	}
	return compareLine("ordinary", m, len(g), iters, local, remote, sameInt64(localVals, remoteVals)), nil
}

// benchClusterGeneral races a general mul-mod system: the shape the
// coordinator shards cell-by-cell.
func benchClusterGeneral(ctx context.Context, c *client.Client, m, iters int) (string, error) {
	n := m
	g := make([]int, n)
	f := make([]int, n)
	h := make([]int, n)
	for i := 0; i < n; i++ {
		g[i], f[i], h[i] = i, (i*7+3)%m, (i*5+1)%m
	}
	sys := &ir.System{M: m, N: n, G: g, F: f, H: h}
	init := make([]int64, m)
	for i := range init {
		init[i] = int64(i%997) + 1
	}
	const mod = 1_000_003
	op, err := ir.IntOpByName("mul-mod", mod)
	if err != nil {
		return "", err
	}

	var localVals []int64
	local, err := timedSolves(iters, func() error {
		res, err := ir.SolveGeneralCtx(ctx, sys, op, init, ir.SolveOptions{})
		if err == nil {
			localVals = res.Values
		}
		return err
	})
	if err != nil {
		return "", fmt.Errorf("local: %w", err)
	}

	rawInit, err := json.Marshal(init)
	if err != nil {
		return "", err
	}
	req := server.GeneralRequest{
		System: ir.SystemWire{M: m, G: g, F: f, H: h},
		Op:     "mul-mod",
		Mod:    mod,
		Init:   rawInit,
	}
	var remoteVals []int64
	remote, err := timedSolves(iters, func() error {
		resp, err := c.SolveGeneral(ctx, req)
		if err == nil {
			remoteVals = resp.ValuesInt
		}
		return err
	})
	if err != nil {
		return "", fmt.Errorf("distributed: %w", err)
	}
	return compareLine("general", m, n, iters, local, remote, sameInt64(localVals, remoteVals)), nil
}

// benchClusterLinear races an affine chain through the Möbius family.
func benchClusterLinear(ctx context.Context, c *client.Client, m, iters int) (string, error) {
	n := m - 1
	g := make([]int, n)
	f := make([]int, n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		g[i], f[i] = i+1, i
		a[i] = 1 + float64(i%3)*0.0001
		b[i] = 0.5
	}
	x0 := make([]float64, m)
	x0[0] = 1

	var localVals []float64
	local, err := timedSolves(iters, func() error {
		vals, err := ir.SolveLinearCtx(ctx, m, g, f, a, b, x0, ir.SolveOptions{})
		if err == nil {
			localVals = vals
		}
		return err
	})
	if err != nil {
		return "", fmt.Errorf("local: %w", err)
	}

	req := server.LinearRequest{M: m, G: g, F: f, A: a, B: b, X0: x0}
	var remoteVals []float64
	remote, err := timedSolves(iters, func() error {
		resp, err := c.SolveLinear(ctx, req)
		if err == nil {
			remoteVals = resp.Values
		}
		return err
	})
	if err != nil {
		return "", fmt.Errorf("distributed: %w", err)
	}
	return compareLine("linear", m, n, iters, local, remote, sameFloat64(localVals, remoteVals)), nil
}

func sameInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameFloat64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
