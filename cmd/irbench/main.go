// Command irbench regenerates the paper's evaluation artifacts (DESIGN.md's
// experiment index). Run a single experiment by id, or everything:
//
//	irbench -exp fig3                 # the headline performance figure
//	irbench -exp livermore            # the §1 classification table
//	irbench -exp all                  # every experiment
//	irbench -list                     # available experiments
//	irbench -exp fig3 -n 10000 -procs 1,16,256
//	irbench -exp all -quick           # small sizes for smoke runs
//	irbench -exp all -quick -json     # one JSON object per experiment
//	irbench -cluster localhost:8070   # local vs distributed throughput
//	irbench -session -json            # E19 streaming-session amortization
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"indexedrec/internal/experiments"
)

// result is the -json record emitted per experiment (JSON lines on stdout),
// so bench runs are scrapeable alongside irserved's /metrics.
type result struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	OK        bool    `json:"ok"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Output    string  `json:"output"`
}

func main() {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "irbench: internal error: %v\n", r)
			os.Exit(1)
		}
	}()
	var (
		exp     = flag.String("exp", "", "experiment id (or \"all\")")
		list    = flag.Bool("list", false, "list available experiments")
		n       = flag.Int("n", 0, "instance size override (0 = experiment default)")
		procs   = flag.String("procs", "", "comma-separated processor sweep override")
		seed    = flag.Int64("seed", 0, "generator seed override")
		quick   = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		asJSON  = flag.Bool("json", false, "emit one JSON object per experiment instead of text")
		cluster = flag.String("cluster", "", "benchmark an ircluster coordinator at host:port against local solves")
		session = flag.Bool("session", false, "run the streaming-session benchmark (shorthand for -exp session)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	if *session {
		*exp = "session"
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "irbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "irbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "irbench: -memprofile: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cluster != "" {
		if err := runClusterBench(ctx, *cluster, *n, *quick, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "irbench: cluster: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
			if e.Desc != "" {
				fmt.Printf("  %-14s   %s\n", "", e.Desc)
			}
		}
		if *exp == "" && !*list {
			fmt.Println("\nusage: irbench -exp <id>|all [-n N] [-procs 1,2,4] [-quick]")
			os.Exit(2)
		}
		return
	}

	// Catch -exp typos up front with the full menu — the -json path would
	// otherwise bury the unknown id inside a record, and the text path
	// would only name it after the header.
	if *exp != "all" {
		if _, ok := experiments.Get(*exp); !ok {
			var ids []string
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
			fmt.Fprintf(os.Stderr, "irbench: unknown experiment %q (run irbench -list; available: %s)\n",
				*exp, strings.Join(ids, ", "))
			os.Exit(2)
		}
	}

	opt := experiments.Options{N: *n, Seed: *seed, Quick: *quick}
	if *procs != "" {
		for _, tok := range strings.Split(*procs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || p < 1 {
				fmt.Fprintf(os.Stderr, "irbench: bad -procs entry %q\n", tok)
				os.Exit(2)
			}
			opt.Procs = append(opt.Procs, p)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	run := func(id string) {
		if *asJSON {
			e, _ := experiments.Get(id) // unknown ids still fail inside RunCtx
			var buf bytes.Buffer
			start := time.Now()
			err := experiments.RunCtx(ctx, id, &buf, opt)
			rec := result{
				ID:        id,
				Title:     e.Title,
				OK:        err == nil,
				ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
				Output:    buf.String(),
			}
			if err != nil {
				rec.Error = err.Error()
			}
			if encErr := enc.Encode(rec); encErr != nil {
				fmt.Fprintf(os.Stderr, "irbench: %v\n", encErr)
				os.Exit(1)
			}
			if err != nil {
				os.Exit(1)
			}
			return
		}
		if err := experiments.RunCtx(ctx, id, os.Stdout, opt); err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				fmt.Fprintf(os.Stderr, "irbench: %s: timed out after %v\n", id, *timeout)
			case errors.Is(err, context.Canceled):
				fmt.Fprintf(os.Stderr, "irbench: %s: interrupted\n", id)
			default:
				fmt.Fprintf(os.Stderr, "irbench: %s: %v\n", id, err)
			}
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e.ID)
		}
		return
	}
	run(*exp)
}
