// Command irbench regenerates the paper's evaluation artifacts (DESIGN.md's
// experiment index). Run a single experiment by id, or everything:
//
//	irbench -exp fig3                 # the headline performance figure
//	irbench -exp livermore            # the §1 classification table
//	irbench -exp all                  # every experiment
//	irbench -list                     # available experiments
//	irbench -exp fig3 -n 10000 -procs 1,16,256
//	irbench -exp all -quick           # small sizes for smoke runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"indexedrec/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (or \"all\")")
		list  = flag.Bool("list", false, "list available experiments")
		n     = flag.Int("n", 0, "instance size override (0 = experiment default)")
		procs = flag.String("procs", "", "comma-separated processor sweep override")
		seed  = flag.Int64("seed", 0, "generator seed override")
		quick = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nusage: irbench -exp <id>|all [-n N] [-procs 1,2,4] [-quick]")
			os.Exit(2)
		}
		return
	}

	opt := experiments.Options{N: *n, Seed: *seed, Quick: *quick}
	if *procs != "" {
		for _, tok := range strings.Split(*procs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || p < 1 {
				fmt.Fprintf(os.Stderr, "irbench: bad -procs entry %q\n", tok)
				os.Exit(2)
			}
			opt.Procs = append(opt.Procs, p)
		}
	}

	run := func(id string) {
		if err := experiments.Run(id, os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "irbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e.ID)
		}
		return
	}
	run(*exp)
}
