// Command irserved is the solve service daemon: an HTTP JSON API over the
// hardened solver runtime with admission control (bounded queue, 429 load
// shedding), dynamic batch coalescing for Möbius/linear requests, an LRU
// cache of compiled solve plans keyed by loop structure, a worker pool
// sized off GOMAXPROCS, and Prometheus metrics.
//
//	irserved                                  # serve on :8080
//	irserved -addr 127.0.0.1:9090 -queue 512 -batch-window 2ms
//	irserved -addr 127.0.0.1:9090 -coordinator-url http://coord:8070
//	irserved -coordinator -workers-list host1:8080,host2:8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/solve/linear -d \
//	  '{"m":4,"g":[1,2,3],"f":[0,1,2],"a":[1,1,1],"b":[1,1,1],"x0":[1,0,0,0]}'
//
// Endpoints: POST /v1/solve/{ordinary,general,linear,moebius,loop}, POST
// /v1/shard/solve (the worker role of a cluster; see internal/cluster), the
// streaming-session lifecycle POST /v1/session, POST
// /v1/session/{id}/append, GET/DELETE /v1/session/{id} (idle sessions are
// evicted after -session-ttl), and GET /healthz, /readyz (503 while
// draining), /metrics (Prometheus text), /version. SIGINT/SIGTERM trigger a graceful drain: readiness flips,
// in-flight solves finish under their deadlines, then the process exits 0.
//
// With -coordinator-url the worker joins an ircoord fleet elastically: it
// registers its -advertise address (derived from -addr when that has a
// concrete host), heartbeats to hold its membership lease, and deregisters
// during the graceful drain so the coordinator stops routing to it at once;
// -cluster-token carries the fleet's shared registration token when the
// coordinator requires one.
//
// Per-tenant admission is configured with -tenants: requests carrying an
// X-IR-Tenant header are fair-queued by weight, bounded by their quota, and
// may evict queued work of lower-priority tenants when the queue fills.
//
// With -coordinator the process serves the ircluster coordinator instead:
// solves scatter across the -workers-list fleet (see also cmd/ircoord,
// the standalone coordinator daemon with the full flag set).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof-addr listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"indexedrec/internal/cluster"
	"indexedrec/internal/server"
	"indexedrec/internal/server/client"
)

func main() {
	// Last-resort guard: any failure path a specific check misses still
	// exits non-zero with a one-line message instead of a crash dump.
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", 256, "admission queue depth (full queue sheds with 429)")
		workers     = flag.Int("workers", 0, "solve workers (0 = GOMAXPROCS/2)")
		procs       = flag.Int("procs", 0, "goroutines per solve (0 = GOMAXPROCS/workers)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "Moebius/linear coalescing window")
		maxBatch    = flag.Int("max-batch", 32, "close a coalesced batch at this many requests")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
		maxTimeout  = flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
		maxN        = flag.Int("max-n", 4<<20, "max iterations per request")
		planCache   = flag.Int64("plan-cache", 0, "compiled-plan cache budget in bytes (0 = 64 MiB default, negative disables)")
		coordinator = flag.Bool("coordinator", false, "run as an ircluster coordinator instead of a worker")
		workerList  = flag.String("workers-list", "", "comma-separated worker addresses (coordinator mode)")
		probeEvery  = flag.Duration("probe-interval", 5*time.Second, "worker health-probe period (coordinator mode)")
		coordURL    = flag.String("coordinator-url", "", "register with this ircoord and heartbeat a membership lease (worker mode)")
		advertise   = flag.String("advertise", "", "address the coordinator dials back (default derived from -addr)")
		heartbeat   = flag.Duration("heartbeat", 0, "lease heartbeat period (0 = a third of the granted lease)")
		clusterTok  = flag.String("cluster-token", "", "shared membership token: sent when registering, required of workers in coordinator mode")
		tenants     = flag.String("tenants", "", "per-tenant admission, name:weight:priority:max-queued[,...] (e.g. paid:4:10:0,free:1:0:8)")
		sessionTTL  = flag.Duration("session-ttl", 5*time.Minute, "evict streaming sessions idle this long (negative disables)")
		sessionMem  = flag.Int64("session-bytes", 256<<20, "resident-byte budget across streaming sessions (negative disables)")
		maxSessions = flag.Int("max-sessions", 1024, "max concurrently open streaming sessions (negative disables)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
		showVersion = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	servePprof(*pprofAddr)

	if *showVersion {
		v := server.BuildVersion()
		fmt.Printf("irserved %s %s rev %s\n", v.Version, v.Go, v.Revision)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordinator {
		co := cluster.New(cluster.Config{
			Workers:       splitList(*workerList),
			ProbeInterval: *probeEvery,
			ClusterToken:  *clusterTok,
			MaxN:          *maxN,
			PlanCacheBytes: func() int64 {
				if *planCache != 0 {
					return *planCache
				}
				return 64 << 20
			}(),
		})
		fmt.Printf("irserved: coordinating %d workers on %s\n", len(splitList(*workerList)), *addr)
		if err := co.ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
		fmt.Println("irserved: coordinator stopped, bye")
		return
	}

	tenantCfg, err := parseTenants(*tenants)
	if err != nil {
		fail("%v", err)
	}
	s := server.New(server.Config{
		Addr:           *addr,
		QueueDepth:     *queue,
		Workers:        *workers,
		Procs:          *procs,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxN:           *maxN,
		PlanCacheBytes: *planCache,
		Tenants:        tenantCfg,
		SessionTTL:     *sessionTTL,
		SessionBytes:   *sessionMem,
		MaxSessions:    *maxSessions,
	})
	regDone := runRegistrar(ctx, *coordURL, *advertise, *addr, *clusterTok, *heartbeat)
	fmt.Printf("irserved: listening on %s\n", *addr)
	if err := s.ListenAndServe(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail("%v", err)
	}
	<-regDone
	fmt.Println("irserved: drained, bye")
}

// runRegistrar enrolls this worker with an ircoord fleet when
// -coordinator-url is set: it registers the advertise address, heartbeats
// the membership lease until ctx ends (SIGINT/SIGTERM), then deregisters so
// the drain removes the worker from routing immediately. The returned
// channel closes once deregistration finished; it is already closed when no
// coordinator is configured.
func runRegistrar(ctx context.Context, coordURL, advertise, addr, token string, heartbeat time.Duration) <-chan struct{} {
	done := make(chan struct{})
	if coordURL == "" {
		close(done)
		return done
	}
	adv := advertise
	if adv == "" {
		host, port, err := net.SplitHostPort(addr)
		if err != nil || host == "" || host == "0.0.0.0" || host == "::" {
			fail("cannot derive an advertise address from -addr %q; pass -advertise host:port", addr)
		}
		adv = net.JoinHostPort(host, port)
	}
	v := server.BuildVersion()
	reg := client.NewRegistrar(client.RegistrarConfig{
		Coordinator: coordURL,
		Advertise:   adv,
		Version:     fmt.Sprintf("%s go %s", v.Version, v.Go),
		Token:       token,
		Interval:    heartbeat,
	})
	go func() {
		defer close(done)
		reg.Run(ctx)
	}()
	return done
}

// parseTenants decodes the -tenants flag: comma-separated
// name:weight:priority:max-queued entries, where trailing fields may be
// omitted.
func parseTenants(s string) (map[string]server.TenantConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]server.TenantConfig)
	for _, entry := range splitList(s) {
		parts := strings.Split(entry, ":")
		if parts[0] == "" || len(parts) > 4 {
			return nil, fmt.Errorf("bad -tenants entry %q (want name:weight:priority:max-queued)", entry)
		}
		var cfg server.TenantConfig
		var err error
		for i, field := range []*int{nil, &cfg.Weight, &cfg.Priority, &cfg.MaxQueued} {
			if i == 0 || i >= len(parts) || parts[i] == "" {
				continue
			}
			if *field, err = strconv.Atoi(parts[i]); err != nil {
				return nil, fmt.Errorf("bad -tenants entry %q: %v", entry, err)
			}
		}
		out[parts[0]] = cfg
	}
	return out, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "irserved: "+format+"\n", args...)
	os.Exit(1)
}

// servePprof exposes the net/http/pprof endpoints (registered on the default
// mux by the blank import) on their own listener, kept off the service
// address so profiling is never publicly routable by accident.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "irserved: pprof listener: %v\n", err)
		}
	}()
	fmt.Printf("irserved: pprof on http://%s/debug/pprof/\n", addr)
}

// splitList parses a comma-separated address list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
