// Command irsolve is the paper's use case in miniature: it reads a
// sequential loop, classifies its recurrence form without data-dependence
// analysis, and executes it with the matching parallel algorithm.
//
//	irsolve -loop 'for i = 1 to n do X[i] := X[i-1] + X[i]' -n 10 -array X=1,2,3,4,5,6,7,8,9,10,11
//	irsolve -file loop.ir -n 100 -array X=zero:101 -array Y=ramp:101
//	irsolve -loop '...' -analyze            # classification only
//
// Array specs: NAME=v1,v2,...  |  NAME=zero:LEN  |  NAME=ramp:LEN  |
// NAME=ones:LEN. Scalars: -scalar q=0.5 (repeatable). The loop bound
// variable n is bound automatically from -n.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"indexedrec/internal/lang"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	// Last-resort guard: any failure path a specific check misses still
	// exits non-zero with a one-line message instead of a crash dump.
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()
	var (
		loopSrc = flag.String("loop", "", "loop source text")
		file    = flag.String("file", "", "file containing the loop source")
		n       = flag.Int("n", 10, "value bound to the scalar n")
		analyze = flag.Bool("analyze", false, "classify only, do not execute")
		procs   = flag.Int("procs", 0, "goroutines (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "abort the solve after this duration (0 = none)")
		arrays  multiFlag
		scalars multiFlag
	)
	flag.Var(&arrays, "array", "array binding NAME=spec (repeatable)")
	flag.Var(&scalars, "scalar", "scalar binding NAME=value (repeatable)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	src := *loopSrc
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fail("read -file: %v", err)
		}
		src = string(data)
	}
	if src == "" {
		flag.Usage()
		os.Exit(2)
	}

	loop, err := lang.Parse(src)
	if err != nil {
		fail("parse: %v", err)
	}
	c := lang.Compile(loop)
	fmt.Printf("loop:     %s\n", loop)
	fmt.Printf("analysis: %s\n", c.Analysis.Describe())
	fmt.Printf("bucket:   %s\n", c.Analysis.Bucket)
	fmt.Printf("strategy: %s\n", c.Strategy())
	if *analyze {
		return
	}

	env := lang.NewEnv()
	env.Scalars["n"] = float64(*n)
	for _, s := range scalars {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			fail("bad -scalar %q", s)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			fail("bad -scalar %q: %v", s, err)
		}
		env.Scalars[name] = v
	}
	for _, a := range arrays {
		name, spec, ok := strings.Cut(a, "=")
		if !ok {
			fail("bad -array %q", a)
		}
		vals, err := parseArray(spec)
		if err != nil {
			fail("bad -array %q: %v", a, err)
		}
		env.Arrays[name] = vals
	}

	seq := env.Clone()
	if err := lang.Run(loop, seq); err != nil {
		fail("sequential run: %v", err)
	}
	if err := c.ExecuteCtx(ctx, env, *procs); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fail("timed out after %v", *timeout)
		}
		if errors.Is(err, context.Canceled) {
			fail("interrupted")
		}
		fail("parallel execute: %v", err)
	}

	arr := c.Analysis.Array
	if arr == "" {
		arr = loop.TargetArray()
	}
	fmt.Printf("\n%s (parallel):   %v\n", arr, trim(env.Arrays[arr]))
	fmt.Printf("%s (sequential): %v\n", arr, trim(seq.Arrays[arr]))
	maxErr := 0.0
	for i, wv := range seq.Arrays[arr] {
		d := env.Arrays[arr][i] - wv
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max abs difference: %g\n", maxErr)
}

func parseArray(spec string) ([]float64, error) {
	if kind, lenStr, ok := strings.Cut(spec, ":"); ok {
		l, err := strconv.Atoi(lenStr)
		if err != nil || l < 0 {
			return nil, fmt.Errorf("bad length %q", lenStr)
		}
		v := make([]float64, l)
		switch kind {
		case "zero":
		case "ones":
			for i := range v {
				v[i] = 1
			}
		case "ramp":
			for i := range v {
				v[i] = float64(i + 1)
			}
		default:
			return nil, fmt.Errorf("unknown generator %q (zero|ones|ramp)", kind)
		}
		return v, nil
	}
	parts := strings.Split(spec, ",")
	v := make([]float64, len(parts))
	for i, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		v[i] = x
	}
	return v, nil
}

func trim(v []float64) []float64 {
	if len(v) > 16 {
		return v[:16]
	}
	return v
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "irsolve: "+format+"\n", args...)
	os.Exit(1)
}
