// Command irgen is the compiler back-end as a tool: it reads a sequential
// loop in the DSL, classifies it (no dependence analysis), and emits a Go
// function that executes the loop with the matching parallel algorithm via
// the public indexedrec/ir API.
//
//	irgen -loop 'for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]' -func SolveIt
//	irgen -file loop.ir -func Kernel > kernel_gen.go
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"indexedrec/internal/lang"
)

func main() {
	// Last-resort guard: any failure path a specific check misses still
	// exits non-zero with a one-line message instead of a crash dump.
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()
	var (
		loopSrc = flag.String("loop", "", "loop source text")
		file    = flag.String("file", "", "file containing the loop source")
		fn      = flag.String("func", "Generated", "emitted function name")
		timeout = flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	)
	flag.Parse()

	// Parity with the other CLIs: SIGINT/SIGTERM and -timeout abort with a
	// clean one-line message. Code generation is fast, so the ctx is
	// checked between phases rather than threaded through them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	checkCtx := func(phase string) {
		if err := ctx.Err(); err != nil {
			fail("%s: %v", phase, err)
		}
	}

	src := *loopSrc
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fail("read -file: %v", err)
		}
		src = string(data)
	}
	if src == "" {
		flag.Usage()
		os.Exit(2)
	}
	checkCtx("read")
	loop, err := lang.Parse(src)
	if err != nil {
		fail("parse: %v", err)
	}
	checkCtx("parse")
	c := lang.Compile(loop)
	out, err := c.EmitGo(*fn)
	if err != nil {
		fail("emit: %v", err)
	}
	checkCtx("emit")
	fmt.Print(out)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "irgen: "+format+"\n", args...)
	os.Exit(1)
}
