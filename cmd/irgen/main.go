// Command irgen is the compiler back-end as a tool: it reads a sequential
// loop in the DSL, classifies it (no dependence analysis), and emits a Go
// function that executes the loop with the matching parallel algorithm via
// the public indexedrec/ir API.
//
//	irgen -loop 'for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]' -func SolveIt
//	irgen -file loop.ir -func Kernel > kernel_gen.go
package main

import (
	"flag"
	"fmt"
	"os"

	"indexedrec/internal/lang"
)

func main() {
	// Last-resort guard: any failure path a specific check misses still
	// exits non-zero with a one-line message instead of a crash dump.
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()
	var (
		loopSrc = flag.String("loop", "", "loop source text")
		file    = flag.String("file", "", "file containing the loop source")
		fn      = flag.String("func", "Generated", "emitted function name")
	)
	flag.Parse()

	src := *loopSrc
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fail("read -file: %v", err)
		}
		src = string(data)
	}
	if src == "" {
		flag.Usage()
		os.Exit(2)
	}
	loop, err := lang.Parse(src)
	if err != nil {
		fail("parse: %v", err)
	}
	c := lang.Compile(loop)
	out, err := c.EmitGo(*fn)
	if err != nil {
		fail("emit: %v", err)
	}
	fmt.Print(out)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "irgen: "+format+"\n", args...)
	os.Exit(1)
}
