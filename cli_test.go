package indexedrec

// End-to-end tests of the command-line tools: each binary is built once and
// exercised the way a user would drive it.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/ binary into a temp dir and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIIrsolve(t *testing.T) {
	bin := buildTool(t, "irsolve")
	out := run(t, bin,
		"-loop", "for i = 1 to n do X[i] := X[i-1] + X[i]",
		"-n", "10", "-array", "X=ramp:11")
	for _, want := range []string{
		"ordinary IR", "OrdinaryIR pointer jumping", "max abs difference: 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("irsolve output missing %q:\n%s", want, out)
		}
	}
	// Analyze-only mode.
	out2 := run(t, bin, "-analyze",
		"-loop", "for i = 1 to n do X[G[i]] := A[i]*X[F[i]] + B[i]")
	if !strings.Contains(out2, "linear IR") || !strings.Contains(out2, "indexed recurrence") {
		t.Fatalf("irsolve -analyze output:\n%s", out2)
	}
}

func TestCLIIrgen(t *testing.T) {
	bin := buildTool(t, "irgen")
	out := run(t, bin,
		"-loop", "for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]",
		"-func", "Tri")
	for _, want := range []string{
		"package generated", "func Tri(", "ir.SolveLinear(", "DO NOT EDIT",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("irgen output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIIrbench(t *testing.T) {
	bin := buildTool(t, "irbench")
	out := run(t, bin, "-list")
	if !strings.Contains(out, "fig3") || !strings.Contains(out, "livermore") {
		t.Fatalf("irbench -list output:\n%s", out)
	}
	out2 := run(t, bin, "-exp", "fig1")
	if !strings.Contains(out2, "A[2]A[3]A[6]") {
		t.Fatalf("irbench fig1 output:\n%s", out2)
	}
	out3 := run(t, bin, "-exp", "fig3", "-n", "1000", "-procs", "1,32")
	if !strings.Contains(out3, "Parallel IR Solution") {
		t.Fatalf("irbench fig3 output:\n%s", out3)
	}
}

func TestCLIIrvm(t *testing.T) {
	bin := buildTool(t, "irvm")
	out := run(t, bin, "-builtin", "reduce",
		"-sym", "N=16", "-sym", "NPROC=4", "-sym", "A=0",
		"-mem", "16", "-fill", "0:16=1", "-dump", "0:1")
	if !strings.Contains(out, "cycles=") || !strings.Contains(out, "mem[0:1] = [16]") {
		t.Fatalf("irvm output:\n%s", out)
	}
	out2 := run(t, bin, "-builtin", "seq", "-disasm",
		"-sym", "NITER=1", "-sym", "A=0", "-sym", "G=1", "-sym", "F=2")
	if !strings.Contains(out2, "OPX") || !strings.Contains(out2, "sloop") {
		t.Fatalf("irvm -disasm output:\n%s", out2)
	}
}
