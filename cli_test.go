package indexedrec

// End-to-end tests of the command-line tools: each binary is built once and
// exercised the way a user would drive it.

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/ binary into a temp dir and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// runFail runs the binary expecting a non-zero exit, and returns stderr.
func runFail(t *testing.T, bin string, args ...string) (stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err == nil {
		t.Fatalf("%s %v: exited 0, want failure\nstdout:\n%s", filepath.Base(bin), args, out.String())
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v (not an exit error)", filepath.Base(bin), args, err)
	}
	return errBuf.String(), ee.ExitCode()
}

// failCase is one CLI failure path: args that must exit non-zero with a
// diagnostic on stderr (wantSub == "" means any stderr, e.g. flag usage).
type failCase struct {
	name    string
	args    []string
	wantSub string
	oneLine bool // stderr must be exactly one line (the fail() contract)
}

func checkFailCases(t *testing.T, tool string, cases []failCase) {
	t.Helper()
	bin := buildTool(t, tool)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stderr, code := runFail(t, bin, tc.args...)
			if code == 0 {
				t.Fatalf("exit code 0")
			}
			if tc.wantSub != "" && !strings.Contains(stderr, tc.wantSub) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantSub, stderr)
			}
			if tc.oneLine {
				if n := strings.Count(strings.TrimRight(stderr, "\n"), "\n") + 1; n != 1 {
					t.Fatalf("stderr is %d lines, want one:\n%s", n, stderr)
				}
			}
		})
	}
}

func TestCLIIrsolveFailures(t *testing.T) {
	const okLoop = "for i = 1 to n do X[i] := X[i-1] + X[i]"
	checkFailCases(t, "irsolve", []failCase{
		{name: "no input", args: nil},
		{name: "parse error", args: []string{"-loop", "for for for"}, wantSub: "parse:", oneLine: true},
		{name: "missing file", args: []string{"-file", "/nonexistent/loop.ir"}, wantSub: "read -file", oneLine: true},
		{name: "bad array spec", args: []string{"-loop", okLoop, "-array", "X"}, wantSub: "bad -array", oneLine: true},
		{name: "unknown generator", args: []string{"-loop", okLoop, "-array", "X=wat:5"}, wantSub: "unknown generator", oneLine: true},
		{name: "bad array value", args: []string{"-loop", okLoop, "-array", "X=1,two,3"}, wantSub: "bad -array", oneLine: true},
		{name: "bad scalar", args: []string{"-loop", okLoop, "-scalar", "q=abc"}, wantSub: "bad -scalar", oneLine: true},
	})
}

func TestCLIIrgenFailures(t *testing.T) {
	checkFailCases(t, "irgen", []failCase{
		{name: "no input", args: nil},
		{name: "parse error", args: []string{"-loop", "not a loop"}, wantSub: "parse:", oneLine: true},
		{name: "missing file", args: []string{"-file", "/nonexistent/loop.ir"}, wantSub: "read -file", oneLine: true},
		{name: "bad timeout", args: []string{"-timeout", "soon"}, wantSub: "invalid value"},
	})
}

func TestCLIIrbenchFailures(t *testing.T) {
	checkFailCases(t, "irbench", []failCase{
		{name: "unknown experiment", args: []string{"-exp", "fig99"}, wantSub: "fig99", oneLine: true},
		{name: "bad procs entry", args: []string{"-exp", "fig3", "-procs", "1,zero"}, wantSub: "bad -procs", oneLine: true},
		{name: "timeout", args: []string{"-exp", "fig3", "-timeout", "1ns"}, wantSub: "timed out", oneLine: true},
	})
}

func TestCLIIrvmFailures(t *testing.T) {
	reduceArgs := []string{"-builtin", "reduce",
		"-sym", "N=16", "-sym", "NPROC=4", "-sym", "A=0", "-mem", "16"}
	checkFailCases(t, "irvm", []failCase{
		{name: "no input", args: nil},
		{name: "unknown builtin", args: []string{"-builtin", "wat"}, wantSub: "unknown -builtin", oneLine: true},
		{name: "missing file", args: []string{"-file", "/nonexistent/prog.s"}, wantSub: "no such file"},
		{name: "bad sym", args: []string{"-builtin", "reduce", "-sym", "N16"}, wantSub: "NAME=VALUE"},
		{name: "assemble error", args: []string{"-builtin", "seq"}, wantSub: "assemble:", oneLine: true},
		{name: "unknown opx", args: append(append([]string{}, reduceArgs...), "-opx", "bogus"), wantSub: "unknown -opx", oneLine: true},
		{name: "bad fill", args: append(append([]string{}, reduceArgs...), "-fill", "0:16"), wantSub: "bad -fill", oneLine: true},
		{name: "bad dump", args: append(append([]string{}, reduceArgs...), "-fill", "0:16=1", "-dump", "0:99999"), wantSub: "bad -dump", oneLine: true},
		{name: "timeout", args: append(append([]string{}, reduceArgs...), "-timeout", "1ns"), wantSub: "timed out", oneLine: true},
	})
}

func TestCLIIrsolve(t *testing.T) {
	bin := buildTool(t, "irsolve")
	out := run(t, bin,
		"-loop", "for i = 1 to n do X[i] := X[i-1] + X[i]",
		"-n", "10", "-array", "X=ramp:11")
	for _, want := range []string{
		"ordinary IR", "OrdinaryIR pointer jumping", "max abs difference: 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("irsolve output missing %q:\n%s", want, out)
		}
	}
	// Analyze-only mode.
	out2 := run(t, bin, "-analyze",
		"-loop", "for i = 1 to n do X[G[i]] := A[i]*X[F[i]] + B[i]")
	if !strings.Contains(out2, "linear IR") || !strings.Contains(out2, "indexed recurrence") {
		t.Fatalf("irsolve -analyze output:\n%s", out2)
	}
}

func TestCLIIrgen(t *testing.T) {
	bin := buildTool(t, "irgen")
	out := run(t, bin,
		"-loop", "for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]",
		"-func", "Tri")
	for _, want := range []string{
		"package generated", "func Tri(", "ir.SolveLinear(", "DO NOT EDIT",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("irgen output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIIrbench(t *testing.T) {
	bin := buildTool(t, "irbench")
	out := run(t, bin, "-list")
	if !strings.Contains(out, "fig3") || !strings.Contains(out, "livermore") {
		t.Fatalf("irbench -list output:\n%s", out)
	}
	out2 := run(t, bin, "-exp", "fig1")
	if !strings.Contains(out2, "A[2]A[3]A[6]") {
		t.Fatalf("irbench fig1 output:\n%s", out2)
	}
	out3 := run(t, bin, "-exp", "fig3", "-n", "1000", "-procs", "1,32")
	if !strings.Contains(out3, "Parallel IR Solution") {
		t.Fatalf("irbench fig3 output:\n%s", out3)
	}
	// -json: one decodable record with the captured text inside.
	out4 := run(t, bin, "-exp", "fig1", "-json")
	var rec struct {
		ID        string  `json:"id"`
		Title     string  `json:"title"`
		OK        bool    `json:"ok"`
		ElapsedMs float64 `json:"elapsed_ms"`
		Output    string  `json:"output"`
	}
	if err := json.Unmarshal([]byte(out4), &rec); err != nil {
		t.Fatalf("irbench -json output not JSON: %v\n%s", err, out4)
	}
	if rec.ID != "fig1" || !rec.OK || rec.Title == "" || rec.ElapsedMs <= 0 ||
		!strings.Contains(rec.Output, "A[2]A[3]A[6]") {
		t.Fatalf("irbench -json record: %+v", rec)
	}
}

func TestCLIIrvm(t *testing.T) {
	bin := buildTool(t, "irvm")
	out := run(t, bin, "-builtin", "reduce",
		"-sym", "N=16", "-sym", "NPROC=4", "-sym", "A=0",
		"-mem", "16", "-fill", "0:16=1", "-dump", "0:1")
	if !strings.Contains(out, "cycles=") || !strings.Contains(out, "mem[0:1] = [16]") {
		t.Fatalf("irvm output:\n%s", out)
	}
	out2 := run(t, bin, "-builtin", "seq", "-disasm",
		"-sym", "NITER=1", "-sym", "A=0", "-sym", "G=1", "-sym", "F=2")
	if !strings.Contains(out2, "OPX") || !strings.Contains(out2, "sloop") {
		t.Fatalf("irvm -disasm output:\n%s", out2)
	}
}
