package indexedrec

// One benchmark per experiment row of DESIGN.md §3. Custom metrics carry the
// figures' actual units: simulated cycles for the SimParC/PRAM experiments
// (Fig. 3, E10), rounds for the log-depth claims. Wall-clock ns/op covers
// the native-execution rows (E13, E14).

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"indexedrec/internal/cap"
	"indexedrec/internal/core"
	"indexedrec/internal/experiments"
	"indexedrec/internal/gir"
	"indexedrec/internal/graph"
	"indexedrec/internal/lang"
	"indexedrec/internal/livermore"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/pram"
	"indexedrec/internal/scan"
	"indexedrec/internal/simparc"
	"indexedrec/internal/workload"
)

// BenchmarkFig3 regenerates the paper's headline figure on the SimParC
// reconstruction: simulated instruction counts of the parallel OrdinaryIR
// program vs the original loop, n = 50,000, sweeping P. The reported
// "cycles" metric is the figure's Y axis.
func BenchmarkFig3(b *testing.B) {
	n := 50_000
	s := workload.Chain(n)
	init := make([]int64, s.M)
	add := func(a, c int64) int64 { return a + c }

	b.Run("original-loop", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := simparc.RunSeqIR(s, add, init, 1<<34)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles), "cycles")
	})
	for _, p := range []int{1, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("parallel-P%d", p), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := simparc.RunParallelOIR(s, add, init, p, 1<<34)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkScalingLaw (E10) measures the PRAM cost model against
// T(n,P) = (n/P)·log2 n and reports the constant factor.
func BenchmarkScalingLaw(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		s := workload.Chain(n)
		init := make([]int64, s.M)
		for _, p := range []int{1, 16, 256} {
			b.Run(fmt.Sprintf("n%d-P%d", n, p), func(b *testing.B) {
				var t pram.Word
				for i := 0; i < b.N; i++ {
					run, err := pram.RunParallelOIR(s, pram.OpAdd, init, p)
					if err != nil {
						b.Fatal(err)
					}
					t = run.Stats.Time
				}
				law := float64(n) / float64(p) * math.Log2(float64(n))
				b.ReportMetric(float64(t), "sim-time")
				b.ReportMetric(float64(t)/law, "c-factor")
			})
		}
	}
}

// BenchmarkOrdinaryIR (E13) is the native goroutine solver across processor
// counts and workload shapes, against the sequential loop baseline.
func BenchmarkOrdinaryIR(b *testing.B) {
	n := 1 << 18
	op := core.MulMod{M: 1_000_003}
	rng := rand.New(rand.NewSource(9))
	shapes := map[string]*core.System{
		"chain":  workload.Chain(n),
		"random": workload.RandomOrdinary(rng, n, n/2),
	}
	for name, s := range shapes {
		init := workload.InitInt64(rng, s.M, op.M)
		b.Run(name+"/sequential-loop", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.RunSequential[int64](s, op, init)
			}
		})
		for _, p := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/parallel-P%d", name, p), func(b *testing.B) {
				var rounds int
				for i := 0; i < b.N; i++ {
					res, err := ordinary.Solve[int64](s, op, init, ordinary.Options{Procs: p})
					if err != nil {
						b.Fatal(err)
					}
					rounds = res.Rounds
				}
				b.ReportMetric(float64(rounds), "rounds")
			})
		}
	}
}

// BenchmarkGIRPowerAblation (E11): the GIR pipeline on the Fibonacci system
// whose naive trace is exponential; the rounds metric shows the log-depth.
func BenchmarkGIRPowerAblation(b *testing.B) {
	op := core.MulMod{M: 1_000_003}
	for _, n := range []int{64, 256, 1024} {
		s := workload.Fibonacci(n)
		init := make([]int64, n)
		for x := range init {
			init[x] = 3
		}
		b.Run(fmt.Sprintf("fib-n%d", n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := gir.Solve[int64](s, op, init, gir.Options{})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.CAPStats.Rounds
			}
			b.ReportMetric(float64(rounds), "cap-rounds")
		})
	}
}

// BenchmarkCAPVariants (E12): the three CAP engines on a shared graph.
func BenchmarkCAPVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g := cap.FromDAG(graph.Random(rng, 600, 4))
	b.Run("squaring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cap.CountSquaring(g, cap.SquaringOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cap.CountDP(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cap.CountMatrix(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLoop23 (E9): the paper's §3 worked example through the full
// front-end + Möbius + OrdinaryIR pipeline vs the interpreter.
func BenchmarkLoop23(b *testing.B) {
	k := livermore.ByID(23)
	loop, err := lang.Parse(k.DSL)
	if err != nil {
		b.Fatal(err)
	}
	const rows = 4096
	b.Run("sequential-interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env := k.Setup(rows)
			if err := lang.Run(loop, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("auto-parallelized", func(b *testing.B) {
		c := lang.Compile(loop)
		for i := 0; i < b.N; i++ {
			env := k.Setup(rows)
			if err := c.Execute(env, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native-go", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env := k.Setup(rows)
			k.Native(rows, env)
		}
	})
}

// BenchmarkScanVsMoebius (E14): the two parallel routes to a first-order
// linear recurrence.
func BenchmarkScanVsMoebius(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(13))
	a := make([]float64, n)
	bb := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()*1.2 - 0.6
		bb[i] = rng.Float64()
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan.LinearRecurrence(a, bb, 1)
		}
	})
	b.Run("kogge-stone-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan.LinearRecurrenceParallel(a, bb, 1, 0)
		}
	})
	g := make([]int, n-1)
	f := make([]int, n-1)
	for i := range g {
		g[i], f[i] = i+1, i
	}
	ms := moebius.NewLinear(n, g, f, a[1:], bb[1:])
	x0 := make([]float64, n)
	x0[0] = 1
	b.Run("moebius-oir", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ms.Solve(x0, ordinary.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLivermoreClassification (E8): the full §1 classification study.
func BenchmarkLivermoreClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := livermore.ClassificationTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureReproductions regenerates the diagram figures (1, 2, 4, 5,
// 6, 9) through the experiment runner — their cost is the point (all are
// trivially fast; they exist so `go test -bench .` covers every artifact).
func BenchmarkFigureReproductions(b *testing.B) {
	for _, id := range []string{"fig1", "fig2", "fig4", "fig5", "fig6", "fig9"} {
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := experiments.Run(id, &buf, experiments.Options{Quick: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLivermoreNatives runs every kernel's native core loop — the raw
// substrate cost the classification study sits on.
func BenchmarkLivermoreNatives(b *testing.B) {
	const n = 4096
	for _, k := range livermore.All() {
		k := k
		b.Run(fmt.Sprintf("k%02d-%s", k.ID, shortName(k.Name)), func(b *testing.B) {
			env := k.Setup(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Native(n, env)
			}
		})
	}
}

func shortName(s string) string {
	if i := len(s); i > 18 {
		s = s[:18]
	}
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' || r == '(' || r == ')' {
			r = '-'
		}
		out = append(out, r)
	}
	return string(out)
}

// BenchmarkScheduling (E16, ref [5]): block vs cyclic distribution of the
// efficient OrdinaryIR variant on the skewed workload; the sim-time metric
// carries the scheduling gap.
func BenchmarkScheduling(b *testing.B) {
	chain, singles := 1024, 7168
	n := chain + singles
	m := chain + 1 + 2*singles
	s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	for i := 0; i < chain; i++ {
		s.G[i], s.F[i] = i+1, i
	}
	for k := 0; k < singles; k++ {
		s.G[chain+k] = chain + 1 + 2*k
		s.F[chain+k] = chain + 2 + 2*k
	}
	init := make([]pram.Word, m)
	for _, d := range []pram.Dist{pram.DistBlock, pram.DistCyclic} {
		b.Run(d.String(), func(b *testing.B) {
			var t pram.Word
			for i := 0; i < b.N; i++ {
				run, err := pram.RunParallelOIRSched(s, pram.OpAdd, init, 16, d)
				if err != nil {
					b.Fatal(err)
				}
				t = run.Stats.Time
			}
			b.ReportMetric(float64(t), "sim-time")
		})
	}
}

// BenchmarkLivermoreFull runs the full-fidelity multi-loop kernel variants.
func BenchmarkLivermoreFull(b *testing.B) {
	const n = 4096
	for _, fk := range livermore.FullVariants() {
		fk := fk
		b.Run(fmt.Sprintf("k%02d-full", fk.ID), func(b *testing.B) {
			env := fk.Setup(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fk.Run(n, env)
			}
		})
	}
}
