package indexedrec

// Test gates for the hot-path engine: warm plan replays through arenas must
// be allocation-free in steady state, and a persistent worker gang must be
// safely reusable across many concurrent solves (the irserved worker
// pattern). The allocation gates are skipped under the race detector, whose
// instrumentation allocates; the concurrency tests are exactly what -race
// runs are for.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

// hotpathInputs builds one random distinct-g system plus Möbius coefficient
// rows and initial values for the allocation and reuse gates.
func hotpathInputs(t testing.TB, m, n int) (g, f []int, a, b, c, d, x0 []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	s := workload.RandomOrdinary(rng, m, n)
	a = make([]float64, s.N)
	b = make([]float64, s.N)
	c = make([]float64, s.N)
	d = make([]float64, s.N)
	for i := 0; i < s.N; i++ {
		a[i] = 1 + rng.Float64()
		b[i] = rng.Float64()
		c[i] = rng.Float64() / 16
		d[i] = 1 + rng.Float64()
	}
	x0 = make([]float64, s.M)
	for x := range x0 {
		x0[x] = rng.Float64()
	}
	return s.G, s.F, a, b, c, d, x0
}

// TestWarmReplayZeroAlloc asserts the PR's headline allocation contract:
// once a plan is compiled and an arena built, every further replay —
// ordinary (IntAdd kernel), linear, and full Möbius — performs zero
// allocations, with the persistent gang pinned on the context exactly as a
// server worker would hold it.
func TestWarmReplayZeroAlloc(t *testing.T) {
	if parallel.RaceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race job")
	}
	const m, n = 4096, 4096
	g, f, a, b, c, d, x0 := hotpathInputs(t, m, n)
	ctx := context.Background()
	gang := parallel.NewGang(8)
	defer gang.Close()
	gctx := parallel.WithGang(ctx, gang)
	opt := ordinary.Options{Procs: 8}

	rng := rand.New(rand.NewSource(8))
	sys := workload.RandomOrdinary(rng, m, n)
	init := workload.InitInt64(rng, sys.M, 1<<20)
	op, err := ordinary.CompilePlan(ctx, sys)
	if err != nil {
		t.Fatalf("ordinary.CompilePlan: %v", err)
	}
	oar := ordinary.NewArena[int64](op)
	if _, err := oar.SolveCtx(gctx, ir.IntAdd{}, init, opt); err != nil {
		t.Fatalf("ordinary warm replay: %v", err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := oar.SolveCtx(gctx, ir.IntAdd{}, init, opt); err != nil {
			panic(err)
		}
	}); allocs != 0 {
		t.Errorf("ordinary warm replay: %.0f allocs/op, want 0", allocs)
	}

	mp, err := moebius.CompilePlan(ctx, m, g, f)
	if err != nil {
		t.Fatalf("moebius.CompilePlan: %v", err)
	}
	mar := mp.NewArena()
	if _, err := mp.SolveArenaCtx(gctx, mar, a, b, c, d, x0, opt); err != nil {
		t.Fatalf("moebius warm replay: %v", err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := mp.SolveArenaCtx(gctx, mar, a, b, c, d, x0, opt); err != nil {
			panic(err)
		}
	}); allocs != 0 {
		t.Errorf("moebius warm replay: %.0f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := mp.SolveLinearArenaCtx(gctx, mar, a, b, x0, opt); err != nil {
			panic(err)
		}
	}); allocs != 0 {
		t.Errorf("linear warm replay: %.0f allocs/op, want 0", allocs)
	}
}

// TestBlockedWarmReplayZeroAlloc is TestWarmReplayZeroAlloc for the
// blocked-scan schedule: a long-chain plan (auto-selected blocked) must
// replay warm with zero allocations — the segment-summary double buffers
// come out of the arena, and the double-buffer swap allocates nothing.
// Both the kernel (IntAdd) and primed replay paths are gated.
func TestBlockedWarmReplayZeroAlloc(t *testing.T) {
	if parallel.RaceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race job")
	}
	const n = 1 << 15
	ctx := context.Background()
	gang := parallel.NewGang(8)
	defer gang.Close()
	gctx := parallel.WithGang(ctx, gang)
	opt := ordinary.Options{Procs: 8}

	sys := workload.Chain(n)
	rng := rand.New(rand.NewSource(9))
	init := workload.InitInt64(rng, sys.M, 1<<20)
	p, err := ordinary.CompilePlan(ctx, sys)
	if err != nil {
		t.Fatalf("ordinary.CompilePlan: %v", err)
	}
	if !p.BlockedScan() {
		t.Fatalf("Chain(%d) plan schedule = %s, want blocked-scan", n, p.Schedule())
	}
	ar := ordinary.NewArena[int64](p)
	if _, err := ar.SolveCtx(gctx, ir.IntAdd{}, init, opt); err != nil {
		t.Fatalf("blocked warm replay: %v", err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := ar.SolveCtx(gctx, ir.IntAdd{}, init, opt); err != nil {
			panic(err)
		}
	}); allocs != 0 {
		t.Errorf("blocked warm replay: %.0f allocs/op, want 0", allocs)
	}
	if !p.Primeable() {
		t.Fatal("Chain plan should be primeable")
	}
	copy(ar.Buf(), init)
	if allocs := testing.AllocsPerRun(10, func() {
		copy(ar.Buf(), init)
		if _, err := ar.SolvePrimedCtx(gctx, ir.IntAdd{}, opt); err != nil {
			panic(err)
		}
	}); allocs != 0 {
		t.Errorf("blocked primed replay: %.0f allocs/op, want 0", allocs)
	}
}

// TestBlockedGangReuseConcurrentSolves shares one persistent gang across
// concurrent blocked-scan replays on per-goroutine arenas — the race gate
// for the three-phase schedule's gang dispatch and the arena's summary
// double-buffering. Every replay must be bit-identical to a reference.
func TestBlockedGangReuseConcurrentSolves(t *testing.T) {
	const n, workers = 1 << 13, 32
	ctx := context.Background()
	opt := ordinary.Options{Procs: 4}
	sys := workload.Chains(n, 4)
	rng := rand.New(rand.NewSource(10))
	init := workload.InitInt64(rng, sys.M, 1<<20)
	p, err := ordinary.CompilePlan(ctx, sys)
	if err != nil {
		t.Fatalf("ordinary.CompilePlan: %v", err)
	}
	if !p.BlockedScan() {
		t.Fatalf("Chains(%d, 4) plan schedule = %s, want blocked-scan", n, p.Schedule())
	}
	ref, err := ordinary.SolvePlanCtx[int64](ctx, p, ir.IntAdd{}, init, opt)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	want := append([]int64(nil), ref.Values...)

	gang := parallel.NewGang(4)
	defer gang.Close()
	gctx := parallel.WithGang(ctx, gang)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := ordinary.NewArena[int64](p)
			for rep := 0; rep < 4; rep++ {
				out, err := ar.SolveCtx(gctx, ir.IntAdd{}, init, opt)
				if err != nil {
					errs <- err
					return
				}
				for x, v := range out.Values {
					if v != want[x] {
						t.Errorf("concurrent blocked replay cell %d: %d != %d", x, v, want[x])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent blocked replay: %v", err)
	}
}

// TestGangReuseConcurrentSolves shares one persistent gang across many
// concurrent solves on per-goroutine arenas — the irserved worker-pool
// shape, where at most one solve wins the gang per round and the rest take
// the spawn path. Run under -race this is the gang-reuse data-race gate;
// every result must still be bit-identical to a reference solve.
func TestGangReuseConcurrentSolves(t *testing.T) {
	const m, n, workers = 512, 512, 32
	g, f, a, b, c, d, x0 := hotpathInputs(t, m, n)
	ctx := context.Background()
	opt := ordinary.Options{Procs: 4}

	mp, err := moebius.CompilePlan(ctx, m, g, f)
	if err != nil {
		t.Fatalf("moebius.CompilePlan: %v", err)
	}
	ref, err := mp.SolveArenaCtx(ctx, mp.NewArena(), a, b, c, d, x0, opt)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	want := append([]float64(nil), ref...)

	gang := parallel.NewGang(4)
	defer gang.Close()
	gctx := parallel.WithGang(ctx, gang)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := mp.NewArena()
			for rep := 0; rep < 4; rep++ {
				out, err := mp.SolveArenaCtx(gctx, ar, a, b, c, d, x0, opt)
				if err != nil {
					errs <- err
					return
				}
				for x, v := range out {
					if v != want[x] {
						t.Errorf("concurrent replay cell %d: %v != %v", x, v, want[x])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent replay: %v", err)
	}
}
