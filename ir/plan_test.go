package ir

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// randOrdinary builds a random ordinary system with distinct g over m cells.
func randOrdinary(rng *rand.Rand, m, n int) *System {
	perm := rng.Perm(m)
	if n > m {
		n = m
	}
	g := make([]int, n)
	f := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = perm[i]
		f[i] = rng.Intn(m)
	}
	return &System{M: m, N: n, G: g, F: f}
}

// randGeneral builds a random general system (g may repeat, H present).
func randGeneral(rng *rand.Rand, m, n int) *System {
	g := make([]int, n)
	f := make([]int, n)
	h := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = rng.Intn(m)
		f[i] = rng.Intn(m)
		h[i] = rng.Intn(m)
	}
	return &System{M: m, N: n, G: g, F: f, H: h}
}

func TestCompileOrdinaryBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(64)
		s := randOrdinary(rng, m, rng.Intn(m+1))
		init := make([]float64, m)
		for x := range init {
			init[x] = rng.Float64()*100 - 50
		}
		direct, err := SolveOrdinaryCtx[float64](ctx, s, Float64Add{}, init, SolveOptions{Procs: 3})
		if err != nil {
			t.Fatalf("trial %d: direct: %v", trial, err)
		}
		plan, err := CompileCtx(ctx, s, CompileOptions{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		if plan.Family() != FamilyOrdinary {
			t.Fatalf("trial %d: family = %v, want ordinary", trial, plan.Family())
		}
		replay, err := SolveOrdinaryPlanCtx[float64](ctx, plan, Float64Add{}, init, SolveOptions{Procs: 3})
		if err != nil {
			t.Fatalf("trial %d: replay: %v", trial, err)
		}
		for x := range direct.Values {
			if direct.Values[x] != replay.Values[x] {
				t.Fatalf("trial %d cell %d: direct %v != replay %v (float sums must be bit-identical)",
					trial, x, direct.Values[x], replay.Values[x])
			}
		}
		if direct.Rounds != replay.Rounds || direct.Combines != replay.Combines {
			t.Fatalf("trial %d: cost profile diverged: direct (%d rounds, %d combines), replay (%d, %d)",
				trial, direct.Rounds, direct.Combines, replay.Rounds, replay.Combines)
		}
	}
}

func TestCompileGeneralBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	op := MulMod{M: 1_000_003}
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(24)
		s := randGeneral(rng, m, rng.Intn(48))
		init := make([]int64, m)
		for x := range init {
			init[x] = rng.Int63n(1_000_000)
		}
		direct, err := SolveGeneralCtx[int64](ctx, s, op, init, SolveOptions{Procs: 3, MaxExponentBits: 4096})
		if err != nil {
			t.Fatalf("trial %d: direct: %v", trial, err)
		}
		plan, err := CompileCtx(ctx, s, CompileOptions{Family: FamilyGeneral, MaxExponentBits: 4096})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		replay, err := SolveGeneralPlanCtx[int64](ctx, plan, op, init, SolveOptions{Procs: 3})
		if err != nil {
			t.Fatalf("trial %d: replay: %v", trial, err)
		}
		for x := range direct.Values {
			if direct.Values[x] != replay.Values[x] {
				t.Fatalf("trial %d cell %d: direct %d != replay %d", trial, x, direct.Values[x], replay.Values[x])
			}
		}
		if direct.CAPRounds != replay.CAPRounds {
			t.Fatalf("trial %d: CAP rounds diverged: %d vs %d", trial, direct.CAPRounds, replay.CAPRounds)
		}
		for x := range direct.Powers {
			if len(direct.Powers[x]) != len(replay.Powers[x]) {
				t.Fatalf("trial %d cell %d: power traces diverged", trial, x)
			}
			for k := range direct.Powers[x] {
				if direct.Powers[x][k] != replay.Powers[x][k] {
					t.Fatalf("trial %d cell %d term %d: %v != %v",
						trial, x, k, direct.Powers[x][k], replay.Powers[x][k])
				}
			}
		}
	}
}

func TestCompileMoebiusBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ctx := context.Background()
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(48)
		s := randOrdinary(rng, m, rng.Intn(m+1))
		n := s.N
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		x0 := make([]float64, m)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64()*4 - 2
			b[i] = rng.Float64()*4 - 2
			c[i] = rng.Float64() * 0.25
			d[i] = 1 + rng.Float64()
		}
		for x := range x0 {
			x0[x] = rng.Float64()*2 - 1
		}
		direct, derr := SolveMoebiusCtx(ctx, m, s.G, s.F, a, b, c, d, x0, SolveOptions{Procs: 3})
		plan, err := CompileMoebiusCtx(ctx, m, s.G, s.F)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		replay, rerr := SolveMoebiusPlanCtx(ctx, plan, a, b, c, d, x0, SolveOptions{Procs: 3})
		if (derr == nil) != (rerr == nil) {
			t.Fatalf("trial %d: error parity broken: direct %v, replay %v", trial, derr, rerr)
		}
		if derr != nil {
			if !errors.Is(rerr, ErrNonFinite) {
				t.Fatalf("trial %d: replay error %v, want ErrNonFinite", trial, rerr)
			}
			continue
		}
		for x := range direct {
			if direct[x] != replay[x] {
				t.Fatalf("trial %d cell %d: direct %v != replay %v (must be bit-identical)",
					trial, x, direct[x], replay[x])
			}
		}

		// The affine special case through PlanData (nil C/D builds c=0, d=1).
		directLin, err := SolveLinearCtx(ctx, m, s.G, s.F, a, b, x0, SolveOptions{Procs: 2})
		if err != nil {
			continue // a zero divide in the affine variant: nothing to compare
		}
		sol, err := plan.SolveCtx(ctx, PlanData{A: a, B: b, X0: x0, Opts: SolveOptions{Procs: 2}})
		if err != nil {
			t.Fatalf("trial %d: PlanData replay: %v", trial, err)
		}
		for x := range directLin {
			if directLin[x] != sol.Values[x] {
				t.Fatalf("trial %d cell %d: linear direct %v != replay %v", trial, x, directLin[x], sol.Values[x])
			}
		}
	}
}

func TestPlanSolveCtxDispatch(t *testing.T) {
	ctx := context.Background()
	s := &System{M: 4, N: 3, G: []int{1, 2, 3}, F: []int{0, 1, 2}}
	plan, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := plan.SolveCtx(ctx, PlanData{Op: "int64-add", InitInt: []int64{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4}
	for x, v := range sol.ValuesInt {
		if v != want[x] {
			t.Fatalf("cell %d = %d, want %d", x, v, want[x])
		}
	}
	if _, err := plan.SolveCtx(ctx, PlanData{Op: "no-such-op", InitInt: []int64{1, 1, 1, 1}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := SolveGeneralPlanCtx[int64](ctx, plan, IntAdd{}, []int64{1, 1, 1, 1}, SolveOptions{}); !errors.Is(err, ErrPlanFamily) {
		t.Fatalf("family mismatch error = %v, want ErrPlanFamily", err)
	}
}

// TestPlanConcurrentReplay hammers one shared plan from 32 goroutines — the
// plan cache's access pattern — and checks every replay under -race.
func TestPlanConcurrentReplay(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(31))
	s := randOrdinary(rng, 512, 512)
	plan, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gs := randGeneral(rng, 24, 40)
	gplan, err := Compile(gs, CompileOptions{Family: FamilyGeneral, MaxExponentBits: 4096})
	if err != nil {
		t.Fatal(err)
	}
	op := MulMod{M: 1_000_003}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 32; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			init := make([]int64, s.M)
			for x := range init {
				init[x] = int64((x*7 + w) % 1000)
			}
			want, err := SolveOrdinaryCtx[int64](ctx, s, op, init, SolveOptions{Procs: 2})
			if err != nil {
				errs <- err
				return
			}
			ginit := make([]int64, gs.M)
			for x := range ginit {
				ginit[x] = int64((x*13 + w) % 1000)
			}
			gwant, err := SolveGeneralCtx[int64](ctx, gs, op, ginit, SolveOptions{Procs: 2, MaxExponentBits: 4096})
			if err != nil {
				errs <- err
				return
			}
			for rep := 0; rep < 8; rep++ {
				got, err := SolveOrdinaryPlanCtx[int64](ctx, plan, op, init, SolveOptions{Procs: 2})
				if err != nil {
					errs <- err
					return
				}
				for x := range want.Values {
					if got.Values[x] != want.Values[x] {
						errs <- errors.New("ordinary replay diverged under concurrency")
						return
					}
				}
				ggot, err := SolveGeneralPlanCtx[int64](ctx, gplan, op, ginit, SolveOptions{Procs: 2})
				if err != nil {
					errs <- err
					return
				}
				for x := range gwant.Values {
					if ggot.Values[x] != gwant.Values[x] {
						errs <- errors.New("general replay diverged under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPlanFingerprint(t *testing.T) {
	g := []int{1, 2, 3}
	f := []int{0, 1, 2}
	fp := PlanFingerprint(FamilyOrdinary, 3, 4, g, f, nil, 0)
	if fp != PlanFingerprint(FamilyOrdinary, 3, 4, []int{1, 2, 3}, []int{0, 1, 2}, nil, 0) {
		t.Fatal("equal structures produced different fingerprints")
	}
	distinct := map[string]string{
		"family":  PlanFingerprint(FamilyGeneral, 3, 4, g, f, nil, 0),
		"n":       PlanFingerprint(FamilyOrdinary, 2, 4, g[:2], f[:2], nil, 0),
		"m":       PlanFingerprint(FamilyOrdinary, 3, 5, g, f, nil, 0),
		"g":       PlanFingerprint(FamilyOrdinary, 3, 4, []int{1, 3, 2}, f, nil, 0),
		"f":       PlanFingerprint(FamilyOrdinary, 3, 4, g, []int{0, 0, 2}, nil, 0),
		"h":       PlanFingerprint(FamilyOrdinary, 3, 4, g, f, []int{0, 0, 0}, 0),
		"bits":    PlanFingerprint(FamilyOrdinary, 3, 4, g, f, nil, 64),
		"swapped": PlanFingerprint(FamilyOrdinary, 3, 4, f, g, nil, 0),
	}
	for dim, other := range distinct {
		if other == fp {
			t.Fatalf("fingerprint ignores %s", dim)
		}
	}
	// A compiled plan reports the fingerprint of its own structure.
	s := &System{M: 4, N: 3, G: g, F: f}
	plan, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fingerprint() != fp {
		t.Fatalf("plan fingerprint %s != PlanFingerprint %s", plan.Fingerprint(), fp)
	}
	if plan.SizeBytes() <= 0 {
		t.Fatal("plan reports non-positive size")
	}
}
