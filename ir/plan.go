package ir

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"indexedrec/internal/gir"
	"indexedrec/internal/grid2d"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
)

// Compiled solve plans: the compile-once/solve-many split of the solver
// runtime. Every solver family spends a large, data-independent fraction of
// its work on structure-only preprocessing — the ordinary solver's
// chain/trace decomposition depends only on (g, f, n, m), the general
// solver's dependence DAG and CAP path counts only on (g, f, h, n, m), and
// the Möbius reduction's shadow rewrite and composition schedule only on
// (m, g, f). Compile runs that preprocessing once into an immutable Plan;
// the Solve*PlanCtx functions (and the non-generic Plan.SolveCtx
// convenience) replay it against fresh operator/coefficient/init data with
// results bit-identical to the direct Solve* paths.
//
// Plans are safe for concurrent replays from any number of goroutines, and
// report their fingerprint and resident size so callers (internal/server's
// LRU plan cache) can key and bound them.

// Family identifies which solver family a Plan was compiled for.
type Family int

const (
	// FamilyAuto (compile option only) selects FamilyOrdinary when the
	// system qualifies (H = G, G distinct) and FamilyGeneral otherwise.
	FamilyAuto Family = iota
	// FamilyOrdinary is the pointer-jumping solver (SolveOrdinaryCtx).
	FamilyOrdinary
	// FamilyGeneral is the dependence-graph + CAP solver (SolveGeneralCtx).
	FamilyGeneral
	// FamilyMoebius is the fractional-linear family (SolveLinearCtx,
	// SolveLinearExtendedCtx, SolveMoebiusCtx — one structure, three data
	// shapes).
	FamilyMoebius
	// FamilyGrid2D is the 2-D recurrence-grid family (SolveGrid2DCtx):
	// anti-diagonal wavefronts of batched semiring cell updates.
	FamilyGrid2D
)

// String names the family as it appears in fingerprints and metrics.
func (f Family) String() string {
	switch f {
	case FamilyAuto:
		return "auto"
	case FamilyOrdinary:
		return "ordinary"
	case FamilyGeneral:
		return "general"
	case FamilyMoebius:
		return "moebius"
	case FamilyGrid2D:
		return "grid2d"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// CompileOptions configure plan compilation.
type CompileOptions struct {
	// Family forces a solver family; FamilyAuto (the zero value) picks
	// FamilyOrdinary when eligible, else FamilyGeneral. Forcing
	// FamilyGeneral on an ordinary-eligible system is valid (the general
	// solver covers it); forcing FamilyOrdinary on a general system fails.
	Family Family
	// Procs bounds goroutines during compilation (the CAP rounds); <= 0
	// means GOMAXPROCS. Replays take their own procs via SolveOptions.
	Procs int
	// MaxExponentBits caps CAP path-count growth for general-family
	// compilation, exactly as SolveOptions.MaxExponentBits does for direct
	// solves; <= 0 means unlimited. It is part of the plan's fingerprint,
	// because it changes the compiled artifact.
	MaxExponentBits int
}

// ErrPlanFamily is returned when a plan is replayed through the wrong
// family's entry point, or compilation is forced onto an ineligible family.
var ErrPlanFamily = errors.New("ir: plan family mismatch")

// Plan is a compiled indexed-recurrence solve: the structure-only artifacts
// of one family, ready to replay against new data. Immutable and safe for
// concurrent use.
type Plan struct {
	family      Family
	n, m        int
	fingerprint string
	size        int64

	// cells and globalM tag plans compiled from a sparse system (see
	// CompileSparseCtx): the sorted touched global ids the compact values
	// map to, and the global cell count. nil cells means a dense plan.
	cells   []int
	globalM int

	ord *ordinary.Plan
	gen *gir.Plan
	mb  *moebius.Plan
	g2  *grid2d.Plan
}

// Family reports which solver family the plan replays.
func (p *Plan) Family() Family { return p.family }

// N returns the compiled iteration count.
func (p *Plan) N() int { return p.n }

// M returns the compiled cell count.
func (p *Plan) M() int { return p.m }

// Fingerprint returns the canonical structure hash the plan was compiled
// from (see PlanFingerprint) — the natural cache key.
func (p *Plan) Fingerprint() string { return p.fingerprint }

// SizeBytes estimates the plan's resident size, for cache accounting.
func (p *Plan) SizeBytes() int64 { return p.size }

// Schedule names the combine schedule the plan replays: "blocked-scan" (the
// work-optimal O(n) schedule, picked automatically for ordinary systems
// whose write chains are long paths) or "pointer-jumping" for the other
// ordinary plans and the Möbius family (whose float matrix products pin the
// jumping association for bit-identity with the direct solver); "cap" for
// the general family. The selection is a pure function of the system's
// structure, so plans sharing a Fingerprint share a schedule.
func (p *Plan) Schedule() string {
	switch p.family {
	case FamilyOrdinary:
		return p.ord.Schedule()
	case FamilyGeneral:
		return "cap"
	case FamilyGrid2D:
		return "wavefront"
	default:
		return "pointer-jumping"
	}
}

// PlanFingerprint returns a canonical fingerprint of a system's structure:
// a hash over (family, n, m, g, f, h, maxExponentBits). Two solves share a
// fingerprint exactly when they can share a compiled plan. h may be nil
// (ordinary and Möbius families); maxExponentBits only matters for the
// general family and should be 0 otherwise.
func PlanFingerprint(family Family, n, m int, g, f, h []int, maxExponentBits int) string {
	hsh := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		hsh.Write(buf[:])
	}
	writeSlice := func(tag byte, s []int) {
		hsh.Write([]byte{tag})
		writeInt(len(s))
		for _, v := range s {
			writeInt(v)
		}
	}
	hsh.Write([]byte{byte(family)})
	writeInt(n)
	writeInt(m)
	writeInt(maxExponentBits)
	writeSlice('g', g)
	writeSlice('f', f)
	writeSlice('h', h)
	return family.String() + ":" + hex.EncodeToString(hsh.Sum(nil)[:16])
}

// Compile precomputes the structure-only artifacts of a solve — see the
// file comment. It is CompileCtx with a background context.
func Compile(s *System, opt CompileOptions) (*Plan, error) {
	return CompileCtx(context.Background(), s, opt)
}

// CompileCtx compiles a system into a Plan. For the ordinary family this
// builds the write-chain forest and records the full pointer-jumping
// schedule; for the general family it builds the dependence DAG and runs
// CAP (the dominant cost of a general solve, so warm replays skip almost
// everything). Cancelling ctx stops compilation; errors follow the
// hardened-solver contract.
func CompileCtx(ctx context.Context, s *System, opt CompileOptions) (*Plan, error) {
	family := opt.Family
	if family == FamilyAuto {
		if s.Ordinary() && s.GDistinct() {
			family = FamilyOrdinary
		} else {
			family = FamilyGeneral
		}
	}
	switch family {
	case FamilyOrdinary:
		if !s.Ordinary() {
			return nil, fmt.Errorf("%w: %v is not ordinary (H != G)", ErrPlanFamily, s)
		}
		op, err := ordinary.CompilePlan(ctx, s)
		if err != nil {
			return nil, err
		}
		p := &Plan{family: FamilyOrdinary, n: s.N, m: s.M, ord: op}
		p.fingerprint = PlanFingerprint(FamilyOrdinary, s.N, s.M, s.G, s.F, nil, 0)
		p.size = op.SizeBytes()
		return p, nil
	case FamilyGeneral:
		gp, err := gir.CompilePlanCtx(ctx, s, gir.Options{
			Procs:           opt.Procs,
			MaxExponentBits: opt.MaxExponentBits,
		})
		if err != nil {
			return nil, err
		}
		p := &Plan{family: FamilyGeneral, n: s.N, m: s.M, gen: gp}
		p.fingerprint = PlanFingerprint(FamilyGeneral, s.N, s.M, s.G, s.F, s.H, opt.MaxExponentBits)
		p.size = gp.SizeBytes()
		return p, nil
	default:
		return nil, fmt.Errorf("%w: cannot compile family %v", ErrPlanFamily, family)
	}
}

// CompileMoebius compiles the shared structure of the Möbius family —
// the shadow-cell rewrite and the matrix-composition schedule over
// (m, g, f). One Möbius plan serves the plain linear, extended linear and
// full fractional-linear forms: they differ only in data.
func CompileMoebius(m int, g, f []int) (*Plan, error) {
	return CompileMoebiusCtx(context.Background(), m, g, f)
}

// CompileMoebiusCtx is CompileMoebius bounded by ctx.
func CompileMoebiusCtx(ctx context.Context, m int, g, f []int) (*Plan, error) {
	mp, err := moebius.CompilePlan(ctx, m, g, f)
	if err != nil {
		return nil, err
	}
	p := &Plan{family: FamilyMoebius, n: len(g), m: m, mb: mp}
	p.fingerprint = PlanFingerprint(FamilyMoebius, len(g), m, g, f, nil, 0)
	p.size = mp.SizeBytes()
	return p, nil
}

// SolveOrdinaryPlanCtx replays an ordinary-family plan against a fresh
// operator and init array. The replay folds each chain's operand sequence
// in the order SolveOrdinaryCtx consumes it, so results are bit-identical
// to the direct solve's for exactly associative ops; a plan whose Schedule
// is "blocked-scan" re-associates the fold (still the same ordered
// operands), so float results may differ from the direct solve by rounding
// only. Replays draw scratch from the plan's arena pool, so a warm replay's
// only allocation is the returned result.
func SolveOrdinaryPlanCtx[T any](ctx context.Context, p *Plan, op Semigroup[T], init []T, opt SolveOptions) (*OrdinaryResult[T], error) {
	if p.family != FamilyOrdinary {
		return nil, fmt.Errorf("%w: plan is %v, want ordinary", ErrPlanFamily, p.family)
	}
	res, err := ordinary.SolvePlanPooledCtx[T](ctx, p.ord, op, init, ordinary.Options{Procs: opt.Procs})
	if err != nil {
		return nil, err
	}
	return &OrdinaryResult[T]{Values: res.Values, Rounds: res.Rounds, Combines: res.Combines}, nil
}

// SolveGeneralPlanCtx replays a general-family plan: only the
// power-evaluation phase runs (the dependence graph and CAP counts are
// baked into the plan), bit-identical to SolveGeneralCtx.
func SolveGeneralPlanCtx[T any](ctx context.Context, p *Plan, op CommutativeMonoid[T], init []T, opt SolveOptions) (*GeneralResult[T], error) {
	if p.family != FamilyGeneral {
		return nil, fmt.Errorf("%w: plan is %v, want general", ErrPlanFamily, p.family)
	}
	res, err := gir.SolvePlanCtx[T](ctx, p.gen, op, init, opt.Procs)
	if err != nil {
		return nil, err
	}
	out := &GeneralResult[T]{Values: res.Values, Powers: make([][]PowerTerm, len(res.Powers))}
	if res.CAPStats != nil {
		out.CAPRounds = res.CAPStats.Rounds
	}
	for x, terms := range res.Powers {
		pts := make([]PowerTerm, len(terms))
		for k, t := range terms {
			pts[k] = PowerTerm{Cell: t.Sink, Exp: t.Count.String()}
		}
		out.Powers[x] = pts
	}
	return out, nil
}

// SolveMoebiusPlanCtx replays a Möbius-family plan against fresh
// coefficients and initial values, bit-identical to SolveMoebiusCtx.
// For the plain linear form pass c = all zeros, d = all ones (or use
// PlanData.SolveCtx, which builds them); for the extended form rewrite
// b[i] += x0[g[i]] first, as SolveLinearExtendedCtx does.
func SolveMoebiusPlanCtx(ctx context.Context, p *Plan, a, b, c, d, x0 []float64, opt SolveOptions) ([]float64, error) {
	if p.family != FamilyMoebius {
		return nil, fmt.Errorf("%w: plan is %v, want moebius", ErrPlanFamily, p.family)
	}
	return p.mb.SolveCtx(ctx, a, b, c, d, x0, ordinary.Options{Procs: opt.Procs})
}

// PlanData is the per-solve data a compiled plan is replayed against — the
// complement of the structure captured at compile time. Exactly one family's
// fields apply:
//
//   - ordinary/general: Op (and Mod for the modular operators) plus exactly
//     one of InitInt/InitFloat, matching the operator's domain;
//   - moebius: the coefficient arrays A, B (and C, D for the full
//     fractional-linear form; omitted means the affine c=0, d=1) plus X0.
type PlanData struct {
	// Op names the operator (see OpNames); Mod parameterizes the modular
	// operators. Ordinary and general families only.
	Op  string
	Mod int64
	// InitInt / InitFloat is the initial array for integer / float
	// operators. Ordinary and general families only.
	InitInt   []int64
	InitFloat []float64
	// WithPowers requests the symbolic power traces in the solution
	// (general family; they can be large, so default off).
	WithPowers bool
	// A, B, C, D are the per-iteration Möbius coefficients; nil C and D
	// select the affine form. Möbius family only.
	A, B, C, D []float64
	// X0 is the initial value array. Möbius family only.
	X0 []float64
	// Grid is the full 2-D system (coefficient grids + boundaries); the
	// plan only fixes its structure. Grid2D family only.
	Grid *Grid2DSystem
	// Opts carries replay-time options (Procs; MaxExponentBits is a
	// compile-time property of general plans and is ignored here).
	Opts SolveOptions
}

// PlanSolution is the family-tagged result of Plan.SolveCtx. For the
// ordinary and general families exactly one of ValuesInt/ValuesFloat is set,
// matching the operator's domain; for the Möbius family Values is set.
type PlanSolution struct {
	// ValuesInt / ValuesFloat is the final array (ordinary and general).
	ValuesInt   []int64
	ValuesFloat []float64
	// Values is the final array (moebius).
	Values []float64
	// Rounds and Combines report the replayed ordinary schedule's cost.
	Rounds   int
	Combines int64
	// CAPRounds reports the compiled CAP round count (general).
	CAPRounds int
	// Powers carries the symbolic traces when PlanData.WithPowers was set.
	Powers [][]PowerTerm
}

// SolveCtx replays the plan against data, dispatching on the plan's family.
// It is the non-generic convenience over SolveOrdinaryPlanCtx /
// SolveGeneralPlanCtx / SolveMoebiusPlanCtx for callers (like the solve
// service) whose operator arrives as a name; results are bit-identical to
// the corresponding direct Solve*Ctx call.
func (p *Plan) SolveCtx(ctx context.Context, data PlanData) (*PlanSolution, error) {
	switch p.family {
	case FamilyMoebius:
		var (
			values []float64
			err    error
		)
		if data.C == nil && data.D == nil {
			// Affine form: the plan's pooled arenas cache the c = 0, d = 1
			// rows, so no per-solve coefficient allocation.
			values, err = p.mb.SolveLinearCtx(ctx, data.A, data.B, data.X0, ordinary.Options{Procs: data.Opts.Procs})
		} else {
			values, err = SolveMoebiusPlanCtx(ctx, p, data.A, data.B, data.C, data.D, data.X0, data.Opts)
		}
		if err != nil {
			return nil, err
		}
		return &PlanSolution{Values: values}, nil
	case FamilyGrid2D:
		res, err := SolveGrid2DPlanCtx(ctx, p, data.Grid, data.Opts)
		if err != nil {
			return nil, err
		}
		return &PlanSolution{Values: res.Values, Rounds: res.Rounds}, nil
	case FamilyOrdinary, FamilyGeneral:
		// fall through to the operator dispatch below
	default:
		return nil, fmt.Errorf("%w: cannot replay family %v", ErrPlanFamily, p.family)
	}

	iop, err := IntOpByName(data.Op, data.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		if data.InitInt == nil {
			return nil, fmt.Errorf("ir: op %q has integer domain but PlanData.InitInt is nil", data.Op)
		}
		if p.family == FamilyOrdinary {
			res, err := SolveOrdinaryPlanCtx[int64](ctx, p, iop, data.InitInt, data.Opts)
			if err != nil {
				return nil, err
			}
			return &PlanSolution{ValuesInt: res.Values, Rounds: res.Rounds, Combines: res.Combines}, nil
		}
		res, err := SolveGeneralPlanCtx[int64](ctx, p, iop, data.InitInt, data.Opts)
		if err != nil {
			return nil, err
		}
		sol := &PlanSolution{ValuesInt: res.Values, CAPRounds: res.CAPRounds}
		if data.WithPowers {
			sol.Powers = res.Powers
		}
		return sol, nil
	}
	fop, err := FloatOpByName(data.Op)
	if err != nil {
		return nil, err
	}
	if fop == nil {
		return nil, fmt.Errorf("ir: unknown op %q (one of %v)", data.Op, OpNames())
	}
	if data.InitFloat == nil {
		return nil, fmt.Errorf("ir: op %q has float domain but PlanData.InitFloat is nil", data.Op)
	}
	if p.family == FamilyOrdinary {
		res, err := SolveOrdinaryPlanCtx[float64](ctx, p, fop, data.InitFloat, data.Opts)
		if err != nil {
			return nil, err
		}
		return &PlanSolution{ValuesFloat: res.Values, Rounds: res.Rounds, Combines: res.Combines}, nil
	}
	res, err := SolveGeneralPlanCtx[float64](ctx, p, fop, data.InitFloat, data.Opts)
	if err != nil {
		return nil, err
	}
	sol := &PlanSolution{ValuesFloat: res.Values, CAPRounds: res.CAPRounds}
	if data.WithPowers {
		sol.Powers = res.Powers
	}
	return sol, nil
}
