// Package ir is the public API of the indexedrec library: indexed
// recurrence systems and their O(log n) parallel solvers, from "Parallel
// Solutions of Indexed Recurrence Equations" (Ben-Asher & Haber, IPPS 1997).
//
// A system models the sequential loop
//
//	for i = 0 .. n-1:  A[G[i]] = op(A[F[i]], A[H[i]])
//
// (H nil means H = G, the "ordinary" form). Three solvers cover the paper's
// three tractable variants:
//
//   - SolveOrdinary — ordinary form with distinct G, any associative op
//     (order preserved; op need not be commutative); pointer jumping,
//     O(log n) rounds.
//   - SolveLinear / SolveLinearExtended / SolveMoebius — the affine and
//     fractional-linear recurrences X[g] := (a·X[f]+b)/(c·X[f]+d), reduced
//     to SolveOrdinary over 2×2 matrices (the paper's Möbius
//     transformation).
//   - SolveGeneral — arbitrary G, F, H with a commutative op and atomic
//     powers; dependence-graph path counting (CAP).
//
// Operators implement Semigroup (associativity), Monoid (identity), or
// CommutativeMonoid (commutativity + atomic Pow) — satisfaction is
// structural, so user-defined operators just implement the methods. A
// library of standard operators (IntAdd, MulMod, Concat, ...) is
// re-exported here.
//
// RunSequential executes the loop as written and is the semantic reference
// for every solver.
package ir

import (
	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
)

// System describes an indexed recurrence system; see core.System.
type System = core.System

// FromFuncs tabulates index functions g, f, h over 0..n-1 (h nil for the
// ordinary form H = G).
func FromFuncs(n, m int, g, f, h func(i int) int) *System {
	return core.FromFuncs(n, m, g, f, h)
}

// Operator interfaces. User types satisfy them structurally.
type (
	// Semigroup is an associative binary operation.
	Semigroup[T any] = core.Semigroup[T]
	// Monoid adds an identity element.
	Monoid[T any] = core.Monoid[T]
	// CommutativeMonoid adds commutativity and an atomic power, the
	// general-IR solver's contract.
	CommutativeMonoid[T any] = core.CommutativeMonoid[T]
)

// Standard operators.
type (
	IntAdd     = core.IntAdd
	IntMax     = core.IntMax
	IntMin     = core.IntMin
	IntXor     = core.IntXor
	Gcd        = core.Gcd
	MulMod     = core.MulMod
	AddMod     = core.AddMod
	Float64Add = core.Float64Add
	Float64Mul = core.Float64Mul
	Float64Min = core.Float64Min
	Float64Max = core.Float64Max
	BigMul     = core.BigMul
	Concat     = core.Concat
)

// RunSequential executes the loop exactly as written — the semantic
// definition of the system's result.
func RunSequential[T any](s *System, op Semigroup[T], init []T) []T {
	return core.RunSequential[T](s, op, init)
}

// OrdinaryResult is the outcome of SolveOrdinary.
type OrdinaryResult[T any] struct {
	// Values is the final array (equals RunSequential's output).
	Values []T
	// Rounds is the pointer-jumping round count, ⌈log₂ of the longest
	// write chain⌉.
	Rounds int
	// Combines is the total number of op applications (the work term).
	Combines int64
}

// SolveOrdinary solves an ordinary system (H = G, G distinct) with the
// paper's O(log n) pointer-jumping algorithm on up to procs goroutines
// (procs <= 0 selects GOMAXPROCS). op must be associative; operand order is
// preserved, so non-commutative operators are fine.
func SolveOrdinary[T any](s *System, op Semigroup[T], init []T, procs int) (*OrdinaryResult[T], error) {
	res, err := ordinary.Solve[T](s, op, init, ordinary.Options{Procs: procs})
	if err != nil {
		return nil, err
	}
	return &OrdinaryResult[T]{Values: res.Values, Rounds: res.Rounds, Combines: res.Combines}, nil
}

// PowerTerm is one factor A0[Cell]^Exp of a general solution's trace.
type PowerTerm struct {
	Cell int
	Exp  string // decimal; exponents can exceed any fixed-width integer
}

// GeneralResult is the outcome of SolveGeneral.
type GeneralResult[T any] struct {
	// Values is the final array.
	Values []T
	// Powers[x] is cell x's trace as a product of powers of initial
	// values (the paper's Fig. 5 artifact).
	Powers [][]PowerTerm
	// CAPRounds is the path-counting round count (log of the dependence
	// depth).
	CAPRounds int
}

// SolveGeneral solves an arbitrary system (any G, F, H — G need not be
// distinct) with the paper's dependence-graph + CAP algorithm. op must be
// commutative with an atomic power.
func SolveGeneral[T any](s *System, op CommutativeMonoid[T], init []T, procs int) (*GeneralResult[T], error) {
	res, err := gir.Solve[T](s, op, init, gir.Options{Procs: procs})
	if err != nil {
		return nil, err
	}
	out := &GeneralResult[T]{Values: res.Values, Powers: make([][]PowerTerm, len(res.Powers))}
	if res.CAPStats != nil {
		out.CAPRounds = res.CAPStats.Rounds
	}
	for x, terms := range res.Powers {
		pts := make([]PowerTerm, len(terms))
		for k, t := range terms {
			pts[k] = PowerTerm{Cell: t.Sink, Exp: t.Count.String()}
		}
		out.Powers[x] = pts
	}
	return out, nil
}

// SolveLinear solves X[g(i)] := a[i]·X[f(i)] + b[i] (g distinct) via the
// Möbius reduction, returning the final X array.
func SolveLinear(m int, g, f []int, a, b, x0 []float64, procs int) ([]float64, error) {
	return moebius.NewLinear(m, g, f, a, b).Solve(x0, ordinary.Options{Procs: procs})
}

// SolveLinearExtended solves X[g(i)] := X[g(i)] + a[i]·X[f(i)] + b[i]
// (g distinct), the paper's extended form.
func SolveLinearExtended(m int, g, f []int, a, b, x0 []float64, procs int) ([]float64, error) {
	return moebius.NewExtended(m, g, f, a, b, x0).Solve(x0, ordinary.Options{Procs: procs})
}

// SolveMoebius solves the full fractional-linear form
// X[g(i)] := (a[i]·X[f(i)] + b[i]) / (c[i]·X[f(i)] + d[i]) (g distinct).
func SolveMoebius(m int, g, f []int, a, b, c, d, x0 []float64, procs int) ([]float64, error) {
	ms := &moebius.MoebiusSystem{M: m, G: g, F: f, A: a, B: b, C: c, D: d}
	return ms.Solve(x0, ordinary.Options{Procs: procs})
}
