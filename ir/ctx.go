package ir

import (
	"context"
	"errors"

	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
)

// This file is the hardened half of the public API: context-accepting,
// error-returning variants of every solver. The contract, shared by all of
// them:
//
//   - invalid input (shape mismatches, out-of-range indices, wrong init
//     length) returns a validated error — nothing panics;
//   - a panic or parallel.Abort inside a user operator (Combine/Pow) or
//     callback is recovered and returned as an error, with every worker
//     goroutine joined — the process never crashes and nothing leaks;
//   - cancelling ctx stops the solve between rounds/chunks and returns
//     ctx.Err() promptly;
//   - exponent growth in the general solver is bounded by MaxExponentBits,
//     surfacing ErrExponentLimit instead of exhausting memory.
//
// The legacy Solve* functions remain as thin wrappers with their historical
// panicking behavior on init-length mismatches.

// Typed errors a robust caller can match with errors.Is.
var (
	// ErrInvalidSystem wraps every structural validation failure.
	ErrInvalidSystem = core.ErrInvalidSystem
	// ErrExponentLimit is returned by SolveGeneralCtx when a trace
	// exponent exceeds SolveOptions.MaxExponentBits.
	ErrExponentLimit = gir.ErrExponentLimit
	// ErrNonFinite is returned by the Möbius solvers for NaN/Inf
	// coefficients or a division by zero along a composed chain.
	ErrNonFinite = moebius.ErrNonFinite
)

// SolveOptions configure the hardened solvers.
type SolveOptions struct {
	// Procs bounds the goroutines per parallel step; <= 0 means
	// GOMAXPROCS.
	Procs int
	// MaxExponentBits caps trace-exponent bit length in SolveGeneralCtx
	// (path counts grow like fib(n)); <= 0 means unlimited.
	MaxExponentBits int
}

// SolveOrdinaryCtx is the hardened SolveOrdinary; see the file comment for
// the error and cancellation contract.
func SolveOrdinaryCtx[T any](ctx context.Context, s *System, op Semigroup[T], init []T, opt SolveOptions) (*OrdinaryResult[T], error) {
	res, err := ordinary.SolveCtx[T](ctx, s, op, init, ordinary.Options{Procs: opt.Procs})
	if err != nil {
		return nil, err
	}
	return &OrdinaryResult[T]{Values: res.Values, Rounds: res.Rounds, Combines: res.Combines}, nil
}

// SolveGeneralCtx is the hardened SolveGeneral; see the file comment for
// the error and cancellation contract.
func SolveGeneralCtx[T any](ctx context.Context, s *System, op CommutativeMonoid[T], init []T, opt SolveOptions) (*GeneralResult[T], error) {
	res, err := gir.SolveCtx[T](ctx, s, op, init, gir.Options{
		Procs:           opt.Procs,
		MaxExponentBits: opt.MaxExponentBits,
	})
	if err != nil {
		return nil, err
	}
	out := &GeneralResult[T]{Values: res.Values, Powers: make([][]PowerTerm, len(res.Powers))}
	if res.CAPStats != nil {
		out.CAPRounds = res.CAPStats.Rounds
	}
	for x, terms := range res.Powers {
		pts := make([]PowerTerm, len(terms))
		for k, t := range terms {
			pts[k] = PowerTerm{Cell: t.Sink, Exp: t.Count.String()}
		}
		out.Powers[x] = pts
	}
	return out, nil
}

// SolveLinearCtx is the hardened SolveLinear; non-finite inputs or outputs
// return ErrNonFinite instead of propagating IEEE Inf/NaN.
func SolveLinearCtx(ctx context.Context, m int, g, f []int, a, b, x0 []float64, opt SolveOptions) ([]float64, error) {
	return moebius.NewLinear(m, g, f, a, b).SolveCtx(ctx, x0, ordinary.Options{Procs: opt.Procs})
}

// SolveLinearExtendedCtx is the hardened SolveLinearExtended.
func SolveLinearExtendedCtx(ctx context.Context, m int, g, f []int, a, b, x0 []float64, opt SolveOptions) ([]float64, error) {
	return moebius.NewExtended(m, g, f, a, b, x0).SolveCtx(ctx, x0, ordinary.Options{Procs: opt.Procs})
}

// SolveMoebiusCtx is the hardened SolveMoebius.
func SolveMoebiusCtx(ctx context.Context, m int, g, f []int, a, b, c, d, x0 []float64, opt SolveOptions) ([]float64, error) {
	ms := &moebius.MoebiusSystem{M: m, G: g, F: f, A: a, B: b, C: c, D: d}
	return ms.SolveCtx(ctx, x0, ordinary.Options{Procs: opt.Procs})
}

// IsWorkerPanic reports whether err originated as a recovered panic in a
// worker goroutine and, if so, returns the panic payload's description.
func IsWorkerPanic(err error) (string, bool) {
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		return pe.Error(), true
	}
	return "", false
}
