package ir_test

// Tests exercise the public API exactly the way a downstream user would:
// importing only indexedrec/ir, including a user-defined operator that
// satisfies the Semigroup contract structurally.

import (
	"math"
	"math/rand"
	"testing"

	"indexedrec/ir"
)

func TestSolveOrdinaryPublicAPI(t *testing.T) {
	n := 1000
	s := ir.FromFuncs(n, n+1,
		func(i int) int { return i + 1 },
		func(i int) int { return i },
		nil,
	)
	init := make([]int64, n+1)
	for x := range init {
		init[x] = int64(x)
	}
	want := ir.RunSequential[int64](s, ir.IntAdd{}, init)
	res, err := ir.SolveOrdinary[int64](s, ir.IntAdd{}, init, 4)
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want[x])
		}
	}
	if res.Rounds != 10 {
		t.Fatalf("Rounds = %d, want 10", res.Rounds)
	}
}

// userOp is a downstream-defined operator: saturating addition at 100.
// It implements ir.Semigroup purely structurally.
type userOp struct{}

func (userOp) Name() string { return "saturating-add" }
func (userOp) Combine(a, b int64) int64 {
	s := a + b
	if s > 100 {
		return 100
	}
	return s
}

func TestUserDefinedOperator(t *testing.T) {
	s := ir.FromFuncs(50, 51,
		func(i int) int { return i + 1 },
		func(i int) int { return i },
		nil,
	)
	init := make([]int64, 51)
	for x := range init {
		init[x] = 7
	}
	want := ir.RunSequential[int64](s, userOp{}, init)
	res, err := ir.SolveOrdinary[int64](s, userOp{}, init, 2)
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want[x])
		}
	}
	if res.Values[50] != 100 {
		t.Fatalf("saturation lost: %d", res.Values[50])
	}
}

func TestSolveGeneralPublicAPI(t *testing.T) {
	// Fibonacci GIR through the public API.
	n := 30
	s := ir.FromFuncs(n-2, n,
		func(i int) int { return i + 2 },
		func(i int) int { return i + 1 },
		func(i int) int { return i },
	)
	op := ir.MulMod{M: 1_000_003}
	init := make([]int64, n)
	for x := range init {
		init[x] = int64(x + 2)
	}
	want := ir.RunSequential[int64](s, op, init)
	res, err := ir.SolveGeneral[int64](s, op, init, 4)
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want[x])
		}
	}
	if res.CAPRounds < 4 {
		t.Fatalf("CAPRounds = %d, suspicious", res.CAPRounds)
	}
	last := res.Powers[n-1]
	if len(last) != 2 || last[0].Cell != 0 || last[1].Cell != 1 {
		t.Fatalf("Powers[%d] = %v", n-1, last)
	}
	if last[1].Exp != "514229" { // fib(29)
		t.Fatalf("exponent = %s, want 514229", last[1].Exp)
	}
}

func TestSolveLinearPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := 40
	perm := rng.Perm(m)
	n := 30
	g := make([]int, n)
	f := make([]int, n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		g[i], f[i] = perm[i], rng.Intn(m)
		a[i], b[i] = rng.Float64()-0.5, rng.Float64()-0.5
	}
	x0 := make([]float64, m)
	for x := range x0 {
		x0[x] = rng.Float64()
	}
	got, err := ir.SolveLinear(m, g, f, a, b, x0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: run the loop directly.
	want := append([]float64(nil), x0...)
	for i := 0; i < n; i++ {
		want[g[i]] = a[i]*want[f[i]] + b[i]
	}
	for x := range want {
		if math.Abs(got[x]-want[x]) > 1e-9 {
			t.Fatalf("cell %d: got %v, want %v", x, got[x], want[x])
		}
	}
}

func TestSolveLinearExtendedPublicAPI(t *testing.T) {
	m, n := 20, 15
	g := make([]int, n)
	f := make([]int, n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		g[i], f[i] = i+5, i
		a[i], b[i] = 0.5, 1
	}
	x0 := make([]float64, m)
	for x := range x0 {
		x0[x] = float64(x)
	}
	got, err := ir.SolveLinearExtended(m, g, f, a, b, x0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), x0...)
	for i := 0; i < n; i++ {
		want[g[i]] = want[g[i]] + a[i]*want[f[i]] + b[i]
	}
	for x := range want {
		if math.Abs(got[x]-want[x]) > 1e-9 {
			t.Fatalf("cell %d: got %v, want %v", x, got[x], want[x])
		}
	}
}

func TestSolveMoebiusPublicAPI(t *testing.T) {
	n := 20
	m := n + 1
	g := make([]int, n)
	f := make([]int, n)
	one := make([]float64, n)
	two := make([]float64, n)
	for i := 0; i < n; i++ {
		g[i], f[i] = i+1, i
		one[i], two[i] = 1, 2
	}
	x0 := make([]float64, m)
	x0[0] = 1
	// X[i+1] = (X[i] + 1) / (X[i] + 2)
	got, err := ir.SolveMoebius(m, g, f, one, one, one, two, x0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), x0...)
	for i := 0; i < n; i++ {
		want[i+1] = (want[i] + 1) / (want[i] + 2)
	}
	for x := range want {
		if math.Abs(got[x]-want[x]) > 1e-12 {
			t.Fatalf("cell %d: got %v, want %v", x, got[x], want[x])
		}
	}
}

func TestSolveOrdinaryRejectsBadSystem(t *testing.T) {
	s := &ir.System{M: 2, N: 2, G: []int{0, 0}, F: []int{1, 1}}
	if _, err := ir.SolveOrdinary[int64](s, ir.IntAdd{}, []int64{1, 2}, 0); err == nil {
		t.Fatal("non-distinct g accepted")
	}
}

func TestScanPublicAPI(t *testing.T) {
	xs := []int64{1, 2, 3, 4, 5}
	got := ir.Scan[int64](ir.IntAdd{}, xs, 2)
	want := []int64{1, 3, 6, 10, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestLinearChainPublicAPI(t *testing.T) {
	a := []float64{0, 2, 2, 2}
	b := []float64{0, 1, 1, 1}
	got := ir.LinearChain(a, b, 0, 2)
	want := []float64{0, 1, 3, 7}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v", got)
		}
	}
}

func TestKTermChainPublicAPI(t *testing.T) {
	n := 10
	ones := make([]float64, n)
	zeros := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	got, err := ir.KTermChain(2, [][]float64{ones, ones}, zeros, []float64{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("got %v", got)
		}
	}
}
