package ir

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"

	"indexedrec/internal/core"
)

// Sparse systems: the compressed encoding for recurrences that touch only
// n ≪ m cells of a large array. A SparseSystem carries the sorted touched
// index set plus the recurrence remapped onto compact ids, so compilation,
// scheduling, arenas, and fingerprints are all sized by the touched count
// n_c rather than the global cell count m — turning O(m) walks into O(n)
// across the whole hot path while staying bit-identical to the dense solve
// (the compact relabeling is order-preserving, so the chain forest, schedule
// selection, and combine order are isomorphic; see DESIGN §16).
//
// SetSparseEnabled is the operational kill switch: with the fast path off,
// the facade solvers expand the sparse system to its dense form, solve that,
// and gather the touched cells back — bit-identical by construction, at the
// dense cost. Plans compiled by CompileSparse always replay the compact
// structure (a compiled artifact does not change shape under the switch);
// the switch gates which path new solves and servers choose.

// SparseSystem is the compressed (CSR-like) system form; see
// core.SparseSystem for the invariants and the bit-identity argument.
type SparseSystem = core.SparseSystem

// ErrInvalidSparse wraps sparse-encoding validation failures (unsorted,
// duplicate, or out-of-range touched-cell lists, compact ids out of range).
// It is distinct from ErrInvalidSystem so transports can map it separately;
// irserved answers 422 for sparse-encoding defects.
var ErrInvalidSparse = core.ErrInvalidSparse

// CompressSystem converts a dense system to the sparse form, collecting the
// touched index set and remapping g/f/h onto compact ids.
func CompressSystem(s *System) (*SparseSystem, error) { return core.CompressSystem(s) }

// NewSparseSystem builds a sparse system from global-id index maps (h may be
// nil for the ordinary form) without materializing a dense System.
func NewSparseSystem(m int, g, f, h []int) (*SparseSystem, error) {
	return core.NewSparseSystem(m, g, f, h)
}

// SparseFromCompact builds a sparse system from an already-compressed
// encoding (the wire shape): global cell count, touched-cell list, and index
// maps over compact ids. All defects wrap ErrInvalidSparse.
func SparseFromCompact(m int, cells, g, f, h []int) (*SparseSystem, error) {
	return core.SparseFromCompact(m, cells, g, f, h)
}

// sparseDisabled flips the sparse fast path off; the zero value (enabled) is
// the default, mirroring the blocked-scan and kernel kill switches.
var sparseDisabled atomic.Bool

// SetSparseEnabled toggles the sparse fast path at runtime and returns the
// previous setting. Disabling it routes SolveSparseOrdinaryCtx /
// SolveSparseGeneralCtx (and the servers' sparse endpoints) through the
// dense expansion — bit-identical results at dense cost, the operational
// escape hatch if the compact path ever misbehaves. Already-compiled sparse
// plans keep replaying their compact structure.
func SetSparseEnabled(on bool) bool { return !sparseDisabled.Swap(!on) }

// SparseEnabled reports whether the sparse fast path is active.
func SparseEnabled() bool { return !sparseDisabled.Load() }

// SolveSparseOrdinaryCtx solves an ordinary sparse system. init is in
// compact order (length sp.NumCells()), as are the result values — index i
// corresponds to global cell sp.Cells[i]. With the fast path enabled the
// compact system is solved directly in O(n_c); with it disabled the system
// is expanded to dense form (O(m) memory) and the touched cells gathered
// back, bit-identically. The error contract matches SolveOrdinaryCtx.
func SolveSparseOrdinaryCtx[T any](ctx context.Context, sp *SparseSystem, op Semigroup[T], init []T, opt SolveOptions) (*OrdinaryResult[T], error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if SparseEnabled() {
		return SolveOrdinaryCtx(ctx, sp.Compact, op, init, opt)
	}
	full, err := core.ExpandInit(sp, init)
	if err != nil {
		return nil, err
	}
	res, err := SolveOrdinaryCtx(ctx, sp.Dense(), op, full, opt)
	if err != nil {
		return nil, err
	}
	vals, err := core.GatherTouched(sp, res.Values)
	if err != nil {
		return nil, err
	}
	return &OrdinaryResult[T]{Values: vals, Rounds: res.Rounds, Combines: res.Combines}, nil
}

// SolveSparseGeneralCtx solves a general-family sparse system; init and
// values are in compact order like SolveSparseOrdinaryCtx's. Power traces,
// when present, are also in compact order but name global cells in
// PowerTerm.Cell. The error contract matches SolveGeneralCtx.
func SolveSparseGeneralCtx[T any](ctx context.Context, sp *SparseSystem, op CommutativeMonoid[T], init []T, opt SolveOptions) (*GeneralResult[T], error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if SparseEnabled() {
		res, err := SolveGeneralCtx(ctx, sp.Compact, op, init, opt)
		if err != nil {
			return nil, err
		}
		for _, terms := range res.Powers {
			for k := range terms {
				terms[k].Cell = sp.Cells[terms[k].Cell]
			}
		}
		return res, nil
	}
	full, err := core.ExpandInit(sp, init)
	if err != nil {
		return nil, err
	}
	res, err := SolveGeneralCtx(ctx, sp.Dense(), op, full, opt)
	if err != nil {
		return nil, err
	}
	vals, err := core.GatherTouched(sp, res.Values)
	if err != nil {
		return nil, err
	}
	out := &GeneralResult[T]{Values: vals, CAPRounds: res.CAPRounds}
	if res.Powers != nil {
		out.Powers, err = core.GatherTouched(sp, res.Powers)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SparseFingerprint returns the canonical structure hash of a sparse system:
// a hash over (family, n, n_c, global m, touched cells, compact g/f/h,
// maxExponentBits), prefixed "sparse-<family>:". Like PlanFingerprint it is
// structure-only and machine-independent — two sparse solves share a
// fingerprint exactly when they can share a compiled plan — and it can never
// collide with a dense fingerprint (distinct prefix).
func SparseFingerprint(family Family, sp *SparseSystem, maxExponentBits int) string {
	hsh := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		hsh.Write(buf[:])
	}
	writeSlice := func(tag byte, s []int) {
		hsh.Write([]byte{tag})
		writeInt(len(s))
		for _, v := range s {
			writeInt(v)
		}
	}
	hsh.Write([]byte{byte(family)})
	writeInt(sp.Compact.N)
	writeInt(sp.Compact.M)
	writeInt(sp.M)
	writeInt(maxExponentBits)
	writeSlice('c', sp.Cells)
	writeSlice('g', sp.Compact.G)
	writeSlice('f', sp.Compact.F)
	writeSlice('h', sp.Compact.H)
	return "sparse-" + family.String() + ":" + hex.EncodeToString(hsh.Sum(nil)[:16])
}

// CompileSparse compiles a sparse system into a Plan sized by the touched
// count. It is CompileSparseCtx with a background context.
func CompileSparse(sp *SparseSystem, opt CompileOptions) (*Plan, error) {
	return CompileSparseCtx(context.Background(), sp, opt)
}

// CompileSparseCtx compiles the compact system — chain forest, schedule,
// arenas all over touched cells only, so compile cost and plan size are
// O(n_c log n_c) regardless of the global cell count — and tags the plan
// with the touched-cell list and global size. The plan replays exactly like
// a dense plan over n_c cells: init and values are in compact order, and
// Plan.TouchedCells maps them back to global ids. Sparse plans replay the
// compact structure even when SetSparseEnabled is off (the switch gates path
// selection at solve submission, not compiled artifacts). Family selection
// and errors follow CompileCtx; the fingerprint is SparseFingerprint's.
func CompileSparseCtx(ctx context.Context, sp *SparseSystem, opt CompileOptions) (*Plan, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	p, err := CompileCtx(ctx, sp.Compact, opt)
	if err != nil {
		return nil, err
	}
	p.cells = sp.Cells
	p.globalM = sp.M
	p.fingerprint = SparseFingerprint(p.family, sp, opt.MaxExponentBits)
	p.size += int64(len(sp.Cells)) * 8
	return p, nil
}

// Sparse reports whether the plan was compiled from a sparse system via
// CompileSparse; its M() is then the touched-cell count, not the global one.
func (p *Plan) Sparse() bool { return p.cells != nil }

// TouchedCells returns the sorted global cell ids a sparse plan's compact
// values correspond to (nil for dense plans). The slice is owned by the
// plan; callers must not mutate it.
func (p *Plan) TouchedCells() []int { return p.cells }

// GlobalM returns the global cell count of the array the plan addresses:
// the sparse system's full extent for sparse plans, and M() for dense ones.
func (p *Plan) GlobalM() int {
	if p.cells != nil {
		return p.globalM
	}
	return p.m
}
