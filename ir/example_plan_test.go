package ir_test

import (
	"context"
	"fmt"

	"indexedrec/ir"
)

// Compile separates the structure-only work (index maps, schedule) from the
// data: one plan, many solves. Each replay is bit-identical to the direct
// SolveOrdinary call but skips the per-solve analysis.
func ExampleCompile() {
	sys := ir.FromFuncs(7, 8,
		func(i int) int { return i + 1 }, // g: write cell i+1
		func(i int) int { return i },     // f: read cell i
		nil,                              // ordinary form: h = g
	)
	plan, err := ir.Compile(sys, ir.CompileOptions{Family: ir.FamilyOrdinary})
	if err != nil {
		panic(err)
	}
	fmt.Println("family:", plan.Family())

	ctx := context.Background()
	for _, init := range [][]int64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{8, 7, 6, 5, 4, 3, 2, 1},
	} {
		res, err := ir.SolveOrdinaryPlanCtx[int64](ctx, plan, ir.IntAdd{}, init, ir.SolveOptions{Procs: 4})
		if err != nil {
			panic(err)
		}
		fmt.Println(res.Values)
	}
	// Output:
	// family: ordinary
	// [1 3 6 10 15 21 28 36]
	// [8 15 21 26 30 33 35 36]
}

// Compile picks the ordinary schedule from the write-chain structure: a
// long chain selects the work-optimal blocked scan (O(n) combines,
// T = n/P + log P), while short or scattered chains stay on pointer
// jumping (⌈log₂ maxchain⌉ rounds). Both schedules fold the same operand
// sequence in the same order, so the values are identical either way.
func ExampleSolveOrdinaryPlanCtx() {
	// One chain of 400 writes: A[i+1] := A[i] + A[i+1]. Long enough that
	// the blocked scan's reduce/combine/apply phases beat log-n jumping.
	long := ir.FromFuncs(400, 401,
		func(i int) int { return i + 1 },
		func(i int) int { return i },
		nil,
	)
	// Eight writes: chains far below the blocked threshold keep jumping.
	short := ir.FromFuncs(8, 9,
		func(i int) int { return i + 1 },
		func(i int) int { return i },
		nil,
	)

	ctx := context.Background()
	for _, sys := range []*ir.System{long, short} {
		plan, err := ir.Compile(sys, ir.CompileOptions{Family: ir.FamilyOrdinary})
		if err != nil {
			panic(err)
		}
		init := make([]int64, sys.M)
		for x := range init {
			init[x] = 1
		}
		res, err := ir.SolveOrdinaryPlanCtx[int64](ctx, plan, ir.IntAdd{}, init, ir.SolveOptions{Procs: 4})
		if err != nil {
			panic(err)
		}
		fmt.Printf("n=%d schedule=%s last=%d\n", sys.N, plan.Schedule(), res.Values[sys.M-1])
	}
	// Output:
	// n=400 schedule=blocked-scan last=401
	// n=8 schedule=pointer-jumping last=9
}

// Plan.SolveCtx is the name-dispatched replay used by the solve service:
// the operator arrives as a string and the result is family-tagged. Here a
// Möbius plan (structure: m, g, f) is replayed against two coefficient
// sets of the affine recurrence X[i+1] := a·X[i] + b.
func ExamplePlan_SolveCtx() {
	const n, m = 4, 5
	g := []int{1, 2, 3, 4} // write cell i+1
	f := []int{0, 1, 2, 3} // read cell i
	plan, err := ir.CompileMoebius(m, g, f)
	if err != nil {
		panic(err)
	}

	ctx := context.Background()
	for _, coef := range []struct{ a, b float64 }{{2, 1}, {1, 10}} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = coef.a, coef.b
		}
		sol, err := plan.SolveCtx(ctx, ir.PlanData{
			A: a, B: b, // nil C, D: affine form
			X0:   []float64{1, 0, 0, 0, 0},
			Opts: ir.SolveOptions{Procs: 2},
		})
		if err != nil {
			panic(err)
		}
		fmt.Println(sol.Values)
	}
	// Output:
	// [1 3 7 15 31]
	// [1 11 21 31 41]
}
