package ir

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"indexedrec/internal/grid2d"
)

// The 2-D recurrence-grid family (Natale, "On the Computation of 2-D
// Recurrence Equations"): w[i,j] = (a ⊗ w[i-1,j]) ⊕ (b ⊗ w[i,j-1]) ⊕
// (d ⊗ w[i-1,j-1]) ⊕ c over a selectable semiring, solved by anti-diagonal
// wavefronts of batched cell updates. See internal/grid2d for the engine;
// this file is the public facade and wire shape.

// ErrGrid2DNonFinite reports a grid solve whose output overflowed to NaN or
// ±Inf — a value problem (422 on the wire), not a malformed system.
var ErrGrid2DNonFinite = grid2d.ErrNonFinite

// Grid2DSystem is one 2-D recurrence grid, and doubles as its JSON wire
// form. All grids are row-major Rows×Cols; a nil coefficient grid omits
// that term (at least one of A, B, Diag, C must be present).
type Grid2DSystem struct {
	// Rows and Cols are the interior grid dimensions (both ≥ 1).
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Semiring selects the fold algebra: "affine" (default; ⊕=+, ⊗=×),
	// "maxplus" (⊕=max, ⊗=+) or "minplus" (⊕=min, ⊗=+).
	Semiring string `json:"semiring,omitempty"`
	// A scales the up neighbour w[i-1,j].
	A []float64 `json:"a,omitempty"`
	// B scales the left neighbour w[i,j-1].
	B []float64 `json:"b,omitempty"`
	// Diag scales the diagonal neighbour w[i-1,j-1].
	Diag []float64 `json:"diag,omitempty"`
	// C is the per-cell constant term.
	C []float64 `json:"c,omitempty"`
	// North is the boundary row w[-1,j], length Cols.
	North []float64 `json:"north"`
	// West is the boundary column w[i,-1], length Rows.
	West []float64 `json:"west"`
	// NorthWest is the corner boundary w[-1,-1].
	NorthWest float64 `json:"northwest,omitempty"`
}

// Grid2DResult is a solved grid.
type Grid2DResult struct {
	// Values is the solved interior grid, row-major Rows×Cols.
	Values []float64
	// Rounds is the number of wavefront rounds (Rows+Cols-1).
	Rounds int
	// Cells is the number of interior cells solved.
	Cells int64
}

// internal converts the wire form to the engine's system, resolving the
// semiring name. The slices are shared, not copied.
func (s *Grid2DSystem) internal() (*grid2d.System, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: nil grid system", ErrInvalidSystem)
	}
	ring, err := grid2d.RingByName(s.Semiring)
	if err != nil {
		return nil, err
	}
	return &grid2d.System{
		Rows: s.Rows, Cols: s.Cols, Ring: ring,
		A: s.A, B: s.B, D: s.Diag, C: s.C,
		North: s.North, West: s.West, NW: s.NorthWest,
	}, nil
}

// Validate checks the grid's shape and boundary finiteness (errors wrap
// ErrInvalidSystem); coefficient values are checked at solve time via the
// output probe.
func (s *Grid2DSystem) Validate() error {
	gs, err := s.internal()
	if err != nil {
		return err
	}
	return gs.Validate()
}

// Grid2DFingerprint returns the canonical structure hash of a grid system —
// dimensions, semiring, term mask; never coefficient values or machine
// properties — in the same "family:hex" shape as PlanFingerprint. Two grid
// solves share a fingerprint exactly when they can share a compiled plan.
func Grid2DFingerprint(s *Grid2DSystem) (string, error) {
	gs, err := s.internal()
	if err != nil {
		return "", err
	}
	if err := gs.Validate(); err != nil {
		return "", err
	}
	hsh := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		hsh.Write(buf[:])
	}
	hsh.Write([]byte{byte(FamilyGrid2D)})
	writeInt(gs.Rows)
	writeInt(gs.Cols)
	hsh.Write([]byte{byte(gs.Ring), gs.TermMask()})
	return FamilyGrid2D.String() + ":" + hex.EncodeToString(hsh.Sum(nil)[:16]), nil
}

// CompileGrid2D precomputes the wavefront schedule of s's structure. It is
// CompileGrid2DCtx with a background context.
func CompileGrid2D(s *Grid2DSystem) (*Plan, error) {
	return CompileGrid2DCtx(context.Background(), s)
}

// CompileGrid2DCtx compiles a grid system into a Plan: the anti-diagonal
// spans, slab offsets and round order, fixed from structure alone so plans
// sharing a Grid2DFingerprint are interchangeable. Replay with
// SolveGrid2DPlanCtx (or Plan.SolveCtx with PlanData.Grid) against any
// system of the same structure.
func CompileGrid2DCtx(ctx context.Context, s *Grid2DSystem) (*Plan, error) {
	gs, err := s.internal()
	if err != nil {
		return nil, err
	}
	gp, err := grid2d.Compile(ctx, gs)
	if err != nil {
		return nil, err
	}
	fp, err := Grid2DFingerprint(s)
	if err != nil {
		return nil, err
	}
	p := &Plan{family: FamilyGrid2D, n: gp.Rounds(), m: gs.Rows * gs.Cols, g2: gp}
	p.fingerprint = fp
	p.size = gp.SizeBytes()
	return p, nil
}

// SolveGrid2DPlanCtx replays a grid2d-family plan against a fresh system of
// the compiled structure, bit-identical to SolveGrid2DCtx and to the
// sequential oracle. Warm replays draw arenas from the plan's pool.
func SolveGrid2DPlanCtx(ctx context.Context, p *Plan, s *Grid2DSystem, opt SolveOptions) (*Grid2DResult, error) {
	if p.family != FamilyGrid2D {
		return nil, fmt.Errorf("%w: plan is %v, want grid2d", ErrPlanFamily, p.family)
	}
	gs, err := s.internal()
	if err != nil {
		return nil, err
	}
	res, err := p.g2.SolveCtx(ctx, gs, opt.Procs)
	if err != nil {
		return nil, err
	}
	return &Grid2DResult{Values: res.Values, Rounds: res.Rounds, Cells: res.Cells}, nil
}

// SolveGrid2D solves a 2-D recurrence grid. It is SolveGrid2DCtx with a
// background context.
func SolveGrid2D(s *Grid2DSystem, opt SolveOptions) (*Grid2DResult, error) {
	return SolveGrid2DCtx(context.Background(), s, opt)
}

// SolveGrid2DCtx solves a 2-D recurrence grid by anti-diagonal wavefronts:
// each diagonal is one parallel batch of semiring cell updates, Rows+Cols-1
// rounds in all. Results are bit-identical to the row-major sequential
// oracle regardless of procs. A NaN or ±Inf in the solution fails with
// ErrGrid2DNonFinite; malformed systems fail with ErrInvalidSystem.
func SolveGrid2DCtx(ctx context.Context, s *Grid2DSystem, opt SolveOptions) (*Grid2DResult, error) {
	p, err := CompileGrid2DCtx(ctx, s)
	if err != nil {
		return nil, err
	}
	return SolveGrid2DPlanCtx(ctx, p, s, opt)
}
