package ir

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
)

// sparseTestInit returns deterministic compact-order initial values.
func sparseTestInit(rng *rand.Rand, n int) []int64 {
	init := make([]int64, n)
	for i := range init {
		init[i] = rng.Int63n(1<<20) + 2
	}
	return init
}

// sparseBands builds k strided chains of per iterations each, scattered
// over a large global range (a small local twin of workload.SparseBanded,
// which ir's tests cannot import without a cycle).
func sparseBands(t *testing.T, m, per, k, stride int) *SparseSystem {
	t.Helper()
	g := make([]int, 0, per*k)
	f := make([]int, 0, per*k)
	for b := 0; b < k; b++ {
		base := b * (m / k)
		for j := 0; j < per; j++ {
			g = append(g, base+stride*(j+1))
			f = append(f, base+stride*j)
		}
	}
	sp, err := NewSparseSystem(m, g, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// sparseStrided returns a sparse ordinary system: one chain of n iterations
// strided across a global array of stride*(n+1)+1 cells, plus a compact init.
func sparseStrided(t *testing.T, n, stride int) (*SparseSystem, []int64) {
	t.Helper()
	g := make([]int, n)
	f := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = stride * (i + 1)
		f[i] = stride * i
	}
	sp, err := NewSparseSystem(stride*(n+1)+1, g, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	return sp, sparseTestInit(rng, sp.NumCells())
}

func TestSolveSparseOrdinaryMatchesDense(t *testing.T) {
	ctx := context.Background()
	sp, init := sparseStrided(t, 600, 997) // long chain -> blocked-scan eligible
	fast, err := SolveSparseOrdinaryCtx[int64](ctx, sp, IntAdd{}, init, SolveOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}

	// The kill switch must fall back to the dense expansion, bit-identically.
	if prev := SetSparseEnabled(false); !prev {
		t.Fatal("sparse path should default to enabled")
	}
	defer SetSparseEnabled(true)
	if SparseEnabled() {
		t.Fatal("SparseEnabled after disable")
	}
	slow, err := SolveSparseOrdinaryCtx[int64](ctx, sp, IntAdd{}, init, SolveOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Values) != sp.NumCells() || len(slow.Values) != sp.NumCells() {
		t.Fatalf("value lengths %d/%d, want %d", len(fast.Values), len(slow.Values), sp.NumCells())
	}
	for i := range fast.Values {
		if fast.Values[i] != slow.Values[i] {
			t.Fatalf("sparse/dense diverge at compact id %d", i)
		}
	}
}

func TestSolveSparseGeneralMatchesDense(t *testing.T) {
	ctx := context.Background()
	// A strided general system with H: exponential traces kept tiny.
	n, stride := 12, 1000
	g := make([]int, n)
	f := make([]int, n)
	h := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = stride * (i + 2)
		f[i] = stride * (i + 1)
		h[i] = stride * i
	}
	sp, err := NewSparseSystem(stride*(n+2)+1, g, f, h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	init := sparseTestInit(rng, sp.NumCells())
	op := MulMod{M: 1_000_003}

	fast, err := SolveSparseGeneralCtx[int64](ctx, sp, op, init, SolveOptions{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	SetSparseEnabled(false)
	defer SetSparseEnabled(true)
	slow, err := SolveSparseGeneralCtx[int64](ctx, sp, op, init, SolveOptions{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast.Values {
		if fast.Values[i] != slow.Values[i] {
			t.Fatalf("sparse/dense general diverge at compact id %d", i)
		}
	}
}

func TestSparseFingerprint(t *testing.T) {
	sp, _ := sparseStrided(t, 100, 997)
	fp := SparseFingerprint(FamilyOrdinary, sp, 0)
	if fp != SparseFingerprint(FamilyOrdinary, sp, 0) {
		t.Fatal("fingerprint not deterministic")
	}
	if fp[:len("sparse-ordinary:")] != "sparse-ordinary:" {
		t.Fatalf("fingerprint %q lacks the sparse-ordinary prefix", fp)
	}
	// Distinct from the dense fingerprint of the compact system.
	dense := PlanFingerprint(FamilyOrdinary, sp.Compact.N, sp.Compact.M, sp.Compact.G, sp.Compact.F, nil, 0)
	if fp == dense {
		t.Fatal("sparse fingerprint collides with the compact dense one")
	}
	// Same compact structure at a different global size or cell placement
	// is a different plan key.
	moved := sp.Clone()
	moved.M++
	if SparseFingerprint(FamilyOrdinary, moved, 0) == fp {
		t.Fatal("global M not part of the fingerprint")
	}
	shifted := sp.Clone()
	shifted.Cells[0]++
	if SparseFingerprint(FamilyOrdinary, shifted, 0) == fp {
		t.Fatal("cells not part of the fingerprint")
	}
}

func TestCompileSparsePlan(t *testing.T) {
	ctx := context.Background()
	sp, init := sparseStrided(t, 600, 997)
	p, err := CompileSparseCtx(ctx, sp, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sparse() {
		t.Fatal("plan not marked sparse")
	}
	if p.M() != sp.NumCells() || p.GlobalM() != sp.M || p.N() != sp.Compact.N {
		t.Fatalf("dims: M=%d GlobalM=%d N=%d", p.M(), p.GlobalM(), p.N())
	}
	if len(p.TouchedCells()) != sp.NumCells() {
		t.Fatal("TouchedCells length mismatch")
	}
	if p.Fingerprint() != SparseFingerprint(FamilyOrdinary, sp, 0) {
		t.Fatal("plan fingerprint != SparseFingerprint")
	}
	if p.Schedule() != "blocked-scan" {
		t.Fatalf("schedule %q, want blocked-scan for a 600-long chain", p.Schedule())
	}

	// Dense plans keep GlobalM == M and a nil touched list.
	dp, err := CompileCtx(ctx, sp.Compact, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Sparse() || dp.TouchedCells() != nil || dp.GlobalM() != dp.M() {
		t.Fatal("dense plan carries sparse tags")
	}

	direct, err := SolveSparseOrdinaryCtx[int64](ctx, sp, IntAdd{}, init, SolveOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := p.SolveCtx(ctx, PlanData{Op: "int64-add", InitInt: init, Opts: SolveOptions{Procs: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Values {
		if sol.ValuesInt[i] != direct.Values[i] {
			t.Fatalf("plan replay diverges at compact id %d", i)
		}
	}

	// A sparse plan replays compact even under the kill switch.
	SetSparseEnabled(false)
	defer SetSparseEnabled(true)
	sol2, err := p.SolveCtx(ctx, PlanData{Op: "int64-add", InitInt: init, Opts: SolveOptions{Procs: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Values {
		if sol2.ValuesInt[i] != direct.Values[i] {
			t.Fatalf("kill-switch replay diverges at compact id %d", i)
		}
	}
}

func TestSparsePlanSharding(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	sp := sparseBands(t, 5_000_000, 256, 8, 37)
	init := sparseTestInit(rng, sp.NumCells())
	p, err := CompileSparseCtx(ctx, sp, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := PlanData{Op: "int64-add", InitInt: init, Opts: SolveOptions{Procs: 2}}
	whole, err := p.SolveCtx(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	shards := p.Partition(3)
	parts := make([]*ShardSolution, len(shards))
	for i, sh := range shards {
		parts[i], err = p.SolveShardCtx(ctx, data, sh)
		if err != nil {
			t.Fatal(err)
		}
	}
	merged, err := p.MergeShards(data, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.ValuesInt) != sp.NumCells() {
		t.Fatalf("merged length %d, want %d", len(merged.ValuesInt), sp.NumCells())
	}
	for i := range whole.ValuesInt {
		if merged.ValuesInt[i] != whole.ValuesInt[i] {
			t.Fatalf("sharded merge diverges at compact id %d", i)
		}
	}
}

func TestSparseWireRoundTrip(t *testing.T) {
	sp, _ := sparseStrided(t, 50, 31)
	w := WireFromSparse(sp)
	if !w.IsSparse() {
		t.Fatal("wire form not sparse")
	}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back SystemWire
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Sparse()
	if err != nil {
		t.Fatal(err)
	}
	if got.M != sp.M || got.NumCells() != sp.NumCells() {
		t.Fatal("round trip changed shape")
	}
	for i := range sp.Cells {
		if got.Cells[i] != sp.Cells[i] {
			t.Fatal("round trip changed cells")
		}
	}
	for i := range sp.Compact.G {
		if got.Compact.G[i] != sp.Compact.G[i] || got.Compact.F[i] != sp.Compact.F[i] {
			t.Fatal("round trip changed maps")
		}
	}

	// System() on a sparse wire must refuse (compact ids would misread).
	if _, err := back.System(); !errors.Is(err, ErrInvalidSparse) {
		t.Fatalf("System() on sparse wire: %v, want ErrInvalidSparse", err)
	}
	// Sparse() on a dense wire must refuse symmetrically.
	dw := WireFromSystem(sp.Dense())
	if _, err := dw.Sparse(); !errors.Is(err, ErrInvalidSparse) {
		t.Fatalf("Sparse() on dense wire: %v, want ErrInvalidSparse", err)
	}
	// Malformed cell lists wrap ErrInvalidSparse.
	bad := w
	bad.Cells = append([]int(nil), w.Cells...)
	bad.Cells[0], bad.Cells[1] = bad.Cells[1], bad.Cells[0]
	if _, err := bad.Sparse(); !errors.Is(err, ErrInvalidSparse) {
		t.Fatalf("unsorted cells: %v, want ErrInvalidSparse", err)
	}
}
