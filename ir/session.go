package ir

import (
	"context"
	"fmt"
)

// Streaming support: extending a compiled system with appended iterations.
// A session (internal/session, surfaced as irserved's /v1/session API)
// advances its value state incrementally — O(1) per appended iteration —
// and only needs a fresh Plan when something wants to re-solve the
// concatenated system from scratch: a cluster re-home, a verification
// pass, or a general-family session whose cached plan went stale. Extend
// builds that concatenated structure, validating that the appended
// iterations keep the family's invariants.

// ExtendSystem returns the concatenation of s with k appended iterations
// (g, f, h; nil h keeps the ordinary shape when s has one). The result is a
// fresh System — s is not mutated — validated structurally, with the
// ordinary family's distinct-g invariant re-checked across the whole
// concatenation when s qualified for it.
func ExtendSystem(s *System, g, f, h []int) (*System, error) {
	if len(f) != len(g) || (h != nil && len(h) != len(g)) {
		return nil, fmt.Errorf("%w: appended map lengths disagree", ErrInvalidSystem)
	}
	ext := &System{
		M: s.M,
		N: s.N + len(g),
		G: append(append([]int(nil), s.G...), g...),
		F: append(append([]int(nil), s.F...), f...),
	}
	switch {
	case s.H == nil && h == nil:
		// stays ordinary-shaped
	case s.H == nil && h != nil:
		ext.H = append(append([]int(nil), s.G...), h...)
	case h == nil:
		ext.H = append(append([]int(nil), s.H...), g...)
	default:
		ext.H = append(append([]int(nil), s.H...), h...)
	}
	if err := ext.Validate(); err != nil {
		return nil, err
	}
	return ext, nil
}

// ExtendCtx compiles the plan of s extended by the appended iterations
// (see ExtendSystem), preserving p's family. s must be the system p was
// compiled from — checked through the fingerprint, so a mismatched base is
// an ErrPlanFamily error rather than a silently wrong plan. For the
// ordinary family the appended g must stay distinct against the whole
// concatenated history; for the Möbius family pass the appended (g, f)
// with nil h. The returned system is the concatenation the new plan was
// compiled over.
func (p *Plan) ExtendCtx(ctx context.Context, s *System, g, f, h []int, opt CompileOptions) (*System, *Plan, error) {
	var baseFP string
	switch p.family {
	case FamilyOrdinary:
		baseFP = PlanFingerprint(FamilyOrdinary, s.N, s.M, s.G, s.F, nil, 0)
	case FamilyGeneral:
		baseFP = PlanFingerprint(FamilyGeneral, s.N, s.M, s.G, s.F, s.H, opt.MaxExponentBits)
	case FamilyMoebius:
		baseFP = PlanFingerprint(FamilyMoebius, s.N, s.M, s.G, s.F, nil, 0)
	default:
		return nil, nil, fmt.Errorf("%w: cannot extend family %v", ErrPlanFamily, p.family)
	}
	if baseFP != p.fingerprint {
		return nil, nil, fmt.Errorf("%w: base system does not match the plan (fingerprint %s != %s)",
			ErrPlanFamily, baseFP, p.fingerprint)
	}
	ext, err := ExtendSystem(s, g, f, h)
	if err != nil {
		return nil, nil, err
	}
	if p.family == FamilyMoebius {
		np, err := CompileMoebiusCtx(ctx, ext.M, ext.G, ext.F)
		if err != nil {
			return nil, nil, err
		}
		return ext, np, nil
	}
	opt.Family = p.family
	np, err := CompileCtx(ctx, ext, opt)
	if err != nil {
		return nil, nil, err
	}
	return ext, np, nil
}

// Extend is ExtendCtx with a background context.
func (p *Plan) Extend(s *System, g, f, h []int, opt CompileOptions) (*System, *Plan, error) {
	return p.ExtendCtx(context.Background(), s, g, f, h, opt)
}
