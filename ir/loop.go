package ir

import "indexedrec/internal/lang"

// The paper's headline use case as a public API: hand the library a
// sequential loop as TEXT, let it classify the recurrence form without
// dependence analysis, and execute it with the matching parallel algorithm.
//
//	loop, _ := ir.ParseLoop("for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]")
//	c := ir.CompileLoop(loop)        // c.Analysis.Form, c.Strategy()
//	err := c.Execute(env, 0)         // parallel, O(log n) steps
//
// The loop language is Pascal-like: `for i = lo to hi do stmt` or a
// begin/end block, statements `X[expr] := expr`, expressions over numbers,
// scalars, array references (including indirection) and + - * /; nested
// loops are supported (outer sequential × inner parallel).

// Loop is a parsed loop; Env binds its arrays and scalars; Compiled pairs a
// loop with its recurrence analysis and parallel strategy.
type (
	Loop     = lang.Loop
	Env      = lang.Env
	Compiled = lang.Compiled
	Analysis = lang.Analysis
)

// ParseLoop parses loop source text.
func ParseLoop(src string) (*Loop, error) { return lang.Parse(src) }

// NewEnv returns an empty environment to bind arrays and scalars into.
func NewEnv() *Env { return lang.NewEnv() }

// CompileLoop classifies the loop and packages it with its strategy; call
// Execute(env, procs) on the result to run it in parallel, or RunLoop for
// the sequential reference semantics.
func CompileLoop(l *Loop) *Compiled { return lang.Compile(l) }

// RunLoop interprets the loop sequentially — the semantic oracle.
func RunLoop(l *Loop, env *Env) error { return lang.Run(l, env) }
