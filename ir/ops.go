package ir

import "fmt"

// The named-operator registry: every standard operator under its canonical
// Name() string, for callers whose operator arrives as data — the solve
// service's wire protocol and Plan.SolveCtx. Every registered operator
// satisfies CommutativeMonoid, so one table serves both the ordinary
// endpoints (which only need the Semigroup subset) and the general ones.

// IntOpByName resolves an integer-domain operator by its canonical name, or
// (nil, nil) when the name belongs to no integer operator (callers then try
// FloatOpByName). The modular operators mul-mod and add-mod require
// mod >= 2 and return an error otherwise.
func IntOpByName(name string, mod int64) (CommutativeMonoid[int64], error) {
	switch name {
	case "int64-add":
		return IntAdd{}, nil
	case "int64-max":
		return IntMax{}, nil
	case "int64-min":
		return IntMin{}, nil
	case "int64-xor":
		return IntXor{}, nil
	case "int64-gcd":
		return Gcd{}, nil
	case "mul-mod":
		if mod < 2 {
			return nil, fmt.Errorf("op %q needs \"mod\" >= 2, got %d", name, mod)
		}
		return MulMod{M: mod}, nil
	case "add-mod":
		if mod < 2 {
			return nil, fmt.Errorf("op %q needs \"mod\" >= 2, got %d", name, mod)
		}
		return AddMod{M: mod}, nil
	}
	return nil, nil
}

// FloatOpByName resolves a float-domain operator by its canonical name, or
// (nil, nil) when the name is not a float operator.
func FloatOpByName(name string) (CommutativeMonoid[float64], error) {
	switch name {
	case "float64-add":
		return Float64Add{}, nil
	case "float64-mul":
		return Float64Mul{}, nil
	case "float64-min":
		return Float64Min{}, nil
	case "float64-max":
		return Float64Max{}, nil
	}
	return nil, nil
}

// OpNames lists every operator name IntOpByName and FloatOpByName accept,
// for error messages and docs.
func OpNames() []string {
	return []string{
		"int64-add", "int64-max", "int64-min", "int64-xor", "int64-gcd",
		"mul-mod", "add-mod",
		"float64-add", "float64-mul", "float64-min", "float64-max",
	}
}
