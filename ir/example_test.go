package ir_test

import (
	"fmt"

	"indexedrec/ir"
)

// The paper's ordinary form: prefix sums are the loop
// A[i] := A[i-1] + A[i], solved in ⌈log₂ n⌉ parallel rounds.
func ExampleSolveOrdinary() {
	sys := ir.FromFuncs(7, 8,
		func(i int) int { return i + 1 }, // g: write cell i+1
		func(i int) int { return i },     // f: read cell i
		nil,                              // ordinary form: h = g
	)
	init := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := ir.SolveOrdinary[int64](sys, ir.IntAdd{}, init, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Values)
	fmt.Println("rounds:", res.Rounds)
	// Output:
	// [1 3 6 10 15 21 28 36]
	// rounds: 3
}

// Non-commutative operators are allowed for the ordinary form — the solver
// regroups but never reorders. Concatenation spells out each cell's trace.
func ExampleSolveOrdinary_nonCommutative() {
	sys := ir.FromFuncs(3, 4,
		func(i int) int { return i + 1 },
		func(i int) int { return i },
		nil,
	)
	res, err := ir.SolveOrdinary[string](sys, ir.Concat{}, []string{"a", "b", "c", "d"}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Values)
	// Output:
	// [a ab abc abcd]
}

// The general form A[g] := op(A[f], A[h]) with exponential traces:
// A[i] := A[i-1] * A[i-2] has fib-sized traces, evaluated via path counting
// with atomic powers.
func ExampleSolveGeneral() {
	sys := ir.FromFuncs(4, 6,
		func(i int) int { return i + 2 },
		func(i int) int { return i + 1 },
		func(i int) int { return i },
	)
	init := []int64{2, 3, 1, 1, 1, 1}
	res, err := ir.SolveGeneral[int64](sys, ir.MulMod{M: 1_000_003}, init, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Values)
	// The trace of the last cell as powers of the initial values:
	for _, t := range res.Powers[5] {
		fmt.Printf("A0[%d]^%s ", t.Cell, t.Exp)
	}
	fmt.Println()
	// Output:
	// [2 3 6 18 108 1944]
	// A0[0]^3 A0[1]^5
}

// Linear indexed recurrences X[g] := a·X[f] + b solve through the Möbius
// matrix reduction (paper §3).
func ExampleSolveLinear() {
	// X[i] = 2·X[i-1] + 1 down a chain: 0, 1, 3, 7, 15, ...
	n := 5
	g := []int{1, 2, 3, 4, 5}
	f := []int{0, 1, 2, 3, 4}
	a := []float64{2, 2, 2, 2, 2}
	b := []float64{1, 1, 1, 1, 1}
	x0 := make([]float64, n+1)
	out, err := ir.SolveLinear(n+1, g, f, a, b, x0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// [0 1 3 7 15 31]
}

// The paper's headline use case: auto-parallelize a sequential loop given
// only its text — no dependence analysis.
func ExampleCompileLoop() {
	loop, err := ir.ParseLoop("for i = 1 to n do X[i] := X[i-1] + X[i]")
	if err != nil {
		panic(err)
	}
	c := ir.CompileLoop(loop)
	fmt.Println(c.Analysis.Form, "/", c.Strategy())

	env := ir.NewEnv()
	env.Scalars["n"] = 7
	env.Arrays["X"] = []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if err := c.Execute(env, 4); err != nil {
		panic(err)
	}
	fmt.Println(env.Arrays["X"])
	// Output:
	// ordinary-IR / OrdinaryIR pointer jumping
	// [1 2 3 4 5 6 7 8]
}
