package ir

import "indexedrec/internal/scan"

// Scan returns the inclusive prefix combine of xs under op in parallel
// (Kogge–Stone): out[i] = xs[0] ⊗ ... ⊗ xs[i]. This is the classical
// special case of SolveOrdinary for the chain g(i)=i, f(i)=i-1, exposed
// directly because it needs no index tables.
func Scan[T any](op Semigroup[T], xs []T, procs int) []T {
	return scan.InclusiveParallel[T](op, xs, procs)
}

// LinearChain solves x[i] = a[i]·x[i-1] + b[i] (i ≥ 1, x[0] given) via
// parallel prefix over affine maps — the chain special case of SolveLinear.
func LinearChain(a, b []float64, x0 float64, procs int) []float64 {
	return scan.LinearRecurrenceParallel(a, b, x0, procs)
}

// KTermChain solves the order-k recurrence
// x[i] = a[0][i]·x[i-1] + ... + a[k-1][i]·x[i-k] + b[i] via parallel prefix
// over companion matrices (an extension beyond the paper's 2×2 case).
func KTermChain(k int, a [][]float64, b []float64, x0 []float64, procs int) ([]float64, error) {
	return scan.KTermRecurrenceParallel(k, a, b, x0, procs)
}
