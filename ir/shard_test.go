package ir

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// solveViaShards cuts the plan into k shards, solves each independently,
// and merges — the in-process model of a distributed solve.
func solveViaShards(t *testing.T, p *Plan, data PlanData, k int) *PlanSolution {
	t.Helper()
	ctx := context.Background()
	shards := p.Partition(k)
	if len(shards) == 0 {
		// Empty shard domain: nothing to scatter; the merge of zero parts
		// must still reproduce the local solve.
		sol, err := p.MergeShards(data, nil)
		if err != nil {
			t.Fatalf("merge of empty scatter: %v", err)
		}
		return sol
	}
	parts := make([]*ShardSolution, len(shards))
	for i, sh := range shards {
		part, err := p.SolveShardCtx(ctx, data, sh)
		if err != nil {
			t.Fatalf("shard %v: %v", sh, err)
		}
		parts[i] = part
	}
	sol, err := p.MergeShards(data, parts)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return sol
}

func TestPartitionCoversDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(40)
		s := randOrdinary(rng, m, rng.Intn(m+1))
		p, err := Compile(s, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3, 7, 100} {
			shards := p.Partition(k)
			units := p.ShardUnits()
			if units == 0 {
				if shards != nil {
					t.Fatalf("empty domain produced shards %v", shards)
				}
				continue
			}
			if len(shards) > k {
				t.Fatalf("Partition(%d) produced %d shards", k, len(shards))
			}
			at := 0
			for _, sh := range shards {
				if sh.Lo != at || sh.Hi <= sh.Lo {
					t.Fatalf("Partition(%d) = %v: bad shard %v at %d", k, shards, sh, at)
				}
				at = sh.Hi
			}
			if at != units {
				t.Fatalf("Partition(%d) covers %d of %d units", k, at, units)
			}
		}
	}
}

func TestShardedOrdinaryBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(48)
		s := randOrdinary(rng, m, rng.Intn(m+1))
		p, err := Compile(s, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		init := make([]float64, m)
		for x := range init {
			init[x] = rng.Float64()*100 - 50
		}
		data := PlanData{Op: "float64-add", InitFloat: init, Opts: SolveOptions{Procs: 2}}
		want, err := p.SolveCtx(ctx, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 4} {
			got := solveViaShards(t, p, data, k)
			if len(got.ValuesFloat) != len(want.ValuesFloat) {
				t.Fatalf("trial %d k=%d: %d values, want %d", trial, k, len(got.ValuesFloat), len(want.ValuesFloat))
			}
			for x := range want.ValuesFloat {
				if got.ValuesFloat[x] != want.ValuesFloat[x] {
					t.Fatalf("trial %d k=%d cell %d: sharded %v != local %v",
						trial, k, x, got.ValuesFloat[x], want.ValuesFloat[x])
				}
			}
			if got.Rounds != want.Rounds || got.Combines != want.Combines {
				t.Fatalf("trial %d k=%d: cost profile diverged", trial, k)
			}
		}
	}
}

func TestShardedGeneralBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(24)
		s := randGeneral(rng, m, rng.Intn(2*m+1))
		p, err := Compile(s, CompileOptions{MaxExponentBits: 4096})
		if err != nil {
			t.Fatal(err)
		}
		init := make([]int64, m)
		for x := range init {
			init[x] = rng.Int63n(1000) + 1
		}
		data := PlanData{Op: "mul-mod", Mod: 1_000_003, InitInt: init, Opts: SolveOptions{Procs: 2}}
		want, err := p.SolveCtx(ctx, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 4} {
			got := solveViaShards(t, p, data, k)
			for x := range want.ValuesInt {
				if got.ValuesInt[x] != want.ValuesInt[x] {
					t.Fatalf("trial %d k=%d cell %d: sharded %v != local %v",
						trial, k, x, got.ValuesInt[x], want.ValuesInt[x])
				}
			}
			if got.CAPRounds != want.CAPRounds {
				t.Fatalf("trial %d k=%d: CAPRounds %d != %d", trial, k, got.CAPRounds, want.CAPRounds)
			}
		}
	}
}

func TestShardedMoebiusBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(32)
		s := randOrdinary(rng, m, rng.Intn(m+1))
		p, err := CompileMoebius(m, s.G, s.F)
		if err != nil {
			t.Fatal(err)
		}
		n := len(s.G)
		data := PlanData{
			A:  randFloats(rng, n, 2),
			B:  randFloats(rng, n, 5),
			C:  randFloats(rng, n, 0.1),
			D:  randFloats(rng, n, 3),
			X0: randFloats(rng, m, 10),
		}
		for i := range data.D {
			data.D[i] += 1.5 // keep denominators away from zero
		}
		want, err := p.SolveCtx(ctx, data)
		if err != nil {
			continue // a division-by-zero draw; sharding equivalence needs a finite baseline
		}
		for _, k := range []int{1, 2, 4} {
			got := solveViaShards(t, p, data, k)
			for x := range want.Values {
				if got.Values[x] != want.Values[x] {
					t.Fatalf("trial %d k=%d cell %d: sharded %v != local %v",
						trial, k, x, got.Values[x], want.Values[x])
				}
			}
		}
	}
}

func randFloats(rng *rand.Rand, n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (rng.Float64()*2 - 1) * scale
	}
	return out
}

func TestShardErrors(t *testing.T) {
	ctx := context.Background()
	s := &System{M: 4, N: 3, G: []int{1, 2, 3}, F: []int{0, 1, 2}}
	p, err := Compile(s, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := PlanData{Op: "int64-add", InitInt: []int64{1, 2, 3, 4}}
	if _, err := p.SolveShardCtx(ctx, data, Shard{Lo: 0, Hi: p.ShardUnits() + 1}); !errors.Is(err, ErrShard) {
		t.Fatalf("oversized shard: err = %v, want ErrShard", err)
	}
	if _, err := p.SolveShardCtx(ctx, data, Shard{Lo: 2, Hi: 1}); !errors.Is(err, ErrShard) {
		t.Fatalf("inverted shard: err = %v, want ErrShard", err)
	}
	part, err := p.SolveShardCtx(ctx, data, Shard{Lo: 0, Hi: p.ShardUnits()})
	if err != nil {
		t.Fatal(err)
	}
	// Dropping a shard from the gather must fail loudly, not merge silently.
	if _, err := p.MergeShards(data, nil); !errors.Is(err, ErrShard) {
		t.Fatalf("empty gather: err = %v, want ErrShard", err)
	}
	if sol, err := p.MergeShards(data, []*ShardSolution{part}); err != nil {
		t.Fatal(err)
	} else if len(sol.ValuesInt) != 4 {
		t.Fatalf("merged %d values, want 4", len(sol.ValuesInt))
	}
	if _, err := FamilyByName("nope"); !errors.Is(err, ErrShard) {
		t.Fatalf("FamilyByName: err = %v, want ErrShard", err)
	}
}
