package ir

import (
	"fmt"
)

// Wire types: the JSON shapes a System and SolveOptions take on the network.
// internal/server and its client both marshal through these, so the service
// protocol is defined next to the API it transports rather than inside the
// server. The field names are the paper's (g, f, h over m cells, n
// iterations), lower-cased for JSON convention.

// SystemWire is the JSON form of a System — and, when Cells is present, of a
// SparseSystem: m is then the global cell count, cells the sorted touched
// global indices, and g/f/h index maps over compact ids 0..len(cells)-1.
// Init arrays accompanying a sparse wire system have length len(cells), in
// compact order, so a request's payload scales with the touched count
// rather than the global array size.
type SystemWire struct {
	M     int   `json:"m"`
	N     int   `json:"n"`
	G     []int `json:"g"`
	F     []int `json:"f"`
	H     []int `json:"h,omitempty"`
	Cells []int `json:"cells,omitempty"`
}

// WireFromSystem converts a System to its wire form (slices are shared, not
// copied — marshal before mutating).
func WireFromSystem(s *System) SystemWire {
	return SystemWire{M: s.M, N: s.N, G: s.G, F: s.F, H: s.H}
}

// WireFromSparse converts a sparse system to its wire form (slices shared,
// not copied): the compact maps plus the touched-cell list and global M.
func WireFromSparse(sp *SparseSystem) SystemWire {
	return SystemWire{
		M:     sp.M,
		N:     sp.Compact.N,
		G:     sp.Compact.G,
		F:     sp.Compact.F,
		H:     sp.Compact.H,
		Cells: sp.Cells,
	}
}

// IsSparse reports whether the wire system uses the sparse encoding.
func (w SystemWire) IsSparse() bool { return len(w.Cells) > 0 }

// Sparse converts a sparse wire form back, validating the touched-cell list
// (sorted, distinct, in range) and compact maps; defects wrap
// ErrInvalidSparse. An omitted n is inferred from len(g).
func (w SystemWire) Sparse() (*SparseSystem, error) {
	if !w.IsSparse() {
		return nil, fmt.Errorf("%w: no touched-cell list (dense encoding: use System)", ErrInvalidSparse)
	}
	g, f := w.G, w.F
	if g == nil {
		g = []int{}
	}
	if f == nil {
		f = []int{}
	}
	if w.N != 0 && w.N != len(g) {
		return nil, fmt.Errorf("%w: n = %d, want len(g) = %d", ErrInvalidSparse, w.N, len(g))
	}
	return SparseFromCompact(w.M, w.Cells, g, f, w.H)
}

// System converts the wire form back and validates it structurally, so a
// malformed request fails with ErrInvalidSystem before reaching a solver.
// An omitted n is inferred from len(g). Sparse-encoded wire systems must be
// decoded with Sparse instead; calling System on one is an error (the
// compact ids would silently misread as global indices).
func (w SystemWire) System() (*System, error) {
	if w.IsSparse() {
		return nil, fmt.Errorf("%w: sparse encoding (cells present): decode with Sparse", ErrInvalidSparse)
	}
	n := w.N
	if n == 0 {
		n = len(w.G)
	}
	s := &System{M: w.M, N: n, G: w.G, F: w.F, H: w.H}
	if s.G == nil {
		s.G = []int{}
	}
	if s.F == nil {
		s.F = []int{}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// OptionsWire is the JSON form of SolveOptions plus the per-request deadline.
type OptionsWire struct {
	// Procs bounds solver-internal goroutines; 0 lets the server choose.
	Procs int `json:"procs,omitempty"`
	// MaxExponentBits caps CAP trace-exponent growth (general solves).
	MaxExponentBits int `json:"max_exponent_bits,omitempty"`
	// TimeoutMs is the client's solve deadline in milliseconds; 0 means
	// the server default. Servers clamp it to their configured maximum.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// Options converts the wire form to SolveOptions; the deadline is the
// transport's concern and is applied by the server, not here.
func (w OptionsWire) Options() (SolveOptions, error) {
	if w.Procs < 0 {
		return SolveOptions{}, fmt.Errorf("%w: procs = %d, want >= 0", ErrInvalidSystem, w.Procs)
	}
	if w.TimeoutMs < 0 {
		return SolveOptions{}, fmt.Errorf("%w: timeout_ms = %d, want >= 0", ErrInvalidSystem, w.TimeoutMs)
	}
	return SolveOptions{Procs: w.Procs, MaxExponentBits: w.MaxExponentBits}, nil
}
