package ir

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"indexedrec/internal/gir"
	"indexedrec/internal/ordinary"
)

// Shard-slice solves: the distribution layer of compiled plans. A plan's
// work divides along structure the paper itself hands us — the ordinary
// solver's write-chain forest is a disjoint union of chains, and the
// general and Möbius families evaluate output cells independently once
// structure is fixed — so a solve scatters into Shards, each executable on
// a different machine against the same PlanData, and gathers back
// bit-identically to Plan.SolveCtx. internal/cluster is the engine built on
// these entry points; workers execute SolveShardCtx, coordinators cut
// Partition and reassemble with MergeShards.

// ErrShard wraps shard-layer failures: bad ranges, incomplete gathers, and
// family/shard mismatches.
var ErrShard = errors.New("ir: bad shard")

// Shard is a half-open slice [Lo, Hi) of a plan's shard domain. The domain
// depends on the family: chains of the write-chain forest for
// FamilyOrdinary (see Plan.ShardUnits), output cells for FamilyGeneral and
// FamilyMoebius.
type Shard struct {
	// Lo and Hi bound the slice, 0 <= Lo <= Hi <= ShardUnits().
	Lo, Hi int
}

// ShardSolution is the result of one shard's solve: a slice of the full
// solution. Ordinary-family shards are sparse (Cells lists the owned cells,
// ascending); general and Möbius shards are dense over [Shard.Lo, Shard.Hi).
// Exactly one of ValuesInt/ValuesFloat/Values is set, as in PlanSolution.
type ShardSolution struct {
	// Shard echoes the request's slice.
	Shard Shard `json:"shard"`
	// Cells lists the cells a sparse (ordinary-family) shard owns,
	// ascending and parallel to the values array; nil for dense shards.
	Cells []int `json:"cells,omitempty"`
	// ValuesInt / ValuesFloat carry ordinary- and general-family values,
	// matching the operator's domain.
	ValuesInt   []int64   `json:"values_int,omitempty"`
	ValuesFloat []float64 `json:"values_float,omitempty"`
	// Values carries Möbius-family values.
	Values []float64 `json:"values,omitempty"`
}

// ShardUnits returns the size of the plan's shard domain: the chain count
// for the ordinary family, the cell count for the general and Möbius
// families. Shards slice [0, ShardUnits()).
func (p *Plan) ShardUnits() int {
	switch p.family {
	case FamilyOrdinary:
		return p.ord.NumChains()
	case FamilyGeneral, FamilyMoebius:
		return p.m
	default:
		return 0
	}
}

// Partition cuts the plan's shard domain into at most k contiguous,
// non-empty, collectively exhaustive shards, balanced by work: chain cell
// counts for the ordinary family, uniform per cell otherwise. An empty
// domain yields nil (nothing to distribute — solve locally).
func (p *Plan) Partition(k int) []Shard {
	units := p.ShardUnits()
	if units == 0 || k < 1 {
		return nil
	}
	var weights []int
	if p.family == FamilyOrdinary {
		weights = p.ord.ChainSizes()
	}
	total := units
	if weights != nil {
		total = 0
		for _, w := range weights {
			total += w
		}
	}
	shards := make([]Shard, 0, k)
	lo, done := 0, 0
	for s := 0; s < k && lo < units; s++ {
		left := k - s
		target := (total - done + left - 1) / left
		acc, hi := 0, lo
		for hi < units && (acc < target || acc == 0) {
			if weights != nil {
				acc += weights[hi]
			} else {
				acc++
			}
			hi++
		}
		shards = append(shards, Shard{Lo: lo, Hi: hi})
		lo, done = hi, done+acc
	}
	if lo < units { // leftovers join the last shard
		shards[len(shards)-1].Hi = units
	}
	return shards
}

// SolveShardCtx executes one shard of the plan against data — the
// worker-side entry point of a distributed solve. The returned slice is
// bit-identical to the corresponding cells of Plan.SolveCtx(data);
// reassemble complete shard sets with MergeShards. PlanData.WithPowers is
// not supported here (power traces are a whole-plan artifact).
func (p *Plan) SolveShardCtx(ctx context.Context, data PlanData, sh Shard) (*ShardSolution, error) {
	if sh.Lo < 0 || sh.Hi > p.ShardUnits() || sh.Lo > sh.Hi {
		return nil, fmt.Errorf("%w: [%d, %d) of %d units", ErrShard, sh.Lo, sh.Hi, p.ShardUnits())
	}
	switch p.family {
	case FamilyMoebius:
		c, d := data.C, data.D
		if c == nil && d == nil {
			c = make([]float64, p.n)
			d = make([]float64, p.n)
			for i := range d {
				d[i] = 1
			}
		}
		values, err := p.mb.SolveRangeCtx(ctx, data.A, data.B, c, d, data.X0, sh.Lo, sh.Hi,
			ordinary.Options{Procs: data.Opts.Procs})
		if err != nil {
			return nil, err
		}
		return &ShardSolution{Shard: sh, Values: values}, nil
	case FamilyOrdinary, FamilyGeneral:
		// fall through to the operator dispatch below
	default:
		return nil, fmt.Errorf("%w: cannot shard family %v", ErrPlanFamily, p.family)
	}

	iop, err := IntOpByName(data.Op, data.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		if data.InitInt == nil {
			return nil, fmt.Errorf("ir: op %q has integer domain but PlanData.InitInt is nil", data.Op)
		}
		return solveShardTyped[int64](ctx, p, iop, data.InitInt, sh, data.Opts)
	}
	fop, err := FloatOpByName(data.Op)
	if err != nil {
		return nil, err
	}
	if fop == nil {
		return nil, fmt.Errorf("ir: unknown op %q (one of %v)", data.Op, OpNames())
	}
	if data.InitFloat == nil {
		return nil, fmt.Errorf("ir: op %q has float domain but PlanData.InitFloat is nil", data.Op)
	}
	return solveShardTyped[float64](ctx, p, fop, data.InitFloat, sh, data.Opts)
}

// solveShardTyped runs the ordinary/general shard paths for one value type
// and packs the family-appropriate (sparse or dense) solution.
func solveShardTyped[T int64 | float64](ctx context.Context, p *Plan, op CommutativeMonoid[T], init []T, sh Shard, opt SolveOptions) (*ShardSolution, error) {
	sol := &ShardSolution{Shard: sh}
	var values []T
	if p.family == FamilyOrdinary {
		res, err := ordinary.SolvePlanChainsCtx[T](ctx, p.ord, op, init, sh.Lo, sh.Hi,
			ordinary.Options{Procs: opt.Procs})
		if err != nil {
			return nil, err
		}
		sol.Cells = res.Cells
		values = res.Values
	} else {
		var err error
		values, err = gir.SolvePlanRangeCtx[T](ctx, p.gen, op, init, sh.Lo, sh.Hi, opt.Procs)
		if err != nil {
			return nil, err
		}
	}
	switch v := any(values).(type) {
	case []int64:
		sol.ValuesInt = v
	case []float64:
		sol.ValuesFloat = v
	}
	return sol, nil
}

// MergeShards reassembles a complete set of shard solutions into the
// PlanSolution that Plan.SolveCtx(data) would return, bit-identically:
// dense families must tile [0, M) exactly, sparse (ordinary) shards must
// collectively own every written cell, and unwritten cells come from data's
// init arrays. Aggregate stats (Rounds, Combines, CAPRounds) are read off
// the plan, as every replay reports the same schedule costs. Power traces
// are not reassembled (see SolveShardCtx).
func (p *Plan) MergeShards(data PlanData, parts []*ShardSolution) (*PlanSolution, error) {
	switch p.family {
	case FamilyMoebius:
		values, err := mergeDense(p.m, parts, func(s *ShardSolution) []float64 { return s.Values })
		if err != nil {
			return nil, err
		}
		return &PlanSolution{Values: values}, nil
	case FamilyGeneral:
		sol := &PlanSolution{}
		if p.gen.Stats != nil {
			sol.CAPRounds = p.gen.Stats.Rounds
		}
		var err error
		if data.InitInt != nil {
			sol.ValuesInt, err = mergeDense(p.m, parts, func(s *ShardSolution) []int64 { return s.ValuesInt })
		} else {
			sol.ValuesFloat, err = mergeDense(p.m, parts, func(s *ShardSolution) []float64 { return s.ValuesFloat })
		}
		if err != nil {
			return nil, err
		}
		return sol, nil
	case FamilyOrdinary:
		sol := &PlanSolution{Rounds: p.ord.Rounds(), Combines: p.ord.Combines()}
		var err error
		if data.InitInt != nil {
			sol.ValuesInt, err = mergeSparse(p, parts, data.InitInt, func(s *ShardSolution) []int64 { return s.ValuesInt })
		} else {
			sol.ValuesFloat, err = mergeSparse(p, parts, data.InitFloat, func(s *ShardSolution) []float64 { return s.ValuesFloat })
		}
		if err != nil {
			return nil, err
		}
		return sol, nil
	default:
		return nil, fmt.Errorf("%w: cannot merge family %v", ErrPlanFamily, p.family)
	}
}

// mergeDense tiles dense shard slices back into one array, verifying the
// shards cover [0, m) exactly once.
func mergeDense[T any](m int, parts []*ShardSolution, pick func(*ShardSolution) []T) ([]T, error) {
	sorted := append([]*ShardSolution(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard.Lo < sorted[j].Shard.Lo })
	out := make([]T, m)
	at := 0
	for _, s := range sorted {
		if s == nil || s.Shard.Lo != at {
			return nil, fmt.Errorf("%w: gather gap at cell %d", ErrShard, at)
		}
		vals := pick(s)
		if len(vals) != s.Shard.Hi-s.Shard.Lo {
			return nil, fmt.Errorf("%w: shard [%d, %d) carries %d values", ErrShard, s.Shard.Lo, s.Shard.Hi, len(vals))
		}
		copy(out[at:], vals)
		at = s.Shard.Hi
	}
	if at != m {
		return nil, fmt.Errorf("%w: gather covers %d of %d cells", ErrShard, at, m)
	}
	return out, nil
}

// mergeSparse overlays sparse ordinary shards on the init array, verifying
// every written cell arrived exactly once.
func mergeSparse[T any](p *Plan, parts []*ShardSolution, init []T, pick func(*ShardSolution) []T) ([]T, error) {
	if len(init) != p.m {
		return nil, fmt.Errorf("%w: len(init) = %d, want m = %d", ErrShard, len(init), p.m)
	}
	out := make([]T, p.m)
	copy(out, init)
	owned := 0
	for _, s := range parts {
		if s == nil {
			return nil, fmt.Errorf("%w: missing shard solution", ErrShard)
		}
		vals := pick(s)
		if len(vals) != len(s.Cells) {
			return nil, fmt.Errorf("%w: shard [%d, %d): %d cells, %d values", ErrShard, s.Shard.Lo, s.Shard.Hi, len(s.Cells), len(vals))
		}
		for k, x := range s.Cells {
			if x < 0 || x >= p.m {
				return nil, fmt.Errorf("%w: shard cell %d out of range", ErrShard, x)
			}
			out[x] = vals[k]
		}
		owned += len(s.Cells)
	}
	if want := len(p.ord.Forest.Cells); owned != want {
		return nil, fmt.Errorf("%w: gather owns %d of %d written cells", ErrShard, owned, want)
	}
	return out, nil
}

// FamilyByName resolves the wire name of a solver family ("ordinary",
// "general", "moebius", "grid2d") — the inverse of Family.String for the
// concrete families.
func FamilyByName(name string) (Family, error) {
	switch name {
	case "ordinary":
		return FamilyOrdinary, nil
	case "general":
		return FamilyGeneral, nil
	case "moebius":
		return FamilyMoebius, nil
	case "grid2d":
		return FamilyGrid2D, nil
	default:
		return FamilyAuto, fmt.Errorf("%w: unknown family %q", ErrShard, name)
	}
}
