package indexedrec

// Chaos tests for the hardened solver runtime: every solver family must
// survive an injected operator panic, an injected operator error, and a
// mid-solve cancellation with a descriptive error — no process crash, no
// deadlock, no leaked goroutines. Run with -race; the CI workflow does.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"indexedrec/internal/cap"
	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

// checkGoroutines snapshots the goroutine count and returns an assertion
// that it settles back (with a settle loop — exiting workers need a beat to
// be reaped). Register it with defer AFTER the snapshot.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: started with %d, still %d", base, runtime.NumGoroutine())
	}
}

func chainInit(m int) []int64 {
	init := make([]int64, m)
	for i := range init {
		init[i] = int64(i%7 + 1)
	}
	return init
}

// --- ordinary ---

func TestChaosOrdinaryOpPanic(t *testing.T) {
	defer checkGoroutines(t)()
	s := workload.Chain(4096)
	op := &core.InjectOp[int64]{Inner: core.IntAdd{}, PanicAt: 100}
	res, err := ordinary.SolveCtx[int64](context.Background(), s, op, chainInit(s.M), ordinary.Options{Procs: 8})
	if res != nil || err == nil {
		t.Fatalf("res=%v err=%v, want nil result and error", res, err)
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *parallel.PanicError", err, err)
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Fatalf("error not descriptive: %v", err)
	}
}

func TestChaosOrdinaryOpError(t *testing.T) {
	defer checkGoroutines(t)()
	s := workload.Chain(4096)
	op := &core.InjectOp[int64]{Inner: core.IntAdd{}, FailAt: 100}
	_, err := ordinary.SolveCtx[int64](context.Background(), s, op, chainInit(s.M), ordinary.Options{Procs: 8})
	if !errors.Is(err, core.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestChaosOrdinaryCancelAtRound(t *testing.T) {
	defer checkGoroutines(t)()
	s := workload.Chain(1 << 14) // 14 pointer-jumping rounds
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := core.CancelAt(2, cancel)
	opt := ordinary.Options{Procs: 8, OnRound: func(round int, j *ordinary.JumperState) { hook() }}
	_, err := ordinary.SolveCtx[int64](ctx, s, core.IntAdd{}, chainInit(s.M), opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOrdinarySolveCtxInitLenError(t *testing.T) {
	s := workload.Chain(16)
	_, err := ordinary.SolveCtx[int64](context.Background(), s, core.IntAdd{}, make([]int64, 3), ordinary.Options{})
	if !errors.Is(err, ordinary.ErrInitLen) {
		t.Fatalf("err = %v, want ErrInitLen", err)
	}
}

func TestOrdinaryLegacyInitLenStillPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("legacy Solve did not panic on init-length mismatch")
		}
		if r != "ordinary: Solve: len(init) != s.M" {
			t.Fatalf("panic message changed: %v", r)
		}
	}()
	s := workload.Chain(16)
	_, _ = ordinary.Solve[int64](s, core.IntAdd{}, make([]int64, 3), ordinary.Options{})
}

// --- gir / cap ---

func TestChaosGIROpPanic(t *testing.T) {
	defer checkGoroutines(t)()
	s := workload.Fibonacci(64)
	op := core.NewInjectMonoid[int64](core.MulMod{M: 1_000_003})
	op.PanicAt = 50
	init := chainInit(s.M)
	_, err := gir.SolveCtx[int64](context.Background(), s, op, init, gir.Options{Procs: 8})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *parallel.PanicError", err, err)
	}
}

func TestChaosGIROpError(t *testing.T) {
	defer checkGoroutines(t)()
	s := workload.Fibonacci(64)
	op := core.NewInjectMonoid[int64](core.MulMod{M: 1_000_003})
	op.FailAt = 50
	_, err := gir.SolveCtx[int64](context.Background(), s, op, chainInit(s.M), gir.Options{Procs: 8})
	if !errors.Is(err, core.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestChaosGIRCancelMidEval(t *testing.T) {
	defer checkGoroutines(t)()
	s := workload.Fibonacci(256)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	op := core.NewInjectMonoid[int64](core.MulMod{M: 1_000_003})
	hook := core.CancelAt(10, cancel)
	op.OnCall = func(k int64) { hook() }
	_, err := gir.SolveCtx[int64](ctx, s, op, chainInit(s.M), gir.Options{Procs: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestChaosCAPCancelAtRound(t *testing.T) {
	defer checkGoroutines(t)()
	d, err := gir.Build(workload.Fibonacci(256))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := core.CancelAt(2, cancel)
	_, _, err = cap.CountSquaringCtx(ctx, d.G, cap.SquaringOptions{
		Procs:   4,
		OnRound: func(round int, edges [][]cap.Edge) { hook() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestChaosCAPHookPanic(t *testing.T) {
	defer checkGoroutines(t)()
	d, err := gir.Build(workload.Fibonacci(128))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = cap.CountSquaringCtx(context.Background(), d.G, cap.SquaringOptions{
		Procs:   4,
		OnRound: func(round int, edges [][]cap.Edge) { panic("hook exploded") },
	})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *parallel.PanicError", err, err)
	}
}

// TestExponentLimitAllEngines: a Fibonacci dependence graph whose path
// counts exceed the bit cap must surface ErrExponentLimit promptly from
// every CAP engine instead of exhausting memory.
func TestExponentLimitAllEngines(t *testing.T) {
	d, err := gir.Build(workload.Fibonacci(150)) // fib(150) ≈ 104 bits
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const maxBits = 16
	engines := map[string]func() error{
		"squaring": func() error {
			_, _, err := cap.CountSquaringCtx(ctx, d.G, cap.SquaringOptions{MaxBits: maxBits})
			return err
		},
		"dp": func() error {
			_, err := cap.CountDPCtx(ctx, d.G, maxBits)
			return err
		},
		"wavefront": func() error {
			_, err := cap.CountWavefrontCtx(ctx, d.G, 4, maxBits)
			return err
		},
		"matrix": func() error {
			_, err := cap.CountMatrixCtx(ctx, d.G, 4, maxBits)
			return err
		},
	}
	for name, run := range engines {
		if err := run(); !errors.Is(err, cap.ErrExponentLimit) {
			t.Errorf("%s: err = %v, want ErrExponentLimit", name, err)
		}
	}
}

func TestExponentLimitViaPublicAPI(t *testing.T) {
	s := workload.Fibonacci(600) // fib(600) ≈ 417 bits
	init := chainInit(s.M)
	start := time.Now()
	_, err := ir.SolveGeneralCtx[int64](context.Background(), s, core.MulMod{M: 1_000_003}, init,
		ir.SolveOptions{Procs: 4, MaxExponentBits: 64})
	if !errors.Is(err, ir.ErrExponentLimit) {
		t.Fatalf("err = %v, want ErrExponentLimit", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("limit not prompt: took %v", d)
	}
}

func TestGIRLegacyInitLenStillPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "gir: solveOnGraph: len(init) != s.M" {
			t.Fatalf("panic = %v, want historical message", r)
		}
	}()
	s := workload.Fibonacci(16)
	_, _ = gir.Solve[int64](s, core.MulMod{M: 97}, make([]int64, 3), gir.Options{})
}

// --- moebius ---

// moebiusChain builds the affine chain X[i+1] := a·X[i] + 1 over m cells.
func moebiusChain(m int, a float64) *moebius.MoebiusSystem {
	n := m - 1
	g := make([]int, n)
	f := make([]int, n)
	av := make([]float64, n)
	bv := make([]float64, n)
	for i := 0; i < n; i++ {
		g[i], f[i], av[i], bv[i] = i+1, i, a, 1
	}
	return moebius.NewLinear(m, g, f, av, bv)
}

func TestChaosMoebiusHookPanic(t *testing.T) {
	defer checkGoroutines(t)()
	ms := moebiusChain(1<<12, 1.0001)
	opt := ordinary.Options{Procs: 8, OnRound: func(round int, j *ordinary.JumperState) {
		if round == 2 {
			panic("moebius hook exploded")
		}
	}}
	_, err := ms.SolveCtx(context.Background(), make([]float64, 1<<12), opt)
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *parallel.PanicError", err, err)
	}
}

func TestChaosMoebiusInjectedError(t *testing.T) {
	defer checkGoroutines(t)()
	ms := moebiusChain(1<<12, 1.0001)
	opt := ordinary.Options{Procs: 8, OnRound: func(round int, j *ordinary.JumperState) {
		if round == 2 {
			parallel.Abort(core.ErrInjected)
		}
	}}
	_, err := ms.SolveCtx(context.Background(), make([]float64, 1<<12), opt)
	if !errors.Is(err, core.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestChaosMoebiusCancelAtRound(t *testing.T) {
	defer checkGoroutines(t)()
	ms := moebiusChain(1<<12, 1.0001)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := core.CancelAt(2, cancel)
	opt := ordinary.Options{Procs: 8, OnRound: func(round int, j *ordinary.JumperState) { hook() }}
	_, err := ms.SolveCtx(ctx, make([]float64, 1<<12), opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMoebiusDivisionByZeroGuard(t *testing.T) {
	// X[1] := 1 / X[0] with X[0] = 0: the sequential loop yields +Inf; the
	// guarded API reports it as ErrNonFinite instead.
	ms := &moebius.MoebiusSystem{M: 2, G: []int{1}, F: []int{0},
		A: []float64{0}, B: []float64{1}, C: []float64{1}, D: []float64{0}}
	_, err := ms.SolveCtx(context.Background(), []float64{0, 0}, ordinary.Options{})
	if !errors.Is(err, moebius.ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
	// The legacy API keeps IEEE semantics.
	out, err := ms.Solve([]float64{0, 0}, ordinary.Options{})
	if err != nil {
		t.Fatalf("legacy Solve: %v", err)
	}
	want := ms.RunSequential([]float64{0, 0})
	if out[1] != want[1] {
		t.Fatalf("legacy Solve[1] = %v, sequential = %v", out[1], want[1])
	}
}

func TestMoebiusNonFiniteInputRejected(t *testing.T) {
	ms := moebiusChain(8, 1)
	x0 := make([]float64, 8)
	x0[3] = nan()
	if _, err := ms.SolveCtx(context.Background(), x0, ordinary.Options{}); !errors.Is(err, moebius.ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite for NaN input", err)
	}
}

func nan() float64 { z := 0.0; return z / z }

func TestMoebiusLegacyInitLenStillPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "moebius: Solve: len(x0) != M" {
			t.Fatalf("panic = %v, want historical message", r)
		}
	}()
	_, _ = moebiusChain(8, 1).Solve(make([]float64, 3), ordinary.Options{})
}

// --- public façade ---

func TestFacadeCtxSolversSurviveInjection(t *testing.T) {
	defer checkGoroutines(t)()
	s := workload.Chain(1024)
	op := &core.InjectOp[int64]{Inner: core.IntAdd{}, PanicAt: 30}
	_, err := ir.SolveOrdinaryCtx[int64](context.Background(), s, op, chainInit(s.M), ir.SolveOptions{Procs: 4})
	if err == nil {
		t.Fatal("want error from injected panic")
	}
	if msg, ok := ir.IsWorkerPanic(err); !ok || !strings.Contains(msg, "injected panic") {
		t.Fatalf("IsWorkerPanic = (%q, %v) for %v", msg, ok, err)
	}
}

func TestFacadeCtxMatchesLegacyOnHealthyInput(t *testing.T) {
	s := workload.Chain(512)
	init := chainInit(s.M)
	legacy, err := ir.SolveOrdinary[int64](s, core.IntAdd{}, init, 4)
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := ir.SolveOrdinaryCtx[int64](context.Background(), s, core.IntAdd{}, init, ir.SolveOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy.Values {
		if legacy.Values[i] != hardened.Values[i] {
			t.Fatalf("cell %d: legacy %d != hardened %d", i, legacy.Values[i], hardened.Values[i])
		}
	}
}
