package indexedrec

// TestDocCoverage is the documentation gate: every package must carry a
// package comment and every exported symbol a doc comment. It runs as part
// of the ordinary test suite (and therefore in CI) using only go/parser, so
// there is nothing to install and nothing network-dependent. The gate is
// deliberately strict — an exported name without a doc comment fails the
// build, which is what keeps the godoc audit from regressing.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDocCoverage(t *testing.T) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			checkPackageDocs(t, fset, dir, pkg)
		}
	}
}

func checkPackageDocs(t *testing.T, fset *token.FileSet, dir string, pkg *ast.Package) {
	t.Helper()
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		t.Errorf("package %s (%s) has no package comment", pkg.Name, dir)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue // method of an unexported type: not API surface
				}
				t.Errorf("%s: exported %s lacks a doc comment", fset.Position(d.Pos()), d.Name.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							t.Errorf("%s: exported type %s lacks a doc comment", fset.Position(sp.Pos()), sp.Name.Name)
						}
					case *ast.ValueSpec:
						if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
							continue
						}
						for _, name := range sp.Names {
							if name.IsExported() {
								t.Errorf("%s: exported %s lacks a doc comment", fset.Position(name.Pos()), name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// TestDocFileContract is the stricter half of the doc gate: the packages
// listed here must carry their package comment in a file literally named
// doc.go, not inline above some arbitrary declaration. A dedicated doc.go is
// where the package-level invariants live (see internal/scan/doc.go for the
// template), and pinning the file name keeps `go doc` output, the DESIGN
// cross-references, and future package splits from silently dropping it.
// Adding a package to the repo does not add it here automatically — promote
// it once it has a real doc.go.
func TestDocFileContract(t *testing.T) {
	pkgs := []string{
		"internal/core",
		"internal/graph",
		"internal/grid2d",
		"internal/moebius",
		"internal/ordinary",
		"internal/parallel",
		"internal/scan",
		"internal/server",
		"internal/session",
		"internal/trace",
		"internal/workload",
	}
	for _, dir := range pkgs {
		path := filepath.Join(dir, "doc.go")
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: missing or unparsable doc.go: %v", dir, err)
			continue
		}
		if f.Doc == nil || len(strings.TrimSpace(f.Doc.Text())) == 0 {
			t.Errorf("%s: doc.go exists but carries no package comment", dir)
		}
	}
}

// exportedReceiver reports whether a method receiver names an exported type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			typ = x.X
		case *ast.IndexListExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
