package lang

import (
	"strings"
	"testing"
)

// FuzzParse: the parser must never panic and must either return a loop or a
// wrapped ErrSyntax, on any input. Seeds cover the grammar's corners; `go
// test` runs the seeds, `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"for i = 1 to n do X[i] := X[i-1] + X[i]",
		"for i = 1 to n do begin end",
		"for for for",
		"X[1] := 2",
		"for i = 1 to n do X[i] := ((((1))))",
		"for i = 1 to n do X[i] := 0.75d0 * Y[i]",
		"for j = 1 to m do for i = 1 to n do X[i+j] := X[i] ; end",
		"for i = 1 to n do X[i] := -(-(-X[i]))",
		"for i = 1 to 1000000000000000000000 do X[i] := 1",
		"for i = 1 to n do X[i] := X[i" + strings.Repeat("]", 50),
		strings.Repeat("for i = 1 to 2 do ", 40) + "X[i] := 1",
		"; ; ; for i = 1 to 2 do X[i] := 1 ; ; ;",
		"for i = 1 to n do X[i] := Y[Z[W[i]]]",
		"for i = 1 to n do X[i] := 1e999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		loop, err := Parse(src)
		if err == nil && loop == nil {
			t.Fatal("nil loop with nil error")
		}
		if err == nil {
			// Whatever parses must classify and print without panicking,
			// and the printed form must re-parse.
			_ = Analyze(loop)
			if _, err2 := Parse(loop.String()); err2 != nil {
				t.Fatalf("print/reparse failed: %v\nsrc: %q\nprinted: %q", err2, src, loop)
			}
		}
	})
}

// FuzzEval: evaluating arbitrary parsed expressions over a small env must
// never panic (errors are fine).
func FuzzEval(f *testing.F) {
	for _, s := range []string{"1+2*3", "X[0]", "a/b", "-(X[1]/0)", "X[X[0]]", "1/0"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		env := NewEnv()
		env.Scalars["a"] = 2
		env.Scalars["b"] = 3
		env.Arrays["X"] = []float64{1, 2, 3}
		_, _ = Eval(e, env) // must not panic
	})
}
