package lang

import (
	"errors"
	"fmt"
	"math"
)

// Env is the runtime environment of a loop: scalar bindings and float64
// arrays. Index expressions must evaluate to integers (within 1e-9).
type Env struct {
	Scalars map[string]float64
	Arrays  map[string][]float64
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{Scalars: map[string]float64{}, Arrays: map[string][]float64{}}
}

// Clone deep-copies the environment (arrays included).
func (env *Env) Clone() *Env {
	c := NewEnv()
	for k, v := range env.Scalars {
		c.Scalars[k] = v
	}
	for k, v := range env.Arrays {
		c.Arrays[k] = append([]float64(nil), v...)
	}
	return c
}

// ErrEval wraps evaluation failures (unbound names, bad indices).
var ErrEval = errors.New("lang: evaluation error")

// Eval evaluates an expression in env.
func Eval(e Expr, env *Env) (float64, error) {
	switch x := e.(type) {
	case *Num:
		return x.Val, nil
	case *Var:
		v, ok := env.Scalars[x.Name]
		if !ok {
			return 0, fmt.Errorf("%w: unbound scalar %q", ErrEval, x.Name)
		}
		return v, nil
	case *Index:
		arr, ok := env.Arrays[x.Array]
		if !ok {
			return 0, fmt.Errorf("%w: unbound array %q", ErrEval, x.Array)
		}
		i, err := EvalIndex(x.Idx, env)
		if err != nil {
			return 0, err
		}
		if i < 0 || i >= len(arr) {
			return 0, fmt.Errorf("%w: %s[%d] out of range [0,%d)", ErrEval, x.Array, i, len(arr))
		}
		return arr[i], nil
	case *Bin:
		l, err := Eval(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			return l / r, nil
		}
		return 0, fmt.Errorf("%w: bad operator %q", ErrEval, x.Op)
	case *Neg:
		v, err := Eval(x.E, env)
		return -v, err
	}
	return 0, fmt.Errorf("%w: unknown expression node %T", ErrEval, e)
}

// EvalIndex evaluates an index expression, requiring an integral value.
func EvalIndex(e Expr, env *Env) (int, error) {
	v, err := Eval(e, env)
	if err != nil {
		return 0, err
	}
	r := math.Round(v)
	if math.Abs(v-r) > 1e-9 {
		return 0, fmt.Errorf("%w: index %v is not an integer", ErrEval, v)
	}
	return int(r), nil
}

// Run interprets the loop sequentially, mutating env — the semantic oracle
// for every compiled execution path.
func Run(l *Loop, env *Env) error {
	lo, err := EvalIndex(l.Lo, env)
	if err != nil {
		return err
	}
	hi, err := EvalIndex(l.Hi, env)
	if err != nil {
		return err
	}
	saved, hadVar := env.Scalars[l.Var]
	defer func() {
		if hadVar {
			env.Scalars[l.Var] = saved
		} else {
			delete(env.Scalars, l.Var)
		}
	}()
	for i := lo; i <= hi; i++ {
		env.Scalars[l.Var] = float64(i)
		for _, st := range l.Body {
			switch s := st.(type) {
			case *Assign:
				if err := execAssign(s, env); err != nil {
					return err
				}
			case *Loop:
				if err := Run(s, env); err != nil {
					return err
				}
			default:
				return fmt.Errorf("%w: unknown statement %T", ErrEval, st)
			}
		}
	}
	return nil
}

func execAssign(st *Assign, env *Env) error {
	arr, ok := env.Arrays[st.Target.Array]
	if !ok {
		return fmt.Errorf("%w: unbound array %q", ErrEval, st.Target.Array)
	}
	gi, err := EvalIndex(st.Target.Idx, env)
	if err != nil {
		return err
	}
	if gi < 0 || gi >= len(arr) {
		return fmt.Errorf("%w: %s[%d] out of range", ErrEval, st.Target.Array, gi)
	}
	v, err := Eval(st.RHS, env)
	if err != nil {
		return err
	}
	arr[gi] = v
	return nil
}
