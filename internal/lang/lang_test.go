package lang

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Loop {
	t.Helper()
	l, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return l
}

func TestParseSingleStatement(t *testing.T) {
	l := mustParse(t, "for i = 1 to n do X[i] := X[i-1] + X[i]")
	if l.Var != "i" || len(l.Body) != 1 {
		t.Fatalf("loop: %v", l)
	}
	if l.TargetArray() != "X" {
		t.Fatalf("target: %v", l.TargetArray())
	}
}

func TestParseBeginEnd(t *testing.T) {
	l := mustParse(t, `
for k = 1 to 10 do
begin
    A[k] := B[k] * 2;
    C[k] := B[k] + 1;
end`)
	if len(l.Body) != 2 {
		t.Fatalf("body: %v", l.Body)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 - 4 / 2")
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	v, err := Eval(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("1+2*3-4/2 = %v, want 5", v)
	}
}

func TestParseParensAndUnary(t *testing.T) {
	e, err := ParseExpr("-(2 + 3) * -2")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := Eval(e, NewEnv())
	if v != 10 {
		t.Fatalf("got %v, want 10", v)
	}
}

func TestParseFortranDoubleLiteral(t *testing.T) {
	// The paper's loop 23 uses "0.75d0".
	e, err := ParseExpr("0.75d0 * 4")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := Eval(e, NewEnv())
	if v != 3 {
		t.Fatalf("0.75d0*4 = %v, want 3", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"while i = 1 to n do X[i] := 1",
		"for i = 1 to n X[i] := 1",
		"for i = 1 to n do X[i] = 1",
		"for i = 1 to n do begin X[i] := 1",
		"for i = 1 to n do X[i] := ",
		"for i = 1 to n do X[i] := (1 + 2",
		"for i = 1 to n do X := 1",
	}
	for _, src := range cases {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", src, err)
		}
	}
}

func TestRunInterpreter(t *testing.T) {
	l := mustParse(t, "for i = 1 to 4 do X[i] := X[i-1] + X[i]")
	env := NewEnv()
	env.Scalars["n"] = 4
	env.Arrays["X"] = []float64{1, 2, 3, 4, 5}
	if err := Run(l, env); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 6, 10, 15} // prefix sums
	for i, w := range want {
		if env.Arrays["X"][i] != w {
			t.Fatalf("X = %v, want %v", env.Arrays["X"], want)
		}
	}
}

func TestRunIndirection(t *testing.T) {
	l := mustParse(t, "for i = 0 to 2 do X[K[i]] := X[K[i]] + 10")
	env := NewEnv()
	env.Arrays["X"] = []float64{0, 0, 0, 0}
	env.Arrays["K"] = []float64{3, 1, 3}
	if err := Run(l, env); err != nil {
		t.Fatal(err)
	}
	got := env.Arrays["X"]
	if got[1] != 10 || got[3] != 20 {
		t.Fatalf("X = %v", got)
	}
}

func TestRunErrors(t *testing.T) {
	l := mustParse(t, "for i = 1 to 3 do X[i] := Y[i]")
	env := NewEnv()
	env.Arrays["X"] = []float64{0, 0, 0, 0}
	if err := Run(l, env); !errors.Is(err, ErrEval) {
		t.Fatalf("unbound array: err = %v", err)
	}
	l2 := mustParse(t, "for i = 1 to 9 do X[i] := 1")
	env2 := NewEnv()
	env2.Arrays["X"] = []float64{0, 0}
	if err := Run(l2, env2); !errors.Is(err, ErrEval) {
		t.Fatalf("out of range: err = %v", err)
	}
	l3 := mustParse(t, "for i = 1 to 2 do X[i/2] := 1")
	env3 := NewEnv()
	env3.Arrays["X"] = []float64{0, 0, 0}
	if err := Run(l3, env3); !errors.Is(err, ErrEval) {
		t.Fatalf("fractional index: err = %v", err)
	}
}

// --- classifier ---

func classify(t *testing.T, src string) *Analysis {
	t.Helper()
	return Analyze(mustParse(t, src))
}

func TestClassifyForms(t *testing.T) {
	cases := []struct {
		src    string
		form   Form
		bucket Bucket
	}{
		{"for i = 1 to n do X[i] := Y[i] * Z[i]", FormMap, BucketNone},
		{"for i = 1 to n do X[i] := X[i-1] + X[i]", FormOrdinaryIR, BucketLinear},
		{"for i = 1 to n do X[G[i]] := X[F[i]] * X[G[i]]", FormOrdinaryIR, BucketIndexed},
		{"for i = 1 to n do X[G[i]] := X[G[i]] + X[F[i]]", FormOrdinaryIR, BucketIndexed},
		{"for i = 2 to n do X[i] := X[i-1] * X[i-2]", FormGIR, BucketLinear},
		{"for i = 1 to n do X[G[i]] := X[F[i]] + X[H[i]]", FormGIR, BucketIndexed},
		{"for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]", FormLinear, BucketLinear},
		{"for i = 1 to n do X[G[i]] := A[i]*X[F[i]] + B[i]", FormLinear, BucketIndexed},
		{"for i = 1 to n do X[G[i]] := X[G[i]] + A[i]*X[F[i]] + B[i]", FormLinearExtended, BucketIndexed},
		{"for i = 1 to n do X[G[i]] := (A[i]*X[F[i]]+B[i]) / (C[i]*X[F[i]]+D[i])", FormMoebius, BucketIndexed},
		{"for i = 1 to n do X[i] := X[i-1] * X[i-1]", FormGIR, BucketLinear},
		{"for i = 1 to n do X[G[i]] := X[F[i]] * X[F[i]] + 1", FormUnknown, BucketUnknown},
		{"for i = 1 to n do X[G[i]] := 1 / X[F[i]] + X[H[i]]", FormUnknown, BucketUnknown},
		{"for i = 1 to n do X[X[i]] := 1", FormUnknown, BucketUnknown},
	}
	for _, tc := range cases {
		an := classify(t, tc.src)
		if an.Form != tc.form || an.Bucket != tc.bucket {
			t.Errorf("%q:\n  got  form=%v bucket=%v (%s)\n  want form=%v bucket=%v",
				tc.src, an.Form, an.Bucket, an.Reason, tc.form, tc.bucket)
		}
	}
}

func TestClassifyPaperLoop23(t *testing.T) {
	// The paper's §3 example, 2-D implicit hydrodynamics inner loop in
	// flattened form: X[7(i-1)+j] with j fixed. Extended linear form.
	src := "for i = 2 to n do X[7*(i-1)+j] := X[7*(i-1)+j] + 0.75d0*(Y[i] + X[7*(i-2)+j]*Z[7*(i-1)+j])"
	an := classify(t, src)
	if an.Form != FormLinearExtended {
		t.Fatalf("form = %v (%s), want linear-extended", an.Form, an.Reason)
	}
	if an.Bucket != BucketIndexed {
		t.Fatalf("bucket = %v, want indexed", an.Bucket)
	}
	if !strings.Contains(an.Describe(), "extended") {
		t.Errorf("Describe: %s", an.Describe())
	}
}

func TestClassifyExtendedWithScaledSelf(t *testing.T) {
	// A general self coefficient: X[g] := 3*X[g] + 2*X[f] + 1 is still the
	// extended form (self-reference reads the initial value when g is
	// distinct).
	an := classify(t, "for i = 1 to n do X[G[i]] := 3*X[G[i]] + 2*X[F[i]] + 1")
	if an.Form != FormLinearExtended {
		t.Fatalf("form = %v (%s)", an.Form, an.Reason)
	}
}

func TestClassifyCoefficientSides(t *testing.T) {
	// Coefficient on the right of the X-ref, subtraction, division by
	// X-free expressions — all still linear.
	for _, src := range []string{
		"for i = 1 to n do X[G[i]] := X[F[i]]*A[i] - B[i]",
		"for i = 1 to n do X[G[i]] := X[F[i]]/A[i] + B[i]",
		"for i = 1 to n do X[G[i]] := -X[F[i]] + 1",
	} {
		an := classify(t, src)
		if an.Form != FormLinear {
			t.Errorf("%q: form = %v (%s), want linear", src, an.Form, an.Reason)
		}
	}
}

func TestClassifyMultiStatementIndependent(t *testing.T) {
	an := classify(t, `for i = 1 to n do begin A[i] := B[i]*2; C[i] := B[i]+1; end`)
	if an.Form != FormMap || an.Bucket != BucketNone {
		t.Fatalf("independent maps: form=%v bucket=%v (%s)", an.Form, an.Bucket, an.Reason)
	}
	an2 := classify(t, `for i = 1 to n do begin A[i] := B[i]; B[i] := A[i]; end`)
	if an2.Form != FormUnknown {
		t.Fatalf("cross-referencing body: form=%v, want unknown", an2.Form)
	}
}

// --- lowering + execution ---

func execBoth(t *testing.T, src string, env *Env) (seq, par *Env) {
	t.Helper()
	l := mustParse(t, src)
	seq = env.Clone()
	if err := Run(l, seq); err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par = env.Clone()
	c := Compile(l)
	if err := c.Execute(par, 4); err != nil {
		t.Fatalf("parallel (%v): %v", c.Analysis.Form, err)
	}
	return seq, par
}

func requireSameArrays(t *testing.T, seq, par *Env, tol float64) {
	t.Helper()
	for name, want := range seq.Arrays {
		got := par.Arrays[name]
		for i := range want {
			d := math.Abs(got[i] - want[i])
			if d > tol*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("array %s[%d]: parallel %v, sequential %v", name, i, got[i], want[i])
			}
		}
	}
}

func TestExecuteOrdinaryIR(t *testing.T) {
	env := NewEnv()
	env.Scalars["n"] = 30
	env.Arrays["X"] = ramp(32)
	env.Arrays["G"] = ramp(32)
	env.Arrays["F"] = reverseRamp(32)
	seq, par := execBoth(t, "for i = 1 to n do X[G[i]] := X[F[i]] + X[G[i]]", env)
	requireSameArrays(t, seq, par, 1e-12)
}

func TestExecuteGIR(t *testing.T) {
	env := NewEnv()
	env.Scalars["n"] = 10
	env.Arrays["X"] = []float64{1.01, 1.02, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	seq, par := execBoth(t, "for i = 2 to n do X[i] := X[i-1] * X[i-2]", env)
	requireSameArrays(t, seq, par, 1e-9)
}

func TestExecuteLinear(t *testing.T) {
	env := NewEnv()
	env.Scalars["n"] = 20
	env.Arrays["X"] = ramp(24)
	env.Arrays["A"] = halfRamp(24)
	env.Arrays["B"] = ramp(24)
	seq, par := execBoth(t, "for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]", env)
	requireSameArrays(t, seq, par, 1e-9)
}

func TestExecuteExtendedIndirect(t *testing.T) {
	env := NewEnv()
	env.Scalars["n"] = 15
	env.Arrays["X"] = ramp(40)
	env.Arrays["A"] = halfRamp(16)
	env.Arrays["B"] = halfRamp(16)
	// G: distinct targets 2i; F: i (mix of earlier/later writes).
	g := make([]float64, 16)
	f := make([]float64, 16)
	for i := range g {
		g[i] = float64(2 * i)
		f[i] = float64(i)
	}
	env.Arrays["G"] = g
	env.Arrays["F"] = f
	seq, par := execBoth(t, "for i = 1 to n do X[G[i]] := X[G[i]] + A[i]*X[F[i]] + B[i]", env)
	requireSameArrays(t, seq, par, 1e-9)
}

func TestExecuteMap(t *testing.T) {
	env := NewEnv()
	env.Scalars["n"] = 9
	env.Arrays["X"] = make([]float64, 10)
	env.Arrays["Y"] = ramp(10)
	seq, par := execBoth(t, "for i = 0 to n do X[i] := Y[i]*Y[i] + 1", env)
	requireSameArrays(t, seq, par, 0)
}

func TestExecuteUnknownFallsBack(t *testing.T) {
	env := NewEnv()
	env.Scalars["n"] = 5
	env.Arrays["X"] = ramp(8)
	// Quadratic: classifier says unknown; Execute must still be correct
	// via the sequential fallback.
	seq, par := execBoth(t, "for i = 1 to n do X[i] := X[i-1]*X[i-1] + X[i]", env)
	requireSameArrays(t, seq, par, 0)
}

func TestExecuteMoebius(t *testing.T) {
	env := NewEnv()
	env.Scalars["n"] = 12
	env.Arrays["X"] = onesF(16)
	env.Arrays["A"] = halfRamp(16)
	env.Arrays["B"] = onesF(16)
	env.Arrays["C"] = halfRamp(16)
	env.Arrays["D"] = onesF(16)
	seq, par := execBoth(t,
		"for i = 1 to n do X[i] := (A[i]*X[i-1]+B[i]) / (C[i]*X[i-1]+D[i])", env)
	requireSameArrays(t, seq, par, 1e-9)
}

func TestStrategyNames(t *testing.T) {
	l := mustParse(t, "for i = 1 to n do X[i] := X[i-1] + X[i]")
	if s := Compile(l).Strategy(); s != "OrdinaryIR pointer jumping" {
		t.Fatalf("strategy = %q", s)
	}
}

func ramp(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i + 1)
	}
	return v
}

func reverseRamp(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(n - 1 - i)
	}
	return v
}

func halfRamp(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 0.5 + float64(i%7)/14
	}
	return v
}

func onesF(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestExecuteMultiStatementMixedForms(t *testing.T) {
	// Regression: a multi-statement body whose members have different
	// forms (a recurrence on X, a map on Y) must execute EVERY statement
	// (fission is valid because the analysis proved independence).
	src := `
for i = 1 to n do
begin
    X[i] := X[i-1] + X[i];
    Y[i] := B[i] * 2;
end`
	env := NewEnv()
	env.Scalars["n"] = 20
	env.Arrays["X"] = ramp(21)
	env.Arrays["Y"] = make([]float64, 21)
	env.Arrays["B"] = ramp(21)
	seq, par := execBoth(t, src, env)
	requireSameArrays(t, seq, par, 1e-12)
	if par.Arrays["Y"][5] == 0 {
		t.Fatal("second statement was not executed")
	}
}

func TestExecuteMultiStatementTwoRecurrences(t *testing.T) {
	src := `
for i = 1 to n do
begin
    X[i] := A[i]*X[i-1] + 1;
    Z[i] := Z[i-1] + A[i];
end`
	env := NewEnv()
	env.Scalars["n"] = 30
	env.Arrays["X"] = ramp(31)
	env.Arrays["Z"] = make([]float64, 31)
	env.Arrays["A"] = halfRamp(31)
	seq, par := execBoth(t, src, env)
	requireSameArrays(t, seq, par, 1e-9)
}
