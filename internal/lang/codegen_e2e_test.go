package lang

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestEmitGoCompilesEndToEnd writes emitted code into a throwaway package
// inside this module and runs the real Go compiler over it — the strongest
// possible check that the back-end's output is valid, importable code.
func TestEmitGoCompilesEndToEnd(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}
	// The generated file imports indexedrec/ir, so it must live inside
	// this module; place it next to this package and clean up after.
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	dir := filepath.Join(filepath.Dir(thisFile), "genverify")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srcs := map[string]string{
		"prefix.go": "for i = 1 to n do X[i] := X[i-1] + X[i]",
		"linear.go": "for i = 1 to n do X[G[i]] := A[i]*X[F[i]] + B[i]",
		"gir.go":    "for i = 2 to n do X[i] := X[i-1] * X[i-2]",
		"nest.go":   loop23Nest,
	}
	k := 0
	for file, loopSrc := range srcs {
		out, err := Compile(mustParse(t, loopSrc)).EmitGo("Gen" + string(rune('A'+k)))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, file), []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		k++
	}
	cmd := exec.Command(goBin, "build", "./genverify")
	cmd.Dir = filepath.Dir(thisFile)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("generated package failed to compile: %v\n%s", err, out)
	}
}

// TestGeneratedCodeRunsCorrectly goes one step further: it emits code for a
// linear recurrence, wraps it in a main package with an embedded oracle
// check, and `go run`s it — generated code executed by a real binary must
// reproduce the sequential loop.
func TestGeneratedCodeRunsCorrectly(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	dir := filepath.Join(filepath.Dir(thisFile), "genrun")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	gen, err := Compile(mustParse(t, "for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]")).EmitGo("Solve")
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the package clause for a runnable main.
	if err := os.WriteFile(filepath.Join(dir, "solve.go"), []byte(replacePkg(gen)), 0o644); err != nil {
		t.Fatal(err)
	}
	mainSrc := `package main

import (
	"fmt"
	"math"
	"os"
)

func main() {
	const n = 200
	env := map[string][]float64{
		"X": make([]float64, n+1),
		"A": make([]float64, n+1),
		"B": make([]float64, n+1),
	}
	for i := 0; i <= n; i++ {
		env["X"][i] = float64(i%7) * 0.25
		env["A"][i] = 0.5 + float64(i%3)*0.1
		env["B"][i] = float64(i%5) * 0.2
	}
	want := append([]float64(nil), env["X"]...)
	for i := 1; i <= n; i++ {
		want[i] = env["A"][i]*want[i-1] + env["B"][i]
	}
	scalars := map[string]float64{"n": n}
	if err := Solve(env, scalars, 2); err != nil {
		fmt.Fprintln(os.Stderr, "Solve:", err)
		os.Exit(1)
	}
	for i := range want {
		if math.Abs(env["X"][i]-want[i]) > 1e-9 {
			fmt.Fprintf(os.Stderr, "cell %d: got %v want %v\n", i, env["X"][i], want[i])
			os.Exit(1)
		}
	}
	fmt.Println("GENERATED-OK")
}
`
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(mainSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "run", "./genrun")
	cmd.Dir = filepath.Dir(thisFile)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated program failed: %v\n%s", err, out)
	}
	if !contains(string(out), "GENERATED-OK") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func replacePkg(src string) string {
	const from = "package generated"
	i := indexOf(src, from)
	if i < 0 {
		return src
	}
	return src[:i] + "package main" + src[i+len(from):]
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func contains(s, sub string) bool { return indexOf(s, sub) >= 0 }
