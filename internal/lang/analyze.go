package lang

import (
	"fmt"
)

// Form is the recurrence form the classifier assigns to a loop — the
// dispatch key for parallelization.
type Form int

const (
	// FormUnknown: not expressible in the framework (or multi-statement).
	FormUnknown Form = iota
	// FormMap: the RHS never reads the target array — a pure parallel map.
	FormMap
	// FormOrdinaryIR: X[g] := X[f] ⊗ X[g] with ⊗ ∈ {+, *} (paper §2).
	FormOrdinaryIR
	// FormGIR: X[g] := X[f] ⊗ X[h], general indices (paper §4).
	FormGIR
	// FormLinear: X[g] := a·X[f] + b with a, b free of X (paper §3).
	FormLinear
	// FormLinearExtended: X[g] := c·X[g] + a·X[f] + b (paper §3 extended).
	FormLinearExtended
	// FormMoebius: X[g] := (a·X[f]+b)/(c·X[f]+d) (paper §3 general).
	FormMoebius
)

// String names the recurrence form for reports and the loop endpoint.
func (f Form) String() string {
	switch f {
	case FormMap:
		return "map"
	case FormOrdinaryIR:
		return "ordinary-IR"
	case FormGIR:
		return "general-IR"
	case FormLinear:
		return "linear-IR"
	case FormLinearExtended:
		return "linear-IR-extended"
	case FormMoebius:
		return "moebius-IR"
	default:
		return "unknown"
	}
}

// Bucket is the paper's three-way Livermore classification.
type Bucket int

const (
	// BucketUnknown: outside the framework.
	BucketUnknown Bucket = iota
	// BucketNone: no recurrence of any type.
	BucketNone
	// BucketLinear: an ordinary (non-indexed) recurrence — all index maps
	// are shifts of the loop variable.
	BucketLinear
	// BucketIndexed: an indexed recurrence (general index maps).
	BucketIndexed
)

// String describes the classification bucket in prose.
func (b Bucket) String() string {
	switch b {
	case BucketNone:
		return "no recurrence"
	case BucketLinear:
		return "linear recurrence"
	case BucketIndexed:
		return "indexed recurrence"
	default:
		return "unclassified"
	}
}

// Analysis is the classifier's result for a single-assignment loop.
type Analysis struct {
	Form   Form
	Bucket Bucket
	// Reason explains FormUnknown/BucketUnknown results.
	Reason string
	// Array is the target (and recurring) array name.
	Array string
	// G, F, H are the index expressions (H only for FormGIR).
	G, F, H Expr
	// Op is '+' or '*' for the IR forms.
	Op byte
	// A, B, C, D are coefficient expressions for the linear/Möbius forms
	// (C, D only for FormMoebius). They never reference Array.
	A, B, C, D Expr
	// SelfCoef is the coefficient of the X[g] self-term in
	// FormLinearExtended (often the literal 1).
	SelfCoef Expr
	// SelfOnly marks extended forms whose only recurring operand is the
	// target cell itself (X[g] := c·X[g] + expr). When g is a plain shift
	// of the loop variable the writes are provably distinct and each read
	// sees an initial value — no recurrence at all; through an indirection
	// the same shape is a genuine accumulation recurrence (the PIC
	// kernels' scatter-add).
	SelfOnly bool
	// Nest marks a loop whose body is a single nested loop (e.g. Livermore
	// 23's column loop). Inner is the nested loop's analysis; the execution
	// strategy runs the outer loop sequentially and parallelizes the inner
	// loop per outer iteration.
	Nest  bool
	Inner *Analysis
}

// Analyze classifies a loop. Multi-statement bodies are classified
// statement-by-statement only when they target disjoint arrays none of
// which appears in another statement's RHS; otherwise FormUnknown.
func Analyze(l *Loop) *Analysis {
	if inner := l.InnerLoop(); inner != nil {
		ia := Analyze(inner)
		return &Analysis{
			Form: ia.Form, Bucket: ia.Bucket, Reason: ia.Reason,
			Array: ia.Array, Nest: true, Inner: ia,
		}
	}
	asgs := l.Assigns()
	if asgs == nil {
		return &Analysis{Form: FormUnknown, Bucket: BucketUnknown,
			Reason: "body mixes nested loops with other statements"}
	}
	if len(asgs) != 1 {
		// Check for trivially independent statements.
		for i, st := range asgs {
			for j, other := range asgs {
				if i == j {
					continue
				}
				if st.Target.Array == other.Target.Array || refersTo(other.RHS, st.Target.Array) {
					return &Analysis{Form: FormUnknown, Bucket: BucketUnknown,
						Reason: "multi-statement body with cross-references"}
				}
			}
		}
		// Independent statements: classify each; the loop as a whole is as
		// strong as its weakest statement.
		worst := &Analysis{Form: FormMap, Bucket: BucketNone}
		for _, st := range asgs {
			a := analyzeStmt(l, st)
			if a.Bucket == BucketUnknown || worst.Bucket == BucketUnknown {
				return &Analysis{Form: FormUnknown, Bucket: BucketUnknown,
					Reason: "multi-statement body with a non-trivial member: " + a.Reason}
			}
			if a.Bucket > worst.Bucket {
				worst = a
			}
		}
		return worst
	}
	return analyzeStmt(l, asgs[0])
}

func analyzeStmt(l *Loop, st *Assign) *Analysis {
	arr := st.Target.Array
	g := st.Target.Idx
	an := &Analysis{Array: arr, G: g}

	if refersTo(g, arr) {
		an.Form, an.Bucket = FormUnknown, BucketUnknown
		an.Reason = "target index reads the target array"
		return an
	}
	refs := arrayRefs(st.RHS, arr, nil)
	for _, r := range refs {
		if refersTo(r.Idx, arr) {
			an.Form, an.Bucket = FormUnknown, BucketUnknown
			an.Reason = "operand index reads the target array (f/g/h must not reference A)"
			return an
		}
	}

	if len(refs) == 0 {
		an.Form, an.Bucket = FormMap, BucketNone
		return an
	}

	// Pure two-operand product/sum: X[e1] op X[e2].
	if b, ok := st.RHS.(*Bin); ok && (b.Op == '+' || b.Op == '*') {
		le, lok := b.L.(*Index)
		re, rok := b.R.(*Index)
		if lok && rok && le.Array == arr && re.Array == arr {
			an.Op = b.Op
			switch {
			case equalExpr(re.Idx, g):
				an.Form = FormOrdinaryIR
				an.F = le.Idx
			case equalExpr(le.Idx, g):
				an.Form = FormOrdinaryIR
				an.F = re.Idx
			default:
				an.Form = FormGIR
				an.F, an.H = le.Idx, re.Idx
			}
			an.Bucket = bucketOf(l, an)
			return an
		}
	}

	// Full Möbius: a ratio whose numerator and denominator are affine in
	// the same single X-reference.
	if b, ok := st.RHS.(*Bin); ok && b.Op == '/' && refersTo(b.R, arr) {
		nt, nc, nok := decomposeLinear(b.L, arr)
		dt, dc, dok := decomposeLinear(b.R, arr)
		if nok && dok && len(nt) <= 1 && len(dt) == 1 &&
			(len(nt) == 0 || equalExpr(nt[0].ref.Idx, dt[0].ref.Idx)) {
			an.Form = FormMoebius
			an.F = dt[0].ref.Idx
			if len(nt) == 1 {
				an.A = nt[0].coef
			} else {
				an.A = &Num{Val: 0}
			}
			an.B, an.C, an.D = nc, dt[0].coef, dc
			an.Bucket = bucketOf(l, an)
			return an
		}
		an.Form, an.Bucket = FormUnknown, BucketUnknown
		an.Reason = "non-affine ratio in target array"
		return an
	}

	// Affine forms.
	terms, c, ok := decomposeLinear(st.RHS, arr)
	if !ok {
		an.Form, an.Bucket = FormUnknown, BucketUnknown
		an.Reason = "RHS is not affine in the target array"
		return an
	}
	var self, other *linTerm
	for i := range terms {
		t := &terms[i]
		switch {
		case equalExpr(t.ref.Idx, g) && self == nil:
			self = t
		case other == nil:
			other = t
		default:
			an.Form, an.Bucket = FormUnknown, BucketUnknown
			an.Reason = "more than two recurring operands"
			return an
		}
	}
	switch {
	case self == nil && other != nil:
		an.Form = FormLinear
		an.F, an.A, an.B = other.ref.Idx, other.coef, c
	case self != nil && other == nil:
		// X[g] := c_g·X[g] + b — a degenerate extended form with no f
		// operand; treat f = g (the self cell) with A = 0.
		an.Form = FormLinearExtended
		an.F, an.A, an.B, an.SelfCoef = g, &Num{Val: 0}, c, self.coef
		an.SelfOnly = true
	case self != nil && other != nil:
		an.Form = FormLinearExtended
		an.F, an.A, an.B, an.SelfCoef = other.ref.Idx, other.coef, c, self.coef
	default:
		an.Form, an.Bucket = FormUnknown, BucketUnknown
		an.Reason = "internal: no recurring operands after decomposition"
		return an
	}
	an.Bucket = bucketOf(l, an)
	return an
}

// linTerm is one coef·X[ref] term of an affine decomposition.
type linTerm struct {
	coef Expr
	ref  *Index
}

// decomposeLinear writes e as Σ coefᵢ·X[idxᵢ] + c with every coef and c
// free of references to arr. Terms with structurally equal indices are
// merged. ok is false when e is not affine in arr (e.g. X·X or X in a
// denominator).
func decomposeLinear(e Expr, arr string) ([]linTerm, Expr, bool) {
	switch x := e.(type) {
	case *Num, *Var:
		return nil, e, true
	case *Index:
		if x.Array == arr {
			return []linTerm{{coef: &Num{Val: 1}, ref: x}}, &Num{Val: 0}, true
		}
		return nil, e, true
	case *Neg:
		ts, c, ok := decomposeLinear(x.E, arr)
		if !ok {
			return nil, nil, false
		}
		return scaleTerms(ts, &Num{Val: -1}), &Neg{E: c}, true
	case *Bin:
		switch x.Op {
		case '+', '-':
			lt, lc, lok := decomposeLinear(x.L, arr)
			rt, rc, rok := decomposeLinear(x.R, arr)
			if !lok || !rok {
				return nil, nil, false
			}
			if x.Op == '-' {
				rt = scaleTerms(rt, &Num{Val: -1})
				rc = &Neg{E: rc}
			}
			return mergeTerms(append(lt, rt...)), simplifyAdd(lc, rc), true
		case '*':
			lHas, rHas := refersTo(x.L, arr), refersTo(x.R, arr)
			switch {
			case lHas && rHas:
				return nil, nil, false // quadratic
			case lHas:
				ts, c, ok := decomposeLinear(x.L, arr)
				if !ok {
					return nil, nil, false
				}
				return scaleTerms(ts, x.R), simplifyMul(c, x.R), true
			case rHas:
				ts, c, ok := decomposeLinear(x.R, arr)
				if !ok {
					return nil, nil, false
				}
				return scaleTerms(ts, x.L), simplifyMul(c, x.L), true
			default:
				return nil, e, true
			}
		case '/':
			if refersTo(x.R, arr) {
				return nil, nil, false // X in denominator: not affine
			}
			if !refersTo(x.L, arr) {
				return nil, e, true
			}
			ts, c, ok := decomposeLinear(x.L, arr)
			if !ok {
				return nil, nil, false
			}
			inv := &Bin{Op: '/', L: &Num{Val: 1}, R: x.R}
			return scaleTerms(ts, inv), simplifyMul(c, inv), true
		}
	}
	return nil, nil, false
}

func scaleTerms(ts []linTerm, by Expr) []linTerm {
	out := make([]linTerm, len(ts))
	for i, t := range ts {
		out[i] = linTerm{coef: simplifyMul(t.coef, by), ref: t.ref}
	}
	return out
}

func mergeTerms(ts []linTerm) []linTerm {
	var out []linTerm
	for _, t := range ts {
		merged := false
		for i := range out {
			if equalExpr(out[i].ref.Idx, t.ref.Idx) {
				out[i].coef = simplifyAdd(out[i].coef, t.coef)
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, t)
		}
	}
	return out
}

// simplifyAdd/simplifyMul build sums/products, folding literal identities
// so classifier output (and error messages) stay readable.
func simplifyAdd(a, b Expr) Expr {
	if n, ok := a.(*Num); ok && n.Val == 0 {
		return b
	}
	if n, ok := b.(*Num); ok && n.Val == 0 {
		return a
	}
	if x, ok := a.(*Num); ok {
		if y, ok := b.(*Num); ok {
			return &Num{Val: x.Val + y.Val}
		}
	}
	return &Bin{Op: '+', L: a, R: b}
}

func simplifyMul(a, b Expr) Expr {
	if n, ok := a.(*Num); ok {
		if n.Val == 1 {
			return b
		}
		if n.Val == 0 {
			return &Num{Val: 0}
		}
	}
	if n, ok := b.(*Num); ok {
		if n.Val == 1 {
			return a
		}
		if n.Val == 0 {
			return &Num{Val: 0}
		}
	}
	if x, ok := a.(*Num); ok {
		if y, ok := b.(*Num); ok {
			return &Num{Val: x.Val * y.Val}
		}
	}
	return &Bin{Op: '*', L: a, R: b}
}

// bucketOf maps a classified form to the paper's three-way bucket: index
// maps that are all plain shifts of the loop variable (with g = i) make an
// ordinary ("linear") recurrence; anything else indexed.
func bucketOf(l *Loop, an *Analysis) Bucket {
	if an.Form == FormMap {
		return BucketNone
	}
	if an.SelfOnly {
		if _, ok := shiftOf(an.G, l.Var); ok {
			return BucketNone // distinct self-updates: a map in disguise
		}
		return BucketIndexed // scatter-accumulate through indirection
	}
	idxs := []Expr{an.G, an.F}
	if an.H != nil {
		idxs = append(idxs, an.H)
	}
	// When every index map is a constant shift of the loop variable the
	// loop is an ordinary (non-indexed) recurrence — g(i) = i + c merely
	// renumbers the cells.
	for _, e := range idxs {
		if _, ok := shiftOf(e, l.Var); !ok {
			return BucketIndexed
		}
	}
	return BucketLinear
}

// shiftOf recognizes i, i+c, i-c, c+i and returns the shift c.
func shiftOf(e Expr, loopVar string) (int, bool) {
	switch x := e.(type) {
	case *Var:
		if x.Name == loopVar {
			return 0, true
		}
	case *Bin:
		if x.Op == '+' || x.Op == '-' {
			v, vok := x.L.(*Var)
			n, nok := x.R.(*Num)
			if vok && nok && v.Name == loopVar && n.Val == float64(int(n.Val)) {
				if x.Op == '-' {
					return -int(n.Val), true
				}
				return int(n.Val), true
			}
			if x.Op == '+' {
				n2, n2ok := x.L.(*Num)
				v2, v2ok := x.R.(*Var)
				if n2ok && v2ok && v2.Name == loopVar && n2.Val == float64(int(n2.Val)) {
					return int(n2.Val), true
				}
			}
		}
	}
	return 0, false
}

// Describe renders a one-line human summary of the analysis.
func (an *Analysis) Describe() string {
	if an.Nest && an.Inner != nil {
		return "loop nest, inner: " + an.Inner.Describe()
	}
	switch an.Form {
	case FormMap:
		return fmt.Sprintf("map over %s (no recurrence)", an.Array)
	case FormOrdinaryIR:
		return fmt.Sprintf("ordinary IR: %s[%s] := %s[%s] %c %s[%s]",
			an.Array, an.G, an.Array, an.F, an.Op, an.Array, an.G)
	case FormGIR:
		return fmt.Sprintf("general IR: %s[%s] := %s[%s] %c %s[%s]",
			an.Array, an.G, an.Array, an.F, an.Op, an.Array, an.H)
	case FormLinear:
		return fmt.Sprintf("linear IR: %s[%s] := (%s)*%s[%s] + (%s)",
			an.Array, an.G, an.A, an.Array, an.F, an.B)
	case FormLinearExtended:
		return fmt.Sprintf("extended linear IR: %s[%s] := (%s)*%s[%s] + (%s)*%s[%s] + (%s)",
			an.Array, an.G, an.SelfCoef, an.Array, an.G, an.A, an.Array, an.F, an.B)
	case FormMoebius:
		return fmt.Sprintf("moebius IR: %s[%s] := ((%s)*%s[%s]+(%s))/((%s)*%s[%s]+(%s))",
			an.Array, an.G, an.A, an.Array, an.F, an.B, an.C, an.Array, an.F, an.D)
	default:
		return "unknown: " + an.Reason
	}
}
