package lang

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokAssign // :=
	tokEqual  // =
	tokLBrack // [
	tokRBrack // ]
	tokLParen // (
	tokRParen // )
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokSemi
	tokComma
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int // byte offset, for error messages
	line int
}

// ErrSyntax wraps all lexer/parser diagnostics.
var ErrSyntax = errors.New("lang: syntax error")

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src; comments run from "//" or ";" to end of line.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1}
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			lx.skipLine()
		case c == ';':
			// A ';' is both statement separator and comment-free in this
			// grammar; treat as separator token.
			lx.emit(tokSemi, ";")
			lx.pos++
		case c == ':':
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
				lx.emit(tokAssign, ":=")
				lx.pos += 2
			} else {
				return nil, fmt.Errorf("%w: line %d: lone ':'", ErrSyntax, lx.line)
			}
		case c == '=':
			lx.emit(tokEqual, "=")
			lx.pos++
		case c == '[':
			lx.emit(tokLBrack, "[")
			lx.pos++
		case c == ']':
			lx.emit(tokRBrack, "]")
			lx.pos++
		case c == '(':
			lx.emit(tokLParen, "(")
			lx.pos++
		case c == ')':
			lx.emit(tokRParen, ")")
			lx.pos++
		case c == '+':
			lx.emit(tokPlus, "+")
			lx.pos++
		case c == '-':
			lx.emit(tokMinus, "-")
			lx.pos++
		case c == '*':
			lx.emit(tokStar, "*")
			lx.pos++
		case c == '/':
			lx.emit(tokSlash, "/")
			lx.pos++
		case c == ',':
			lx.emit(tokComma, ",")
			lx.pos++
		case unicode.IsDigit(rune(c)) || c == '.':
			if err := lx.number(); err != nil {
				return nil, err
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			lx.ident()
		default:
			return nil, fmt.Errorf("%w: line %d: unexpected character %q", ErrSyntax, lx.line, c)
		}
	}
	lx.emit(tokEOF, "")
	return lx.toks, nil
}

func (lx *lexer) emit(k tokKind, text string) {
	lx.toks = append(lx.toks, token{kind: k, text: text, pos: lx.pos, line: lx.line})
}

func (lx *lexer) skipLine() {
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
		lx.pos++
	}
}

func (lx *lexer) number() error {
	start := lx.pos
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if unicode.IsDigit(rune(c)) || c == '.' {
			lx.pos++
			continue
		}
		// Fortran-style double literal "0.75d0" as in the paper's loop 23:
		// accept [dDeE][+-]?digits as exponent.
		if c == 'd' || c == 'D' || c == 'e' || c == 'E' {
			j := lx.pos + 1
			if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
				j++
			}
			if j < len(lx.src) && unicode.IsDigit(rune(lx.src[j])) {
				lx.pos = j
				for lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos])) {
					lx.pos++
				}
			}
		}
		break
	}
	text := lx.src[start:lx.pos]
	norm := strings.Map(func(r rune) rune {
		if r == 'd' || r == 'D' {
			return 'e'
		}
		return r
	}, text)
	v, err := strconv.ParseFloat(norm, 64)
	if err != nil {
		return fmt.Errorf("%w: line %d: bad number %q", ErrSyntax, lx.line, text)
	}
	lx.toks = append(lx.toks, token{kind: tokNumber, text: text, num: v, pos: start, line: lx.line})
	return nil
}

func (lx *lexer) ident() {
	start := lx.pos
	for lx.pos < len(lx.src) {
		c := rune(lx.src[lx.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			lx.pos++
		} else {
			break
		}
	}
	lx.toks = append(lx.toks, token{kind: tokIdent, text: lx.src[start:lx.pos], pos: start, line: lx.line})
}
