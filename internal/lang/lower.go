package lang

import (
	"context"
	"errors"
	"fmt"

	"indexedrec/internal/core"
	"indexedrec/internal/gir"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
)

// ErrLower wraps lowering/execution failures.
var ErrLower = errors.New("lang: lowering error")

// Compiled is a classified loop bound to an executable parallel strategy.
type Compiled struct {
	Loop     *Loop
	Analysis *Analysis
}

// Compile parses nothing further — it packages the loop with its analysis.
func Compile(l *Loop) *Compiled {
	return &Compiled{Loop: l, Analysis: Analyze(l)}
}

// Strategy names the execution path Execute will take.
func (c *Compiled) Strategy() string {
	if c.Analysis.Nest {
		inner := Compile(c.Loop.InnerLoop())
		return "sequential outer loop × (" + inner.Strategy() + ")"
	}
	switch c.Analysis.Form {
	case FormMap:
		return "parallel map"
	case FormOrdinaryIR:
		return "OrdinaryIR pointer jumping"
	case FormGIR:
		return "GIR dependence graph + CAP"
	case FormLinearExtended:
		if c.Analysis.SelfOnly && isOne(c.Analysis.SelfCoef) {
			return "GIR scatter-add (dependence graph + CAP)"
		}
		return "Moebius matrices + OrdinaryIR"
	case FormLinear, FormMoebius:
		return "Moebius matrices + OrdinaryIR"
	default:
		return "sequential fallback"
	}
}

// iterRange evaluates the loop bounds.
func iterRange(l *Loop, env *Env) (lo, hi int, err error) {
	lo, err = EvalIndex(l.Lo, env)
	if err != nil {
		return
	}
	hi, err = EvalIndex(l.Hi, env)
	return
}

// tabulate evaluates expression e for every loop index, with the loop
// variable bound in env, returning integer index values.
func tabulate(l *Loop, env *Env, e Expr, lo, hi int) ([]int, error) {
	out := make([]int, 0, hi-lo+1)
	saved, had := env.Scalars[l.Var]
	defer restoreVar(env, l.Var, saved, had)
	for i := lo; i <= hi; i++ {
		env.Scalars[l.Var] = float64(i)
		v, err := EvalIndex(e, env)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// tabulateF is tabulate for float-valued coefficient expressions.
func tabulateF(l *Loop, env *Env, e Expr, lo, hi int) ([]float64, error) {
	out := make([]float64, 0, hi-lo+1)
	saved, had := env.Scalars[l.Var]
	defer restoreVar(env, l.Var, saved, had)
	for i := lo; i <= hi; i++ {
		env.Scalars[l.Var] = float64(i)
		v, err := Eval(e, env)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func restoreVar(env *Env, name string, saved float64, had bool) {
	if had {
		env.Scalars[name] = saved
	} else {
		delete(env.Scalars, name)
	}
}

// LowerIR tabulates an ordinary/general IR loop into a core.System over the
// target array.
func LowerIR(c *Compiled, env *Env) (*core.System, error) {
	an := c.Analysis
	if an.Form != FormOrdinaryIR && an.Form != FormGIR {
		return nil, fmt.Errorf("%w: LowerIR on %v form", ErrLower, an.Form)
	}
	arr, ok := env.Arrays[an.Array]
	if !ok {
		return nil, fmt.Errorf("%w: unbound array %q", ErrLower, an.Array)
	}
	lo, hi, err := iterRange(c.Loop, env)
	if err != nil {
		return nil, err
	}
	if hi < lo {
		return &core.System{M: len(arr), N: 0, G: []int{}, F: []int{}}, nil
	}
	g, err := tabulate(c.Loop, env, an.G, lo, hi)
	if err != nil {
		return nil, err
	}
	f, err := tabulate(c.Loop, env, an.F, lo, hi)
	if err != nil {
		return nil, err
	}
	sys := &core.System{M: len(arr), N: len(g), G: g, F: f}
	if an.Form == FormGIR {
		if sys.H, err = tabulate(c.Loop, env, an.H, lo, hi); err != nil {
			return nil, err
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLower, err)
	}
	return sys, nil
}

// LowerLinear tabulates a linear/extended/Möbius loop into a
// moebius.MoebiusSystem. Extended forms are rewritten per the paper:
// X[g] := c·X[g] + a·X[f] + b becomes a·X[f] + (c·S[g] + b) because the g
// are distinct, so the self-reference reads the initial value.
func LowerLinear(c *Compiled, env *Env) (*moebius.MoebiusSystem, error) {
	an := c.Analysis
	arr, ok := env.Arrays[an.Array]
	if !ok {
		return nil, fmt.Errorf("%w: unbound array %q", ErrLower, an.Array)
	}
	lo, hi, err := iterRange(c.Loop, env)
	if err != nil {
		return nil, err
	}
	if hi < lo {
		return moebius.NewLinear(len(arr), []int{}, []int{}, []float64{}, []float64{}), nil
	}
	g, err := tabulate(c.Loop, env, an.G, lo, hi)
	if err != nil {
		return nil, err
	}
	f, err := tabulate(c.Loop, env, an.F, lo, hi)
	if err != nil {
		return nil, err
	}
	a, err := tabulateF(c.Loop, env, an.A, lo, hi)
	if err != nil {
		return nil, err
	}
	b, err := tabulateF(c.Loop, env, an.B, lo, hi)
	if err != nil {
		return nil, err
	}
	switch an.Form {
	case FormLinear:
		return moebius.NewLinear(len(arr), g, f, a, b), nil
	case FormLinearExtended:
		sc, err := tabulateF(c.Loop, env, an.SelfCoef, lo, hi)
		if err != nil {
			return nil, err
		}
		b2 := make([]float64, len(b))
		for i := range b {
			if g[i] < 0 || g[i] >= len(arr) {
				return nil, fmt.Errorf("%w: g index %d out of range", ErrLower, g[i])
			}
			b2[i] = sc[i]*arr[g[i]] + b[i]
		}
		return moebius.NewLinear(len(arr), g, f, a, b2), nil
	case FormMoebius:
		cc, err := tabulateF(c.Loop, env, an.C, lo, hi)
		if err != nil {
			return nil, err
		}
		d, err := tabulateF(c.Loop, env, an.D, lo, hi)
		if err != nil {
			return nil, err
		}
		return &moebius.MoebiusSystem{M: len(arr), G: g, F: f, A: a, B: b, C: cc, D: d}, nil
	default:
		return nil, fmt.Errorf("%w: LowerLinear on %v form", ErrLower, an.Form)
	}
}

// Execute runs the loop against env using the parallel strategy selected by
// the analysis, mutating env.Arrays[target] exactly as sequential Run would
// (up to float rounding from regrouping). FormUnknown falls back to the
// sequential interpreter. procs <= 0 means GOMAXPROCS.
func (c *Compiled) Execute(env *Env, procs int) error {
	return c.ExecuteCtx(context.Background(), env, procs)
}

// ExecuteCtx is Execute through the hardened solver APIs: cancellation of
// ctx stops the solve between rounds (and between outer iterations of a
// nest) with ctx.Err(), and solver-side panics surface as errors. A Möbius
// chain whose composed map divides by zero falls back to the sequential
// interpreter, preserving Execute's IEEE semantics.
func (c *Compiled) ExecuteCtx(ctx context.Context, env *Env, procs int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	an := c.Analysis
	// Multi-statement bodies reach here only when the analysis proved the
	// statements independent (disjoint targets, no cross-references), so
	// each executes as its own single-statement loop with its own strategy.
	// A single pass through executeMap handles the all-map case directly.
	if asgs := c.Loop.Assigns(); len(asgs) > 1 && an.Form != FormMap && an.Form != FormUnknown {
		for _, st := range asgs {
			sub := &Loop{Var: c.Loop.Var, Lo: c.Loop.Lo, Hi: c.Loop.Hi, Body: []Stmt{st}}
			if err := Compile(sub).ExecuteCtx(ctx, env, procs); err != nil {
				return err
			}
		}
		return nil
	}
	if an.Nest {
		// Loop nest: drive the outer loop sequentially, parallelizing the
		// inner loop for each outer index (the paper's loop-23 shape,
		// where the j loop iterates the parallel i-loop over columns).
		inner := Compile(c.Loop.InnerLoop())
		lo, hi, err := iterRange(c.Loop, env)
		if err != nil {
			return err
		}
		saved, had := env.Scalars[c.Loop.Var]
		defer restoreVar(env, c.Loop.Var, saved, had)
		for i := lo; i <= hi; i++ {
			env.Scalars[c.Loop.Var] = float64(i)
			if err := inner.ExecuteCtx(ctx, env, procs); err != nil {
				return err
			}
		}
		return nil
	}
	switch an.Form {
	case FormMap:
		return c.executeMap(env)
	case FormOrdinaryIR:
		sys, err := LowerIR(c, env)
		if err != nil {
			return err
		}
		var op core.CommutativeMonoid[float64]
		if an.Op == '+' {
			op = core.Float64Add{}
		} else {
			op = core.Float64Mul{}
		}
		res, err := ordinary.SolveCtx[float64](ctx, sys, op, env.Arrays[an.Array], ordinary.Options{Procs: procs})
		if errors.Is(err, ordinary.ErrGNotDistinct) {
			// Repeated writes to one cell: outside §2's precondition, but
			// + and * are commutative, so the general solver applies
			// (H = G implicitly).
			gres, gerr := gir.SolveCtx[float64](ctx, sys, op, env.Arrays[an.Array], gir.Options{Procs: procs})
			if gerr != nil {
				return gerr
			}
			copy(env.Arrays[an.Array], gres.Values)
			return nil
		}
		if err != nil {
			return err
		}
		copy(env.Arrays[an.Array], res.Values)
		return nil
	case FormGIR:
		sys, err := LowerIR(c, env)
		if err != nil {
			return err
		}
		var op core.CommutativeMonoid[float64]
		if an.Op == '+' {
			op = core.Float64Add{}
		} else {
			op = core.Float64Mul{}
		}
		res, err := gir.SolveCtx[float64](ctx, sys, op, env.Arrays[an.Array], gir.Options{Procs: procs})
		if err != nil {
			return err
		}
		copy(env.Arrays[an.Array], res.Values)
		return nil
	case FormLinear, FormLinearExtended, FormMoebius:
		// Pure accumulations X[g] := X[g] + expr with repeated targets
		// (scatter-add: the PIC kernels) are general IR over + with an
		// auxiliary operand cell per iteration.
		if an.Form == FormLinearExtended && an.SelfOnly && isOne(an.SelfCoef) {
			return c.executeScatterAdd(ctx, env, procs)
		}
		ms, err := LowerLinear(c, env)
		if err != nil {
			return err
		}
		out, err := ms.SolveCtx(ctx, env.Arrays[an.Array], ordinary.Options{Procs: procs})
		if errors.Is(err, moebius.ErrBadSystem) || errors.Is(err, moebius.ErrNonFinite) {
			// Non-distinct g outside the scatter-add shape (no parallel
			// strategy in the framework), or a chain that divides by zero
			// (the guarded API rejects non-finite values, the sequential
			// loop defines them): run the loop as written.
			return Run(c.Loop, env)
		}
		if err != nil {
			return err
		}
		copy(env.Arrays[an.Array], out)
		return nil
	default:
		return Run(c.Loop, env)
	}
}

// executeMap evaluates every iteration's RHS against the loop-entry state,
// then commits the writes in iteration order (last write wins, matching the
// sequential loop for non-distinct g). The evaluations are independent, so
// a real machine would run them fully in parallel.
func (c *Compiled) executeMap(env *Env) error {
	lo, hi, err := iterRange(c.Loop, env)
	if err != nil {
		return err
	}
	if hi < lo {
		return nil
	}
	st := c.Loop.Assigns()
	if st == nil {
		return fmt.Errorf("%w: map execution on a body with nested loops", ErrLower)
	}
	type write struct {
		arr string
		idx int
		val float64
	}
	var writes []write
	saved, had := env.Scalars[c.Loop.Var]
	for i := lo; i <= hi; i++ {
		env.Scalars[c.Loop.Var] = float64(i)
		for _, s := range st {
			gi, err := EvalIndex(s.Target.Idx, env)
			if err != nil {
				restoreVar(env, c.Loop.Var, saved, had)
				return err
			}
			v, err := Eval(s.RHS, env)
			if err != nil {
				restoreVar(env, c.Loop.Var, saved, had)
				return err
			}
			writes = append(writes, write{s.Target.Array, gi, v})
		}
	}
	restoreVar(env, c.Loop.Var, saved, had)
	for _, w := range writes {
		arr := env.Arrays[w.arr]
		if w.idx < 0 || w.idx >= len(arr) {
			return fmt.Errorf("%w: %s[%d] out of range", ErrLower, w.arr, w.idx)
		}
		arr[w.idx] = w.val
	}
	return nil
}

// isOne reports whether e is the literal 1.
func isOne(e Expr) bool {
	n, ok := e.(*Num)
	return ok && n.Val == 1
}

// executeScatterAdd parallelizes X[g(i)] := X[g(i)] + b(i) — the
// scatter-accumulate of the particle-in-cell kernels, where g repeats — as
// a general IR system over +: the X cells are augmented with one auxiliary
// cell per iteration holding b(i), and iteration i computes
// X[g(i)] := X[aux_i] + X[g(i)], which package gir solves for non-distinct
// g via the versioned dependence graph.
func (c *Compiled) executeScatterAdd(ctx context.Context, env *Env, procs int) error {
	an := c.Analysis
	arr, ok := env.Arrays[an.Array]
	if !ok {
		return fmt.Errorf("%w: unbound array %q", ErrLower, an.Array)
	}
	lo, hi, err := iterRange(c.Loop, env)
	if err != nil {
		return err
	}
	if hi < lo {
		return nil
	}
	g, err := tabulate(c.Loop, env, an.G, lo, hi)
	if err != nil {
		return err
	}
	b, err := tabulateF(c.Loop, env, an.B, lo, hi)
	if err != nil {
		return err
	}
	m, n := len(arr), len(g)
	init := make([]float64, m+n)
	copy(init, arr)
	sys := &core.System{M: m + n, N: n, G: g, F: make([]int, n), H: make([]int, n)}
	for i := 0; i < n; i++ {
		if g[i] < 0 || g[i] >= m {
			return fmt.Errorf("%w: target index %d out of range", ErrLower, g[i])
		}
		init[m+i] = b[i]
		sys.F[i] = m + i
		sys.H[i] = g[i]
	}
	// Engine choice: an accumulation chain into one bucket is deep and
	// sink-heavy, where the squaring engine's interior edges grow
	// quadratically; the level-synchronized wavefront engine handles that
	// shape with linear label work.
	res, err := gir.SolveCtx[float64](ctx, sys, core.Float64Add{}, init,
		gir.Options{Procs: procs, Engine: gir.EngineWavefront})
	if err != nil {
		return err
	}
	copy(arr, res.Values[:m])
	return nil
}
