// Package lang is a small front-end for the sequential loops the paper
// parallelizes: a lexer, parser, recurrence classifier and lowering pass for
// a Pascal-like loop language
//
//	for i = 1 to n do
//	begin
//	    X[g-expr] := rhs-expr;
//	end
//
// where expressions range over numbers, scalar variables, array references
// (including indirection through other arrays) and + - * / with parentheses.
//
// The classifier recognizes the recurrence forms the paper's algorithms
// cover — no recurrence (a pure map), ordinary IR, general IR, and the
// affine/Möbius linear forms — WITHOUT classical data-dependence analysis,
// exactly the use case motivating the paper ("without using any data
// dependence analysis techniques, we managed to parallelize the loop").
// The lowering pass tabulates index maps and coefficients into the solver
// inputs of packages core and moebius.
package lang

import (
	"fmt"
	"strings"
)

// Expr is an expression tree node.
type Expr interface {
	String() string
}

// Num is a numeric literal.
type Num struct{ Val float64 }

// Var is a scalar variable reference (including the loop variable).
type Var struct{ Name string }

// Index is an array element reference Array[Idx].
type Index struct {
	Array string
	Idx   Expr
}

// Bin is a binary operation; Op is one of '+', '-', '*', '/'.
type Bin struct {
	Op   byte
	L, R Expr
}

// Neg is unary minus.
type Neg struct{ E Expr }

// String renders the literal, preferring integer formatting.
func (n *Num) String() string {
	if n.Val == float64(int64(n.Val)) {
		return fmt.Sprintf("%d", int64(n.Val))
	}
	return fmt.Sprintf("%g", n.Val)
}

// String returns the variable name.
func (v *Var) String() string { return v.Name }

// String renders the subscripted array reference.
func (x *Index) String() string { return fmt.Sprintf("%s[%s]", x.Array, x.Idx) }

// String renders the operation fully parenthesized.
func (b *Bin) String() string { return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R) }

// String renders the negation fully parenthesized.
func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.E) }

// Stmt is a loop-body statement: an assignment or a nested loop.
type Stmt interface {
	String() string
	stmtNode()
}

// Assign is one statement LHS := RHS where LHS is an array element.
type Assign struct {
	Target *Index
	RHS    Expr
}

// String renders the assignment in DSL syntax.
func (a *Assign) String() string { return fmt.Sprintf("%s := %s", a.Target, a.RHS) }
func (*Assign) stmtNode()        {}

// Loop is a (possibly nested) counted loop.
type Loop struct {
	// Var is the loop variable name.
	Var string
	// Lo and Hi are the inclusive bounds expressions.
	Lo, Hi Expr
	// Body is the statement list (assignments and/or nested loops).
	Body []Stmt
}

// String renders the loop back into DSL syntax.
func (l *Loop) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "for %s = %s to %s do begin ", l.Var, l.Lo, l.Hi)
	for _, st := range l.Body {
		fmt.Fprintf(&sb, "%s; ", st)
	}
	sb.WriteString("end")
	return sb.String()
}

func (*Loop) stmtNode() {}

// Assigns returns the body as assignments when it contains no nested loops,
// or nil otherwise — the shape the single-level classifier works on.
func (l *Loop) Assigns() []*Assign {
	out := make([]*Assign, 0, len(l.Body))
	for _, st := range l.Body {
		a, ok := st.(*Assign)
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}

// InnerLoop returns the nested loop when the body is exactly one loop —
// the loop-nest shape (e.g. Livermore 23's column loop) — else nil.
func (l *Loop) InnerLoop() *Loop {
	if len(l.Body) == 1 {
		if inner, ok := l.Body[0].(*Loop); ok {
			return inner
		}
	}
	return nil
}

// equalExpr reports structural equality of two expressions (used to match
// the self-reference X[g(i)] on the RHS against the target index).
func equalExpr(a, b Expr) bool {
	switch x := a.(type) {
	case *Num:
		y, ok := b.(*Num)
		return ok && x.Val == y.Val
	case *Var:
		y, ok := b.(*Var)
		return ok && x.Name == y.Name
	case *Index:
		y, ok := b.(*Index)
		return ok && x.Array == y.Array && equalExpr(x.Idx, y.Idx)
	case *Bin:
		y, ok := b.(*Bin)
		return ok && x.Op == y.Op && equalExpr(x.L, y.L) && equalExpr(x.R, y.R)
	case *Neg:
		y, ok := b.(*Neg)
		return ok && equalExpr(x.E, y.E)
	}
	return false
}

// refersTo reports whether e references array name anywhere.
func refersTo(e Expr, name string) bool {
	switch x := e.(type) {
	case *Num, *Var:
		return false
	case *Index:
		return x.Array == name || refersTo(x.Idx, name)
	case *Bin:
		return refersTo(x.L, name) || refersTo(x.R, name)
	case *Neg:
		return refersTo(x.E, name)
	}
	return false
}

// arrayRefs collects every Index node referencing array name in e,
// left-to-right.
func arrayRefs(e Expr, name string, out []*Index) []*Index {
	switch x := e.(type) {
	case *Index:
		if x.Array == name {
			out = append(out, x)
		}
		out = arrayRefs(x.Idx, name, out)
	case *Bin:
		out = arrayRefs(x.L, name, out)
		out = arrayRefs(x.R, name, out)
	case *Neg:
		out = arrayRefs(x.E, name, out)
	}
	return out
}

// TargetArray returns the array written by the loop's first assignment,
// descending through nested loops; "" if the body has no assignment.
func (l *Loop) TargetArray() string {
	for _, st := range l.Body {
		switch s := st.(type) {
		case *Assign:
			return s.Target.Array
		case *Loop:
			if a := s.TargetArray(); a != "" {
				return a
			}
		}
	}
	return ""
}
