package lang

import (
	"math/rand"
	"testing"
)

// randomExpr builds a random expression tree of bounded depth over a small
// vocabulary of scalars and arrays.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return &Num{Val: float64(rng.Intn(20))}
		case 1:
			return &Var{Name: string(rune('a' + rng.Intn(4)))}
		default:
			return &Index{Array: string(rune('A' + rng.Intn(3))), Idx: randomExpr(rng, depth-1)}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return &Neg{E: randomExpr(rng, depth-1)}
	default:
		ops := []byte{'+', '-', '*', '/'}
		return &Bin{
			Op: ops[rng.Intn(len(ops))],
			L:  randomExpr(rng, depth-1),
			R:  randomExpr(rng, depth-1),
		}
	}
}

// TestExprPrintParseRoundTrip: an expression rendered by String() must parse
// back to a structurally identical tree (String fully parenthesizes, so no
// precedence ambiguity can creep in).
func TestExprPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(rng, 4)
		src := e.String()
		back, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("trial %d: ParseExpr(%q): %v", trial, src, err)
		}
		if !equalExpr(e, back) {
			t.Fatalf("trial %d: round trip broke:\n  orig: %s\n  back: %s", trial, e, back)
		}
	}
}

// TestLoopPrintParseRoundTrip does the same for whole loops.
func TestLoopPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 100; trial++ {
		nStmts := 1 + rng.Intn(3)
		l := &Loop{Var: "i", Lo: &Num{Val: 1}, Hi: &Var{Name: "n"}}
		for s := 0; s < nStmts; s++ {
			l.Body = append(l.Body, &Assign{
				Target: &Index{Array: "X", Idx: randomExpr(rng, 2)},
				RHS:    randomExpr(rng, 3),
			})
		}
		src := l.String()
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, src, err)
		}
		if back.Var != l.Var || len(back.Body) != len(l.Body) {
			t.Fatalf("trial %d: shape changed: %s", trial, back)
		}
		for k := range l.Body {
			a := l.Body[k].(*Assign)
			b, ok := back.Body[k].(*Assign)
			if !ok || !equalExpr(a.Target, b.Target) || !equalExpr(a.RHS, b.RHS) {
				t.Fatalf("trial %d stmt %d: %s vs %s", trial, k, l.Body[k], back.Body[k])
			}
		}
	}
}

// TestNestPrintParseRoundTrip covers nested loops through the printer.
func TestNestPrintParseRoundTrip(t *testing.T) {
	src := "for j = 1 to m do for i = 1 to n do X[i+j] := X[i] + 1"
	l := mustParse(t, src)
	back, err := Parse(l.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", l.String(), err)
	}
	if back.InnerLoop() == nil || back.InnerLoop().Var != "i" {
		t.Fatalf("nest lost in round trip: %s", back)
	}
}
