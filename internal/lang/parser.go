package lang

import (
	"fmt"
	"strings"
)

// Parse parses a loop program. The grammar:
//
//	loop   := 'for' IDENT '=' expr 'to' expr 'do' body
//	body   := stmt | 'begin' {stmt} 'end'
//	stmt   := IDENT '[' expr ']' ':=' expr [';']
//	expr   := term  (('+'|'-') term)*
//	term   := unary (('*'|'/') unary)*
//	unary  := '-' unary | atom
//	atom   := NUMBER | IDENT ['[' expr ']'] | '(' expr ')'
//
// Keywords (for, to, do, begin, end) are case-insensitive.
func Parse(src string) (*Loop, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	loop, err := p.loop()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return loop, nil
}

// ParseExpr parses a standalone expression (used by tests and tools).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrSyntax, p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errf("expected %s, found %q", what, t.text)
	}
	return p.next(), nil
}

func (p *parser) loop() (*Loop, error) {
	if !p.keyword("for") {
		return nil, p.errf("expected 'for', found %q", p.peek().text)
	}
	v, err := p.expect(tokIdent, "loop variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEqual, "'='"); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.keyword("to") {
		return nil, p.errf("expected 'to', found %q", p.peek().text)
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.keyword("do") {
		return nil, p.errf("expected 'do', found %q", p.peek().text)
	}
	loop := &Loop{Var: v.text, Lo: lo, Hi: hi}
	if p.keyword("begin") {
		for !p.keyword("end") {
			if p.peek().kind == tokEOF {
				return nil, p.errf("unterminated begin block")
			}
			st, err := p.stmtOrLoop()
			if err != nil {
				return nil, err
			}
			loop.Body = append(loop.Body, st)
		}
	} else {
		st, err := p.stmtOrLoop()
		if err != nil {
			return nil, err
		}
		loop.Body = append(loop.Body, st)
	}
	if len(loop.Body) == 0 {
		return nil, p.errf("empty loop body")
	}
	return loop, nil
}

// stmtOrLoop parses either an assignment or a nested for-loop; a trailing
// semicolon after a nested loop is tolerated (the printer emits one).
func (p *parser) stmtOrLoop() (Stmt, error) {
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "for") {
		l, err := p.loop()
		if err != nil {
			return nil, err
		}
		if p.peek().kind == tokSemi {
			p.next()
		}
		return l, nil
	}
	return p.stmt()
}

func (p *parser) stmt() (*Assign, error) {
	name, err := p.expect(tokIdent, "array name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrack, "'['"); err != nil {
		return nil, err
	}
	idx, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrack, "']'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign, "':='"); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSemi {
		p.next()
	}
	return &Assign{Target: &Index{Array: name.text, Idx: idx}, RHS: rhs}, nil
}

func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokPlus:
			p.next()
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: '+', L: l, R: r}
		case tokMinus:
			p.next()
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: '-', L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) term() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokStar:
			p.next()
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: '*', L: l, R: r}
		case tokSlash:
			p.next()
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: '/', L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.peek().kind == tokMinus {
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Neg{E: e}, nil
	}
	return p.atom()
}

func (p *parser) atom() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return &Num{Val: t.num}, nil
	case tokIdent:
		// Keywords never start an atom.
		low := strings.ToLower(t.text)
		if low == "to" || low == "do" || low == "begin" || low == "end" {
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
		p.next()
		if p.peek().kind == tokLBrack {
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrack, "']'"); err != nil {
				return nil, err
			}
			return &Index{Array: t.text, Idx: idx}, nil
		}
		return &Var{Name: t.text}, nil
	case tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected expression, found %q", t.text)
	}
}
