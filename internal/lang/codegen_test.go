package lang

import (
	goparser "go/parser"
	gotoken "go/token"
	"strings"
	"testing"
)

func emit(t *testing.T, src, fn string) string {
	t.Helper()
	out, err := Compile(mustParse(t, src)).EmitGo(fn)
	if err != nil {
		t.Fatalf("EmitGo(%q): %v", src, err)
	}
	return out
}

func TestEmitGoOrdinaryIR(t *testing.T) {
	out := emit(t, "for i = 1 to n do X[i] := X[i-1] + X[i]", "PrefixSums")
	for _, want := range []string{
		"func PrefixSums(env map[string][]float64",
		"ir.SolveOrdinary[float64]",
		"ir.Float64Add{}",
		`import "indexedrec/ir"`,
		"// strategy:    OrdinaryIR pointer jumping",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("emitted code missing %q:\n%s", want, out)
		}
	}
}

func TestEmitGoGIR(t *testing.T) {
	out := emit(t, "for i = 2 to n do X[i] := X[i-1] * X[i-2]", "Fib")
	if !strings.Contains(out, "ir.SolveGeneral[float64]") ||
		!strings.Contains(out, "ir.Float64Mul{}") {
		t.Fatalf("GIR emission wrong:\n%s", out)
	}
}

func TestEmitGoLinearForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{"for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]", "ir.SolveLinear("},
		{"for i = 1 to n do X[G[i]] := X[G[i]] + A[i]*X[F[i]] + B[i]", "ir.SolveLinear("},
		{"for i = 1 to n do X[i] := (X[i-1] + 1) / (X[i-1] + 2)", "ir.SolveMoebius("},
	}
	for _, tc := range cases {
		out := emit(t, tc.src, "F")
		if !strings.Contains(out, tc.want) {
			t.Fatalf("%q: emission missing %q:\n%s", tc.src, tc.want, out)
		}
	}
}

func TestEmitGoMapAndUnknown(t *testing.T) {
	out := emit(t, "for i = 0 to n do X[i] := Y[i] * 2", "MapIt")
	if !strings.Contains(out, "for i := lo; i <= hi; i++") {
		t.Fatalf("map emission should inline the loop:\n%s", out)
	}
	out2 := emit(t, "for i = 1 to n do X[i] := X[i-1]*X[i-1] + X[i]", "Quad")
	if !strings.Contains(out2, "// strategy:    sequential fallback") {
		t.Fatalf("unknown form should fall back:\n%s", out2)
	}
}

func TestEmitGoNest(t *testing.T) {
	out := emit(t, loop23Nest, "Hydro")
	for _, want := range []string{"func HydroInner(", "func Hydro(", "ir.SolveLinear("} {
		if !strings.Contains(out, want) {
			t.Fatalf("nest emission missing %q:\n%s", want, out)
		}
	}
}

// TestEmitGoAlwaysParses: every classified form must emit syntactically
// valid Go (EmitGo self-checks, but verify independently and over many
// shapes).
func TestEmitGoAlwaysParses(t *testing.T) {
	srcs := []string{
		"for i = 1 to n do X[i] := X[i-1] + X[i]",
		"for i = 1 to n do X[G[i]] := X[F[i]] * X[G[i]]",
		"for i = 2 to n do X[i] := X[i-1] * X[i-2]",
		"for i = 1 to n do X[i] := A[i]*X[i-1] + B[i]",
		"for i = 1 to n do X[G[i]] := (A[i]*X[F[i]]+B[i]) / (C[i]*X[F[i]]+D[i])",
		"for i = 0 to n do X[i] := Y[i+1] - Y[i]",
		"for i = 1 to n do X[i] := X[i-1]*X[i-1] + 0.5",
		loop23Nest,
	}
	fset := gotoken.NewFileSet()
	for k, src := range srcs {
		out := emit(t, src, "F")
		if _, err := goparser.ParseFile(fset, "gen.go", out, 0); err != nil {
			t.Fatalf("case %d: emitted code does not parse: %v\n%s", k, err, out)
		}
	}
}
