package lang

import (
	"math"
	"strings"
	"testing"
)

const loop23Nest = `
for j = 1 to 6 do
    for i = 2 to n do
        X[7*(i-1)+j] := X[7*(i-1)+j] + 0.75d0*(Y[i] + X[7*(i-2)+j]*Z[7*(i-1)+j])
`

func nestEnv(n int) *Env {
	e := NewEnv()
	e.Scalars["n"] = float64(n)
	rows := n + 1
	x := make([]float64, 7*rows+8)
	z := make([]float64, 7*rows+8)
	y := make([]float64, n+1)
	for i := range x {
		x[i] = 0.3 + float64(i%11)/23
		z[i] = 0.2 + float64(i%7)/19
	}
	for i := range y {
		y[i] = float64(i%5) / 7
	}
	e.Arrays["X"], e.Arrays["Y"], e.Arrays["Z"] = x, y, z
	return e
}

func TestParseNestedLoop(t *testing.T) {
	l := mustParse(t, loop23Nest)
	if l.Var != "j" {
		t.Fatalf("outer var = %q", l.Var)
	}
	inner := l.InnerLoop()
	if inner == nil {
		t.Fatal("InnerLoop() = nil")
	}
	if inner.Var != "i" {
		t.Fatalf("inner var = %q", inner.Var)
	}
	if l.Assigns() != nil {
		t.Fatal("Assigns() should be nil for a nest")
	}
	if l.TargetArray() != "X" {
		t.Fatalf("TargetArray = %q", l.TargetArray())
	}
}

func TestAnalyzeNest(t *testing.T) {
	an := Analyze(mustParse(t, loop23Nest))
	if !an.Nest {
		t.Fatal("Nest not detected")
	}
	if an.Form != FormLinearExtended || an.Bucket != BucketIndexed {
		t.Fatalf("form=%v bucket=%v", an.Form, an.Bucket)
	}
	if an.Inner == nil || an.Inner.Array != "X" {
		t.Fatalf("inner analysis: %+v", an.Inner)
	}
}

func TestNestStrategyString(t *testing.T) {
	c := Compile(mustParse(t, loop23Nest))
	s := c.Strategy()
	if !strings.Contains(s, "sequential outer") || !strings.Contains(s, "Moebius") {
		t.Fatalf("strategy = %q", s)
	}
}

func TestExecuteNestMatchesSequential(t *testing.T) {
	l := mustParse(t, loop23Nest)
	const n = 64
	seq := nestEnv(n)
	if err := Run(l, seq); err != nil {
		t.Fatal(err)
	}
	par := nestEnv(n)
	if err := Compile(l).Execute(par, 4); err != nil {
		t.Fatal(err)
	}
	for i, want := range seq.Arrays["X"] {
		got := par.Arrays["X"][i]
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("X[%d]: parallel %v, sequential %v", i, got, want)
		}
	}
}

func TestRunTripleNest(t *testing.T) {
	// Interpreter sanity on a 3-deep nest: accumulate k into T[0] for all
	// (a, b, k) combinations.
	src := `
for a = 1 to 2 do
  for b = 1 to 3 do
    for k = 1 to 4 do
      T[0] := T[0] + k
`
	l := mustParse(t, src)
	env := NewEnv()
	env.Arrays["T"] = []float64{0}
	if err := Run(l, env); err != nil {
		t.Fatal(err)
	}
	// Σk=1..4 k = 10, times 2*3 = 60.
	if env.Arrays["T"][0] != 60 {
		t.Fatalf("T[0] = %v, want 60", env.Arrays["T"][0])
	}
}

func TestAnalyzeMixedBodyUnknown(t *testing.T) {
	src := `
for j = 1 to 2 do
begin
    A[j] := 1;
    for i = 1 to 3 do B[i] := A[j];
end`
	an := Analyze(mustParse(t, src))
	if an.Form != FormUnknown {
		t.Fatalf("mixed body: form = %v, want unknown", an.Form)
	}
	// The fallback path must still execute it correctly.
	l := mustParse(t, src)
	env := NewEnv()
	env.Arrays["A"] = make([]float64, 3)
	env.Arrays["B"] = make([]float64, 4)
	seq := env.Clone()
	if err := Run(l, seq); err != nil {
		t.Fatal(err)
	}
	par := env.Clone()
	if err := Compile(l).Execute(par, 2); err != nil {
		t.Fatal(err)
	}
	for i := range seq.Arrays["B"] {
		if seq.Arrays["B"][i] != par.Arrays["B"][i] {
			t.Fatalf("B mismatch: %v vs %v", par.Arrays["B"], seq.Arrays["B"])
		}
	}
}

func TestDeepNestExecute(t *testing.T) {
	// A nest of nests whose innermost loop is an ordinary IR: the Execute
	// path must recurse through both outer levels.
	src := `
for a = 0 to 1 do
  for b = 0 to 1 do
    for i = 1 to 7 do
      X[8*(2*a+b) + i] := X[8*(2*a+b) + i - 1] + X[8*(2*a+b) + i]
`
	l := mustParse(t, src)
	env := NewEnv()
	x := make([]float64, 32)
	for i := range x {
		x[i] = float64(i + 1)
	}
	env.Arrays["X"] = x
	seq := env.Clone()
	if err := Run(l, seq); err != nil {
		t.Fatal(err)
	}
	par := env.Clone()
	if err := Compile(l).Execute(par, 2); err != nil {
		t.Fatal(err)
	}
	for i := range seq.Arrays["X"] {
		if math.Abs(seq.Arrays["X"][i]-par.Arrays["X"][i]) > 1e-12 {
			t.Fatalf("X[%d]: %v vs %v", i, par.Arrays["X"][i], seq.Arrays["X"][i])
		}
	}
}
