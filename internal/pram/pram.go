// Package pram is a synchronous PRAM cost model: a shared-memory machine
// executing lock-step phases of P processors, counting abstract instructions
// instead of wall-clock time. The paper evaluates its algorithm by counting
// "assembly instructions" on the SimParC simulator; this package is the
// high-level counting machine (package simparc is the instruction-level
// one), and both report
//
//	Time = Σ_phases max_p cost_p     (critical path with P processors)
//	Work = Σ_phases Σ_p   cost_p     (total instructions)
//
// Within a phase, loads observe the memory as it was when the phase started
// and stores are buffered and committed at the phase barrier — textbook
// synchronous CREW/EREW semantics, which is exactly what pointer jumping
// requires. Access conflicts (two stores to one address; for EREW also two
// accesses of any kind) are detected at commit time and reported as errors,
// so algorithm bugs surface instead of silently racing.
package pram

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Word is the machine word.
type Word = int64

// Mode selects the memory access discipline.
type Mode int

const (
	// CREW allows concurrent reads, exclusive writes (the paper's setting:
	// pointer jumping reads shared predecessors concurrently).
	CREW Mode = iota
	// EREW forbids concurrent access of any kind to one address.
	EREW
)

// String returns "CREW" or "EREW".
func (m Mode) String() string {
	if m == EREW {
		return "EREW"
	}
	return "CREW"
}

// Weights are per-instruction-class costs, letting experiments approximate
// a particular target machine. The zero value is invalid; use UnitWeights.
type Weights struct {
	Load, Store, ALU, Branch Word
	// Phase is the per-processor phase entry/exit overhead (fork/barrier),
	// charged once per phase to every participating processor.
	Phase Word
}

// UnitWeights charges one unit for everything and two for phase overhead —
// a generic RISC-ish accounting close to what SimParC counted.
func UnitWeights() Weights {
	return Weights{Load: 1, Store: 1, ALU: 1, Branch: 1, Phase: 2}
}

// Stats accumulates machine activity.
type Stats struct {
	// Time is the simulated critical path: Σ over phases of the maximum
	// per-processor instruction count in that phase.
	Time Word
	// Work is the total instruction count across all processors.
	Work Word
	// Phases is the number of executed phases.
	Phases int
	// MaxProcs is the largest processor count used by any phase.
	MaxProcs int
}

// Machine is a shared-memory PRAM.
type Machine struct {
	// Mem is the shared memory; read/write it directly between phases to
	// stage inputs and extract outputs (host access is free).
	Mem []Word

	mode    Mode
	weights Weights
	stats   Stats
}

// Option configures a Machine.
type Option func(*Machine)

// WithMode sets the access discipline (default CREW).
func WithMode(m Mode) Option { return func(ma *Machine) { ma.mode = m } }

// WithWeights sets the cost table (default UnitWeights).
func WithWeights(w Weights) Option { return func(ma *Machine) { ma.weights = w } }

// New returns a machine with the given number of memory words.
func New(words int, opts ...Option) *Machine {
	m := &Machine{Mem: make([]Word, words), weights: UnitWeights()}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Stats returns the accumulated counters.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the counters, keeping memory.
func (m *Machine) ResetStats() { m.stats = Stats{} }

// ErrConflict reports a memory access conflict detected at a phase barrier.
var ErrConflict = errors.New("pram: memory access conflict")

// Proc is a processor's view of the machine during one phase. Its methods
// are the only way a kernel touches memory, so instruction accounting is
// complete by construction.
type Proc struct {
	// ID is the processor index, 0..P-1.
	ID int

	m      *Machine
	cost   Word
	direct bool // immediate stores (single-processor unbuffered mode)
	writes map[int]Word
	reads  map[int]struct{} // tracked only under EREW
}

// Load reads Mem[addr] as of the phase start (buffered writes by this or
// any other processor are NOT visible — synchronous PRAM semantics).
func (p *Proc) Load(addr int) Word {
	p.cost += p.m.weights.Load
	if p.reads != nil {
		p.reads[addr] = struct{}{}
	}
	return p.m.Mem[addr]
}

// Store buffers a write of w to Mem[addr]; it commits at the phase barrier.
// A later Load in the same phase still sees the old value.
func (p *Proc) Store(addr int, w Word) {
	p.cost += p.m.weights.Store
	if p.direct {
		p.m.Mem[addr] = w
		return
	}
	p.writes[addr] = w
}

// ALU charges n arithmetic/logic instructions.
func (p *Proc) ALU(n int) { p.cost += Word(n) * p.m.weights.ALU }

// Branch charges one branch instruction (loop back-edges, conditionals).
func (p *Proc) Branch() { p.cost += p.m.weights.Branch }

// Cost returns the instructions charged so far in this phase.
func (p *Proc) Cost() Word { return p.cost }

// Phase runs body on P processors in lock-step: all reads see the phase's
// initial memory; all writes commit together at the end. The body runs
// concurrently on real goroutines (each Proc is goroutine-local), then the
// machine merges write buffers, detecting conflicts per the access mode.
func (m *Machine) Phase(procs int, body func(p *Proc)) error {
	if procs < 1 {
		return fmt.Errorf("pram: Phase needs procs >= 1, got %d", procs)
	}
	ps := make([]*Proc, procs)
	var wg sync.WaitGroup
	wg.Add(procs)
	for id := 0; id < procs; id++ {
		p := &Proc{ID: id, m: m, writes: make(map[int]Word)}
		if m.mode == EREW {
			p.reads = make(map[int]struct{})
		}
		ps[id] = p
		go func() {
			defer wg.Done()
			body(p)
		}()
	}
	wg.Wait()

	// Commit + conflict detection.
	writer := make(map[int]int) // addr -> proc id
	for _, p := range ps {
		for addr, w := range p.writes {
			if prev, clash := writer[addr]; clash {
				return fmt.Errorf("%w: procs %d and %d both store to %d",
					ErrConflict, prev, p.ID, addr)
			}
			writer[addr] = p.ID
			if addr < 0 || addr >= len(m.Mem) {
				return fmt.Errorf("pram: store out of memory bounds: addr %d", addr)
			}
			m.Mem[addr] = w
		}
	}
	if m.mode == EREW {
		reader := make(map[int]int)
		for _, p := range ps {
			for addr := range p.reads {
				if prev, clash := reader[addr]; clash {
					return fmt.Errorf("%w: EREW: procs %d and %d both load %d",
						ErrConflict, prev, p.ID, addr)
				}
				reader[addr] = p.ID
			}
			for addr := range p.reads {
				if w, ok := writer[addr]; ok && w != p.ID {
					return fmt.Errorf("%w: EREW: proc %d loads %d stored by proc %d",
						ErrConflict, p.ID, addr, w)
				}
			}
		}
	}

	// Accounting.
	var maxCost, sumCost Word
	for _, p := range ps {
		c := p.cost + m.weights.Phase
		if c > maxCost {
			maxCost = c
		}
		sumCost += c
	}
	m.stats.Time += maxCost
	m.stats.Work += sumCost
	m.stats.Phases++
	if procs > m.stats.MaxProcs {
		m.stats.MaxProcs = procs
	}
	return nil
}

// Snapshot returns a copy of a memory range [lo, hi) for host inspection.
func (m *Machine) Snapshot(lo, hi int) []Word {
	out := make([]Word, hi-lo)
	copy(out, m.Mem[lo:hi])
	return out
}

// DumpWrites is a debugging aid: it returns the sorted addresses a kernel
// phase would write, by dry-running body on one processor. Used in tests.
func (m *Machine) DumpWrites(body func(p *Proc)) []int {
	p := &Proc{ID: 0, m: m, writes: make(map[int]Word)}
	body(p)
	addrs := make([]int, 0, len(p.writes))
	for a := range p.writes {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	return addrs
}
