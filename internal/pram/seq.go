package pram

// RunUnbuffered executes body on a single processor with IMMEDIATE stores:
// each Store is visible to subsequent Loads in the same run. This models a
// plain sequential program (the paper's "Original IR Loop" baseline), where
// iteration i+1 must observe iteration i's write — the opposite of the
// buffered Phase semantics. Accounting is identical: the run is one phase
// of one processor.
func (m *Machine) RunUnbuffered(body func(p *Proc)) error {
	p := &Proc{ID: 0, m: m, direct: true}
	body(p)
	m.stats.Time += p.cost + m.weights.Phase
	m.stats.Work += p.cost + m.weights.Phase
	m.stats.Phases++
	if m.stats.MaxProcs < 1 {
		m.stats.MaxProcs = 1
	}
	return nil
}
