package pram

import (
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
)

func toWords(xs []int64) []Word { return xs }

func randomOrdinary(rng *rand.Rand, m int) *core.System {
	perm := rng.Perm(m)
	n := rng.Intn(m + 1)
	s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	for i := 0; i < n; i++ {
		s.G[i] = perm[i]
		s.F[i] = rng.Intn(m)
	}
	return s
}

func TestSequentialIRMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		s := randomOrdinary(rng, 1+rng.Intn(30))
		init := make([]Word, s.M)
		for x := range init {
			init[x] = rng.Int63n(1000)
		}
		want := core.RunSequential[int64](s, core.IntAdd{}, init)
		run, err := RunSequentialIR(s, OpAdd, init)
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if run.Values[x] != want[x] {
				t.Fatalf("trial %d cell %d: got %d, want %d", trial, x, run.Values[x], want[x])
			}
		}
	}
}

func TestParallelOIRMatchesOracleAcrossP(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	op := core.MulMod{M: 1_000_003}
	for trial := 0; trial < 25; trial++ {
		s := randomOrdinary(rng, 2+rng.Intn(50))
		init := make([]Word, s.M)
		for x := range init {
			init[x] = rng.Int63n(op.M-2) + 2
		}
		want := core.RunSequential[int64](s, op, init)
		for _, p := range []int{1, 2, 7, 32} {
			run, err := RunParallelOIR(s, OpMulMod(op.M), init, p)
			if err != nil {
				t.Fatal(err)
			}
			for x := range want {
				if run.Values[x] != want[x] {
					t.Fatalf("trial %d P=%d cell %d: got %d, want %d\nG=%v F=%v",
						trial, p, x, run.Values[x], want[x], s.G, s.F)
				}
			}
		}
	}
}

func TestParallelOIRChainInstance(t *testing.T) {
	n := 512
	s := paperfig.Fig2System(n)
	init := make([]Word, n)
	for x := range init {
		init[x] = 1
	}
	run, err := RunParallelOIR(s, OpAdd, init, 16)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if run.Values[k] != Word(k+1) {
			t.Fatalf("cell %d: got %d, want %d", k, run.Values[k], k+1)
		}
	}
	if run.Rounds != 9 { // ⌈log2 511⌉ = 9 (chain length 511)
		t.Errorf("Rounds = %d, want 9", run.Rounds)
	}
}

func TestScalingLawShape(t *testing.T) {
	// T(n,P) ≈ (n/P)·log n: doubling P should roughly halve Time while the
	// sequential loop is flat; and the parallel Work should stay within a
	// small factor across P.
	n := 4096
	s := paperfig.Fig2System(n)
	init := make([]Word, n)
	seqRun, err := RunSequentialIR(s, OpAdd, init)
	if err != nil {
		t.Fatal(err)
	}
	var prev Word
	for _, p := range []int{1, 2, 4, 8, 16} {
		run, err := RunParallelOIR(s, OpAdd, init, p)
		if err != nil {
			t.Fatal(err)
		}
		if p > 1 {
			ratio := float64(prev) / float64(run.Stats.Time)
			if ratio < 1.7 || ratio > 2.3 {
				t.Errorf("P=%d: time ratio %.2f, want ≈ 2 (prev=%d cur=%d)",
					p, ratio, prev, run.Stats.Time)
			}
		}
		prev = run.Stats.Time
	}
	// At P=1 the parallel algorithm must cost ≈ log n times the sequential
	// loop (same n, extra rounds), i.e. clearly more.
	run1, err := RunParallelOIR(s, OpAdd, init, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run1.Stats.Time < 5*seqRun.Stats.Time {
		t.Errorf("P=1 parallel time %d vs sequential %d: expected ≫ (log n factor)",
			run1.Stats.Time, seqRun.Stats.Time)
	}
	// With many processors the parallel algorithm must beat the loop.
	run256, err := RunParallelOIR(s, OpAdd, init, 256)
	if err != nil {
		t.Fatal(err)
	}
	if run256.Stats.Time >= seqRun.Stats.Time {
		t.Errorf("P=256 parallel time %d did not beat sequential %d",
			run256.Stats.Time, seqRun.Stats.Time)
	}
}

func TestParallelOIRUnwrittenCellsIntact(t *testing.T) {
	s, _ := paperfig.Fig1System()
	init := make([]Word, s.M)
	for x := range init {
		init[x] = Word(100 + x)
	}
	run, err := RunParallelOIR(s, OpAdd, init, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := core.RunSequential[int64](s, core.IntAdd{}, init)
	for x := range want {
		if run.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, run.Values[x], want[x])
		}
	}
}

func TestRunSequentialIRRejectsGeneral(t *testing.T) {
	s := &core.System{M: 3, N: 1, G: []int{0}, F: []int{1}, H: []int{2}}
	if _, err := RunSequentialIR(s, OpAdd, make([]Word, 3)); err == nil {
		t.Fatal("expected rejection of general system")
	}
}

func TestChargedSetupAddsOneChunkTerm(t *testing.T) {
	n := 4096
	s := paperfig.Fig2System(n)
	init := make([]Word, n)
	base, err := RunParallelOIR(s, OpAdd, init, 16)
	if err != nil {
		t.Fatal(err)
	}
	charged, err := RunParallelOIRChargedSetup(s, OpAdd, init, 16)
	if err != nil {
		t.Fatal(err)
	}
	if charged.Stats.Time <= base.Stats.Time {
		t.Fatal("charged setup did not increase simulated time")
	}
	// One O(n/P) phase against ~log n of them: the overhead must be small.
	overhead := float64(charged.Stats.Time-base.Stats.Time) / float64(base.Stats.Time)
	if overhead > 0.25 {
		t.Fatalf("setup overhead %.2f, want < 0.25 (one term vs log n terms)", overhead)
	}
	for x := range base.Values {
		if charged.Values[x] != base.Values[x] {
			t.Fatal("charged variant changed the answer")
		}
	}
}
