package pram

import (
	"fmt"
	"math/bits"

	"indexedrec/internal/core"
	"indexedrec/internal/ordinary"
)

// Dist selects how the written cells are distributed over processors —
// the scheduling knob of the paper's simulator reference ([5] Haber &
// Ben-Asher, on detecting inefficiency caused by "bad" schedulings).
type Dist int

const (
	// DistBlock gives processor p the contiguous slice [p·K/P, (p+1)·K/P).
	// Pathological when the long chains cluster in one block: that
	// processor stays busy every round while the others run out of live
	// cells and idle (lock-step time = per-round MAX over processors).
	DistBlock Dist = iota
	// DistCyclic gives processor p the cells p, p+P, p+2P, ... — spreading
	// clustered imbalance evenly.
	DistCyclic
)

// String returns "block" or "cyclic".
func (d Dist) String() string {
	if d == DistCyclic {
		return "cyclic"
	}
	return "block"
}

// RunParallelOIRSched simulates the paper's EFFICIENT OrdinaryIR variant:
// once a trace completes "we must not continue to concatenate any more
// traces to it", so each processor keeps a private worklist of still-live
// cells (compaction charged one ALU per retained cell per round) and a
// round costs that processor only its live-cell work. Under this model the
// distribution policy matters — the scheduling-inefficiency effect the
// SimParC reference [5] studies — and the sched experiment quantifies it.
func RunParallelOIRSched(s *core.System, op BinOp, init []Word, procs int, dist Dist) (*IRRun, error) {
	fr, err := ordinary.BuildForest(s)
	if err != nil {
		return nil, err
	}
	if procs < 1 {
		return nil, fmt.Errorf("pram: procs must be >= 1, got %d", procs)
	}
	m := s.M
	cells := fr.Cells
	k := len(cells)

	baseA := 0
	baseV := m
	baseN := 2 * m
	baseV2 := 3 * m
	baseN2 := 4 * m
	baseNext := 5 * m
	baseInitF := 6 * m
	ma := New(7 * m)
	copy(ma.Mem[baseA:baseA+m], init)
	for x := 0; x < m; x++ {
		ma.Mem[baseNext+x] = Word(fr.Next[x])
		ma.Mem[baseInitF+x] = Word(fr.InitF[x])
	}

	// Host-side ownership bookkeeping (the program would hold these in
	// private memory); worklist compaction is charged below.
	owned := make([][]int, procs) // live cells per processor
	switch dist {
	case DistCyclic:
		for idx, x := range cells {
			p := idx % procs
			owned[p] = append(owned[p], x)
		}
	default:
		for idx, x := range cells {
			p := idx * procs / k
			owned[p] = append(owned[p], x)
		}
	}
	// finalBuf[x] records which V bank held cell x's value when its trace
	// completed (completed cells are never touched again).
	finalBuf := make([]int, m)
	for x := range finalBuf {
		finalBuf[x] = -1
	}

	// Init phase: build length-≤2 traces; terminal cells complete at once.
	err = ma.Phase(procs, func(p *Proc) {
		p.ALU(4)
		live := owned[p.ID][:0]
		for _, x := range owned[p.ID] {
			nx := p.Load(baseNext + x)
			p.Branch()
			if nx >= 0 {
				p.Store(baseV+x, p.Load(baseA+x))
				p.Store(baseN+x, nx)
				live = append(live, x)
				p.ALU(1) // worklist retention
			} else {
				initF := int(p.Load(baseInitF + x))
				fv := p.Load(baseA + initF)
				av := p.Load(baseA + x)
				p.ALU(op.Cost)
				p.Store(baseV+x, op.Apply(fv, av))
				finalBuf[x] = baseV
			}
			p.ALU(2)
			p.Branch()
		}
		owned[p.ID] = live
	})
	if err != nil {
		return nil, err
	}

	rounds := 0
	if maxLen := fr.MaxChainLen(); maxLen > 1 {
		rounds = bits.Len(uint(maxLen - 1))
	}
	srcV, srcN, dstV, dstN := baseV, baseN, baseV2, baseN2
	for r := 0; r < rounds; r++ {
		// Phase-start snapshot of the completion table: a predecessor that
		// completes DURING this round was live at round start, so its
		// phase-start V/N banks are the correct ones to read (and the
		// snapshot keeps the host bookkeeping race-free, mirroring the
		// machine's buffered-store semantics).
		snap := append([]int(nil), finalBuf...)
		completions := make([][]int, procs)
		err = ma.Phase(procs, func(p *Proc) {
			p.ALU(4)
			live := owned[p.ID][:0]
			for _, x := range owned[p.ID] {
				// A completed predecessor's value is read from the bank it
				// was frozen in; a live one from the current source bank.
				nx := int(p.Load(srcN + x))
				p.Branch()
				vBank := srcV
				frozen := snap[nx] >= 0
				if frozen {
					vBank = snap[nx]
				}
				vn := p.Load(vBank + nx)
				vx := p.Load(srcV + x)
				p.ALU(op.Cost)
				nv := op.Apply(vn, vx)
				var nn Word = -1
				if !frozen {
					nn = p.Load(srcN + nx)
				}
				p.Store(dstV+x, nv)
				if nn >= 0 {
					p.Store(dstN+x, nn)
					live = append(live, x)
					p.ALU(1) // worklist retention
				} else {
					completions[p.ID] = append(completions[p.ID], x)
				}
				p.ALU(2)
				p.Branch()
			}
			owned[p.ID] = live
		})
		if err != nil {
			return nil, err
		}
		for _, done := range completions {
			for _, x := range done {
				finalBuf[x] = dstV
			}
		}
		srcV, dstV = dstV, srcV
		srcN, dstN = dstN, srcN
	}

	out := make([]Word, m)
	copy(out, ma.Mem[baseA:baseA+m])
	for _, x := range cells {
		if fb := finalBuf[x]; fb >= 0 {
			out[x] = ma.Mem[fb+x]
		} else {
			out[x] = ma.Mem[srcV+x] // safety: should not happen
		}
	}
	return &IRRun{Values: out, Stats: ma.Stats(), Rounds: rounds}, nil
}
