package pram

import (
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/workload"
)

func TestSchedVariantsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	op := core.MulMod{M: 1_000_003}
	for trial := 0; trial < 20; trial++ {
		s := workload.RandomOrdinary(rng, 2+rng.Intn(60), rng.Intn(50))
		init := workload.InitInt64(rng, s.M, op.M)
		want := core.RunSequential[int64](s, op, init)
		for _, d := range []Dist{DistBlock, DistCyclic} {
			for _, p := range []int{1, 3, 8} {
				run, err := RunParallelOIRSched(s, OpMulMod(op.M), init, p, d)
				if err != nil {
					t.Fatal(err)
				}
				for x := range want {
					if run.Values[x] != want[x] {
						t.Fatalf("trial %d dist=%v P=%d cell %d: got %d, want %d",
							trial, d, p, x, run.Values[x], want[x])
					}
				}
			}
		}
	}
}

func TestSchedChainInstanceBothDists(t *testing.T) {
	n := 2048
	s := workload.Chain(n)
	init := make([]Word, s.M)
	for x := range init {
		init[x] = 1
	}
	for _, d := range []Dist{DistBlock, DistCyclic} {
		run, err := RunParallelOIRSched(s, OpAdd, init, 16, d)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= n; k++ {
			if run.Values[k] != Word(k+1) {
				t.Fatalf("dist=%v cell %d: got %d, want %d", d, k, run.Values[k], k+1)
			}
		}
	}
}

// skewedInstance builds the bad-scheduling workload: one long chain whose
// cells are written FIRST (so block distribution clusters it into the first
// processors) followed by many singleton writes that complete in round one.
func skewedInstance(chainLen, singles int) *core.System {
	n := chainLen + singles
	m := chainLen + 1 + 2*singles
	s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	for i := 0; i < chainLen; i++ {
		s.G[i] = i + 1
		s.F[i] = i
	}
	base := chainLen + 1
	for k := 0; k < singles; k++ {
		s.G[chainLen+k] = base + 2*k
		s.F[chainLen+k] = base + 2*k + 1
	}
	return s
}

func TestSchedCyclicBeatsBlockOnSkewedInstance(t *testing.T) {
	// [5]'s scenario: the long chain sits in a couple of processors under
	// block distribution, which then work alone for log(chain) rounds while
	// everyone else idles. Cyclic spreads the chain across all P.
	s := skewedInstance(1024, 7168)
	init := make([]Word, s.M)
	procs := 16
	block, err := RunParallelOIRSched(s, OpAdd, init, procs, DistBlock)
	if err != nil {
		t.Fatal(err)
	}
	cyclic, err := RunParallelOIRSched(s, OpAdd, init, procs, DistCyclic)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(block.Stats.Time) / float64(cyclic.Stats.Time)
	if ratio < 2 {
		t.Fatalf("scheduling gap ratio %.2f, expected a dramatic effect (> 2): block=%d cyclic=%d",
			ratio, block.Stats.Time, cyclic.Stats.Time)
	}
	// The work (total instructions) must be similar — the gap is pure
	// scheduling, not extra computation.
	wr := float64(block.Stats.Work) / float64(cyclic.Stats.Work)
	if wr < 0.9 || wr > 1.1 {
		t.Fatalf("work ratio %.2f, want ≈ 1 (same computation)", wr)
	}
	// And both answers are right.
	want := core.RunSequential[int64](s, core.IntAdd{}, init)
	for x := range want {
		if block.Values[x] != want[x] || cyclic.Values[x] != want[x] {
			t.Fatalf("cell %d wrong", x)
		}
	}
}

func TestSchedEfficientSkipsCompleted(t *testing.T) {
	// The efficient variant must cost LESS than the always-copy kernel on
	// instances where most traces finish early (random g/f: chains are
	// O(log n) long and most complete in the first rounds).
	rng := rand.New(rand.NewSource(151))
	s := workload.RandomOrdinary(rng, 1<<14, 1<<13)
	init := make([]Word, s.M)
	plain, err := RunParallelOIR(s, OpAdd, init, 16)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := RunParallelOIRSched(s, OpAdd, init, 16, DistCyclic)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Stats.Work >= plain.Stats.Work {
		t.Fatalf("efficient variant work %d not below always-copy %d",
			sched.Stats.Work, plain.Stats.Work)
	}
}
