package pram

import (
	"fmt"
	"math/bits"
)

// RunParallelScan simulates the Kogge–Stone inclusive scan of xs under op on
// P processors: ⌈log₂ n⌉ phases of out[i] = op(out[i-2^t], out[i]) with
// double buffering — the cost-model twin of scan.InclusiveParallel, used to
// compare the classical prefix route against the OrdinaryIR route at the
// instruction level (experiment E14's simulated variant).
func RunParallelScan(xs []Word, op BinOp, procs int) ([]Word, Stats, error) {
	n := len(xs)
	if procs < 1 {
		return nil, Stats{}, fmt.Errorf("pram: procs must be >= 1")
	}
	// Layout: SRC [0, n), DST [n, 2n); roles swap each phase.
	ma := New(2 * n)
	copy(ma.Mem[0:n], xs)
	copy(ma.Mem[n:2*n], xs)

	chunk := func(id int) (int, int) {
		return id * n / procs, (id + 1) * n / procs
	}
	src, dst := 0, n
	phases := 0
	if n > 1 {
		phases = bits.Len(uint(n - 1))
	}
	for t := 0; t < phases; t++ {
		stride := 1 << t
		err := ma.Phase(procs, func(p *Proc) {
			lo, hi := chunk(p.ID)
			p.ALU(4)
			for i := lo; i < hi; i++ {
				v := p.Load(src + i)
				p.Branch()
				if i >= stride {
					u := p.Load(src + i - stride)
					p.ALU(op.Cost)
					v = op.Apply(u, v)
				}
				p.Store(dst+i, v)
				p.ALU(2)
				p.Branch()
			}
		})
		if err != nil {
			return nil, Stats{}, err
		}
		src, dst = dst, src
	}
	out := make([]Word, n)
	copy(out, ma.Mem[src:src+n])
	return out, ma.Stats(), nil
}

// RunMap simulates an embarrassingly parallel map phase out[i] = f(in[i]) on
// P processors — the "no recurrence" Livermore bucket's cost shape: a single
// phase of ⌈n/P⌉ work.
func RunMap(xs []Word, f func(Word) Word, fCost int, procs int) ([]Word, Stats, error) {
	n := len(xs)
	if procs < 1 {
		return nil, Stats{}, fmt.Errorf("pram: procs must be >= 1")
	}
	ma := New(2 * n)
	copy(ma.Mem[0:n], xs)
	err := ma.Phase(procs, func(p *Proc) {
		lo := p.ID * n / procs
		hi := (p.ID + 1) * n / procs
		p.ALU(4)
		for i := lo; i < hi; i++ {
			v := p.Load(i)
			p.ALU(fCost)
			p.Store(n+i, f(v))
			p.ALU(2)
			p.Branch()
		}
	})
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]Word, n)
	copy(out, ma.Mem[n:2*n])
	return out, ma.Stats(), nil
}
