package pram

import (
	"errors"
	"testing"
)

func TestPhaseBufferedSemantics(t *testing.T) {
	// Classic synchronous swap: every proc reads its neighbour's cell and
	// writes its own; with buffered stores all procs see phase-start values.
	const p = 8
	m := New(p)
	for i := 0; i < p; i++ {
		m.Mem[i] = Word(i)
	}
	err := m.Phase(p, func(pr *Proc) {
		v := pr.Load((pr.ID + 1) % p)
		pr.Store(pr.ID, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		if m.Mem[i] != Word((i+1)%p) {
			t.Fatalf("Mem[%d] = %d, want %d (buffered rotate)", i, m.Mem[i], (i+1)%p)
		}
	}
}

func TestPhaseDetectsWriteConflict(t *testing.T) {
	m := New(4)
	err := m.Phase(2, func(p *Proc) { p.Store(0, Word(p.ID)) })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
}

func TestEREWDetectsReadConflict(t *testing.T) {
	m := New(4, WithMode(EREW))
	err := m.Phase(2, func(p *Proc) { _ = p.Load(1) })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict (concurrent read under EREW)", err)
	}
}

func TestCREWAllowsConcurrentReads(t *testing.T) {
	m := New(4)
	err := m.Phase(4, func(p *Proc) {
		_ = p.Load(1)
		p.Store(p.ID, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeIsMaxWorkIsSum(t *testing.T) {
	m := New(8)
	err := m.Phase(4, func(p *Proc) {
		// proc i charges i+1 ALU ops.
		p.ALU(p.ID + 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	ph := UnitWeights().Phase
	if st.Time != 4+ph {
		t.Errorf("Time = %d, want %d", st.Time, 4+ph)
	}
	if st.Work != (1+2+3+4)+4*ph {
		t.Errorf("Work = %d, want %d", st.Work, 10+4*ph)
	}
	if st.Phases != 1 || st.MaxProcs != 4 {
		t.Errorf("Phases=%d MaxProcs=%d", st.Phases, st.MaxProcs)
	}
}

func TestRunUnbufferedSeesOwnWrites(t *testing.T) {
	m := New(2)
	err := m.RunUnbuffered(func(p *Proc) {
		p.Store(0, 5)
		v := p.Load(0) // must see the 5 immediately
		p.Store(1, v*2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mem[1] != 10 {
		t.Fatalf("Mem[1] = %d, want 10", m.Mem[1])
	}
}

func TestStoreOutOfBounds(t *testing.T) {
	m := New(2)
	if err := m.Phase(1, func(p *Proc) { p.Store(99, 1) }); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestWeightsApplied(t *testing.T) {
	m := New(4, WithWeights(Weights{Load: 3, Store: 5, ALU: 7, Branch: 11, Phase: 0}))
	err := m.Phase(1, func(p *Proc) {
		_ = p.Load(0)
		p.Store(1, 1)
		p.ALU(2)
		p.Branch()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Word(3 + 5 + 2*7 + 11)
	if got := m.Stats().Time; got != want {
		t.Fatalf("Time = %d, want %d", got, want)
	}
}
