package pram

import (
	"fmt"
	"math/bits"

	"indexedrec/internal/core"
	"indexedrec/internal/ordinary"
)

// BinOp is a word-level associative operation with an instruction cost, the
// ⊗ of the simulated programs.
type BinOp struct {
	Name  string
	Apply func(a, b Word) Word
	// Cost is the ALU instruction count charged per application.
	Cost int
}

// OpAdd is word addition (one ALU instruction).
var OpAdd = BinOp{Name: "add", Apply: func(a, b Word) Word { return a + b }, Cost: 1}

// OpMax is word maximum (compare + conditional move: two instructions).
var OpMax = BinOp{Name: "max", Apply: func(a, b Word) Word {
	if a > b {
		return a
	}
	return b
}, Cost: 2}

// OpMulMod returns multiplication modulo m (multiply + remainder).
func OpMulMod(m Word) BinOp {
	return BinOp{
		Name:  "mulmod",
		Apply: func(a, b Word) Word { return a % m * (b % m) % m },
		Cost:  3,
	}
}

// IRRun is the outcome of simulating an IR loop on the cost-model machine.
type IRRun struct {
	// Values is the final array (length m), extracted from machine memory.
	Values []Word
	// Stats is the machine's instruction accounting.
	Stats Stats
	// Rounds is the number of pointer-jumping rounds (0 for sequential).
	Rounds int
}

// RunSequentialIR simulates the original sequential loop
//
//	for i: A[g(i)] := A[f(i)] ⊗ A[g(i)]
//
// on one processor with immediate stores, charging per iteration: two index
// loads (tables G, F), two value loads, the op, one store, two ALU for
// address arithmetic and one branch — the paper's "Original IR Loop" curve.
func RunSequentialIR(s *core.System, op BinOp, init []Word) (*IRRun, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.Ordinary() {
		return nil, fmt.Errorf("pram: RunSequentialIR wants an ordinary system")
	}
	m, n := s.M, s.N
	// Layout: A [0,m), G [m, m+n), F [m+n, m+2n).
	ma := New(m + 2*n)
	copy(ma.Mem[0:m], init)
	for i := 0; i < n; i++ {
		ma.Mem[m+i] = Word(s.G[i])
		ma.Mem[m+n+i] = Word(s.F[i])
	}
	err := ma.RunUnbuffered(func(p *Proc) {
		for i := 0; i < n; i++ {
			g := int(p.Load(m + i))
			f := int(p.Load(m + n + i))
			av := p.Load(f)
			gv := p.Load(g)
			p.ALU(op.Cost)
			p.Store(g, op.Apply(av, gv))
			p.ALU(2)   // index increment + address arithmetic
			p.Branch() // loop back-edge
		}
	})
	if err != nil {
		return nil, err
	}
	return &IRRun{Values: ma.Snapshot(0, m), Stats: ma.Stats()}, nil
}

// RunParallelOIR simulates the paper's parallel OrdinaryIR on P processors:
// an initialization phase building the length-≤2 traces, then ⌈log₂ L⌉
// lock-step pointer-jumping rounds, each a phase where every processor owns
// ~K/P of the written cells (the "forks only up to P processes" version,
// T(n,P) = (n/P)·log n). Buffer roles alternate by round parity, mirroring
// the register-swap of a real implementation.
//
// The write-chain forest (Next/InitF) is staged into memory by the host;
// building it is a linear scan the paper does not charge to the parallel
// algorithm, and charging it would add the same O(n/P) term to every round
// count without changing any comparison.
func RunParallelOIR(s *core.System, op BinOp, init []Word, procs int) (*IRRun, error) {
	fr, err := ordinary.BuildForest(s)
	if err != nil {
		return nil, err
	}
	if procs < 1 {
		return nil, fmt.Errorf("pram: procs must be >= 1, got %d", procs)
	}
	m := s.M
	cells := fr.Cells
	k := len(cells)

	// Layout.
	const (
		baseA = 0
	)
	baseV := m
	baseN := 2 * m
	baseV2 := 3 * m
	baseN2 := 4 * m
	baseNext := 5 * m
	baseInitF := 6 * m
	baseCells := 7 * m
	ma := New(7*m + k)
	copy(ma.Mem[baseA:baseA+m], init)
	for x := 0; x < m; x++ {
		ma.Mem[baseNext+x] = Word(fr.Next[x])
		ma.Mem[baseInitF+x] = Word(fr.InitF[x])
	}
	for idx, x := range cells {
		ma.Mem[baseCells+idx] = Word(x)
	}

	chunk := func(id int) (int, int) {
		lo := id * k / procs
		hi := (id + 1) * k / procs
		return lo, hi
	}

	// Phase 0: build initial traces (V) and live pointers (N) for written
	// cells; unwritten cells keep A as their value (read directly at the
	// end, no copy needed).
	err = ma.Phase(procs, func(p *Proc) {
		lo, hi := chunk(p.ID)
		p.ALU(4) // chunk boundary computation
		for idx := lo; idx < hi; idx++ {
			x := int(p.Load(baseCells + idx))
			nx := p.Load(baseNext + x)
			p.Branch()
			if nx >= 0 {
				av := p.Load(baseA + x)
				p.Store(baseV+x, av)
				p.Store(baseN+x, nx)
			} else {
				initF := int(p.Load(baseInitF + x))
				fv := p.Load(baseA + initF)
				av := p.Load(baseA + x)
				p.ALU(op.Cost)
				p.Store(baseV+x, op.Apply(fv, av))
				p.Store(baseN+x, -1)
			}
			p.ALU(2)
			p.Branch()
		}
	})
	if err != nil {
		return nil, err
	}

	rounds := 0
	if maxLen := fr.MaxChainLen(); maxLen > 1 {
		rounds = bits.Len(uint(maxLen - 1)) // ⌈log₂ maxLen⌉
	}
	srcV, srcN, dstV, dstN := baseV, baseN, baseV2, baseN2
	for r := 0; r < rounds; r++ {
		err = ma.Phase(procs, func(p *Proc) {
			lo, hi := chunk(p.ID)
			p.ALU(4)
			for idx := lo; idx < hi; idx++ {
				x := int(p.Load(baseCells + idx))
				nx := p.Load(srcN + x)
				p.Branch()
				if nx >= 0 {
					vn := p.Load(srcV + int(nx))
					vx := p.Load(srcV + x)
					p.ALU(op.Cost)
					p.Store(dstV+x, op.Apply(vn, vx))
					nn := p.Load(srcN + int(nx))
					p.Store(dstN+x, nn)
				} else {
					p.Store(dstV+x, p.Load(srcV+x))
					p.Store(dstN+x, -1)
				}
				p.ALU(2)
				p.Branch()
			}
		})
		if err != nil {
			return nil, err
		}
		srcV, dstV = dstV, srcV
		srcN, dstN = dstN, srcN
	}

	// Extract: written cells from the live V buffer, others from A.
	out := make([]Word, m)
	copy(out, ma.Mem[baseA:baseA+m])
	for _, x := range cells {
		out[x] = ma.Mem[srcV+x]
	}
	return &IRRun{Values: out, Stats: ma.Stats(), Rounds: rounds}, nil
}

// RunParallelOIRChargedSetup is RunParallelOIR plus fair-accounting of the
// staging the default kernel gets for free: one extra P-processor phase
// that touches every iteration's G/F entry and every cell's Next/InitF slot
// (the O(n/P) cost a real program would pay to materialize the write-chain
// forest from precomputed dependence tables). The ablation in DESIGN.md E10
// uses it to show the (n/P)·log n shape is insensitive to the charge — the
// setup adds one more O(n/P) term to a sum of log n of them.
func RunParallelOIRChargedSetup(s *core.System, op BinOp, init []Word, procs int) (*IRRun, error) {
	if procs < 1 {
		return nil, fmt.Errorf("pram: procs must be >= 1, got %d", procs)
	}
	// Charge the staging phase on a throwaway machine with the same
	// weights, then run the real kernel and fold the costs together.
	stage := New(3 * s.N)
	err := stage.Phase(procs, func(p *Proc) {
		lo := p.ID * s.N / procs
		hi := (p.ID + 1) * s.N / procs
		p.ALU(4)
		for i := lo; i < hi; i++ {
			_ = p.Load(i)       // G[i]
			_ = p.Load(s.N + i) // F[i]
			p.Store(2*s.N+i, 0) // the iteration's forest slot
			p.ALU(2)            // dependence-table arithmetic
			p.Branch()
		}
	})
	if err != nil {
		return nil, err
	}
	run, err := RunParallelOIR(s, op, init, procs)
	if err != nil {
		return nil, err
	}
	st := stage.Stats()
	run.Stats.Time += st.Time
	run.Stats.Work += st.Work
	run.Stats.Phases += st.Phases
	return run, nil
}
