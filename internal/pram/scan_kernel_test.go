package pram

import (
	"errors"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/scan"
	"indexedrec/internal/workload"
)

func TestRunParallelScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for _, n := range []int{0, 1, 2, 5, 64, 1000} {
		xs := make([]Word, n)
		for i := range xs {
			xs[i] = rng.Int63n(1000)
		}
		want := scan.Inclusive[int64](core.IntAdd{}, xs)
		for _, p := range []int{1, 3, 8} {
			got, st, err := RunParallelScan(xs, OpAdd, p)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d i=%d: got %d want %d", n, p, i, got[i], want[i])
				}
			}
			if n > 1 && st.Phases == 0 {
				t.Fatal("no phases recorded")
			}
		}
	}
}

func TestRunParallelScanDepth(t *testing.T) {
	xs := make([]Word, 1024)
	_, st, err := RunParallelScan(xs, OpAdd, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phases != 10 {
		t.Fatalf("Phases = %d, want 10 = log2(1024)", st.Phases)
	}
}

func TestRunMap(t *testing.T) {
	xs := []Word{1, 2, 3, 4, 5}
	got, st, err := RunMap(xs, func(v Word) Word { return v * v }, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range xs {
		if got[i] != v*v {
			t.Fatalf("got %v", got)
		}
	}
	if st.Phases != 1 {
		t.Fatalf("map should be a single phase, got %d", st.Phases)
	}
}

func TestMapTimeScalesWithP(t *testing.T) {
	xs := make([]Word, 4096)
	_, st1, err := RunMap(xs, func(v Word) Word { return v + 1 }, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, st8, err := RunMap(xs, func(v Word) Word { return v + 1 }, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(st1.Time) / float64(st8.Time)
	if ratio < 7 || ratio > 9 {
		t.Fatalf("map speedup at P=8: %.2f, want ≈ 8", ratio)
	}
}

// TestPointerJumpingNeedsCREW demonstrates why the paper's algorithm is a
// CREW algorithm: under EREW the concurrent reads of a shared predecessor's
// V must be flagged as a conflict.
func TestPointerJumpingNeedsCREW(t *testing.T) {
	// Two cells read the same predecessor cell: f(1) = f(2) = g(0).
	s := &core.System{M: 4, N: 3, G: []int{1, 2, 3}, F: []int{0, 1, 1}}
	init := make([]Word, 4)
	// CREW (default): fine.
	if _, err := RunParallelOIR(s, OpAdd, init, 3); err != nil {
		t.Fatalf("CREW run failed: %v", err)
	}
	// EREW: rebuild the same phases on an EREW machine and expect the
	// conflict to surface. We reuse the kernel by constructing the machine
	// by hand with the same access pattern: procs 0 and 1 both load V[1].
	m := New(8, WithMode(EREW))
	err := m.Phase(2, func(p *Proc) {
		_ = p.Load(1) // both processors read cell 1's value
		p.Store(2+p.ID, 0)
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("EREW concurrent read not flagged: %v", err)
	}
}

func TestScanVsOIRCostComparison(t *testing.T) {
	// On the chain instance the scan and the OrdinaryIR kernel compute the
	// same prefix values; their simulated times must be within a small
	// constant of each other (same O((n/P) log n) structure).
	n := 2048
	xs := make([]Word, n)
	for i := range xs {
		xs[i] = Word(i % 7)
	}
	scanOut, scanSt, err := RunParallelScan(xs, OpAdd, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := workload.Chain(n - 1) // chain system over n cells
	oirRun, err := RunParallelOIR(s, OpAdd, xs, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if scanOut[i] != oirRun.Values[i] {
			t.Fatalf("cell %d: scan %d vs OIR %d", i, scanOut[i], oirRun.Values[i])
		}
	}
	ratio := float64(oirRun.Stats.Time) / float64(scanSt.Time)
	if ratio < 0.5 || ratio > 4 {
		t.Fatalf("OIR/scan simulated time ratio %.2f outside [0.5, 4] (OIR=%d scan=%d)",
			ratio, oirRun.Stats.Time, scanSt.Time)
	}
}
