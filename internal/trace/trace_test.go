package trace

import (
	"math/big"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
)

func TestFig1TraceTable(t *testing.T) {
	s, want := paperfig.Fig1System()
	got, err := Ordinary(s)
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if len(got[x]) != len(want[x]) {
			t.Fatalf("cell %d: trace %v, want %v", x, got[x], want[x])
		}
		for k := range want[x] {
			if got[x][k] != want[x][k] {
				t.Fatalf("cell %d: trace %v, want %v", x, got[x], want[x])
			}
		}
	}
	// The two verbatim renderings from the paper.
	if s := FormatOrdinary(got[6]); s != "A[2]A[3]A[6]" {
		t.Errorf("A'[6] = %s, want A[2]A[3]A[6]", s)
	}
	if s := FormatOrdinary(got[8]); s != "A[5]A[8]" {
		t.Errorf("A'[8] = %s, want A[5]A[8]", s)
	}
}

func TestOrdinaryRejectsGeneralSystem(t *testing.T) {
	s := paperfig.Fig4GIR(5)
	if _, err := Ordinary(s); err == nil {
		t.Fatal("Ordinary accepted a general system")
	}
}

func TestOrdinaryTraceMatchesConcat(t *testing.T) {
	// Independent check: evaluating the trace over singleton strings must
	// equal running the loop over Concat.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 3 + rng.Intn(10)
		n := rng.Intn(15)
		s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
		for i := 0; i < n; i++ {
			s.G[i] = rng.Intn(m)
			s.F[i] = rng.Intn(m)
		}
		init := make([]string, m)
		for x := range init {
			init[x] = string(rune('a' + x))
		}
		want := core.RunSequential[string](s, core.Concat{}, init)
		trs, err := Ordinary(s)
		if err != nil {
			t.Fatal(err)
		}
		for x := range trs {
			if got := EvalOrdinary[string](trs[x], core.Concat{}, init); got != want[x] {
				t.Fatalf("trial %d cell %d: trace eval %q, sequential %q", trial, x, got, want[x])
			}
		}
	}
}

func TestFig5FibonacciPowers(t *testing.T) {
	// X_i = X_{i-1} ⊗ X_{i-2}: the trace of X_n is A[0]^fib(n-1) A[1]^fib(n).
	n := 12
	s := paperfig.Fig4GIR(n)
	pw, err := Powers(s)
	if err != nil {
		t.Fatal(err)
	}
	fib := paperfig.Fib(n)
	for x := 2; x < n; x++ {
		terms := pw[x]
		if len(terms) != 2 || terms[0].Cell != 0 || terms[1].Cell != 1 {
			t.Fatalf("cell %d: terms %v, want powers of A[0], A[1]", x, terms)
		}
		if terms[0].Exp.Int64() != fib[x-1] || terms[1].Exp.Int64() != fib[x] {
			t.Fatalf("cell %d: A[0]^%s A[1]^%s, want A[0]^%d A[1]^%d",
				x, terms[0].Exp, terms[1].Exp, fib[x-1], fib[x])
		}
	}
	// Paper's rendering for n=4 (Fig. 5): A'[4] = A[0]^2 A[1]^3.
	if got := FormatPowers(pw[4]); got != "A[0]^2 A[1]^3" {
		t.Errorf("FormatPowers = %q, want %q", got, "A[0]^2 A[1]^3")
	}
}

func TestPowersMatchesSequentialMulMod(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	op := core.MulMod{M: 1_000_003}
	for trial := 0; trial < 50; trial++ {
		m := 3 + rng.Intn(8)
		n := rng.Intn(12)
		s := &core.System{M: m, N: n,
			G: make([]int, n), F: make([]int, n), H: make([]int, n)}
		for i := 0; i < n; i++ {
			s.G[i], s.F[i], s.H[i] = rng.Intn(m), rng.Intn(m), rng.Intn(m)
		}
		init := make([]int64, m)
		for x := range init {
			init[x] = rng.Int63n(op.M-2) + 2
		}
		want := core.RunSequential[int64](s, op, init)
		pw, err := Powers(s)
		if err != nil {
			t.Fatal(err)
		}
		for x := range pw {
			if got := EvalPowers[int64](pw[x], op, init); got != want[x] {
				t.Fatalf("trial %d cell %d: powers eval %d, sequential %d", trial, x, got, want[x])
			}
		}
	}
}

func TestFig4TraceShapes(t *testing.T) {
	n := 20
	gir := paperfig.Fig4GIR(n)
	oir := paperfig.Fig4IR(n)
	girSh, err := Shapes(gir)
	if err != nil {
		t.Fatal(err)
	}
	oirSh, err := Shapes(oir)
	if err != nil {
		t.Fatal(err)
	}
	fib := paperfig.Fib(n + 1)
	for x := 2; x < n; x++ {
		// Cells 2 and 3 are degenerate: their right operands are still
		// initial values, so their expression trees happen to be left
		// spines. The genuine tree structure appears from cell 4 on.
		if x >= 4 && girSh[x].IsList {
			t.Errorf("GIR cell %d classified as list", x)
		}
		// Leaves of the Fibonacci tree: fib(x-1) + fib(x) = fib(x+1).
		if girSh[x].Leaves.Int64() != fib[x+1] {
			t.Errorf("GIR cell %d: leaves %s, want fib(%d)=%d", x, girSh[x].Leaves, x+1, fib[x+1])
		}
	}
	for x := 1; x < n; x++ {
		if !oirSh[x].IsList {
			t.Errorf("OIR cell %d not classified as list", x)
		}
		if oirSh[x].Leaves.Int64() != int64(x+1) {
			t.Errorf("OIR cell %d: leaves %s, want %d", x, oirSh[x].Leaves, x+1)
		}
		if oirSh[x].Depth != x {
			t.Errorf("OIR cell %d: depth %d, want %d", x, oirSh[x].Depth, x)
		}
	}
}

func TestShapesExponentialLeavesNoBlowup(t *testing.T) {
	// n=200: leaf count ~ fib(200) ≈ 10^41; Shapes must handle it without
	// materializing anything exponential.
	s := paperfig.Fig4GIR(200)
	sh, err := Shapes(s)
	if err != nil {
		t.Fatal(err)
	}
	if sh[199].Leaves.BitLen() < 100 {
		t.Fatalf("expected astronomically many leaves, got %s", sh[199].Leaves)
	}
}

func TestDoubleChainPowers(t *testing.T) {
	// A[i] := A[i-1] ⊗ A[i-1]: A'[i] = A[0]^(2^i) — the paper's double-chain
	// CAP example.
	n := 16
	s := paperfig.DoubleChain(n)
	pw, err := Powers(s)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x < n; x++ {
		if len(pw[x]) != 1 || pw[x][0].Cell != 0 {
			t.Fatalf("cell %d: %v", x, pw[x])
		}
		want := new(big.Int).Lsh(big.NewInt(1), uint(x))
		if pw[x][0].Exp.Cmp(want) != 0 {
			t.Fatalf("cell %d: exponent %s, want 2^%d", x, pw[x][0].Exp, x)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatOrdinary([]int{2, 3, 6}); got != "A[2]A[3]A[6]" {
		t.Errorf("FormatOrdinary = %q", got)
	}
	if got := FormatPowers(nil); got != "1" {
		t.Errorf("FormatPowers(nil) = %q, want \"1\"", got)
	}
	terms := []PowerTerm{{Cell: 0, Exp: big.NewInt(1)}, {Cell: 3, Exp: big.NewInt(7)}}
	if got := FormatPowers(terms); got != "A[0] A[3]^7" {
		t.Errorf("FormatPowers = %q, want %q", got, "A[0] A[3]^7")
	}
}

func TestPowersUnwrittenCellIsItself(t *testing.T) {
	s := &core.System{M: 4, N: 1, G: []int{1}, F: []int{0}, H: []int{2}}
	pw, err := Powers(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw[3]) != 1 || pw[3][0].Cell != 3 || pw[3][0].Exp.Int64() != 1 {
		t.Fatalf("unwritten cell trace = %v, want itself", pw[3])
	}
}
