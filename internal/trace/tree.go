package trace

import (
	"fmt"
	"strings"

	"indexedrec/internal/core"
)

// Tree is the expression tree a loop builds for one cell: either a leaf
// (an initial value) or an op node over the two operand trees — the object
// the paper's Fig. 4 draws. Trees are only materialized on demand and up to
// a node budget, since general traces are exponential.
type Tree struct {
	// Cell is the initial-value cell for leaves (-1 for op nodes).
	Cell int
	// L, R are the operand subtrees (nil for leaves).
	L, R *Tree
}

// IsLeaf reports whether t is an initial-value leaf.
func (t *Tree) IsLeaf() bool { return t.L == nil && t.R == nil }

// ErrTreeTooLarge is returned when materializing would exceed the budget.
var ErrTreeTooLarge = fmt.Errorf("trace: expression tree exceeds the node budget")

// BuildTree materializes the expression tree of cell x after the loop,
// failing once more than maxNodes nodes are needed (the Fibonacci blow-up).
func BuildTree(s *core.System, x int, maxNodes int) (*Tree, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	budget := maxNodes
	val := make([]*Tree, s.M)
	for c := range val {
		val[c] = &Tree{Cell: c}
	}
	var clone func(t *Tree) (*Tree, error)
	clone = func(t *Tree) (*Tree, error) {
		if budget--; budget < 0 {
			return nil, ErrTreeTooLarge
		}
		if t.IsLeaf() {
			return &Tree{Cell: t.Cell}, nil
		}
		l, err := clone(t.L)
		if err != nil {
			return nil, err
		}
		r, err := clone(t.R)
		if err != nil {
			return nil, err
		}
		return &Tree{Cell: -1, L: l, R: r}, nil
	}
	for i := 0; i < s.N; i++ {
		l, err := clone(val[s.F[i]])
		if err != nil {
			return nil, err
		}
		r, err := clone(val[s.OperandH(i)])
		if err != nil {
			return nil, err
		}
		val[s.G[i]] = &Tree{Cell: -1, L: l, R: r}
	}
	return val[x], nil
}

// Render draws the tree sideways (root at the left), one leaf per line —
// compact and unambiguous for the Fig. 4 illustration.
//
//	(x)─┬─ A[1]
//	    └─(x)─┬─ A[0]
//	          └─ A[1]
func (t *Tree) Render(w *strings.Builder) {
	t.render(w, "")
}

func (t *Tree) render(w *strings.Builder, prefix string) {
	if t.IsLeaf() {
		fmt.Fprintf(w, " A[%d]\n", t.Cell)
		return
	}
	w.WriteString("(x)─┬─")
	t.L.render(w, prefix+"    │ ")
	w.WriteString(prefix + "    └─")
	t.R.render(w, prefix+"      ")
}

// String renders the tree to a string.
func (t *Tree) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Infix renders the tree as a fully parenthesized product, e.g.
// "((A[1]⊗A[0])⊗A[1])".
func (t *Tree) Infix() string {
	if t.IsLeaf() {
		return fmt.Sprintf("A[%d]", t.Cell)
	}
	return "(" + t.L.Infix() + "⊗" + t.R.Infix() + ")"
}

// Size returns the node count.
func (t *Tree) Size() int {
	if t.IsLeaf() {
		return 1
	}
	return 1 + t.L.Size() + t.R.Size()
}

// Depth returns the height (0 for a leaf).
func (t *Tree) Depth() int {
	if t.IsLeaf() {
		return 0
	}
	l, r := t.L.Depth(), t.R.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}
