package trace

import (
	"errors"
	"strings"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
)

func TestBuildTreeFibonacci(t *testing.T) {
	// A[4] for A[i] := A[i-1] ⊗ A[i-2]: ((A[1]⊗A[0])⊗A[1]) ⊗ (A[1]⊗A[0]).
	s := paperfig.Fig4GIR(5)
	tree, err := BuildTree(s, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Infix(); got != "(((A[1]⊗A[0])⊗A[1])⊗(A[1]⊗A[0]))" {
		t.Fatalf("Infix = %s", got)
	}
	if tree.Size() != 9 || tree.Depth() != 3 {
		t.Fatalf("Size=%d Depth=%d, want 9, 3", tree.Size(), tree.Depth())
	}
}

func TestBuildTreeListShape(t *testing.T) {
	// Ordinary chain: the tree is a left spine.
	s := paperfig.Fig4IR(5)
	tree, err := BuildTree(s, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Infix(); got != "((((A[0]⊗A[1])⊗A[2])⊗A[3])⊗A[4])" {
		t.Fatalf("Infix = %s", got)
	}
	// Right children all leaves (list structure).
	for cur := tree; !cur.IsLeaf(); cur = cur.L {
		if !cur.R.IsLeaf() {
			t.Fatal("ordinary trace tree is not a left spine")
		}
	}
}

func TestBuildTreeBudget(t *testing.T) {
	s := paperfig.Fig4GIR(40) // fib(40)-ish nodes: way over budget
	_, err := BuildTree(s, 39, 10_000)
	if !errors.Is(err, ErrTreeTooLarge) {
		t.Fatalf("err = %v, want ErrTreeTooLarge", err)
	}
}

func TestTreeMatchesShapes(t *testing.T) {
	// Tree Size/Depth must agree with the non-materializing Shapes pass.
	s := paperfig.Fig4GIR(10)
	shapes, err := Shapes(s)
	if err != nil {
		t.Fatal(err)
	}
	for x := 2; x < 10; x++ {
		tree, err := BuildTree(s, x, 100000)
		if err != nil {
			t.Fatal(err)
		}
		leaves := (tree.Size() + 1) / 2
		if int64(leaves) != shapes[x].Leaves.Int64() {
			t.Fatalf("cell %d: tree leaves %d vs Shapes %s", x, leaves, shapes[x].Leaves)
		}
		if tree.Depth() != shapes[x].Depth {
			t.Fatalf("cell %d: tree depth %d vs Shapes %d", x, tree.Depth(), shapes[x].Depth)
		}
	}
}

func TestTreeRender(t *testing.T) {
	s := paperfig.Fig4GIR(4)
	tree, err := BuildTree(s, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	out := tree.String()
	// (A[2]'s tree ⊗ A[1]) where A[2] = A[1]⊗A[0].
	for _, want := range []string{"(x)─┬─", "A[0]", "A[1]", "└─"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 3 { // one line per leaf
		t.Fatalf("render has %d lines, want 3:\n%s", lines, out)
	}
}

func TestBuildTreeUnwrittenCell(t *testing.T) {
	s := &core.System{M: 3, N: 1, G: []int{1}, F: []int{0}, H: []int{2}}
	tree, err := BuildTree(s, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.IsLeaf() || tree.Cell != 2 {
		t.Fatalf("unwritten cell tree: %+v", tree)
	}
}
