// Package trace computes the symbolic trace of every cell of an IR system:
// which initial values, in which order (ordinary form) or with which powers
// (general form), make up each final value A'[x].
//
// Lemma 1 of the paper characterizes ordinary traces as lists
//
//	A'[g(i)] = A[f(j_k)] ⊗ ... ⊗ A[f(j_1)] ⊗ A[g(i)]
//
// and §4 shows general (GIR) traces are binary trees whose leaves collapse,
// under a commutative op, to a product of powers A[j_1]^x_1 ⊗ ... ⊗ A[j_k]^x_k.
//
// The implementation is a sequential symbolic execution of the loop with
// list-valued (ordinary) or multiset-valued (general) cells. It is O(n·L)
// where L bounds trace size, so it is strictly a test/visualization oracle —
// the parallel solvers never call it — but it is *independent* of their
// pointer-jumping and path-counting logic, which is what makes it a useful
// cross-check.
package trace
