package trace

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"indexedrec/internal/core"
)

// Ordinary returns, for every cell x, the ordered list of initial-cell
// indices whose ⊗-product (left to right) equals A'[x] after the loop.
// An unwritten cell's trace is the singleton [x]. The system must be in
// ordinary form (H = G); G need not be distinct.
func Ordinary(s *core.System) ([][]int, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.Ordinary() {
		return nil, fmt.Errorf("trace: Ordinary requires an ordinary system, got %v", s)
	}
	val := make([][]int, s.M)
	for x := range val {
		val[x] = []int{x}
	}
	for i := 0; i < s.N; i++ {
		f, g := s.F[i], s.G[i]
		nw := make([]int, 0, len(val[f])+len(val[g]))
		nw = append(nw, val[f]...)
		nw = append(nw, val[g]...)
		val[g] = nw
	}
	return val, nil
}

// PowerTerm is one factor A[Cell]^Exp of a general trace.
type PowerTerm struct {
	Cell int
	Exp  *big.Int
}

// Powers returns, for every cell x, the multiset of initial values composing
// A'[x], as power terms sorted by cell index. This is the paper's
// "counting the powers of A[i]'s elements" (Fig. 5), computed by symbolic
// sequential execution. Works for any system, ordinary or general.
func Powers(s *core.System) ([][]PowerTerm, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	val := make([]map[int]*big.Int, s.M)
	for x := range val {
		val[x] = map[int]*big.Int{x: big.NewInt(1)}
	}
	for i := 0; i < s.N; i++ {
		f, h, g := s.F[i], s.OperandH(i), s.G[i]
		nw := make(map[int]*big.Int, len(val[f])+len(val[h]))
		for c, e := range val[f] {
			nw[c] = new(big.Int).Set(e)
		}
		for c, e := range val[h] {
			if old, ok := nw[c]; ok {
				old.Add(old, e)
			} else {
				nw[c] = new(big.Int).Set(e)
			}
		}
		val[g] = nw
	}
	out := make([][]PowerTerm, s.M)
	for x, m := range val {
		terms := make([]PowerTerm, 0, len(m))
		for c, e := range m {
			terms = append(terms, PowerTerm{Cell: c, Exp: e})
		}
		sort.Slice(terms, func(a, b int) bool { return terms[a].Cell < terms[b].Cell })
		out[x] = terms
	}
	return out, nil
}

// Shape describes the structure of a cell's trace viewed as the expression
// tree the loop builds (paper Fig. 4): ordinary traces are lists (Leaves =
// Depth+1); general traces are binary trees of possibly exponential size.
type Shape struct {
	// Leaves is the number of leaf operands in the expression tree, i.e.
	// the length of the fully expanded trace. Exponential for GIR, hence
	// big.Int.
	Leaves *big.Int
	// Depth is the height of the expression tree (0 for an untouched cell).
	Depth int
	// IsList reports whether the tree is a pure left spine, the list
	// structure of ordinary traces.
	IsList bool
}

// Shapes computes the trace shape of every cell without materializing the
// (possibly exponential) trees: leaf counts and depths satisfy the same
// recurrence as the loop and are carried per cell.
func Shapes(s *core.System) ([]Shape, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sh := make([]Shape, s.M)
	for x := range sh {
		sh[x] = Shape{Leaves: big.NewInt(1), Depth: 0, IsList: true}
	}
	for i := 0; i < s.N; i++ {
		f, h, g := s.F[i], s.OperandH(i), s.G[i]
		left, right := sh[f], sh[h]
		nw := Shape{
			Leaves: new(big.Int).Add(left.Leaves, right.Leaves),
			Depth:  max(left.Depth, right.Depth) + 1,
			// A node stays a list iff its right child is a leaf and its
			// left child is a list: exactly the ordinary form, where the
			// second operand A[g(i)] is a freshly read initial value.
			IsList: left.IsList && right.Depth == 0,
		}
		sh[g] = nw
	}
	return sh, nil
}

// FormatOrdinary renders an ordinary trace the way the paper's Fig. 1 does:
// "A[2]A[3]A[6]" for the product A[2]⊗A[3]⊗A[6].
func FormatOrdinary(tr []int) string {
	var b strings.Builder
	for _, c := range tr {
		fmt.Fprintf(&b, "A[%d]", c)
	}
	return b.String()
}

// FormatPowers renders a power trace the way the paper's Fig. 5 does:
// "A[0]^3 A[1]^5" (exponent omitted when 1).
func FormatPowers(terms []PowerTerm) string {
	parts := make([]string, 0, len(terms))
	for _, t := range terms {
		if t.Exp.Cmp(big.NewInt(1)) == 0 {
			parts = append(parts, fmt.Sprintf("A[%d]", t.Cell))
		} else {
			parts = append(parts, fmt.Sprintf("A[%d]^%s", t.Cell, t.Exp))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, " ")
}

// EvalOrdinary folds a trace with op over the given initial values,
// reproducing A'[x] for ordinary systems. It is the bridge from symbolic
// traces back to concrete values used in cross-checking tests.
func EvalOrdinary[T any](tr []int, op core.Semigroup[T], init []T) T {
	acc := init[tr[0]]
	for _, c := range tr[1:] {
		acc = op.Combine(acc, init[c])
	}
	return acc
}

// EvalPowers folds a power trace with a commutative monoid, reproducing
// A'[x] for general systems.
func EvalPowers[T any](terms []PowerTerm, op core.CommutativeMonoid[T], init []T) T {
	acc := op.Identity()
	for _, t := range terms {
		acc = op.Combine(acc, op.Pow(init[t.Cell], t.Exp))
	}
	return acc
}
