package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines asserts the goroutine count settles back to at most base,
// polling because exiting workers need a beat to be reaped.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: now %d, started with %d", runtime.NumGoroutine(), base)
}

func TestForCtxCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, p := range []int{-1, 0, 1, 2, 3, 16, 2000} {
			var count int64
			seen := make([]int32, n)
			err := ForCtx(context.Background(), n, p, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
					atomic.AddInt64(&count, 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			if count != int64(n) {
				t.Fatalf("n=%d p=%d: visited %d indices", n, p, count)
			}
			for i, v := range seen {
				if v != 1 {
					t.Fatalf("n=%d p=%d: index %d visited %d times", n, p, i, v)
				}
			}
		}
	}
}

func TestForCtxWeightedCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, p := range []int{-1, 0, 1, 2, 16} {
			for _, w := range []int{0, 1, minGrain - 1, minGrain, 4 * minGrain} {
				var count int64
				seen := make([]int32, n)
				err := ForCtxWeighted(context.Background(), n, p, w, func(lo, hi int) error {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
						atomic.AddInt64(&count, 1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d p=%d w=%d: %v", n, p, w, err)
				}
				if count != int64(n) {
					t.Fatalf("n=%d p=%d w=%d: visited %d indices", n, p, w, count)
				}
				for i, v := range seen {
					if v != 1 {
						t.Fatalf("n=%d p=%d w=%d: index %d visited %d times", n, p, w, i, v)
					}
				}
			}
		}
	}
}

// TestForCtxWeightedGrainCutover checks the weighted grain math: heavy
// items disable the per-item cutover entirely, while light items shrink the
// worker count exactly as if each item were `weight` plain indices.
func TestForCtxWeightedGrainCutover(t *testing.T) {
	// weight >= minGrain: every item is worth a handoff — all p workers run
	// even when n < minGrain.
	var workers int64
	err := ForCtxWeighted(context.Background(), 8, 8, minGrain, func(lo, hi int) error {
		atomic.AddInt64(&workers, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if workers < 2 {
		t.Errorf("heavy items: %d worker chunks, want parallel fan-out", workers)
	}
	// weight 1 matches ForCtx's cutover: 8 items of weight 1 run on one
	// worker (8 < minGrain).
	var calls int64
	err = ForCtxWeighted(context.Background(), 8, 8, 1, func(lo, hi int) error {
		atomic.AddInt64(&calls, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls > ctxGrain {
		t.Errorf("light items: %d sub-chunks, want sequential dispatch (<= %d)", calls, ctxGrain)
	}
}

func TestForCtxPropagatesBodyError(t *testing.T) {
	base := runtime.NumGoroutine()
	want := errors.New("boom")
	err := ForCtx(context.Background(), 1000, 8, func(lo, hi int) error {
		if lo >= 500 {
			return fmt.Errorf("chunk %d: %w", lo, want)
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want wrapped %v", err, want)
	}
	waitGoroutines(t, base)
}

func TestForCtxRecoversPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	err := ForCtx(context.Background(), 100, 4, func(lo, hi int) error {
		panic("worker exploded")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "worker exploded" {
		t.Fatalf("panic payload = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	waitGoroutines(t, base)
}

func TestForCtxAbortUnwrapsToError(t *testing.T) {
	want := errors.New("op failure")
	err := ForCtx(context.Background(), 100, 4, func(lo, hi int) error {
		Abort(want)
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v (unwrapped, not PanicError)", err, want)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatalf("Abort surfaced as PanicError: %v", err)
	}
}

func TestForCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForCtx(ctx, 1000, 4, func(lo, hi int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("body ran %d chunks on a cancelled context", ran.Load())
	}
}

func TestForCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForCtx(ctx, 1<<16, 2, func(lo, hi int) error {
		if ran.Add(1) == 1 {
			cancel() // later chunks must be skipped
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 2 workers × grain chunks were available; cancellation must have cut
	// the schedule short (first worker cancels on its first chunk, so at
	// most one more chunk — the second worker's in-flight one — runs).
	if got := ran.Load(); got > 2 {
		t.Fatalf("%d chunks ran after cancellation", got)
	}
}

func TestForEachCtxStopsAtError(t *testing.T) {
	want := errors.New("item 7")
	err := ForEachCtx(context.Background(), 100, 1, func(i int) error {
		if i == 7 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestBarrierBreakReleasesWaiters(t *testing.T) {
	base := runtime.NumGoroutine()
	b := NewBarrier(3)
	cause := errors.New("peer died")
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { results <- b.Wait() }()
	}
	time.Sleep(20 * time.Millisecond) // let both block
	b.Break(cause)
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			if !errors.Is(err, cause) {
				t.Fatalf("Wait returned %v, want %v", err, cause)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter still blocked after Break — deadlock")
		}
	}
	// Future waits fail immediately, and the cause is readable.
	if err := b.Wait(); !errors.Is(err, cause) {
		t.Fatalf("post-break Wait = %v, want %v", err, cause)
	}
	if err := b.Broken(); !errors.Is(err, cause) {
		t.Fatalf("Broken() = %v, want %v", err, cause)
	}
	waitGoroutines(t, base)
}

func TestBarrierBreakNilCause(t *testing.T) {
	b := NewBarrier(2)
	b.Break(nil)
	if err := b.Wait(); !errors.Is(err, ErrBarrierBroken) {
		t.Fatalf("Wait = %v, want ErrBarrierBroken", err)
	}
}

func TestBarrierFirstBreakWins(t *testing.T) {
	b := NewBarrier(2)
	first := errors.New("first")
	b.Break(first)
	b.Break(errors.New("second"))
	if err := b.Wait(); !errors.Is(err, first) {
		t.Fatalf("Wait = %v, want the first break cause", err)
	}
}

func TestSPMDCtxWorkerPanicBreaksBarrier(t *testing.T) {
	base := runtime.NumGoroutine()
	const p = 4
	err := SPMDCtx(context.Background(), p, func(ctx context.Context, id int, b *Barrier) error {
		if id == 2 {
			panic("party 2 died mid-round")
		}
		// The surviving parties would deadlock here forever without break
		// semantics: party 2 never arrives.
		if err := b.Wait(); err != nil {
			return err
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError from party 2", err)
	}
	waitGoroutines(t, base)
}

func TestSPMDCtxWorkerErrorPropagates(t *testing.T) {
	want := errors.New("party failed")
	err := SPMDCtx(context.Background(), 4, func(ctx context.Context, id int, b *Barrier) error {
		if id == 0 {
			return want
		}
		if err := b.Wait(); err != nil {
			return err
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestSPMDCtxExternalCancelReleasesBarrier(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := SPMDCtx(ctx, 4, func(ctx context.Context, id int, b *Barrier) error {
		if id == 0 {
			<-ctx.Done() // party 0 never reaches the barrier
			return ctx.Err()
		}
		return b.Wait() // peers must be released by the watchdog
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
}

func TestSPMDCtxCompletesCleanly(t *testing.T) {
	const p, rounds = 6, 20
	counts := make([]int64, rounds)
	err := SPMDCtx(context.Background(), p, func(ctx context.Context, id int, b *Barrier) error {
		for r := 0; r < rounds; r++ {
			atomic.AddInt64(&counts[r], 1)
			if err := b.Wait(); err != nil {
				return err
			}
			if got := atomic.LoadInt64(&counts[r]); got != p {
				return fmt.Errorf("round %d: count %d, want %d", r, got, p)
			}
			if err := b.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Edge cases of the legacy primitives (previously only happy-path tested).

func TestForSmallerThanP(t *testing.T) {
	// n far below p must not fan tiny chunks out to goroutines: the minimum
	// grain collapses the run to a single sequential chunk covering [0, n).
	var count int64
	For(3, 64, func(lo, hi int) {
		if lo != 0 || hi != 3 {
			t.Errorf("chunk [%d,%d): n below the grain must run as one chunk", lo, hi)
		}
		atomic.AddInt64(&count, 1)
	})
	if count != 1 {
		t.Fatalf("ran %d chunks, want 1", count)
	}
}

func TestForGrainCutover(t *testing.T) {
	// n slightly above p: worker count is capped at ceil(n/minGrain), so no
	// chunk is smaller than roughly the grain.
	var count int64
	For(70, 64, func(lo, hi int) {
		if hi-lo < minGrain/2 {
			t.Errorf("chunk [%d,%d): smaller than half the minimum grain", lo, hi)
		}
		atomic.AddInt64(&count, 1)
	})
	if got, want := count, int64((70+minGrain-1)/minGrain); got != want {
		t.Fatalf("ran %d chunks, want %d", got, want)
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	for _, n := range []int{0, -5} {
		ran := false
		For(n, 4, func(lo, hi int) { ran = true })
		if ran {
			t.Fatalf("body ran for n=%d", n)
		}
	}
}

func TestForNonPositiveP(t *testing.T) {
	for _, p := range []int{0, -3} {
		var count int64
		For(100, p, func(lo, hi int) {
			atomic.AddInt64(&count, int64(hi-lo))
		})
		if count != 100 {
			t.Fatalf("p=%d covered %d of 100 indices", p, count)
		}
	}
}

func TestChunksEdgeCases(t *testing.T) {
	if got := Chunks(0, 8); got != nil {
		t.Fatalf("Chunks(0,8) = %v, want nil", got)
	}
	if got := Chunks(-1, 8); got != nil {
		t.Fatalf("Chunks(-1,8) = %v, want nil", got)
	}
	if got := len(Chunks(5, 0)); got < 1 {
		t.Fatalf("Chunks(5,0) yielded %d chunks, want >= 1", got)
	}
	if got := len(Chunks(2, 100)); got != 2 {
		t.Fatalf("Chunks(2,100) yielded %d chunks, want 2 (no empties)", got)
	}
}
