package parallel

import (
	"errors"
	"runtime"
	"sync"
)

// DefaultProcs returns the processor count used when a caller passes p <= 0:
// the runtime's GOMAXPROCS setting.
func DefaultProcs() int {
	return runtime.GOMAXPROCS(0)
}

// clampProcs normalizes a requested processor count against n work items.
func clampProcs(p, n int) int {
	if p <= 0 {
		p = DefaultProcs()
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// minGrain is the smallest chunk worth crossing a goroutine boundary: with
// n work items and p requested processors, For and ForCtx cap the worker
// count at ⌈n/minGrain⌉ so n slightly above p never fans 1–2 element chunks
// out to p goroutines (whose handoff costs more than the work). Chunks and
// the SPMD primitives are exempt: their callers rely on an exact partition
// or party count.
const minGrain = 32

// grainProcs clamps a requested processor count against n like clampProcs,
// then applies the minGrain sequential cutover.
func grainProcs(p, n int) int {
	p = clampProcs(p, n)
	if maxp := (n + minGrain - 1) / minGrain; p > maxp {
		p = maxp
	}
	return p
}

// For runs body(lo, hi) over a partition of [0, n) into at most p contiguous
// chunks, one goroutine per chunk, and waits for all of them. p <= 0 means
// DefaultProcs(). n <= 0 is a no-op. Chunks differ in size by at most one,
// so the load is balanced for uniform-cost bodies; chunks smaller than the
// minimum grain run on fewer workers instead.
func For(n, p int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p = grainProcs(p, n)
	if p == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	q, r := n/p, n%p
	lo := 0
	for w := 0; w < p; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForEach runs body(i) for every i in [0, n) using For's chunking. It is a
// convenience for bodies that are per-item anyway.
func ForEach(n, p int, body func(i int)) {
	For(n, p, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Chunks partitions [0, n) into at most p nearly-equal contiguous ranges and
// returns their boundaries as (lo, hi) pairs. It is exported so lock-step
// algorithms can pin a persistent goroutine per chunk across many rounds.
func Chunks(n, p int) [][2]int {
	if n <= 0 {
		return nil
	}
	p = clampProcs(p, n)
	out := make([][2]int, 0, p)
	q, r := n/p, n%p
	lo := 0
	for w := 0; w < p; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// ErrBarrierBroken is the error Wait returns after Break(nil); Break with a
// non-nil cause returns that cause instead.
var ErrBarrierBroken = errors.New("parallel: barrier broken")

// Barrier is a reusable cyclic barrier for a fixed party count. All parties
// call Wait; the last arrival releases the rest and the barrier resets for
// the next round. A broken barrier (see Break) releases current and future
// waiters with an error, so the failure of one lock-step party can never
// deadlock its peers. The zero value is not usable; call NewBarrier.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
	broken  error
}

// NewBarrier returns a barrier for the given number of parties (>= 1).
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("parallel: NewBarrier requires parties >= 1")
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait for the current phase and
// returns nil, or returns the break cause immediately (without blocking, and
// releasing everyone already blocked) once the barrier is broken.
func (b *Barrier) Wait() error {
	b.mu.Lock()
	if b.broken != nil {
		err := b.broken
		b.mu.Unlock()
		return err
	}
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return nil
	}
	for phase == b.phase && b.broken == nil {
		b.cond.Wait()
	}
	err := b.broken
	b.mu.Unlock()
	return err
}

// Break permanently breaks the barrier with the given cause (nil means
// ErrBarrierBroken): every current and future Wait returns the cause. The
// first Break wins; later calls are no-ops. It is how a failed lock-step
// worker guarantees its peers cannot block forever.
func (b *Barrier) Break(cause error) {
	if cause == nil {
		cause = ErrBarrierBroken
	}
	b.mu.Lock()
	if b.broken == nil {
		b.broken = cause
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// Broken returns the break cause, or nil while the barrier is intact.
func (b *Barrier) Broken() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.broken
}

// SPMD launches p goroutines running body(id, barrier) and waits for all of
// them — the single-program-multiple-data shape of the paper's lock-step
// algorithms. The barrier passed to body has exactly p parties, so a Wait
// inside body is a whole-machine synchronization round.
func SPMD(p int, body func(id int, b *Barrier)) {
	if p < 1 {
		p = 1
	}
	b := NewBarrier(p)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			body(id, b)
		}(id)
	}
	wg.Wait()
}
