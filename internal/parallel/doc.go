// Package parallel provides the small goroutine runtime the solvers are
// built on: chunked parallel-for loops with a configurable processor count,
// and a reusable cyclic barrier for lock-step (PRAM-style) rounds.
//
// The design follows the fixed-worker-pool idiom: a bounded number of
// goroutines each own a contiguous index range, synchronized by WaitGroup or
// Barrier, so the solvers control their parallelism explicitly (the paper's
// "forks only up to P processes at the same time" discipline).
//
// # Contract
//
// ForCtx(ctx, n, procs, body) splits [0, n) into at most procs contiguous
// ranges and runs body(lo, hi) on each; ForEachCtx is its per-index
// convenience. Cancellation is checked between chunks, the first error
// cancels the rest, and worker panics are converted to *PanicError rather
// than crashing the process (RecoverTo is the helper exported for solver
// entry points). Callers own all slices they pass; the runtime never
// retains references past the call.
package parallel
