// Package parallel provides the small goroutine runtime the solvers are
// built on: chunked parallel-for loops with a configurable processor count,
// and a reusable cyclic barrier for lock-step (PRAM-style) rounds.
//
// The design follows the fixed-worker-pool idiom: a bounded number of
// goroutines each own a contiguous index range, synchronized by WaitGroup or
// Barrier, so the solvers control their parallelism explicitly (the paper's
// "forks only up to P processes at the same time" discipline).
//
// # Contract
//
// ForCtx(ctx, n, procs, body) splits [0, n) into at most procs contiguous
// ranges and runs body(lo, hi) on each; ForEachCtx is its per-index
// convenience. Cancellation is checked between chunks, the first error
// cancels the rest, and worker panics are converted to *PanicError rather
// than crashing the process (RecoverTo is the helper exported for solver
// entry points). Callers own all slices they pass; the runtime never
// retains references past the call. Loops never cross a goroutine boundary
// for tiny work: chunk counts are clamped so every chunk carries a minimum
// grain of iterations, and single-chunk loops run inline on the caller.
//
// # Gangs
//
// A Gang (gang.go) is the persistent form of the worker pool: a fixed set
// of goroutines parked on a round-dispatch channel, reused across all
// O(log n) rounds of a solve instead of being spawned per round. Solvers
// acquire one per solve via EnsureGang, and long-lived owners (the irserved
// worker pool) pin one on the context with WithGang so every solve they run
// reuses the same parked workers. ForCtx and SPMDCtx dispatch onto a
// context's gang transparently when one is present and idle, and fall back
// to spawn-per-round otherwise (including under re-entrancy, where an inner
// loop finds the gang busy); both paths run the same chunk bodies in the
// same index ranges, so results are identical. SetGangEnabled is the global
// kill switch fuzzers use to prove that.
package parallel
