package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGangForCtxCoversAllIndicesOnce checks the gang dispatch path covers
// [0, n) exactly once for the same size/procs matrix as the spawn path.
func TestGangForCtxCoversAllIndicesOnce(t *testing.T) {
	g := NewGang(8)
	defer g.Close()
	ctx := WithGang(context.Background(), g)
	for _, n := range []int{0, 1, 2, 7, 100, 1000, 4096} {
		for _, p := range []int{-1, 1, 2, 3, 8, 64, 2000} {
			seen := make([]int32, n)
			err := ForCtx(ctx, n, p, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d p=%d: index %d covered %d times", n, p, i, c)
				}
			}
		}
	}
}

// TestGangReuseAcrossRounds asserts one gang carries many consecutive
// rounds without spawning: the goroutine count stays flat across rounds.
func TestGangReuseAcrossRounds(t *testing.T) {
	g := NewGang(8)
	defer g.Close()
	ctx := WithGang(context.Background(), g)
	base := runtime.NumGoroutine()
	var sum atomic.Int64
	for round := 0; round < 200; round++ {
		if err := ForCtx(ctx, 10_000, 8, func(lo, hi int) error {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if now := runtime.NumGoroutine(); now > base+2 {
			t.Fatalf("round %d: %d goroutines, started with %d — gang rounds must not spawn", round, now, base)
		}
	}
	want := int64(200) * (9999 * 10_000 / 2)
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestGangErrorAndPanic checks the ForCtx failure contract holds on the
// gang path: body errors, panics, and Abort all surface; workers join.
func TestGangErrorAndPanic(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	ctx := WithGang(context.Background(), g)
	boom := errors.New("boom")

	err := ForCtx(ctx, 1000, 4, func(lo, hi int) error {
		if lo == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}

	err = ForCtx(ctx, 1000, 4, func(lo, hi int) error {
		if lo == 0 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not surfaced as PanicError: %v", err)
	}

	err = ForCtx(ctx, 1000, 4, func(lo, hi int) error {
		Abort(boom)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Abort not surfaced: %v", err)
	}

	// The gang must still be usable after failures.
	if err := ForCtx(ctx, 100, 4, func(lo, hi int) error { return nil }); err != nil {
		t.Fatalf("gang unusable after failure: %v", err)
	}
}

// TestGangCancellation checks a cancelled context stops gang rounds
// between sub-chunks and surfaces ctx.Err().
func TestGangCancellation(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	cctx, cancel := context.WithCancel(context.Background())
	ctx := WithGang(cctx, g)
	var ran atomic.Int64
	err := ForCtx(ctx, 100_000, 4, func(lo, hi int) error {
		if ran.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestGangNestedForCtxFallsBack checks that a ForCtx inside a gang round
// body detects the busy gang and completes on the spawn path, keeping
// nested-parallelism semantics.
func TestGangNestedForCtxFallsBack(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	ctx := WithGang(context.Background(), g)
	var inner atomic.Int64
	err := ForCtx(ctx, 256, 4, func(lo, hi int) error {
		return ForCtx(ctx, 128, 2, func(l, h int) error {
			inner.Add(int64(h - l))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// 256/4 procs with grain 32 → 2 outer chunks... outer chunk count is an
	// implementation detail; just assert every nested call covered 128.
	if got := inner.Load(); got%128 != 0 || got == 0 {
		t.Fatalf("inner coverage %d, want a positive multiple of 128", got)
	}
}

// TestGangConcurrentSolves hammers one shared gang from many goroutines:
// exactly one dispatch wins it per round, everyone else falls back, and all
// results stay correct. Run with -race.
func TestGangConcurrentSolves(t *testing.T) {
	g := NewGang(8)
	defer g.Close()
	ctx := WithGang(context.Background(), g)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				var sum atomic.Int64
				if err := ForCtx(ctx, 5000, 4, func(lo, hi int) error {
					var local int64
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					sum.Add(local)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if got, want := sum.Load(), int64(4999*5000/2); got != want {
					t.Errorf("sum = %d, want %d", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestGangSPMD checks SPMDCtx runs its parties on the gang with exact
// party count and working barrier semantics.
func TestGangSPMD(t *testing.T) {
	g := NewGang(8)
	defer g.Close()
	ctx := WithGang(context.Background(), g)
	const p = 6
	var phase1 atomic.Int64
	err := SPMDCtx(ctx, p, func(ctx context.Context, id int, b *Barrier) error {
		phase1.Add(1)
		if err := b.Wait(); err != nil {
			return err
		}
		if got := phase1.Load(); got != p {
			return errors.New("barrier released before all parties arrived")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGangSPMDTooWide checks SPMDCtx never reduces the party count: a
// request wider than the gang takes the spawn path and still works.
func TestGangSPMDTooWide(t *testing.T) {
	g := NewGang(2)
	defer g.Close()
	ctx := WithGang(context.Background(), g)
	const p = 8
	var parties atomic.Int64
	err := SPMDCtx(ctx, p, func(ctx context.Context, id int, b *Barrier) error {
		parties.Add(1)
		return b.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := parties.Load(); got != p {
		t.Fatalf("%d parties ran, want %d", got, p)
	}
}

// TestEnsureGang checks the per-solve lifecycle: a gang is created when
// missing, reused when present, skipped when disabled, and the release
// function retires the helpers.
func TestEnsureGang(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, release := EnsureGang(context.Background(), 4, 10_000)
	g := GangFrom(ctx)
	if g == nil {
		t.Fatal("EnsureGang did not pin a gang")
	}
	ctx2, release2 := EnsureGang(ctx, 4, 10_000)
	if GangFrom(ctx2) != g {
		t.Fatal("EnsureGang did not reuse the pinned gang")
	}
	release2()
	if err := ForCtx(ctx, 1000, 4, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	release()
	waitGoroutines(t, base)

	// A degenerate request — huge Procs against a tiny solve — must clamp
	// to the work size instead of parking an absurd number of helpers.
	ctx4, release4 := EnsureGang(context.Background(), 1<<20, 64)
	if g4 := GangFrom(ctx4); g4 == nil || g4.Procs() > 2 {
		t.Fatalf("EnsureGang(1<<20, 64) gang = %+v, want width 2", g4)
	}
	release4()
	if ctx5, release5 := EnsureGang(context.Background(), 8, 1); GangFrom(ctx5) != nil {
		t.Fatal("EnsureGang created a gang for a single-cell solve")
	} else {
		release5()
	}

	defer SetGangEnabled(SetGangEnabled(false))
	ctx3, release3 := EnsureGang(context.Background(), 4, 10_000)
	defer release3()
	if GangFrom(ctx3) != nil {
		t.Fatal("EnsureGang created a gang while disabled")
	}
}

// TestGangDisabledForCtx checks the kill switch: with gangs disabled, a
// pinned gang is ignored and results stay correct on the spawn path.
func TestGangDisabledForCtx(t *testing.T) {
	defer SetGangEnabled(SetGangEnabled(false))
	g := NewGang(4)
	defer g.Close()
	ctx := WithGang(context.Background(), g)
	var sum atomic.Int64
	if err := ForCtx(ctx, 10_000, 4, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			sum.Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 10_000 {
		t.Fatalf("covered %d indices, want 10000", sum.Load())
	}
}

// TestGangCloseReleasesHelpers checks Close retires the parked goroutines.
func TestGangCloseReleasesHelpers(t *testing.T) {
	base := runtime.NumGoroutine()
	g := NewGang(8)
	ctx := WithGang(context.Background(), g)
	if err := ForCtx(ctx, 1000, 8, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close() // idempotent
	waitGoroutines(t, base)
	// A closed gang must be skipped, not deadlock.
	if err := ForCtx(ctx, 1000, 8, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
