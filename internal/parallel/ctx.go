package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file is the hardened half of the runtime: context-aware, panic-safe
// variants of For / ForEach / SPMD. The solvers' error-returning entry
// points are built on these, while the legacy For/ForEach/SPMD keep their
// zero-overhead fire-and-forget contract for callers that control their own
// bodies (benchmarks, internal sweeps).
//
// Contract shared by ForCtx, ForEachCtx and SPMDCtx:
//
//   - a panic in a worker goroutine is recovered and surfaced to the caller
//     as a *PanicError (never crashes the process, never leaks the worker);
//   - a body returning a non-nil error stops the run; the first failure
//     (in completion order) is the one returned;
//   - cancellation of ctx is observed between chunks (ForCtx) or rounds
//     (via Barrier break in SPMDCtx), and surfaces as ctx.Err();
//   - all worker goroutines are joined before the call returns, whatever
//     the outcome — callers can assert no goroutine leaks.

// PanicError is a worker panic converted into an error by the panic-safe
// runtime. Value is the original panic payload; Stack is the worker's stack
// at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error reports the recovered panic value.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v", p.Value)
}

// Unwrap exposes a wrapped error payload (panic(err)) to errors.Is/As.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// abortError is the sentinel payload of Abort: a controlled failure that
// the recovery path unwraps back to the original error instead of reporting
// a panic.
type abortError struct{ err error }

// Abort aborts the surrounding panic-safe parallel region (ForCtx,
// ForEachCtx, SPMDCtx, or any solver built on them) with err. It exists for
// callbacks whose interface has no error return — e.g. a Semigroup.Combine
// that detects an unrecoverable condition mid-solve. Calling Abort outside
// a panic-safe region panics with err itself.
func Abort(err error) {
	if err == nil {
		err = errors.New("parallel: Abort(nil)")
	}
	panic(abortError{err})
}

// RecoverTo converts an in-flight panic into an error assigned to *errp,
// for use as `defer parallel.RecoverTo(&err)` at the top of error-returning
// APIs that invoke user callbacks outside a ForCtx body (validation hooks,
// per-round callbacks). Abort payloads unwrap to their original error; any
// other panic becomes a *PanicError. An existing non-nil *errp is kept.
func RecoverTo(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if *errp != nil {
		return
	}
	if a, ok := r.(abortError); ok {
		*errp = a.err
		return
	}
	*errp = &PanicError{Value: r, Stack: debug.Stack()}
}

// guard runs f, converting panics (including Abort) into returned errors.
func guard(f func() error) (err error) {
	defer RecoverTo(&err)
	return f()
}

// runRange runs body(lo, hi), converting panics (including Abort) into a
// returned error. It is guard specialized to range bodies so the hot replay
// path never allocates a closure per sub-chunk.
func runRange(body func(lo, hi int) error, lo, hi int) (err error) {
	defer RecoverTo(&err)
	return body(lo, hi)
}

// firstErr records the first failure of a parallel region.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *firstErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// ctxGrain is the number of sub-chunks each ForCtx worker cuts its range
// into: workers re-check cancellation and peer failure between sub-chunks,
// so a larger grain gives finer-grained cancellation at the cost of a few
// more body calls per round.
const ctxGrain = 4

// ForCtx is the panic-safe, cancellable For: body(lo, hi) runs over a
// partition of [0, n) on up to p workers (p <= 0 means DefaultProcs; chunks
// below the minimum grain shrink the worker count instead of fanning out).
// The partition is the same static one For uses — worker w owns the w-th
// contiguous range, so a solver calling ForCtx once per round keeps each
// range cache-warm on the same worker across rounds — but every worker
// walks its range in ctxGrain sub-chunks and checks for cancellation and
// earlier failures between them. When ctx carries a worker gang (WithGang,
// EnsureGang) the round is dispatched on the gang's parked workers with no
// goroutine spawns and no allocation; otherwise, or while the gang is busy
// with an enclosing round, one goroutine per chunk is spawned as before.
// Returns the first body error or recovered panic, else ctx.Err() if the
// run was cut short by cancellation, else nil.
func ForCtx(ctx context.Context, n, p int, body func(lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	k := grainProcs(p, n)
	if k == 1 {
		return forCtxSeq(ctx, n, body)
	}
	if gangEnabled() {
		if g := GangFrom(ctx); g != nil {
			if err, ok := g.tryForCtx(ctx, n, k, body); ok {
				return err
			}
		}
	}
	return forCtxSpawn(ctx, n, k, body)
}

// ForCtxWeighted is ForCtx for bodies whose items each carry roughly weight
// units of underlying work (e.g. one item = one fixed-length segment of
// cells). ForCtx's minimum-grain cutover counts items, so a round over a few
// hundred heavy items would be throttled to one or two workers even though
// each item amortizes the handoff cost on its own; here the cutover divides
// by weight instead. weight >= the minimum grain disables the cap entirely
// (every item is worth a handoff), which also keeps n·weight from
// overflowing. weight <= 0 behaves like ForCtx.
func ForCtxWeighted(ctx context.Context, n, p, weight int, body func(lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	k := clampProcs(p, n)
	if weight < 1 {
		weight = 1
	}
	if weight < minGrain {
		g := (minGrain + weight - 1) / weight
		if maxp := (n + g - 1) / g; k > maxp {
			k = maxp
		}
	}
	if k == 1 {
		return forCtxSeq(ctx, n, body)
	}
	if gangEnabled() {
		if g := GangFrom(ctx); g != nil {
			if err, ok := g.tryForCtx(ctx, n, k, body); ok {
				return err
			}
		}
	}
	return forCtxSpawn(ctx, n, k, body)
}

// forCtxSeq is ForCtx's single-worker path: the dispatcher walks [0, n)
// itself in ctxGrain sub-chunks, polling for cancellation in between.
func forCtxSeq(ctx context.Context, n int, body func(lo, hi int) error) error {
	step := (n + ctxGrain - 1) / ctxGrain
	if step < 1 {
		step = 1
	}
	for s := 0; s < n; s += step {
		if err := ctx.Err(); err != nil {
			return err
		}
		e := s + step
		if e > n {
			e = n
		}
		if err := runRange(body, s, e); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// forCtxSpawn is ForCtx's spawn-per-round path: one goroutine per chunk,
// joined before return. k must already be clamped against n.
func forCtxSpawn(ctx context.Context, n, k int, body func(lo, hi int) error) error {
	var fe firstErr
	var stop atomic.Bool
	worker := func(lo, hi int) {
		step := (hi - lo + ctxGrain - 1) / ctxGrain
		if step < 1 {
			step = 1
		}
		for s := lo; s < hi; s += step {
			if stop.Load() || ctx.Err() != nil {
				return
			}
			e := s + step
			if e > hi {
				e = hi
			}
			if err := runRange(body, s, e); err != nil {
				fe.set(err)
				stop.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(k)
	q, r := n/k, n%k
	lo := 0
	for w := 0; w < k; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			worker(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	if err := fe.get(); err != nil {
		return err
	}
	return ctx.Err()
}

// ForEachCtx is the per-item convenience over ForCtx: body(i) for every i
// in [0, n), stopping at the first error, panic, or cancellation.
func ForEachCtx(ctx context.Context, n, p int, body func(i int) error) error {
	return ForCtx(ctx, n, p, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := body(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// SPMDCtx is the panic-safe, cancellable SPMD: p workers run
// body(ctx, id, b) against a shared p-party barrier. A worker that panics,
// returns an error, or calls Abort breaks the barrier, so lock-step peers
// blocked in b.Wait are released with an error instead of deadlocking;
// cancellation of ctx also breaks the barrier. The ctx passed to body is a
// child of the caller's ctx that is cancelled on the first failure, so
// bodies can poll it between rounds. When ctx carries a worker gang with at
// least p workers, the parties run on the gang's parked workers; otherwise
// p goroutines are spawned (the party count is never reduced — barrier
// semantics require exactly p). All workers are joined before return.
func SPMDCtx(ctx context.Context, p int, body func(ctx context.Context, id int, b *Barrier) error) error {
	if p < 1 {
		p = 1
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	b := NewBarrier(p)
	var fe firstErr
	// run is one party: it breaks the barrier before surfacing a failure, so
	// a party that never starts (gang stop latch) cannot strand its peers.
	run := func(id int) {
		if err := guard(func() error { return body(cctx, id, b) }); err != nil {
			fe.set(err)
			b.Break(err)
			cancel()
		}
	}
	// Watchdog: external cancellation must release workers blocked in
	// b.Wait. It exits as soon as the workers are joined.
	joined := make(chan struct{})
	go func() {
		select {
		case <-cctx.Done():
			b.Break(context.Cause(cctx))
		case <-joined:
		}
	}()
	dispatched := false
	if gangEnabled() {
		if g := GangFrom(ctx); g != nil && p <= g.Procs() {
			// n = k = p gives every gang worker exactly one index: its party id.
			_, dispatched = g.tryForCtx(cctx, p, p, func(lo, _ int) error {
				run(lo)
				return nil
			})
		}
	}
	if !dispatched {
		var wg sync.WaitGroup
		wg.Add(p)
		for id := 0; id < p; id++ {
			go func(id int) {
				defer wg.Done()
				run(id)
			}(id)
		}
		wg.Wait()
	}
	close(joined)
	if err := fe.get(); err != nil {
		return err
	}
	return ctx.Err()
}
