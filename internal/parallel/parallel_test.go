package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, p := range []int{-1, 0, 1, 2, 3, 16, 2000} {
			var hits sync.Map
			var count int64
			For(n, p, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if _, dup := hits.LoadOrStore(i, true); dup {
						t.Errorf("n=%d p=%d: index %d visited twice", n, p, i)
					}
					atomic.AddInt64(&count, 1)
				}
			})
			if count != int64(n) {
				t.Fatalf("n=%d p=%d: visited %d indices", n, p, count)
			}
		}
	}
}

func TestForEach(t *testing.T) {
	n := 500
	out := make([]int32, n)
	ForEach(n, 8, func(i int) { atomic.AddInt32(&out[i], 1) })
	for i, v := range out {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestChunksProperties(t *testing.T) {
	f := func(n uint16, p int8) bool {
		cs := Chunks(int(n), int(p))
		if n == 0 {
			return cs == nil
		}
		// Contiguous cover of [0,n) with sizes differing by <= 1.
		prev := 0
		minSz, maxSz := int(n)+1, -1
		for _, c := range cs {
			if c[0] != prev || c[1] <= c[0] {
				return false
			}
			sz := c[1] - c[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			prev = c[1]
		}
		return prev == int(n) && maxSz-minSz <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunksRespectsP(t *testing.T) {
	if got := len(Chunks(100, 7)); got != 7 {
		t.Fatalf("len(Chunks(100,7)) = %d, want 7", got)
	}
	if got := len(Chunks(3, 10)); got != 3 {
		t.Fatalf("len(Chunks(3,10)) = %d, want 3 (no empty chunks)", got)
	}
}

func TestBarrierRounds(t *testing.T) {
	const p, rounds = 8, 50
	// Each party increments a per-round counter; after Wait, every party
	// must observe the full count for that round.
	counts := make([]int64, rounds)
	SPMD(p, func(id int, b *Barrier) {
		for r := 0; r < rounds; r++ {
			atomic.AddInt64(&counts[r], 1)
			b.Wait()
			if got := atomic.LoadInt64(&counts[r]); got != p {
				t.Errorf("party %d round %d: count=%d, want %d", id, r, got, p)
			}
			b.Wait() // second barrier so no one races ahead into round r+1
		}
	})
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must not block
	}
}

func TestNewBarrierPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBarrier(0)
}

func TestSPMDRunsAllIDs(t *testing.T) {
	const p = 13
	seen := make([]int32, p)
	SPMD(p, func(id int, b *Barrier) {
		atomic.AddInt32(&seen[id], 1)
	})
	for id, v := range seen {
		if v != 1 {
			t.Fatalf("id %d ran %d times", id, v)
		}
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(1024, 8, func(lo, hi int) {})
	}
}

func BenchmarkBarrier(b *testing.B) {
	const p = 4
	b.ReportAllocs()
	SPMD(p, func(id int, bar *Barrier) {
		for i := 0; i < b.N; i++ {
			bar.Wait()
		}
	})
}
