//go:build !race

package parallel

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-count gates skip themselves under race instrumentation, which
// allocates on its own behalf.
const RaceEnabled = false
