package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker gang: a fixed set of goroutines
// parked on a lightweight round-dispatch mechanism, so the O(log n) parallel
// rounds of one solve reuse the same workers instead of paying goroutine
// spawn + WaitGroup churn per round. A gang is created once per solve (see
// EnsureGang) or once per server worker, pinned into the context, and picked
// up transparently by ForCtx/ForEachCtx/SPMDCtx. Dispatch of one round costs
// k-1 channel sends, one atomic countdown, and at most one channel receive —
// no allocation.
//
// Protocol (one round):
//
//  1. the dispatcher (the caller's goroutine, worker 0) publishes the round
//     state (ctx, n, k, body), resets the failure latch, stores k into the
//     pending countdown, and sends one token to each of the k-1 helpers;
//  2. every worker — dispatcher included — runs its static contiguous chunk
//     of [0, n) in ctxGrain sub-chunks, checking cancellation and peer
//     failure between them (the ForCtx contract);
//  3. each helper decrements pending when done; whoever decrements it to
//     zero (helper or dispatcher) owns the round's end: a helper signals the
//     done channel, the dispatcher skips the receive.
//
// The pending countdown gives the dispatcher's final read of the failure
// latch a happens-before edge from every helper's writes, so no lock is held
// on the hot path.

// gangDisabled is the global kill switch (see SetGangEnabled): when set,
// ForCtx/SPMDCtx ignore pinned gangs and EnsureGang creates none, restoring
// the spawn-per-round scheduling. Fuzzers flip it to prove both scheduling
// paths are observationally identical.
var gangDisabled atomic.Bool

// SetGangEnabled globally enables (default) or disables gang scheduling and
// reports whether it was enabled before. Intended for tests and fuzzers that
// exercise the spawn-per-round fallback; not meant for production tuning.
func SetGangEnabled(on bool) bool {
	return !gangDisabled.Swap(!on)
}

func gangEnabled() bool { return !gangDisabled.Load() }

// Gang is a persistent set of parallel workers: procs-1 parked helper
// goroutines plus the dispatching caller. Rounds are dispatched through
// ForCtx (and SPMDCtx) on a context carrying the gang — see WithGang and
// EnsureGang; Gang has no public round API of its own. A gang runs one round
// at a time: concurrent or re-entrant dispatch attempts (a ForCtx inside a
// ForCtx body) detect the busy gang and fall back to spawn-per-round, so
// nesting keeps today's semantics. Close releases the helpers; the owner
// must not Close while a round is in flight (joining every ForCtx first is
// enough, and EnsureGang's release function guarantees it by construction).
type Gang struct {
	procs int
	wake  []chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup

	pending atomic.Int32
	busy    atomic.Bool
	closed  atomic.Bool

	// Round state: written by the dispatcher before the wake sends, read by
	// helpers strictly between their wake receive and pending decrement.
	ctx  context.Context
	n, k int
	body func(lo, hi int) error
	stop atomic.Bool
	ferr atomic.Pointer[error]
}

// NewGang starts a gang of procs workers (procs-1 parked helper goroutines;
// the dispatching caller is worker 0). procs <= 0 means DefaultProcs(). The
// helpers park on a channel receive and cost nothing while idle; call Close
// to release them.
func NewGang(procs int) *Gang {
	if procs <= 0 {
		procs = DefaultProcs()
	}
	g := &Gang{procs: procs, done: make(chan struct{})}
	g.wake = make([]chan struct{}, procs-1)
	for w := range g.wake {
		g.wake[w] = make(chan struct{}, 1)
		g.wg.Add(1)
		go g.helper(w)
	}
	return g
}

// Procs returns the gang's worker count (helpers + the dispatching caller).
func (g *Gang) Procs() int { return g.procs }

// Close releases the gang's helper goroutines and waits for them to exit.
// Safe to call twice; must not race an in-flight round.
func (g *Gang) Close() {
	if g == nil || !g.closed.CompareAndSwap(false, true) {
		return
	}
	for _, ch := range g.wake {
		close(ch)
	}
	g.wg.Wait()
}

// helper is the parked body of helper w (worker id w+1): it wakes once per
// dispatched round, runs its chunk, and signals the round's end if it is the
// last worker standing.
func (g *Gang) helper(w int) {
	defer g.wg.Done()
	for range g.wake[w] {
		g.runWorker(w + 1)
		if g.pending.Add(-1) == 0 {
			g.done <- struct{}{}
		}
	}
}

// runWorker executes worker w's static contiguous chunk of the current
// round, walking it in ctxGrain sub-chunks with the ForCtx cancellation and
// failure-latch checks in between. It never panics: body panics are caught
// by runRange, so the countdown in helper always completes.
func (g *Gang) runWorker(w int) {
	n, k := g.n, g.k
	q, r := n/k, n%k
	lo := w * q
	if w < r {
		lo += w
	} else {
		lo += r
	}
	hi := lo + q
	if w < r {
		hi++
	}
	step := (hi - lo + ctxGrain - 1) / ctxGrain
	if step < 1 {
		step = 1
	}
	for s := lo; s < hi; s += step {
		if g.stop.Load() || g.ctx.Err() != nil {
			return
		}
		e := s + step
		if e > hi {
			e = hi
		}
		if err := runRange(g.body, s, e); err != nil {
			g.setErr(err)
			return
		}
	}
}

// setErr latches the round's first failure (in completion order) and stops
// the other workers at their next sub-chunk boundary.
func (g *Gang) setErr(err error) {
	if g.ferr.CompareAndSwap(nil, &err) {
		g.stop.Store(true)
	}
}

// tryForCtx dispatches one ForCtx round on the gang. It reports ok = false
// — caller must fall back to spawn-per-round — when the gang is closed,
// already mid-round (re-entrant or concurrent use), or the round is not
// worth a dispatch. k is the caller's grain-clamped worker count; it is
// further clamped to the gang size.
func (g *Gang) tryForCtx(ctx context.Context, n, k int, body func(lo, hi int) error) (error, bool) {
	if g == nil || g.closed.Load() {
		return nil, false
	}
	if k > g.procs {
		k = g.procs
	}
	if k <= 1 {
		return nil, false
	}
	if !g.busy.CompareAndSwap(false, true) {
		return nil, false
	}
	g.ctx, g.n, g.k, g.body = ctx, n, k, body
	g.stop.Store(false)
	g.ferr.Store(nil)
	g.pending.Store(int32(k))
	for w := 0; w < k-1; w++ {
		g.wake[w] <- struct{}{}
	}
	g.runWorker(0)
	if g.pending.Add(-1) != 0 {
		<-g.done
	}
	var err error
	if p := g.ferr.Load(); p != nil {
		err = *p
	}
	g.body, g.ctx = nil, nil
	g.busy.Store(false)
	if err != nil {
		return err, true
	}
	return ctx.Err(), true
}

// gangKey is the context key WithGang stores a gang under; zero-size so
// lookups never allocate.
type gangKey struct{}

// WithGang returns a context carrying g: ForCtx, ForEachCtx and SPMDCtx
// calls under it dispatch their rounds on the gang instead of spawning
// goroutines (falling back transparently while the gang is busy with
// another round). A nil g returns ctx unchanged.
func WithGang(ctx context.Context, g *Gang) context.Context {
	if g == nil {
		return ctx
	}
	return context.WithValue(ctx, gangKey{}, g)
}

// GangFrom returns the gang pinned into ctx by WithGang, or nil.
func GangFrom(ctx context.Context) *Gang {
	g, _ := ctx.Value(gangKey{}).(*Gang)
	return g
}

// noRelease is EnsureGang's no-op release, shared so the warm path (a gang
// already pinned) allocates nothing.
var noRelease = func() {}

// EnsureGang makes sure ctx carries a worker gang for the duration of one
// solve and returns the (possibly wrapped) context plus a release function
// the caller must defer. If ctx already carries a gang — e.g. a server
// worker owns one across solves — it is reused and release is a no-op;
// otherwise a fresh gang of grainProcs(procs, n) workers is started and
// release closes it, where n is the solve's widest parallel round (cell
// count): the gang is exactly as wide as the solve's rounds can use, so a
// p-processor simulation keeps its width while degenerate requests (huge
// Procs against a tiny system) collapse instead of parking a million
// helpers. Solvers call this once at their entry point so all O(log n)
// rounds of the solve share one set of workers.
func EnsureGang(ctx context.Context, procs, n int) (context.Context, func()) {
	if !gangEnabled() {
		return ctx, noRelease
	}
	if GangFrom(ctx) != nil {
		return ctx, noRelease
	}
	if n <= 1 {
		return ctx, noRelease
	}
	procs = grainProcs(procs, n)
	if procs <= 1 {
		return ctx, noRelease
	}
	g := NewGang(procs)
	return WithGang(ctx, g), g.Close
}
