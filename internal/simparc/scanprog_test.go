package simparc

import (
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
	"indexedrec/internal/scan"
)

func TestScanProgramMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	add := func(a, b int64) int64 { return a + b }
	for _, n := range []int{1, 2, 3, 16, 100, 513} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Int63n(1000)
		}
		want := scan.Inclusive[int64](core.IntAdd{}, xs)
		for _, p := range []int{1, 4, 16} {
			got, _, err := RunScan(xs, add, p, 1<<26)
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d i=%d: got %d want %d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestScanProgramEmpty(t *testing.T) {
	out, _, err := RunScan(nil, func(a, b int64) int64 { return a + b }, 2, 1000)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestScanVsOIRProgramCycles(t *testing.T) {
	// On a chain instance both assembly programs compute the same prefix
	// values; cycle counts must be within a small constant factor (same
	// (n/P)·log n structure, different constant).
	n := 1024
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 9)
	}
	add := func(a, b int64) int64 { return a + b }
	scanOut, scanRes, err := RunScan(xs, add, 8, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	s := paperfig.Fig2System(n)
	oirRes, err := RunParallelOIR(s, add, xs, 8, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if scanOut[i] != oirRes.Values[i] {
			t.Fatalf("i=%d: scan %d vs OIR %d", i, scanOut[i], oirRes.Values[i])
		}
	}
	ratio := float64(oirRes.Cycles) / float64(scanRes.Cycles)
	if ratio < 0.3 || ratio > 5 {
		t.Fatalf("OIR/scan cycle ratio %.2f out of range (OIR=%d scan=%d)",
			ratio, oirRes.Cycles, scanRes.Cycles)
	}
}
