package simparc

import (
	"math/rand"
	"testing"
)

// affineOracle runs X[i] = (a[i]·X[i-1] + b[i]) mod p sequentially.
func affineOracle(a, b []int64, x0, p int64) []int64 {
	out := make([]int64, len(a))
	x := x0 % p
	for i := range a {
		x = (a[i]*x + b[i]) % p
		out[i] = x
	}
	return out
}

func TestAffineScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	const p = 99991
	for _, n := range []int{1, 2, 3, 17, 128, 777} {
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(p)
			b[i] = rng.Int63n(p)
		}
		x0 := rng.Int63n(p)
		want := affineOracle(a, b, x0, p)
		for _, procs := range []int{1, 4, 16} {
			got, _, err := RunAffineScan(a, b, x0, p, procs, 1<<28)
			if err != nil {
				t.Fatalf("n=%d procs=%d: %v", n, procs, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d procs=%d i=%d: got %d, want %d", n, procs, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAffineScanLogCycles(t *testing.T) {
	// At P = n the cycle count must be O(log n): doubling n (and P) must
	// add only a roughly constant number of cycles per round beyond the
	// serial fork prologue.
	const p = 99991
	mk := func(n int) ([]int64, []int64) {
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = 2
			b[i] = 3
		}
		return a, b
	}
	a1, b1 := mk(256)
	a2, b2 := mk(512)
	_, r1, err := RunAffineScan(a1, b1, 1, p, 256, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := RunAffineScan(a2, b2, 1, p, 256, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	// Same P: work doubles but rounds grow by one; with P=256 procs the
	// per-round parallel work is 1-2 items → cycles should grow mildly.
	if growth := float64(r2.Cycles) / float64(r1.Cycles); growth > 1.8 {
		t.Fatalf("cycles grew %.2fx on doubling n at large P: %d -> %d",
			growth, r1.Cycles, r2.Cycles)
	}
}

func TestAffineScanEmpty(t *testing.T) {
	out, _, err := RunAffineScan(nil, nil, 1, 97, 2, 1000)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
