package simparc

import (
	"fmt"
	"math/bits"

	"indexedrec/internal/core"
	"indexedrec/internal/ordinary"
)

// SeqIRSource is the "Original IR Loop" — the paper's sequential baseline —
// as a SimParC assembly program. Host symbols: NITER, A, G, F (array bases).
const SeqIRSource = `
; Original IR loop:  for i = 0..NITER-1: A[G[i]] := OPX(A[F[i]], A[G[i]])
main:
    LDI  r2, 0            ; i
    LDI  r3, NITER
sloop:
    BGE  r2, r3, sdone
    LDI  r4, G
    ADD  r4, r4, r2
    LD   r5, r4, 0        ; g = G[i]
    LDI  r4, F
    ADD  r4, r4, r2
    LD   r6, r4, 0        ; f = F[i]
    LDI  r4, A
    ADD  r7, r4, r6
    LD   r8, r7, 0        ; A[f]
    ADD  r7, r4, r5
    LD   r9, r7, 0        ; A[g]
    OPX  r8, r8, r9
    ST   r8, r7, 0        ; A[g] := A[f] (x) A[g]
    ADDI r2, r2, 1
    JMP  sloop
sdone:
    HALT
`

// ParallelOIRSource is the paper's parallel OrdinaryIR algorithm as a
// SimParC assembly program: a master forks NPROC workers; each worker owns a
// ~K/NPROC slice of the written-cell list, builds its initial traces, then
// runs ROUNDS lock-step pointer-jumping rounds separated by SYNC barriers,
// swapping source/destination buffer base registers between rounds.
//
// Host symbols: NPROC, K (written-cell count), ROUNDS, and array bases
// A, V, N, V2, N2, NEXT, INITF, CELLS.
const ParallelOIRSource = `
; Parallel OrdinaryIR (pointer jumping), work-shared across NPROC workers.
main:
    LDI  r2, 0
    LDI  r3, NPROC
mloop:
    BGE  r2, r3, mdone
    FORK r2, worker       ; child starts at worker with r1 = r2
    ADDI r2, r2, 1
    JMP  mloop
mdone:
    HALT

worker:
    ; chunk bounds: lo = id*K/NPROC, hi = (id+1)*K/NPROC
    LDI  r2, K
    LDI  r3, NPROC
    MUL  r4, r1, r2
    DIV  r4, r4, r3       ; lo
    ADDI r5, r1, 1
    MUL  r5, r5, r2
    DIV  r5, r5, r3       ; hi

    ; ---- init phase: traces of length <= 2 ----
    MOV  r6, r4           ; idx
iloop:
    BGE  r6, r5, idone
    LDI  r7, CELLS
    ADD  r7, r7, r6
    LD   r8, r7, 0        ; x = CELLS[idx]
    LDI  r7, NEXT
    ADD  r7, r7, r8
    LD   r9, r7, 0        ; nx = NEXT[x]
    LDI  r10, A
    ADD  r10, r10, r8
    LD   r11, r10, 0      ; A[x]
    LDI  r0, 0
    BLT  r9, r0, iinitf
    LDI  r12, V           ; chain continues: V[x]=A[x], N[x]=nx
    ADD  r12, r12, r8
    ST   r11, r12, 0
    LDI  r12, N
    ADD  r12, r12, r8
    ST   r9, r12, 0
    JMP  inext
iinitf:                   ; terminal: V[x]=OPX(A[InitF[x]],A[x]), N[x]=-1
    LDI  r12, INITF
    ADD  r12, r12, r8
    LD   r13, r12, 0
    LDI  r12, A
    ADD  r12, r12, r13
    LD   r13, r12, 0      ; A[InitF[x]]
    OPX  r11, r13, r11
    LDI  r12, V
    ADD  r12, r12, r8
    ST   r11, r12, 0
    LDI  r13, -1
    LDI  r12, N
    ADD  r12, r12, r8
    ST   r13, r12, 0
inext:
    ADDI r6, r6, 1
    JMP  iloop
idone:
    SYNC

    ; ---- pointer-jumping rounds ----
    LDI  r14, 0           ; round counter
    LDI  r2, V            ; src V base
    LDI  r3, N            ; src N base
    LDI  r12, V2          ; dst V base
    LDI  r13, N2          ; dst N base
rloop:
    LDI  r0, ROUNDS
    BGE  r14, r0, rdone
    MOV  r6, r4           ; idx = lo
jloop:
    BGE  r6, r5, jdone
    LDI  r7, CELLS
    ADD  r7, r7, r6
    LD   r8, r7, 0        ; x
    ADD  r7, r3, r8
    LD   r9, r7, 0        ; nx = srcN[x]
    LDI  r0, 0
    BLT  r9, r0, jcopy
    ADD  r7, r2, r9
    LD   r10, r7, 0       ; srcV[nx]
    ADD  r7, r2, r8
    LD   r11, r7, 0       ; srcV[x]
    OPX  r10, r10, r11    ; concatenate sub-traces
    ADD  r7, r12, r8
    ST   r10, r7, 0       ; dstV[x]
    ADD  r7, r3, r9
    LD   r10, r7, 0       ; srcN[nx]
    ADD  r7, r13, r8
    ST   r10, r7, 0       ; dstN[x] (pointer doubling)
    JMP  jnext
jcopy:                    ; completed trace: copy forward
    ADD  r7, r2, r8
    LD   r10, r7, 0
    ADD  r7, r12, r8
    ST   r10, r7, 0
    LDI  r10, -1
    ADD  r7, r13, r8
    ST   r10, r7, 0
jnext:
    ADDI r6, r6, 1
    JMP  jloop
jdone:
    SYNC
    MOV  r0, r2           ; swap buffer roles
    MOV  r2, r12
    MOV  r12, r0
    MOV  r0, r3
    MOV  r3, r13
    MOV  r13, r0
    ADDI r14, r14, 1
    JMP  rloop
rdone:
    HALT
`

// RunResult is the outcome of running one of the shipped programs.
type RunResult struct {
	// Values is the final array (length m).
	Values []int64
	// Cycles is lock-step time; Instrs is total work.
	Cycles, Instrs int64
	// MaxActive is the peak number of simultaneously active processors.
	MaxActive int
	// Rounds is the pointer-jumping round count (parallel program only).
	Rounds int
}

// RunSeqIR assembles and executes the sequential baseline program on the
// given ordinary IR instance.
func RunSeqIR(s *core.System, opx func(a, b int64) int64, init []int64, maxCycles int64) (*RunResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.Ordinary() {
		return nil, fmt.Errorf("simparc: RunSeqIR wants an ordinary system")
	}
	m, n := s.M, s.N
	baseA, baseG, baseF := 0, m, m+n
	prog, err := Assemble(SeqIRSource, map[string]int64{
		"NITER": int64(n), "A": int64(baseA), "G": int64(baseG), "F": int64(baseF),
	})
	if err != nil {
		return nil, err
	}
	vm := NewVM(prog, m+2*n)
	vm.OpX = opx
	copy(vm.Mem[baseA:baseA+m], init)
	for i := 0; i < n; i++ {
		vm.Mem[baseG+i] = int64(s.G[i])
		vm.Mem[baseF+i] = int64(s.F[i])
	}
	if err := vm.Run(maxCycles); err != nil {
		return nil, err
	}
	out := make([]int64, m)
	copy(out, vm.Mem[baseA:baseA+m])
	return &RunResult{Values: out, Cycles: vm.Cycles, Instrs: vm.Instrs, MaxActive: vm.MaxActive}, nil
}

// RunParallelOIR assembles and executes the parallel program with nproc
// workers. The write-chain forest is staged into memory by the host (same
// accounting note as pram.RunParallelOIR).
func RunParallelOIR(s *core.System, opx func(a, b int64) int64, init []int64, nproc int, maxCycles int64) (*RunResult, error) {
	fr, err := ordinary.BuildForest(s)
	if err != nil {
		return nil, err
	}
	if nproc < 1 {
		return nil, fmt.Errorf("simparc: nproc must be >= 1, got %d", nproc)
	}
	m := s.M
	cells := fr.Cells
	k := len(cells)
	rounds := 0
	if maxLen := fr.MaxChainLen(); maxLen > 1 {
		rounds = bits.Len(uint(maxLen - 1))
	}

	baseA := 0
	baseV := m
	baseN := 2 * m
	baseV2 := 3 * m
	baseN2 := 4 * m
	baseNext := 5 * m
	baseInitF := 6 * m
	baseCells := 7 * m
	prog, err := Assemble(ParallelOIRSource, map[string]int64{
		"NPROC": int64(nproc), "K": int64(k), "ROUNDS": int64(rounds),
		"A": int64(baseA), "V": int64(baseV), "N": int64(baseN),
		"V2": int64(baseV2), "N2": int64(baseN2),
		"NEXT": int64(baseNext), "INITF": int64(baseInitF), "CELLS": int64(baseCells),
	})
	if err != nil {
		return nil, err
	}
	vm := NewVM(prog, 7*m+k)
	vm.OpX = opx
	copy(vm.Mem[baseA:baseA+m], init)
	for x := 0; x < m; x++ {
		vm.Mem[baseNext+x] = int64(fr.Next[x])
		vm.Mem[baseInitF+x] = int64(fr.InitF[x])
	}
	for idx, x := range cells {
		vm.Mem[baseCells+idx] = int64(x)
	}
	if err := vm.Run(maxCycles); err != nil {
		return nil, err
	}
	// Result buffer: V if rounds is even, V2 if odd (buffers swap/round).
	srcV := baseV
	if rounds%2 == 1 {
		srcV = baseV2
	}
	out := make([]int64, m)
	copy(out, vm.Mem[baseA:baseA+m])
	for _, x := range cells {
		out[x] = vm.Mem[srcV+x]
	}
	return &RunResult{
		Values: out, Cycles: vm.Cycles, Instrs: vm.Instrs,
		MaxActive: vm.MaxActive, Rounds: rounds,
	}, nil
}
