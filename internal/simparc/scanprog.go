package simparc

import (
	"fmt"
	"math/bits"
)

// ScanSource is the Kogge–Stone inclusive scan as a SimParC assembly
// program: ROUNDS lock-step strides of out[i] = OPX(out[i-2^t], out[i])
// with SRC/DST buffer roles swapped between rounds — the cited prior art
// ([2] Stone, [4] Kogge–Stone) at the instruction level, comparable cycle
// for cycle against the OrdinaryIR program on chain instances.
// Host symbols: N, NPROC, ROUNDS, SRC, DST (array bases).
const ScanSource = `
; Kogge–Stone inclusive scan across NPROC workers.
main:
    LDI  r2, 0
    LDI  r3, NPROC
mloop:
    BGE  r2, r3, mdone
    FORK r2, worker
    ADDI r2, r2, 1
    JMP  mloop
mdone:
    HALT

worker:
    ; chunk bounds over the N elements
    LDI  r2, N
    LDI  r3, NPROC
    MUL  r4, r1, r2
    DIV  r4, r4, r3       ; lo
    ADDI r5, r1, 1
    MUL  r5, r5, r2
    DIV  r5, r5, r3       ; hi

    LDI  r6, 1            ; stride
    LDI  r7, SRC
    LDI  r8, DST
    LDI  r9, 0            ; round counter
wloop:
    LDI  r0, ROUNDS
    BGE  r9, r0, wdone
    MOV  r10, r4          ; i = lo
iloop:
    BGE  r10, r5, idone
    ADD  r11, r7, r10
    LD   r12, r11, 0      ; src[i]
    BLT  r10, r6, istore  ; i < stride: copy through
    SUB  r11, r10, r6
    ADD  r11, r7, r11
    LD   r13, r11, 0      ; src[i-stride]
    OPX  r12, r13, r12
istore:
    ADD  r11, r8, r10
    ST   r12, r11, 0      ; dst[i]
    ADDI r10, r10, 1
    JMP  iloop
idone:
    SYNC
    MOV  r0, r7           ; swap SRC/DST roles
    MOV  r7, r8
    MOV  r8, r0
    ADD  r6, r6, r6       ; stride *= 2
    ADDI r9, r9, 1
    JMP  wloop
wdone:
    HALT
`

// RunScan assembles and executes the scan program, returning the inclusive
// prefix combine of xs under opx.
func RunScan(xs []int64, opx func(a, b int64) int64, nproc int, maxCycles int64) ([]int64, *RunResult, error) {
	n := len(xs)
	if n == 0 {
		return nil, &RunResult{}, nil
	}
	if nproc < 1 {
		return nil, nil, fmt.Errorf("simparc: nproc must be >= 1")
	}
	rounds := 0
	if n > 1 {
		rounds = bits.Len(uint(n - 1))
	}
	baseSrc, baseDst := 0, n
	prog, err := Assemble(ScanSource, map[string]int64{
		"N": int64(n), "NPROC": int64(nproc), "ROUNDS": int64(rounds),
		"SRC": int64(baseSrc), "DST": int64(baseDst),
	})
	if err != nil {
		return nil, nil, err
	}
	vm := NewVM(prog, 2*n)
	vm.OpX = opx
	copy(vm.Mem[baseSrc:baseSrc+n], xs)
	copy(vm.Mem[baseDst:baseDst+n], xs)
	if err := vm.Run(maxCycles); err != nil {
		return nil, nil, err
	}
	src := baseSrc
	if rounds%2 == 1 {
		src = baseDst
	}
	out := make([]int64, n)
	copy(out, vm.Mem[src:src+n])
	return out, &RunResult{
		Values: out, Cycles: vm.Cycles, Instrs: vm.Instrs,
		MaxActive: vm.MaxActive, Rounds: rounds,
	}, nil
}
