package simparc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrAsm wraps all assembler diagnostics.
var ErrAsm = errors.New("simparc: assembly error")

// Program is an assembled instruction sequence plus its symbol table.
type Program struct {
	Code    []Instr
	Symbols map[string]int64
}

// Assemble translates assembly text into a Program. Syntax:
//
//	; comment to end of line
//	label:                ; labels may share a line with an instruction
//	.equ NAME expr        ; define a constant (expr: integer or symbol)
//	OP operands           ; registers r0..r15, immediates, labels
//
// extern provides host-defined symbols (array base addresses, sizes,
// processor counts) that the program references by name; they are merged
// into the symbol table before pass one and may be redefined by .equ only
// with an error.
func Assemble(src string, extern map[string]int64) (*Program, error) {
	syms := make(map[string]int64, len(extern))
	for k, v := range extern {
		syms[k] = v
	}

	type rawLine struct {
		fields []string
		line   int
	}
	var raw []rawLine

	// Pass 1: strip comments, collect labels and .equ, keep instructions.
	pc := 0
	for ln, lineText := range strings.Split(src, "\n") {
		line := ln + 1
		if i := strings.IndexByte(lineText, ';'); i >= 0 {
			lineText = lineText[:i]
		}
		text := strings.TrimSpace(lineText)
		// Peel leading labels.
		for {
			i := strings.IndexByte(text, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(text[:i])
			if !isIdent(label) {
				return nil, fmt.Errorf("%w: line %d: bad label %q", ErrAsm, line, label)
			}
			if _, dup := syms[label]; dup {
				return nil, fmt.Errorf("%w: line %d: symbol %q redefined", ErrAsm, line, label)
			}
			syms[label] = int64(pc)
			text = strings.TrimSpace(text[i+1:])
		}
		if text == "" {
			continue
		}
		fields := splitOperands(text)
		if len(fields) == 0 {
			continue // e.g. a line of bare commas
		}
		if fields[0] == ".equ" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: line %d: .equ NAME VALUE", ErrAsm, line)
			}
			name := fields[1]
			if _, dup := syms[name]; dup {
				return nil, fmt.Errorf("%w: line %d: symbol %q redefined", ErrAsm, line, name)
			}
			v, err := resolve(fields[2], syms)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrAsm, line, err)
			}
			syms[name] = v
			continue
		}
		raw = append(raw, rawLine{fields: fields, line: line})
		pc++
	}

	// Pass 2: encode.
	code := make([]Instr, 0, len(raw))
	for _, rl := range raw {
		ins, err := encode(rl.fields, rl.line, syms)
		if err != nil {
			return nil, err
		}
		code = append(code, ins)
	}
	return &Program{Code: code, Symbols: syms}, nil
}

// splitOperands splits "OP a, b, c" into fields, treating commas as spaces.
func splitOperands(text string) []string {
	return strings.Fields(strings.ReplaceAll(text, ",", " "))
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// resolve evaluates an immediate: a decimal integer or a defined symbol.
func resolve(tok string, syms map[string]int64) (int64, error) {
	if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
		return v, nil
	}
	if v, ok := syms[tok]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", tok)
}

func reg(tok string, line int) (int, error) {
	if len(tok) >= 2 && (tok[0] == 'r' || tok[0] == 'R') {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return n, nil
		}
	}
	return 0, fmt.Errorf("%w: line %d: bad register %q", ErrAsm, line, tok)
}

func encode(f []string, line int, syms map[string]int64) (Instr, error) {
	bad := func(format string, args ...any) (Instr, error) {
		return Instr{}, fmt.Errorf("%w: line %d: %s", ErrAsm, line, fmt.Sprintf(format, args...))
	}
	op, ok := opByName[strings.ToUpper(f[0])]
	if !ok {
		return bad("unknown mnemonic %q", f[0])
	}
	ins := Instr{Op: op, Line: line}
	need := func(n int) error {
		if len(f)-1 != n {
			return fmt.Errorf("%w: line %d: %s wants %d operands, got %d",
				ErrAsm, line, op, n, len(f)-1)
		}
		return nil
	}
	var err error
	switch op {
	case NOP, SYNC, HALT:
		if err = need(0); err != nil {
			return Instr{}, err
		}
	case LDI: // rd, imm
		if err = need(2); err != nil {
			return Instr{}, err
		}
		if ins.Rd, err = reg(f[1], line); err != nil {
			return Instr{}, err
		}
		if ins.Imm, err = resolve(f[2], syms); err != nil {
			return bad("%v", err)
		}
	case MOV, PID: // rd[, rs]
		if op == PID {
			if err = need(1); err != nil {
				return Instr{}, err
			}
			if ins.Rd, err = reg(f[1], line); err != nil {
				return Instr{}, err
			}
			break
		}
		if err = need(2); err != nil {
			return Instr{}, err
		}
		if ins.Rd, err = reg(f[1], line); err != nil {
			return Instr{}, err
		}
		if ins.Rs, err = reg(f[2], line); err != nil {
			return Instr{}, err
		}
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, OPX: // rd, rs, rt
		if err = need(3); err != nil {
			return Instr{}, err
		}
		if ins.Rd, err = reg(f[1], line); err != nil {
			return Instr{}, err
		}
		if ins.Rs, err = reg(f[2], line); err != nil {
			return Instr{}, err
		}
		if ins.Rt, err = reg(f[3], line); err != nil {
			return Instr{}, err
		}
	case ADDI, LD: // rd, rs, imm
		if err = need(3); err != nil {
			return Instr{}, err
		}
		if ins.Rd, err = reg(f[1], line); err != nil {
			return Instr{}, err
		}
		if ins.Rs, err = reg(f[2], line); err != nil {
			return Instr{}, err
		}
		if ins.Imm, err = resolve(f[3], syms); err != nil {
			return bad("%v", err)
		}
	case ST: // rs, rt, imm   (Mem[rt+imm] = rs)
		if err = need(3); err != nil {
			return Instr{}, err
		}
		if ins.Rs, err = reg(f[1], line); err != nil {
			return Instr{}, err
		}
		if ins.Rt, err = reg(f[2], line); err != nil {
			return Instr{}, err
		}
		if ins.Imm, err = resolve(f[3], syms); err != nil {
			return bad("%v", err)
		}
	case BEQ, BNE, BLT, BGE: // rs, rt, label
		if err = need(3); err != nil {
			return Instr{}, err
		}
		if ins.Rs, err = reg(f[1], line); err != nil {
			return Instr{}, err
		}
		if ins.Rt, err = reg(f[2], line); err != nil {
			return Instr{}, err
		}
		t, err := resolve(f[3], syms)
		if err != nil {
			return bad("%v", err)
		}
		ins.Target = int(t)
	case JMP: // label
		if err = need(1); err != nil {
			return Instr{}, err
		}
		t, err := resolve(f[1], syms)
		if err != nil {
			return bad("%v", err)
		}
		ins.Target = int(t)
	case FORK: // rs, label
		if err = need(2); err != nil {
			return Instr{}, err
		}
		if ins.Rs, err = reg(f[1], line); err != nil {
			return Instr{}, err
		}
		t, err := resolve(f[2], syms)
		if err != nil {
			return bad("%v", err)
		}
		ins.Target = int(t)
	default:
		return bad("unhandled op %v", op)
	}
	return ins, nil
}
