package simparc

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Disassemble renders a program back to readable assembly, one instruction
// per line with its index — the debugging companion to Assemble. Labels are
// reconstructed from the symbol table where they point into code.
func Disassemble(p *Program, w io.Writer) {
	// A symbol is treated as a label only when some instruction actually
	// branches/jumps/forks to it — data constants (.equ, extern bases) can
	// collide numerically with instruction indices otherwise.
	targets := make(map[int]bool)
	for _, ins := range p.Code {
		switch ins.Op {
		case BEQ, BNE, BLT, BGE, JMP, FORK:
			targets[ins.Target] = true
		}
	}
	targets[0] = true // entry point
	labels := make(map[int][]string)
	for name, v := range p.Symbols {
		if v >= 0 && v < int64(len(p.Code)) && targets[int(v)] {
			labels[int(v)] = append(labels[int(v)], name)
		}
	}
	target := func(pc int) string {
		if names, ok := labels[pc]; ok {
			sort.Strings(names)
			return names[0]
		}
		return fmt.Sprintf("@%d", pc)
	}
	for pc, ins := range p.Code {
		if names, ok := labels[pc]; ok {
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(w, "%s:\n", n)
			}
		}
		fmt.Fprintf(w, "  %3d  %s\n", pc, formatInstr(ins, target))
	}
}

func formatInstr(ins Instr, target func(pc int) string) string {
	r := func(n int) string { return fmt.Sprintf("r%d", n) }
	switch ins.Op {
	case NOP, SYNC, HALT:
		return ins.Op.String()
	case LDI:
		return fmt.Sprintf("LDI  %s, %d", r(ins.Rd), ins.Imm)
	case MOV:
		return fmt.Sprintf("MOV  %s, %s", r(ins.Rd), r(ins.Rs))
	case PID:
		return fmt.Sprintf("PID  %s", r(ins.Rd))
	case ADDI:
		return fmt.Sprintf("ADDI %s, %s, %d", r(ins.Rd), r(ins.Rs), ins.Imm)
	case LD:
		return fmt.Sprintf("LD   %s, %s, %d", r(ins.Rd), r(ins.Rs), ins.Imm)
	case ST:
		return fmt.Sprintf("ST   %s, %s, %d", r(ins.Rs), r(ins.Rt), ins.Imm)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%-4s %s, %s, %s", ins.Op, r(ins.Rs), r(ins.Rt), target(ins.Target))
	case JMP:
		return fmt.Sprintf("JMP  %s", target(ins.Target))
	case FORK:
		return fmt.Sprintf("FORK %s, %s", r(ins.Rs), target(ins.Target))
	default: // three-register ALU ops and OPX
		return fmt.Sprintf("%-4s %s, %s, %s", ins.Op, r(ins.Rd), r(ins.Rs), r(ins.Rt))
	}
}

// Profile renders the VM's per-opcode execution counts, largest first — the
// "which instructions dominate" view of a run.
func (vm *VM) Profile(w io.Writer) {
	type row struct {
		op    OpCode
		count int64
	}
	rows := make([]row, 0, len(vm.PerOp))
	for op, c := range vm.PerOp {
		rows = append(rows, row{op, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].op < rows[j].op
	})
	fmt.Fprintf(w, "cycles=%d instructions=%d max-active=%d\n", vm.Cycles, vm.Instrs, vm.MaxActive)
	for _, r := range rows {
		bar := strings.Repeat("#", int(40*r.count/max64(vm.Instrs, 1)))
		fmt.Fprintf(w, "  %-5s %10d  %s\n", r.op, r.count, bar)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
