// Package simparc is an instruction-level reconstruction of the SimParC
// simulator the paper measured on (reference [5]): a lock-step shared-memory
// multiprocessor executing a small RISC-like assembly language, with FORK
// for process creation (capped at P concurrently active processes, the
// paper's "forks only up to P processes at the same time" discipline) and
// SYNC as a whole-machine barrier.
//
// One machine cycle executes one instruction on every running processor (in
// processor-id order, which makes the simulation deterministic). The cycle
// counter is the paper's Y axis: "complexity in units of assembly
// instructions" of a P-processor lock-step execution. The VM also reports
// total executed instructions (work).
//
// The original SimParC is unpublished; DESIGN.md documents this substitution.
// What Fig. 3 needs from it — faithful instruction counting of the parallel
// OrdinaryIR program vs. the original loop — is preserved.
package simparc

import "fmt"

// OpCode enumerates the ISA.
type OpCode int

const (
	NOP  OpCode = iota // no operation
	LDI                // LDI rd, imm        rd ← imm
	MOV                // MOV rd, rs         rd ← rs
	ADD                // ADD rd, rs, rt     rd ← rs + rt
	SUB                // SUB rd, rs, rt     rd ← rs - rt
	MUL                // MUL rd, rs, rt     rd ← rs * rt
	DIV                // toward zero; DIV by 0 faults
	MOD                // MOD rd, rs, rt     rd ← rs mod rt
	AND                // AND rd, rs, rt     rd ← rs & rt
	OR                 // OR rd, rs, rt      rd ← rs | rt
	XOR                // XOR rd, rs, rt     rd ← rs ^ rt
	SHL                // SHL rd, rs, rt     rd ← rs << rt
	SHR                // SHR rd, rs, rt     rd ← rs >> rt
	ADDI               // ADDI rd, rs, imm   rd ← rs + imm
	LD                 // LD rd, rs, imm     rd ← Mem[rs+imm]
	ST                 // ST rs, rt, imm     Mem[rt+imm] ← rs
	BEQ                // BEQ rs, rt, label
	BNE                // BNE rs, rt, label
	BLT                // BLT rs, rt, label
	BGE                // BGE rs, rt, label
	JMP                // JMP label
	FORK               // FORK rs, label     spawn proc with r1 = rs at label
	PID                // PID rd             rd ← processor id
	OPX                // OPX rd, rs, rt     rd ← ⊗(rs, rt)  (configurable operation)
	SYNC               // barrier across all live processors
	HALT               // stop this processor
)

var opNames = map[OpCode]string{
	NOP: "NOP", LDI: "LDI", MOV: "MOV", ADD: "ADD", SUB: "SUB", MUL: "MUL",
	DIV: "DIV", MOD: "MOD", AND: "AND", OR: "OR", XOR: "XOR", SHL: "SHL",
	SHR: "SHR", ADDI: "ADDI", LD: "LD", ST: "ST", BEQ: "BEQ", BNE: "BNE",
	BLT: "BLT", BGE: "BGE", JMP: "JMP", FORK: "FORK", PID: "PID", OPX: "OPX",
	SYNC: "SYNC", HALT: "HALT",
}

var opByName = func() map[string]OpCode {
	m := make(map[string]OpCode, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// String returns the mnemonic (e.g. "ADDI") for disassembly listings.
func (o OpCode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op         OpCode
	Rd, Rs, Rt int
	Imm        int64
	// Target is the resolved branch/jump/fork destination (instruction
	// index).
	Target int
	// Line is the 1-based source line, for error messages.
	Line int
}

// NumRegs is the register file size; registers are named r0..r15.
// Convention in the shipped programs: r1 receives the FORK argument.
const NumRegs = 16
