package simparc

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
)

func mustRun(t *testing.T, src string, mem int, maxCycles int64) *VM {
	t.Helper()
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(p, mem)
	if err := vm.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestVMArithmetic(t *testing.T) {
	vm := mustRun(t, `
    LDI r1, 7
    LDI r2, 3
    ADD r3, r1, r2
    SUB r4, r1, r2
    MUL r5, r1, r2
    DIV r6, r1, r2
    MOD r7, r1, r2
    ST  r3, r0, 0
    ST  r4, r0, 1
    ST  r5, r0, 2
    ST  r6, r0, 3
    ST  r7, r0, 4
    HALT
`, 8, 1000)
	want := []int64{10, 4, 21, 2, 1}
	for i, w := range want {
		if vm.Mem[i] != w {
			t.Fatalf("Mem[%d] = %d, want %d", i, vm.Mem[i], w)
		}
	}
}

func TestVMBranchesAndLoop(t *testing.T) {
	// Sum 1..10 into Mem[0].
	vm := mustRun(t, `
    LDI r1, 0   ; sum
    LDI r2, 1   ; i
    LDI r3, 11
loop:
    BGE r2, r3, done
    ADD r1, r1, r2
    ADDI r2, r2, 1
    JMP loop
done:
    ST r1, r0, 0
    HALT
`, 2, 1000)
	if vm.Mem[0] != 55 {
		t.Fatalf("sum = %d, want 55", vm.Mem[0])
	}
}

func TestVMDivisionByZeroFaults(t *testing.T) {
	p, err := Assemble("LDI r1, 1\nLDI r2, 0\nDIV r3, r1, r2\nHALT\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(p, 1)
	if err := vm.Run(100); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
}

func TestVMMemoryBoundsFault(t *testing.T) {
	p, err := Assemble("LDI r1, 5\nST r1, r0, 99\nHALT\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(p, 4)
	if err := vm.Run(100); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
}

func TestVMCycleBudget(t *testing.T) {
	p, err := Assemble("spin:\nJMP spin\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(p, 1)
	if err := vm.Run(50); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want cycle-budget fault", err)
	}
	if vm.Cycles != 50 {
		t.Fatalf("Cycles = %d, want 50", vm.Cycles)
	}
}

func TestVMForkAndPID(t *testing.T) {
	// Master forks 4 children; child i stores 100+arg at Mem[arg].
	vm := mustRun(t, `
main:
    LDI r2, 0
    LDI r3, 4
mloop:
    BGE r2, r3, mdone
    FORK r2, child
    ADDI r2, r2, 1
    JMP mloop
mdone:
    HALT
child:
    LDI r4, 100
    ADD r4, r4, r1
    ST  r4, r1, 0
    HALT
`, 4, 1000)
	for i := int64(0); i < 4; i++ {
		if vm.Mem[i] != 100+i {
			t.Fatalf("Mem[%d] = %d, want %d", i, vm.Mem[i], 100+i)
		}
	}
	if vm.MaxActive < 2 {
		t.Fatalf("MaxActive = %d, want >= 2 (real concurrency)", vm.MaxActive)
	}
}

func TestVMForkCapQueuesPending(t *testing.T) {
	// Cap 2 (master + 1 child at a time): children run serially; results
	// must still all arrive.
	p, err := Assemble(`
main:
    LDI r2, 0
    LDI r3, 3
mloop:
    BGE r2, r3, mdone
    FORK r2, child
    ADDI r2, r2, 1
    JMP mloop
mdone:
    HALT
child:
    LDI r4, 1
    ST  r4, r1, 0
    HALT
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(p, 4)
	vm.Cap = 2
	if err := vm.Run(10000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if vm.Mem[i] != 1 {
			t.Fatalf("Mem[%d] = %d, want 1", i, vm.Mem[i])
		}
	}
	if vm.MaxActive > 2 {
		t.Fatalf("MaxActive = %d exceeds cap 2", vm.MaxActive)
	}
}

func TestVMSyncBarrier(t *testing.T) {
	// Two workers: each writes its slot, SYNCs, then reads the OTHER's
	// slot — only correct if SYNC is a true barrier.
	vm := mustRun(t, `
main:
    LDI r2, 0
    LDI r3, 2
mloop:
    BGE r2, r3, mdone
    FORK r2, worker
    ADDI r2, r2, 1
    JMP mloop
mdone:
    HALT
worker:
    ADDI r4, r1, 10     ; value 10+id
    ST   r4, r1, 0      ; Mem[id] = 10+id
    SYNC
    LDI  r5, 1
    SUB  r5, r5, r1     ; other = 1-id
    LD   r6, r5, 0      ; read other's slot
    ST   r6, r1, 2      ; Mem[id+2] = other's value
    HALT
`, 8, 10000)
	if vm.Mem[2] != 11 || vm.Mem[3] != 10 {
		t.Fatalf("Mem[2..3] = %v, want [11 10]", vm.Mem[2:4])
	}
}

func TestSeqIRProgramMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(20)
		perm := rng.Perm(m)
		n := rng.Intn(m)
		s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
		for i := 0; i < n; i++ {
			s.G[i] = perm[i]
			s.F[i] = rng.Intn(m)
		}
		init := make([]int64, m)
		for x := range init {
			init[x] = rng.Int63n(100)
		}
		want := core.RunSequential[int64](s, core.IntAdd{}, init)
		res, err := RunSeqIR(s, func(a, b int64) int64 { return a + b }, init, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if res.Values[x] != want[x] {
				t.Fatalf("trial %d cell %d: got %d, want %d", trial, x, res.Values[x], want[x])
			}
		}
	}
}

func TestParallelOIRProgramMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	mod := int64(1_000_003)
	opx := func(a, b int64) int64 { return a % mod * (b % mod) % mod }
	op := core.MulMod{M: mod}
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.Intn(40)
		perm := rng.Perm(m)
		n := rng.Intn(m)
		s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
		for i := 0; i < n; i++ {
			s.G[i] = perm[i]
			s.F[i] = rng.Intn(m)
		}
		init := make([]int64, m)
		for x := range init {
			init[x] = rng.Int63n(mod-2) + 2
		}
		want := core.RunSequential[int64](s, op, init)
		for _, p := range []int{1, 3, 8} {
			res, err := RunParallelOIR(s, opx, init, p, 1<<24)
			if err != nil {
				t.Fatal(err)
			}
			for x := range want {
				if res.Values[x] != want[x] {
					t.Fatalf("trial %d P=%d cell %d: got %d, want %d\nG=%v F=%v",
						trial, p, x, res.Values[x], want[x], s.G, s.F)
				}
			}
		}
	}
}

func TestParallelOIRProgramChainAndScaling(t *testing.T) {
	n := 1024
	s := paperfig.Fig2System(n)
	init := make([]int64, n)
	for x := range init {
		init[x] = 1
	}
	add := func(a, b int64) int64 { return a + b }
	seqRes, err := RunSeqIR(s, add, init, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64
	for _, p := range []int{1, 2, 4, 8} {
		res, err := RunParallelOIR(s, add, init, p, 1<<26)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if res.Values[k] != int64(k+1) {
				t.Fatalf("P=%d cell %d: got %d, want %d", p, k, res.Values[k], k+1)
			}
		}
		if p > 1 {
			ratio := float64(prev) / float64(res.Cycles)
			if ratio < 1.6 || ratio > 2.4 {
				t.Errorf("P=%d: cycle ratio %.2f, want ≈ 2", p, ratio)
			}
		}
		prev = res.Cycles
	}
	// Many processors must beat the sequential program (the Fig. 3
	// crossover); P=1 must be markedly slower than sequential.
	res256, err := RunParallelOIR(s, add, init, 256, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	if res256.Cycles >= seqRes.Cycles {
		t.Errorf("P=256 cycles %d did not beat sequential %d", res256.Cycles, seqRes.Cycles)
	}
	res1, err := RunParallelOIR(s, add, init, 1, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles < 5*seqRes.Cycles {
		t.Errorf("P=1 cycles %d vs sequential %d: expected log-n factor", res1.Cycles, seqRes.Cycles)
	}
}

func TestVMDeterminism(t *testing.T) {
	n := 256
	s := paperfig.Fig2System(n)
	init := make([]int64, n)
	add := func(a, b int64) int64 { return a + b }
	r1, err := RunParallelOIR(s, add, init, 7, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunParallelOIR(s, add, init, 7, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Instrs != r2.Instrs {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", r1.Cycles, r1.Instrs, r2.Cycles, r2.Instrs)
	}
}

func TestVMRunCtx(t *testing.T) {
	// An infinite loop: only cancellation can stop it before the budget.
	const spin = `
loop:
    ADDI r1, r1, 1
    JMP loop
`
	p, err := Assemble(spin, nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("pre-cancelled", func(t *testing.T) {
		vm := NewVM(p, 4)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := vm.RunCtx(ctx, 1<<30); !errors.Is(err, context.Canceled) {
			t.Fatalf("RunCtx = %v, want context.Canceled", err)
		}
		if vm.Cycles != 0 {
			t.Fatalf("Cycles = %d, want 0 (cancelled before the first cycle)", vm.Cycles)
		}
	})

	t.Run("deadline mid-run", func(t *testing.T) {
		vm := NewVM(p, 4)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if err := vm.RunCtx(ctx, 1<<62); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("RunCtx = %v, want context.DeadlineExceeded", err)
		}
		// State must be intact up to the stopping cycle: the loop body ran
		// once per cycle, so the profile and cycle count agree.
		if vm.Cycles == 0 {
			t.Fatal("Cycles = 0: deadline fired before any progress")
		}
		if vm.Instrs != vm.Cycles {
			t.Fatalf("Instrs = %d, Cycles = %d: single-proc loop should execute one instruction per cycle",
				vm.Instrs, vm.Cycles)
		}
	})

	t.Run("background completes", func(t *testing.T) {
		// Run delegates to RunCtx(context.Background()): a terminating
		// program still halts normally.
		vm := mustRun(t, "LDI r1, 1\nHALT", 4, 100)
		if vm.Cycles == 0 {
			t.Fatal("no cycles executed")
		}
	})
}
