package simparc

import (
	"fmt"
)

// ReduceSource is a third validated assembly program: parallel tree
// reduction of A[0..N-1] under OPX into A[0], the textbook O(log n) PRAM
// combine. It exercises FORK/SYNC/chunking the same way the OrdinaryIR
// program does and doubles as a cross-check of the VM's barrier semantics
// on a different communication pattern (strided pairs instead of pointer
// chains). Host symbols: N, NPROC, A.
const ReduceSource = `
; Parallel tree reduction: for s = 1, 2, 4, ...: A[k] := OPX(A[k], A[k+s])
; for all k that are multiples of 2s with k+s < N; SYNC between strides.
main:
    LDI  r2, 0
    LDI  r3, NPROC
mloop:
    BGE  r2, r3, mdone
    FORK r2, worker
    ADDI r2, r2, 1
    JMP  mloop
mdone:
    HALT

worker:
    LDI  r2, 1            ; stride s
    LDI  r5, 2
wloop:
    LDI  r3, N
    BGE  r2, r3, wdone
    MUL  r6, r2, r5       ; 2s
    ; slots T = (N-1)/(2s) + 1
    ADDI r7, r3, -1
    DIV  r7, r7, r6
    ADDI r7, r7, 1
    ; chunk [lo, hi) of the T slots
    LDI  r0, NPROC
    MUL  r8, r1, r7
    DIV  r8, r8, r0
    ADDI r9, r1, 1
    MUL  r9, r9, r7
    DIV  r9, r9, r0
    MOV  r10, r8          ; j = lo
jloop:
    BGE  r10, r9, jdone
    MUL  r11, r10, r6     ; k = j*2s
    ADD  r12, r11, r2     ; k2 = k + s
    BGE  r12, r3, jnext   ; no partner
    LDI  r0, A
    ADD  r13, r0, r11
    LD   r14, r13, 0      ; A[k]
    ADD  r0, r0, r12
    LD   r0, r0, 0        ; A[k2]
    OPX  r14, r14, r0
    ST   r14, r13, 0
jnext:
    ADDI r10, r10, 1
    JMP  jloop
jdone:
    SYNC
    MUL  r2, r2, r5       ; s *= 2
    JMP  wloop
wdone:
    HALT
`

// RunReduce assembles and executes the tree-reduction program; the result
// is the OPX-fold of init (grouping is the balanced tree's, so exact only
// for associative opx). Returns the reduced value and run statistics.
func RunReduce(init []int64, opx func(a, b int64) int64, nproc int, maxCycles int64) (int64, *RunResult, error) {
	n := len(init)
	if n == 0 {
		return 0, nil, fmt.Errorf("simparc: RunReduce needs a non-empty array")
	}
	if nproc < 1 {
		return 0, nil, fmt.Errorf("simparc: nproc must be >= 1")
	}
	prog, err := Assemble(ReduceSource, map[string]int64{
		"N": int64(n), "NPROC": int64(nproc), "A": 0,
	})
	if err != nil {
		return 0, nil, err
	}
	vm := NewVM(prog, n)
	vm.OpX = opx
	copy(vm.Mem, init)
	if err := vm.Run(maxCycles); err != nil {
		return 0, nil, err
	}
	out := make([]int64, n)
	copy(out, vm.Mem)
	return vm.Mem[0], &RunResult{
		Values: out, Cycles: vm.Cycles, Instrs: vm.Instrs, MaxActive: vm.MaxActive,
	}, nil
}
