package simparc

import (
	"fmt"
	"math/bits"
)

// AffineScanSource demonstrates the paper's §3 idea at the assembly level:
// the linear recurrence X[i] = (A[i]·X[i-1] + B[i]) mod P is solved in
// O(log n) lock-step rounds by composing the affine maps φ_i = (A[i], B[i])
// with a Kogge–Stone prefix — map composition is the 2-word special case of
// the Möbius matrix product (C = 0, D = 1), with all arithmetic mod P so it
// fits the integer ISA. After the prefix, X[i] = (a_pref[i]·x0 + b_pref[i])
// mod P in one more parallel phase.
//
// Host symbols: N (number of maps), NPROC, ROUNDS, P (modulus), X0,
// and array bases SA, SB (source maps), DA, DB (destination buffers),
// OUT (results).
const AffineScanSource = `
; Kogge–Stone prefix over affine maps (a,b) mod P, then application to X0.
main:
    LDI  r2, 0
    LDI  r3, NPROC
mloop:
    BGE  r2, r3, mdone
    FORK r2, worker
    ADDI r2, r2, 1
    JMP  mloop
mdone:
    HALT

worker:
    LDI  r2, N
    LDI  r3, NPROC
    MUL  r4, r1, r2
    DIV  r4, r4, r3       ; lo
    ADDI r5, r1, 1
    MUL  r5, r5, r2
    DIV  r5, r5, r3       ; hi

    LDI  r6, 1            ; stride
    LDI  r7, SA           ; src a base
    LDI  r8, DA           ; dst a base
    LDI  r9, 0            ; round counter
wloop:
    LDI  r0, ROUNDS
    BGE  r9, r0, wapply
    MOV  r10, r4          ; i = lo
iloop:
    BGE  r10, r5, idone
    ADD  r11, r7, r10
    LD   r12, r11, 0      ; a[i]        (SB is at SA+N; DB at DA+N)
    LDI  r0, N
    ADD  r11, r11, r0
    LD   r13, r11, 0      ; b[i]
    BLT  r10, r6, istore  ; i < stride: copy through
    SUB  r11, r10, r6
    ADD  r11, r7, r11
    LD   r14, r11, 0      ; a[i-s]
    LDI  r0, N
    ADD  r11, r11, r0
    LD   r15, r11, 0      ; b[i-s]
    ; compose: a' = a[i]*a[i-s] mod P ; b' = (a[i]*b[i-s] + b[i]) mod P
    LDI  r0, P
    MUL  r15, r12, r15
    ADD  r15, r15, r13
    MOD  r15, r15, r0     ; b'
    MUL  r12, r12, r14
    MOD  r12, r12, r0     ; a'
    MOV  r13, r15
istore:
    ADD  r11, r8, r10
    ST   r12, r11, 0      ; dst a[i]
    LDI  r0, N
    ADD  r11, r11, r0
    ST   r13, r11, 0      ; dst b[i]
    ADDI r10, r10, 1
    JMP  iloop
idone:
    SYNC
    MOV  r0, r7           ; swap src/dst bases
    MOV  r7, r8
    MOV  r8, r0
    ADD  r6, r6, r6       ; stride *= 2
    ADDI r9, r9, 1
    JMP  wloop
wapply:
    ; X[i] = (a_pref[i]*X0 + b_pref[i]) mod P, from the live src bank r7.
    MOV  r10, r4
aloop:
    BGE  r10, r5, wdone
    ADD  r11, r7, r10
    LD   r12, r11, 0      ; a_pref
    LDI  r0, N
    ADD  r11, r11, r0
    LD   r13, r11, 0      ; b_pref
    LDI  r14, X0
    MUL  r12, r12, r14
    ADD  r12, r12, r13
    LDI  r0, P
    MOD  r12, r12, r0
    LDI  r11, OUT
    ADD  r11, r11, r10
    ST   r12, r11, 0
    ADDI r10, r10, 1
    JMP  aloop
wdone:
    HALT
`

// RunAffineScan assembles and executes the affine-scan program, returning
// X[0..n-1] with X[i] = (a[i]·X[i-1] + b[i]) mod p and X[-1] = x0 (i.e.
// a[0], b[0] produce X[0] from x0). Coefficients must be in [0, p).
func RunAffineScan(a, b []int64, x0, p int64, nproc int, maxCycles int64) ([]int64, *RunResult, error) {
	n := len(a)
	if n == 0 {
		return nil, &RunResult{}, nil
	}
	if len(b) != n {
		return nil, nil, fmt.Errorf("simparc: len(a) != len(b)")
	}
	if nproc < 1 {
		return nil, nil, fmt.Errorf("simparc: nproc must be >= 1")
	}
	rounds := 0
	if n > 1 {
		rounds = bits.Len(uint(n - 1))
	}
	// Layout: SA [0,n), SB [n,2n), DA [2n,3n), DB [3n,4n), OUT [4n,5n).
	baseSA, baseDA, baseOut := 0, 2*n, 4*n
	prog, err := Assemble(AffineScanSource, map[string]int64{
		"N": int64(n), "NPROC": int64(nproc), "ROUNDS": int64(rounds),
		"P": p, "X0": x0 % p,
		"SA": int64(baseSA), "DA": int64(baseDA), "OUT": int64(baseOut),
	})
	if err != nil {
		return nil, nil, err
	}
	vm := NewVM(prog, 5*n)
	copy(vm.Mem[baseSA:baseSA+n], a)
	copy(vm.Mem[baseSA+n:baseSA+2*n], b)
	copy(vm.Mem[baseDA:baseDA+n], a)
	copy(vm.Mem[baseDA+n:baseDA+2*n], b)
	if err := vm.Run(maxCycles); err != nil {
		return nil, nil, err
	}
	out := make([]int64, n)
	copy(out, vm.Mem[baseOut:baseOut+n])
	return out, &RunResult{
		Values: out, Cycles: vm.Cycles, Instrs: vm.Instrs,
		MaxActive: vm.MaxActive, Rounds: rounds,
	}, nil
}
