package simparc

import (
	"context"
	"errors"
	"fmt"
)

// procState is a processor's scheduling state.
type procState int

const (
	running procState = iota
	waiting           // blocked at SYNC
	halted
)

type proc struct {
	id    int
	pc    int
	regs  [NumRegs]int64
	state procState
}

// ErrFault wraps runtime faults (bad memory access, division by zero, pc out
// of range, deadlock, cycle budget exceeded).
var ErrFault = errors.New("simparc: fault")

// VM is the lock-step multiprocessor.
type VM struct {
	// Mem is the shared data memory (Harvard layout: code is separate).
	Mem []int64
	// OpX is the ⊗ bound to the OPX instruction.
	OpX func(a, b int64) int64
	// Cap bounds concurrently active (started, unhalted) processors;
	// 0 means unlimited. FORKs beyond the cap queue FIFO and start as
	// active processors halt.
	Cap int

	prog    *Program
	procs   []*proc
	pending []*proc
	nextID  int

	// Cycles is the lock-step cycle count — the paper's time axis.
	Cycles int64
	// Instrs is the total executed instruction count (work).
	Instrs int64
	// MaxActive is the high-water mark of simultaneously active processors.
	MaxActive int
	// PerOp counts executed instructions by opcode (profiling aid).
	PerOp map[OpCode]int64
}

// NewVM creates a VM for prog with the given data memory size. Processor 0
// starts at instruction 0.
func NewVM(prog *Program, memWords int) *VM {
	vm := &VM{
		Mem:   make([]int64, memWords),
		OpX:   func(a, b int64) int64 { return a + b },
		prog:  prog,
		PerOp: make(map[OpCode]int64),
	}
	vm.procs = []*proc{{id: 0, pc: 0, state: running}}
	vm.nextID = 1
	return vm
}

func (vm *VM) activeCount() int {
	n := 0
	for _, p := range vm.procs {
		if p.state != halted {
			n++
		}
	}
	return n
}

// Run executes until every processor has halted, or maxCycles elapse, or a
// fault occurs.
func (vm *VM) Run(maxCycles int64) error {
	return vm.RunCtx(context.Background(), maxCycles)
}

// ctxCheckInterval is how many lock-step cycles RunCtx executes between
// cancellation checks — frequent enough that interrupts feel immediate,
// rare enough that the check never shows up in a profile.
const ctxCheckInterval = 4096

// RunCtx is Run bounded by ctx: cancellation is observed between lock-step
// cycles and returns ctx.Err() with the VM state (Cycles, Mem, profile)
// intact up to the cycle where it stopped.
func (vm *VM) RunCtx(ctx context.Context, maxCycles int64) error {
	for {
		if vm.Cycles%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// Admit pending processors up to the cap.
		for len(vm.pending) > 0 && (vm.Cap <= 0 || vm.activeCount() < vm.Cap) {
			vm.procs = append(vm.procs, vm.pending[0])
			vm.pending = vm.pending[1:]
		}
		if a := vm.activeCount(); a > vm.MaxActive {
			vm.MaxActive = a
		}

		anyRunning := false
		for _, p := range vm.procs {
			if p.state == running {
				anyRunning = true
				break
			}
		}
		if !anyRunning {
			// Barrier release, completion, or deadlock.
			nWaiting := 0
			for _, p := range vm.procs {
				if p.state == waiting {
					nWaiting++
				}
			}
			if nWaiting > 0 {
				for _, p := range vm.procs {
					if p.state == waiting {
						p.state = running
					}
				}
				continue
			}
			if len(vm.pending) > 0 {
				return fmt.Errorf("%w: deadlock: %d pending processors but none can start",
					ErrFault, len(vm.pending))
			}
			return nil // all halted
		}

		if vm.Cycles >= maxCycles {
			return fmt.Errorf("%w: cycle budget %d exceeded", ErrFault, maxCycles)
		}
		vm.Cycles++

		// One lock-step cycle: every running processor executes one
		// instruction, in id order (deterministic). FORKed children join
		// after the cycle.
		snapshot := vm.procs
		var born []*proc
		for _, p := range snapshot {
			if p.state != running {
				continue
			}
			child, err := vm.step(p)
			if err != nil {
				return err
			}
			if child != nil {
				born = append(born, child)
			}
		}
		for _, c := range born {
			if vm.Cap <= 0 || vm.activeCount() < vm.Cap {
				vm.procs = append(vm.procs, c)
			} else {
				vm.pending = append(vm.pending, c)
			}
		}
	}
}

// step executes one instruction on p; it returns a child processor if the
// instruction was a successful FORK.
func (vm *VM) step(p *proc) (*proc, error) {
	if p.pc < 0 || p.pc >= len(vm.prog.Code) {
		return nil, fmt.Errorf("%w: proc %d: pc %d out of range", ErrFault, p.id, p.pc)
	}
	ins := vm.prog.Code[p.pc]
	vm.Instrs++
	vm.PerOp[ins.Op]++
	next := p.pc + 1

	load := func(addr int64) (int64, error) {
		if addr < 0 || addr >= int64(len(vm.Mem)) {
			return 0, fmt.Errorf("%w: proc %d line %d: load address %d out of range",
				ErrFault, p.id, ins.Line, addr)
		}
		return vm.Mem[addr], nil
	}
	store := func(addr, v int64) error {
		if addr < 0 || addr >= int64(len(vm.Mem)) {
			return fmt.Errorf("%w: proc %d line %d: store address %d out of range",
				ErrFault, p.id, ins.Line, addr)
		}
		vm.Mem[addr] = v
		return nil
	}

	var child *proc
	switch ins.Op {
	case NOP:
	case LDI:
		p.regs[ins.Rd] = ins.Imm
	case MOV:
		p.regs[ins.Rd] = p.regs[ins.Rs]
	case ADD:
		p.regs[ins.Rd] = p.regs[ins.Rs] + p.regs[ins.Rt]
	case SUB:
		p.regs[ins.Rd] = p.regs[ins.Rs] - p.regs[ins.Rt]
	case MUL:
		p.regs[ins.Rd] = p.regs[ins.Rs] * p.regs[ins.Rt]
	case DIV:
		if p.regs[ins.Rt] == 0 {
			return nil, fmt.Errorf("%w: proc %d line %d: division by zero", ErrFault, p.id, ins.Line)
		}
		p.regs[ins.Rd] = p.regs[ins.Rs] / p.regs[ins.Rt]
	case MOD:
		if p.regs[ins.Rt] == 0 {
			return nil, fmt.Errorf("%w: proc %d line %d: modulo by zero", ErrFault, p.id, ins.Line)
		}
		p.regs[ins.Rd] = p.regs[ins.Rs] % p.regs[ins.Rt]
	case AND:
		p.regs[ins.Rd] = p.regs[ins.Rs] & p.regs[ins.Rt]
	case OR:
		p.regs[ins.Rd] = p.regs[ins.Rs] | p.regs[ins.Rt]
	case XOR:
		p.regs[ins.Rd] = p.regs[ins.Rs] ^ p.regs[ins.Rt]
	case SHL:
		p.regs[ins.Rd] = p.regs[ins.Rs] << uint(p.regs[ins.Rt]&63)
	case SHR:
		p.regs[ins.Rd] = p.regs[ins.Rs] >> uint(p.regs[ins.Rt]&63)
	case ADDI:
		p.regs[ins.Rd] = p.regs[ins.Rs] + ins.Imm
	case LD:
		v, err := load(p.regs[ins.Rs] + ins.Imm)
		if err != nil {
			return nil, err
		}
		p.regs[ins.Rd] = v
	case ST:
		if err := store(p.regs[ins.Rt]+ins.Imm, p.regs[ins.Rs]); err != nil {
			return nil, err
		}
	case BEQ:
		if p.regs[ins.Rs] == p.regs[ins.Rt] {
			next = ins.Target
		}
	case BNE:
		if p.regs[ins.Rs] != p.regs[ins.Rt] {
			next = ins.Target
		}
	case BLT:
		if p.regs[ins.Rs] < p.regs[ins.Rt] {
			next = ins.Target
		}
	case BGE:
		if p.regs[ins.Rs] >= p.regs[ins.Rt] {
			next = ins.Target
		}
	case JMP:
		next = ins.Target
	case FORK:
		child = &proc{id: vm.nextID, pc: ins.Target, state: running}
		vm.nextID++
		child.regs[1] = p.regs[ins.Rs]
	case PID:
		p.regs[ins.Rd] = int64(p.id)
	case OPX:
		p.regs[ins.Rd] = vm.OpX(p.regs[ins.Rs], p.regs[ins.Rt])
	case SYNC:
		p.state = waiting
	case HALT:
		p.state = halted
	default:
		return nil, fmt.Errorf("%w: proc %d line %d: bad opcode %v", ErrFault, p.id, ins.Line, ins.Op)
	}
	p.pc = next
	return child, nil
}
