package simparc

import (
	"errors"
	"strings"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	src := `
; a tiny program
.equ BASE 100
start:
    LDI r1, 5
    LDI r2, BASE
    ADD r3, r1, r2
    ST  r3, r2, 7
    HALT
`
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 5 {
		t.Fatalf("code len %d, want 5", len(p.Code))
	}
	if p.Symbols["BASE"] != 100 || p.Symbols["start"] != 0 {
		t.Fatalf("symbols: %v", p.Symbols)
	}
	if p.Code[1].Op != LDI || p.Code[1].Imm != 100 {
		t.Fatalf("LDI with symbol: %+v", p.Code[1])
	}
	if p.Code[3].Op != ST || p.Code[3].Imm != 7 {
		t.Fatalf("ST: %+v", p.Code[3])
	}
}

func TestAssembleLabelsResolveForward(t *testing.T) {
	src := `
    JMP end
    NOP
end:
    HALT
`
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target != 2 {
		t.Fatalf("JMP target = %d, want 2", p.Code[0].Target)
	}
}

func TestAssembleExternSymbols(t *testing.T) {
	p, err := Assemble("LDI r1, N\nHALT\n", map[string]int64{"N": 42})
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 42 {
		t.Fatalf("Imm = %d, want 42", p.Code[0].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown mnemonic", "FROB r1, r2\n"},
		{"undefined symbol", "LDI r1, NOWHERE\n"},
		{"bad register", "LDI r99, 5\n"},
		{"wrong arity", "ADD r1, r2\n"},
		{"duplicate label", "a:\nNOP\na:\nHALT\n"},
		{"duplicate equ", ".equ X 1\n.equ X 2\n"},
		{"bad label chars", "9bad:\nHALT\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src, nil)
			if !errors.Is(err, ErrAsm) {
				t.Fatalf("err = %v, want ErrAsm", err)
			}
		})
	}
}

func TestAssembleCommentsAndCommas(t *testing.T) {
	src := "LDI r1, 3 ; set r1\n   ; full comment line\nADD r2 , r1 , r1\nHALT"
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 3 {
		t.Fatalf("code len = %d, want 3", len(p.Code))
	}
}

func TestAssembleShippedProgramsParse(t *testing.T) {
	// Both shipped programs must assemble against dummy symbols.
	syms := map[string]int64{}
	for _, s := range strings.Fields("NITER A G F NPROC K ROUNDS V N V2 N2 NEXT INITF CELLS") {
		syms[s] = 1
	}
	if _, err := Assemble(SeqIRSource, syms); err != nil {
		t.Fatalf("SeqIRSource: %v", err)
	}
	if _, err := Assemble(ParallelOIRSource, syms); err != nil {
		t.Fatalf("ParallelOIRSource: %v", err)
	}
}

func TestAssembleCommaOnlyLine(t *testing.T) {
	// Regression: a line reducing to zero fields (bare commas) used to
	// panic the assembler (found by FuzzAssemble).
	p, err := Assemble(",\nHALT\n, ,\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 1 || p.Code[0].Op != HALT {
		t.Fatalf("code = %v", p.Code)
	}
}
