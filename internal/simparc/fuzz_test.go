package simparc

import (
	"strings"
	"testing"
)

// FuzzAssemble: the assembler must never panic — every input yields either a
// program or a wrapped ErrAsm.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"HALT",
		"LDI r1, 5\nHALT",
		SeqIRSource,
		ReduceSource,
		"label: label2: HALT",
		".equ A 1\n.equ B A\nLDI r1, B\nHALT",
		"FORK r1, nowhere",
		"LDI r1",
		"ST r1, r2, 999999999999999999999",
		strings.Repeat("NOP\n", 100),
		"\x00\x01\x02",
		"BGE r1, r2, 5",
		"; only a comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src, map[string]int64{
			"NITER": 1, "A": 0, "G": 1, "F": 2, "NPROC": 1, "K": 1,
			"ROUNDS": 1, "V": 0, "N": 0, "V2": 0, "N2": 0,
			"NEXT": 0, "INITF": 0, "CELLS": 0,
		})
		if err != nil {
			return
		}
		// Whatever assembles must disassemble without panicking...
		var sb strings.Builder
		Disassemble(p, &sb)
		// ...and run (bounded) without panicking — faults are fine.
		vm := NewVM(p, 64)
		_ = vm.Run(10_000)
	})
}
