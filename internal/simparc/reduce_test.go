package simparc

import (
	"math/rand"
	"strings"
	"testing"
)

func TestReduceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	add := func(a, b int64) int64 { return a + b }
	for _, n := range []int{1, 2, 3, 7, 8, 100, 1000} {
		init := make([]int64, n)
		var want int64
		for i := range init {
			init[i] = rng.Int63n(1000)
			want += init[i]
		}
		for _, p := range []int{1, 4, 16} {
			got, _, err := RunReduce(init, add, p, 1<<24)
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			if got != want {
				t.Fatalf("n=%d p=%d: got %d, want %d", n, p, got, want)
			}
		}
	}
}

func TestReduceMax(t *testing.T) {
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	init := []int64{3, 9, 1, 42, 7, 5, 12, 8, 40}
	got, res, err := RunReduce(init, maxOp, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("max = %d, want 42", got)
	}
	if res.MaxActive < 2 {
		t.Fatalf("MaxActive = %d, want concurrent workers", res.MaxActive)
	}
}

func TestReduceLogRounds(t *testing.T) {
	// With abundant processors the reduction must behave sublinearly in n:
	// at fixed P = 512 the serial fork prologue (Θ(P)) and the Θ(log n)
	// round structure dominate, so doubling n must NOT double the cycles.
	add := func(a, b int64) int64 { return a + b }
	init1 := make([]int64, 1024)
	init2 := make([]int64, 2048)
	_, r1, err := RunReduce(init1, add, 512, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := RunReduce(init2, add, 512, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	if growth := float64(r2.Cycles) / float64(r1.Cycles); growth > 1.6 {
		t.Fatalf("cycles grew %.2fx when doubling n at fixed large P; want sublinear: %d -> %d",
			growth, r1.Cycles, r2.Cycles)
	}
	// And a sequential-P run must be Θ(n): much more than the parallel run.
	_, rSeq, err := RunReduce(init2, add, 1, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	if rSeq.Cycles < 4*r2.Cycles {
		t.Fatalf("P=1 cycles %d vs P=512 cycles %d: expected clear parallel win", rSeq.Cycles, r2.Cycles)
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	prog, err := Assemble(ReduceSource, map[string]int64{"N": 8, "NPROC": 2, "A": 0})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Disassemble(prog, &sb)
	out := sb.String()
	for _, want := range []string{"worker:", "FORK", "OPX", "SYNC", "HALT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Every instruction index must appear.
	if !strings.Contains(out, "  0  ") {
		t.Fatal("missing instruction index 0")
	}
}

func TestProfileOutput(t *testing.T) {
	init := make([]int64, 64)
	add := func(a, b int64) int64 { return a + b }
	prog, err := Assemble(ReduceSource, map[string]int64{"N": 64, "NPROC": 4, "A": 0})
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, 64)
	vm.OpX = add
	copy(vm.Mem, init)
	if err := vm.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	vm.Profile(&sb)
	out := sb.String()
	if !strings.Contains(out, "cycles=") || !strings.Contains(out, "OPX") {
		t.Fatalf("profile output unexpected:\n%s", out)
	}
}
