package moebius

import (
	"context"
	"fmt"

	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
)

// SolveBatch solves independent Möbius systems concurrently — the shape of
// Livermore 23's outer loop, where each column j is its own chain system.
// Each system is paired with its own initial array; results are returned in
// order. Systems are solved with Options.Procs goroutines each, and up to
// Options.Procs systems run concurrently (the two levels share the machine
// sensibly because parallel.For clamps to GOMAXPROCS).
func SolveBatch(systems []*MoebiusSystem, x0s [][]float64, opt ordinary.Options) ([][]float64, error) {
	if len(systems) != len(x0s) {
		return nil, fmt.Errorf("moebius: SolveBatch: %d systems but %d initial arrays",
			len(systems), len(x0s))
	}
	out := make([][]float64, len(systems))
	errs := make([]error, len(systems))
	parallel.ForEach(len(systems), opt.Procs, func(k int) {
		out[k], errs[k] = systems[k].Solve(x0s[k], opt)
	})
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("moebius: SolveBatch system %d: %w", k, err)
		}
	}
	return out, nil
}

// SolveBatchCtx is the hardened SolveBatch: each system is solved through
// SolveCtx (guarded, cancellable, panic-safe), the sweep stops at the first
// failing system, and cancellation of ctx stops scheduling further systems.
func SolveBatchCtx(ctx context.Context, systems []*MoebiusSystem, x0s [][]float64, opt ordinary.Options) ([][]float64, error) {
	if len(systems) != len(x0s) {
		return nil, fmt.Errorf("moebius: SolveBatchCtx: %d systems but %d initial arrays",
			len(systems), len(x0s))
	}
	out := make([][]float64, len(systems))
	err := parallel.ForEachCtx(ctx, len(systems), opt.Procs, func(k int) error {
		res, err := systems[k].SolveCtx(ctx, x0s[k], opt)
		if err != nil {
			return fmt.Errorf("moebius: SolveBatchCtx system %d: %w", k, err)
		}
		out[k] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
