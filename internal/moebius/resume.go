package moebius

import (
	"fmt"
	"math"
)

// Incremental (streaming) extension of a Möbius/linear solve. A Resume holds
// two materializations of the solved prefix:
//
//   - the value array itself, advanced one iteration at a time exactly as
//     RunSequential would (so values after any append are bit-identical to
//     the sequential oracle over the concatenated system), and
//   - per written cell, the running composed 2×2 map from its chain root's
//     initial value to its value — the same left-fold prefix product the
//     parallel solver computes by pointer jumping, folded in O(1) per
//     appended coefficient row.
//
// Appends are O(1) each because distinct g makes old values final: a new
// iteration reads some cell's settled value and writes a fresh cell, so the
// prefix never needs recomputation. The composed maps are what a session
// snapshot ships when a cluster re-homes a session: they summarize the
// whole prefix in O(m) space regardless of how many rows were folded.
type Resume struct {
	m int
	// cur is the live value array, length m.
	cur []float64
	// comp[x] is the composed Möbius map for written cell x (prefix product
	// of its chain's matrices, chain order); identity for unwritten cells.
	comp []Mat2
	// root[x] is the chain-root cell whose *initial* value comp[x] applies
	// to; -1 for unwritten cells.
	root []int
	// written[x] reports whether some iteration wrote x.
	written []bool
	// n counts folded iterations (prefix + appends).
	n int
}

// NewResume builds resume state from the initial array x0 (copied).
// Fold the prefix system in with Append.
func NewResume(m int, x0 []float64) (*Resume, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: M = %d", ErrBadSystem, m)
	}
	if len(x0) != m {
		return nil, fmt.Errorf("%w: len(x0) = %d, want M = %d", ErrInitLen, len(x0), m)
	}
	r := &Resume{
		m:       m,
		cur:     append([]float64(nil), x0...),
		comp:    make([]Mat2, m),
		root:    make([]int, m),
		written: make([]bool, m),
	}
	for x := range r.comp {
		r.comp[x] = Identity()
		r.root[x] = -1
	}
	for x, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: x0[%d] = %v", ErrNonFinite, x, v)
		}
	}
	return r, nil
}

// Append folds k more rows X[g[i]] := (a[i]·X[f[i]]+b[i])/(c[i]·X[f[i]]+d[i])
// into the state, in order. Nil c selects c = 0 and nil d selects d = 1 (the
// affine forms). Every g[i] must be previously unwritten; coefficients must
// be finite; a row whose division hits zero surfaces as ErrNonFinite with
// the offending cell named. On error the state is rolled back untouched.
func (r *Resume) Append(g, f []int, a, b, c, d []float64) error {
	k := len(g)
	if len(f) != k || len(a) != k || len(b) != k ||
		(c != nil && len(c) != k) || (d != nil && len(d) != k) {
		return fmt.Errorf("%w: append map/coefficient lengths disagree", ErrBadSystem)
	}
	row := func(i int) Mat2 {
		mt := Mat2{A: a[i], B: b[i], C: 0, D: 1}
		if c != nil {
			mt.C = c[i]
		}
		if d != nil {
			mt.D = d[i]
		}
		return mt
	}
	for i := 0; i < k; i++ {
		if g[i] < 0 || g[i] >= r.m || f[i] < 0 || f[i] >= r.m {
			r.rollback(g[:i])
			return fmt.Errorf("%w: append row %d indexes out of range [0,%d)", ErrBadSystem, i, r.m)
		}
		if r.written[g[i]] {
			r.rollback(g[:i])
			return fmt.Errorf("%w: g not distinct (cell %d)", ErrBadSystem, g[i])
		}
		mt := row(i)
		for _, v := range [4]float64{mt.A, mt.B, mt.C, mt.D} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				r.rollback(g[:i])
				return fmt.Errorf("%w: append row %d has a non-finite coefficient", ErrNonFinite, i)
			}
		}
		r.written[g[i]] = true
	}
	// Validated: advance values and composed maps. A non-finite output is an
	// error, but by then earlier rows of the batch have landed — that
	// matches the sequential loop, where the failure happens mid-stream; the
	// error names the cell and the caller treats the session as poisoned.
	for i := 0; i < k; i++ {
		mt := row(i)
		v := r.cur[f[i]]
		out := (mt.A*v + mt.B) / (mt.C*v + mt.D)
		if math.IsNaN(out) || math.IsInf(out, 0) {
			return fmt.Errorf("%w: cell %d = %v (division by zero along its chain)",
				ErrNonFinite, g[i], out)
		}
		r.cur[g[i]] = out
		// Chain-order composition, exactly ChainOp's orientation: the new
		// row applies after f's composed map. An unwritten f roots the
		// chain at f's initial value with the identity prefix.
		if r.written[f[i]] && r.root[f[i]] >= 0 {
			r.comp[g[i]] = mt.Mul(r.comp[f[i]]).normScale()
			r.root[g[i]] = r.root[f[i]]
		} else {
			r.comp[g[i]] = mt
			r.root[g[i]] = f[i]
		}
		r.n++
	}
	return nil
}

func (r *Resume) rollback(g []int) {
	for _, x := range g {
		r.written[x] = false
	}
}

// Values exposes the live value array (not a copy).
func (r *Resume) Values() []float64 { return r.cur }

// N reports how many iterations have been folded in.
func (r *Resume) N() int { return r.n }

// Written exposes the live written bitmap (not a copy).
func (r *Resume) Written() []bool { return r.written }

// Summary returns cell x's prefix summary: the composed Möbius map, the
// chain-root cell whose initial value it applies to, and whether x was
// written at all. Applying the map to the root's initial value reproduces
// x's value up to the composition's own rounding; sessions use it as the
// compact re-home snapshot.
func (r *Resume) Summary(x int) (comp Mat2, root int, ok bool) {
	if x < 0 || x >= r.m || !r.written[x] {
		return Identity(), -1, false
	}
	return r.comp[x], r.root[x], true
}
