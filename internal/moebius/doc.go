// Package moebius implements the paper's §3 application of the ordinary-IR
// solver: parallelizing linear indexed recurrences
//
//	X[g(i)] := A[i]·X[f(i)] + B[i]
//	X[g(i)] := X[g(i)] + A[i]·X[f(i)] + B[i]          (extended form)
//	X[g(i)] := (A[i]·X[f(i)] + B[i]) / (C[i]·X[f(i)] + D[i])   (full Möbius)
//
// by the Möbius transformation (the paper's Lemma 2): each update is the
// fractional-linear map φ(x) = (Ax+B)/(Cx+D), maps compose by 2×2 matrix
// multiplication (M_{φ∘ψ} = M_φ·M_ψ), and composing along each write chain
// is an ordinary IR problem over the guarded matrix product ⊙. The final
// value of a cell is its composed map applied to the initial value of its
// chain's root.
//
// # Operand order
//
// ordinary.Solve folds each trace left-to-right with the chain's DEEPEST
// iteration leftmost, while map composition needs the deepest iteration
// INNERMOST (rightmost in the matrix product). ChainOp therefore multiplies
// in reversed order, Combine(a, b) = b·a; reversal of an associative
// operation is associative, so the solver's regrouping stays valid.
//
// # The guard
//
// The paper defines A ⊙ B = A when det(A) = 0, else A·B: a singular matrix
// is a constant map, and composing a constant outer map with anything is
// the constant map itself; keeping the original matrix avoids collapsing to
// the zero matrix (which would represent no map at all). In ChainOp's
// reversed order the outer map is the right operand.
//
// # Roots and shadow cells
//
// The matrix encoding initializes cell c to the matrix of the iteration
// writing c. An iteration that reads cell c BEFORE c's (later) write must
// see the identity map instead — its read is of the initial value, not of
// the chain through c. SolveLinear redirects such reads to fresh "shadow"
// cells holding the identity, then maps chain roots back to original cells
// when applying the composed map to initial values. The rewrite preserves
// distinct g and loop semantics exactly.
//
// # Plans and concurrency
//
// CompilePlan precomputes everything above that depends only on (m, g, f) —
// the shadow rewrite and the ordinary-solver schedule — so repeated solves
// over the same index maps pay only the numeric phase; Plan.SolveCtx and
// SolveBatchPlansCtx replay bit-identically to the direct entry points. A
// Plan is immutable after CompilePlan returns and safe for concurrent
// solves from any number of goroutines.
package moebius
