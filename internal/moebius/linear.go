package moebius

import (
	"errors"
	"fmt"

	"indexedrec/internal/ordinary"
)

// MoebiusSystem describes n iterations of the full fractional-linear
// indexed recurrence X[g(i)] := (A[i]·X[f(i)] + B[i]) / (C[i]·X[f(i)] + D[i])
// over m cells. The affine forms are the special case C = 0, D = 1.
type MoebiusSystem struct {
	// M is the number of X cells.
	M int
	// G and F are the write/read index maps (G must be distinct).
	G, F []int
	// A, B, C, D are the per-iteration coefficients, each of length len(G).
	A, B, C, D []float64
}

// NewLinear builds the affine system X[g(i)] := a[i]·X[f(i)] + b[i].
func NewLinear(m int, g, f []int, a, b []float64) *MoebiusSystem {
	n := len(g)
	c := make([]float64, n)
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	return &MoebiusSystem{M: m, G: g, F: f, A: a, B: b, C: c, D: d}
}

// NewExtended builds X[g(i)] := X[g(i)] + a[i]·X[f(i)] + b[i] given the
// initial values x0, using the paper's rewriting: g distinct means the
// X[g(i)] on the right-hand side is still the initial value S[g(i)], so the
// loop equals the plain affine loop with b'[i] = S[g(i)] + b[i].
func NewExtended(m int, g, f []int, a, b, x0 []float64) *MoebiusSystem {
	n := len(g)
	b2 := make([]float64, n)
	for i := 0; i < n; i++ {
		b2[i] = x0[g[i]] + b[i]
	}
	return NewLinear(m, g, f, a, b2)
}

// ErrBadSystem wraps validation failures.
var ErrBadSystem = errors.New("moebius: invalid system")

// Validate checks lengths, bounds and the distinct-g precondition.
func (ms *MoebiusSystem) Validate() error {
	n := len(ms.G)
	if len(ms.F) != n || len(ms.A) != n || len(ms.B) != n || len(ms.C) != n || len(ms.D) != n {
		return fmt.Errorf("%w: map/coefficient lengths disagree", ErrBadSystem)
	}
	if ms.M <= 0 {
		return fmt.Errorf("%w: M = %d", ErrBadSystem, ms.M)
	}
	seen := make(map[int]struct{}, n)
	for i := 0; i < n; i++ {
		if ms.G[i] < 0 || ms.G[i] >= ms.M || ms.F[i] < 0 || ms.F[i] >= ms.M {
			return fmt.Errorf("%w: index out of range at iteration %d", ErrBadSystem, i)
		}
		if _, dup := seen[ms.G[i]]; dup {
			return fmt.Errorf("%w: g not distinct (cell %d)", ErrBadSystem, ms.G[i])
		}
		seen[ms.G[i]] = struct{}{}
	}
	return nil
}

// Iter returns the Möbius matrix of iteration i.
func (ms *MoebiusSystem) Iter(i int) Mat2 {
	return Mat2{A: ms.A[i], B: ms.B[i], C: ms.C[i], D: ms.D[i]}
}

// RunSequential executes the loop as written — the correctness oracle.
func (ms *MoebiusSystem) RunSequential(x0 []float64) []float64 {
	x := append([]float64(nil), x0...)
	for i := range ms.G {
		v := x[ms.F[i]]
		x[ms.G[i]] = (ms.A[i]*v + ms.B[i]) / (ms.C[i]*v + ms.D[i])
	}
	return x
}

// Solve computes the final X array in O(log n) parallel steps via the
// three-step reduction of the paper's §3:
//
//  1. initialize one matrix per written cell (plus identity elsewhere),
//  2. run OrdinaryIR over the guarded matrix product along write chains,
//  3. apply each composed map to the initial value at its chain root.
//
// Steps 1 and 3 are single parallel steps; step 2 is ordinary.Solve.
func (ms *MoebiusSystem) Solve(x0 []float64, opt ordinary.Options) ([]float64, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != ms.M {
		panic("moebius: Solve: len(x0) != M")
	}
	n := len(ms.G)
	sys, origOf := buildShadowSystem(ms.M, ms.G, ms.F)

	// Step 1: per-cell matrices.
	mats := make([]Mat2, sys.M)
	for x := range mats {
		mats[x] = Identity()
	}
	for i := 0; i < n; i++ {
		mats[ms.G[i]] = ms.Iter(i)
	}

	// Step 2: ordinary IR over ⊙.
	res, err := ordinary.Solve[Mat2](sys, ChainOp{}, mats, opt)
	if err != nil {
		return nil, fmt.Errorf("moebius: %w", err)
	}

	// Step 3: apply composed maps to root initial values.
	out := append([]float64(nil), x0...)
	for i := 0; i < n; i++ {
		x := ms.G[i]
		root := res.Roots[x]
		if orig, ok := origOf[root]; ok {
			root = orig
		}
		out[x] = res.Values[x].Apply(x0[root])
	}
	return out, nil
}
