package moebius

import (
	"context"
	"errors"
	"fmt"
	"math"

	"indexedrec/internal/ordinary"
)

// MoebiusSystem describes n iterations of the full fractional-linear
// indexed recurrence X[g(i)] := (A[i]·X[f(i)] + B[i]) / (C[i]·X[f(i)] + D[i])
// over m cells. The affine forms are the special case C = 0, D = 1.
type MoebiusSystem struct {
	// M is the number of X cells.
	M int
	// G and F are the write/read index maps (G must be distinct).
	G, F []int
	// A, B, C, D are the per-iteration coefficients, each of length len(G).
	A, B, C, D []float64
}

// NewLinear builds the affine system X[g(i)] := a[i]·X[f(i)] + b[i].
func NewLinear(m int, g, f []int, a, b []float64) *MoebiusSystem {
	n := len(g)
	c := make([]float64, n)
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	return &MoebiusSystem{M: m, G: g, F: f, A: a, B: b, C: c, D: d}
}

// NewExtended builds X[g(i)] := X[g(i)] + a[i]·X[f(i)] + b[i] given the
// initial values x0, using the paper's rewriting: g distinct means the
// X[g(i)] on the right-hand side is still the initial value S[g(i)], so the
// loop equals the plain affine loop with b'[i] = S[g(i)] + b[i].
func NewExtended(m int, g, f []int, a, b, x0 []float64) *MoebiusSystem {
	n := len(g)
	b2 := make([]float64, n)
	for i := 0; i < n; i++ {
		b2[i] = x0[g[i]] + b[i]
	}
	return NewLinear(m, g, f, a, b2)
}

// ErrBadSystem wraps validation failures.
var ErrBadSystem = errors.New("moebius: invalid system")

// ErrInitLen is returned by SolveCtx when len(x0) != M. The legacy Solve
// wrapper converts it back into the historical panic.
var ErrInitLen = errors.New("moebius: initial array length does not match M")

// ErrNonFinite is returned by SolveCtx when a coefficient or initial value
// is NaN/±Inf, or when the solve produces a non-finite cell from finite
// inputs (a division by zero somewhere along a composed chain). The legacy
// Solve keeps the sequential loop's IEEE semantics and returns the Inf/NaN
// values instead.
var ErrNonFinite = errors.New("moebius: non-finite value")

// CheckFinite reports the first non-finite coefficient as an ErrNonFinite
// error, or nil when all coefficients are finite.
func (ms *MoebiusSystem) CheckFinite() error {
	for name, c := range map[string][]float64{"A": ms.A, "B": ms.B, "C": ms.C, "D": ms.D} {
		for i, v := range c {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: coefficient %s[%d] = %v", ErrNonFinite, name, i, v)
			}
		}
	}
	return nil
}

// Validate checks lengths, bounds and the distinct-g precondition.
func (ms *MoebiusSystem) Validate() error {
	n := len(ms.G)
	if len(ms.F) != n || len(ms.A) != n || len(ms.B) != n || len(ms.C) != n || len(ms.D) != n {
		return fmt.Errorf("%w: map/coefficient lengths disagree", ErrBadSystem)
	}
	if ms.M <= 0 {
		return fmt.Errorf("%w: M = %d", ErrBadSystem, ms.M)
	}
	seen := make(map[int]struct{}, n)
	for i := 0; i < n; i++ {
		if ms.G[i] < 0 || ms.G[i] >= ms.M || ms.F[i] < 0 || ms.F[i] >= ms.M {
			return fmt.Errorf("%w: index out of range at iteration %d", ErrBadSystem, i)
		}
		if _, dup := seen[ms.G[i]]; dup {
			return fmt.Errorf("%w: g not distinct (cell %d)", ErrBadSystem, ms.G[i])
		}
		seen[ms.G[i]] = struct{}{}
	}
	return nil
}

// Iter returns the Möbius matrix of iteration i.
func (ms *MoebiusSystem) Iter(i int) Mat2 {
	return Mat2{A: ms.A[i], B: ms.B[i], C: ms.C[i], D: ms.D[i]}
}

// RunSequential executes the loop as written — the correctness oracle.
func (ms *MoebiusSystem) RunSequential(x0 []float64) []float64 {
	x := append([]float64(nil), x0...)
	for i := range ms.G {
		v := x[ms.F[i]]
		x[ms.G[i]] = (ms.A[i]*v + ms.B[i]) / (ms.C[i]*v + ms.D[i])
	}
	return x
}

// Solve computes the final X array in O(log n) parallel steps via the
// three-step reduction of the paper's §3:
//
//  1. initialize one matrix per written cell (plus identity elsewhere),
//  2. run OrdinaryIR over the guarded matrix product along write chains,
//  3. apply each composed map to the initial value at its chain root.
//
// Steps 1 and 3 are single parallel steps; step 2 is ordinary.Solve.
//
// An x0-length mismatch panics (the historical contract) and outputs follow
// IEEE semantics (a division by zero yields ±Inf/NaN, exactly as the
// sequential loop would); use SolveCtx for the guarded, error-returning API.
func (ms *MoebiusSystem) Solve(x0 []float64, opt ordinary.Options) ([]float64, error) {
	out, err := ms.solve(context.Background(), x0, opt)
	if errors.Is(err, ErrInitLen) {
		panic("moebius: Solve: len(x0) != M")
	}
	return out, err
}

// SolveCtx is the hardened entry point: identical algorithm, but every
// failure returns as an error — invalid system, x0-length mismatch,
// non-finite coefficients or initial values (ErrNonFinite), a division by
// zero surfacing as a non-finite output cell (ErrNonFinite), a panic in the
// OnRound hook, or cancellation of ctx.
func (ms *MoebiusSystem) SolveCtx(ctx context.Context, x0 []float64, opt ordinary.Options) ([]float64, error) {
	if err := ms.CheckFinite(); err != nil {
		return nil, err
	}
	for x, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: x0[%d] = %v", ErrNonFinite, x, v)
		}
	}
	out, err := ms.solve(ctx, x0, opt)
	if err != nil {
		return nil, err
	}
	for x, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: cell %d = %v (division by zero along its chain)",
				ErrNonFinite, x, v)
		}
	}
	return out, nil
}

// solve is the shared three-step reduction.
func (ms *MoebiusSystem) solve(ctx context.Context, x0 []float64, opt ordinary.Options) ([]float64, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != ms.M {
		return nil, fmt.Errorf("%w: len(x0) = %d, want M = %d", ErrInitLen, len(x0), ms.M)
	}
	n := len(ms.G)
	sys, origOf := buildShadowSystem(ms.M, ms.G, ms.F)

	// Step 1: per-cell matrices.
	mats := make([]Mat2, sys.M)
	for x := range mats {
		mats[x] = Identity()
	}
	for i := 0; i < n; i++ {
		mats[ms.G[i]] = ms.Iter(i)
	}

	// Step 2: ordinary IR over ⊙.
	res, err := ordinary.SolveCtx[Mat2](ctx, sys, ChainOp{}, mats, opt)
	if err != nil {
		return nil, fmt.Errorf("moebius: %w", err)
	}

	// Step 3: apply composed maps to root initial values.
	out := append([]float64(nil), x0...)
	for i := 0; i < n; i++ {
		x := ms.G[i]
		root := res.Roots[x]
		if orig, ok := origOf[root]; ok {
			root = orig
		}
		out[x] = res.Values[x].Apply(x0[root])
	}
	return out, nil
}
