package moebius

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"indexedrec/internal/ordinary"
)

func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMat2Basics(t *testing.T) {
	m := Mat2{A: 2, B: 3, C: 0, D: 1}
	if got := m.Apply(5); got != 13 {
		t.Fatalf("Apply = %v, want 13", got)
	}
	if got := m.Det(); got != 2 {
		t.Fatalf("Det = %v, want 2", got)
	}
	id := Identity()
	if id.Apply(7.5) != 7.5 {
		t.Error("identity map broken")
	}
	if got := m.Mul(id); got != m {
		t.Errorf("m·I = %v, want %v", got, m)
	}
	if got := id.Mul(m); got != m {
		t.Errorf("I·m = %v, want %v", got, m)
	}
}

func TestLemma2Composition(t *testing.T) {
	// Lemma 2: matrix of f∘g is M_f · M_g. Check pointwise.
	f := Mat2{A: 2, B: 1, C: 1, D: 3}
	g := Mat2{A: 1, B: -2, C: 4, D: 1}
	comp := f.Mul(g)
	for _, x := range []float64{0, 1, -3, 0.5, 10} {
		want := f.Apply(g.Apply(x))
		got := comp.Apply(x)
		if !approxEqual(got, want, 1e-12) {
			t.Fatalf("x=%v: composed %v, pointwise %v", x, got, want)
		}
	}
}

func TestRatChainOpAssociativityExact(t *testing.T) {
	// Exact associativity of the guarded product, including singular
	// matrices — the property ordinary.Solve relies on.
	rng := rand.New(rand.NewSource(17))
	randMat := func() RatMat2 {
		m := RatMat2{
			A: big.NewRat(int64(rng.Intn(7)-3), 1),
			B: big.NewRat(int64(rng.Intn(7)-3), 1),
			C: big.NewRat(int64(rng.Intn(7)-3), 1),
			D: big.NewRat(int64(rng.Intn(7)-3), 1),
		}
		return m
	}
	eq := func(x, y RatMat2) bool {
		return x.A.Cmp(y.A) == 0 && x.B.Cmp(y.B) == 0 &&
			x.C.Cmp(y.C) == 0 && x.D.Cmp(y.D) == 0
	}
	op := RatChainOp{}
	for trial := 0; trial < 500; trial++ {
		a, b, c := randMat(), randMat(), randMat()
		l := op.Combine(op.Combine(a, b), c)
		r := op.Combine(a, op.Combine(b, c))
		if !eq(l, r) {
			t.Fatalf("trial %d: not associative:\na=%+v b=%+v c=%+v\nl=%+v r=%+v", trial, a, b, c, l, r)
		}
	}
}

func randomLinear(rng *rand.Rand, m int) (*MoebiusSystem, []float64) {
	perm := rng.Perm(m)
	n := rng.Intn(m + 1)
	g := make([]int, n)
	f := make([]int, n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		g[i] = perm[i]
		f[i] = rng.Intn(m)
		a[i] = rng.Float64()*2 - 1 // in (-1,1): keeps chains numerically tame
		b[i] = rng.Float64()*4 - 2
	}
	x0 := make([]float64, m)
	for x := range x0 {
		x0[x] = rng.Float64()*10 - 5
	}
	return NewLinear(m, g, f, a, b), x0
}

func TestSolveLinearMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		ms, x0 := randomLinear(rng, 1+rng.Intn(30))
		want := ms.RunSequential(x0)
		got, err := ms.Solve(x0, ordinary.Options{Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if !approxEqual(got[x], want[x], 1e-9) {
				t.Fatalf("trial %d cell %d: got %v, want %v", trial, x, got[x], want[x])
			}
		}
	}
}

func TestSolveLinearChainClosedForm(t *testing.T) {
	// X[i+1] = a·X[i] + b down a chain: X[n] = a^n x0 + b(a^{n-1}+...+1).
	n, m := 64, 65
	a, b := 0.5, 1.0
	g := make([]int, n)
	f := make([]int, n)
	av := make([]float64, n)
	bv := make([]float64, n)
	for i := 0; i < n; i++ {
		g[i], f[i], av[i], bv[i] = i+1, i, a, b
	}
	ms := NewLinear(m, g, f, av, bv)
	x0 := make([]float64, m)
	x0[0] = 3
	got, err := ms.Solve(x0, ordinary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		an := math.Pow(a, float64(k))
		want := an*x0[0] + b*(1-an)/(1-a)
		if !approxEqual(got[k], want, 1e-12) {
			t.Fatalf("X[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func TestSolveExtendedForm(t *testing.T) {
	// X[g(i)] := X[g(i)] + a·X[f(i)] + b — the paper's §3 second form.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(20)
		perm := rng.Perm(m)
		n := rng.Intn(m)
		g := make([]int, n)
		f := make([]int, n)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			g[i], f[i] = perm[i], rng.Intn(m)
			a[i] = rng.Float64() - 0.5
			b[i] = rng.Float64() - 0.5
		}
		x0 := make([]float64, m)
		for x := range x0 {
			x0[x] = rng.Float64()*2 - 1
		}
		// Sequential reference of the EXTENDED loop.
		want := append([]float64(nil), x0...)
		for i := 0; i < n; i++ {
			want[g[i]] = want[g[i]] + a[i]*want[f[i]] + b[i]
		}
		ms := NewExtended(m, g, f, a, b, x0)
		got, err := ms.Solve(x0, ordinary.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if !approxEqual(got[x], want[x], 1e-9) {
				t.Fatalf("trial %d cell %d: got %v, want %v", trial, x, got[x], want[x])
			}
		}
	}
}

func TestSolveFullMoebiusContinuedFraction(t *testing.T) {
	// X[i+1] = 1 / (1 + X[i]): converges to 1/φ = φ-1 ≈ 0.618...
	n, m := 40, 41
	ms := &MoebiusSystem{M: m,
		G: seq(1, n+1), F: seq(0, n),
		A: constSlice(n, 0), B: constSlice(n, 1),
		C: constSlice(n, 1), D: constSlice(n, 1),
	}
	x0 := make([]float64, m)
	x0[0] = 1
	want := ms.RunSequential(x0)
	got, err := ms.Solve(x0, ordinary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if !approxEqual(got[x], want[x], 1e-9) {
			t.Fatalf("cell %d: got %v, want %v", x, got[x], want[x])
		}
	}
	phi := (math.Sqrt(5) - 1) / 2
	if !approxEqual(got[n], phi, 1e-9) {
		t.Fatalf("X[%d] = %v, want ≈ %v", n, got[n], phi)
	}
}

func TestSolveForwardReferenceShadow(t *testing.T) {
	// Iteration 0 reads cell 2's INITIAL value; iteration 1 then writes
	// cell 2. Without shadow cells the composed matrix for cell 0 would
	// wrongly include iteration 1's map.
	ms := NewLinear(3,
		[]int{0, 2},
		[]int{2, 1},
		[]float64{2, 3},
		[]float64{1, 0},
	)
	x0 := []float64{10, 4, 5}
	want := ms.RunSequential(x0) // X[0] = 2*5+1 = 11, X[2] = 3*4 = 12
	if want[0] != 11 || want[2] != 12 {
		t.Fatalf("oracle sanity: %v", want)
	}
	got, err := ms.Solve(x0, ordinary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if !approxEqual(got[x], want[x], 1e-12) {
			t.Fatalf("cell %d: got %v, want %v", x, got[x], want[x])
		}
	}
}

func TestSolveSingularConstantAssignments(t *testing.T) {
	// a[i] = 0 makes iteration i the constant map x ↦ b[i] (det = 0): the
	// paper's ⊙ guard. Chain: X[1]=0·X[0]+7=7; X[2]=2·X[1]+1=15.
	ms := NewLinear(3,
		[]int{1, 2},
		[]int{0, 1},
		[]float64{0, 2},
		[]float64{7, 1},
	)
	x0 := []float64{100, 0, 0}
	want := ms.RunSequential(x0)
	got, err := ms.Solve(x0, ordinary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if !approxEqual(got[x], want[x], 1e-12) {
			t.Fatalf("cell %d: got %v, want %v (singular guard)", x, got[x], want[x])
		}
	}
	if got[1] != 7 || got[2] != 15 {
		t.Fatalf("got %v, want [100 7 15]", got)
	}
}

func TestRatSolveExactEquality(t *testing.T) {
	// With exact rationals the parallel result equals the sequential one
	// bit for bit — no tolerance.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(15)
		perm := rng.Perm(m)
		n := rng.Intn(m)
		rs := &RatSystem{M: m,
			G: make([]int, n), F: make([]int, n),
			A: make([]*big.Rat, n), B: make([]*big.Rat, n),
			C: make([]*big.Rat, n), D: make([]*big.Rat, n),
		}
		for i := 0; i < n; i++ {
			rs.G[i], rs.F[i] = perm[i], rng.Intn(m)
			rs.A[i] = big.NewRat(int64(rng.Intn(9)-4), 1)
			rs.B[i] = big.NewRat(int64(rng.Intn(9)-4), int64(rng.Intn(3)+1))
			rs.C[i] = new(big.Rat) // affine: no poles
			rs.D[i] = big.NewRat(1, 1)
		}
		x0 := make([]*big.Rat, m)
		for x := range x0 {
			x0[x] = big.NewRat(int64(rng.Intn(21)-10), int64(rng.Intn(4)+1))
		}
		want, err := rs.RunSequential(x0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rs.Solve(x0, ordinary.Options{Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if got[x].Cmp(want[x]) != 0 {
				t.Fatalf("trial %d cell %d: got %s, want %s", trial, x, got[x], want[x])
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := NewLinear(3, []int{0, 0}, []int{1, 1}, []float64{1, 1}, []float64{0, 0})
	if err := bad.Validate(); err == nil {
		t.Error("duplicate g accepted")
	}
	bad2 := NewLinear(2, []int{5}, []int{0}, []float64{1}, []float64{0})
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range g accepted")
	}
	bad3 := &MoebiusSystem{M: 2, G: []int{0}, F: []int{0}, A: []float64{1},
		B: []float64{0}, C: []float64{0}, D: nil}
	if err := bad3.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNormScalePreservesMap(t *testing.T) {
	m := Mat2{A: 3e160, B: 1e159, C: 2e158, D: 5e160}
	s := m.normScale()
	for _, x := range []float64{0.5, 2, -7} {
		if !approxEqual(m.Apply(x), s.Apply(x), 1e-12) {
			t.Fatalf("normScale changed the map at %v: %v vs %v", x, m.Apply(x), s.Apply(x))
		}
	}
	if math.Abs(s.A) > 2 {
		t.Fatalf("normScale did not rescale: %+v", s)
	}
}

func TestLongProductNoOverflow(t *testing.T) {
	// 500 compositions of x ↦ 100x: raw products overflow float64 range
	// around iteration ~154; normScale keeps Apply finite and correct in
	// shape (X[k] = 100^k·x0 overflows, but the MAP stays representable;
	// we check intermediate cells below the overflow horizon).
	n := 500
	g := seq(1, n+1)
	f := seq(0, n)
	ms := NewLinear(n+1, g, f, constSlice(n, 100), constSlice(n, 0))
	x0 := make([]float64, n+1)
	x0[0] = 1
	got, err := ms.Solve(x0, ordinary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 150; k++ {
		want := math.Pow(100, float64(k))
		if !approxEqual(got[k], want, 1e-9) {
			t.Fatalf("X[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func seq(from, to int) []int {
	s := make([]int, to-from)
	for i := range s {
		s[i] = from + i
	}
	return s
}

func constSlice(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestSolveBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var systems []*MoebiusSystem
	var x0s [][]float64
	var wants [][]float64
	for k := 0; k < 12; k++ {
		ms, x0 := randomLinear(rng, 2+rng.Intn(25))
		systems = append(systems, ms)
		x0s = append(x0s, x0)
		wants = append(wants, ms.RunSequential(x0))
	}
	got, err := SolveBatch(systems, x0s, ordinary.Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := range wants {
		for x := range wants[k] {
			if !approxEqual(got[k][x], wants[k][x], 1e-9) {
				t.Fatalf("system %d cell %d: got %v, want %v", k, x, got[k][x], wants[k][x])
			}
		}
	}
}

func TestSolveBatchLengthMismatch(t *testing.T) {
	if _, err := SolveBatch(make([]*MoebiusSystem, 2), make([][]float64, 1), ordinary.Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSolveBatchPropagatesError(t *testing.T) {
	bad := NewLinear(2, []int{0, 0}, []int{1, 1}, []float64{1, 1}, []float64{0, 0})
	_, err := SolveBatch([]*MoebiusSystem{bad}, [][]float64{{1, 2}}, ordinary.Options{})
	if err == nil {
		t.Fatal("invalid system accepted")
	}
}
