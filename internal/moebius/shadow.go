package moebius

import "indexedrec/internal/core"

// buildShadowSystem builds the ordinary IR system driving the matrix
// composition, with shadow cells for initial-value reads of cells that are
// written later in the loop (see the package comment). origOf maps each
// shadow cell back to the original cell whose initial value it stands for.
func buildShadowSystem(m int, g, f []int) (*core.System, map[int]int) {
	n := len(g)
	sys := &core.System{M: m, N: n,
		G: append([]int(nil), g...),
		F: make([]int, n),
	}
	deps := core.ComputeDeps(&core.System{M: m, N: n, G: g, F: f})
	shadowOf := make(map[int]int) // original cell -> shadow cell
	origOf := make(map[int]int)   // shadow cell -> original cell
	for i := 0; i < n; i++ {
		fc := f[i]
		if deps.FPrev[i] < 0 && deps.LastWriter[fc] >= 0 {
			// Initial-value read of a cell that IS written later: the
			// matrix at fc belongs to that later write, so detour through
			// an identity-holding shadow cell.
			sh, ok := shadowOf[fc]
			if !ok {
				sh = sys.M
				sys.M++
				shadowOf[fc] = sh
				origOf[sh] = fc
			}
			sys.F[i] = sh
		} else {
			sys.F[i] = fc
		}
	}
	return sys, origOf
}
