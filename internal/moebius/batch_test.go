package moebius

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"indexedrec/internal/ordinary"
)

// leakCheck snapshots the goroutine count and returns an assertion to defer
// (same idiom as the top-level robustness tests): the count must settle back
// to the baseline, i.e. a failed or cancelled batch leaves no workers behind.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak: started with %d, still %d", base, runtime.NumGoroutine())
	}
}

// goodBatch builds k valid random affine systems with their initial arrays.
func goodBatch(rng *rand.Rand, k int) ([]*MoebiusSystem, [][]float64) {
	var systems []*MoebiusSystem
	var x0s [][]float64
	for i := 0; i < k; i++ {
		ms, x0 := randomLinear(rng, 4+rng.Intn(20))
		systems = append(systems, ms)
		x0s = append(x0s, x0)
	}
	return systems, x0s
}

// TestBatchFirstFailureNamesSystem pins the error contract both entry points
// share: a batch with one invalid member fails as a whole, and the error
// names the failing system's index so callers can drop it and retry.
func TestBatchFirstFailureNamesSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	systems, x0s := goodBatch(rng, 5)
	// Corrupt system 3: duplicate g violates the distinct-g precondition.
	systems[3] = NewLinear(2, []int{0, 0}, []int{1, 1}, []float64{1, 1}, []float64{0, 0})
	x0s[3] = []float64{1, 2}

	defer leakCheck(t)()
	for name, solve := range map[string]func() ([][]float64, error){
		"SolveBatch": func() ([][]float64, error) {
			return SolveBatch(systems, x0s, ordinary.Options{Procs: 2})
		},
		"SolveBatchCtx": func() ([][]float64, error) {
			return SolveBatchCtx(context.Background(), systems, x0s, ordinary.Options{Procs: 2})
		},
	} {
		out, err := solve()
		if err == nil {
			t.Fatalf("%s: invalid member accepted", name)
		}
		if out != nil {
			t.Errorf("%s: non-nil result alongside error", name)
		}
		if !errors.Is(err, ErrBadSystem) {
			t.Errorf("%s: err = %v, want ErrBadSystem in chain", name, err)
		}
		if !strings.Contains(err.Error(), "system 3") {
			t.Errorf("%s: err %q does not name the failing system", name, err)
		}
	}
}

// TestBatchCtxPreCancelled: a dead ctx fails the sweep before any solving.
func TestBatchCtxPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	systems, x0s := goodBatch(rng, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	defer leakCheck(t)()
	_, err := SolveBatchCtx(ctx, systems, x0s, ordinary.Options{Procs: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBatchCtxMidBatchCancel cancels from inside the first per-round hook
// that fires: in-flight systems stop at their next round boundary, pending
// systems are never scheduled, and all workers are joined before return.
func TestBatchCtxMidBatchCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	systems, x0s := goodBatch(rng, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var rounds atomic.Int64
	opt := ordinary.Options{
		Procs: 2,
		OnRound: func(round int, j *ordinary.JumperState) {
			if rounds.Add(1) == 1 {
				cancel()
			}
		},
	}

	defer leakCheck(t)()
	_, err := SolveBatchCtx(ctx, systems, x0s, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancel fired after one observed round, so the sweep cannot have
	// run all 16 systems to completion: each system needs several rounds
	// and every one reports through the shared hook.
	if got := rounds.Load(); got >= 16*8 {
		t.Errorf("hook observed %d rounds after cancel — sweep did not stop early", got)
	}

	// Contrast: SolveBatch ignores cancellation by construction and still
	// completes the same sweep (fresh hook, dead ctx is irrelevant to it).
	out, err := SolveBatch(systems, x0s, ordinary.Options{Procs: 2})
	if err != nil || len(out) != 16 {
		t.Fatalf("SolveBatch after cancel: out=%d err=%v", len(out), err)
	}
}

// TestBatchNestedProcsClamping: the two nesting levels (systems across,
// rounds within) both clamp Procs, so degenerate values — zero, negative,
// absurdly large — stay correct and do not spawn unbounded goroutines.
func TestBatchNestedProcsClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	systems, x0s := goodBatch(rng, 6)
	var wants [][]float64
	for k, ms := range systems {
		wants = append(wants, ms.RunSequential(x0s[k]))
	}

	defer leakCheck(t)()
	for _, procs := range []int{-1, 0, 1, 3, 1 << 20} {
		before := runtime.NumGoroutine()
		got, err := SolveBatchCtx(context.Background(), systems, x0s, ordinary.Options{Procs: procs})
		if err != nil {
			t.Fatalf("Procs=%d: %v", procs, err)
		}
		// With clamping, total concurrency is bounded by the machine, not
		// by Procs² = 2⁴⁰. A generous machine-scaled bound catches the
		// unclamped explosion without flaking on scheduler noise.
		if limit := before + 4*runtime.GOMAXPROCS(0)*runtime.GOMAXPROCS(0) + 64; runtime.NumGoroutine() > limit {
			t.Errorf("Procs=%d: %d goroutines alive (baseline %d)", procs, runtime.NumGoroutine(), before)
		}
		for k := range wants {
			for x := range wants[k] {
				if !approxEqual(got[k][x], wants[k][x], 1e-9) {
					t.Fatalf("Procs=%d system %d cell %d: got %v, want %v",
						procs, k, x, got[k][x], wants[k][x])
				}
			}
		}
	}
}
