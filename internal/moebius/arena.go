package moebius

import (
	"context"
	"fmt"
	"math"

	"indexedrec/internal/core"
	"indexedrec/internal/ordinary"
)

// ChainOp's monomorphized kernel (mat2.go) backs the zero-allocation warm
// replays below.
var _ core.Kernel[Mat2] = ChainOp{}

// Arena is the reusable scratch of Möbius plan replays: the embedded
// ordinary replay arena (whose working array doubles as the shadow-cell
// matrix store — replays prime it in place) and the output row. A
// steady-state warm replay through an arena allocates nothing. An arena is
// single-solve at a time, and a solve's result aliases the arena's output
// buffer — valid until the next solve on the same arena. Use one arena per
// worker, or the pooled Plan.SolveCtx for a copy-out replay.
type Arena struct {
	plan *Plan
	ord  *ordinary.Arena[Mat2]
	out  []float64
	// mats is the fill target on the fallback path for shadow plans that
	// are not primeable. buildShadowSystem always yields primeable plans
	// (chain terminals read shadow or never-written cells), so this stays
	// nil in practice; it is defense in depth against a future shadow
	// construction breaking the invariant.
	mats []Mat2
}

// NewArena allocates replay scratch sized for the plan: the ordinary
// pointer-jumping arena over the shadow system and the output row. The
// pointer-jumping buffer is identity-filled here, once: replays rewrite only
// the plan's coefficient slots g[i] in place, and the solve writes nothing
// but those same slots, so identity cells survive from replay to replay and
// the full per-replay init copy disappears.
func (p *Plan) NewArena() *Arena {
	ar := &Arena{
		plan: p,
		ord:  ordinary.NewArena[Mat2](p.ord),
		out:  make([]float64, p.M),
	}
	fill := ar.ord.Buf()
	if !p.ord.Primeable() {
		ar.mats = make([]Mat2, p.shadowM)
		fill = ar.mats
	}
	for x := range fill {
		fill[x] = Identity()
	}
	return ar
}

// checkRowFinite rejects NaN/Inf coefficient entries, the up-front half of
// the ErrNonFinite guard. Replays only run it after fill's fused probe has
// already seen a non-finite entry, to recover the exact per-row error.
func checkRowFinite(name string, cs []float64) error {
	for i, v := range cs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: coefficient %s[%d] = %v", ErrNonFinite, name, i, v)
		}
	}
	return nil
}

// fill loads this replay's per-statement matrices into dst's g-slots and
// accumulates a finiteness probe over the coefficient rows in the same
// pass: x − x is ±0 for finite x and NaN otherwise, so the running sums are
// non-zero exactly when some coefficient is non-finite — the separate
// guard scans ride along with the loads the fill performs anyway. The
// affine form writes c = 0, d = 1 directly (bit-equal to the all-zeros /
// all-ones rows the caller used to supply). Callers must have checked the
// row lengths against len(p.g).
func (p *Plan) fill(dst []Mat2, a, b, c, d []float64, affine bool) float64 {
	g := p.g
	a, b = a[:len(g)], b[:len(g)]
	var bad1, bad2 float64
	if affine {
		for i, x := range g {
			ai, bi := a[i], b[i]
			bad1 += (ai - ai) + (bi - bi)
			dst[x] = Mat2{A: ai, B: bi, C: 0, D: 1}
		}
		return bad1
	}
	c, d = c[:len(g)], d[:len(g)]
	for i, x := range g {
		ai, bi, ci, di := a[i], b[i], c[i], d[i]
		bad1 += (ai - ai) + (bi - bi)
		bad2 += (ci - ci) + (di - di)
		dst[x] = Mat2{A: ai, B: bi, C: ci, D: di}
	}
	return bad1 + bad2
}

// SolveArenaCtx replays the plan into ar with the exact guard set and
// combine schedule of Plan.SolveCtx — results are bit-identical. The
// returned slice is ar's output buffer: it is overwritten by the next solve
// on the same arena, and a steady-state warm replay performs no allocation.
func (p *Plan) SolveArenaCtx(ctx context.Context, ar *Arena, a, b, c, d, x0 []float64, opt ordinary.Options) ([]float64, error) {
	n := p.N
	if len(a) != n || len(b) != n || len(c) != n || len(d) != n {
		return nil, fmt.Errorf("%w: coefficient lengths disagree with n = %d", ErrBadSystem, n)
	}
	return p.solveArena(ctx, ar, a, b, c, d, x0, false, opt)
}

// SolveLinearArenaCtx is the affine-form arena replay:
// X[g(i)] := a[i]·X[f(i)] + b[i], i.e. c = 0, d = 1 written by the fill
// itself. Same aliasing and zero-allocation contract as SolveArenaCtx.
func (p *Plan) SolveLinearArenaCtx(ctx context.Context, ar *Arena, a, b, x0 []float64, opt ordinary.Options) ([]float64, error) {
	n := p.N
	if len(a) != n || len(b) != n {
		return nil, fmt.Errorf("%w: coefficient lengths disagree with n = %d", ErrBadSystem, n)
	}
	return p.solveArena(ctx, ar, a, b, nil, nil, x0, true, opt)
}

// solveArena is the shared replay body behind the arena and pooled entry
// points. Guard order matches the original explicit sequence — coefficient
// rows (A, B, C, D), then x0 length and values, then the solve, then the
// output scan — so every error is byte-identical to Plan.SolveCtx's.
func (p *Plan) solveArena(ctx context.Context, ar *Arena, a, b, c, d, x0 []float64, affine bool, opt ordinary.Options) ([]float64, error) {
	// Step 1: per-cell matrices, written straight into the pointer-jumping
	// buffer (or ar.mats on the non-primeable fallback). Polluting the
	// buffer before the guards settle is safe: every slot written here or
	// by the solve is rewritten by the next replay's fill.
	dst := ar.ord.Buf()
	if ar.mats != nil {
		dst = ar.mats
	}
	if bad := p.fill(dst, a, b, c, d, affine); bad != 0 {
		if err := checkRowFinite("A", a); err != nil {
			return nil, err
		}
		if err := checkRowFinite("B", b); err != nil {
			return nil, err
		}
		if !affine {
			if err := checkRowFinite("C", c); err != nil {
				return nil, err
			}
			if err := checkRowFinite("D", d); err != nil {
				return nil, err
			}
		}
	}
	if len(x0) != p.M {
		return nil, fmt.Errorf("%w: len(x0) = %d, want M = %d", ErrInitLen, len(x0), p.M)
	}
	for x, v := range x0 {
		if v-v != 0 { // non-finite: NaN or ±Inf
			return nil, fmt.Errorf("%w: x0[%d] = %v", ErrNonFinite, x, v)
		}
	}

	// Step 2: replay the compiled ordinary schedule over ⊙. The primed
	// path reads the matrices where fill put them — no init copy at all.
	var res *ordinary.Result[Mat2]
	var err error
	if ar.mats == nil {
		res, err = ar.ord.SolvePrimedCtx(ctx, ChainOp{}, opt)
	} else {
		res, err = ar.ord.SolveCtx(ctx, ChainOp{}, ar.mats, opt)
	}
	if err != nil {
		return nil, fmt.Errorf("moebius: %w", err)
	}

	// Step 3: apply composed maps to precomputed chain-root initial values,
	// fused with the output guard. Iterating cells in index order computes
	// the same values as the statement-order loop (g is distinct, each cell
	// written once) and reports the same first non-finite cell the separate
	// ascending scan would. Affine compositions keep C = 0, D = 1 exactly
	// (until normScale fires), and for the finite x0 guaranteed above the
	// denominator is then exactly 1, so skipping the division is
	// bit-identical and saves the divide on the whole linear family.
	out, vals := ar.out, res.Values
	for x := range out {
		root := p.applyRoot[x]
		if root < 0 {
			out[x] = x0[x]
			continue
		}
		mv := vals[x]
		xr := x0[root]
		var v float64
		if mv.C == 0 && mv.D == 1 {
			v = mv.A*xr + mv.B
		} else {
			v = mv.Apply(xr)
		}
		out[x] = v
		if v-v != 0 {
			return nil, fmt.Errorf("%w: cell %d = %v (division by zero along its chain)",
				ErrNonFinite, x, v)
		}
	}
	return out, nil
}

// solvePooled is the copy-out replay behind Plan.SolveCtx and
// SolveLinearCtx: scratch comes from the plan's arena pool, and the only
// per-solve allocation left on the warm path is the caller-owned result.
func (p *Plan) solvePooled(ctx context.Context, a, b, c, d, x0 []float64, affine bool, opt ordinary.Options) ([]float64, error) {
	ar, _ := p.arenas.Get().(*Arena)
	if ar == nil {
		ar = p.NewArena()
	}
	var out []float64
	var err error
	if affine {
		out, err = p.SolveLinearArenaCtx(ctx, ar, a, b, x0, opt)
	} else {
		out, err = p.SolveArenaCtx(ctx, ar, a, b, c, d, x0, opt)
	}
	if err != nil {
		p.arenas.Put(ar)
		return nil, err
	}
	res := make([]float64, len(out))
	copy(res, out)
	p.arenas.Put(ar)
	return res, nil
}
