package moebius

import (
	"context"
	"fmt"
	"sync"

	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
)

// Compiled solve plans for the Möbius family. Everything the three-step
// reduction does before coefficients enter — validation of the index maps,
// the shadow-cell rewrite, the write-chain forest, and the full
// pointer-jumping schedule over it — depends only on (m, g, f). CompilePlan
// computes those once; Plan.SolveCtx replays the schedule against fresh
// (a, b, c, d, x0) data. Replays perform the same matrix compositions and
// map applications as MoebiusSystem.SolveCtx, in the same order, so results
// are bit-identical.

// Plan is the compiled, coefficient-independent part of a Möbius solve.
// Immutable after compilation and safe for concurrent replays.
type Plan struct {
	// M is the cell count, N the iteration count (= len(g)).
	M, N int
	// g retains the write map: replays need it to place per-iteration
	// matrices and to apply composed maps.
	g []int
	// shadowM is the cell count of the shadow-extended ordinary system.
	shadowM int
	// ord is the compiled pointer-jumping schedule over the shadow system.
	ord *ordinary.Plan
	// applyRoot[x], for written cells x, is the original cell whose initial
	// value x's composed map is applied to (chain root with shadow cells
	// resolved); -1 for unwritten cells.
	applyRoot []int
	// arenas pools replay scratch (see Arena): together with the plan
	// cache's fingerprint keying, warm replays through SolveCtx check their
	// shadow matrices, pointer-jumping buffers and output row out and back
	// in instead of allocating them.
	arenas sync.Pool
}

// CompilePlan validates the index maps and compiles the shadow system's
// pointer-jumping schedule. Coefficients and initial values play no part;
// they are supplied per replay.
func CompilePlan(ctx context.Context, m int, g, f []int) (*Plan, error) {
	if len(f) != len(g) {
		return nil, fmt.Errorf("%w: len(g) = %d, len(f) = %d", ErrBadSystem, len(g), len(f))
	}
	if m <= 0 {
		return nil, fmt.Errorf("%w: M = %d", ErrBadSystem, m)
	}
	seen := make(map[int]struct{}, len(g))
	for i := range g {
		if g[i] < 0 || g[i] >= m || f[i] < 0 || f[i] >= m {
			return nil, fmt.Errorf("%w: index out of range at iteration %d", ErrBadSystem, i)
		}
		if _, dup := seen[g[i]]; dup {
			return nil, fmt.Errorf("%w: g not distinct (cell %d)", ErrBadSystem, g[i])
		}
		seen[g[i]] = struct{}{}
	}

	sys, origOf := buildShadowSystem(m, g, f)
	// Pinned to pointer jumping: Mat2 products are float and reassociation
	// changes rounding, while this layer's replays promise bit-identity to
	// the direct Möbius solve (FuzzMoebiusPlanAgainstDirect enforces it).
	ord, err := ordinary.CompilePlanOpts(ctx, sys, ordinary.PlanOptions{Schedule: ordinary.ScheduleJumping})
	if err != nil {
		return nil, fmt.Errorf("moebius: %w", err)
	}
	p := &Plan{
		M:         m,
		N:         len(g),
		g:         append([]int(nil), g...),
		shadowM:   sys.M,
		ord:       ord,
		applyRoot: make([]int, m),
	}
	for x := range p.applyRoot {
		p.applyRoot[x] = -1
	}
	roots := ord.Roots()
	for i := range g {
		x := g[i]
		root := roots[x]
		if orig, ok := origOf[root]; ok {
			root = orig
		}
		p.applyRoot[x] = root
	}
	return p, nil
}

// SizeBytes estimates the plan's resident size for cache accounting.
func (p *Plan) SizeBytes() int64 {
	return int64(len(p.g)+len(p.applyRoot))*8 + p.ord.SizeBytes()
}

// SolveCtx replays the plan against fresh coefficients and initial values,
// with the exact guard set of MoebiusSystem.SolveCtx: non-finite
// coefficients or x0 entries return ErrNonFinite up front, and a division
// by zero surfacing as a non-finite output cell returns ErrNonFinite after
// the solve. The affine forms are the special case c = 0, d = 1 (compose
// the extended form's b rewrite before calling, as NewExtended does).
// Scratch comes from the plan's arena pool, so a warm replay's only
// allocation is the returned result; see SolveArenaCtx for the explicit,
// zero-allocation arena API.
func (p *Plan) SolveCtx(ctx context.Context, a, b, c, d, x0 []float64, opt ordinary.Options) ([]float64, error) {
	return p.solvePooled(ctx, a, b, c, d, x0, false, opt)
}

// SolveLinearCtx replays the plan for the affine form
// X[g(i)] := a[i]·X[f(i)] + b[i] (c = 0, d = 1, written by the replay's
// matrix fill itself).
func (p *Plan) SolveLinearCtx(ctx context.Context, a, b, x0 []float64, opt ordinary.Options) ([]float64, error) {
	return p.solvePooled(ctx, a, b, nil, nil, x0, true, opt)
}

// SolveBatchPlansCtx solves independent Möbius systems through their
// compiled plans concurrently — the plan-aware SolveBatchCtx. plans[k] must
// have been compiled from systems[k]'s index maps. The sweep stops at the
// first failing system; cancellation stops scheduling further systems.
func SolveBatchPlansCtx(ctx context.Context, plans []*Plan, systems []*MoebiusSystem, x0s [][]float64, opt ordinary.Options) ([][]float64, error) {
	if len(plans) != len(systems) || len(systems) != len(x0s) {
		return nil, fmt.Errorf("moebius: SolveBatchPlansCtx: %d plans, %d systems, %d initial arrays",
			len(plans), len(systems), len(x0s))
	}
	out := make([][]float64, len(systems))
	err := parallel.ForEachCtx(ctx, len(systems), opt.Procs, func(k int) error {
		ms := systems[k]
		res, err := plans[k].SolveCtx(ctx, ms.A, ms.B, ms.C, ms.D, x0s[k], opt)
		if err != nil {
			return fmt.Errorf("moebius: SolveBatchPlansCtx system %d: %w", k, err)
		}
		out[k] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
