package moebius

import (
	"context"
	"fmt"
	"math"

	"indexedrec/internal/ordinary"
	"indexedrec/internal/parallel"
)

// Compiled solve plans for the Möbius family. Everything the three-step
// reduction does before coefficients enter — validation of the index maps,
// the shadow-cell rewrite, the write-chain forest, and the full
// pointer-jumping schedule over it — depends only on (m, g, f). CompilePlan
// computes those once; Plan.SolveCtx replays the schedule against fresh
// (a, b, c, d, x0) data. Replays perform the same matrix compositions and
// map applications as MoebiusSystem.SolveCtx, in the same order, so results
// are bit-identical.

// Plan is the compiled, coefficient-independent part of a Möbius solve.
// Immutable after compilation and safe for concurrent replays.
type Plan struct {
	// M is the cell count, N the iteration count (= len(g)).
	M, N int
	// g retains the write map: replays need it to place per-iteration
	// matrices and to apply composed maps.
	g []int
	// shadowM is the cell count of the shadow-extended ordinary system.
	shadowM int
	// ord is the compiled pointer-jumping schedule over the shadow system.
	ord *ordinary.Plan
	// applyRoot[x], for written cells x, is the original cell whose initial
	// value x's composed map is applied to (chain root with shadow cells
	// resolved); -1 for unwritten cells.
	applyRoot []int
}

// CompilePlan validates the index maps and compiles the shadow system's
// pointer-jumping schedule. Coefficients and initial values play no part;
// they are supplied per replay.
func CompilePlan(ctx context.Context, m int, g, f []int) (*Plan, error) {
	if len(f) != len(g) {
		return nil, fmt.Errorf("%w: len(g) = %d, len(f) = %d", ErrBadSystem, len(g), len(f))
	}
	if m <= 0 {
		return nil, fmt.Errorf("%w: M = %d", ErrBadSystem, m)
	}
	seen := make(map[int]struct{}, len(g))
	for i := range g {
		if g[i] < 0 || g[i] >= m || f[i] < 0 || f[i] >= m {
			return nil, fmt.Errorf("%w: index out of range at iteration %d", ErrBadSystem, i)
		}
		if _, dup := seen[g[i]]; dup {
			return nil, fmt.Errorf("%w: g not distinct (cell %d)", ErrBadSystem, g[i])
		}
		seen[g[i]] = struct{}{}
	}

	sys, origOf := buildShadowSystem(m, g, f)
	ord, err := ordinary.CompilePlan(ctx, sys)
	if err != nil {
		return nil, fmt.Errorf("moebius: %w", err)
	}
	p := &Plan{
		M:         m,
		N:         len(g),
		g:         append([]int(nil), g...),
		shadowM:   sys.M,
		ord:       ord,
		applyRoot: make([]int, m),
	}
	for x := range p.applyRoot {
		p.applyRoot[x] = -1
	}
	roots := ord.Roots()
	for i := range g {
		x := g[i]
		root := roots[x]
		if orig, ok := origOf[root]; ok {
			root = orig
		}
		p.applyRoot[x] = root
	}
	return p, nil
}

// SizeBytes estimates the plan's resident size for cache accounting.
func (p *Plan) SizeBytes() int64 {
	return int64(len(p.g)+len(p.applyRoot))*8 + p.ord.SizeBytes()
}

// SolveCtx replays the plan against fresh coefficients and initial values,
// with the exact guard set of MoebiusSystem.SolveCtx: non-finite
// coefficients or x0 entries return ErrNonFinite up front, and a division
// by zero surfacing as a non-finite output cell returns ErrNonFinite after
// the solve. The affine forms are the special case c = 0, d = 1 (compose
// the extended form's b rewrite before calling, as NewExtended does).
func (p *Plan) SolveCtx(ctx context.Context, a, b, c, d, x0 []float64, opt ordinary.Options) ([]float64, error) {
	n := p.N
	if len(a) != n || len(b) != n || len(c) != n || len(d) != n {
		return nil, fmt.Errorf("%w: coefficient lengths disagree with n = %d", ErrBadSystem, n)
	}
	for name, cs := range map[string][]float64{"A": a, "B": b, "C": c, "D": d} {
		for i, v := range cs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: coefficient %s[%d] = %v", ErrNonFinite, name, i, v)
			}
		}
	}
	if len(x0) != p.M {
		return nil, fmt.Errorf("%w: len(x0) = %d, want M = %d", ErrInitLen, len(x0), p.M)
	}
	for x, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: x0[%d] = %v", ErrNonFinite, x, v)
		}
	}

	// Step 1: per-cell matrices (identity on unwritten and shadow cells).
	mats := make([]Mat2, p.shadowM)
	for x := range mats {
		mats[x] = Identity()
	}
	for i := 0; i < n; i++ {
		mats[p.g[i]] = Mat2{A: a[i], B: b[i], C: c[i], D: d[i]}
	}

	// Step 2: replay the compiled ordinary schedule over ⊙.
	res, err := ordinary.SolvePlanCtx[Mat2](ctx, p.ord, ChainOp{}, mats, opt)
	if err != nil {
		return nil, fmt.Errorf("moebius: %w", err)
	}

	// Step 3: apply composed maps to precomputed chain-root initial values.
	out := append([]float64(nil), x0...)
	for i := 0; i < n; i++ {
		x := p.g[i]
		out[x] = res.Values[x].Apply(x0[p.applyRoot[x]])
	}
	for x, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: cell %d = %v (division by zero along its chain)",
				ErrNonFinite, x, v)
		}
	}
	return out, nil
}

// SolveLinearCtx replays the plan for the affine form
// X[g(i)] := a[i]·X[f(i)] + b[i] (c = 0, d = 1).
func (p *Plan) SolveLinearCtx(ctx context.Context, a, b, x0 []float64, opt ordinary.Options) ([]float64, error) {
	c := make([]float64, p.N)
	d := make([]float64, p.N)
	for i := range d {
		d[i] = 1
	}
	return p.SolveCtx(ctx, a, b, c, d, x0, opt)
}

// SolveBatchPlansCtx solves independent Möbius systems through their
// compiled plans concurrently — the plan-aware SolveBatchCtx. plans[k] must
// have been compiled from systems[k]'s index maps. The sweep stops at the
// first failing system; cancellation stops scheduling further systems.
func SolveBatchPlansCtx(ctx context.Context, plans []*Plan, systems []*MoebiusSystem, x0s [][]float64, opt ordinary.Options) ([][]float64, error) {
	if len(plans) != len(systems) || len(systems) != len(x0s) {
		return nil, fmt.Errorf("moebius: SolveBatchPlansCtx: %d plans, %d systems, %d initial arrays",
			len(plans), len(systems), len(x0s))
	}
	out := make([][]float64, len(systems))
	err := parallel.ForEachCtx(ctx, len(systems), opt.Procs, func(k int) error {
		ms := systems[k]
		res, err := plans[k].SolveCtx(ctx, ms.A, ms.B, ms.C, ms.D, x0s[k], opt)
		if err != nil {
			return fmt.Errorf("moebius: SolveBatchPlansCtx system %d: %w", k, err)
		}
		out[k] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
