package moebius

import (
	"context"
	"errors"
	"fmt"
	"math"

	"indexedrec/internal/ordinary"
)

// Shard-slice replays of compiled Möbius plans. The composed 2×2 matrix of
// an output cell depends only on its own chain of the shadow system's
// write-chain forest, so a contiguous range of output cells is served by
// replaying just the chains those cells live on (the ordinary member-closure
// machinery) and applying the composed maps — bit-identical to the same
// cells of Plan.SolveCtx.

// ErrShardRange is returned when a requested cell range does not fit the
// plan.
var ErrShardRange = errors.New("moebius: shard range out of bounds")

// SolveRangeCtx replays the plan for output cells [lo, hi) only, returning
// their final values (index k holds cell lo+k). Validation mirrors
// SolveCtx — all coefficients are checked even though only the range's
// chains are replayed — and the composed matrices, map applications and
// non-finite guards for cells in range are exactly the full replay's, so
// the slice is bit-identical to out[lo:hi] of Plan.SolveCtx.
func (p *Plan) SolveRangeCtx(ctx context.Context, a, b, c, d, x0 []float64, lo, hi int, opt ordinary.Options) ([]float64, error) {
	n := p.N
	if len(a) != n || len(b) != n || len(c) != n || len(d) != n {
		return nil, fmt.Errorf("%w: coefficient lengths disagree with n = %d", ErrBadSystem, n)
	}
	for name, cs := range map[string][]float64{"A": a, "B": b, "C": c, "D": d} {
		for i, v := range cs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: coefficient %s[%d] = %v", ErrNonFinite, name, i, v)
			}
		}
	}
	if len(x0) != p.M {
		return nil, fmt.Errorf("%w: len(x0) = %d, want M = %d", ErrInitLen, len(x0), p.M)
	}
	for x, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: x0[%d] = %v", ErrNonFinite, x, v)
		}
	}
	if lo < 0 || hi > p.M || lo > hi {
		return nil, fmt.Errorf("%w: cells [%d, %d) of %d", ErrShardRange, lo, hi, p.M)
	}

	// Step 1: per-cell matrices, exactly as the full replay builds them.
	mats := make([]Mat2, p.shadowM)
	for x := range mats {
		mats[x] = Identity()
	}
	for i := 0; i < n; i++ {
		mats[p.g[i]] = Mat2{A: a[i], B: b[i], C: c[i], D: d[i]}
	}

	// Step 2: replay only the chains that own written cells in range.
	chainOf := p.ord.ChainOf()
	mark := make([]bool, p.ord.NumChains())
	for i := 0; i < n; i++ {
		if x := p.g[i]; x >= lo && x < hi {
			mark[chainOf[x]] = true
		}
	}
	member := make([]bool, p.shadowM)
	for x, c := range chainOf {
		if c >= 0 && mark[c] {
			member[x] = true
		}
	}
	res, err := ordinary.SolvePlanMemberCtx[Mat2](ctx, p.ord, ChainOp{}, mats, member, opt)
	if err != nil {
		return nil, fmt.Errorf("moebius: %w", err)
	}

	// Step 3: apply composed maps for written cells in range.
	out := append([]float64(nil), x0[lo:hi]...)
	for i := 0; i < n; i++ {
		x := p.g[i]
		if x >= lo && x < hi {
			out[x-lo] = res[x].Apply(x0[p.applyRoot[x]])
		}
	}
	for k, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: cell %d = %v (division by zero along its chain)",
				ErrNonFinite, lo+k, v)
		}
	}
	return out, nil
}
