package moebius

import "math"

// Mat2 is a 2×2 real matrix [[A, B], [C, D]] representing the Möbius map
// x ↦ (A·x + B) / (C·x + D).
type Mat2 struct {
	A, B, C, D float64
}

// Identity returns the matrix of the identity map.
func Identity() Mat2 { return Mat2{A: 1, D: 1} }

// Affine returns the matrix of x ↦ a·x + b.
func Affine(a, b float64) Mat2 { return Mat2{A: a, B: b, C: 0, D: 1} }

// Det returns the determinant AD − BC.
func (m Mat2) Det() float64 { return m.A*m.D - m.B*m.C }

// Mul returns the matrix product m·n (composition: m outer, n inner).
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		A: m.A*n.A + m.B*n.C,
		B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C,
		D: m.C*n.B + m.D*n.D,
	}
}

// Apply evaluates the Möbius map at x. Division by zero follows IEEE 754
// (yields ±Inf or NaN), matching what the sequential loop would produce.
func (m Mat2) Apply(x float64) float64 {
	return (m.A*x + m.B) / (m.C*x + m.D)
}

// normScale rescales a matrix when entries grow huge. A Möbius map is
// projective — scaling all four entries leaves Apply unchanged — so this
// guards long chains against float overflow without altering semantics.
func (m Mat2) normScale() Mat2 {
	const lim = 1e150
	a := math.Max(math.Max(math.Abs(m.A), math.Abs(m.B)),
		math.Max(math.Abs(m.C), math.Abs(m.D)))
	if a < lim || math.IsInf(a, 0) || math.IsNaN(a) {
		return m
	}
	s := 1 / a
	return Mat2{A: m.A * s, B: m.B * s, C: m.C * s, D: m.D * s}
}

// ChainOp is the semigroup fed to ordinary.Solve: the paper's guarded
// product ⊙ in reversed (chain) order. Combine(a, b) = b when det(b) = 0
// (b is a constant map and b is the outer factor), else b·a.
type ChainOp struct{}

// Name implements core.Semigroup.
func (ChainOp) Name() string { return "moebius-chain" }

// Combine implements core.Semigroup; see the package comment for the order
// and guard rationale.
func (ChainOp) Combine(a, b Mat2) Mat2 {
	if b.Det() == 0 {
		return b
	}
	return b.Mul(a).normScale()
}

// Identity implements core.Monoid.
func (ChainOp) Identity() Mat2 { return Identity() }
