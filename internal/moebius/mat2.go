package moebius

import "math"

// Mat2 is a 2×2 real matrix [[A, B], [C, D]] representing the Möbius map
// x ↦ (A·x + B) / (C·x + D).
type Mat2 struct {
	A, B, C, D float64
}

// Identity returns the matrix of the identity map.
func Identity() Mat2 { return Mat2{A: 1, D: 1} }

// Affine returns the matrix of x ↦ a·x + b.
func Affine(a, b float64) Mat2 { return Mat2{A: a, B: b, C: 0, D: 1} }

// Det returns the determinant AD − BC.
func (m Mat2) Det() float64 { return m.A*m.D - m.B*m.C }

// Mul returns the matrix product m·n (composition: m outer, n inner).
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		A: m.A*n.A + m.B*n.C,
		B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C,
		D: m.C*n.B + m.D*n.D,
	}
}

// Apply evaluates the Möbius map at x. Division by zero follows IEEE 754
// (yields ±Inf or NaN), matching what the sequential loop would produce.
func (m Mat2) Apply(x float64) float64 {
	return (m.A*x + m.B) / (m.C*x + m.D)
}

// normLim is the entry magnitude at which normScale rescales a matrix.
const normLim = 1e150

// normScale rescales a matrix when entries grow huge. A Möbius map is
// projective — scaling all four entries leaves Apply unchanged — so this
// guards long chains against float overflow without altering semantics.
// The all-small test here is the hot path: its branches are almost always
// taken the same way (unlike a running-max reduction, whose comparisons
// flip unpredictably), it is branchless-Abs only, and "every |entry| <
// normLim" is exactly "max |entry| < normLim" — NaN entries fail the
// comparison and fall through to rescale's explicit guards.
func (m Mat2) normScale() Mat2 {
	if math.Abs(m.A) < normLim && math.Abs(m.B) < normLim &&
		math.Abs(m.C) < normLim && math.Abs(m.D) < normLim {
		return m
	}
	return m.rescale()
}

// rescale is normScale's cold half: some |entry| is ≥ normLim, non-finite,
// or NaN. Division by the max keeps the map unchanged projectively; Inf and
// NaN maxima are left alone (scaling by 0 or NaN would corrupt the map).
func (m Mat2) rescale() Mat2 {
	a1, a2, a3, a4 := math.Abs(m.A), math.Abs(m.B), math.Abs(m.C), math.Abs(m.D)
	a := a1
	if a2 > a {
		a = a2
	}
	if a3 > a {
		a = a3
	}
	if a4 > a {
		a = a4
	}
	if a < normLim || math.IsInf(a, 0) ||
		a1 != a1 || a2 != a2 || a3 != a3 || a4 != a4 {
		return m
	}
	s := 1 / a
	return Mat2{A: m.A * s, B: m.B * s, C: m.C * s, D: m.D * s}
}

// ChainOp is the semigroup fed to ordinary.Solve: the paper's guarded
// product ⊙ in reversed (chain) order. Combine(a, b) = b when det(b) = 0
// (b is a constant map and b is the outer factor), else b·a.
type ChainOp struct{}

// Name implements core.Semigroup.
func (ChainOp) Name() string { return "moebius-chain" }

// Combine implements core.Semigroup; see the package comment for the order
// and guard rationale.
func (ChainOp) Combine(a, b Mat2) Mat2 {
	if b.Det() == 0 {
		return b
	}
	return b.Mul(a).normScale()
}

// Identity implements core.Monoid.
func (ChainOp) Identity() Mat2 { return Identity() }

// The Kernel methods below are ChainOp's monomorphized fast path: the same
// guarded product ⊙, inlined over Mat2 slices so the solvers' hot combine
// loops skip per-element interface dispatch. Each loop body calls exactly
// Combine's code path (det guard, Mul, normScale), so results are
// bit-identical to the generic loops.

// CombineGathered implements core.Kernel. The [lo, hi) re-slice lets the
// compiler drop the per-element bounds checks on the pair arrays.
func (o ChainOp) CombineGathered(v, src []Mat2, dst []int32, lo, hi int) {
	dst, src = dst[lo:hi], src[lo:hi]
	for k := range dst {
		x := dst[k]
		b := v[x]
		if b.Det() == 0 {
			continue
		}
		v[x] = b.Mul(src[k]).normScale()
	}
}

// CombineScatter implements core.Kernel. Same bounds-check treatment as
// CombineGathered.
func (o ChainOp) CombineScatter(v, from []Mat2, dst, src []int32, lo, hi int) {
	dst, src = dst[lo:hi], src[lo:hi]
	for k := range dst {
		x := dst[k]
		b := v[x]
		if b.Det() == 0 {
			continue
		}
		v[x] = b.Mul(from[src[k]]).normScale()
	}
}

// FoldSeg implements core.Kernel: the ascending guarded-product fold of the
// blocked scan's segment-reduce phase. The Möbius plans compile with the
// pointer-jumping schedule today (their float bit-identity contract pins the
// jumping association), so this path is exercised by the kernel conformance
// tests and ready for a future blocked Mat2 schedule.
func (o ChainOp) FoldSeg(acc Mat2, from []Mat2, idx []int32, lo, hi int) Mat2 {
	for k := lo; k < hi; k++ {
		b := from[idx[k]]
		if b.Det() == 0 {
			acc = b
			continue
		}
		acc = b.Mul(acc).normScale()
	}
	return acc
}

// ScanSeg implements core.Kernel: FoldSeg with every intermediate stored —
// the blocked scan's prefix-apply phase. v and from may alias; each slot is
// read before it is written.
func (o ChainOp) ScanSeg(v []Mat2, acc Mat2, from []Mat2, idx []int32, lo, hi int) Mat2 {
	for k := lo; k < hi; k++ {
		x := idx[k]
		b := from[x]
		if b.Det() != 0 {
			b = b.Mul(acc).normScale()
		}
		acc = b
		v[x] = acc
	}
	return acc
}

// JumpRound implements core.Kernel.
func (o ChainOp) JumpRound(v2, v []Mat2, nx []int, cells []int, lo, hi int) int {
	combines := 0
	for k := lo; k < hi; k++ {
		x := cells[k]
		n := nx[x]
		if n < 0 {
			v2[x] = v[x]
			continue
		}
		combines++
		b := v[x]
		if b.Det() == 0 {
			v2[x] = b
			continue
		}
		v2[x] = b.Mul(v[n]).normScale()
	}
	return combines
}
