package moebius

import (
	"fmt"
	"math/big"

	"indexedrec/internal/ordinary"
)

// RatMat2 is the exact-arithmetic twin of Mat2 over big.Rat, used to verify
// that the parallel solution is EXACTLY the sequential one when the field is
// exact (float64 runs only match up to regrouping rounding). Values are
// treated as immutable.
type RatMat2 struct {
	A, B, C, D *big.Rat
}

// RatIdentity returns the exact identity matrix.
func RatIdentity() RatMat2 {
	return RatMat2{A: big.NewRat(1, 1), B: new(big.Rat), C: new(big.Rat), D: big.NewRat(1, 1)}
}

// Det returns the exact determinant.
func (m RatMat2) Det() *big.Rat {
	ad := new(big.Rat).Mul(m.A, m.D)
	bc := new(big.Rat).Mul(m.B, m.C)
	return ad.Sub(ad, bc)
}

// Mul returns the exact product m·n.
func (m RatMat2) Mul(n RatMat2) RatMat2 {
	mul := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Mul(x, y) }
	add := func(x, y *big.Rat) *big.Rat { return new(big.Rat).Add(x, y) }
	return RatMat2{
		A: add(mul(m.A, n.A), mul(m.B, n.C)),
		B: add(mul(m.A, n.B), mul(m.B, n.D)),
		C: add(mul(m.C, n.A), mul(m.D, n.C)),
		D: add(mul(m.C, n.B), mul(m.D, n.D)),
	}
}

// Apply evaluates the map at x exactly. Returns an error when the
// denominator is exactly zero (a pole), where float64 would produce ±Inf.
func (m RatMat2) Apply(x *big.Rat) (*big.Rat, error) {
	num := new(big.Rat).Mul(m.A, x)
	num.Add(num, m.B)
	den := new(big.Rat).Mul(m.C, x)
	den.Add(den, m.D)
	if den.Sign() == 0 {
		return nil, fmt.Errorf("moebius: pole: denominator is zero")
	}
	return num.Quo(num, den), nil
}

// RatChainOp is ChainOp over exact rationals.
type RatChainOp struct{}

// Name implements core.Semigroup.
func (RatChainOp) Name() string { return "moebius-chain-rat" }

// Combine implements core.Semigroup (reversed guarded product; see ChainOp).
func (RatChainOp) Combine(a, b RatMat2) RatMat2 {
	if b.Det().Sign() == 0 {
		return b
	}
	return b.Mul(a)
}

// Identity implements core.Monoid.
func (RatChainOp) Identity() RatMat2 { return RatIdentity() }

// RatSystem is the exact twin of MoebiusSystem.
type RatSystem struct {
	M          int
	G, F       []int
	A, B, C, D []*big.Rat
}

// Iter returns iteration i's exact matrix.
func (rs *RatSystem) Iter(i int) RatMat2 {
	return RatMat2{A: rs.A[i], B: rs.B[i], C: rs.C[i], D: rs.D[i]}
}

// RunSequential executes the loop exactly as written.
func (rs *RatSystem) RunSequential(x0 []*big.Rat) ([]*big.Rat, error) {
	x := make([]*big.Rat, len(x0))
	for k, v := range x0 {
		x[k] = new(big.Rat).Set(v)
	}
	for i := range rs.G {
		v, err := rs.Iter(i).Apply(x[rs.F[i]])
		if err != nil {
			return nil, fmt.Errorf("iteration %d: %w", i, err)
		}
		x[rs.G[i]] = v
	}
	return x, nil
}

// Solve is the exact-arithmetic parallel solver; its output is bit-for-bit
// equal to RunSequential for pole-free loops.
func (rs *RatSystem) Solve(x0 []*big.Rat, opt ordinary.Options) ([]*big.Rat, error) {
	sys, origOf := buildShadowSystem(rs.M, rs.G, rs.F)
	mats := make([]RatMat2, sys.M)
	for x := range mats {
		mats[x] = RatIdentity()
	}
	for i := range rs.G {
		mats[rs.G[i]] = rs.Iter(i)
	}
	res, err := ordinary.Solve[RatMat2](sys, RatChainOp{}, mats, opt)
	if err != nil {
		return nil, fmt.Errorf("moebius: %w", err)
	}
	out := make([]*big.Rat, rs.M)
	for x := range out {
		out[x] = new(big.Rat).Set(x0[x])
	}
	for i := range rs.G {
		x := rs.G[i]
		root := res.Roots[x]
		if orig, ok := origOf[root]; ok {
			root = orig
		}
		v, err := res.Values[x].Apply(x0[root])
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", x, err)
		}
		out[x] = v
	}
	return out, nil
}
