// Package paperfig holds the concrete instances behind the paper's worked
// examples (Figs. 1, 2, 4, 5, 6, 9), shared by tests, benchmarks and the
// irbench experiment runner so every consumer reproduces the same artifact.
//
// The scanned paper's figure text is partly illegible (OCR lost most single
// digits), so where an instance could not be recovered verbatim we construct
// one that exhibits exactly the documented behaviour — e.g. for Fig. 1 the
// legible trace examples A'[6] = A[2]A[3]A[6] and A'[8] = A[5]A[8] and the
// untouched cells A'[5], A'[7]. Each constructor documents what is verbatim
// and what is reconstructed.
package paperfig

import "indexedrec/internal/core"

// Fig1System returns the ordinary IR instance of Fig. 1 (reconstructed) and
// the expected trace of every cell, in the paper's 1-based cell numbering
// mapped to 0-based cells 1..8 of a 9-cell array (cell 0 unused).
//
// Verbatim from the text: A'[6] = A[2]A[3]A[6] via g(j)=6, f(j)=3 chained
// through an earlier assignment A[3] = A[2]A[3]; A'[8] = A[5]A[8];
// A'[5] and A'[7] keep their initial values. The remaining iterations are
// reconstructed to fill an 8-cell picture like the figure's.
func Fig1System() (*core.System, [][]int) {
	// Iterations, in loop order (i = 1..4 in paper terms):
	//   A[4] := A[1] ⊗ A[4]
	//   A[3] := A[2] ⊗ A[3]
	//   A[6] := A[3] ⊗ A[6]   -- reads the updated A[3]
	//   A[8] := A[5] ⊗ A[8]
	s := &core.System{
		M: 9, N: 4,
		G: []int{4, 3, 6, 8},
		F: []int{1, 2, 3, 5},
	}
	want := [][]int{
		{0},       // cell 0 unused
		{1},       // A'[1] = A[1]
		{2},       // A'[2] = A[2]
		{2, 3},    // A'[3] = A[2]A[3]
		{1, 4},    // A'[4] = A[1]A[4]
		{5},       // A'[5] = A[5]   (verbatim)
		{2, 3, 6}, // A'[6] = A[2]A[3]A[6] (verbatim)
		{7},       // A'[7] = A[7]   (verbatim)
		{5, 8},    // A'[8] = A[5]A[8] (verbatim)
	}
	return s, want
}

// Fig2System returns the instance used to illustrate trace concatenation
// (pointer jumping): a single long chain A[i+1] := A[i] ⊗ A[i+1] over cells
// 0..n-1, whose traces are the prefixes A'[k] = A[0]A[1]...A[k]. The figure
// shows two concatenation rounds on a ~10-cell window; n=10 matches that.
func Fig2System(n int) *core.System {
	return core.FromFuncs(n-1, n,
		func(i int) int { return i + 1 }, // g
		func(i int) int { return i },     // f
		nil,
	)
}

// Fig4GIR returns the general IR loop A[i] := A[i-1] ⊗ A[i-2] (tree-shaped
// traces) over n cells; cells 0 and 1 hold initial values.
func Fig4GIR(n int) *core.System {
	return core.FromFuncs(n-2, n,
		func(i int) int { return i + 2 },
		func(i int) int { return i + 1 },
		func(i int) int { return i },
	)
}

// Fig4IR returns the ordinary IR loop A[i] := A[i-1] ⊗ A[i] (list-shaped
// traces) over n cells.
func Fig4IR(n int) *core.System {
	return core.FromFuncs(n-1, n,
		func(i int) int { return i + 1 },
		func(i int) int { return i },
		nil,
	)
}

// Fig5N is the size of the Fig. 5 expansion (the recurrence X_i = X_{i-1} ⊗
// X_{i-2} expanded for n = 4).
const Fig5N = 5

// Fib returns the Fibonacci sequence fib(0)=0, fib(1)=1, ... up to index n
// inclusive, as int64 (n must be <= 92).
func Fib(n int) []int64 {
	f := make([]int64, n+1)
	if n >= 1 {
		f[1] = 1
	}
	for i := 2; i <= n; i++ {
		f[i] = f[i-1] + f[i-2]
	}
	return f
}

// DoubleChain returns a GIR system whose dependence graph is the paper's
// "double chain" CAP example: each value combines the previous cell with
// itself, A[i] := A[i-1] ⊗ A[i-1], so every final value is A[0]^(2^i).
func DoubleChain(n int) *core.System {
	return core.FromFuncs(n-1, n,
		func(i int) int { return i + 1 },
		func(i int) int { return i },
		func(i int) int { return i },
	)
}
