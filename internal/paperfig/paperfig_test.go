package paperfig

import (
	"testing"

	"indexedrec/internal/core"
)

func TestFig1SystemValid(t *testing.T) {
	s, want := Fig1System()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.GDistinct() || !s.Ordinary() {
		t.Fatal("Fig1 system must be ordinary with distinct g")
	}
	if len(want) != s.M {
		t.Fatalf("expected traces for all %d cells, got %d", s.M, len(want))
	}
	// Every expected trace ends with the cell itself for written cells.
	for x, tr := range want {
		if tr[len(tr)-1] != x {
			t.Fatalf("cell %d: trace %v should end with the cell's own initial value", x, tr)
		}
	}
}

func TestFig2SystemIsChain(t *testing.T) {
	s := Fig2System(10)
	if s.N != 9 || s.M != 10 {
		t.Fatalf("N=%d M=%d", s.N, s.M)
	}
	for i := 0; i < s.N; i++ {
		if s.G[i] != i+1 || s.F[i] != i {
			t.Fatalf("iteration %d: G=%d F=%d", i, s.G[i], s.F[i])
		}
	}
}

func TestFig4Systems(t *testing.T) {
	gir := Fig4GIR(8)
	if gir.Ordinary() {
		t.Error("Fig4GIR must be general")
	}
	if err := gir.Validate(); err != nil {
		t.Fatal(err)
	}
	oir := Fig4IR(8)
	if !oir.Ordinary() || !oir.GDistinct() {
		t.Error("Fig4IR must be ordinary with distinct g")
	}
}

func TestFib(t *testing.T) {
	f := Fib(10)
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for i, w := range want {
		if f[i] != w {
			t.Fatalf("fib = %v", f)
		}
	}
	if got := Fib(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Fib(0) = %v", got)
	}
}

func TestDoubleChainSemantics(t *testing.T) {
	// A[i] := A[i-1] ⊗ A[i-1] over +: A'[i] = 2^i · A[0].
	s := DoubleChain(6)
	out := core.RunSequential[int64](s, core.IntAdd{}, []int64{3, 0, 0, 0, 0, 0})
	for i := 0; i < 6; i++ {
		want := int64(3) << uint(i)
		if out[i] != want {
			t.Fatalf("cell %d: got %d, want %d", i, out[i], want)
		}
	}
}
