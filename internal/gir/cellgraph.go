package gir

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"indexedrec/internal/cap"
	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// This file implements the paper's ORIGINAL dependence-graph construction
// (§4, the G_Γ definition before Fig. 6), which assumes distinct g: the
// graph's interior nodes are the written CELLS g(1..n) themselves, plus one
// primed leaf per initial-value reference (f(i)' / h(i)''). It exists
// alongside the versioned construction in Build both as a fidelity artifact
// and as an independent implementation that tests cross-check against the
// versioned graph: for distinct g the two must yield identical CAP results.
//
// Node numbering of the cell graph:
//
//	0 .. m-1      cell leaves (initial values; sinks)
//	m .. m+n-1    written-cell nodes: node m+i is cell g(i)'s (unique) value
//
// Written-cell nodes reference operand cells: the LATEST earlier writer's
// node when one exists (paper: "if there exists j < i such that
// g(j) = f(i)"), else the operand's leaf (the paper's primed nodes f(i)',
// h(i)'' — one leaf per cell suffices since leaves carry no structure).

// ErrGNotDistinctCell is returned by BuildCellGraph for non-distinct g, the
// case the paper defers to its full version (use Build instead).
var ErrGNotDistinctCell = fmt.Errorf("gir: cell graph requires distinct g")

// BuildCellGraph constructs the paper's original (distinct-g) dependence
// graph. The returned DepGraph has the same node-id conventions as Build,
// because with distinct g "iteration i" and "cell g(i)" coincide.
func BuildCellGraph(s *core.System) (*DepGraph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.GDistinct() {
		return nil, fmt.Errorf("%w: %v", ErrGNotDistinctCell, s)
	}
	deps := core.ComputeDeps(s)
	one := big.NewInt(1)
	edges := make(map[int][]cap.Edge, s.N)
	for i := 0; i < s.N; i++ {
		// Edge <g(i), f(i)>: to the node of cell f(i) when an earlier
		// iteration wrote it, else to the leaf f(i)'.
		ft := s.F[i]
		if j := deps.FPrev[i]; j >= 0 {
			ft = s.M + j // cell f(i)'s unique writer
		}
		ht := s.OperandH(i)
		if j := deps.HPrev[i]; j >= 0 {
			ht = s.M + j
		}
		edges[s.M+i] = []cap.Edge{{To: ft, Label: one}, {To: ht, Label: one}}
	}
	d := &DepGraph{
		G:     cap.NewGraph(s.M+s.N, edges),
		M:     s.M,
		N:     s.N,
		Final: make([]int, s.M),
	}
	for x := 0; x < s.M; x++ {
		if w := deps.LastWriter[x]; w >= 0 {
			d.Final[x] = s.M + w
		} else {
			d.Final[x] = x
		}
	}
	return d, nil
}

// SolveCellGraph is Solve restricted to distinct g, using the paper's
// original construction. It exists for the fidelity cross-check; Solve is
// the general entry point. An init-length mismatch panics (the historical
// contract); use SolveCellGraphCtx for the error-returning API.
func SolveCellGraph[T any](s *core.System, op core.CommutativeMonoid[T], init []T, opt Options) (*Result[T], error) {
	res, err := SolveCellGraphCtx(context.Background(), s, op, init, opt)
	if errors.Is(err, ErrInitLen) {
		panic("gir: solveOnGraph: len(init) != s.M")
	}
	return res, err
}

// SolveCellGraphCtx is the hardened SolveCellGraph; see SolveCtx for the
// error and cancellation contract.
func SolveCellGraphCtx[T any](ctx context.Context, s *core.System, op core.CommutativeMonoid[T], init []T, opt Options) (*Result[T], error) {
	d, err := BuildCellGraph(s)
	if err != nil {
		return nil, err
	}
	return solveOnGraphCtx(ctx, d, s, op, init, opt)
}

// solveOnGraphCtx is the CAP + power-evaluation tail shared by SolveCtx and
// SolveCellGraphCtx.
func solveOnGraphCtx[T any](ctx context.Context, d *DepGraph, s *core.System, op core.CommutativeMonoid[T], init []T, opt Options) (_ *Result[T], err error) {
	defer parallel.RecoverTo(&err)
	if len(init) != s.M {
		return nil, fmt.Errorf("%w: len(init) = %d, want s.M = %d", ErrInitLen, len(init), s.M)
	}
	// One gang carries every CAP round and the evaluation sweep; the graph
	// has M + N nodes, which bounds every parallel round of the solve.
	ctx, release := parallel.EnsureGang(ctx, opt.Procs, s.M+s.N)
	defer release()
	counts, st, err := countCtx(ctx, d, opt)
	if err != nil {
		return nil, fmt.Errorf("gir: CAP failed: %w", err)
	}
	res := &Result[T]{CAPStats: st}
	if err := evalPowersCtx(ctx, d, op, init, counts, res, opt.Procs); err != nil {
		return nil, err
	}
	return res, nil
}
