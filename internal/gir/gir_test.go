package gir

import (
	"math/big"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
	"indexedrec/internal/trace"
)

func engines() []Engine {
	return []Engine{EngineSquaring, EngineDP, EngineMatrix, EngineWavefront}
}

func TestFig6DependenceGraph(t *testing.T) {
	// A[i] = A[i-1] ⊗ A[i-2] for i = 2..4 over 5 cells: the paper's Fig. 6
	// graph. Iteration 0 (writes cell 2) reads leaves 1 and 0; iteration 1
	// (writes 3) reads version 0 and leaf 1; iteration 2 (writes 4) reads
	// versions 1 and 0.
	s := paperfig.Fig4GIR(5)
	d, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.G.N != 5+3 {
		t.Fatalf("node count %d, want 8", d.G.N)
	}
	wantEdges := map[int][]int{
		d.IterNode(0): {0, 1},
		d.IterNode(1): {1, d.IterNode(0)},
		d.IterNode(2): {d.IterNode(0), d.IterNode(1)},
	}
	for v, want := range wantEdges {
		out := d.G.Out[v]
		if len(out) != len(want) {
			t.Fatalf("node %d: edges %v, want targets %v", v, out, want)
		}
		for k, w := range want {
			if out[k].To != w || out[k].Label.Int64() != 1 {
				t.Fatalf("node %d edge %d: %v, want ->%d [1]", v, k, out[k], w)
			}
		}
	}
	// Leaves 0..4 must be sinks; unwritten cells 0,1 are their own finals.
	for x := 0; x < 5; x++ {
		if !d.G.IsSink(x) {
			t.Errorf("leaf %d is not a sink", x)
		}
	}
	if d.Final[0] != 0 || d.Final[1] != 1 {
		t.Errorf("Final[0,1] = %d,%d, want 0,1", d.Final[0], d.Final[1])
	}
	if d.Final[4] != d.IterNode(2) {
		t.Errorf("Final[4] = %d, want iteration node 2", d.Final[4])
	}
}

func TestBuildParallelOperandsMergeToLabel2(t *testing.T) {
	// A[1] := A[0] ⊗ A[0]: both operand edges hit leaf 0 → one edge [2].
	s := &core.System{M: 2, N: 1, G: []int{1}, F: []int{0}, H: []int{0}}
	d, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	out := d.G.Out[d.IterNode(0)]
	if len(out) != 1 || out[0].To != 0 || out[0].Label.Int64() != 2 {
		t.Fatalf("edges = %v, want [->0 [2]]", out)
	}
}

func TestFig5FibonacciPowersViaGIR(t *testing.T) {
	n := 12
	s := paperfig.Fig4GIR(n)
	init := make([]int64, n)
	op := core.MulMod{M: 1_000_003}
	for x := range init {
		init[x] = int64(x + 2)
	}
	fib := paperfig.Fib(n)
	for _, eng := range engines() {
		res, err := Solve[int64](s, op, init, Options{Engine: eng, Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := core.RunSequential[int64](s, op, init)
		for x := range want {
			if res.Values[x] != want[x] {
				t.Fatalf("engine %v cell %d: got %d, want %d", eng, x, res.Values[x], want[x])
			}
		}
		// Check the Fibonacci exponents on the last cell.
		terms := res.Powers[n-1]
		if len(terms) != 2 || terms[0].Sink != 0 || terms[1].Sink != 1 {
			t.Fatalf("engine %v: powers %v", eng, terms)
		}
		if terms[0].Count.Int64() != fib[n-2] || terms[1].Count.Int64() != fib[n-1] {
			t.Fatalf("engine %v: exponents %s,%s want %d,%d",
				eng, terms[0].Count, terms[1].Count, fib[n-2], fib[n-1])
		}
	}
}

func TestSolveMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	op := core.MulMod{M: 999_983}
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(12)
		n := rng.Intn(18)
		s := &core.System{M: m, N: n,
			G: make([]int, n), F: make([]int, n), H: make([]int, n)}
		for i := 0; i < n; i++ {
			s.G[i], s.F[i], s.H[i] = rng.Intn(m), rng.Intn(m), rng.Intn(m)
		}
		init := make([]int64, m)
		for x := range init {
			init[x] = rng.Int63n(op.M-2) + 2
		}
		want := core.RunSequential[int64](s, op, init)
		for _, eng := range engines() {
			res, err := Solve[int64](s, op, init, Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			for x := range want {
				if res.Values[x] != want[x] {
					t.Fatalf("trial %d engine %v cell %d: got %d want %d\nG=%v F=%v H=%v",
						trial, eng, x, res.Values[x], want[x], s.G, s.F, s.H)
				}
			}
		}
	}
}

func TestSolveNonDistinctG(t *testing.T) {
	// The versioned graph handles repeated writes to one cell — the case
	// the paper defers to its full version. Writes to cell 2 twice.
	s := &core.System{M: 3, N: 3,
		G: []int{2, 2, 1},
		F: []int{0, 2, 2},
		H: []int{1, 0, 2},
	}
	op := core.MulMod{M: 1_000_003}
	init := []int64{3, 5, 7}
	want := core.RunSequential[int64](s, op, init)
	for _, eng := range engines() {
		res, err := Solve[int64](s, op, init, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if res.Values[x] != want[x] {
				t.Fatalf("engine %v cell %d: got %d, want %d", eng, x, res.Values[x], want[x])
			}
		}
	}
}

func TestSolvePowersMatchTraceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(8)
		n := rng.Intn(14)
		s := &core.System{M: m, N: n,
			G: make([]int, n), F: make([]int, n), H: make([]int, n)}
		for i := 0; i < n; i++ {
			s.G[i], s.F[i], s.H[i] = rng.Intn(m), rng.Intn(m), rng.Intn(m)
		}
		oracle, err := trace.Powers(s)
		if err != nil {
			t.Fatal(err)
		}
		init := make([]int64, m)
		for x := range init {
			init[x] = 2
		}
		res, err := Solve[int64](s, core.MulMod{M: 97}, init, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for x := range oracle {
			if len(oracle[x]) != len(res.Powers[x]) {
				t.Fatalf("trial %d cell %d: powers %v, oracle %v", trial, x, res.Powers[x], oracle[x])
			}
			for k := range oracle[x] {
				if oracle[x][k].Cell != res.Powers[x][k].Sink ||
					oracle[x][k].Exp.Cmp(res.Powers[x][k].Count) != 0 {
					t.Fatalf("trial %d cell %d term %d: %v vs oracle %v",
						trial, x, k, res.Powers[x][k], oracle[x][k])
				}
			}
		}
	}
}

func TestSolveExponentialPowersBigInt(t *testing.T) {
	// Fibonacci GIR with n=120: exponents ~ fib(119) >> int64. MulMod.Pow
	// (modular exponentiation) must digest them.
	n := 120
	s := paperfig.Fig4GIR(n)
	op := core.MulMod{M: 1_000_003}
	init := make([]int64, n)
	for x := range init {
		init[x] = int64(x%50 + 2)
	}
	want := core.RunSequential[int64](s, op, init)
	res, err := Solve[int64](s, op, init, Options{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want[x])
		}
	}
	if res.Powers[n-1][0].Count.BitLen() < 60 {
		t.Fatalf("expected huge exponent, got %s", res.Powers[n-1][0].Count)
	}
}

func TestSolveOrdinarySystemAsGIRWithCommutativeOp(t *testing.T) {
	// An ordinary system is a special GIR; with a commutative op both
	// solvers must agree with the sequential loop.
	rng := rand.New(rand.NewSource(41))
	m := 30
	perm := rng.Perm(m)
	n := 20
	s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	for i := 0; i < n; i++ {
		s.G[i] = perm[i]
		s.F[i] = rng.Intn(m)
	}
	op := core.AddMod{M: 1 << 30}
	init := make([]int64, m)
	for x := range init {
		init[x] = rng.Int63n(1 << 20)
	}
	want := core.RunSequential[int64](s, op, init)
	res, err := Solve[int64](s, op, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want[x])
		}
	}
}

func TestSolveDoubleChainPowersOfTwo(t *testing.T) {
	n := 40
	s := paperfig.DoubleChain(n)
	op := core.MulMod{M: 1_000_003}
	init := make([]int64, n)
	for x := range init {
		init[x] = 3
	}
	res, err := Solve[int64](s, op, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := core.RunSequential[int64](s, op, init)
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want[x])
		}
	}
	exp := res.Powers[n-1][0].Count
	if exp.Cmp(new(big.Int).Lsh(big.NewInt(1), uint(n-1))) != 0 {
		t.Fatalf("exponent %s, want 2^%d", exp, n-1)
	}
}

func TestSolveUnknownEngine(t *testing.T) {
	s := &core.System{M: 2, N: 0, G: []int{}, F: []int{}}
	_, err := Solve[int64](s, core.IntAdd{}, []int64{0, 0}, Options{Engine: Engine(99)})
	if err == nil {
		t.Fatal("expected error for unknown engine")
	}
}

func TestEngineString(t *testing.T) {
	if EngineSquaring.String() != "squaring" || EngineDP.String() != "dp" ||
		EngineMatrix.String() != "matrix" {
		t.Error("engine names wrong")
	}
}
