package gir

import (
	"math/rand"
	"testing"

	"indexedrec/internal/core"
)

// The paper's introduction notes that the circuit value problem (CVP) can
// be written as IR equations, so a general IR solver would put P inside NC —
// hence the restrictions (single associative op; commutative with atomic
// powers for GIR). These tests walk that boundary: a MONOTONE circuit built
// from a single gate type (all-AND or all-OR) IS a GIR system over an
// idempotent commutative monoid (min/max on {0,1}), and the paper's
// machinery genuinely evaluates it in O(log n) parallel rounds. The
// intractable case — mixed gate types — is not expressible as one IR system,
// which is exactly where the paper's hardness remark lives.

// randomMonotoneCircuit builds a random single-gate-type circuit as a GIR
// system: cells 0..inputs-1 hold the input bits; each gate g writes a fresh
// cell combining two earlier cells.
func randomMonotoneCircuit(rng *rand.Rand, inputs, gates int) *core.System {
	m := inputs + gates
	s := &core.System{M: m, N: gates,
		G: make([]int, gates), F: make([]int, gates), H: make([]int, gates)}
	for i := 0; i < gates; i++ {
		avail := inputs + i
		s.G[i] = inputs + i
		s.F[i] = rng.Intn(avail)
		s.H[i] = rng.Intn(avail)
	}
	return s
}

func TestMonotoneANDCircuitViaGIR(t *testing.T) {
	// AND on {0,1} is min: commutative, idempotent (atomic power = the
	// value itself), so GIR evaluates all-AND circuits in log rounds.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		s := randomMonotoneCircuit(rng, 4+rng.Intn(5), 1+rng.Intn(40))
		bits := make([]int64, s.M)
		for x := range bits {
			bits[x] = int64(rng.Intn(2))
		}
		want := core.RunSequential[int64](s, core.IntMin{}, bits)
		res, err := Solve[int64](s, core.IntMin{}, bits, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if res.Values[x] != want[x] {
				t.Fatalf("trial %d gate cell %d: got %d, want %d", trial, x, res.Values[x], want[x])
			}
		}
	}
}

func TestMonotoneORCircuitViaGIR(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		s := randomMonotoneCircuit(rng, 4+rng.Intn(5), 1+rng.Intn(40))
		bits := make([]int64, s.M)
		for x := range bits {
			bits[x] = int64(rng.Intn(2))
		}
		want := core.RunSequential[int64](s, core.IntMax{}, bits)
		res, err := Solve[int64](s, core.IntMax{}, bits, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if res.Values[x] != want[x] {
				t.Fatalf("trial %d gate cell %d: got %d, want %d", trial, x, res.Values[x], want[x])
			}
		}
	}
}

func TestXorCircuitViaGIR(t *testing.T) {
	// XOR circuits (parity) are also one-op IR systems; the exponent
	// parity is what matters, and IntXor.Pow encodes exactly that.
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 30; trial++ {
		s := randomMonotoneCircuit(rng, 3+rng.Intn(4), 1+rng.Intn(30))
		bits := make([]int64, s.M)
		for x := range bits {
			bits[x] = int64(rng.Intn(2))
		}
		want := core.RunSequential[int64](s, core.IntXor{}, bits)
		res, err := Solve[int64](s, core.IntXor{}, bits, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if res.Values[x] != want[x] {
				t.Fatalf("trial %d cell %d: got %d, want %d", trial, x, res.Values[x], want[x])
			}
		}
	}
}

func TestCircuitDepthIsLogRounds(t *testing.T) {
	// A deep chain circuit: rounds must be logarithmic in depth.
	n := 1 << 12
	s := &core.System{M: n + 1, N: n,
		G: make([]int, n), F: make([]int, n), H: make([]int, n)}
	for i := 0; i < n; i++ {
		s.G[i] = i + 1
		s.F[i] = i
		s.H[i] = i
	}
	bits := make([]int64, n+1)
	bits[0] = 1
	res, err := Solve[int64](s, core.IntMin{}, bits, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CAPStats.Rounds != 12 {
		t.Fatalf("rounds = %d, want 12 = log2(%d)", res.CAPStats.Rounds, n)
	}
	if res.Values[n] != 1 {
		t.Fatalf("chain of ANDs over 1 = %d, want 1", res.Values[n])
	}
}
