package gir

import (
	"errors"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
)

// randomDistinctGIR builds a general system with distinct g (random subset
// of cells written once each) and arbitrary f, h.
func randomDistinctGIR(rng *rand.Rand, m int) *core.System {
	perm := rng.Perm(m)
	n := rng.Intn(m + 1)
	s := &core.System{M: m, N: n,
		G: make([]int, n), F: make([]int, n), H: make([]int, n)}
	for i := 0; i < n; i++ {
		s.G[i] = perm[i]
		s.F[i] = rng.Intn(m)
		s.H[i] = rng.Intn(m)
	}
	return s
}

func TestCellGraphEquivalentToVersionedForDistinctG(t *testing.T) {
	// The paper's original construction and our versioned reconstruction
	// must produce identical results whenever the paper's distinct-g
	// precondition holds.
	rng := rand.New(rand.NewSource(81))
	op := core.MulMod{M: 1_000_003}
	for trial := 0; trial < 60; trial++ {
		s := randomDistinctGIR(rng, 2+rng.Intn(25))
		init := make([]int64, s.M)
		for x := range init {
			init[x] = rng.Int63n(op.M-2) + 2
		}
		want := core.RunSequential[int64](s, op, init)
		versioned, err := Solve[int64](s, op, init, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cell, err := SolveCellGraph[int64](s, op, init, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if versioned.Values[x] != want[x] {
				t.Fatalf("trial %d: versioned cell %d: got %d, want %d", trial, x, versioned.Values[x], want[x])
			}
			if cell.Values[x] != want[x] {
				t.Fatalf("trial %d: cell-graph cell %d: got %d, want %d", trial, x, cell.Values[x], want[x])
			}
		}
		// Power traces must match term for term.
		for x := range versioned.Powers {
			a, b := versioned.Powers[x], cell.Powers[x]
			if len(a) != len(b) {
				t.Fatalf("trial %d cell %d: power traces differ: %v vs %v", trial, x, a, b)
			}
			for k := range a {
				if a[k].Sink != b[k].Sink || a[k].Count.Cmp(b[k].Count) != 0 {
					t.Fatalf("trial %d cell %d term %d: %v vs %v", trial, x, k, a[k], b[k])
				}
			}
		}
	}
}

func TestCellGraphRejectsNonDistinctG(t *testing.T) {
	s := &core.System{M: 2, N: 2, G: []int{0, 0}, F: []int{1, 1}, H: []int{1, 1}}
	_, err := BuildCellGraph(s)
	if !errors.Is(err, ErrGNotDistinctCell) {
		t.Fatalf("err = %v, want ErrGNotDistinctCell", err)
	}
	_, err = SolveCellGraph[int64](s, core.IntAdd{}, []int64{0, 0}, Options{})
	if err == nil {
		t.Fatal("SolveCellGraph accepted non-distinct g")
	}
}

func TestCellGraphFig6Structure(t *testing.T) {
	// On the Fibonacci system (distinct g), the cell graph must have the
	// same structure as the versioned one — the paper's Fig. 6.
	s := paperfig.Fig4GIR(5)
	dv, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := BuildCellGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	if dv.G.N != dc.G.N {
		t.Fatalf("node counts differ: %d vs %d", dv.G.N, dc.G.N)
	}
	for v := 0; v < dv.G.N; v++ {
		a, b := dv.G.Out[v], dc.G.Out[v]
		if len(a) != len(b) {
			t.Fatalf("node %d: out-degree %d vs %d", v, len(a), len(b))
		}
		for k := range a {
			if a[k].To != b[k].To || a[k].Label.Cmp(b[k].Label) != 0 {
				t.Fatalf("node %d edge %d: %v vs %v", v, k, a[k], b[k])
			}
		}
	}
}

func TestCellGraphAllEngines(t *testing.T) {
	s := paperfig.Fig4GIR(10)
	op := core.MulMod{M: 97}
	init := make([]int64, 10)
	for x := range init {
		init[x] = int64(x + 2)
	}
	want := core.RunSequential[int64](s, op, init)
	for _, eng := range engines() {
		res, err := SolveCellGraph[int64](s, op, init, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if res.Values[x] != want[x] {
				t.Fatalf("engine %v cell %d: got %d, want %d", eng, x, res.Values[x], want[x])
			}
		}
	}
}
