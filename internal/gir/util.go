package gir

import "sync/atomic"

// addInt64 is atomic addition on a plain int64 counter.
func addInt64(addr *int64, delta int64) { atomic.AddInt64(addr, delta) }
