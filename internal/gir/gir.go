// Package gir solves general indexed recurrence systems (paper §4):
//
//	for i = 0 .. n-1:  A[g(i)] := A[f(i)] ⊗ A[h(i)]
//
// with arbitrary f, g, h, a commutative ⊗, and the power a^k treated as an
// atomic operation (both requirements are the paper's: traces are trees, so
// evaluation order cannot be preserved, and trace length can be exponential,
// e.g. fib(n) for A[i] = A[i-1] ⊗ A[i-2]).
//
// # The dependence graph
//
// The paper builds a graph over assignment targets g(i) plus primed leaf
// nodes f(i)', h(i)” for initial-value references (its Fig. 6), assuming
// distinct g and deferring non-distinct g to the unpublished full paper.
// We reconstruct the natural completion with per-iteration VERSION nodes:
//
//   - one leaf node per array cell (node x, 0 ≤ x < m) standing for the
//     initial value A₀[x] — these are the sinks;
//   - one node per iteration (node m+i) standing for the value written by
//     iteration i;
//   - iteration i gets one edge per operand: to node m+j when j < i is the
//     latest iteration with g(j) = that operand cell (the read sees version
//     j), or to the operand's leaf otherwise. The two operand edges may
//     coincide, yielding label 2.
//
// For distinct g this collapses to the paper's graph (each cell has at most
// one version); for non-distinct g it is still exact, because a read always
// names the version live at that iteration. Iteration numbers strictly
// decrease along edges, so the graph is a DAG by construction.
//
// The exponent of A₀[x] in the trace of node v is then exactly the number
// of distinct paths v ⇝ leaf(x) — CAP — and
//
//	A'[x] = ⊗_{leaves l} A₀[l] ^ CAP(final(x), l)
//
// where final(x) is node m+LastWriter[x], or leaf x if x is never written.
package gir

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"indexedrec/internal/cap"
	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// ErrInitLen is returned by SolveCtx when len(init) != s.M. The legacy
// Solve wrapper converts it back into the historical panic.
var ErrInitLen = errors.New("gir: init length does not match cell count")

// ErrExponentLimit re-exports the CAP engines' bit-cap error so callers can
// match it without importing internal/cap.
var ErrExponentLimit = cap.ErrExponentLimit

// DepGraph is the versioned dependence graph of a general IR system.
type DepGraph struct {
	// G is the CAP input: nodes 0..M-1 are cell leaves (sinks), nodes
	// M..M+N-1 are iteration versions.
	G *cap.Graph
	// M and N mirror the system's dimensions.
	M, N int
	// Final[x] is the node holding cell x's final value: M+LastWriter[x],
	// or x itself when the cell is never written.
	Final []int
}

// LeafNode returns the node id of cell x's initial value.
func (d *DepGraph) LeafNode(x int) int { return x }

// IterNode returns the node id of iteration i's result.
func (d *DepGraph) IterNode(i int) int { return d.M + i }

// Build constructs the dependence graph in O(n + m). G need not be
// distinct (see package comment).
func Build(s *core.System) (*DepGraph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	deps := core.ComputeDeps(s)
	edges := make(map[int][]cap.Edge, s.N)
	one := big.NewInt(1)
	for i := 0; i < s.N; i++ {
		ft := s.F[i]
		if deps.FPrev[i] >= 0 {
			ft = s.M + deps.FPrev[i]
		}
		ht := s.OperandH(i)
		if deps.HPrev[i] >= 0 {
			ht = s.M + deps.HPrev[i]
		}
		edges[s.M+i] = []cap.Edge{{To: ft, Label: one}, {To: ht, Label: one}}
	}
	d := &DepGraph{
		G:     cap.NewGraph(s.M+s.N, edges),
		M:     s.M,
		N:     s.N,
		Final: make([]int, s.M),
	}
	for x := 0; x < s.M; x++ {
		if w := deps.LastWriter[x]; w >= 0 {
			d.Final[x] = s.M + w
		} else {
			d.Final[x] = x
		}
	}
	return d, nil
}

// Engine selects the CAP implementation used by Solve.
type Engine int

const (
	// EngineSquaring is the paper's parallel log-round algorithm (default).
	EngineSquaring Engine = iota
	// EngineDP is the sequential dynamic-programming reference.
	EngineDP
	// EngineMatrix is dense adjacency-matrix repeated squaring.
	EngineMatrix
	// EngineWavefront is the level-synchronized parallel sweep: linear
	// work, critical-path depth (best for shallow dependence graphs).
	EngineWavefront
)

// String names the engine as it appears in options and reports.
func (e Engine) String() string {
	switch e {
	case EngineSquaring:
		return "squaring"
	case EngineDP:
		return "dp"
	case EngineMatrix:
		return "matrix"
	case EngineWavefront:
		return "wavefront"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Options configure Solve.
type Options struct {
	// Procs bounds goroutines in the CAP rounds and the evaluation phase.
	Procs int
	// Engine picks the CAP implementation; zero value is the paper's
	// parallel squaring algorithm.
	Engine Engine
	// MaxExponentBits caps the bit length of any CAP path count (the
	// exponent of an initial value in a trace). Path counts grow like
	// fib(n), so the cap turns a would-be OOM on adversarial instances
	// into a prompt ErrExponentLimit. <= 0 means unlimited.
	MaxExponentBits int
}

// Result carries the solution and its cost profile.
type Result[T any] struct {
	// Values is the final array, equal to core.RunSequential's output.
	Values []T
	// Powers[x] lists the (leaf cell, exponent) trace of cell x, sorted by
	// cell — the paper's Fig. 5 "counting powers" artifact.
	Powers [][]cap.Term
	// CAPStats is non-nil when the squaring engine ran.
	CAPStats *cap.Stats
	// PowCalls counts atomic power operations in the evaluation phase.
	PowCalls int64
}

// ErrEngine is returned for an unknown Engine value.
var ErrEngine = errors.New("gir: unknown CAP engine")

// Solve computes the final array of a general IR system in parallel:
// dependence graph construction, CAP, then a per-cell product of atomic
// powers. Requires a commutative monoid with Pow (enforced by the type).
// An init-length mismatch panics (the historical contract); use SolveCtx
// for the error-returning, panic-safe API.
func Solve[T any](s *core.System, op core.CommutativeMonoid[T], init []T, opt Options) (*Result[T], error) {
	res, err := SolveCtx(context.Background(), s, op, init, opt)
	if errors.Is(err, ErrInitLen) {
		panic("gir: solveOnGraph: len(init) != s.M")
	}
	return res, err
}

// SolveCtx is the hardened entry point: identical algorithm, but every
// failure — invalid system, init-length mismatch, a panic or Abort inside
// op.Combine/op.Pow, an exponent exceeding opt.MaxExponentBits, or
// cancellation of ctx — returns as an error with all worker goroutines
// joined.
func SolveCtx[T any](ctx context.Context, s *core.System, op core.CommutativeMonoid[T], init []T, opt Options) (*Result[T], error) {
	d, err := Build(s)
	if err != nil {
		return nil, err
	}
	return solveOnGraphCtx(ctx, d, s, op, init, opt)
}

// evalPowersCtx is the evaluation phase: every cell's value is a product of
// atomic powers of initial values; cells are independent, so this is one
// parallel step of O(k) combines per cell (O(log k) with tree reduction;
// k is tiny in practice compared to the trace length it replaces). Panics
// in op.Combine/op.Pow surface as errors; cancellation stops the sweep.
func evalPowersCtx[T any](ctx context.Context, d *DepGraph, op core.CommutativeMonoid[T], init []T, counts cap.Counts, res *Result[T], procs int) error {
	values := make([]T, d.M)
	powers := make([][]cap.Term, d.M)
	var powCalls int64
	if err := parallel.ForCtx(ctx, d.M, procs, func(lo, hi int) error {
		var local int64
		for x := lo; x < hi; x++ {
			terms := counts[d.Final[x]]
			powers[x] = terms
			acc := op.Identity()
			for _, t := range terms {
				acc = op.Combine(acc, op.Pow(init[t.Sink], t.Count))
				local++
			}
			values[x] = acc
		}
		addInt64(&powCalls, local)
		return nil
	}); err != nil {
		return err
	}
	res.Values = values
	res.Powers = powers
	res.PowCalls = powCalls
	return nil
}
