package gir

import (
	"context"
	"errors"
	"fmt"

	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// Shard-slice replays of compiled general plans. Once CAP has fixed the
// path counts, the evaluation phase is embarrassingly parallel per cell
// (paper §5): cell x's value is a product of atomic powers of initial
// values, touching no other cell's output. A contiguous cell range is
// therefore a self-contained slice of the solve, bit-identical to the same
// cells of the full replay — the distribution unit of the general family.

// ErrShardRange is returned when a requested cell range does not fit the
// plan.
var ErrShardRange = errors.New("gir: shard range out of bounds")

// SolvePlanRangeCtx replays a compiled plan for cells [lo, hi) only,
// returning their final values (index k holds cell lo+k). Each cell's
// combines are exactly those SolvePlanCtx performs for it, so the slice is
// bit-identical to Values[lo:hi] of the full replay. Error and cancellation
// behavior follows the SolvePlanCtx contract.
func SolvePlanRangeCtx[T any](ctx context.Context, p *Plan, op core.CommutativeMonoid[T], init []T, lo, hi int, procs int) (_ []T, err error) {
	defer parallel.RecoverTo(&err)
	if len(init) != p.D.M {
		return nil, fmt.Errorf("%w: len(init) = %d, want m = %d", ErrInitLen, len(init), p.D.M)
	}
	if lo < 0 || hi > p.D.M || lo > hi {
		return nil, fmt.Errorf("%w: cells [%d, %d) of %d", ErrShardRange, lo, hi, p.D.M)
	}
	out := make([]T, hi-lo)
	if err := parallel.ForCtx(ctx, hi-lo, procs, func(a, b int) error {
		for k := a; k < b; k++ {
			x := lo + k
			terms := p.Counts[p.D.Final[x]]
			acc := op.Identity()
			for _, t := range terms {
				acc = op.Combine(acc, op.Pow(init[t.Sink], t.Count))
			}
			out[k] = acc
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
