package gir

import (
	"fmt"

	"indexedrec/internal/core"
)

// Incremental (streaming) extension of a general (GIR) solve. Unlike the
// ordinary family, general systems may rewrite cells, so there is no
// settled-prefix shortcut — but the sequential fold itself IS the semantic
// definition of the result, and each appended iteration costs exactly one
// Combine against the materialized state. AppendFold applies a batch that
// way; Stale decides when the session's cached dependence-DAG plan (used
// for cold re-solves and cluster re-homes) has drifted far enough from the
// concatenated system that it should be recompiled.

// AppendFold applies k iterations A[g[i]] = op(A[f[i]], A[h[i]]) to the
// materialized state cur, in order — the incremental extension of a general
// solve, bit-identical to core.RunSequential of the concatenated system by
// construction. A nil h selects the ordinary shape h = g. Indices are
// validated against len(cur) before any mutation.
func AppendFold[T any](cur []T, op core.Semigroup[T], g, f, h []int) error {
	k := len(g)
	if len(f) != k || (h != nil && len(h) != k) {
		return fmt.Errorf("%w: append map lengths disagree", core.ErrInvalidSystem)
	}
	m := len(cur)
	check := func(name string, idx []int) error {
		for i, v := range idx {
			if v < 0 || v >= m {
				return fmt.Errorf("%w: append %s[%d] = %d out of range [0,%d)",
					core.ErrInvalidSystem, name, i, v, m)
			}
		}
		return nil
	}
	if err := check("g", g); err != nil {
		return err
	}
	if err := check("f", f); err != nil {
		return err
	}
	if h != nil {
		if err := check("h", h); err != nil {
			return err
		}
	}
	if h == nil {
		for i := 0; i < k; i++ {
			cur[g[i]] = op.Combine(cur[f[i]], cur[g[i]])
		}
		return nil
	}
	for i := 0; i < k; i++ {
		cur[g[i]] = op.Combine(cur[f[i]], cur[h[i]])
	}
	return nil
}

// DefaultStaleFraction is the appended-iteration fraction past which a
// session's cached general plan is considered stale (see Stale).
const DefaultStaleFraction = 0.5

// Stale reports whether a cached plan compiled for planN iterations should
// be recompiled now that appended more iterations exist beyond it. The plan
// only serves cold re-solves (a session's values advance incrementally), so
// it is refreshed lazily: once the appended suffix exceeds fraction·planN
// (DefaultStaleFraction when fraction <= 0), a re-solve through the stale
// plan would miss too much of the system and the caller should recompile
// over the concatenated structure instead.
func Stale(planN, appended int, fraction float64) bool {
	if fraction <= 0 {
		fraction = DefaultStaleFraction
	}
	if appended <= 0 {
		return false
	}
	if planN <= 0 {
		return true
	}
	return float64(appended) > fraction*float64(planN)
}
