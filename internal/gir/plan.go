package gir

import (
	"context"
	"fmt"

	"indexedrec/internal/cap"
	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// Compiled solve plans for the general solver. The dependence graph and the
// CAP path counts depend only on the index maps (g, f, h) and the dimensions
// — never on operator or data — and CAP is by far the dominant cost of a
// general solve. CompilePlanCtx runs graph construction plus CAP once;
// SolvePlanCtx replays just the power-evaluation phase against fresh init
// data, bit-identical to SolveCtx (it is literally the same final phase).

// Plan is the compiled, data-independent part of a general-IR solve.
// Immutable after compilation and safe for concurrent replays; the Powers
// slices inside replay results alias the plan's counts and are read-only.
type Plan struct {
	// D is the versioned dependence graph the counts were computed on.
	D *DepGraph
	// Counts holds every node's CAP path counts to every reachable sink —
	// the exponent of each initial value in each trace.
	Counts cap.Counts
	// Stats is the squaring engine's cost profile (nil for other engines).
	Stats *cap.Stats
	// MaxExponentBits records the bit cap the counts were computed under
	// (0 = unlimited); replays inherit it by construction.
	MaxExponentBits int
}

// countCtx runs the CAP engine selected by opt over d's graph — the
// structure-only phase shared by direct solves and plan compilation.
func countCtx(ctx context.Context, d *DepGraph, opt Options) (cap.Counts, *cap.Stats, error) {
	switch opt.Engine {
	case EngineSquaring:
		return cap.CountSquaringCtx(ctx, d.G, cap.SquaringOptions{
			Procs:   opt.Procs,
			MaxBits: opt.MaxExponentBits,
		})
	case EngineDP:
		counts, err := cap.CountDPCtx(ctx, d.G, opt.MaxExponentBits)
		return counts, nil, err
	case EngineMatrix:
		counts, err := cap.CountMatrixCtx(ctx, d.G, opt.Procs, opt.MaxExponentBits)
		return counts, nil, err
	case EngineWavefront:
		counts, err := cap.CountWavefrontCtx(ctx, d.G, opt.Procs, opt.MaxExponentBits)
		return counts, nil, err
	default:
		return nil, nil, fmt.Errorf("%w: %d", ErrEngine, int(opt.Engine))
	}
}

// CompilePlanCtx builds the dependence graph and runs CAP — everything a
// general solve does before it first touches init values. Cancellation and
// the exponent bit cap follow the SolveCtx contract.
func CompilePlanCtx(ctx context.Context, s *core.System, opt Options) (_ *Plan, err error) {
	defer parallel.RecoverTo(&err)
	d, err := Build(s)
	if err != nil {
		return nil, err
	}
	// CAP is many parallel rounds over a graph of M + N nodes; one gang
	// carries them all instead of spawning workers per round.
	ctx, release := parallel.EnsureGang(ctx, opt.Procs, s.M+s.N)
	defer release()
	counts, st, err := countCtx(ctx, d, opt)
	if err != nil {
		return nil, fmt.Errorf("gir: CAP failed: %w", err)
	}
	return &Plan{D: d, Counts: counts, Stats: st, MaxExponentBits: opt.MaxExponentBits}, nil
}

// SizeBytes estimates the plan's resident size for cache accounting: graph
// edges plus every count term (sink id + big.Int words).
func (p *Plan) SizeBytes() int64 {
	var size int64
	if p.D != nil && p.D.G != nil {
		for _, out := range p.D.G.Out {
			size += int64(len(out)) * 24
			for _, e := range out {
				size += int64(len(e.Label.Bits())) * 8
			}
		}
		size += int64(len(p.D.Final)) * 8
	}
	for _, terms := range p.Counts {
		size += int64(len(terms)) * 24
		for _, t := range terms {
			size += int64(len(t.Count.Bits())) * 8
		}
	}
	return size
}

// SolvePlanCtx replays a compiled plan against fresh init data: only the
// power-evaluation phase runs — one parallel sweep of atomic powers and
// combines per cell — which is exactly the final phase of SolveCtx, so
// results are bit-identical to the direct solve's. Panics in
// op.Combine/op.Pow return as errors; cancellation stops the sweep.
func SolvePlanCtx[T any](ctx context.Context, p *Plan, op core.CommutativeMonoid[T], init []T, procs int) (_ *Result[T], err error) {
	defer parallel.RecoverTo(&err)
	if len(init) != p.D.M {
		return nil, fmt.Errorf("%w: len(init) = %d, want m = %d", ErrInitLen, len(init), p.D.M)
	}
	ctx, release := parallel.EnsureGang(ctx, procs, p.D.M)
	defer release()
	res := &Result[T]{CAPStats: p.Stats}
	if err := evalPowersCtx(ctx, p.D, op, init, p.Counts, res, procs); err != nil {
		return nil, err
	}
	return res, nil
}
