package cap

import (
	"context"
	"math/big"

	"indexedrec/internal/parallel"
)

// CountMatrix computes CAP by dense repeated squaring of the adjacency
// matrix with unit self-loops on sinks: after t squarings, entry (v, l) for
// a sink l is the number of paths v ⇝ l of length ≤ 2^t (padding with the
// sink self-loop is only possible at the end of a path, so counting stays
// exact). It squares ⌈log₂ L⌉ times where L is the longest path.
//
// O(n³ log n) work — the up-to-O(n²)-processor formulation the paper's
// complexity claim alludes to — and a fully independent comparator for the
// sparse engine. Intended for small-to-medium n.
func CountMatrix(g *Graph, procs int) (Counts, error) {
	return CountMatrixCtx(context.Background(), g, procs, 0)
}

// CountMatrixCtx is CountMatrix with cancellation (checked between
// squarings and between row chunks) and an exponent bit cap (maxBits <= 0
// means unlimited).
func CountMatrixCtx(ctx context.Context, g *Graph, procs, maxBits int) (Counts, error) {
	dag := g.toDAG()
	longest, err := dag.LongestPathLen()
	if err != nil {
		return nil, err
	}
	n := g.N
	a := make([][]*big.Int, n)
	for v := 0; v < n; v++ {
		a[v] = make([]*big.Int, n)
		for w := 0; w < n; w++ {
			a[v][w] = new(big.Int)
		}
		for _, e := range g.Out[v] {
			a[v][e.To].Set(e.Label)
		}
		if g.sink[v] {
			a[v][v].SetInt64(1)
		}
	}
	for pow := 1; pow < longest; pow *= 2 {
		a, err = matSquareCtx(ctx, a, procs, maxBits)
		if err != nil {
			return nil, err
		}
	}
	acc := make([]map[int]*big.Int, n)
	for v := 0; v < n; v++ {
		m := make(map[int]*big.Int)
		if g.sink[v] {
			m[v] = big.NewInt(1)
		} else {
			for l := 0; l < n; l++ {
				if g.sink[l] && a[v][l].Sign() != 0 {
					m[l] = a[v][l]
				}
			}
		}
		acc[v] = m
	}
	return mapsToCounts(acc), nil
}

// matSquareCtx returns a² with row-parallel evaluation, honoring
// cancellation and the exponent bit cap.
func matSquareCtx(ctx context.Context, a [][]*big.Int, procs, maxBits int) ([][]*big.Int, error) {
	n := len(a)
	out := make([][]*big.Int, n)
	err := parallel.ForCtx(ctx, n, procs, func(lo, hi int) error {
		var tmp big.Int
		for v := lo; v < hi; v++ {
			row := make([]*big.Int, n)
			for w := 0; w < n; w++ {
				row[w] = new(big.Int)
			}
			for k := 0; k < n; k++ {
				if a[v][k].Sign() == 0 {
					continue
				}
				for w := 0; w < n; w++ {
					if a[k][w].Sign() == 0 {
						continue
					}
					tmp.Mul(a[v][k], a[k][w])
					row[w].Add(row[w], &tmp)
					if err := checkBits(row[w], maxBits); err != nil {
						return err
					}
				}
			}
			out[v] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
