package cap

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"indexedrec/internal/graph"
)

// ErrExponentLimit is returned by the Ctx engines when a path count exceeds
// the configured bit cap. Path counts grow like fib(n) (the paper's §4
// observation), so an unguarded big.Int computation on an adversarial or
// machine-generated instance can exhaust memory; the cap turns that into a
// prompt, typed error.
var ErrExponentLimit = errors.New("cap: path count exceeds exponent bit limit")

// checkBits returns ErrExponentLimit (wrapped with context) when maxBits is
// positive and label needs more bits than it allows.
func checkBits(label *big.Int, maxBits int) error {
	if maxBits > 0 && label.BitLen() > maxBits {
		return fmt.Errorf("%w: %d bits > cap %d", ErrExponentLimit, label.BitLen(), maxBits)
	}
	return nil
}

// Edge is a labeled edge: Label counts parallel paths represented by it.
type Edge struct {
	To    int
	Label *big.Int
}

// Graph is a labeled DAG in the dependence orientation (edges point toward
// sinks / initial values). Out[v] is sorted by target and free of duplicate
// targets — parallel edges are pre-merged into labels.
type Graph struct {
	N    int
	Out  [][]Edge
	sink []bool
}

// FromDAG converts a multigraph into labeled form, merging parallel edges
// into integer labels.
func FromDAG(g *graph.DAG) *Graph {
	c := &Graph{N: g.N, Out: make([][]Edge, g.N), sink: make([]bool, g.N)}
	for v := 0; v < g.N; v++ {
		if len(g.Out[v]) == 0 {
			c.sink[v] = true
			continue
		}
		mult := make(map[int]int64)
		for _, w := range g.Out[v] {
			mult[w]++
		}
		c.Out[v] = make([]Edge, 0, len(mult))
		for w, k := range mult {
			c.Out[v] = append(c.Out[v], Edge{To: w, Label: big.NewInt(k)})
		}
		sort.Slice(c.Out[v], func(a, b int) bool { return c.Out[v][a].To < c.Out[v][b].To })
	}
	return c
}

// NewGraph builds a labeled graph directly. Out lists may be unsorted and
// contain duplicate targets; they are normalized. Nodes with no out-edges
// are the sinks.
func NewGraph(n int, edges map[int][]Edge) *Graph {
	c := &Graph{N: n, Out: make([][]Edge, n), sink: make([]bool, n)}
	for v := 0; v < n; v++ {
		out := edges[v]
		if len(out) == 0 {
			c.sink[v] = true
			continue
		}
		c.Out[v] = mergeEdges(out)
	}
	return c
}

// mergeEdges sums labels of duplicate targets and sorts by target — the
// paper's "paths addition" step (Fig. 8).
func mergeEdges(out []Edge) []Edge {
	m := make(map[int]*big.Int, len(out))
	for _, e := range out {
		if acc, ok := m[e.To]; ok {
			acc.Add(acc, e.Label)
		} else {
			m[e.To] = new(big.Int).Set(e.Label)
		}
	}
	merged := make([]Edge, 0, len(m))
	for w, l := range m {
		merged = append(merged, Edge{To: w, Label: l})
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].To < merged[b].To })
	return merged
}

// IsSink reports whether v has no outgoing edges.
func (g *Graph) IsSink(v int) bool { return g.sink[v] }

// Sinks returns the sink nodes in increasing order.
func (g *Graph) Sinks() []int {
	var s []int
	for v := 0; v < g.N; v++ {
		if g.sink[v] {
			s = append(s, v)
		}
	}
	return s
}

// Term is one entry of a CAP result: Count paths from the queried node to
// Sink.
type Term struct {
	Sink  int
	Count *big.Int
}

// Counts holds, for every node, its path counts to every reachable sink,
// sorted by sink id. Counts[sink] is the singleton {sink, 1} by convention
// (the empty path), matching the GIR semantics where a sink "contains" its
// own initial value.
type Counts [][]Term

// Equal reports whether two results are identical.
func (c Counts) Equal(o Counts) bool {
	if len(c) != len(o) {
		return false
	}
	for v := range c {
		if len(c[v]) != len(o[v]) {
			return false
		}
		for k := range c[v] {
			if c[v][k].Sink != o[v][k].Sink || c[v][k].Count.Cmp(o[v][k].Count) != 0 {
				return false
			}
		}
	}
	return true
}

// String renders a result compactly for test failure messages.
func (c Counts) String() string {
	s := ""
	for v := range c {
		s += fmt.Sprintf("%d:%v ", v, c[v])
	}
	return s
}

// String renders the term as (sink:count) for traces and tests.
func (t Term) String() string { return fmt.Sprintf("(%d:%s)", t.Sink, t.Count) }
