package cap

import (
	"context"
	"math/big"

	"indexedrec/internal/graph"
)

// toDAG strips labels back to a multigraph shape for reuse of the
// topological-order machinery (labels don't affect ordering).
func (g *Graph) toDAG() *graph.DAG {
	d := graph.New(g.N)
	for v := 0; v < g.N; v++ {
		for _, e := range g.Out[v] {
			d.AddEdge(v, e.To)
		}
	}
	return d
}

// CountDP computes CAP by dynamic programming over a topological order
// (sinks first): paths(v, l) = Σ_{v→w} label(v,w) · paths(w, l), with
// paths(l, l) = 1. It is the sequential reference the parallel engines are
// verified against. Returns graph.ErrCycle if the graph is cyclic.
func CountDP(g *Graph) (Counts, error) {
	return CountDPCtx(context.Background(), g, 0)
}

// CountDPCtx is CountDP with cancellation (checked every dpCtxStride nodes)
// and an exponent bit cap (maxBits <= 0 means unlimited; a violation
// returns ErrExponentLimit).
func CountDPCtx(ctx context.Context, g *Graph, maxBits int) (Counts, error) {
	order, err := g.toDAG().TopoOrder()
	if err != nil {
		return nil, err
	}
	const dpCtxStride = 1024
	acc := make([]map[int]*big.Int, g.N)
	for k, v := range order {
		if k%dpCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if g.sink[v] {
			acc[v] = map[int]*big.Int{v: big.NewInt(1)}
			continue
		}
		m := make(map[int]*big.Int)
		for _, e := range g.Out[v] {
			for l, c := range acc[e.To] {
				contrib := new(big.Int).Mul(e.Label, c)
				if old, ok := m[l]; ok {
					old.Add(old, contrib)
					contrib = old
				} else {
					m[l] = contrib
				}
				if err := checkBits(contrib, maxBits); err != nil {
					return nil, err
				}
			}
		}
		acc[v] = m
	}
	return mapsToCounts(acc), nil
}

// mapsToCounts normalizes per-node maps into the sorted Counts form.
func mapsToCounts(acc []map[int]*big.Int) Counts {
	out := make(Counts, len(acc))
	for v, m := range acc {
		terms := make([]Term, 0, len(m))
		for l, c := range m {
			terms = append(terms, Term{Sink: l, Count: c})
		}
		sortTerms(terms)
		out[v] = terms
	}
	return out
}

func sortTerms(terms []Term) {
	for i := 1; i < len(terms); i++ {
		for j := i; j > 0 && terms[j].Sink < terms[j-1].Sink; j-- {
			terms[j], terms[j-1] = terms[j-1], terms[j]
		}
	}
}
