package cap

import (
	"context"
	"math/big"
	"sync/atomic"

	"indexedrec/internal/parallel"
)

// Stats reports the cost profile of a CountSquaring run, used by the
// ablation benchmarks (DESIGN.md E12).
type Stats struct {
	// Rounds is the number of multiplication+addition rounds executed.
	Rounds int
	// EdgesPerRound[t] is the edge count after round t (round 0 = input).
	EdgesPerRound []int
	// Mults counts label multiplications ("paths multiplication" work).
	Mults int64
	// Adds counts label additions ("paths addition" work).
	Adds int64
}

// SquaringOptions configure the parallel CAP engine.
type SquaringOptions struct {
	// Procs is the goroutine count per round (<= 0: GOMAXPROCS).
	Procs int
	// OnRound, if non-nil, receives a snapshot of the evolving edge set
	// after each round — the Fig. 9 visualization hook. Sequential calls.
	OnRound func(round int, edges [][]Edge)
	// MaxBits caps the bit length of any path-count label; a label growing
	// past it aborts the run with ErrExponentLimit. <= 0 means unlimited.
	MaxBits int
}

// CountSquaring is the paper's parallel CAP algorithm (§4, Figs. 7–9).
//
// Invariant maintained per round t over the working edge set E_t:
//
//   - an edge v→k with k interior carries the number of walks v ⇝ k of
//     length exactly 2^t;
//   - an edge v→l with l a sink carries the number of paths v ⇝ l of
//     length ≤ 2^t.
//
// One round does, for every node v in parallel:
//
//	paths multiplication — each interior edge v→k [x] is composed with every
//	current edge k→j [y] into v→j [x·y], and the consumed v→k is deleted
//	(the reconstruction of the paper's "marked edge" deletion);
//	paths addition — parallel edges v→j are summed into one label (Fig. 8).
//
// Sink edges are carried over unchanged. A path of length L ∈ (2^t, 2^{t+1}]
// from v to sink l decomposes uniquely into its length-2^t prefix (an
// interior walk, counted by v→k) and the remaining ≤ 2^t suffix (counted by
// k→l), so labels stay exact path counts; after ⌈log₂ L_max⌉ rounds no
// interior edges remain and the sink labels are CAP(G).
func CountSquaring(g *Graph, opt SquaringOptions) (Counts, *Stats, error) {
	return CountSquaringCtx(context.Background(), g, opt)
}

// CountSquaringCtx is the hardened CountSquaring: cancellation of ctx is
// observed between rounds (and between chunks within a round), a panic in
// the OnRound hook returns as an error, and opt.MaxBits bounds label
// growth. All worker goroutines are joined before return.
func CountSquaringCtx(ctx context.Context, g *Graph, opt SquaringOptions) (_ Counts, _ *Stats, err error) {
	defer parallel.RecoverTo(&err)
	// Validate acyclicity up front: the round loop below would otherwise
	// never run out of interior edges.
	if _, err := g.toDAG().TopoOrder(); err != nil {
		return nil, nil, err
	}

	cur := make([][]Edge, g.N)
	for v := range cur {
		cur[v] = append([]Edge(nil), g.Out[v]...)
	}
	st := &Stats{EdgesPerRound: []int{countEdges(cur)}}

	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		interior := false
		for v := range cur {
			for _, e := range cur[v] {
				if !g.sink[e.To] {
					interior = true
					break
				}
			}
			if interior {
				break
			}
		}
		if !interior {
			break
		}

		next := make([][]Edge, g.N)
		var mults, adds atomic.Int64
		if err := parallel.ForCtx(ctx, g.N, opt.Procs, func(lo, hi int) error {
			var localM, localA int64
			for v := lo; v < hi; v++ {
				if len(cur[v]) == 0 {
					continue
				}
				// A lone sink edge can neither compose nor merge: carry the
				// slice itself instead of copying. Later rounds only read
				// cur, so the alias is safe, and by the last rounds — when
				// most nodes have collapsed to one sink edge — this removes
				// the bulk of the round's allocation.
				if len(cur[v]) == 1 && g.sink[cur[v][0].To] {
					if err := checkBits(cur[v][0].Label, opt.MaxBits); err != nil {
						return err
					}
					next[v] = cur[v]
					continue
				}
				buf := make([]Edge, 0, len(cur[v]))
				for _, e := range cur[v] {
					if g.sink[e.To] {
						buf = append(buf, e) // persists unchanged
						continue
					}
					// paths multiplication: compose with every edge of the
					// interior target, consuming e.
					for _, e2 := range cur[e.To] {
						label := new(big.Int).Mul(e.Label, e2.Label)
						if err := checkBits(label, opt.MaxBits); err != nil {
							return err
						}
						buf = append(buf, Edge{To: e2.To, Label: label})
						localM++
					}
				}
				merged := mergeEdges(buf)
				for _, e := range merged {
					if err := checkBits(e.Label, opt.MaxBits); err != nil {
						return err
					}
				}
				localA += int64(len(buf) - len(merged))
				next[v] = merged
			}
			mults.Add(localM)
			adds.Add(localA)
			return nil
		}); err != nil {
			return nil, nil, err
		}
		st.Mults += mults.Load()
		st.Adds += adds.Load()
		st.Rounds++
		cur = next
		st.EdgesPerRound = append(st.EdgesPerRound, countEdges(cur))
		if opt.OnRound != nil {
			opt.OnRound(st.Rounds, snapshotEdges(cur))
		}
	}

	// Read off: every remaining edge targets a sink and carries the path
	// count; a sink's own entry is the conventional {sink: 1}.
	acc := make([]map[int]*big.Int, g.N)
	for v := 0; v < g.N; v++ {
		if g.sink[v] {
			acc[v] = map[int]*big.Int{v: big.NewInt(1)}
			continue
		}
		m := make(map[int]*big.Int, len(cur[v]))
		for _, e := range cur[v] {
			m[e.To] = e.Label
		}
		acc[v] = m
	}
	return mapsToCounts(acc), st, nil
}

func countEdges(out [][]Edge) int {
	total := 0
	for _, es := range out {
		total += len(es)
	}
	return total
}

func snapshotEdges(out [][]Edge) [][]Edge {
	cp := make([][]Edge, len(out))
	for v, es := range out {
		cp[v] = make([]Edge, len(es))
		for k, e := range es {
			cp[v][k] = Edge{To: e.To, Label: new(big.Int).Set(e.Label)}
		}
	}
	return cp
}
