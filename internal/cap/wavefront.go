package cap

import (
	"context"
	"math/big"

	"indexedrec/internal/parallel"
)

// CountWavefront computes CAP by a level-synchronized parallel sweep: nodes
// are grouped by their longest distance to a sink ("level"), and each level
// is processed as one parallel step once all successors (strictly lower
// levels) are final. Work is O(V + E·S̄) like the sequential DP — no
// squaring premium — while the depth is the DAG's critical path rather than
// log n. It is the engine a practical system would use on bounded-depth
// graphs, and the foil the ablation compares the paper's log-round engine
// against: squaring wins on long chains with many processors, the wavefront
// wins on shallow wide graphs.
func CountWavefront(g *Graph, procs int) (Counts, error) {
	return CountWavefrontCtx(context.Background(), g, procs, 0)
}

// WavefrontLevels computes the wavefront labeling CountWavefront schedules
// by: level[v] is v's longest distance to a sink, so nodes of equal level
// never depend on each other and each level is one parallel round. This is
// the DAG-general form of grid2d's anti-diagonal schedule — on the
// dependence DAG of a 2-D recurrence grid, level(i,j) = i+j, the cell's
// anti-diagonal. Fails only if g has a cycle.
func WavefrontLevels(g *Graph) ([]int, error) {
	order, err := g.toDAG().TopoOrder()
	if err != nil {
		return nil, err
	}
	// Longest distance to a sink, computable in one sinks-first sweep.
	level := make([]int, g.N)
	for _, v := range order { // sinks first
		for _, e := range g.Out[v] {
			if l := level[e.To] + 1; l > level[v] {
				level[v] = l
			}
		}
	}
	return level, nil
}

// CountWavefrontCtx is CountWavefront with cancellation (checked between
// levels and between chunks within a level) and an exponent bit cap
// (maxBits <= 0 means unlimited).
func CountWavefrontCtx(ctx context.Context, g *Graph, procs, maxBits int) (Counts, error) {
	level, err := WavefrontLevels(g)
	if err != nil {
		return nil, err
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]int, maxLevel+1)
	for v := 0; v < g.N; v++ {
		byLevel[level[v]] = append(byLevel[level[v]], v)
	}

	acc := make([]map[int]*big.Int, g.N)
	for l := 0; l <= maxLevel; l++ {
		nodes := byLevel[l]
		if err := parallel.ForEachCtx(ctx, len(nodes), procs, func(k int) error {
			v := nodes[k]
			if g.sink[v] {
				acc[v] = map[int]*big.Int{v: big.NewInt(1)}
				return nil
			}
			m := make(map[int]*big.Int)
			for _, e := range g.Out[v] {
				for sink, c := range acc[e.To] {
					contrib := new(big.Int).Mul(e.Label, c)
					if old, ok := m[sink]; ok {
						old.Add(old, contrib)
						contrib = old
					} else {
						m[sink] = contrib
					}
					if err := checkBits(contrib, maxBits); err != nil {
						return err
					}
				}
			}
			acc[v] = m
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return mapsToCounts(acc), nil
}
