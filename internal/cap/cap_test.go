package cap

import (
	"math/big"
	"math/rand"
	"testing"

	"indexedrec/internal/graph"
)

// countsOf is a test helper running one engine by name.
func allEngines(t *testing.T, g *Graph) map[string]Counts {
	t.Helper()
	dp, err := CountDP(g)
	if err != nil {
		t.Fatal(err)
	}
	sq, _, err := CountSquaring(g, SquaringOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := CountMatrix(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := CountWavefront(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Counts{"dp": dp, "squaring": sq, "matrix": mx, "wavefront": wf}
}

func requireAgreement(t *testing.T, g *Graph) Counts {
	t.Helper()
	res := allEngines(t, g)
	dp := res["dp"]
	for name, c := range res {
		if !c.Equal(dp) {
			t.Fatalf("engine %s disagrees with dp:\n%s\nvs\n%s", name, c, dp)
		}
	}
	return dp
}

func TestFig9DoubleChainCAP(t *testing.T) {
	// The paper's example: a double chain of n nodes; CAP yields a single
	// edge v_i → v_0 labeled 2^i.
	n := 9
	g := FromDAG(graph.DoubleChain(n))
	counts := requireAgreement(t, g)
	for v := 1; v < n; v++ {
		if len(counts[v]) != 1 || counts[v][0].Sink != 0 {
			t.Fatalf("node %d: %v, want single sink 0", v, counts[v])
		}
		want := new(big.Int).Lsh(big.NewInt(1), uint(v))
		if counts[v][0].Count.Cmp(want) != 0 {
			t.Fatalf("node %d: count %s, want 2^%d", v, counts[v][0].Count, v)
		}
	}
}

func TestFibonacciCAP(t *testing.T) {
	// Fibonacci DAG (Fig. 6): paths(v -> 1) = fib(v), paths(v -> 0) = fib(v-1)
	// with fib(1)=1, fib(2)=1, ...
	n := 15
	g := FromDAG(graph.Fibonacci(n))
	counts := requireAgreement(t, g)
	fib := make([]int64, n+1)
	fib[1] = 1
	for i := 2; i <= n; i++ {
		fib[i] = fib[i-1] + fib[i-2]
	}
	for v := 2; v < n; v++ {
		if len(counts[v]) != 2 {
			t.Fatalf("node %d: %v", v, counts[v])
		}
		if counts[v][0].Sink != 0 || counts[v][0].Count.Int64() != fib[v-1] {
			t.Fatalf("node %d -> sink 0: %v, want %d", v, counts[v][0], fib[v-1])
		}
		if counts[v][1].Sink != 1 || counts[v][1].Count.Int64() != fib[v] {
			t.Fatalf("node %d -> sink 1: %v, want %d", v, counts[v][1], fib[v])
		}
	}
}

func TestCAPSingleChain(t *testing.T) {
	g := FromDAG(graph.Chain(6))
	counts := requireAgreement(t, g)
	for v := 1; v < 6; v++ {
		if len(counts[v]) != 1 || counts[v][0].Count.Int64() != 1 {
			t.Fatalf("node %d: %v, want one path", v, counts[v])
		}
	}
}

func TestCAPSinkConvention(t *testing.T) {
	g := FromDAG(graph.Chain(3))
	counts := requireAgreement(t, g)
	if len(counts[0]) != 1 || counts[0][0].Sink != 0 || counts[0][0].Count.Int64() != 1 {
		t.Fatalf("sink entry = %v, want {0,1}", counts[0])
	}
}

func TestCAPEnginesAgreeOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		d := graph.Random(rng, 2+rng.Intn(50), 4)
		requireAgreement(t, FromDAG(d))
	}
}

func TestCAPEnginesAgreeOnLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		d := graph.Layered(rng, 2+rng.Intn(5), 1+rng.Intn(6), 1+rng.Intn(3))
		requireAgreement(t, FromDAG(d))
	}
}

func TestCAPRejectsCycle(t *testing.T) {
	d := graph.New(2)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	g := FromDAG(d)
	if _, err := CountDP(g); err == nil {
		t.Error("CountDP accepted a cycle")
	}
	if _, _, err := CountSquaring(g, SquaringOptions{}); err == nil {
		t.Error("CountSquaring accepted a cycle")
	}
	if _, err := CountMatrix(g, 1); err == nil {
		t.Error("CountMatrix accepted a cycle")
	}
	if _, err := CountWavefront(g, 1); err == nil {
		t.Error("CountWavefront accepted a cycle")
	}
}

func TestSquaringLogarithmicRounds(t *testing.T) {
	// Chain of 1025 nodes: longest path 1024, rounds must be exactly
	// ⌈log₂ 1024⌉ = 10.
	g := FromDAG(graph.Chain(1025))
	_, st, err := CountSquaring(g, SquaringOptions{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 10 {
		t.Fatalf("Rounds = %d, want 10", st.Rounds)
	}
}

func TestSquaringExponentialLabelsStayExact(t *testing.T) {
	// Double chain of 300 nodes: the final label is 2^299, far beyond
	// int64; all engines must agree exactly.
	n := 300
	g := FromDAG(graph.DoubleChain(n))
	sq, _, err := CountSquaring(g, SquaringOptions{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
	if sq[n-1][0].Count.Cmp(want) != 0 {
		t.Fatalf("count = %s, want 2^%d", sq[n-1][0].Count, n-1)
	}
}

func TestCAPIterationTrace(t *testing.T) {
	// Fig. 9 behaviour: on a chain, after round t every remaining interior
	// edge spans exactly 2^t nodes; the OnRound hook must see shrinking
	// interior structure and the final round must be sink-only.
	g := FromDAG(graph.Chain(9))
	type snap struct {
		round    int
		interior int
	}
	var snaps []snap
	_, st, err := CountSquaring(g, SquaringOptions{
		Procs: 1,
		OnRound: func(round int, edges [][]Edge) {
			interior := 0
			for _, es := range edges {
				for _, e := range es {
					if !g.IsSink(e.To) {
						interior++
					}
				}
			}
			snaps = append(snaps, snap{round, interior})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != st.Rounds {
		t.Fatalf("OnRound fired %d times, Rounds=%d", len(snaps), st.Rounds)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].interior >= snaps[i-1].interior {
			t.Fatalf("interior edges not shrinking: %v", snaps)
		}
	}
	if snaps[len(snaps)-1].interior != 0 {
		t.Fatalf("final round still has interior edges: %v", snaps)
	}
}

func TestNewGraphNormalizes(t *testing.T) {
	g := NewGraph(3, map[int][]Edge{
		2: {{To: 1, Label: big.NewInt(1)}, {To: 1, Label: big.NewInt(2)}, {To: 0, Label: big.NewInt(5)}},
		1: {{To: 0, Label: big.NewInt(1)}},
	})
	if len(g.Out[2]) != 2 {
		t.Fatalf("Out[2] = %v, want merged to 2 edges", g.Out[2])
	}
	if g.Out[2][0].To != 0 || g.Out[2][0].Label.Int64() != 5 {
		t.Fatalf("Out[2][0] = %v", g.Out[2][0])
	}
	if g.Out[2][1].To != 1 || g.Out[2][1].Label.Int64() != 3 {
		t.Fatalf("Out[2][1] = %v, want label 3 (1+2 merged)", g.Out[2][1])
	}
	if !g.IsSink(0) || g.IsSink(1) || g.IsSink(2) {
		t.Error("sink flags wrong")
	}
}

func TestStatsCountsWork(t *testing.T) {
	g := FromDAG(graph.Fibonacci(10))
	_, st, err := CountSquaring(g, SquaringOptions{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mults == 0 {
		t.Error("expected some multiplications")
	}
	if len(st.EdgesPerRound) != st.Rounds+1 {
		t.Errorf("EdgesPerRound has %d entries for %d rounds", len(st.EdgesPerRound), st.Rounds)
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := FromDAG(graph.New(4))
	counts := requireAgreement(t, g)
	for v := 0; v < 4; v++ {
		if len(counts[v]) != 1 || counts[v][0].Sink != v {
			t.Fatalf("node %d: %v", v, counts[v])
		}
	}
}
