// Package cap implements CAP — Counting All Paths — the core of the paper's
// general-IR algorithm (Definition 1): given a DAG, compute for every node v
// and every sink l the number of distinct paths v ⇝ l. In the GIR setting
// the sinks are initial array values and the path count is the exponent of
// that initial value in v's trace.
//
// Three engines are provided and cross-checked against each other:
//
//   - CountDP: sequential dynamic programming over a topological order,
//     O(V·E·S) work. The correctness reference.
//   - CountSquaring: the paper's parallel algorithm — O(log n) lock-step
//     rounds of "paths multiplication" (composing successive edges) and
//     "paths addition" (summing parallel edges), Figs. 7–9. Round t's edge
//     set contains, for interior targets, the number of walks of length
//     exactly 2^t, and for sink targets, the number of paths of length
//     ≤ 2^t; after ⌈log₂ L⌉ rounds (L = longest path) only sink edges
//     remain and their labels are the answer. The scanned paper's
//     deletion/marking step is reconstructed as: an interior edge is
//     consumed (deleted) by the round that composes it, while sink edges
//     persist. This is provably equivalent to repeated squaring of the
//     adjacency matrix with unit self-loops on sinks.
//   - CountMatrix: that dense matrix squaring, spelled out, as an
//     independent comparator (O(n³ log n) work, O(log² n) depth).
//
// # Invariants
//
// Path counts grow as fast as Fibonacci numbers (paper §4), so labels are
// big.Int throughout; engines never mutate their input graph, and all three
// must agree cell-for-cell on any DAG (enforced by the cross-check tests).
//
// # Concurrency
//
// CountDP is sequential. CountSquaring and CountMatrix run their rounds on
// the package parallel runtime and honor context cancellation between
// rounds; the returned matrices are freshly allocated and safe to share
// read-only.
package cap
