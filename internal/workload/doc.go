// Package workload generates the controlled IR instances the benchmarks,
// experiments, and property tests sweep over:
//
//   - Chain / Chains — one long write chain (worst-case pointer-jumping
//     round count, and the shape that selects the ordinary solver's
//     blocked-scan schedule) and k parallel chains (the distribution unit
//     of a cluster scatter);
//   - RandomOrdinary — random distinct-g systems, the fuzzers' staple;
//   - Scatter — non-distinct g with commutative combine, modeled on the
//     Livermore gather/scatter kernels (GIR-only territory);
//   - Fibonacci / RandomGIR — general systems with tunable fan-in;
//   - InitInt64 — bounded random initial values.
//
// Invariants and contracts:
//
//   - Every generator is a pure function of its arguments: deterministic
//     given its seed (generators taking *rand.Rand draw only from it), so
//     experiment rows and fuzz cases reproduce exactly.
//   - Returned systems are fresh and valid (core.System.Validate passes);
//     generators never share or retain state, so concurrent calls with
//     separate rngs are safe.
//   - Shapes are stable across releases: benchmark baselines
//     (BENCH_*.json) compare runs of the same generator arguments, so
//     changing a generator's output for given inputs invalidates the
//     checked-in baselines and is a breaking change.
package workload
