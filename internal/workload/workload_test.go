package workload

import (
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/ordinary"
)

func TestChainShape(t *testing.T) {
	s := Chain(100)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.GDistinct() || !s.Ordinary() {
		t.Fatal("chain must be ordinary with distinct g")
	}
	fr, err := ordinary.BuildForest(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := fr.MaxChainLen(); got != 100 {
		t.Fatalf("MaxChainLen = %d, want 100", got)
	}
}

func TestChainsShape(t *testing.T) {
	s := Chains(100, 10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.GDistinct() {
		t.Fatal("chains must have distinct g")
	}
	fr, err := ordinary.BuildForest(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := fr.MaxChainLen(); got != 10 {
		t.Fatalf("MaxChainLen = %d, want 10", got)
	}
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestRandomOrdinaryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		s := RandomOrdinary(rng, 50, 30)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if !s.GDistinct() {
			t.Fatal("RandomOrdinary produced duplicate g")
		}
	}
}

func TestScatterSolvableByGIR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Scatter(rng, 40, 8)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.GDistinct() {
		t.Fatal("Scatter should have non-distinct g")
	}
	// Sanity: the sequential loop accumulates aux values into buckets.
	init := make([]int64, s.M)
	for i := 0; i < 40; i++ {
		init[8+i] = 1
	}
	out := core.RunSequential[int64](s, core.IntAdd{}, init)
	total := int64(0)
	for b := 0; b < 8; b++ {
		total += out[b]
	}
	if total != 40 {
		t.Fatalf("bucket sum = %d, want 40", total)
	}
}

func TestFibonacciMatchesPaperfigShape(t *testing.T) {
	s := Fibonacci(10)
	if s.N != 8 || s.M != 10 {
		t.Fatalf("N=%d M=%d", s.N, s.M)
	}
	if s.Ordinary() {
		t.Fatal("Fibonacci is a general system")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomGIR(rand.New(rand.NewSource(7)), 20, 30)
	b := RandomGIR(rand.New(rand.NewSource(7)), 20, 30)
	for i := 0; i < a.N; i++ {
		if a.G[i] != b.G[i] || a.F[i] != b.F[i] || a.H[i] != b.H[i] {
			t.Fatal("RandomGIR not deterministic for equal seeds")
		}
	}
}

func TestInitInt64Range(t *testing.T) {
	init := InitInt64(rand.New(rand.NewSource(3)), 100, 50)
	for _, v := range init {
		if v < 2 || v >= 50 {
			t.Fatalf("value %d out of [2, 50)", v)
		}
	}
}
