package workload

import (
	"math/rand"

	"indexedrec/internal/core"
)

// Sparse generators: systems over m global cells of which only a scattered
// n-sized subset is touched — the m ≫ n shape the sparse encoding exists
// for. Both return the compressed form directly (tests, fuzzing, and E22 all
// consume *core.SparseSystem); SparseSystem.Dense() recovers the dense
// equivalent when a comparison baseline is needed. Both panic only on
// internal invariant violations, never on sizes (degenerate sizes are
// clamped like Chains does).

// SparseBanded returns a banded touched-cell distribution: `bands` chain
// runs of n/bands iterations each, spread evenly across the global range
// [0, m) with untouched gaps between them — the blocked/banded shape of a
// time-sliced simulation that only advances a few active regions. Chain
// lengths are n/bands, so with n/bands >= 256 the compiled compact plan
// takes the blocked-scan schedule, exercising PR 8's scheduler on sparse
// chains. Deterministic (no rng): the structure is a pure function of
// (m, n, bands).
func SparseBanded(m, n, bands int) *core.SparseSystem {
	if bands < 1 {
		bands = 1
	}
	if n < bands {
		n = bands
	}
	per := n / bands
	n = per * bands
	// Each band needs per+1 cells; keep every band inside its m/bands slot.
	if m < bands*(per+2) {
		m = bands * (per + 2)
	}
	slot := m / bands
	g := make([]int, 0, n)
	f := make([]int, 0, n)
	for b := 0; b < bands; b++ {
		base := b * slot
		for j := 0; j < per; j++ {
			g = append(g, base+j+1)
			f = append(f, base+j)
		}
	}
	sp, err := core.NewSparseSystem(m, g, f, nil)
	if err != nil {
		panic("workload: SparseBanded built an invalid system: " + err.Error())
	}
	return sp
}

// SparseZipf returns a zipfian touched-cell distribution: touched cells are
// drawn from a Zipf law over [0, m) (dense near the low end, a long sparse
// tail — the hot-key shape of a skewed workload), and the recurrence over
// them is RandomOrdinary's: every touched cell written once in random order,
// reading a uniformly random touched cell. Chain lengths are O(log n)
// w.h.p., the jumping-schedule case. Ordinary with distinct g by
// construction.
func SparseZipf(rng *rand.Rand, m, n int) *core.SparseSystem {
	if n < 1 {
		n = 1
	}
	if m < 2*n+2 {
		m = 2*n + 2
	}
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(m-1))
	seen := make(map[int]struct{}, n+1)
	cells := make([]int, 0, n+1)
	// Draw until n+1 distinct cells (one stays read-only); the skew makes
	// late draws collide often, so fall back to uniform fill if the zipf
	// stream stalls — determinism is preserved (same rng, same sequence).
	for attempts := 0; len(cells) < n+1; attempts++ {
		var c int
		if attempts < 50*(n+1) {
			c = int(zipf.Uint64())
		} else {
			c = rng.Intn(m)
		}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		cells = append(cells, c)
	}
	// Write all but the first drawn cell, in random order, each reading a
	// uniformly random touched cell (possibly itself — ordinary H = G reads
	// own cell anyway).
	writes := cells[1:]
	perm := rng.Perm(len(writes))
	g := make([]int, n)
	f := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = writes[perm[i]]
		f[i] = cells[rng.Intn(len(cells))]
	}
	sp, err := core.NewSparseSystem(m, g, f, nil)
	if err != nil {
		panic("workload: SparseZipf built an invalid system: " + err.Error())
	}
	return sp
}
