package workload

import (
	"math/rand"

	"indexedrec/ir"
)

// EditDistance returns the 2-D recurrence grid computing the Levenshtein
// distance between a and b over the min-plus semiring:
//
//	D[i][j] = min(D[i-1][j] + 1, D[i][j-1] + 1, D[i-1][j-1] + sub(i, j))
//
// with sub = 0 on a match and 1 on a substitution, D[i][-1] = i+1 and
// D[-1][j] = j+1 (the implicit D[-1][-1] = 0 is the NorthWest corner).
// The distance is the last cell of the solution, Values[len(a)*len(b)-1].
// Both strings must be non-empty — a zero-dimension grid is invalid; the
// distance with an empty string is the other string's length.
func EditDistance(a, b string) *ir.Grid2DSystem {
	rows, cols := len(a), len(b)
	n := rows * cols
	ins := make([]float64, n) // A: step from the north neighbour
	del := make([]float64, n) // B: step from the west neighbour
	sub := make([]float64, n) // Diag: substitution cost
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			ins[i*cols+j] = 1
			del[i*cols+j] = 1
			if a[i] != b[j] {
				sub[i*cols+j] = 1
			}
		}
	}
	north := make([]float64, cols)
	for j := range north {
		north[j] = float64(j + 1)
	}
	west := make([]float64, rows)
	for i := range west {
		west[i] = float64(i + 1)
	}
	return &ir.Grid2DSystem{
		Rows: rows, Cols: cols, Semiring: "minplus",
		A: ins, B: del, Diag: sub,
		North: north, West: west, NorthWest: 0,
	}
}

// SmithWaterman returns the local-alignment score grid for a and b over
// the max-plus semiring with linear gap penalties:
//
//	H[i][j] = max(0, H[i-1][j] - gap, H[i][j-1] - gap, H[i-1][j-1] + s(i, j))
//
// where s is +match on equal characters and -mismatch otherwise. The
// constant C grid holds the 0 floor that resets negative-scoring prefixes,
// and the zero boundaries mean alignments may start anywhere. The best
// local alignment score is the maximum over all cells of the solution.
// Both strings must be non-empty.
func SmithWaterman(a, b string, match, mismatch, gap float64) *ir.Grid2DSystem {
	rows, cols := len(a), len(b)
	n := rows * cols
	up := make([]float64, n)
	left := make([]float64, n)
	diag := make([]float64, n)
	floor := make([]float64, n)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			up[i*cols+j] = -gap
			left[i*cols+j] = -gap
			if a[i] == b[j] {
				diag[i*cols+j] = match
			} else {
				diag[i*cols+j] = -mismatch
			}
		}
	}
	return &ir.Grid2DSystem{
		Rows: rows, Cols: cols, Semiring: "maxplus",
		A: up, B: left, Diag: diag, C: floor,
		North: make([]float64, cols), West: make([]float64, rows), NorthWest: 0,
	}
}

// RandomGrid2D draws a rows×cols grid over the named semiring with the
// given term mask (bit 0 = A/north, 1 = B/west, 2 = Diag, 3 = C; a zero
// mask falls back to all four). Affine coefficients stay in [-0.3, 0.3] so
// deep grids neither overflow nor underflow; tropical grids use small
// integer costs so every path sum is exact in float64.
func RandomGrid2D(rng *rand.Rand, rows, cols int, semiring string, mask uint8) *ir.Grid2DSystem {
	if mask&15 == 0 {
		mask = 15
	}
	affine := semiring == "" || semiring == "affine"
	grid := func() []float64 {
		out := make([]float64, rows*cols)
		for i := range out {
			if affine {
				out[i] = (rng.Float64()*2 - 1) * 0.3
			} else {
				out[i] = float64(rng.Intn(21) - 10)
			}
		}
		return out
	}
	edge := func(k int) []float64 {
		out := make([]float64, k)
		for i := range out {
			if affine {
				out[i] = rng.Float64()*2 - 1
			} else {
				out[i] = float64(rng.Intn(11))
			}
		}
		return out
	}
	s := &ir.Grid2DSystem{
		Rows: rows, Cols: cols, Semiring: semiring,
		North: edge(cols), West: edge(rows), NorthWest: 1,
	}
	if mask&1 != 0 {
		s.A = grid()
	}
	if mask&2 != 0 {
		s.B = grid()
	}
	if mask&4 != 0 {
		s.Diag = grid()
	}
	if mask&8 != 0 {
		s.C = grid()
	}
	return s
}
