package workload

import (
	"math/rand"

	"indexedrec/internal/core"
)

// Chain returns the single-chain ordinary system A[i+1] := A[i] ⊗ A[i+1]
// over m = n+1 cells — the longest-chain worst case, ⌈log₂ n⌉ rounds.
func Chain(n int) *core.System {
	return core.FromFuncs(n, n+1,
		func(i int) int { return i + 1 },
		func(i int) int { return i },
		nil,
	)
}

// Chains returns k parallel chains of length n/k each (n iterations total)
// — the intermediate case between one long chain and scattered writes.
func Chains(n, k int) *core.System {
	if k < 1 {
		k = 1
	}
	per := n / k
	n = per * k
	m := n + k // one extra root cell per chain
	s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	i := 0
	for c := 0; c < k; c++ {
		base := c * (per + 1)
		for j := 0; j < per; j++ {
			s.G[i] = base + j + 1
			s.F[i] = base + j
			i++
		}
	}
	return s
}

// RandomOrdinary returns an ordinary system with distinct g: a random
// subset of cells written in random order, each reading a uniformly random
// cell. Chain lengths are O(log n) w.h.p., so pointer jumping terminates in
// very few rounds — the favourable case.
func RandomOrdinary(rng *rand.Rand, m, n int) *core.System {
	if n > m {
		n = m
	}
	perm := rng.Perm(m)
	s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	for i := 0; i < n; i++ {
		s.G[i] = perm[i]
		s.F[i] = rng.Intn(m)
	}
	return s
}

// Scatter returns the PIC-style accumulation H[J[i]] := A[aux_i] ⊗ H[J[i]]
// as a general IR system: m cells of H plus n auxiliary operand cells, with
// targets drawn from [0, buckets). g is non-distinct by construction.
func Scatter(rng *rand.Rand, n, buckets int) *core.System {
	s := &core.System{M: buckets + n, N: n,
		G: make([]int, n), F: make([]int, n), H: make([]int, n)}
	for i := 0; i < n; i++ {
		t := rng.Intn(buckets)
		s.G[i] = t
		s.F[i] = buckets + i
		s.H[i] = t
	}
	return s
}

// Fibonacci returns the GIR system A[i] := A[i-1] ⊗ A[i-2] over n cells —
// exponential trace length, the power-counting stress case.
func Fibonacci(n int) *core.System {
	return core.FromFuncs(n-2, n,
		func(i int) int { return i + 2 },
		func(i int) int { return i + 1 },
		func(i int) int { return i },
	)
}

// RandomGIR returns a general system with arbitrary index maps, reading
// uniformly random cells (lower-numbered targets are favoured by writing
// cell perm order, keeping dependence depth moderate).
func RandomGIR(rng *rand.Rand, m, n int) *core.System {
	s := &core.System{M: m, N: n,
		G: make([]int, n), F: make([]int, n), H: make([]int, n)}
	for i := 0; i < n; i++ {
		s.G[i] = rng.Intn(m)
		s.F[i] = rng.Intn(m)
		s.H[i] = rng.Intn(m)
	}
	return s
}

// InitInt64 returns deterministic initial values in [2, bound).
func InitInt64(rng *rand.Rand, m int, bound int64) []int64 {
	init := make([]int64, m)
	for x := range init {
		init[x] = rng.Int63n(bound-2) + 2
	}
	return init
}
