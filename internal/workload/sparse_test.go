package workload

import (
	"math/rand"
	"testing"
)

func TestSparseBanded(t *testing.T) {
	sp := SparseBanded(1_000_000, 1024, 4)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.M != 1_000_000 {
		t.Fatalf("M = %d", sp.M)
	}
	if sp.Compact.N != 1024 {
		t.Fatalf("N = %d", sp.Compact.N)
	}
	// 4 bands of 256 iterations each -> 257 touched cells per band.
	if got, want := sp.NumCells(), 4*257; got != want {
		t.Fatalf("NumCells = %d, want %d", got, want)
	}
	if !sp.Compact.Ordinary() || !sp.Compact.GDistinct() {
		t.Fatal("banded system should be ordinary with distinct g")
	}
	// Deterministic.
	sp2 := SparseBanded(1_000_000, 1024, 4)
	for i, c := range sp.Cells {
		if sp2.Cells[i] != c {
			t.Fatal("SparseBanded is not deterministic")
		}
	}
	// Degenerate sizes clamp instead of panicking.
	if sp := SparseBanded(10, 0, 0); sp.Validate() != nil {
		t.Fatal("clamped degenerate invalid")
	}
}

func TestSparseZipf(t *testing.T) {
	sp := SparseZipf(rand.New(rand.NewSource(5)), 1_000_000, 2000)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Compact.N != 2000 {
		t.Fatalf("N = %d", sp.Compact.N)
	}
	if nc := sp.NumCells(); nc < 2000 || nc > 2001 {
		t.Fatalf("NumCells = %d, want 2000 or 2001", nc)
	}
	if !sp.Compact.Ordinary() || !sp.Compact.GDistinct() {
		t.Fatal("zipf system should be ordinary with distinct g")
	}
	// Same seed, same system.
	sp2 := SparseZipf(rand.New(rand.NewSource(5)), 1_000_000, 2000)
	for i := range sp.Compact.G {
		if sp.Compact.G[i] != sp2.Compact.G[i] || sp.Compact.F[i] != sp2.Compact.F[i] {
			t.Fatal("SparseZipf is not deterministic")
		}
	}
	// The zipf law should leave most of the global range untouched.
	if sp.NumCells()*10 > sp.M {
		t.Fatalf("touched fraction too dense: %d of %d", sp.NumCells(), sp.M)
	}
	if sp := SparseZipf(rand.New(rand.NewSource(1)), 0, 0); sp.Validate() != nil {
		t.Fatal("clamped degenerate invalid")
	}
}
