package workload

import (
	"math/rand"
	"testing"

	"indexedrec/ir"
)

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"a", "a", 0},
		{"abc", "c", 2},
	}
	for _, c := range cases {
		res, err := ir.SolveGrid2D(EditDistance(c.a, c.b), ir.SolveOptions{})
		if err != nil {
			t.Fatalf("EditDistance(%q, %q): %v", c.a, c.b, err)
		}
		if got := res.Values[len(res.Values)-1]; got != c.want {
			t.Errorf("EditDistance(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSmithWaterman(t *testing.T) {
	// "gatta" aligns exactly inside "cgattag": 5 matches × 2.
	res, err := ir.SolveGrid2D(SmithWaterman("gatta", "cgattag", 2, 1, 1), ir.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, v := range res.Values {
		if v > best {
			best = v
		}
	}
	if best != 10 {
		t.Fatalf("best local score = %v, want 10", best)
	}
	// The 0 floor keeps every cell non-negative.
	for i, v := range res.Values {
		if v < 0 {
			t.Fatalf("cell %d = %v < 0 despite the max-plus floor", i, v)
		}
	}
}

func TestRandomGrid2DMask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for mask := uint8(0); mask < 16; mask++ {
		s := RandomGrid2D(rng, 5, 7, "maxplus", mask)
		if err := s.Validate(); err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		eff := mask & 15
		if eff == 0 {
			eff = 15
		}
		has := func(g []float64) bool { return g != nil }
		if has(s.A) != (eff&1 != 0) || has(s.B) != (eff&2 != 0) ||
			has(s.Diag) != (eff&4 != 0) || has(s.C) != (eff&8 != 0) {
			t.Fatalf("mask %d: term presence mismatch", mask)
		}
	}
}
