package ordinary

import (
	"context"
	"fmt"
	"sync/atomic"

	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// This file implements the work-optimal blocked-scan schedule for ordinary
// plans — the alternative to pointer jumping picked by CompilePlan when the
// write-chain forest is a disjoint union of paths with long chains (see
// buildBlocked and DESIGN §14). Per chain the replay runs three phases:
//
//  1. reduce — the chain is cut into fixed-length contiguous segments and
//     each segment is folded sequentially (left to right, terminal → head)
//     into one summary value;
//  2. combine tree — a Kogge–Stone inclusive scan over the per-chain
//     segment summaries turns summary s into the fold of the chain's first
//     s+1 segments, in ⌈log₂ S⌉ double-buffered rounds (S = segments of the
//     longest chain);
//  3. apply — each segment re-folds its cells sequentially, seeded with its
//     predecessor's tree prefix, writing every cell's final value.
//
// Total work is ~2n combines plus n/segLen tree combines — O(n), against
// pointer jumping's O(n log n) — and the span is n·P⁻¹ + log(n/segLen)
// after segment-level parallelization, matching the roadmap's
// T = n/P + log P target. Every phase folds the same ordered operand
// sequence the sequential loop consumes, merely re-associated, so results
// are identical to pointer jumping for exactly associative ops (and equal
// up to float re-association otherwise — see Plan.Schedule's contract).

const (
	// blockedMinChain is the auto-selection threshold: chains shorter than
	// this fit in O(log chain) cheap jumping rounds and gain nothing from
	// segment bookkeeping, so CompilePlan keeps pointer jumping below it.
	// Structural constant — never derived from GOMAXPROCS, so a plan's
	// schedule (and thus its fingerprint-keyed replay behavior across a
	// cluster) is a pure function of the system's structure.
	blockedMinChain = 256
	// blockedSegLen is the segment length of the reduce and apply phases:
	// long enough to amortize a parallel handoff per segment, short enough
	// that n/segLen segments expose ample parallel slack on any realistic
	// worker count.
	blockedSegLen = 256
)

// blockedDisabled is the global kill switch for the blocked-scan schedule
// (see SetBlockedEnabled): when set, replays of blocked-compiled plans fall
// back to the pointer-jumping schedule (recorded lazily on first need).
var blockedDisabled atomic.Bool

// SetBlockedEnabled globally enables (default) or disables blocked-scan
// replays and reports whether they were enabled before. Intended for tests
// and fuzzers proving the blocked and jumping schedules are bit-identical;
// not a production tunable. Compilation is unaffected — plans keep their
// blocked schedule and re-enable instantly.
func SetBlockedEnabled(on bool) bool {
	return !blockedDisabled.Swap(!on)
}

// blockedEnabled reports whether blocked-scan replays are globally enabled.
func blockedEnabled() bool { return !blockedDisabled.Load() }

// blockedSched is the compiled blocked-scan schedule: the chain-major cell
// order plus the segment table. All arrays are immutable after buildBlocked.
type blockedSched struct {
	// cellSeq lists every written cell in chain-major order, each chain
	// terminal → head — i.e. the order the sequential loop's fold consumes
	// the chain's values. Chains are ordered by ascending terminal cell,
	// matching Plan.ChainOf's chain numbering.
	cellSeq []int32
	// chainOff[c] : chainOff[c+1] bound chain c within cellSeq.
	chainOff []int32
	// rootOf[c] is the cell whose initial value seeds chain c's fold
	// (= Forest.InitF of the chain's terminal cell).
	rootOf []int32
	// segOff[s] : segOff[s+1] bound segment s within cellSeq. Segments are
	// blockedSegLen cells except the last of each chain, and never straddle
	// a chain boundary.
	segOff []int32
	// segChain[s] is the chain id of segment s.
	segChain []int32
	// segFirst[s] is the index of the first segment of segment s's chain:
	// the tree phase combines sum[s-stride] into sum[s] iff
	// s-stride >= segFirst[s].
	segFirst []int32
	// maxSegs is the largest per-chain segment count — the tree depth is
	// ⌈log₂ maxSegs⌉.
	maxSegs int
	// rounds is the tree-phase round count (Result.Rounds adds the reduce
	// and apply phases on top).
	rounds int
	// combines is the exact op-application count of a blocked replay.
	combines int64
}

// numSegs returns the total segment count across all chains.
func (b *blockedSched) numSegs() int { return len(b.segOff) - 1 }

// segBounds returns segment s's [lo, hi) range within cellSeq.
func (b *blockedSched) segBounds(s int) (int, int) {
	return int(b.segOff[s]), int(b.segOff[s+1])
}

// buildBlocked compiles the blocked-scan schedule for fr, or returns
// (nil, nil) when the forest does not qualify under the auto heuristic:
// the forest must be path-only (no cell is the Next target of two chains —
// a tree join has no contiguous-segment decomposition) and its longest
// chain must reach blockedMinChain. force (PlanOptions ScheduleBlocked)
// skips the length gate and turns the path-only failure into an error.
func buildBlocked(fr *Forest, m int, force bool) (*blockedSched, error) {
	// Path-only check + reverse links in one pass: prev[y] is y's unique
	// chain predecessor, or -1.
	prev := make([]int32, m)
	for x := range prev {
		prev[x] = -1
	}
	for _, x := range fr.Cells {
		n := fr.Next[x]
		if n < 0 {
			continue
		}
		if prev[n] >= 0 {
			if force {
				return nil, fmt.Errorf("ordinary: ScheduleBlocked: cell %d is consumed by two chains (forest is a tree, not a path union)", n)
			}
			return nil, nil
		}
		prev[n] = int32(x)
	}

	b := &blockedSched{
		cellSeq:  make([]int32, 0, len(fr.Cells)),
		chainOff: []int32{0},
	}
	maxLen := 0
	// Terminals in ascending cell order give the same chain numbering as
	// Plan.ChainOf (chains sorted by terminal root cell).
	for t := 0; t < m; t++ {
		if !fr.Written[t] || fr.Next[t] >= 0 {
			continue
		}
		start := len(b.cellSeq)
		for x := int32(t); x >= 0; x = prev[x] {
			b.cellSeq = append(b.cellSeq, x)
		}
		if l := len(b.cellSeq) - start; l > maxLen {
			maxLen = l
		}
		b.chainOff = append(b.chainOff, int32(len(b.cellSeq)))
		b.rootOf = append(b.rootOf, int32(fr.InitF[t]))
	}
	if !force && maxLen < blockedMinChain {
		return nil, nil
	}

	// Segment table: fixed-length cuts per chain, never crossing chains.
	b.segOff = []int32{0}
	for c := 0; c+1 < len(b.chainOff); c++ {
		first := int32(len(b.segChain))
		lo, hi := b.chainOff[c], b.chainOff[c+1]
		for o := lo; o < hi; o += blockedSegLen {
			b.segOff = append(b.segOff, min(o+blockedSegLen, hi))
			b.segChain = append(b.segChain, int32(c))
			b.segFirst = append(b.segFirst, first)
		}
		if segs := len(b.segChain) - int(first); segs > b.maxSegs {
			b.maxSegs = segs
		}
	}
	for d := 1; d < b.maxSegs; d *= 2 {
		b.rounds++
	}

	// Exact combine count: reduce folds len cells for a chain-first segment
	// (its seed is the chain root's initial value, so the terminal's init
	// fold is one combine too) and len-1 otherwise (seeded by its own first
	// cell); the tree combines once per (round, segment) with an in-chain
	// predecessor; apply folds every cell once.
	for s := 0; s < b.numSegs(); s++ {
		l := int64(b.segOff[s+1] - b.segOff[s])
		b.combines += 2 * l
		if int32(s) != b.segFirst[s] {
			b.combines--
		}
	}
	for d := 1; d < b.maxSegs; d *= 2 {
		for s := 0; s < b.numSegs(); s++ {
			if s-d >= int(b.segFirst[s]) {
				b.combines++
			}
		}
	}
	return b, nil
}

// solveBlockedMember is SolvePlanMemberCtx's blocked-schedule path: the
// member set (closed under Next) intersects every chain in a terminal-side
// prefix of its cellSeq order, so the replay runs the three phases over the
// member prefixes only. Every tree prefix a member segment consumes comes
// from a fully-member segment (prefix property), so member cells' combines
// see exactly the operands of the full blocked replay — bit-identical — and
// non-member cells keep their init values.
func solveBlockedMember[T any](ctx context.Context, p *Plan, op core.Semigroup[T], init []T, member []bool, opt Options) ([]T, error) {
	b := p.blocked
	kern := kernelFor(op)
	v := make([]T, p.M)
	copy(v, init)

	numChains := len(b.chainOff) - 1
	memEnd := make([]int32, numChains)
	if err := parallel.ForEachCtx(ctx, numChains, opt.Procs, func(c int) error {
		k, end := b.chainOff[c], b.chainOff[c+1]
		for k < end && member[b.cellSeq[k]] {
			k++
		}
		memEnd[c] = k
		return nil
	}); err != nil {
		return nil, err
	}

	// Active segments: those whose start lies inside the member prefix. A
	// clamped last segment may be partial; all earlier ones are full.
	active := make([]int32, 0, b.numSegs())
	for s := 0; s < b.numSegs(); s++ {
		if b.segOff[s] < memEnd[b.segChain[s]] {
			active = append(active, int32(s))
		}
	}
	if len(active) == 0 {
		return v, nil
	}
	segEnd := func(s int) int {
		return int(min(b.segOff[s+1], memEnd[b.segChain[s]]))
	}

	sum := make([]T, b.numSegs())
	sum2 := make([]T, b.numSegs())
	if err := parallel.ForCtxWeighted(ctx, len(active), opt.Procs, blockedSegLen, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			s := int(active[i])
			cLo, cHi := int(b.segOff[s]), segEnd(s)
			var acc T
			if int(b.segFirst[s]) == s {
				acc = init[b.rootOf[b.segChain[s]]]
			} else {
				acc = init[b.cellSeq[cLo]]
				cLo++
			}
			if kern != nil {
				acc = kern.FoldSeg(acc, init, b.cellSeq, cLo, cHi)
			} else {
				for k := cLo; k < cHi; k++ {
					acc = op.Combine(acc, init[b.cellSeq[k]])
				}
			}
			sum[s] = acc
		}
		return nil
	}); err != nil {
		return nil, err
	}

	for d := 1; d < b.maxSegs; d *= 2 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := parallel.ForCtx(ctx, len(active), opt.Procs, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				s := int(active[i])
				if s-d >= int(b.segFirst[s]) {
					sum2[s] = op.Combine(sum[s-d], sum[s])
				} else {
					sum2[s] = sum[s]
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		sum, sum2 = sum2, sum
	}

	if err := parallel.ForCtxWeighted(ctx, len(active), opt.Procs, blockedSegLen, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			s := int(active[i])
			cLo, cHi := int(b.segOff[s]), segEnd(s)
			var acc T
			if int(b.segFirst[s]) == s {
				acc = init[b.rootOf[b.segChain[s]]]
			} else {
				acc = sum[s-1]
			}
			if kern != nil {
				kern.ScanSeg(v, acc, init, b.cellSeq, cLo, cHi)
			} else {
				for k := cLo; k < cHi; k++ {
					x := b.cellSeq[k]
					acc = op.Combine(acc, init[x])
					v[x] = acc
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return v, nil
}
