package ordinary

import (
	"errors"
	"fmt"

	"indexedrec/internal/core"
)

// ErrNotOrdinary is returned for systems with H ≠ G.
var ErrNotOrdinary = errors.New("ordinary: system is not in ordinary form (H != G)")

// ErrGNotDistinct is returned when two iterations write the same cell; the
// O(n)-processor algorithm requires distinct g (paper §2). Use package gir
// for the general case.
var ErrGNotDistinct = errors.New("ordinary: g is not distinct")

// Forest is the write-chain forest of an ordinary IR system: the input to
// pointer jumping, before any values are attached.
type Forest struct {
	// Next[x] is the chain successor of cell x (the cell whose final value
	// iteration writer(x) consumes), or -1 when x's trace terminates.
	Next []int
	// InitF[x] is, for terminal written cells, the cell whose initial value
	// the trace starts with (= f(writer(x))); -1 for non-terminal or
	// unwritten cells.
	InitF []int
	// Written[x] reports whether any iteration writes cell x.
	Written []bool
	// Cells lists the written cells, the only ones pointer jumping touches.
	Cells []int
}

// BuildForest validates the system and constructs its write-chain forest in
// O(n + m) time.
func BuildForest(s *core.System) (*Forest, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.Ordinary() {
		return nil, fmt.Errorf("%w: %v", ErrNotOrdinary, s)
	}
	if !s.GDistinct() {
		return nil, fmt.Errorf("%w: %v", ErrGNotDistinct, s)
	}
	deps := core.ComputeDeps(s)
	fr := &Forest{
		Next:    make([]int, s.M),
		InitF:   make([]int, s.M),
		Written: make([]bool, s.M),
		Cells:   make([]int, 0, s.N),
	}
	for x := range fr.Next {
		fr.Next[x], fr.InitF[x] = -1, -1
	}
	for i := 0; i < s.N; i++ {
		x := s.G[i]
		fr.Written[x] = true
		fr.Cells = append(fr.Cells, x)
		if deps.FPrev[i] >= 0 {
			// Some j < i writes f(i); the consumed value is f(i)'s final
			// value, so the chain continues through cell f(i).
			fr.Next[x] = s.F[i]
		} else {
			// The consumed value is the initial A₀[f(i)]; fold it in.
			fr.InitF[x] = s.F[i]
		}
	}
	return fr, nil
}

// MaxChainLen returns the length (in cells) of the longest pred chain; the
// pointer-jumping round count is ⌈log₂⌉ of this. Runs in O(m) using memoized
// depths (chains are acyclic by construction).
func (fr *Forest) MaxChainLen() int {
	depth := make([]int, len(fr.Next)) // 0 = unknown; else chain length
	var walk func(x int) int
	walk = func(x int) int {
		if depth[x] != 0 {
			return depth[x]
		}
		if fr.Next[x] < 0 {
			depth[x] = 1
			return 1
		}
		depth[x] = 1 + walk(fr.Next[x])
		return depth[x]
	}
	maxLen := 0
	for _, x := range fr.Cells {
		if l := walk(x); l > maxLen {
			maxLen = l
		}
	}
	return maxLen
}
