package ordinary

import (
	"context"
	"fmt"
	"sort"

	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// Shard-slice replays of compiled ordinary plans. The write-chain forest is
// a disjoint union of chains (paper §3): every pointer-jumping read of a
// cell x targets a cell on x's own Next-path, so the connected components of
// the forest are closed under the entire combine schedule. Replaying the
// schedule restricted to a subset of chains therefore performs exactly the
// combines the full replay performs on those cells — same operands, same
// round order — making per-chain slices bit-identical to the full solve and
// safe to distribute across machines.

// ErrShardRange is returned when a requested chain or cell range does not
// fit the plan.
var ErrShardRange = fmt.Errorf("ordinary: shard range out of bounds")

// initChains computes the chain decomposition once: chain ids are assigned
// by ascending terminal-root cell, so the numbering is deterministic for a
// given plan structure (coordinator and workers agree on it by construction).
func (p *Plan) initChains() {
	p.chainsOnce.Do(func() {
		fr := p.Forest
		rootOf := make([]int32, p.M)
		for x := range rootOf {
			rootOf[x] = -1
		}
		var path []int
		for _, x := range fr.Cells {
			y := x
			path = path[:0]
			for rootOf[y] < 0 && fr.Next[y] >= 0 {
				path = append(path, y)
				y = fr.Next[y]
			}
			r := rootOf[y]
			if r < 0 {
				r = int32(y) // y is a terminal written cell: a chain root
				rootOf[y] = r
			}
			for _, c := range path {
				rootOf[c] = r
			}
		}
		roots := make([]int, 0, 16)
		seen := make(map[int32]int)
		for _, x := range fr.Cells {
			r := rootOf[x]
			if _, ok := seen[r]; !ok {
				seen[r] = 0
				roots = append(roots, int(r))
			}
		}
		sort.Ints(roots)
		for id, r := range roots {
			seen[int32(r)] = id
		}
		p.chainOf = make([]int32, p.M)
		for x := range p.chainOf {
			p.chainOf[x] = -1
		}
		p.chainSizes = make([]int, len(roots))
		for _, x := range fr.Cells {
			id := seen[rootOf[x]]
			p.chainOf[x] = int32(id)
			p.chainSizes[id]++
		}
	})
}

// NumChains returns the number of chains (forest components) in the plan —
// the size of the ordinary family's shard domain.
func (p *Plan) NumChains() int {
	p.initChains()
	return len(p.chainSizes)
}

// ChainSizes returns the cell count of each chain, indexed by chain id. The
// slice is owned by the plan; callers must not modify it. Partitioners use
// it to cut balanced contiguous chain ranges.
func (p *Plan) ChainSizes() []int {
	p.initChains()
	return p.chainSizes
}

// ChainOf returns the chain id of every cell (-1 for unwritten cells). The
// slice is owned by the plan; callers must not modify it.
func (p *Plan) ChainOf() []int32 {
	p.initChains()
	return p.chainOf
}

// ShardResult is a sparse slice of a replay: the final values of the cells
// a shard owns, in ascending cell order.
type ShardResult[T any] struct {
	// Cells lists the cells this shard computed, ascending.
	Cells []int
	// Values[k] is the final value of Cells[k], bit-identical to the full
	// replay's Values[Cells[k]].
	Values []T
}

// SolvePlanMemberCtx replays a compiled plan restricted to a member set of
// cells. member must be closed under the forest's Next relation (chain
// unions are; see SolvePlanChainsCtx). The combines performed on member
// cells are exactly those of SolvePlanCtx, on the same operands in the same
// round order, so member cells' values are bit-identical to the full
// replay's; non-member cells keep their init values. Error and cancellation
// behavior follows the SolvePlanCtx contract.
func SolvePlanMemberCtx[T any](ctx context.Context, p *Plan, op core.Semigroup[T], init []T, member []bool, opt Options) (_ []T, err error) {
	defer parallel.RecoverTo(&err)
	if len(init) != p.M {
		return nil, fmt.Errorf("%w: len(init) = %d, want M = %d", ErrInitLen, len(init), p.M)
	}
	if len(member) != p.M {
		return nil, fmt.Errorf("%w: len(member) = %d, want M = %d", ErrShardRange, len(member), p.M)
	}
	ctx, release := parallel.EnsureGang(ctx, opt.Procs, p.M)
	defer release()
	if p.blocked != nil && blockedEnabled() {
		return solveBlockedMember(ctx, p, op, init, member, opt)
	}
	p.ensureJumping()
	v := make([]T, p.M)
	copy(v, init)

	// Initialization phase: member cells' terminal init folds. Reads target
	// the caller's init array directly, so no closure constraint applies.
	selDst := make([]int32, 0, len(p.initDst))
	selSrc := make([]int32, 0, len(p.initDst))
	for k, dst := range p.initDst {
		if member[dst] {
			selDst = append(selDst, dst)
			selSrc = append(selSrc, p.initSrc[k])
		}
	}
	if err := parallel.ForCtx(ctx, len(selDst), opt.Procs, func(lo, hi int) error {
		for k := lo; k < hi; k++ {
			x := selDst[k]
			v[x] = op.Combine(init[selSrc[k]], init[x])
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Rounds: gather-then-apply over the member subset of each round
	// (snapshotting every selected source is safe for both halves of the
	// compile-time gather/direct split). Every src lies on its dst's
	// Next-path, hence inside the member set.
	var src []T
	for r := range p.rounds {
		rd := &p.rounds[r]
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		selDst, selSrc = selDst[:0], selSrc[:0]
		for k, dst := range rd.gatherDst {
			if member[dst] {
				selDst = append(selDst, dst)
				selSrc = append(selSrc, rd.gatherSrc[k])
			}
		}
		for k, dst := range rd.directDst {
			if member[dst] {
				selDst = append(selDst, dst)
				selSrc = append(selSrc, rd.directSrc[k])
			}
		}
		if cap(src) < len(selDst) {
			src = make([]T, len(selDst))
		}
		src = src[:len(selDst)]
		if err := parallel.ForCtx(ctx, len(selDst), opt.Procs, func(lo, hi int) error {
			for k := lo; k < hi; k++ {
				src[k] = v[selSrc[k]]
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if err := parallel.ForCtx(ctx, len(selDst), opt.Procs, func(lo, hi int) error {
			for k := lo; k < hi; k++ {
				x := selDst[k]
				v[x] = op.Combine(src[k], v[x])
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// MemberForChains returns the cell membership bitmap of the chain range
// [chainLo, chainHi) — the closure SolvePlanMemberCtx requires.
func (p *Plan) MemberForChains(chainLo, chainHi int) ([]bool, error) {
	p.initChains()
	if chainLo < 0 || chainHi > len(p.chainSizes) || chainLo > chainHi {
		return nil, fmt.Errorf("%w: chains [%d, %d) of %d", ErrShardRange, chainLo, chainHi, len(p.chainSizes))
	}
	member := make([]bool, p.M)
	for _, x := range p.Forest.Cells {
		if c := p.chainOf[x]; int(c) >= chainLo && int(c) < chainHi {
			member[x] = true
		}
	}
	return member, nil
}

// SolvePlanChainsCtx replays the chain range [chainLo, chainHi) of a
// compiled plan and returns the owned cells' final values, bit-identical to
// the same cells of SolvePlanCtx. It is the worker-side entry point of a
// distributed ordinary solve.
func SolvePlanChainsCtx[T any](ctx context.Context, p *Plan, op core.Semigroup[T], init []T, chainLo, chainHi int, opt Options) (*ShardResult[T], error) {
	member, err := p.MemberForChains(chainLo, chainHi)
	if err != nil {
		return nil, err
	}
	v, err := SolvePlanMemberCtx(ctx, p, op, init, member, opt)
	if err != nil {
		return nil, err
	}
	count := 0
	for c := chainLo; c < chainHi; c++ {
		count += p.chainSizes[c]
	}
	res := &ShardResult[T]{
		Cells:  make([]int, 0, count),
		Values: make([]T, 0, count),
	}
	for x := 0; x < p.M; x++ {
		if member[x] {
			res.Cells = append(res.Cells, x)
			res.Values = append(res.Values, v[x])
		}
	}
	return res, nil
}
