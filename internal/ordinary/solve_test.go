package ordinary

import (
	"errors"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
	"indexedrec/internal/trace"
)

// randomOrdinary builds a random ordinary system with distinct g: a random
// subset of cells is written in random order, each reading a random cell.
func randomOrdinary(rng *rand.Rand, m int) *core.System {
	perm := rng.Perm(m)
	n := rng.Intn(m + 1)
	s := &core.System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	for i := 0; i < n; i++ {
		s.G[i] = perm[i]
		s.F[i] = rng.Intn(m)
	}
	return s
}

func stringInit(m int) []string {
	init := make([]string, m)
	for x := range init {
		init[x] = string(rune('a'+x%26)) + string(rune('0'+x/26%10))
	}
	return init
}

func TestSolveMatchesSequentialConcat(t *testing.T) {
	// Concat is non-commutative: any operand-order violation fails loudly.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(40)
		s := randomOrdinary(rng, m)
		init := stringInit(m)
		want := core.RunSequential[string](s, core.Concat{}, init)
		for _, procs := range []int{1, 4} {
			res, err := Solve[string](s, core.Concat{}, init, Options{Procs: procs})
			if err != nil {
				t.Fatal(err)
			}
			for x := range want {
				if res.Values[x] != want[x] {
					t.Fatalf("trial %d procs %d cell %d: got %q, want %q\nG=%v F=%v",
						trial, procs, x, res.Values[x], want[x], s.G, s.F)
				}
			}
		}
	}
}

func TestSolveFig1Instance(t *testing.T) {
	s, wantTraces := paperfig.Fig1System()
	init := stringInit(s.M)
	res, err := Solve[string](s, core.Concat{}, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x, tr := range wantTraces {
		want := trace.EvalOrdinary[string](tr, core.Concat{}, init)
		if res.Values[x] != want {
			t.Errorf("cell %d: got %q, want %q", x, res.Values[x], want)
		}
	}
}

func TestSolveLongChain(t *testing.T) {
	// Worst case for round count: one chain of length n.
	n := 1000
	s := paperfig.Fig2System(n)
	init := make([]int64, n)
	for x := range init {
		init[x] = int64(x + 1)
	}
	res, err := Solve[int64](s, core.IntAdd{}, init, Options{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A'[k] = sum of 1..k+1.
	for k := 0; k < n; k++ {
		want := int64(k+1) * int64(k+2) / 2
		if res.Values[k] != want {
			t.Fatalf("cell %d: got %d, want %d", k, res.Values[k], want)
		}
	}
	// O(log n) rounds: chain length 1000 needs exactly ⌈log2 1000⌉ = 10.
	if res.Rounds != 10 {
		t.Errorf("Rounds = %d, want 10 for chain of length 1000", res.Rounds)
	}
}

func TestSolveRootsIdentifyChainStarts(t *testing.T) {
	// Chain system: trace of cell k starts at cell 0's initial value.
	n := 64
	s := paperfig.Fig2System(n)
	init := stringInit(n)
	res, err := Solve[string](s, core.Concat{}, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < n; k++ {
		if res.Roots[k] != 0 {
			t.Fatalf("Roots[%d] = %d, want 0", k, res.Roots[k])
		}
	}
	if res.Roots[0] != 0 {
		t.Fatalf("Roots[0] = %d, want 0 (written cell, terminal trace reads cell 0)", res.Roots[0])
	}
}

func TestSolveRootsRandom(t *testing.T) {
	// Roots must match the first element of the symbolic trace.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(30)
		s := randomOrdinary(rng, m)
		trs, err := trace.Ordinary(s)
		if err != nil {
			t.Fatal(err)
		}
		init := stringInit(m)
		res, err := Solve[string](s, core.Concat{}, init, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for x := range trs {
			if res.Roots[x] != trs[x][0] {
				t.Fatalf("trial %d cell %d: root %d, trace %v", trial, x, res.Roots[x], trs[x])
			}
		}
	}
}

func TestSolveRejectsNonDistinctG(t *testing.T) {
	s := &core.System{M: 3, N: 2, G: []int{1, 1}, F: []int{0, 0}}
	_, err := Solve[int64](s, core.IntAdd{}, []int64{1, 2, 3}, Options{})
	if !errors.Is(err, ErrGNotDistinct) {
		t.Fatalf("err = %v, want ErrGNotDistinct", err)
	}
}

func TestSolveRejectsGeneralSystem(t *testing.T) {
	s := &core.System{M: 3, N: 1, G: []int{2}, F: []int{0}, H: []int{1}}
	_, err := Solve[int64](s, core.IntAdd{}, []int64{1, 2, 3}, Options{})
	if !errors.Is(err, ErrNotOrdinary) {
		t.Fatalf("err = %v, want ErrNotOrdinary", err)
	}
}

func TestSolveAcceptsExplicitHEqualG(t *testing.T) {
	s := &core.System{M: 3, N: 2, G: []int{1, 2}, F: []int{0, 1}, H: []int{1, 2}}
	res, err := Solve[int64](s, core.IntAdd{}, []int64{5, 10, 20}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := core.RunSequential[int64](s, core.IntAdd{}, []int64{5, 10, 20})
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want[x])
		}
	}
}

func TestSolveEmptyLoop(t *testing.T) {
	s := &core.System{M: 3, N: 0, G: []int{}, F: []int{}}
	res, err := Solve[int64](s, core.IntAdd{}, []int64{7, 8, 9}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x, want := range []int64{7, 8, 9} {
		if res.Values[x] != want {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want)
		}
	}
	if res.Rounds != 0 || res.Combines != 0 {
		t.Errorf("Rounds=%d Combines=%d, want 0,0", res.Rounds, res.Combines)
	}
}

func TestSolveSelfReference(t *testing.T) {
	// f(i) = g(i): A[x] := A[x] ⊗ A[x] — terminal trace with InitF = x.
	s := &core.System{M: 2, N: 1, G: []int{0}, F: []int{0}}
	res, err := Solve[int64](s, core.IntAdd{}, []int64{21, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 42 {
		t.Fatalf("got %d, want 42", res.Values[0])
	}
}

func TestSolveForwardReferenceReadsInitial(t *testing.T) {
	// Iteration 0 reads cell 2 which is only written at iteration 1:
	// the read must see the initial value (g distinct ⇒ writes are final,
	// reads of not-yet-written cells are initial).
	s := &core.System{M: 3, N: 2, G: []int{0, 2}, F: []int{2, 1}}
	init := []string{"a", "b", "c"}
	want := core.RunSequential[string](s, core.Concat{}, init)
	res, err := Solve[string](s, core.Concat{}, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %q, want %q", x, res.Values[x], want[x])
		}
	}
	if res.Values[0] != "ca" {
		t.Fatalf("A'[0] = %q, want \"ca\" (initial c, not updated bc)", res.Values[0])
	}
}

func TestFig2PointerJumpSteps(t *testing.T) {
	// Chain of 10: active pointer count must (at least) halve each round
	// and rounds must be ⌈log2 10⌉ = 4.
	s := paperfig.Fig2System(10)
	init := stringInit(10)
	var actives []int
	res, err := Solve[string](s, core.Concat{}, init, Options{
		Procs:   1,
		OnRound: func(round int, st *JumperState) { actives = append(actives, st.Active) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("Rounds = %d, want 4", res.Rounds)
	}
	// After round r, cell k's pointer has jumped 2^r ahead; actives shrink
	// strictly until zero.
	for i := 1; i < len(actives); i++ {
		if actives[i] >= actives[i-1] {
			t.Fatalf("active counts not strictly decreasing: %v", actives)
		}
	}
	if actives[len(actives)-1] != 0 {
		t.Fatalf("final active count %d, want 0 (actives=%v)", actives[len(actives)-1], actives)
	}
}

func TestMaxChainLen(t *testing.T) {
	fr, err := BuildForest(paperfig.Fig2System(100))
	if err != nil {
		t.Fatal(err)
	}
	// Cells 1..99 are written; the longest chain is 99 cells before
	// terminating (cell 1's trace reads initial cell 0).
	if got := fr.MaxChainLen(); got != 99 {
		t.Fatalf("MaxChainLen = %d, want 99", got)
	}
	s, _ := paperfig.Fig1System()
	fr, err = BuildForest(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := fr.MaxChainLen(); got != 2 {
		t.Fatalf("Fig1 MaxChainLen = %d, want 2", got)
	}
}

func TestCombinesWorkBound(t *testing.T) {
	// Work is at most n per round plus n at init: O(n log n) total.
	n := 4096
	s := paperfig.Fig2System(n)
	init := make([]int64, n)
	res, err := Solve[int64](s, core.IntAdd{}, init, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	bound := int64(n) * int64(res.Rounds+1)
	if res.Combines > bound {
		t.Fatalf("Combines = %d exceeds n*(rounds+1) = %d", res.Combines, bound)
	}
	if res.Combines < int64(n) {
		t.Fatalf("Combines = %d suspiciously low for n=%d", res.Combines, n)
	}
}

func TestSolveLargeRandomManyProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := 20000
	s := randomOrdinary(rng, m)
	op := core.MulMod{M: 1_000_003}
	init := make([]int64, m)
	for x := range init {
		init[x] = rng.Int63n(op.M-2) + 2
	}
	want := core.RunSequential[int64](s, op, init)
	res, err := Solve[int64](s, op, init, Options{Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if res.Values[x] != want[x] {
			t.Fatalf("cell %d: got %d, want %d", x, res.Values[x], want[x])
		}
	}
}

func TestBuildForestAgainstBruteForce(t *testing.T) {
	// Next[x]/InitF[x] must match a direct reading of the loop: for the
	// writer i of x, the chain continues through f(i) iff some j < i
	// writes f(i); otherwise the trace starts with A0[f(i)].
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(20)
		s := randomOrdinary(rng, m)
		fr, err := BuildForest(s)
		if err != nil {
			t.Fatal(err)
		}
		writer := make(map[int]int)
		for i, g := range s.G {
			writer[g] = i
		}
		for x := 0; x < m; x++ {
			i, written := writer[x]
			if !written {
				if fr.Written[x] || fr.Next[x] != -1 || fr.InitF[x] != -1 {
					t.Fatalf("trial %d: unwritten cell %d has forest state", trial, x)
				}
				continue
			}
			earlier := false
			for j := 0; j < i; j++ {
				if s.G[j] == s.F[i] {
					earlier = true
					break
				}
			}
			if earlier {
				if fr.Next[x] != s.F[i] || fr.InitF[x] != -1 {
					t.Fatalf("trial %d cell %d: Next=%d InitF=%d, want Next=%d",
						trial, x, fr.Next[x], fr.InitF[x], s.F[i])
				}
			} else {
				if fr.Next[x] != -1 || fr.InitF[x] != s.F[i] {
					t.Fatalf("trial %d cell %d: Next=%d InitF=%d, want InitF=%d",
						trial, x, fr.Next[x], fr.InitF[x], s.F[i])
				}
			}
		}
	}
}
