// Package ordinary implements the paper's §2 algorithm: the O(log n)
// parallel solution of ordinary indexed recurrence systems
//
//	for i = 0 .. n-1:  A[g(i)] := A[f(i)] ⊗ A[g(i)]
//
// with g distinct and ⊗ associative (not necessarily commutative), using
// O(n) processors.
//
// # From trace concatenation to list ranking
//
// Because g is distinct, every cell is written at most once, so the value
// consumed from A[f(i)] at iteration i is either
//
//   - the FINAL value of cell f(i), when some iteration j < i writes f(i)
//     (it is final because that j is the only writer), or
//   - the initial value A₀[f(i)] otherwise.
//
// Define pred(x) = f(i) for the written cell x = g(i) when the first case
// holds. Iteration numbers strictly decrease along pred, so the pred edges
// form a forest of chains, and Lemma 1's trace is exactly the chain product
//
//	A'[x] = A₀[r] ⊗ A₀[y_k] ⊗ ... ⊗ A₀[y_1] ⊗ A₀[x]
//
// where x → y_1 → ... → y_k are the chain cells and r = f(i_k) is the
// initial cell consumed by the chain's last (deepest) iteration. This is
// Wyllie's pointer-jumping/list-ranking problem: maintain a partial product
// V[x] and a pointer N[x] to the first cell not yet covered by V[x], and
// repeat in lock-step
//
//	V[x] ← V[N[x]] ⊗ V[x];   N[x] ← N[N[x]]
//
// for ⌈log₂ n⌉ rounds. The paper presents the same computation as greedy
// concatenation of sub-traces, with a correction term because its sub-trace
// for A[g(j)] carries the extra leading element A[f(j)]; folding that
// element into the initialization (V[x] = A₀[f(i)] ⊗ A₀[x] when the chain
// terminates at x, V[x] = A₀[x] plus a pointer otherwise) removes the
// correction and leaves plain list ranking. The invariant maintained by
// every round, with W(y) denoting the final value A'[y], is
//
//	A'[x] = W(N[x]) ⊗ V[x]   (N[x] ≠ nil),   A'[x] = V[x]   (N[x] = nil)
//
// which holds initially by the case analysis above and is preserved by
// associativity; tests cross-check the result against both the sequential
// loop and the independent symbolic-trace oracle in internal/trace.
//
// The solver also tracks each chain's root cell R[x] (the cell whose
// *initial* value the trace starts with). Package moebius needs the roots to
// apply the composed Möbius map to the right initial value.
//
// Since ⊗ need not be commutative, operand order is never exchanged — only
// the grouping changes — matching the paper's explicit requirement that the
// algorithm "preserve the multiplications order".
package ordinary
