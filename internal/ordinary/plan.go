package ordinary

import (
	"context"
	"fmt"
	"math"
	"sync"

	"indexedrec/internal/core"
)

// This file implements compiled solve plans for the ordinary solver: the
// structure-only half of SolveCtx — forest construction plus the entire
// pointer-jumping schedule (which cell combines which, in which round) —
// is computed once by CompilePlan and replayed against fresh data by
// SolvePlanCtx. The pointer arrays nx/rt evolve independently of the values,
// so the schedule depends only on (g, f, n, m); replays skip all pointer
// bookkeeping and perform exactly the value combines SolveCtx would,
// in the same order, making results bit-identical.

// roundSched is the combine schedule of one pointer-jumping round, split at
// compile time by data dependence. Every scheduled combine is
// v[dst] = op(v[src], v[dst]) with all src reads observing pre-round values
// (PRAM semantics). Gather pairs are those whose src cell is itself a dst
// of the same round: replays snapshot their source values before applying.
// Direct pairs read a src no combine of the round writes, so they read v in
// place — no snapshot, no extra memory pass. The split is structural, so it
// costs nothing per replay, and the operands are identical either way:
// results stay bit-identical to the unsplit schedule.
type roundSched struct {
	gatherDst, gatherSrc []int32
	directDst, directSrc []int32
}

// pairs returns the round's total combine count.
func (r *roundSched) pairs() int { return len(r.gatherDst) + len(r.directDst) }

// Plan is the compiled, data-independent part of an ordinary-IR solve.
// A Plan is immutable after CompilePlan returns and safe for concurrent
// replays; the slices returned inside replay results (Roots) alias the plan
// and must be treated as read-only.
type Plan struct {
	// M and N mirror the compiled system's dimensions.
	M, N int
	// Forest is the write-chain forest the schedule was compiled from
	// (retained for diagnostics and MaxChainLen).
	Forest *Forest
	// initDst/initSrc hold the initialization-phase combines of terminal
	// written cells: v[initDst[k]] = op(init[initSrc[k]], init[initDst[k]]).
	// Both operands read initial values, so no ordering constraints apply.
	initDst, initSrc []int32
	// rounds[r] is the combine schedule of pointer-jumping round r+1.
	// Within a round all dst cells are distinct.
	rounds []roundSched
	// maxGather is the largest per-round gather-pair count — the snapshot
	// buffer size an Arena needs.
	maxGather int
	// roots[x] is the cell whose initial value the trace of x begins with
	// (Result.Roots of every replay).
	roots []int
	// combines is the total op-application count of any replay
	// (Result.Combines).
	combines int64
	// primeable reports that every initialization-phase source cell is
	// unwritten, so a replay may read initial values straight from the
	// working array (see Arena.SolvePrimedCtx).
	primeable bool

	// arenas pools replay scratch (see Arena) per plan — together with the
	// plan cache's fingerprint keying this is the "arena pool keyed by plan
	// fingerprint": warm replays through SolvePlanPooledCtx check scratch
	// out and back in instead of allocating. Entries are *Arena[T] boxed as
	// any; a type mismatch (same plan replayed under two element types)
	// just drops the entry.
	arenas sync.Pool

	// Chain decomposition (shard.go), computed lazily on first use: chainOf
	// maps each written cell to its chain id (-1 for unwritten cells), and
	// chainSizes[c] counts the cells of chain c. Chains are the connected
	// components of the write-chain forest — the natural distribution unit.
	chainsOnce sync.Once
	chainOf    []int32
	chainSizes []int
}

// CompilePlan runs the structure-only half of SolveCtx: it validates the
// system, builds the write-chain forest, and records the full pointer-jumping
// combine schedule. Cancelling ctx stops compilation between rounds.
func CompilePlan(ctx context.Context, s *core.System) (*Plan, error) {
	fr, err := BuildForest(s)
	if err != nil {
		return nil, err
	}
	if s.M > math.MaxInt32 {
		return nil, fmt.Errorf("ordinary: CompilePlan: m = %d exceeds the plan cell limit %d", s.M, math.MaxInt32)
	}
	p := &Plan{M: s.M, N: s.N, Forest: fr, roots: make([]int, s.M)}

	// Initialization phase, mirroring SolveCtx: unwritten and non-terminal
	// cells start at init[x]; terminal written cells fold in init[InitF[x]].
	nx := make([]int, s.M)
	rt := make([]int, s.M)
	for x := 0; x < s.M; x++ {
		switch {
		case !fr.Written[x]:
			nx[x], rt[x] = -1, x
		case fr.Next[x] >= 0:
			nx[x], rt[x] = fr.Next[x], x
		default:
			p.initDst = append(p.initDst, int32(x))
			p.initSrc = append(p.initSrc, int32(fr.InitF[x]))
			nx[x], rt[x] = -1, fr.InitF[x]
		}
	}
	p.combines = int64(len(p.initDst))
	p.primeable = true
	for _, s := range p.initSrc {
		if fr.Written[s] {
			p.primeable = false
			break
		}
	}

	// Lock-step rounds: record each round's (dst, src) combine list while
	// advancing the pointers exactly as SolveCtx does (double-buffered
	// reads), then split it by dependence: a pair whose src is also written
	// this round (dstRound stamp) must gather a pre-round snapshot; the
	// rest read in place.
	cells := fr.Cells
	nx2 := make([]int, s.M)
	rt2 := make([]int, s.M)
	tmpDst := make([]int32, 0, len(cells))
	tmpSrc := make([]int32, 0, len(cells))
	dstRound := make([]int32, s.M)
	for x := range dstRound {
		dstRound[x] = -1
	}
	for r := int32(0); ; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tmpDst, tmpSrc = tmpDst[:0], tmpSrc[:0]
		for _, x := range cells {
			n := nx[x]
			if n < 0 {
				nx2[x], rt2[x] = -1, rt[x]
				continue
			}
			tmpDst = append(tmpDst, int32(x))
			tmpSrc = append(tmpSrc, int32(n))
			dstRound[x] = r
			nx2[x] = nx[n]
			rt2[x] = rt[n]
		}
		if len(tmpDst) == 0 {
			break
		}
		var rs roundSched
		for k := range tmpDst {
			if dstRound[tmpSrc[k]] == r {
				rs.gatherDst = append(rs.gatherDst, tmpDst[k])
				rs.gatherSrc = append(rs.gatherSrc, tmpSrc[k])
			} else {
				rs.directDst = append(rs.directDst, tmpDst[k])
				rs.directSrc = append(rs.directSrc, tmpSrc[k])
			}
		}
		if len(rs.gatherDst) > p.maxGather {
			p.maxGather = len(rs.gatherDst)
		}
		p.rounds = append(p.rounds, rs)
		p.combines += int64(len(tmpDst))
		nx, nx2 = nx2, nx
		rt, rt2 = rt2, rt
	}
	copy(p.roots, rt)
	return p, nil
}

// Rounds returns the number of pointer-jumping rounds a replay executes.
func (p *Plan) Rounds() int { return len(p.rounds) }

// Primeable reports whether the plan supports prime-in-place replays
// (Arena.SolvePrimedCtx): true when every initialization-phase source cell
// is unwritten, so the fold can read initial values from the working array
// itself. Systems whose chain terminals read initial values of later-written
// cells (possible in raw ordinary systems, never in the Möbius layer's
// shadow systems) are not primeable.
func (p *Plan) Primeable() bool { return p.primeable }

// Combines returns the op-application count of a replay (identical to the
// direct solve's Result.Combines).
func (p *Plan) Combines() int64 { return p.combines }

// Roots returns the chain-root array shared with every replay result.
// The slice is owned by the plan; callers must not modify it.
func (p *Plan) Roots() []int { return p.roots }

// SizeBytes estimates the plan's resident size, for cache accounting.
func (p *Plan) SizeBytes() int64 {
	size := int64(len(p.initDst)+len(p.initSrc)) * 4
	for i := range p.rounds {
		r := &p.rounds[i]
		size += int64(len(r.gatherDst)+len(r.gatherSrc)+len(r.directDst)+len(r.directSrc)) * 4
	}
	size += int64(p.M) * 8 // roots
	if p.Forest != nil {
		size += int64(len(p.Forest.Next)+len(p.Forest.InitF)+len(p.Forest.Cells))*8 +
			int64(len(p.Forest.Written))
	}
	return size
}

// SolvePlanCtx replays a compiled plan against fresh data. The value combines
// are the ones SolveCtx would perform, on the same operands in the same
// round order, so for any op the result is bit-identical to the direct
// solve's. Error and cancellation behavior follows the SolveCtx contract:
// panics in op.Combine return as errors with all workers joined, and
// cancellation stops the replay between rounds and chunks. The returned
// result owns fresh value storage; hot loops that can recycle scratch
// should use an Arena (or SolvePlanPooledCtx) instead.
func SolvePlanCtx[T any](ctx context.Context, p *Plan, op core.Semigroup[T], init []T, opt Options) (*Result[T], error) {
	return NewArena[T](p).SolveCtx(ctx, op, init, opt)
}

// SolvePlanPooledCtx replays a compiled plan through the plan's arena pool:
// scratch buffers (value array, gather snapshots) are checked out, reused,
// and returned, so a warm replay's only allocation is the caller-owned copy
// of the final values. Results are bit-identical to SolvePlanCtx.
func SolvePlanPooledCtx[T any](ctx context.Context, p *Plan, op core.Semigroup[T], init []T, opt Options) (*Result[T], error) {
	a, _ := p.arenas.Get().(*Arena[T])
	if a == nil {
		a = NewArena[T](p)
	}
	res, err := a.SolveCtx(ctx, op, init, opt)
	if err != nil {
		p.arenas.Put(a)
		return nil, err
	}
	values := make([]T, p.M)
	copy(values, res.Values)
	out := &Result[T]{Values: values, Roots: res.Roots, Rounds: res.Rounds, Combines: res.Combines}
	p.arenas.Put(a)
	return out, nil
}
