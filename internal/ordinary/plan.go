package ordinary

import (
	"context"
	"fmt"
	"math"
	"sync"

	"indexedrec/internal/core"
)

// This file implements compiled solve plans for the ordinary solver: the
// structure-only half of SolveCtx — forest construction plus the entire
// combine schedule (which cell combines which, in which round) — is computed
// once by CompilePlan and replayed against fresh data by SolvePlanCtx. The
// pointer arrays nx/rt evolve independently of the values, so the schedule
// depends only on (g, f, n, m); replays skip all pointer bookkeeping and
// perform exactly the value combines SolveCtx would, in the same order,
// making results bit-identical.
//
// Two schedules exist: the paper's pointer jumping (O(n log n) work,
// recorded below) and the work-optimal blocked scan (O(n) work, blocked.go),
// chosen at compile time by a structure-only heuristic — see Schedule and
// DESIGN §14.

// roundSched is the combine schedule of one pointer-jumping round, split at
// compile time by data dependence. Every scheduled combine is
// v[dst] = op(v[src], v[dst]) with all src reads observing pre-round values
// (PRAM semantics). Gather pairs are those whose src cell is itself a dst
// of the same round: replays snapshot their source values before applying.
// Direct pairs read a src no combine of the round writes, so they read v in
// place — no snapshot, no extra memory pass. The split is structural, so it
// costs nothing per replay, and the operands are identical either way:
// results stay bit-identical to the unsplit schedule.
type roundSched struct {
	gatherDst, gatherSrc []int32
	directDst, directSrc []int32
}

// pairs returns the round's total combine count.
func (r *roundSched) pairs() int { return len(r.gatherDst) + len(r.directDst) }

// Plan is the compiled, data-independent part of an ordinary-IR solve.
// A Plan is immutable after CompilePlan returns and safe for concurrent
// replays; the slices returned inside replay results (Roots) alias the plan
// and must be treated as read-only.
type Plan struct {
	// M and N mirror the compiled system's dimensions.
	M, N int
	// Forest is the write-chain forest the schedule was compiled from
	// (retained for diagnostics and MaxChainLen).
	Forest *Forest
	// initDst/initSrc hold the initialization-phase combines of terminal
	// written cells: v[initDst[k]] = op(init[initSrc[k]], init[initDst[k]]).
	// Both operands read initial values, so no ordering constraints apply.
	initDst, initSrc []int32
	// rounds[r] is the combine schedule of pointer-jumping round r+1.
	// Within a round all dst cells are distinct.
	rounds []roundSched
	// maxGather is the largest per-round gather-pair count — the snapshot
	// buffer size an Arena needs.
	maxGather int
	// roots[x] is the cell whose initial value the trace of x begins with
	// (Result.Roots of every replay).
	roots []int
	// combines is the total op-application count of any replay
	// (Result.Combines).
	combines int64
	// primeable reports that every initialization-phase source cell is
	// unwritten, so a replay may read initial values straight from the
	// working array (see Arena.SolvePrimedCtx).
	primeable bool

	// blocked is the work-optimal blocked-scan schedule, non-nil when the
	// compile-time heuristic (or PlanOptions) picked it; replays then skip
	// the rounds machinery entirely. Plans compiled blocked do not record
	// pointer-jumping rounds up front — compiling and storing O(n log n)
	// pairs would negate the blocked path's O(n) compile and memory wins —
	// so rounds/maxGather stay empty until jumpOnce records them on first
	// need (the SetBlockedEnabled kill-switch fallback).
	blocked  *blockedSched
	jumpOnce sync.Once

	// arenas pools replay scratch (see Arena) per plan — together with the
	// plan cache's fingerprint keying this is the "arena pool keyed by plan
	// fingerprint": warm replays through SolvePlanPooledCtx check scratch
	// out and back in instead of allocating. Entries are *Arena[T] boxed as
	// any; a type mismatch (same plan replayed under two element types)
	// just drops the entry.
	arenas sync.Pool

	// Chain decomposition (shard.go), computed lazily on first use: chainOf
	// maps each written cell to its chain id (-1 for unwritten cells), and
	// chainSizes[c] counts the cells of chain c. Chains are the connected
	// components of the write-chain forest — the natural distribution unit.
	chainsOnce sync.Once
	chainOf    []int32
	chainSizes []int
}

// Schedule selects the combine schedule CompilePlanOpts records.
type Schedule int

const (
	// ScheduleAuto (the default) picks per structure: blocked scan when the
	// forest is path-only with a chain of at least blockedMinChain cells,
	// pointer jumping otherwise. The choice is a pure function of the
	// system's structure — never of GOMAXPROCS or other machine state — so
	// every node of a cluster compiles the same fingerprinted plan to the
	// same schedule.
	ScheduleAuto Schedule = iota
	// ScheduleJumping forces the paper's pointer-jumping schedule. Callers
	// that require bit-identical float results against the direct solver
	// (the Möbius layer) pin this.
	ScheduleJumping
	// ScheduleBlocked forces the blocked scan regardless of chain length,
	// and errors when the forest is not path-only.
	ScheduleBlocked
)

// PlanOptions are compile-time knobs of CompilePlanOpts.
type PlanOptions struct {
	// Schedule picks the combine schedule; zero value is ScheduleAuto.
	Schedule Schedule
}

// CompilePlan runs the structure-only half of SolveCtx with the default
// (auto) schedule selection: it validates the system, builds the write-chain
// forest, and records the combine schedule. Cancelling ctx stops compilation
// between rounds.
func CompilePlan(ctx context.Context, s *core.System) (*Plan, error) {
	return CompilePlanOpts(ctx, s, PlanOptions{})
}

// CompilePlanOpts is CompilePlan with explicit schedule selection.
func CompilePlanOpts(ctx context.Context, s *core.System, popt PlanOptions) (*Plan, error) {
	fr, err := BuildForest(s)
	if err != nil {
		return nil, err
	}
	if s.M > math.MaxInt32 {
		return nil, fmt.Errorf("ordinary: CompilePlan: m = %d exceeds the plan cell limit %d", s.M, math.MaxInt32)
	}
	p := &Plan{M: s.M, N: s.N, Forest: fr, roots: make([]int, s.M)}

	// Initialization phase, mirroring SolveCtx: unwritten and non-terminal
	// cells start at init[x]; terminal written cells fold in init[InitF[x]].
	// Recorded for both schedules (the blocked reduce seeds subsume it, the
	// member replays and primeable check read it).
	for x := 0; x < s.M; x++ {
		if fr.Written[x] && fr.Next[x] < 0 {
			p.initDst = append(p.initDst, int32(x))
			p.initSrc = append(p.initSrc, int32(fr.InitF[x]))
		}
	}
	p.combines = int64(len(p.initDst))
	p.primeable = true
	for _, s := range p.initSrc {
		if fr.Written[s] {
			p.primeable = false
			break
		}
	}

	if popt.Schedule != ScheduleJumping {
		blk, err := buildBlocked(fr, s.M, popt.Schedule == ScheduleBlocked)
		if err != nil {
			return nil, err
		}
		if blk != nil {
			p.blocked = blk
			// Roots straight from the chain decomposition (identical to
			// what the jumping recorder's rt propagation converges to):
			// written cells root at their chain's init source, unwritten
			// cells at themselves.
			for x := range p.roots {
				p.roots[x] = x
			}
			for c := 0; c+1 < len(blk.chainOff); c++ {
				r := int(blk.rootOf[c])
				for k := blk.chainOff[c]; k < blk.chainOff[c+1]; k++ {
					p.roots[blk.cellSeq[k]] = r
				}
			}
			return p, nil
		}
	}
	if err := p.recordJumping(ctx); err != nil {
		return nil, err
	}
	p.jumpOnce.Do(func() {})
	return p, nil
}

// ensureJumping lazily records the pointer-jumping schedule of a
// blocked-compiled plan, for the SetBlockedEnabled fallback path. Eagerly
// compiled plans burned the Once at compile time; concurrent callers
// synchronize on it.
func (p *Plan) ensureJumping() {
	p.jumpOnce.Do(func() {
		// Background: recording is pure CPU over retained structure; the
		// caller's ctx still guards the replay that follows.
		_ = p.recordJumping(context.Background())
	})
}

// recordJumping records the pointer-jumping round schedule from the retained
// forest into p.rounds/maxGather and adds its combines to p.combines.
func (p *Plan) recordJumping(ctx context.Context) error {
	fr := p.Forest
	nx := make([]int, p.M)
	rt := make([]int, p.M)
	for x := 0; x < p.M; x++ {
		switch {
		case !fr.Written[x]:
			nx[x], rt[x] = -1, x
		case fr.Next[x] >= 0:
			nx[x], rt[x] = fr.Next[x], x
		default:
			nx[x], rt[x] = -1, fr.InitF[x]
		}
	}

	// Lock-step rounds: record each round's (dst, src) combine list while
	// advancing the pointers exactly as SolveCtx does (double-buffered
	// reads), then split it by dependence: a pair whose src is also written
	// this round (dstRound stamp) must gather a pre-round snapshot; the
	// rest read in place.
	cells := fr.Cells
	nx2 := make([]int, p.M)
	rt2 := make([]int, p.M)
	tmpDst := make([]int32, 0, len(cells))
	tmpSrc := make([]int32, 0, len(cells))
	dstRound := make([]int32, p.M)
	for x := range dstRound {
		dstRound[x] = -1
	}
	for r := int32(0); ; r++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		tmpDst, tmpSrc = tmpDst[:0], tmpSrc[:0]
		for _, x := range cells {
			n := nx[x]
			if n < 0 {
				nx2[x], rt2[x] = -1, rt[x]
				continue
			}
			tmpDst = append(tmpDst, int32(x))
			tmpSrc = append(tmpSrc, int32(n))
			dstRound[x] = r
			nx2[x] = nx[n]
			rt2[x] = rt[n]
		}
		if len(tmpDst) == 0 {
			break
		}
		var rs roundSched
		for k := range tmpDst {
			if dstRound[tmpSrc[k]] == r {
				rs.gatherDst = append(rs.gatherDst, tmpDst[k])
				rs.gatherSrc = append(rs.gatherSrc, tmpSrc[k])
			} else {
				rs.directDst = append(rs.directDst, tmpDst[k])
				rs.directSrc = append(rs.directSrc, tmpSrc[k])
			}
		}
		if len(rs.gatherDst) > p.maxGather {
			p.maxGather = len(rs.gatherDst)
		}
		p.rounds = append(p.rounds, rs)
		p.combines += int64(len(tmpDst))
		nx, nx2 = nx2, nx
		rt, rt2 = rt2, rt
	}
	if p.blocked == nil {
		// Blocked plans already hold identical roots; skipping the copy
		// keeps lazy recording race-free against concurrent root readers.
		copy(p.roots, rt)
	}
	return nil
}

// Rounds returns the number of parallel rounds a replay executes: the
// pointer-jumping round count, or for blocked plans the combine-tree depth
// plus the reduce and apply phases.
func (p *Plan) Rounds() int {
	if b := p.blocked; b != nil {
		return b.rounds + 2
	}
	return len(p.rounds)
}

// BlockedScan reports whether the plan compiled to the work-optimal
// blocked-scan schedule (replays may still fall back to pointer jumping
// while SetBlockedEnabled(false) holds).
func (p *Plan) BlockedScan() bool { return p.blocked != nil }

// Schedule names the compiled combine schedule: "blocked-scan" or
// "pointer-jumping". Both schedules fold each chain's operand sequence in
// the same order; they differ only in association, so results are
// bit-identical for exactly associative ops and equal up to rounding for
// floats (callers that need float bit-identity to the direct solver compile
// with ScheduleJumping).
func (p *Plan) Schedule() string {
	if p.blocked != nil {
		return "blocked-scan"
	}
	return "pointer-jumping"
}

// Primeable reports whether the plan supports prime-in-place replays
// (Arena.SolvePrimedCtx): true when every initialization-phase source cell
// is unwritten, so the fold can read initial values from the working array
// itself. Systems whose chain terminals read initial values of later-written
// cells (possible in raw ordinary systems, never in the Möbius layer's
// shadow systems) are not primeable.
func (p *Plan) Primeable() bool { return p.primeable }

// Combines returns the op-application count of a replay on the compiled
// schedule: identical to the direct solve's Result.Combines for
// pointer-jumping plans, and the (lower, O(n)) blocked count for blocked
// plans.
func (p *Plan) Combines() int64 {
	if b := p.blocked; b != nil {
		return b.combines
	}
	return p.combines
}

// Roots returns the chain-root array shared with every replay result.
// The slice is owned by the plan; callers must not modify it.
func (p *Plan) Roots() []int { return p.roots }

// SizeBytes estimates the plan's resident size, for cache accounting.
func (p *Plan) SizeBytes() int64 {
	size := int64(len(p.initDst)+len(p.initSrc)) * 4
	for i := range p.rounds {
		r := &p.rounds[i]
		size += int64(len(r.gatherDst)+len(r.gatherSrc)+len(r.directDst)+len(r.directSrc)) * 4
	}
	size += int64(p.M) * 8 // roots
	if b := p.blocked; b != nil {
		size += int64(len(b.cellSeq)+len(b.chainOff)+len(b.rootOf)+
			len(b.segOff)+len(b.segChain)+len(b.segFirst)) * 4
	}
	if p.Forest != nil {
		size += int64(len(p.Forest.Next)+len(p.Forest.InitF)+len(p.Forest.Cells))*8 +
			int64(len(p.Forest.Written))
	}
	return size
}

// SolvePlanCtx replays a compiled plan against fresh data. The value combines
// are the ones SolveCtx would perform, on the same operands in the same
// round order, so for any op the result is bit-identical to the direct
// solve's. Error and cancellation behavior follows the SolveCtx contract:
// panics in op.Combine return as errors with all workers joined, and
// cancellation stops the replay between rounds and chunks. The returned
// result owns fresh value storage; hot loops that can recycle scratch
// should use an Arena (or SolvePlanPooledCtx) instead.
func SolvePlanCtx[T any](ctx context.Context, p *Plan, op core.Semigroup[T], init []T, opt Options) (*Result[T], error) {
	return NewArena[T](p).SolveCtx(ctx, op, init, opt)
}

// SolvePlanPooledCtx replays a compiled plan through the plan's arena pool:
// scratch buffers (value array, gather snapshots) are checked out, reused,
// and returned, so a warm replay's only allocation is the caller-owned copy
// of the final values. Results are bit-identical to SolvePlanCtx.
func SolvePlanPooledCtx[T any](ctx context.Context, p *Plan, op core.Semigroup[T], init []T, opt Options) (*Result[T], error) {
	a, _ := p.arenas.Get().(*Arena[T])
	if a == nil {
		a = NewArena[T](p)
	}
	res, err := a.SolveCtx(ctx, op, init, opt)
	if err != nil {
		p.arenas.Put(a)
		return nil, err
	}
	values := make([]T, p.M)
	copy(values, res.Values)
	out := &Result[T]{Values: values, Roots: res.Roots, Rounds: res.Rounds, Combines: res.Combines}
	p.arenas.Put(a)
	return out, nil
}
