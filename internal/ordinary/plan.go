package ordinary

import (
	"context"
	"fmt"
	"math"
	"sync"

	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// This file implements compiled solve plans for the ordinary solver: the
// structure-only half of SolveCtx — forest construction plus the entire
// pointer-jumping schedule (which cell combines which, in which round) —
// is computed once by CompilePlan and replayed against fresh data by
// SolvePlanCtx. The pointer arrays nx/rt evolve independently of the values,
// so the schedule depends only on (g, f, n, m); replays skip all pointer
// bookkeeping and perform exactly the value combines SolveCtx would,
// in the same order, making results bit-identical.

// pair is one scheduled combine: v[Dst] = op(v[Src], v[Dst]) where both
// reads see the previous round's values (PRAM semantics).
type pair struct {
	Dst, Src int32
}

// Plan is the compiled, data-independent part of an ordinary-IR solve.
// A Plan is immutable after CompilePlan returns and safe for concurrent
// replays; the slices returned inside replay results (Roots) alias the plan
// and must be treated as read-only.
type Plan struct {
	// M and N mirror the compiled system's dimensions.
	M, N int
	// Forest is the write-chain forest the schedule was compiled from
	// (retained for diagnostics and MaxChainLen).
	Forest *Forest
	// initPairs holds the initialization-phase combines of terminal written
	// cells: v[Dst] = op(init[Src], init[Dst]). Both operands read the
	// caller's init array, so no ordering constraints apply.
	initPairs []pair
	// rounds[r] is the combine schedule of pointer-jumping round r+1.
	// Within a round all Dst cells are distinct and all Src reads observe
	// pre-round values.
	rounds [][]pair
	// roots[x] is the cell whose initial value the trace of x begins with
	// (Result.Roots of every replay).
	roots []int
	// combines is the total op-application count of any replay
	// (Result.Combines).
	combines int64

	// Chain decomposition (shard.go), computed lazily on first use: chainOf
	// maps each written cell to its chain id (-1 for unwritten cells), and
	// chainSizes[c] counts the cells of chain c. Chains are the connected
	// components of the write-chain forest — the natural distribution unit.
	chainsOnce sync.Once
	chainOf    []int32
	chainSizes []int
}

// CompilePlan runs the structure-only half of SolveCtx: it validates the
// system, builds the write-chain forest, and records the full pointer-jumping
// combine schedule. Cancelling ctx stops compilation between rounds.
func CompilePlan(ctx context.Context, s *core.System) (*Plan, error) {
	fr, err := BuildForest(s)
	if err != nil {
		return nil, err
	}
	if s.M > math.MaxInt32 {
		return nil, fmt.Errorf("ordinary: CompilePlan: m = %d exceeds the plan cell limit %d", s.M, math.MaxInt32)
	}
	p := &Plan{M: s.M, N: s.N, Forest: fr, roots: make([]int, s.M)}

	// Initialization phase, mirroring SolveCtx: unwritten and non-terminal
	// cells start at init[x]; terminal written cells fold in init[InitF[x]].
	nx := make([]int, s.M)
	rt := make([]int, s.M)
	for x := 0; x < s.M; x++ {
		switch {
		case !fr.Written[x]:
			nx[x], rt[x] = -1, x
		case fr.Next[x] >= 0:
			nx[x], rt[x] = fr.Next[x], x
		default:
			p.initPairs = append(p.initPairs, pair{Dst: int32(x), Src: int32(fr.InitF[x])})
			nx[x], rt[x] = -1, fr.InitF[x]
		}
	}
	p.combines = int64(len(p.initPairs))

	// Lock-step rounds: record each round's (dst, src) combine list while
	// advancing the pointers exactly as SolveCtx does (double-buffered reads).
	cells := fr.Cells
	nx2 := make([]int, s.M)
	rt2 := make([]int, s.M)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var round []pair
		for _, x := range cells {
			n := nx[x]
			if n < 0 {
				nx2[x], rt2[x] = -1, rt[x]
				continue
			}
			round = append(round, pair{Dst: int32(x), Src: int32(n)})
			nx2[x] = nx[n]
			rt2[x] = rt[n]
		}
		if len(round) == 0 {
			break
		}
		p.rounds = append(p.rounds, round)
		p.combines += int64(len(round))
		nx, nx2 = nx2, nx
		rt, rt2 = rt2, rt
	}
	copy(p.roots, rt)
	return p, nil
}

// Rounds returns the number of pointer-jumping rounds a replay executes.
func (p *Plan) Rounds() int { return len(p.rounds) }

// Combines returns the op-application count of a replay (identical to the
// direct solve's Result.Combines).
func (p *Plan) Combines() int64 { return p.combines }

// Roots returns the chain-root array shared with every replay result.
// The slice is owned by the plan; callers must not modify it.
func (p *Plan) Roots() []int { return p.roots }

// SizeBytes estimates the plan's resident size, for cache accounting.
func (p *Plan) SizeBytes() int64 {
	size := int64(len(p.initPairs)) * 8
	for _, r := range p.rounds {
		size += int64(len(r)) * 8
	}
	size += int64(p.M) * 8 // roots
	if p.Forest != nil {
		size += int64(len(p.Forest.Next)+len(p.Forest.InitF)+len(p.Forest.Cells))*8 +
			int64(len(p.Forest.Written))
	}
	return size
}

// SolvePlanCtx replays a compiled plan against fresh data. The value combines
// are the ones SolveCtx would perform, on the same operands in the same
// round order, so for any op the result is bit-identical to the direct
// solve's. Error and cancellation behavior follows the SolveCtx contract:
// panics in op.Combine return as errors with all workers joined, and
// cancellation stops the replay between rounds and chunks.
func SolvePlanCtx[T any](ctx context.Context, p *Plan, op core.Semigroup[T], init []T, opt Options) (res *Result[T], err error) {
	defer parallel.RecoverTo(&err)
	if len(init) != p.M {
		return nil, fmt.Errorf("%w: len(init) = %d, want M = %d", ErrInitLen, len(init), p.M)
	}
	v := make([]T, p.M)
	copy(v, init)
	if err := parallel.ForCtx(ctx, len(p.initPairs), opt.Procs, func(lo, hi int) error {
		for k := lo; k < hi; k++ {
			pr := p.initPairs[k]
			v[pr.Dst] = op.Combine(init[pr.Src], init[pr.Dst])
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Per round: gather every source value first, then apply — the explicit
	// form of SolveCtx's double buffering (all reads precede all writes).
	var src []T
	for _, round := range p.rounds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cap(src) < len(round) {
			src = make([]T, len(round))
		}
		src = src[:len(round)]
		if err := parallel.ForCtx(ctx, len(round), opt.Procs, func(lo, hi int) error {
			for k := lo; k < hi; k++ {
				src[k] = v[round[k].Src]
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if err := parallel.ForCtx(ctx, len(round), opt.Procs, func(lo, hi int) error {
			for k := lo; k < hi; k++ {
				x := round[k].Dst
				v[x] = op.Combine(src[k], v[x])
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return &Result[T]{
		Values:   v,
		Roots:    p.roots,
		Rounds:   len(p.rounds),
		Combines: p.combines,
	}, nil
}
