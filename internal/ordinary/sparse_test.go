package ordinary

import (
	"context"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
)

// sparseScattered builds a dense ordinary system over m cells whose n
// iterations form k chains scattered across the global range with a large
// stride, plus the matching init slices (dense and compact orders agree via
// the sparse Cells list).
func sparseScattered(t *testing.T, n, k, stride int) (*core.System, *core.SparseSystem) {
	t.Helper()
	per := n / k
	m := stride*(n+k) + 1
	g := make([]int, 0, n)
	f := make([]int, 0, n)
	for c := 0; c < k; c++ {
		base := stride * c * (per + 1)
		for j := 0; j < per; j++ {
			g = append(g, base+stride*(j+1))
			f = append(f, base+stride*j)
		}
	}
	s := &core.System{M: m, N: len(g), G: g, F: f}
	sp, err := core.CompressSystem(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, sp
}

// TestSparseForestIsomorphic is the structural half of the sparse
// correctness argument (DESIGN §16): compressing the touched cells through
// the order-preserving rank map yields a chain forest isomorphic to the
// dense one — same links, same init sources, same chain count and maximum
// length — discovered in O(n) over touched cells only.
func TestSparseForestIsomorphic(t *testing.T) {
	s, sp := sparseScattered(t, 512, 4, 1000)
	dense, err := BuildForest(s)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := BuildForest(sp.Compact)
	if err != nil {
		t.Fatal(err)
	}
	if len(compact.Next) != sp.NumCells() {
		t.Fatalf("compact forest sized %d, want touched count %d", len(compact.Next), sp.NumCells())
	}
	if dense.MaxChainLen() != compact.MaxChainLen() {
		t.Fatalf("MaxChainLen: dense %d vs compact %d", dense.MaxChainLen(), compact.MaxChainLen())
	}
	// Every touched global cell's links must map to the compact cell's links
	// through the rank bijection.
	rank := make(map[int]int, len(sp.Cells))
	for r, c := range sp.Cells {
		rank[c] = r
	}
	for r, c := range sp.Cells {
		if dense.Written[c] != compact.Written[r] {
			t.Fatalf("Written diverges at cell %d", c)
		}
		dn, cn := dense.Next[c], compact.Next[r]
		if (dn < 0) != (cn < 0) || (dn >= 0 && rank[dn] != cn) {
			t.Fatalf("Next diverges at cell %d: dense %d compact %d", c, dn, cn)
		}
		di, ci := dense.InitF[c], compact.InitF[r]
		if (di < 0) != (ci < 0) || (di >= 0 && rank[di] != ci) {
			t.Fatalf("InitF diverges at cell %d: dense %d compact %d", c, di, ci)
		}
	}
}

// TestSparsePlanMatchesDense checks the behavioural half: compiling the
// compact system yields the same schedule, chain structure, and — through
// the cells gather — bit-identical values as the dense compile, while the
// plan is sized by the touched count, not the global cell count.
func TestSparsePlanMatchesDense(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct{ n, k, stride int }{
		{64, 4, 997},   // short chains -> jumping
		{2048, 2, 313}, // long chains -> blocked-scan
	} {
		s, sp := sparseScattered(t, tc.n, tc.k, tc.stride)
		dp, err := CompilePlan(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := CompilePlan(ctx, sp.Compact)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Schedule() != cp.Schedule() {
			t.Fatalf("schedule diverges: dense %q compact %q", dp.Schedule(), cp.Schedule())
		}
		if dp.NumChains() != cp.NumChains() {
			t.Fatalf("chain count diverges: %d vs %d", dp.NumChains(), cp.NumChains())
		}
		if cp.SizeBytes() >= dp.SizeBytes() {
			t.Fatalf("compact plan (%d bytes) not smaller than dense (%d bytes)",
				cp.SizeBytes(), dp.SizeBytes())
		}

		rng := rand.New(rand.NewSource(7))
		compactInit := make([]int64, sp.NumCells())
		for i := range compactInit {
			compactInit[i] = rng.Int63n(1 << 20)
		}
		fullInit, err := core.ExpandInit(sp, compactInit)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Procs: 4}
		denseRes, err := SolveCtx[int64](ctx, s, core.IntAdd{}, fullInit, opt)
		if err != nil {
			t.Fatal(err)
		}
		compactRes, err := SolveCtx[int64](ctx, sp.Compact, core.IntAdd{}, compactInit, opt)
		if err != nil {
			t.Fatal(err)
		}
		gathered, err := core.GatherTouched(sp, denseRes.Values)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gathered {
			if gathered[i] != compactRes.Values[i] {
				t.Fatalf("n=%d: values diverge at compact id %d (cell %d)", tc.n, i, sp.Cells[i])
			}
		}
	}
}
