package ordinary

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"indexedrec/internal/core"
	"indexedrec/internal/paperfig"
)

// multiChain builds k independent write chains of L written cells each,
// iterations interleaved round-robin across chains so no chain's writes are
// contiguous in iteration order. Chain c occupies cells
// [c·(L+1), (c+1)·(L+1)): its head reads the unwritten cell c·(L+1), so the
// plan is primeable.
func multiChain(k, L int) *core.System {
	s := &core.System{M: k * (L + 1)}
	for j := 0; j < L; j++ {
		for c := 0; c < k; c++ {
			base := c * (L + 1)
			s.G = append(s.G, base+j+1)
			s.F = append(s.F, base+j)
		}
	}
	s.N = len(s.G)
	return s
}

// affine is x ↦ a·x + b over wrapping int64 arithmetic: exactly associative
// under composition (mod 2⁶⁴) but non-commutative, so any operand-order or
// association bug in the blocked schedule changes the bits.
type affine struct{ a, b int64 }

type affineCompose struct{}

func (affineCompose) Name() string { return "affine-compose" }

// Combine composes v after u (apply u first): (v ∘ u)(x) = v.a·(u.a·x+u.b)+v.b.
func (affineCompose) Combine(u, v affine) affine {
	return affine{a: v.a * u.a, b: v.a*u.b + v.b}
}

func affineInit(m int) []affine {
	init := make([]affine, m)
	for x := range init {
		init[x] = affine{a: int64(2*x + 1), b: int64(x) - 7}
	}
	return init
}

func TestBlockedAutoSelection(t *testing.T) {
	cases := []struct {
		name string
		s    *core.System
		want string
	}{
		{"long chain", paperfig.Fig2System(1000), "blocked-scan"},
		{"chain at threshold", multiChain(1, blockedMinChain), "blocked-scan"},
		{"chain below threshold", multiChain(1, blockedMinChain-1), "pointer-jumping"},
		{"short chains", multiChain(8, 10), "pointer-jumping"},
		{"long chains", multiChain(4, 400), "blocked-scan"},
		{"empty", &core.System{M: 5}, "pointer-jumping"},
	}
	for _, tc := range cases {
		p, err := CompilePlan(context.Background(), tc.s)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := p.Schedule(); got != tc.want {
			t.Errorf("%s: schedule = %q, want %q", tc.name, got, tc.want)
		}
		if p.BlockedScan() != (tc.want == "blocked-scan") {
			t.Errorf("%s: BlockedScan() = %v inconsistent with schedule", tc.name, p.BlockedScan())
		}
	}
	// Branching forests (a cell consumed by two chains) are never blocked.
	tree := &core.System{M: 4, N: 3, G: []int{1, 2, 3}, F: []int{0, 1, 1}}
	p, err := CompilePlan(context.Background(), tree)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schedule() != "pointer-jumping" {
		t.Errorf("tree forest: schedule = %q, want pointer-jumping", p.Schedule())
	}
}

func TestBlockedForcedOnTreeErrors(t *testing.T) {
	tree := &core.System{M: 4, N: 3, G: []int{1, 2, 3}, F: []int{0, 1, 1}}
	_, err := CompilePlanOpts(context.Background(), tree, PlanOptions{Schedule: ScheduleBlocked})
	if err == nil {
		t.Fatal("ScheduleBlocked on a branching forest: want error, got nil")
	}
	if !strings.Contains(err.Error(), "two chains") {
		t.Errorf("unexpected error: %v", err)
	}
}

// compareSchedules solves s under both compiled schedules plus the direct
// solver and requires all string results identical (Concat is exact and
// non-commutative, so this checks operand order and association).
func compareSchedules(t *testing.T, s *core.System, forced bool) {
	t.Helper()
	ctx := context.Background()
	init := stringInit(s.M)
	popt := PlanOptions{Schedule: ScheduleAuto}
	if forced {
		popt.Schedule = ScheduleBlocked
	}
	bp, err := CompilePlanOpts(ctx, s, popt)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := CompilePlanOpts(ctx, s, PlanOptions{Schedule: ScheduleJumping})
	if err != nil {
		t.Fatal(err)
	}
	want := core.RunSequential[string](s, core.Concat{}, init)
	for _, procs := range []int{1, 3, 8} {
		br, err := SolvePlanCtx[string](ctx, bp, core.Concat{}, init, Options{Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		jr, err := SolvePlanCtx[string](ctx, jp, core.Concat{}, init, Options{Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		for x := range want {
			if br.Values[x] != want[x] || jr.Values[x] != want[x] {
				t.Fatalf("procs %d cell %d: blocked %q jumping %q want %q",
					procs, x, br.Values[x], jr.Values[x], want[x])
			}
		}
	}
	// Roots must be identical arrays across schedules.
	for x, r := range jp.Roots() {
		if bp.Roots()[x] != r {
			t.Fatalf("cell %d: blocked root %d, jumping root %d", x, bp.Roots()[x], r)
		}
	}
}

func TestBlockedMatchesJumpingLongChains(t *testing.T) {
	compareSchedules(t, paperfig.Fig2System(1000), false)
	compareSchedules(t, multiChain(3, 700), false)
	// Uneven tail: chain length not a segment multiple.
	compareSchedules(t, multiChain(2, blockedSegLen*2+17), false)
}

func TestBlockedForcedDegenerateSchedules(t *testing.T) {
	cases := []*core.System{
		multiChain(1, 1),                 // single-cell chain
		multiChain(5, 1),                 // many single-cell chains
		multiChain(1, 5),                 // chain shorter than one segment
		multiChain(1, blockedSegLen),     // exactly one segment
		multiChain(1, blockedSegLen+1),   // one cell into the second segment
		multiChain(7, 33),                // many partial chains
		multiChain(2, blockedSegLen*4-1), // power-of-two-ish segment counts
		{M: 6},                           // no writes at all
	}
	for i, s := range cases {
		compareSchedules(t, s, true)
		if testing.Verbose() {
			t.Logf("case %d ok", i)
		}
	}
}

func TestBlockedAffineOrderedCombines(t *testing.T) {
	ctx := context.Background()
	s := multiChain(2, 1500)
	init := affineInit(s.M)
	bp, err := CompilePlan(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if !bp.BlockedScan() {
		t.Fatal("expected blocked schedule")
	}
	jp, err := CompilePlanOpts(ctx, s, PlanOptions{Schedule: ScheduleJumping})
	if err != nil {
		t.Fatal(err)
	}
	want := core.RunSequential[affine](s, affineCompose{}, init)
	br, err := SolvePlanCtx[affine](ctx, bp, affineCompose{}, init, Options{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	jr, err := SolvePlanCtx[affine](ctx, jp, affineCompose{}, init, Options{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if br.Values[x] != want[x] || jr.Values[x] != want[x] {
			t.Fatalf("cell %d: blocked %+v jumping %+v want %+v", x, br.Values[x], jr.Values[x], want[x])
		}
	}
}

// countingOp wraps Concat to count Combine invocations, proving
// Result.Combines reports the blocked schedule's exact op-application count.
type countingOp struct{ n *atomic.Int64 }

func (countingOp) Name() string { return "counting-concat" }
func (c countingOp) Combine(a, b string) string {
	c.n.Add(1)
	return a + b
}

func TestBlockedCombinesCountExact(t *testing.T) {
	ctx := context.Background()
	for _, s := range []*core.System{
		paperfig.Fig2System(1000),
		multiChain(3, blockedSegLen*2+17),
	} {
		p, err := CompilePlan(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		if !p.BlockedScan() {
			t.Fatal("expected blocked schedule")
		}
		var n atomic.Int64
		res, err := SolvePlanCtx[string](ctx, p, countingOp{&n}, stringInit(s.M), Options{Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Combines != p.Combines() {
			t.Errorf("Result.Combines = %d, Plan.Combines() = %d", res.Combines, p.Combines())
		}
		if got := n.Load(); got != res.Combines {
			t.Errorf("counted %d Combine calls, Result.Combines = %d", got, res.Combines)
		}
		if res.Rounds != p.Rounds() {
			t.Errorf("Result.Rounds = %d, Plan.Rounds() = %d", res.Rounds, p.Rounds())
		}
		// Work optimality: the blocked count stays within 2n + segment-tree
		// slack, far below the jumping schedule's n·log n.
		n64 := int64(s.N)
		if res.Combines > 2*n64+n64/blockedSegLen*16 {
			t.Errorf("blocked combines %d not O(n) for n = %d", res.Combines, n64)
		}
	}
}

func TestBlockedKillSwitchFallsBackToJumping(t *testing.T) {
	ctx := context.Background()
	s := multiChain(2, 600)
	init := stringInit(s.M)
	p, err := CompilePlan(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if !p.BlockedScan() {
		t.Fatal("expected blocked schedule")
	}
	want := core.RunSequential[string](s, core.Concat{}, init)

	prev := SetBlockedEnabled(false)
	defer SetBlockedEnabled(prev)
	off, err := SolvePlanCtx[string](ctx, p, core.Concat{}, init, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	SetBlockedEnabled(true)
	on, err := SolvePlanCtx[string](ctx, p, core.Concat{}, init, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if off.Values[x] != want[x] || on.Values[x] != want[x] {
			t.Fatalf("cell %d: off %q on %q want %q", x, off.Values[x], on.Values[x], want[x])
		}
	}
	// The fallback replay runs the lazily-recorded jumping rounds; the
	// re-enabled replay runs the 3-phase blocked schedule.
	if off.Rounds == on.Rounds {
		t.Errorf("fallback and blocked replays report the same round count %d", on.Rounds)
	}
	if on.Rounds != p.Rounds() || on.Combines != p.Combines() {
		t.Errorf("blocked replay: rounds %d combines %d, plan reports %d/%d",
			on.Rounds, on.Combines, p.Rounds(), p.Combines())
	}
}

func TestBlockedPrimedReplay(t *testing.T) {
	ctx := context.Background()
	s := multiChain(2, 500)
	init := stringInit(s.M)
	p, err := CompilePlan(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if !p.BlockedScan() || !p.Primeable() {
		t.Fatalf("want blocked primeable plan, got %s primeable=%v", p.Schedule(), p.Primeable())
	}
	ref, err := SolvePlanCtx[string](ctx, p, core.Concat{}, init, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena[string](p)
	copy(a.Buf(), init)
	res, err := a.SolvePrimedCtx(ctx, core.Concat{}, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for x := range ref.Values {
		if res.Values[x] != ref.Values[x] {
			t.Fatalf("cell %d: primed %q, want %q", x, res.Values[x], ref.Values[x])
		}
	}
}

func TestBlockedMemberChains(t *testing.T) {
	ctx := context.Background()
	s := multiChain(4, 300)
	init := stringInit(s.M)
	p, err := CompilePlan(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if !p.BlockedScan() {
		t.Fatal("expected blocked schedule")
	}
	full, err := SolvePlanCtx[string](ctx, p, core.Concat{}, init, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every contiguous chain range must reproduce the full solve on its
	// cells and leave the rest at init.
	for lo := 0; lo <= p.NumChains(); lo++ {
		for hi := lo; hi <= p.NumChains(); hi++ {
			member, err := p.MemberForChains(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			v, err := SolvePlanMemberCtx[string](ctx, p, core.Concat{}, init, member, Options{Procs: 4})
			if err != nil {
				t.Fatal(err)
			}
			for x := range v {
				want := init[x]
				if member[x] {
					want = full.Values[x]
				}
				if v[x] != want {
					t.Fatalf("chains [%d,%d) cell %d: got %q, want %q", lo, hi, x, v[x], want)
				}
			}
		}
	}
	// The shard entry point agrees too.
	sr, err := SolvePlanChainsCtx[string](ctx, p, core.Concat{}, init, 1, 3, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range sr.Cells {
		if sr.Values[k] != full.Values[x] {
			t.Fatalf("shard cell %d: got %q, want %q", x, sr.Values[k], full.Values[x])
		}
	}
}

func TestBlockedMemberKillSwitchAgrees(t *testing.T) {
	ctx := context.Background()
	s := multiChain(3, 400)
	init := stringInit(s.M)
	p, err := CompilePlan(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	member, err := p.MemberForChains(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	on, err := SolvePlanMemberCtx[string](ctx, p, core.Concat{}, init, member, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	prev := SetBlockedEnabled(false)
	off, err := SolvePlanMemberCtx[string](ctx, p, core.Concat{}, init, member, Options{Procs: 4})
	SetBlockedEnabled(prev)
	if err != nil {
		t.Fatal(err)
	}
	for x := range on {
		if on[x] != off[x] {
			t.Fatalf("cell %d: blocked member %q, jumping member %q", x, on[x], off[x])
		}
	}
}

func TestBlockedCancellation(t *testing.T) {
	s := multiChain(1, 2000)
	p, err := CompilePlan(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = SolvePlanCtx[string](ctx, p, core.Concat{}, stringInit(s.M), Options{Procs: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled blocked solve: got %v, want context.Canceled", err)
	}
}
