package ordinary

import (
	"fmt"

	"indexedrec/internal/core"
)

// Incremental (streaming) extension of an ordinary solve: a Resume holds the
// materialized per-cell state of a solved prefix and folds appended
// iterations into it one at a time, in iteration order. Because g is
// distinct across the whole concatenated system, a cell's value never
// changes after the iteration that writes it, so the prefix state is exactly
// what a solve of the concatenated system would leave in those cells — the
// appended suffix is the only new work, O(1) per appended iteration.
//
// The fold applies the loop body exactly as core.RunSequential does
// (A[g] = op(A[f], A[g]) in iteration order), so the state after any number
// of appends is bit-identical to RunSequential of the concatenated system.
// For exactly-associative operators (the integer library) that is also
// bit-identical to the parallel pointer-jumping solve; for float operators
// the parallel schedule's reassociation may round differently, which is the
// same (documented) relationship the direct solvers have to the oracle.

// Resume is the materialized prefix state of an ordinary system being
// extended incrementally. Create with NewResume; not safe for concurrent
// use (callers serialize, as internal/session does).
type Resume[T any] struct {
	op core.Semigroup[T]
	// cur is the live value array, length m. It aliases the slice passed to
	// NewResume.
	cur []T
	// written[x] reports whether some iteration (prefix or appended) wrote
	// cell x; appends must keep g distinct across the whole history.
	written []bool
}

// NewResume builds the resume state over a current value array and the
// written set of the already-solved prefix. cur is retained and mutated by
// Append; written is retained too. len(written) must equal len(cur).
func NewResume[T any](op core.Semigroup[T], cur []T, written []bool) (*Resume[T], error) {
	if len(cur) != len(written) {
		return nil, fmt.Errorf("%w: len(cur) = %d, len(written) = %d",
			core.ErrInvalidSystem, len(cur), len(written))
	}
	return &Resume[T]{op: op, cur: cur, written: written}, nil
}

// WrittenSet computes the written bitmap of a system's prefix (every cell
// some iteration writes), for seeding NewResume.
func WrittenSet(s *core.System) []bool {
	w := make([]bool, s.M)
	for _, g := range s.G {
		w[g] = true
	}
	return w
}

// Append folds k more iterations A[g[i]] = op(A[f[i]], A[g[i]]) into the
// state, in order. Every g[i] must be a previously-unwritten cell (the
// ordinary family's distinct-g invariant must hold over the concatenated
// system); indices must be in range. On error the state is unchanged.
func (r *Resume[T]) Append(g, f []int) error {
	if len(g) != len(f) {
		return fmt.Errorf("%w: len(g) = %d, len(f) = %d", core.ErrInvalidSystem, len(g), len(f))
	}
	m := len(r.cur)
	for i := range g {
		if g[i] < 0 || g[i] >= m || f[i] < 0 || f[i] >= m {
			r.Rollback(g[:i])
			return fmt.Errorf("%w: append iteration %d indexes out of range [0,%d)",
				core.ErrInvalidSystem, i, m)
		}
		if r.written[g[i]] {
			r.Rollback(g[:i])
			return fmt.Errorf("%w: append iteration %d rewrites cell %d",
				ErrGNotDistinct, i, g[i])
		}
		// Marking as we validate catches in-batch duplicates too; a failure
		// rolls the marks back, and the fold below only runs once the whole
		// batch validated, so an error leaves the state untouched.
		r.written[g[i]] = true
	}
	for i := range g {
		r.cur[g[i]] = r.op.Combine(r.cur[f[i]], r.cur[g[i]])
	}
	return nil
}

// Rollback unmarks a batch's written cells after a failed validation pass;
// Append uses it internally, exported for symmetric callers.
func (r *Resume[T]) Rollback(g []int) {
	for _, x := range g {
		r.written[x] = false
	}
}

// Values exposes the live value array (not a copy).
func (r *Resume[T]) Values() []T { return r.cur }

// Written exposes the live written bitmap (not a copy).
func (r *Resume[T]) Written() []bool { return r.written }
