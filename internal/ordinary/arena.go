package ordinary

import (
	"context"
	"fmt"
	"sync/atomic"

	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// kernelsDisabled is the global kill switch for monomorphized kernels (see
// SetKernelsEnabled): when set, replays and direct solves use the generic
// op.Combine element loops even for ops implementing core.Kernel. Fuzzers
// flip it to prove both dispatch paths are bit-identical.
var kernelsDisabled atomic.Bool

// SetKernelsEnabled globally enables (default) or disables monomorphized
// kernel dispatch and reports whether it was enabled before. Intended for
// tests and fuzzers exercising the generic path; not a production tunable.
func SetKernelsEnabled(on bool) bool {
	return !kernelsDisabled.Swap(!on)
}

// kernelFor resolves op's monomorphized kernel, or nil for generic dispatch.
func kernelFor[T any](op core.Semigroup[T]) core.Kernel[T] {
	if kernelsDisabled.Load() {
		return nil
	}
	k, _ := op.(core.Kernel[T])
	return k
}

// Arena is the reusable scratch of plan replays: the working value array,
// the gather snapshot buffer, the result shell, and the pre-bound parallel
// round bodies, all sized once for one plan. A steady-state warm replay
// through an arena performs no allocation at all. An arena is single-solve
// at a time (not safe for concurrent SolveCtx calls on the same arena), and
// the result of a solve aliases the arena's buffers — it is valid only
// until the next SolveCtx on the same arena. Use one arena per worker, or
// SolvePlanPooledCtx for a pool-managed copy-out replay.
type Arena[T any] struct {
	plan *Plan
	v    []T
	src  []T
	res  Result[T]

	// Per-solve bindings, cleared on return so pooled arenas retain no
	// caller data.
	op    core.Semigroup[T]
	kern  core.Kernel[T]
	init  []T
	round *roundSched

	// Round bodies, bound once so ForCtx dispatch never allocates.
	initBody   func(lo, hi int) error
	gatherBody func(lo, hi int) error
	applyBody  func(lo, hi int) error
}

// NewArena allocates replay scratch for p: the value array, a gather
// snapshot buffer of the plan's widest round, and the bound round bodies.
func NewArena[T any](p *Plan) *Arena[T] {
	a := &Arena[T]{
		plan: p,
		v:    make([]T, p.M),
		src:  make([]T, p.maxGather),
	}
	a.initBody = a.initFold
	a.gatherBody = a.gather
	a.applyBody = a.apply
	return a
}

// initFold is the initialization-phase round body: terminal written cells
// fold in their chain root's initial value.
func (a *Arena[T]) initFold(lo, hi int) error {
	p := a.plan
	if a.kern != nil {
		a.kern.CombineScatter(a.v, a.init, p.initDst, p.initSrc, lo, hi)
		return nil
	}
	for k := lo; k < hi; k++ {
		x := p.initDst[k]
		a.v[x] = a.op.Combine(a.init[p.initSrc[k]], a.v[x])
	}
	return nil
}

// gather snapshots the current round's gather-pair sources (pre-round
// values, the explicit form of SolveCtx's double buffering).
func (a *Arena[T]) gather(lo, hi int) error {
	rd := a.round
	for k := lo; k < hi; k++ {
		a.src[k] = a.v[rd.gatherSrc[k]]
	}
	return nil
}

// apply runs the current round's combines over the chunk [lo, hi) of the
// concatenated gather-then-direct pair index space.
func (a *Arena[T]) apply(lo, hi int) error {
	rd := a.round
	gl := len(rd.gatherDst)
	if lo < gl {
		e := hi
		if e > gl {
			e = gl
		}
		if a.kern != nil {
			a.kern.CombineGathered(a.v, a.src, rd.gatherDst, lo, e)
		} else {
			for k := lo; k < e; k++ {
				x := rd.gatherDst[k]
				a.v[x] = a.op.Combine(a.src[k], a.v[x])
			}
		}
	}
	if hi > gl {
		s := lo
		if s < gl {
			s = gl
		}
		if a.kern != nil {
			a.kern.CombineScatter(a.v, a.v, rd.directDst, rd.directSrc, s-gl, hi-gl)
		} else {
			for k := s - gl; k < hi-gl; k++ {
				x := rd.directDst[k]
				a.v[x] = a.op.Combine(a.v[rd.directSrc[k]], a.v[x])
			}
		}
	}
	return nil
}

// Buf exposes the arena's working value array for prime-in-place replays:
// load initial values into it and call SolvePrimedCtx to replay without the
// arena's own init copy. The buffer is owned by the arena and aliased by
// every result; len(Buf()) == Plan().M.
func (a *Arena[T]) Buf() []T { return a.v }

// SolveCtx replays the arena's plan against fresh data, reusing the arena's
// scratch: a steady-state warm replay allocates nothing. The returned result
// aliases the arena (Values is the working array, Roots the plan's) and is
// valid until the next SolveCtx on the same arena. Combines and operand
// order are exactly SolvePlanCtx's, so results are bit-identical; error and
// cancellation behavior follows the same contract.
func (a *Arena[T]) SolveCtx(ctx context.Context, op core.Semigroup[T], init []T, opt Options) (*Result[T], error) {
	if len(init) != a.plan.M {
		return nil, fmt.Errorf("%w: len(init) = %d, want M = %d", ErrInitLen, len(init), a.plan.M)
	}
	return a.solve(ctx, op, init, opt)
}

// SolvePrimedCtx replays the arena's plan reading initial values from the
// working array itself: the caller fills Buf() with this replay's initial
// values and no copy is made. Only valid for primeable plans (see
// Plan.Primeable) — the initialization fold then reads sources the solve
// never writes, so in-place reads observe exactly the values SolveCtx's
// init copy would. The solve overwrites written cells of Buf() only;
// callers that keep unwritten cells loaded (the Möbius shadow arenas) can
// re-prime just the written slots between replays. Results are bit-identical
// to SolveCtx with the same buffer contents as init.
func (a *Arena[T]) SolvePrimedCtx(ctx context.Context, op core.Semigroup[T], opt Options) (*Result[T], error) {
	if !a.plan.primeable {
		return nil, fmt.Errorf("ordinary: SolvePrimedCtx: plan is not primeable (an initialization source cell is written)")
	}
	return a.solve(ctx, op, nil, opt)
}

// solve is the shared replay body; init == nil means primed mode (a.v
// already holds the initial values and doubles as the init array).
func (a *Arena[T]) solve(ctx context.Context, op core.Semigroup[T], init []T, opt Options) (res *Result[T], err error) {
	defer parallel.RecoverTo(&err)
	p := a.plan
	ctx, release := parallel.EnsureGang(ctx, opt.Procs, p.M)
	defer release()

	a.op = op
	a.kern = kernelFor(op)
	if init != nil {
		a.init = init
		copy(a.v, init)
	} else {
		a.init = a.v
	}
	if err := parallel.ForCtx(ctx, len(p.initDst), opt.Procs, a.initBody); err != nil {
		a.reset()
		return nil, err
	}
	for r := range p.rounds {
		rd := &p.rounds[r]
		if err := ctx.Err(); err != nil {
			a.reset()
			return nil, err
		}
		a.round = rd
		if g := len(rd.gatherDst); g > 0 {
			a.src = a.src[:g]
			if err := parallel.ForCtx(ctx, g, opt.Procs, a.gatherBody); err != nil {
				a.reset()
				return nil, err
			}
		}
		if err := parallel.ForCtx(ctx, rd.pairs(), opt.Procs, a.applyBody); err != nil {
			a.reset()
			return nil, err
		}
	}
	a.reset()
	a.res = Result[T]{Values: a.v, Roots: p.roots, Rounds: len(p.rounds), Combines: p.combines}
	return &a.res, nil
}

// reset drops the per-solve bindings so a pooled arena retains no caller
// references.
func (a *Arena[T]) reset() {
	a.op, a.kern, a.init, a.round = nil, nil, nil, nil
	a.src = a.src[:cap(a.src)]
}

// Plan returns the plan this arena's scratch is sized for.
func (a *Arena[T]) Plan() *Plan { return a.plan }
