package ordinary

import (
	"context"
	"fmt"
	"sync/atomic"

	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// kernelsDisabled is the global kill switch for monomorphized kernels (see
// SetKernelsEnabled): when set, replays and direct solves use the generic
// op.Combine element loops even for ops implementing core.Kernel. Fuzzers
// flip it to prove both dispatch paths are bit-identical.
var kernelsDisabled atomic.Bool

// SetKernelsEnabled globally enables (default) or disables monomorphized
// kernel dispatch and reports whether it was enabled before. Intended for
// tests and fuzzers exercising the generic path; not a production tunable.
func SetKernelsEnabled(on bool) bool {
	return !kernelsDisabled.Swap(!on)
}

// kernelFor resolves op's monomorphized kernel, or nil for generic dispatch.
func kernelFor[T any](op core.Semigroup[T]) core.Kernel[T] {
	if kernelsDisabled.Load() {
		return nil
	}
	k, _ := op.(core.Kernel[T])
	return k
}

// Arena is the reusable scratch of plan replays: the working value array,
// the gather snapshot buffer, the result shell, and the pre-bound parallel
// round bodies, all sized once for one plan. A steady-state warm replay
// through an arena performs no allocation at all. An arena is single-solve
// at a time (not safe for concurrent SolveCtx calls on the same arena), and
// the result of a solve aliases the arena's buffers — it is valid only
// until the next SolveCtx on the same arena. Use one arena per worker, or
// SolvePlanPooledCtx for a pool-managed copy-out replay.
type Arena[T any] struct {
	plan *Plan
	v    []T
	src  []T
	// sum/sum2 are the blocked schedule's double-buffered segment-summary
	// arrays (one slot per segment), carved out once here so warm blocked
	// replays allocate nothing.
	sum  []T
	sum2 []T
	res  Result[T]

	// Per-solve bindings, cleared on return so pooled arenas retain no
	// caller data.
	op     core.Semigroup[T]
	kern   core.Kernel[T]
	init   []T
	round  *roundSched
	stride int

	// Round bodies, bound once so ForCtx dispatch never allocates.
	initBody   func(lo, hi int) error
	gatherBody func(lo, hi int) error
	applyBody  func(lo, hi int) error
	// Blocked-phase bodies (bound only for blocked plans).
	reduceBody   func(lo, hi int) error
	treeBody     func(lo, hi int) error
	applyBlkBody func(lo, hi int) error
}

// NewArena allocates replay scratch for p: the value array, a gather
// snapshot buffer of the plan's widest round (or the segment-summary
// buffers of a blocked plan), and the bound round bodies.
func NewArena[T any](p *Plan) *Arena[T] {
	a := &Arena[T]{
		plan: p,
		v:    make([]T, p.M),
		src:  make([]T, p.maxGather),
	}
	a.initBody = a.initFold
	a.gatherBody = a.gather
	a.applyBody = a.apply
	if b := p.blocked; b != nil {
		a.sum = make([]T, b.numSegs())
		a.sum2 = make([]T, b.numSegs())
		a.reduceBody = a.blkReduce
		a.treeBody = a.blkTree
		a.applyBlkBody = a.blkApply
	}
	return a
}

// initFold is the initialization-phase round body: terminal written cells
// fold in their chain root's initial value.
func (a *Arena[T]) initFold(lo, hi int) error {
	p := a.plan
	if a.kern != nil {
		a.kern.CombineScatter(a.v, a.init, p.initDst, p.initSrc, lo, hi)
		return nil
	}
	for k := lo; k < hi; k++ {
		x := p.initDst[k]
		a.v[x] = a.op.Combine(a.init[p.initSrc[k]], a.v[x])
	}
	return nil
}

// gather snapshots the current round's gather-pair sources (pre-round
// values, the explicit form of SolveCtx's double buffering).
func (a *Arena[T]) gather(lo, hi int) error {
	rd := a.round
	for k := lo; k < hi; k++ {
		a.src[k] = a.v[rd.gatherSrc[k]]
	}
	return nil
}

// apply runs the current round's combines over the chunk [lo, hi) of the
// concatenated gather-then-direct pair index space.
func (a *Arena[T]) apply(lo, hi int) error {
	rd := a.round
	gl := len(rd.gatherDst)
	if lo < gl {
		e := hi
		if e > gl {
			e = gl
		}
		if a.kern != nil {
			a.kern.CombineGathered(a.v, a.src, rd.gatherDst, lo, e)
		} else {
			for k := lo; k < e; k++ {
				x := rd.gatherDst[k]
				a.v[x] = a.op.Combine(a.src[k], a.v[x])
			}
		}
	}
	if hi > gl {
		s := lo
		if s < gl {
			s = gl
		}
		if a.kern != nil {
			a.kern.CombineScatter(a.v, a.v, rd.directDst, rd.directSrc, s-gl, hi-gl)
		} else {
			for k := s - gl; k < hi-gl; k++ {
				x := rd.directDst[k]
				a.v[x] = a.op.Combine(a.v[rd.directSrc[k]], a.v[x])
			}
		}
	}
	return nil
}

// blkReduce is the blocked schedule's reduce-phase body: each segment folds
// its cells' initial values sequentially into one summary. A chain-first
// segment seeds with the chain root's initial value (subsuming the jumping
// schedule's initialization fold); any other segment seeds with its own
// first cell. Reads initial values only — safe before any cell is written,
// including primed mode where a.init aliases a.v.
func (a *Arena[T]) blkReduce(lo, hi int) error {
	b := a.plan.blocked
	for s := lo; s < hi; s++ {
		cLo, cHi := b.segBounds(s)
		var acc T
		if int(b.segFirst[s]) == s {
			acc = a.init[b.rootOf[b.segChain[s]]]
		} else {
			acc = a.init[b.cellSeq[cLo]]
			cLo++
		}
		if a.kern != nil {
			acc = a.kern.FoldSeg(acc, a.init, b.cellSeq, cLo, cHi)
		} else {
			for k := cLo; k < cHi; k++ {
				acc = a.op.Combine(acc, a.init[b.cellSeq[k]])
			}
		}
		a.sum[s] = acc
	}
	return nil
}

// blkTree is one round of the Kogge–Stone combine tree over the segment
// summaries: segments with an in-chain predecessor at the current stride
// fold it in (prefix operand first), the rest copy forward; double-buffered
// into sum2, swapped by the driver. Generic dispatch only — the tree
// touches numSegs ≈ n/256 elements, cold next to the reduce/apply phases.
func (a *Arena[T]) blkTree(lo, hi int) error {
	b := a.plan.blocked
	d := a.stride
	for s := lo; s < hi; s++ {
		if s-d >= int(b.segFirst[s]) {
			a.sum2[s] = a.op.Combine(a.sum[s-d], a.sum[s])
		} else {
			a.sum2[s] = a.sum[s]
		}
	}
	return nil
}

// blkApply is the blocked schedule's prefix-apply body: each segment
// re-folds its cells seeded with its predecessor segment's tree prefix
// (chain-first segments re-seed from the chain root), writing every cell's
// final value. In primed mode a.init aliases a.v; the fold reads each cell
// just before overwriting it and segments write disjoint cells, so the
// in-place replay observes exactly the values a separate init array would.
func (a *Arena[T]) blkApply(lo, hi int) error {
	b := a.plan.blocked
	for s := lo; s < hi; s++ {
		cLo, cHi := b.segBounds(s)
		var acc T
		if int(b.segFirst[s]) == s {
			acc = a.init[b.rootOf[b.segChain[s]]]
		} else {
			acc = a.sum[s-1]
		}
		if a.kern != nil {
			a.kern.ScanSeg(a.v, acc, a.init, b.cellSeq, cLo, cHi)
		} else {
			for k := cLo; k < cHi; k++ {
				x := b.cellSeq[k]
				acc = a.op.Combine(acc, a.init[x])
				a.v[x] = acc
			}
		}
	}
	return nil
}

// Buf exposes the arena's working value array for prime-in-place replays:
// load initial values into it and call SolvePrimedCtx to replay without the
// arena's own init copy. The buffer is owned by the arena and aliased by
// every result; len(Buf()) == Plan().M.
func (a *Arena[T]) Buf() []T { return a.v }

// SolveCtx replays the arena's plan against fresh data, reusing the arena's
// scratch: a steady-state warm replay allocates nothing. The returned result
// aliases the arena (Values is the working array, Roots the plan's) and is
// valid until the next SolveCtx on the same arena. Combines and operand
// order are exactly SolvePlanCtx's, so results are bit-identical; error and
// cancellation behavior follows the same contract.
func (a *Arena[T]) SolveCtx(ctx context.Context, op core.Semigroup[T], init []T, opt Options) (*Result[T], error) {
	if len(init) != a.plan.M {
		return nil, fmt.Errorf("%w: len(init) = %d, want M = %d", ErrInitLen, len(init), a.plan.M)
	}
	return a.solve(ctx, op, init, opt)
}

// SolvePrimedCtx replays the arena's plan reading initial values from the
// working array itself: the caller fills Buf() with this replay's initial
// values and no copy is made. Only valid for primeable plans (see
// Plan.Primeable) — the initialization fold then reads sources the solve
// never writes, so in-place reads observe exactly the values SolveCtx's
// init copy would. The solve overwrites written cells of Buf() only;
// callers that keep unwritten cells loaded (the Möbius shadow arenas) can
// re-prime just the written slots between replays. Results are bit-identical
// to SolveCtx with the same buffer contents as init.
func (a *Arena[T]) SolvePrimedCtx(ctx context.Context, op core.Semigroup[T], opt Options) (*Result[T], error) {
	if !a.plan.primeable {
		return nil, fmt.Errorf("ordinary: SolvePrimedCtx: plan is not primeable (an initialization source cell is written)")
	}
	return a.solve(ctx, op, nil, opt)
}

// solve is the shared replay body; init == nil means primed mode (a.v
// already holds the initial values and doubles as the init array).
func (a *Arena[T]) solve(ctx context.Context, op core.Semigroup[T], init []T, opt Options) (res *Result[T], err error) {
	defer parallel.RecoverTo(&err)
	p := a.plan
	ctx, release := parallel.EnsureGang(ctx, opt.Procs, p.M)
	defer release()

	a.op = op
	a.kern = kernelFor(op)
	if init != nil {
		a.init = init
		copy(a.v, init)
	} else {
		a.init = a.v
	}
	if p.blocked != nil && blockedEnabled() {
		return a.solveBlocked(ctx, opt)
	}
	p.ensureJumping()
	if cap(a.src) < p.maxGather {
		// Blocked plans record jumping rounds lazily, so an arena built
		// before this fallback sized src for zero gathers; grow it once.
		a.src = make([]T, p.maxGather)
	}
	if err := parallel.ForCtx(ctx, len(p.initDst), opt.Procs, a.initBody); err != nil {
		a.reset()
		return nil, err
	}
	for r := range p.rounds {
		rd := &p.rounds[r]
		if err := ctx.Err(); err != nil {
			a.reset()
			return nil, err
		}
		a.round = rd
		if g := len(rd.gatherDst); g > 0 {
			a.src = a.src[:g]
			if err := parallel.ForCtx(ctx, g, opt.Procs, a.gatherBody); err != nil {
				a.reset()
				return nil, err
			}
		}
		if err := parallel.ForCtx(ctx, rd.pairs(), opt.Procs, a.applyBody); err != nil {
			a.reset()
			return nil, err
		}
	}
	a.reset()
	a.res = Result[T]{Values: a.v, Roots: p.roots, Rounds: len(p.rounds), Combines: p.combines}
	return &a.res, nil
}

// solveBlocked runs the three blocked-scan phases (reduce, combine tree,
// prefix apply — see blocked.go) on the arena's pre-bound bodies. The
// segment-level loops dispatch through ForCtxWeighted so the per-item grain
// cutover accounts for each segment's blockedSegLen cells of work. Called
// with op/kern/init already bound by solve; shares its error contract.
func (a *Arena[T]) solveBlocked(ctx context.Context, opt Options) (*Result[T], error) {
	p := a.plan
	b := p.blocked
	n := b.numSegs()
	if err := parallel.ForCtxWeighted(ctx, n, opt.Procs, blockedSegLen, a.reduceBody); err != nil {
		a.reset()
		return nil, err
	}
	for a.stride = 1; a.stride < b.maxSegs; a.stride *= 2 {
		if err := ctx.Err(); err != nil {
			a.reset()
			return nil, err
		}
		if err := parallel.ForCtx(ctx, n, opt.Procs, a.treeBody); err != nil {
			a.reset()
			return nil, err
		}
		a.sum, a.sum2 = a.sum2, a.sum
	}
	if err := parallel.ForCtxWeighted(ctx, n, opt.Procs, blockedSegLen, a.applyBlkBody); err != nil {
		a.reset()
		return nil, err
	}
	a.reset()
	a.res = Result[T]{Values: a.v, Roots: p.roots, Rounds: b.rounds + 2, Combines: b.combines}
	return &a.res, nil
}

// reset drops the per-solve bindings so a pooled arena retains no caller
// references.
func (a *Arena[T]) reset() {
	a.op, a.kern, a.init, a.round = nil, nil, nil, nil
	a.src = a.src[:cap(a.src)]
}

// Plan returns the plan this arena's scratch is sized for.
func (a *Arena[T]) Plan() *Plan { return a.plan }
