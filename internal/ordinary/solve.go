package ordinary

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// ErrInitLen is returned by SolveCtx when len(init) != s.M. The legacy
// Solve wrapper converts it back into the historical panic.
var ErrInitLen = errors.New("ordinary: init length does not match cell count")

// Options configure the parallel solver.
type Options struct {
	// Procs is the number of goroutines used per round; <= 0 means
	// GOMAXPROCS. The paper's work-shared version: each of P processors
	// owns ~n/P cells per round, giving T(n,P) = (n/P)·log n.
	Procs int
	// OnRound, if non-nil, is called after every completed round with the
	// jumper state — used by the Fig. 2 visualization and by tests probing
	// lock-step behaviour. Called sequentially, never concurrently.
	OnRound func(round int, j *JumperState)
}

// Result is the outcome of a parallel ordinary-IR solve.
type Result[T any] struct {
	// Values is the final array, identical (for exactly associative ops)
	// to core.RunSequential.
	Values []T
	// Roots[x] is the cell whose initial value the trace of x begins with;
	// Roots[x] == x for unwritten cells. Package moebius consumes this.
	Roots []int
	// Rounds is the number of pointer-jumping rounds executed
	// (= ⌈log₂ L⌉ for longest chain L, plus the final no-change round).
	Rounds int
	// Combines is the total number of ⊗ applications across all rounds —
	// the algorithm's work term.
	Combines int64
}

// JumperState exposes the lock-step state after a round, for visualization.
type JumperState struct {
	// Next is the current pointer array (-1 = trace complete).
	Next []int
	// Active is the number of cells whose pointer is still live.
	Active int
}

// Solve runs the parallel pointer-jumping algorithm. The system must be
// ordinary with distinct g; init must have length s.M (violations panic,
// the historical contract — use SolveCtx for the error-returning, panic-safe
// API). The returned values equal the sequential loop's output for any
// associative op (bit-for-bit when op is exactly associative; up to rounding
// for floats).
func Solve[T any](s *core.System, op core.Semigroup[T], init []T, opt Options) (*Result[T], error) {
	res, err := SolveCtx(context.Background(), s, op, init, opt)
	if errors.Is(err, ErrInitLen) {
		panic("ordinary: Solve: len(init) != s.M")
	}
	return res, err
}

// SolveCtx is the hardened entry point: identical algorithm, but every
// failure — invalid system, init-length mismatch, a panic or Abort inside
// op.Combine or the OnRound hook, or cancellation of ctx — returns as an
// error with all worker goroutines joined. Cancellation is observed between
// chunks within a round and between rounds, so a solve on a cancelled
// context stops promptly with ctx.Err().
func SolveCtx[T any](ctx context.Context, s *core.System, op core.Semigroup[T], init []T, opt Options) (res *Result[T], err error) {
	defer parallel.RecoverTo(&err)
	fr, err := BuildForest(s)
	if err != nil {
		return nil, err
	}
	if len(init) != s.M {
		return nil, fmt.Errorf("%w: len(init) = %d, want s.M = %d", ErrInitLen, len(init), s.M)
	}
	// One worker gang carries every parallel round of the solve; the
	// monomorphized kernel (when op provides one) replaces per-element
	// interface dispatch in the combine loops. Both are transparent:
	// operands and order are unchanged.
	ctx, release := parallel.EnsureGang(ctx, opt.Procs, s.M)
	defer release()
	kern := kernelFor(op)

	m := s.M
	v := make([]T, m)
	nx := make([]int, m)
	rt := make([]int, m)
	v2 := make([]T, m)
	nx2 := make([]int, m)
	rt2 := make([]int, m)
	// Initialization phase — fully parallel over cells (the paper's
	// "initially all traces ... can be computed in parallel"). Both buffers
	// start identical so unwritten cells survive any number of swaps.
	var initCombines atomic.Int64
	if err := parallel.ForCtx(ctx, m, opt.Procs, func(lo, hi int) error {
		var local int64
		for x := lo; x < hi; x++ {
			switch {
			case !fr.Written[x]:
				v[x], nx[x], rt[x] = init[x], -1, x
			case fr.Next[x] >= 0:
				v[x], nx[x], rt[x] = init[x], fr.Next[x], x
			default:
				v[x] = op.Combine(init[fr.InitF[x]], init[x])
				nx[x], rt[x] = -1, fr.InitF[x]
				local++
			}
			v2[x], nx2[x], rt2[x] = v[x], nx[x], rt[x]
		}
		initCombines.Add(local)
		return nil
	}); err != nil {
		return nil, err
	}

	// Lock-step rounds over the written cells only, with double buffering
	// so every round reads the previous round's state (synchronous PRAM
	// semantics). Cells with nx < 0 are done and just copy forward.
	cells := fr.Cells
	res = &Result[T]{Rounds: 0, Combines: initCombines.Load()}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var changed atomic.Bool
		var roundCombines atomic.Int64
		if err := parallel.ForCtx(ctx, len(cells), opt.Procs, func(lo, hi int) error {
			var local int64
			if kern != nil {
				// Monomorphized value pass, then the generic pointer pass —
				// same combines on the same operands as the fused loop.
				local = int64(kern.JumpRound(v2, v, nx, cells, lo, hi))
				for k := lo; k < hi; k++ {
					x := cells[k]
					if n := nx[x]; n >= 0 {
						nx2[x], rt2[x] = nx[n], rt[n]
					} else {
						nx2[x], rt2[x] = -1, rt[x]
					}
				}
			} else {
				for k := lo; k < hi; k++ {
					x := cells[k]
					n := nx[x]
					if n < 0 {
						v2[x], nx2[x], rt2[x] = v[x], -1, rt[x]
						continue
					}
					v2[x] = op.Combine(v[n], v[x])
					nx2[x] = nx[n]
					rt2[x] = rt[n]
					local++
				}
			}
			if local > 0 {
				changed.Store(true)
				roundCombines.Add(local)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if !changed.Load() {
			break
		}
		res.Rounds++
		res.Combines += roundCombines.Load()
		v, v2 = v2, v
		nx, nx2 = nx2, nx
		rt, rt2 = rt2, rt
		if opt.OnRound != nil {
			active := 0
			for _, x := range cells {
				if nx[x] >= 0 {
					active++
				}
			}
			opt.OnRound(res.Rounds, &JumperState{Next: nx, Active: active})
		}
	}

	res.Values = v
	res.Roots = rt
	return res, nil
}

// SolveValues is a convenience wrapper returning just the final array.
func SolveValues[T any](s *core.System, op core.Semigroup[T], init []T, procs int) ([]T, error) {
	r, err := Solve(s, op, init, Options{Procs: procs})
	if err != nil {
		return nil, err
	}
	return r.Values, nil
}
