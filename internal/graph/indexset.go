package graph

import (
	"fmt"
	"sort"
)

// IndexSet is a compressed, sorted set of array indices with rank lookup —
// the index-compression primitive behind the sparse system encoding. It maps
// a scattered set of global cell indices onto the compact range
// [0, Len()) while preserving order, so chain decomposition and plan
// compilation can run over touched cells only and stay O(n) when the global
// array has m ≫ n cells. Ranks are order-preserving: if a < b are both
// members, Rank(a) < Rank(b).
type IndexSet struct {
	cells []int
}

// BuildIndexSet collects the union of the given index slices, deduplicates,
// and sorts ascending. Negative indices are rejected (array indices are
// non-negative by construction everywhere in this repo).
func BuildIndexSet(lists ...[]int) (*IndexSet, error) {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	cells := make([]int, 0, total)
	for _, l := range lists {
		for _, v := range l {
			if v < 0 {
				return nil, fmt.Errorf("graph: index set: negative index %d", v)
			}
			cells = append(cells, v)
		}
	}
	sort.Ints(cells)
	// In-place dedupe of the sorted slice.
	out := cells[:0]
	for i, v := range cells {
		if i == 0 || v != cells[i-1] {
			out = append(out, v)
		}
	}
	return &IndexSet{cells: out}, nil
}

// IndexSetFromSorted wraps an already strictly-ascending slice of indices.
// The slice is validated (strictly ascending catches both unsorted and
// duplicate entries) but not copied; callers hand over ownership.
func IndexSetFromSorted(cells []int) (*IndexSet, error) {
	for i, v := range cells {
		if v < 0 {
			return nil, fmt.Errorf("graph: index set: negative index %d at position %d", v, i)
		}
		if i > 0 && v <= cells[i-1] {
			return nil, fmt.Errorf("graph: index set: cells[%d]=%d not strictly greater than cells[%d]=%d",
				i, v, i-1, cells[i-1])
		}
	}
	return &IndexSet{cells: cells}, nil
}

// Len returns the number of distinct indices in the set.
func (s *IndexSet) Len() int { return len(s.cells) }

// Cells returns the sorted member indices. The slice is owned by the set;
// callers must not mutate it.
func (s *IndexSet) Cells() []int { return s.cells }

// Rank returns the compact id (position in the sorted member list) of global
// index v, or -1 if v is not a member. O(log n) by binary search.
func (s *IndexSet) Rank(v int) int {
	i := sort.SearchInts(s.cells, v)
	if i < len(s.cells) && s.cells[i] == v {
		return i
	}
	return -1
}

// Contains reports whether v is a member of the set.
func (s *IndexSet) Contains(v int) bool { return s.Rank(v) >= 0 }

// Remap translates a slice of global indices to their compact ranks. Every
// input must be a member; a non-member is an error (the caller built the set
// from a superset of these lists, so a miss means corrupted input).
func (s *IndexSet) Remap(global []int) ([]int, error) {
	if global == nil {
		return nil, nil
	}
	out := make([]int, len(global))
	for i, v := range global {
		r := s.Rank(v)
		if r < 0 {
			return nil, fmt.Errorf("graph: index set: index %d at position %d is not a member", v, i)
		}
		out[i] = r
	}
	return out, nil
}
