package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func TestTopoOrderChain(t *testing.T) {
	g := Chain(5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	// Sinks first: must be exactly 0,1,2,3,4 for a chain.
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want [0 1 2 3 4]", order)
		}
	}
}

func TestTopoOrderPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		g := Random(rng, 1+rng.Intn(60), 4)
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, g.N)
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < g.N; v++ {
			for _, w := range g.Out[v] {
				if pos[v] <= pos[w] {
					t.Fatalf("edge %d->%d violates topo order", v, w)
				}
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoOrder(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestSinks(t *testing.T) {
	g := Fibonacci(6)
	sinks := g.Sinks()
	if len(sinks) != 2 || sinks[0] != 0 || sinks[1] != 1 {
		t.Fatalf("Fibonacci sinks = %v, want [0 1]", sinks)
	}
	if got := Chain(4).Sinks(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Chain sinks = %v, want [0]", got)
	}
}

func TestLongestPathLen(t *testing.T) {
	cases := []struct {
		name string
		g    *DAG
		want int
	}{
		{"chain 10", Chain(10), 9},
		{"double chain 6", DoubleChain(6), 5},
		{"fibonacci 8", Fibonacci(8), 6}, // 7 -> 6 -> ... -> 1
		{"edgeless", New(3), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.g.LongestPathLen()
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("got %d, want %d", got, tc.want)
			}
		})
	}
}

func TestDoubleChainEdgeCount(t *testing.T) {
	g := DoubleChain(5)
	if g.NumEdges() != 8 {
		t.Fatalf("NumEdges = %d, want 8", g.NumEdges())
	}
}

func TestLayeredShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Layered(rng, 4, 5, 2)
	if g.N != 20 {
		t.Fatalf("N = %d, want 20", g.N)
	}
	// Layer 0 all sinks; upper layers have out-degree 2.
	for v := 0; v < 5; v++ {
		if len(g.Out[v]) != 0 {
			t.Fatalf("layer-0 node %d has out-edges", v)
		}
	}
	for v := 5; v < 20; v++ {
		if len(g.Out[v]) != 2 {
			t.Fatalf("node %d out-degree %d, want 2", v, len(g.Out[v]))
		}
		for _, w := range g.Out[v] {
			if w/5 != v/5-1 {
				t.Fatalf("edge %d->%d not to adjacent lower layer", v, w)
			}
		}
	}
	lp, err := g.LongestPathLen()
	if err != nil {
		t.Fatal(err)
	}
	if lp != 3 {
		t.Fatalf("longest path = %d, want 3", lp)
	}
}

func TestRandomIsAcyclicAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		g := Random(rng, 100, 6)
		if _, err := g.TopoOrder(); err != nil {
			t.Fatalf("Random produced a cyclic graph: %v", err)
		}
	}
}
