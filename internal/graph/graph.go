package graph

import (
	"errors"
	"fmt"
	"math/rand"
)

// DAG is a directed multigraph given by adjacency lists. Parallel edges are
// represented by repeated entries in Out[v]; CAP treats them as distinct
// paths (they carry multiplicity).
type DAG struct {
	// N is the number of nodes, labeled 0..N-1.
	N int
	// Out[v] lists the targets of v's outgoing edges.
	Out [][]int
}

// New returns an empty DAG with n nodes.
func New(n int) *DAG {
	return &DAG{N: n, Out: make([][]int, n)}
}

// AddEdge appends the edge v → w.
func (g *DAG) AddEdge(v, w int) {
	g.Out[v] = append(g.Out[v], w)
}

// NumEdges returns the total edge count, counting parallel edges.
func (g *DAG) NumEdges() int {
	total := 0
	for _, out := range g.Out {
		total += len(out)
	}
	return total
}

// Sinks returns the nodes with out-degree 0 (the "initial value" leaves in
// the dependence orientation), in increasing order.
func (g *DAG) Sinks() []int {
	var sinks []int
	for v := 0; v < g.N; v++ {
		if len(g.Out[v]) == 0 {
			sinks = append(sinks, v)
		}
	}
	return sinks
}

// ErrCycle is returned by TopoOrder when the graph is not acyclic.
var ErrCycle = errors.New("graph: cycle detected")

// TopoOrder returns a topological order in which every node appears after
// all nodes it has edges to (sinks first). Kahn's algorithm on the reversed
// edges, O(V + E).
func (g *DAG) TopoOrder() ([]int, error) {
	outdeg := make([]int, g.N)
	in := make([][]int, g.N) // in[w] = nodes with an edge to w
	for v := 0; v < g.N; v++ {
		outdeg[v] = len(g.Out[v])
		for _, w := range g.Out[v] {
			in[w] = append(in[w], v)
		}
	}
	order := make([]int, 0, g.N)
	queue := make([]int, 0, g.N)
	for v := 0; v < g.N; v++ {
		if outdeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range in[v] {
			outdeg[u]--
			if outdeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != g.N {
		return nil, fmt.Errorf("%w: %d of %d nodes ordered", ErrCycle, len(order), g.N)
	}
	return order, nil
}

// LongestPathLen returns the number of edges on the longest path in the DAG
// (0 for an edgeless graph). CAP's round count is ⌈log₂⌉ of this.
func (g *DAG) LongestPathLen() (int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	depth := make([]int, g.N)
	longest := 0
	for _, v := range order { // sinks first, so all successors are done
		for _, w := range g.Out[v] {
			if d := depth[w] + 1; d > depth[v] {
				depth[v] = d
			}
		}
		if depth[v] > longest {
			longest = depth[v]
		}
	}
	return longest, nil
}

// ---------------------------------------------------------------------------
// Generators

// Chain returns the n-node path v_{n-1} → ... → v_1 → v_0.
func Chain(n int) *DAG {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, v-1)
	}
	return g
}

// DoubleChain returns the paper's CAP example: a chain of n nodes with TWO
// parallel edges between consecutive nodes, so the number of paths from v_i
// to v_0 is 2^i.
func DoubleChain(n int) *DAG {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, v-1)
		g.AddEdge(v, v-1)
	}
	return g
}

// Fibonacci returns the dependence DAG of A[i] = A[i-1] ⊗ A[i-2] on n nodes
// (paper Fig. 6): node i has edges to i-1 and i-2; nodes 0 and 1 are sinks.
func Fibonacci(n int) *DAG {
	g := New(n)
	for v := 2; v < n; v++ {
		g.AddEdge(v, v-1)
		g.AddEdge(v, v-2)
	}
	return g
}

// Random returns a random DAG on n nodes in which node v only has edges to
// lower-numbered nodes (hence acyclic), with out-degree up to maxOut;
// parallel edges are allowed. Node 0 is always a sink.
func Random(rng *rand.Rand, n, maxOut int) *DAG {
	g := New(n)
	for v := 1; v < n; v++ {
		d := rng.Intn(maxOut + 1)
		for k := 0; k < d; k++ {
			g.AddEdge(v, rng.Intn(v))
		}
	}
	return g
}

// Layered returns a DAG of `layers` layers of `width` nodes; each node has
// `fan` edges to random nodes in the layer below. Layer 0 nodes are sinks.
// It models the wide-and-shallow dependence structure of vectorizable loops.
func Layered(rng *rand.Rand, layers, width, fan int) *DAG {
	g := New(layers * width)
	for l := 1; l < layers; l++ {
		for k := 0; k < width; k++ {
			v := l*width + k
			for e := 0; e < fan; e++ {
				g.AddEdge(v, (l-1)*width+rng.Intn(width))
			}
		}
	}
	return g
}
