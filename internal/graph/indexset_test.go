package graph

import "testing"

func TestBuildIndexSet(t *testing.T) {
	s, err := BuildIndexSet([]int{10, 3, 10}, []int{7, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 7, 10}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for i, v := range want {
		if s.Cells()[i] != v {
			t.Fatalf("Cells[%d] = %d, want %d", i, s.Cells()[i], v)
		}
		if s.Rank(v) != i {
			t.Fatalf("Rank(%d) = %d, want %d", v, s.Rank(v), i)
		}
		if !s.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	if s.Rank(5) != -1 || s.Contains(5) {
		t.Fatal("non-member resolved")
	}
	if _, err := BuildIndexSet([]int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestIndexSetFromSorted(t *testing.T) {
	if _, err := IndexSetFromSorted([]int{1, 2, 9}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{2, 1}, {1, 1}, {-1, 0}} {
		if _, err := IndexSetFromSorted(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestIndexSetRemap(t *testing.T) {
	s, err := BuildIndexSet([]int{100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Remap([]int{300, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []int{2, 0, 1} {
		if got[i] != w {
			t.Fatalf("Remap[%d] = %d, want %d", i, got[i], w)
		}
	}
	if r, err := s.Remap(nil); r != nil || err != nil {
		t.Fatal("nil Remap should pass through")
	}
	if _, err := s.Remap([]int{150}); err == nil {
		t.Fatal("non-member remapped")
	}
}
