// Package graph provides the small DAG substrate used by the CAP (count all
// paths) algorithms and their tests: a compact multigraph representation,
// topological ordering, longest-path computation, and generators for the
// graph families appearing in the paper (chains, double chains, Fibonacci
// dependence DAGs) plus random DAGs for property tests.
//
// Edge direction follows the dependence convention of package gir: an edge
// v → w means "v's value is computed from w's value", so initial values are
// the sinks (out-degree 0). The paper's Definition 1 phrases the same thing
// with its own orientation; only the direction label differs.
//
// Graphs are plain data: build them single-threaded, then share them freely
// — every algorithm here treats its input graph as read-only.
package graph
