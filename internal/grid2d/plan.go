package grid2d

import (
	"context"
	"fmt"
	"sync"

	"indexedrec/internal/core"
)

// diagSpan fixes one wavefront round at compile time: where the diagonal's
// first cell sits in the extended grid and the coefficient grids, and how
// many cells it holds. Cell t of the round lives at ext0 + t·(stride-1) /
// cof0 + t·(stride-2), walking the diagonal with i increasing.
type diagSpan struct {
	ext0  int
	cof0  int
	count int
}

// Plan is the compiled wavefront schedule of one grid shape: the diagonal
// spans in dependency order, sized from structure alone (dimensions, ring,
// term mask — never machine properties), plus an arena pool for pooled
// replays. A Plan is immutable after Compile and safe for concurrent
// SolveCtx calls from any number of goroutines.
type Plan struct {
	rows, cols int
	ring       Ring
	mask       uint8
	stride     int // extended-grid row stride = cols+1
	diags      []diagSpan
	maxDiag    int // widest round, sizes gang requests
	size       int64

	arenas sync.Pool
}

// Compile fixes the wavefront schedule for s's shape. The schedule depends
// only on structure (Rows, Cols, Ring, term mask), so two systems with the
// same shape share plans regardless of coefficient values; SolveCtx
// revalidates shape at solve time.
func Compile(ctx context.Context, s *System) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, c := s.Rows, s.Cols
	stride := c + 1
	diags := make([]diagSpan, r+c-1)
	maxDiag := 0
	for k := range diags {
		iLo := 0
		if k > c-1 {
			iLo = k - (c - 1)
		}
		iHi := k
		if iHi > r-1 {
			iHi = r - 1
		}
		j0 := k - iLo
		diags[k] = diagSpan{
			ext0:  (iLo+1)*stride + (j0 + 1),
			cof0:  iLo*c + j0,
			count: iHi - iLo + 1,
		}
		if diags[k].count > maxDiag {
			maxDiag = diags[k].count
		}
	}
	p := &Plan{
		rows:    r,
		cols:    c,
		ring:    s.Ring,
		mask:    s.TermMask(),
		stride:  stride,
		diags:   diags,
		maxDiag: maxDiag,
	}
	// Cache accounting charges the schedule plus one pooled arena (its
	// extended grid dominates); 24 = sizeof(diagSpan).
	p.size = int64(len(diags))*24 + int64(r+1)*int64(stride)*8 + int64(r)*int64(c)*8
	p.arenas.New = func() any { return p.NewArena() }
	return p, nil
}

// Rows returns the plan's interior row count.
func (p *Plan) Rows() int { return p.rows }

// Cols returns the plan's interior column count.
func (p *Plan) Cols() int { return p.cols }

// Ring returns the semiring the plan folds with.
func (p *Plan) Ring() Ring { return p.ring }

// TermMask returns the structural term-presence bits the plan was compiled
// for.
func (p *Plan) TermMask() uint8 { return p.mask }

// Rounds returns the number of wavefront rounds (Rows+Cols-1).
func (p *Plan) Rounds() int { return len(p.diags) }

// SizeBytes estimates the plan's memory footprint (schedule plus one pooled
// arena) for cache accounting.
func (p *Plan) SizeBytes() int64 { return p.size }

// matches checks that s has exactly the structure p was compiled for.
func (p *Plan) matches(s *System) error {
	if s.Rows != p.rows || s.Cols != p.cols || s.Ring != p.ring || s.TermMask() != p.mask {
		return fmt.Errorf("%w: system (%dx%d ring %s mask %#x) does not match plan (%dx%d ring %s mask %#x)",
			core.ErrInvalidSystem, s.Rows, s.Cols, s.Ring, s.TermMask(),
			p.rows, p.cols, p.ring, p.mask)
	}
	return nil
}

// SolveCtx replays the compiled schedule for s through a pooled arena and
// returns a caller-owned result. Safe for concurrent use; each call checks
// out its own arena, so warm concurrent replays share nothing but the
// immutable schedule.
func (p *Plan) SolveCtx(ctx context.Context, s *System, procs int) (*Result, error) {
	ar := p.arenas.Get().(*Arena)
	res, err := ar.SolveCtx(ctx, s, procs)
	if err != nil {
		p.arenas.Put(ar)
		return nil, err
	}
	out := make([]float64, len(res.Values))
	copy(out, res.Values)
	r := &Result{Values: out, Rounds: res.Rounds, Cells: res.Cells}
	p.arenas.Put(ar)
	return r, nil
}
