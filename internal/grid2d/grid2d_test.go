package grid2d

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"indexedrec/internal/cap"
	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// editDistance builds the Levenshtein DP as a min-plus grid: unit
// insert/delete costs on the up/left terms, 0/1 substitution cost on the
// diagonal, D[0][j]=j / D[i][0]=i boundaries.
func editDistance(a, b string) *System {
	r, c := len(a), len(b)
	s := &System{
		Rows: r, Cols: c, Ring: RingMinPlus,
		A: make([]float64, r*c), B: make([]float64, r*c), D: make([]float64, r*c),
		North: make([]float64, c), West: make([]float64, r),
	}
	for k := range s.A {
		s.A[k], s.B[k] = 1, 1
		if a[k/c] != b[k%c] {
			s.D[k] = 1
		}
	}
	for j := range s.North {
		s.North[j] = float64(j + 1)
	}
	for i := range s.West {
		s.West[i] = float64(i + 1)
	}
	return s
}

// randomSystem builds a random grid with the given shape, ring and term
// mask (at least one term is forced). Affine coefficients stay small so
// 32-step products cannot overflow.
func randomSystem(rng *rand.Rand, rows, cols int, ring Ring, mask uint8) *System {
	if mask&(TermA|TermB|TermD|TermC) == 0 {
		mask = TermA | TermB
	}
	cells := rows * cols
	grid := func() []float64 {
		g := make([]float64, cells)
		for k := range g {
			if ring == RingAffine {
				g[k] = 0.6*rng.Float64() - 0.3
			} else {
				g[k] = float64(rng.Intn(21) - 10)
			}
		}
		return g
	}
	s := &System{Rows: rows, Cols: cols, Ring: ring,
		North: make([]float64, cols), West: make([]float64, rows),
		NW: float64(rng.Intn(9) - 4)}
	if mask&TermA != 0 {
		s.A = grid()
	}
	if mask&TermB != 0 {
		s.B = grid()
	}
	if mask&TermD != 0 {
		s.D = grid()
	}
	if mask&TermC != 0 {
		s.C = grid()
	}
	for j := range s.North {
		s.North[j] = float64(rng.Intn(9) - 4)
	}
	for i := range s.West {
		s.West[i] = float64(rng.Intn(9) - 4)
	}
	return s
}

func TestSolveSequentialEditDistance(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want float64
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"a", "a", 0},
		{"a", "b", 1},
		{"abc", "x", 3},
	} {
		res, err := SolveSequential(editDistance(tc.a, tc.b))
		if err != nil {
			t.Fatalf("SolveSequential(%q,%q): %v", tc.a, tc.b, err)
		}
		if got := res.Values[len(res.Values)-1]; got != tc.want {
			t.Errorf("edit(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if want := len(tc.a) + len(tc.b) - 1; res.Rounds != want {
			t.Errorf("edit(%q,%q) rounds = %d, want %d", tc.a, tc.b, res.Rounds, want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	ok := func() *System { return editDistance("ab", "cde") }
	for name, breakIt := range map[string]func(*System){
		"zero rows":     func(s *System) { s.Rows = 0 },
		"negative cols": func(s *System) { s.Cols = -1 },
		"huge dims":     func(s *System) { s.Rows = maxGridDim + 1 },
		"bad ring":      func(s *System) { s.Ring = numRings },
		"no terms":      func(s *System) { s.A, s.B, s.D, s.C = nil, nil, nil, nil },
		"short a grid":  func(s *System) { s.A = s.A[:3] },
		"short north":   func(s *System) { s.North = s.North[:1] },
		"long west":     func(s *System) { s.West = append(s.West, 0) },
		"nan nw":        func(s *System) { s.NW = nan() },
		"inf north":     func(s *System) { s.North[1] = inf() },
		"nan west":      func(s *System) { s.West[0] = nan() },
	} {
		s := ok()
		breakIt(s)
		if err := s.Validate(); !errors.Is(err, core.ErrInvalidSystem) {
			t.Errorf("%s: Validate() = %v, want ErrInvalidSystem", name, err)
		}
		if _, err := Compile(context.Background(), s); !errors.Is(err, core.ErrInvalidSystem) {
			t.Errorf("%s: Compile() = %v, want ErrInvalidSystem", name, err)
		}
	}
	var nilSys *System
	if err := nilSys.Validate(); !errors.Is(err, core.ErrInvalidSystem) {
		t.Errorf("nil system: Validate() = %v, want ErrInvalidSystem", err)
	}
	if err := ok().Validate(); err != nil {
		t.Errorf("valid system: Validate() = %v", err)
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

func TestRingByName(t *testing.T) {
	for _, r := range []Ring{RingAffine, RingMaxPlus, RingMinPlus} {
		got, err := RingByName(r.String())
		if err != nil || got != r {
			t.Errorf("RingByName(%q) = %v, %v", r.String(), got, err)
		}
	}
	if r, err := RingByName(""); err != nil || r != RingAffine {
		t.Errorf("RingByName(\"\") = %v, %v, want affine default", r, err)
	}
	if _, err := RingByName("bogus"); !errors.Is(err, core.ErrInvalidSystem) {
		t.Errorf("RingByName(bogus) = %v, want ErrInvalidSystem", err)
	}
}

// TestPlanMatchesOracle sweeps shapes (including the 1×1, 1×n, n×1 edge
// cases), rings and term masks, and requires the parallel plan replay and a
// repeated warm arena replay to be bit-identical to the sequential oracle.
func TestPlanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	shapes := [][2]int{{1, 1}, {1, 7}, {7, 1}, {1, 64}, {64, 1}, {2, 2}, {3, 5}, {8, 8}, {17, 31}, {33, 9}}
	for _, sh := range shapes {
		for _, ring := range []Ring{RingAffine, RingMaxPlus, RingMinPlus} {
			for mask := uint8(1); mask < 16; mask++ {
				s := randomSystem(rng, sh[0], sh[1], ring, mask)
				want, err := SolveSequential(s)
				if err != nil {
					t.Fatalf("%dx%d %s mask %#x: oracle: %v", sh[0], sh[1], ring, mask, err)
				}
				p, err := Compile(ctx, s)
				if err != nil {
					t.Fatalf("%dx%d %s mask %#x: Compile: %v", sh[0], sh[1], ring, mask, err)
				}
				got, err := p.SolveCtx(ctx, s, 4)
				if err != nil {
					t.Fatalf("%dx%d %s mask %#x: SolveCtx: %v", sh[0], sh[1], ring, mask, err)
				}
				assertSame(t, fmt.Sprintf("%dx%d %s mask %#x pooled", sh[0], sh[1], ring, mask), want, got)
				ar := p.NewArena()
				for rep := 0; rep < 2; rep++ {
					res, err := ar.SolveCtx(ctx, s, 3)
					if err != nil {
						t.Fatalf("arena rep %d: %v", rep, err)
					}
					assertSame(t, fmt.Sprintf("%dx%d %s mask %#x arena rep %d", sh[0], sh[1], ring, mask, rep), want, res)
				}
			}
		}
	}
}

func assertSame(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Cells != want.Cells {
		t.Fatalf("%s: rounds/cells = %d/%d, want %d/%d", label, got.Rounds, got.Cells, want.Rounds, want.Cells)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: len = %d, want %d", label, len(got.Values), len(want.Values))
	}
	for k := range want.Values {
		if want.Values[k] != got.Values[k] {
			t.Fatalf("%s: cell %d = %v, want %v", label, k, got.Values[k], want.Values[k])
		}
	}
}

// TestKernelToggle proves the monomorphized and generic-dispatch kernel
// paths are bit-identical.
func TestKernelToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	s := randomSystem(rng, 19, 23, RingMaxPlus, TermA|TermB|TermD|TermC)
	p, err := Compile(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := p.SolveCtx(ctx, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetKernelsEnabled(false)
	defer SetKernelsEnabled(prev)
	if prev != true {
		t.Fatalf("kernels were disabled at test start")
	}
	slow, err := p.SolveCtx(ctx, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "generic dispatch", fast, slow)
}

// TestNonFinite drives an affine grid into overflow and requires the oracle
// and the parallel engine to fail identically: same error class, same
// first bad cell in row-major order.
func TestNonFinite(t *testing.T) {
	r, c := 6, 5
	s := &System{Rows: r, Cols: c, Ring: RingAffine,
		A: make([]float64, r*c), B: make([]float64, r*c),
		North: make([]float64, c), West: make([]float64, r)}
	for k := range s.A {
		s.A[k], s.B[k] = 1e300, 1e300
	}
	for j := range s.North {
		s.North[j] = 1e300
	}
	for i := range s.West {
		s.West[i] = 1e300
	}
	_, oerr := SolveSequential(s)
	if !errors.Is(oerr, ErrNonFinite) {
		t.Fatalf("oracle error = %v, want ErrNonFinite", oerr)
	}
	p, err := Compile(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	_, perr := p.SolveCtx(context.Background(), s, 4)
	if !errors.Is(perr, ErrNonFinite) {
		t.Fatalf("parallel error = %v, want ErrNonFinite", perr)
	}
	if oerr.Error() != perr.Error() {
		t.Fatalf("error text diverged:\n  oracle:   %v\n  parallel: %v", oerr, perr)
	}
}

// TestArenaShapeMismatch rejects replaying a plan with a system of a
// different structure.
func TestArenaShapeMismatch(t *testing.T) {
	ctx := context.Background()
	s := editDistance("abc", "abcd")
	p, err := Compile(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	other := editDistance("abcd", "abc") // transposed shape
	if _, err := p.SolveCtx(ctx, other, 2); !errors.Is(err, core.ErrInvalidSystem) {
		t.Fatalf("shape mismatch error = %v, want ErrInvalidSystem", err)
	}
	sameShape := editDistance("abc", "abcd")
	sameShape.Ring = RingMaxPlus // structural change, same dims
	if _, err := p.SolveCtx(ctx, sameShape, 2); !errors.Is(err, core.ErrInvalidSystem) {
		t.Fatalf("ring mismatch error = %v, want ErrInvalidSystem", err)
	}
}

// TestDiagonalScheduleMatchesCAPWavefront embeds small grids as dependence
// DAGs (edges from each cell to the cells it reads) and cross-checks cap's
// general wavefront labeling against grid2d's compiled diagonal schedule:
// level(i,j) must equal the anti-diagonal i+j, the number of levels must
// equal the plan's round count, and each level's population must equal the
// corresponding diagonal's cell count.
func TestDiagonalScheduleMatchesCAPWavefront(t *testing.T) {
	for _, sh := range [][2]int{{1, 1}, {1, 6}, {6, 1}, {3, 4}, {5, 5}} {
		r, c := sh[0], sh[1]
		edges := make(map[int][]cap.Edge)
		one := big.NewInt(1)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				v := i*c + j
				if i > 0 {
					edges[v] = append(edges[v], cap.Edge{To: (i-1)*c + j, Label: one})
				}
				if j > 0 {
					edges[v] = append(edges[v], cap.Edge{To: v - 1, Label: one})
				}
				if i > 0 && j > 0 {
					edges[v] = append(edges[v], cap.Edge{To: (i-1)*c + j - 1, Label: one})
				}
			}
		}
		levels, err := cap.WavefrontLevels(cap.NewGraph(r*c, edges))
		if err != nil {
			t.Fatalf("%dx%d: WavefrontLevels: %v", r, c, err)
		}
		s := randomSystem(rand.New(rand.NewSource(1)), r, c, RingAffine, TermA|TermB|TermD)
		p, err := Compile(context.Background(), s)
		if err != nil {
			t.Fatalf("%dx%d: Compile: %v", r, c, err)
		}
		perLevel := make([]int, p.Rounds())
		for v, l := range levels {
			if want := v/c + v%c; l != want {
				t.Fatalf("%dx%d: level(%d,%d) = %d, want %d", r, c, v/c, v%c, l, want)
			}
			perLevel[l]++
		}
		for k, d := range p.diags {
			if perLevel[k] != d.count {
				t.Errorf("%dx%d: diagonal %d has %d cells, cap level has %d", r, c, k, d.count, perLevel[k])
			}
		}
		if maxL := levels[r*c-1]; maxL+1 != p.Rounds() {
			t.Errorf("%dx%d: cap depth %d+1 != plan rounds %d", r, c, maxL, p.Rounds())
		}
	}
}

// TestConcurrentWarmReplays hammers one plan from many goroutines — pooled
// solves and private arenas interleaved — and requires every result to be
// bit-identical to the oracle. Run under -race this is the arena-aliasing
// safety proof.
func TestConcurrentWarmReplays(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	s := randomSystem(rng, 40, 33, RingMinPlus, TermA|TermB|TermC)
	want, err := SolveSequential(s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	const workers, reps = 8, 20
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ar := p.NewArena()
			for rep := 0; rep < reps; rep++ {
				var res *Result
				var err error
				if (w+rep)%2 == 0 {
					res, err = ar.SolveCtx(ctx, s, 2)
				} else {
					res, err = p.SolveCtx(ctx, s, 2)
				}
				if err != nil {
					errc <- err
					return
				}
				for k := range want.Values {
					if res.Values[k] != want.Values[k] {
						errc <- fmt.Errorf("worker %d rep %d: cell %d = %v, want %v",
							w, rep, k, res.Values[k], want.Values[k])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestWarmReplayZeroAlloc is the acceptance gate: a warm arena replay with
// a persistent gang installed must not allocate at all.
func TestWarmReplayZeroAlloc(t *testing.T) {
	if parallel.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const procs = 4
	rng := rand.New(rand.NewSource(5))
	s := randomSystem(rng, 1200, 1100, RingMaxPlus, TermA|TermB|TermD|TermC)
	p, err := Compile(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	g := parallel.NewGang(procs)
	defer g.Close()
	ctx := parallel.WithGang(context.Background(), g)
	ar := p.NewArena()
	if _, err := ar.SolveCtx(ctx, s, procs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := ar.SolveCtx(ctx, s, procs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm arena replay allocated %.1f times per run, want 0", allocs)
	}
}

// TestCancellation stops a solve mid-flight.
func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSystem(rng, 300, 300, RingAffine, TermA|TermB|TermC)
	p, err := Compile(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SolveCtx(ctx, s, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve error = %v, want context.Canceled", err)
	}
}
