// Package grid2d solves 2-D indexed recurrence grids by anti-diagonal
// wavefronts of batched cell updates (Natale, "On the Computation of 2-D
// Recurrence Equations"):
//
//	w[i,j] = (a[i,j] ⊗ w[i-1,j]) ⊕ (b[i,j] ⊗ w[i,j-1]) ⊕
//	         (d[i,j] ⊗ w[i-1,j-1]) ⊕ c[i,j]
//
// over a selectable float64 semiring (⊕, ⊗): the affine ring (+, ×) for
// linear grid recurrences, or the tropical max-plus / min-plus pairs that
// turn the same grid into a dynamic program — edit distance, Smith–Waterman
// and friends are Systems here, not bespoke solvers.
//
// # Wavefront schedule
//
// Every cell on anti-diagonal k = i+j depends only on diagonals k-1 and
// k-2, so a grid solve is Rows+Cols-1 rounds, each round an embarrassingly
// parallel batch over its diagonal's cells — the same shape as the 1-D
// solver families' rounds, and executed the same way: one parallel.ForCtx
// (gang-backed when a gang is installed) per diagonal over monomorphized
// core.GridKernel batch updates. Cells live in an extended
// (Rows+1)×(Cols+1) grid whose row 0 and column 0 hold the North/West
// boundaries, making the interior update uniform and branch-free; walking
// a diagonal steps the extended index by stride-1 and the coefficient index
// by stride-2.
//
// # Compile once, solve many
//
// Compile fixes the schedule — diagonal offsets, cell counts, the widest
// round — from the system's structure alone (dimensions, semiring, term
// mask), never from machine properties, so plan fingerprints agree across
// machines. Plan.SolveCtx replays through a pool of arenas; NewArena gives
// a caller-owned arena whose warm replays allocate nothing and are
// bit-identical to cold solves and to the SolveSequential oracle (the
// monomorphized and generic kernel paths share one per-cell fold in
// internal/core, and SetKernelsEnabled lets fuzzers prove it).
//
// # Finiteness
//
// Like the Möbius family, results must be finite: boundaries are checked by
// Validate, and outputs are probed during the parallel copy-out (fused into
// the copy, so warm replays pay no separate scan); a NaN or ±Inf anywhere
// fails the solve with ErrNonFinite naming the first bad cell in row-major
// order, identically on every path.
package grid2d
