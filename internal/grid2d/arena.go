package grid2d

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// kernelsDisabled is the global kill switch for monomorphized grid kernels
// (see SetKernelsEnabled): when set, solves dispatch every cell update
// through the generic Semiring interface path instead. Fuzzers flip it to
// prove both dispatch paths are bit-identical.
var kernelsDisabled atomic.Bool

// SetKernelsEnabled globally enables (default) or disables monomorphized
// grid-kernel dispatch and reports whether it was enabled before. Intended
// for tests and fuzzers exercising the generic path; not a production
// tunable.
func SetKernelsEnabled(on bool) bool {
	return !kernelsDisabled.Swap(!on)
}

// kernelFor resolves the ring's batch kernel under the kill switch.
func kernelFor(r Ring) core.GridKernel {
	if !kernelsDisabled.Load() {
		if k := core.GridKernelFor(r.semiring()); k != nil {
			return k
		}
	}
	return core.GridKernelGeneric(r.semiring())
}

// gridGrain is the minimum number of cells a wavefront round hands each
// extra worker: diagonals shorter than 2·gridGrain run on fewer workers
// (down to sequentially) because a cell update is a handful of flops and a
// gang round costs about a microsecond. It is a compile-time constant, not
// a machine property, so it never enters plans or fingerprints.
const gridGrain = 512

// errNonFiniteChunk is the internal marker a copy-out chunk returns when
// its finiteness probe fires; SolveCtx converts it to an ErrNonFinite
// naming the first bad cell in row-major order.
var errNonFiniteChunk = errors.New("grid2d: non-finite chunk")

// Arena is the reusable scratch of grid replays: the boundary-extended
// working grid, the row-major output buffer, the result shell, and the
// pre-bound round bodies, all sized once for one plan. A steady-state warm
// replay through an arena performs no allocation at all. An arena is
// single-solve at a time (not safe for concurrent SolveCtx calls on the
// same arena), and the result of a solve aliases the arena's buffers — it
// is valid only until the next SolveCtx on the same arena. Use one arena
// per worker, or Plan.SolveCtx for a pool-managed copy-out replay.
type Arena struct {
	plan *Plan
	w    []float64 // extended (rows+1)×(cols+1) grid, boundaries in row/col 0
	out  []float64 // row-major rows×cols interior copy
	res  Result

	// Per-solve bindings, cleared on return so pooled arenas retain no
	// caller data.
	sys  *System
	kern core.GridKernel
	k    int // current diagonal, read by body goroutines

	// Round bodies, bound once so ForCtx dispatch never allocates.
	body     func(lo, hi int) error
	copyBody func(lo, hi int) error
}

// NewArena allocates replay scratch for p: the extended working grid, the
// output buffer, and the bound round bodies.
func (p *Plan) NewArena() *Arena {
	a := &Arena{
		plan: p,
		w:    make([]float64, (p.rows+1)*p.stride),
		out:  make([]float64, p.rows*p.cols),
	}
	a.body = a.updateDiag
	a.copyBody = a.copyRows
	return a
}

// updateDiag is the wavefront round body: batch-update cells [lo, hi) of
// the current diagonal through the bound kernel.
func (a *Arena) updateDiag(lo, hi int) error {
	d := a.plan.diags[a.k]
	s := a.sys
	a.kern.UpdateDiag(a.w, s.A, s.B, s.D, s.C, d.ext0, d.cof0, a.plan.stride, lo, hi)
	return nil
}

// copyRows copies interior rows [lo, hi) of the extended grid into the
// row-major output, probing for non-finite values as it goes: v-v
// accumulates 0 for finite cells and NaN otherwise, so the whole chunk is
// checked without a branch per cell.
func (a *Arena) copyRows(lo, hi int) error {
	p := a.plan
	var bad float64
	for i := lo; i < hi; i++ {
		src := a.w[(i+1)*p.stride+1 : (i+1)*p.stride+1+p.cols]
		dst := a.out[i*p.cols : (i+1)*p.cols]
		for j, v := range src {
			dst[j] = v
			bad += v - v
		}
	}
	if bad != 0 {
		return errNonFiniteChunk
	}
	return nil
}

// firstBadCell recovers the exact row-major-first non-finite cell after a
// copy chunk's probe fired — the same cell the sequential oracle names.
func (a *Arena) firstBadCell() error {
	p := a.plan
	for i := 0; i < p.rows; i++ {
		row := a.w[(i+1)*p.stride+1 : (i+1)*p.stride+1+p.cols]
		for j, v := range row {
			if !isFinite(v) {
				return fmt.Errorf("%w: cell (%d,%d)", ErrNonFinite, i, j)
			}
		}
	}
	return ErrNonFinite
}

// workersFor clamps procs so every worker of a round gets at least
// gridGrain cells.
func workersFor(procs, count int) int {
	w := 1 + count/gridGrain
	if w > procs {
		w = procs
	}
	return w
}

// SolveCtx replays the compiled schedule for s in this arena: fill the
// boundary frame, run one parallel round per anti-diagonal, then copy out
// the interior with a fused finiteness probe. The returned result aliases
// the arena's buffers and is valid until the next SolveCtx on the same
// arena. Warm replays allocate nothing and are bit-identical to
// SolveSequential.
func (a *Arena) SolveCtx(ctx context.Context, s *System, procs int) (*Result, error) {
	p := a.plan
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := p.matches(s); err != nil {
		return nil, err
	}
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}

	a.sys = s
	a.kern = kernelFor(s.Ring)
	w := a.w
	w[0] = s.NW
	copy(w[1:1+p.cols], s.North)
	for i := 0; i < p.rows; i++ {
		w[(i+1)*p.stride] = s.West[i]
	}

	ctx, release := parallel.EnsureGang(ctx, procs, p.maxDiag)
	var err error
	for k := range p.diags {
		a.k = k
		count := p.diags[k].count
		if err = parallel.ForCtx(ctx, count, workersFor(procs, count), a.body); err != nil {
			break
		}
	}
	if err == nil {
		err = parallel.ForCtx(ctx, p.rows, workersFor(procs, p.rows*p.cols), a.copyBody)
	}
	release()
	a.sys, a.kern = nil, nil
	if err != nil {
		if errors.Is(err, errNonFiniteChunk) {
			return nil, a.firstBadCell()
		}
		return nil, err
	}
	a.res = Result{
		Values: a.out,
		Rounds: len(p.diags),
		Cells:  int64(p.rows) * int64(p.cols),
	}
	return &a.res, nil
}
