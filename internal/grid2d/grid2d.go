package grid2d

import (
	"errors"
	"fmt"

	"indexedrec/internal/core"
)

// ErrNonFinite reports a grid solve whose output contains a NaN or ±Inf
// cell. It is a value-dependent overflow, not a malformed system, so it is
// distinct from core.ErrInvalidSystem (services map it to 422, not 400).
var ErrNonFinite = errors.New("grid2d: non-finite value in solution")

// maxGridDim bounds each grid dimension so cell counts and extended-grid
// index arithmetic stay far from int overflow on every platform.
const maxGridDim = 1 << 24

// Ring selects the float64 semiring (⊕, ⊗) a grid system folds with.
type Ring uint8

const (
	// RingAffine is the ordinary affine ring: ⊕ = +, ⊗ = ×.
	RingAffine Ring = iota
	// RingMaxPlus is the tropical max-plus semiring: ⊕ = max, ⊗ = +
	// (best-score dynamic programming, e.g. Smith–Waterman).
	RingMaxPlus
	// RingMinPlus is the tropical min-plus semiring: ⊕ = min, ⊗ = +
	// (least-cost dynamic programming, e.g. edit distance).
	RingMinPlus

	numRings
)

// String names the ring as it appears on the wire and in plan fingerprints.
func (r Ring) String() string {
	switch r {
	case RingAffine:
		return "affine"
	case RingMaxPlus:
		return "maxplus"
	case RingMinPlus:
		return "minplus"
	}
	return fmt.Sprintf("ring(%d)", uint8(r))
}

// RingByName parses a wire semiring name ("affine", "maxplus", "minplus").
func RingByName(name string) (Ring, error) {
	switch name {
	case "affine", "":
		return RingAffine, nil
	case "maxplus":
		return RingMaxPlus, nil
	case "minplus":
		return RingMinPlus, nil
	}
	return 0, fmt.Errorf("%w: unknown semiring %q (want affine, maxplus, or minplus)",
		core.ErrInvalidSystem, name)
}

// semiring returns the ring's core algebra; the zero-size concrete types
// box into the interface without allocating.
func (r Ring) semiring() core.Semiring {
	switch r {
	case RingMaxPlus:
		return core.MaxPlusF64{}
	case RingMinPlus:
		return core.MinPlusF64{}
	}
	return core.RingF64{}
}

// Term-presence bits of a System (and of the plans compiled from it). The
// mask is structural: it is part of the plan fingerprint, and the batch
// kernels branch on grid nil-ness exactly as the mask describes.
const (
	// TermA marks the up term a[i,j] ⊗ w[i-1,j].
	TermA uint8 = 1 << iota
	// TermB marks the left term b[i,j] ⊗ w[i,j-1].
	TermB
	// TermD marks the diagonal term d[i,j] ⊗ w[i-1,j-1].
	TermD
	// TermC marks the additive constant c[i,j].
	TermC
)

// System is one 2-D recurrence grid: per-cell coefficient grids for the
// terms present (nil slice = term absent everywhere), the boundary row and
// column the first interior row/column read, and the semiring to fold with.
// All grids are row-major Rows×Cols.
type System struct {
	// Rows and Cols are the interior grid dimensions (both ≥ 1).
	Rows, Cols int
	// Ring selects the semiring the recurrence folds with.
	Ring Ring
	// A scales the up neighbour w[i-1,j]; nil omits the term.
	A []float64
	// B scales the left neighbour w[i,j-1]; nil omits the term.
	B []float64
	// D scales the diagonal neighbour w[i-1,j-1]; nil omits the term.
	D []float64
	// C is the per-cell constant term; nil omits it.
	C []float64
	// North is the boundary row w[-1,j], length Cols.
	North []float64
	// West is the boundary column w[i,-1], length Rows.
	West []float64
	// NW is the corner boundary w[-1,-1] read by cell (0,0)'s diagonal
	// term.
	NW float64
}

// Result is one grid solution.
type Result struct {
	// Values is the solved interior grid, row-major Rows×Cols.
	Values []float64
	// Rounds is the number of wavefront rounds executed (Rows+Cols-1).
	Rounds int
	// Cells is the number of interior cells solved.
	Cells int64
}

// TermMask packs the system's term presence into the structural bits
// TermA..TermC.
func (s *System) TermMask() uint8 {
	var m uint8
	if s.A != nil {
		m |= TermA
	}
	if s.B != nil {
		m |= TermB
	}
	if s.D != nil {
		m |= TermD
	}
	if s.C != nil {
		m |= TermC
	}
	return m
}

// Validate checks the system's shape: positive dimensions, a known ring, at
// least one term, coefficient grids of exactly Rows×Cols cells, boundary
// vectors of the right length, and finite boundary values. It is O(Rows +
// Cols): coefficient grids are not scanned here — value overflow surfaces
// as ErrNonFinite from the output probe instead. All errors wrap
// core.ErrInvalidSystem.
func (s *System) Validate() error {
	if s == nil {
		return fmt.Errorf("%w: nil grid system", core.ErrInvalidSystem)
	}
	if s.Rows < 1 || s.Cols < 1 {
		return fmt.Errorf("%w: grid dimensions %dx%d (both must be >= 1)",
			core.ErrInvalidSystem, s.Rows, s.Cols)
	}
	if s.Rows > maxGridDim || s.Cols > maxGridDim {
		return fmt.Errorf("%w: grid dimensions %dx%d exceed the limit %d per side",
			core.ErrInvalidSystem, s.Rows, s.Cols, maxGridDim)
	}
	if s.Ring >= numRings {
		return fmt.Errorf("%w: unknown ring %d", core.ErrInvalidSystem, s.Ring)
	}
	if s.TermMask() == 0 {
		return fmt.Errorf("%w: grid system has no terms (need at least one of a, b, diag, c)",
			core.ErrInvalidSystem)
	}
	cells := s.Rows * s.Cols
	for _, g := range [...]struct {
		name string
		grid []float64
	}{{"a", s.A}, {"b", s.B}, {"diag", s.D}, {"c", s.C}} {
		if g.grid != nil && len(g.grid) != cells {
			return fmt.Errorf("%w: coefficient grid %q has %d cells, want %dx%d = %d",
				core.ErrInvalidSystem, g.name, len(g.grid), s.Rows, s.Cols, cells)
		}
	}
	if len(s.North) != s.Cols {
		return fmt.Errorf("%w: north boundary has %d cells, want cols = %d",
			core.ErrInvalidSystem, len(s.North), s.Cols)
	}
	if len(s.West) != s.Rows {
		return fmt.Errorf("%w: west boundary has %d cells, want rows = %d",
			core.ErrInvalidSystem, len(s.West), s.Rows)
	}
	if !isFinite(s.NW) {
		return fmt.Errorf("%w: non-finite northwest boundary", core.ErrInvalidSystem)
	}
	for j, v := range s.North {
		if !isFinite(v) {
			return fmt.Errorf("%w: non-finite north boundary at column %d",
				core.ErrInvalidSystem, j)
		}
	}
	for i, v := range s.West {
		if !isFinite(v) {
			return fmt.Errorf("%w: non-finite west boundary at row %d",
				core.ErrInvalidSystem, i)
		}
	}
	return nil
}

// isFinite reports whether v is neither NaN nor ±Inf. v-v is 0 for every
// finite v and NaN otherwise, so the test compiles to two instructions and
// fuses into copy loops without branching per cell.
func isFinite(v float64) bool {
	return v-v == 0
}

// neighbours returns the up/left/diagonal operands of interior cell (i, j),
// pulling from the boundary vectors along the first row and column.
func (s *System) neighbours(out []float64, i, j int) (up, left, diag float64) {
	c := s.Cols
	if i == 0 {
		up = s.North[j]
	} else {
		up = out[(i-1)*c+j]
	}
	if j == 0 {
		left = s.West[i]
	} else {
		left = out[i*c+j-1]
	}
	switch {
	case i == 0 && j == 0:
		diag = s.NW
	case i == 0:
		diag = s.North[j-1]
	case j == 0:
		diag = s.West[i-1]
	default:
		diag = out[(i-1)*c+j-1]
	}
	return up, left, diag
}

// SolveSequential is the reference oracle: a plain row-major sweep through
// interface-dispatched per-cell updates, sharing the canonical term fold
// with the parallel kernels so both produce bit-identical values. It exists
// to check the wavefront engine, not to be fast.
func SolveSequential(s *System) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	ring := s.Ring.semiring()
	out := make([]float64, s.Rows*s.Cols)
	for i := 0; i < s.Rows; i++ {
		for j := 0; j < s.Cols; j++ {
			up, left, diag := s.neighbours(out, i, j)
			out[i*s.Cols+j] = core.GridCell(ring, s.A, s.B, s.D, s.C, i*s.Cols+j, up, left, diag)
		}
	}
	if err := checkFinite(out, s.Cols); err != nil {
		return nil, err
	}
	return &Result{
		Values: out,
		Rounds: s.Rows + s.Cols - 1,
		Cells:  int64(s.Rows) * int64(s.Cols),
	}, nil
}

// checkFinite scans a row-major solution and reports the first non-finite
// cell in row-major order — the order both the oracle and the arena's
// recovery scan use, so every path names the same cell.
func checkFinite(out []float64, cols int) error {
	for k, v := range out {
		if !isFinite(v) {
			return fmt.Errorf("%w: cell (%d,%d)", ErrNonFinite, k/cols, k%cols)
		}
	}
	return nil
}
