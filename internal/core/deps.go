package core

// Deps holds the write/read dependence structure shared by the parallel
// solvers: for every operand reference, the iteration that produced the
// value it reads (or -1 when it reads an initial value), and for every cell,
// the iteration that wrote it last.
type Deps struct {
	// FPrev[i] is the largest j < i with G[j] == F[i], or -1 if iteration i
	// reads the initial value of cell F[i].
	FPrev []int
	// HPrev is the same for the H operand. For ordinary systems (H = G and
	// G distinct) HPrev[i] is always -1: the G-operand read is the cell's
	// own initial value.
	HPrev []int
	// LastWriter[x] is the largest i with G[i] == x, or -1 if cell x is
	// never written. The final value of x is produced by LastWriter[x].
	LastWriter []int
}

// ComputeDeps builds the dependence structure in O(N + M) time by replaying
// the loop once and tracking, per cell, the most recent writer.
func ComputeDeps(s *System) *Deps {
	d := &Deps{
		FPrev:      make([]int, s.N),
		HPrev:      make([]int, s.N),
		LastWriter: make([]int, s.M),
	}
	for x := range d.LastWriter {
		d.LastWriter[x] = -1
	}
	last := make([]int, s.M) // last[x] = latest writer of x so far, -1 none
	for x := range last {
		last[x] = -1
	}
	for i := 0; i < s.N; i++ {
		d.FPrev[i] = last[s.F[i]]
		d.HPrev[i] = last[s.OperandH(i)]
		last[s.G[i]] = i
	}
	copy(d.LastWriter, last)
	return d
}
