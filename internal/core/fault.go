package core

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"indexedrec/internal/parallel"
)

// This file is the fault-injection harness the chaos tests drive: operator
// wrappers that misbehave at a chosen call, and a countdown trigger for
// cancelling a solve at a chosen round. Production code never constructs
// these; they exist so every solver's panic-safety, error propagation and
// cancellation paths are exercised under `go test -race`.

// ErrInjected is the error an InjectOp raises at its FailAt call.
var ErrInjected = errors.New("core: injected fault")

// InjectOp wraps a Semigroup and misbehaves at chosen Combine calls:
//
//   - call number PanicAt (1-based) panics with a plain value, modeling a
//     buggy user operator;
//   - call number FailAt aborts the surrounding panic-safe parallel region
//     with Err (default ErrInjected) via parallel.Abort, modeling an
//     operator that detects an unrecoverable condition mid-solve;
//   - OnCall, if non-nil, observes every call number before the checks —
//     the hook used to cancel a context at a chosen point of the solve.
//
// Call numbers are counted atomically across goroutines. Zero values
// disable the corresponding fault, so the zero configuration is a
// transparent pass-through.
type InjectOp[T any] struct {
	Inner   Semigroup[T]
	PanicAt int64
	FailAt  int64
	Err     error
	OnCall  func(k int64)

	calls atomic.Int64
}

// Calls returns the number of Combine calls observed so far.
func (f *InjectOp[T]) Calls() int64 { return f.calls.Load() }

// Name implements Semigroup.
func (f *InjectOp[T]) Name() string { return "inject(" + f.Inner.Name() + ")" }

// Combine implements Semigroup, injecting the configured fault.
func (f *InjectOp[T]) Combine(a, b T) T {
	k := f.calls.Add(1)
	if f.OnCall != nil {
		f.OnCall(k)
	}
	if f.PanicAt > 0 && k == f.PanicAt {
		panic(fmt.Sprintf("core: injected panic at combine #%d", k))
	}
	if f.FailAt > 0 && k == f.FailAt {
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		parallel.Abort(fmt.Errorf("combine #%d: %w", k, err))
	}
	return f.Inner.Combine(a, b)
}

// InjectMonoid extends InjectOp to the CommutativeMonoid contract so the
// GIR solver can be fault-injected too: Pow shares the same call counter
// and fault schedule as Combine.
type InjectMonoid[T any] struct {
	InjectOp[T]
	M CommutativeMonoid[T]
}

// NewInjectMonoid wraps m; configure the fault schedule on the embedded
// InjectOp fields afterwards.
func NewInjectMonoid[T any](m CommutativeMonoid[T]) *InjectMonoid[T] {
	im := &InjectMonoid[T]{M: m}
	im.Inner = m
	return im
}

// Identity implements Monoid.
func (f *InjectMonoid[T]) Identity() T { return f.M.Identity() }

// Pow implements CommutativeMonoid, counting against the same schedule.
func (f *InjectMonoid[T]) Pow(a T, k *big.Int) T {
	n := f.calls.Add(1)
	if f.OnCall != nil {
		f.OnCall(n)
	}
	if f.PanicAt > 0 && n == f.PanicAt {
		panic(fmt.Sprintf("core: injected panic at pow #%d", n))
	}
	if f.FailAt > 0 && n == f.FailAt {
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		parallel.Abort(fmt.Errorf("pow #%d: %w", n, err))
	}
	return f.M.Pow(a, k)
}

// CancelAt returns a countdown trigger: the k-th invocation (1-based) of
// the returned function calls fire exactly once. Wire it into a solver's
// OnRound hook (or InjectOp.OnCall) to cancel a context at a chosen round:
//
//	hook := core.CancelAt(2, cancel)
//	opt.OnRound = func(round int, j *JumperState) { hook() }
//
// The trigger is safe for concurrent use.
func CancelAt(k int64, fire func()) func() {
	var calls atomic.Int64
	return func() {
		if calls.Add(1) == k {
			fire()
		}
	}
}
