package core

// Kernel is the optional monomorphized fast path of a Semigroup: an op that
// also implements Kernel[T] supplies batch combine loops specialized to its
// concrete element type, bypassing the per-element interface dispatch of
// the generic solver loops. The solvers type-assert for it once per solve
// and fall back to op.Combine element loops when absent (or when kernels
// are disabled for differential testing); a kernel's loops MUST be
// observationally identical to calling Combine per element — same operand
// order, same float semantics — so results stay bit-identical either way.
//
// All methods operate on the half-open index range [lo, hi) of their
// schedule slices, matching the chunk protocol of parallel.ForCtx.
type Kernel[T any] interface {
	Semigroup[T]
	// CombineGathered applies v[dst[k]] = Combine(src[k], v[dst[k]]) for
	// every k in [lo, hi): the apply half of a gather-then-apply round,
	// where src holds pre-round source values gathered by index k.
	CombineGathered(v, src []T, dst []int32, lo, hi int)
	// CombineScatter applies v[dst[k]] = Combine(from[src[k]], v[dst[k]])
	// for every k in [lo, hi), with from unwritten by the round (the
	// initialization fold, and round pairs whose source is not itself
	// written this round).
	CombineScatter(v, from []T, dst, src []int32, lo, hi int)
	// JumpRound runs one double-buffered pointer-jumping round over the
	// cells slice restricted to [lo, hi): for each x = cells[k] with
	// nx[x] >= 0 it sets v2[x] = Combine(v[nx[x]], v[x]); cells with
	// nx[x] < 0 copy v[x] forward. It returns the combine count so the
	// caller can maintain Result.Combines. Pointer bookkeeping (nx2, rt2)
	// stays with the generic caller.
	JumpRound(v2, v []T, nx []int, cells []int, lo, hi int) int
	// FoldSeg runs the ascending sequential fold
	// acc = Combine(acc, from[idx[k]]) for every k in [lo, hi) and returns
	// the final acc — the segment-reduce phase of the blocked (work-optimal)
	// scan schedule, where idx is the chain-major cell sequence.
	FoldSeg(acc T, from []T, idx []int32, lo, hi int) T
	// ScanSeg runs the same ascending fold as FoldSeg but also stores every
	// intermediate: acc = Combine(acc, from[idx[k]]); v[idx[k]] = acc — the
	// prefix-apply phase of the blocked scan. v and from may alias (the
	// primed replay path): each slot is read before it is written, and no
	// slot is visited twice. Returns the final acc.
	ScanSeg(v []T, acc T, from []T, idx []int32, lo, hi int) T
}

// CombineGathered implements Kernel for int64 sums.
func (o IntAdd) CombineGathered(v, src []int64, dst []int32, lo, hi int) {
	for k := lo; k < hi; k++ {
		v[dst[k]] += src[k]
	}
}

// CombineScatter implements Kernel for int64 sums.
func (o IntAdd) CombineScatter(v, from []int64, dst, src []int32, lo, hi int) {
	for k := lo; k < hi; k++ {
		v[dst[k]] += from[src[k]]
	}
}

// JumpRound implements Kernel for int64 sums.
func (o IntAdd) JumpRound(v2, v []int64, nx []int, cells []int, lo, hi int) int {
	combines := 0
	for k := lo; k < hi; k++ {
		x := cells[k]
		if n := nx[x]; n >= 0 {
			v2[x] = v[n] + v[x]
			combines++
		} else {
			v2[x] = v[x]
		}
	}
	return combines
}

// FoldSeg implements Kernel for int64 sums.
func (o IntAdd) FoldSeg(acc int64, from []int64, idx []int32, lo, hi int) int64 {
	for k := lo; k < hi; k++ {
		acc += from[idx[k]]
	}
	return acc
}

// ScanSeg implements Kernel for int64 sums.
func (o IntAdd) ScanSeg(v []int64, acc int64, from []int64, idx []int32, lo, hi int) int64 {
	for k := lo; k < hi; k++ {
		x := idx[k]
		acc += from[x]
		v[x] = acc
	}
	return acc
}

// CombineGathered implements Kernel for float64 sums.
func (o Float64Add) CombineGathered(v, src []float64, dst []int32, lo, hi int) {
	for k := lo; k < hi; k++ {
		v[dst[k]] = src[k] + v[dst[k]]
	}
}

// CombineScatter implements Kernel for float64 sums.
func (o Float64Add) CombineScatter(v, from []float64, dst, src []int32, lo, hi int) {
	for k := lo; k < hi; k++ {
		v[dst[k]] = from[src[k]] + v[dst[k]]
	}
}

// JumpRound implements Kernel for float64 sums.
func (o Float64Add) JumpRound(v2, v []float64, nx []int, cells []int, lo, hi int) int {
	combines := 0
	for k := lo; k < hi; k++ {
		x := cells[k]
		if n := nx[x]; n >= 0 {
			v2[x] = v[n] + v[x]
			combines++
		} else {
			v2[x] = v[x]
		}
	}
	return combines
}

// FoldSeg implements Kernel for float64 sums.
func (o Float64Add) FoldSeg(acc float64, from []float64, idx []int32, lo, hi int) float64 {
	for k := lo; k < hi; k++ {
		acc = acc + from[idx[k]]
	}
	return acc
}

// ScanSeg implements Kernel for float64 sums.
func (o Float64Add) ScanSeg(v []float64, acc float64, from []float64, idx []int32, lo, hi int) float64 {
	for k := lo; k < hi; k++ {
		x := idx[k]
		acc = acc + from[x]
		v[x] = acc
	}
	return acc
}

// CombineGathered implements Kernel for float64 minima.
func (o Float64Min) CombineGathered(v, src []float64, dst []int32, lo, hi int) {
	for k := lo; k < hi; k++ {
		v[dst[k]] = o.Combine(src[k], v[dst[k]])
	}
}

// CombineScatter implements Kernel for float64 minima.
func (o Float64Min) CombineScatter(v, from []float64, dst, src []int32, lo, hi int) {
	for k := lo; k < hi; k++ {
		v[dst[k]] = o.Combine(from[src[k]], v[dst[k]])
	}
}

// JumpRound implements Kernel for float64 minima.
func (o Float64Min) JumpRound(v2, v []float64, nx []int, cells []int, lo, hi int) int {
	combines := 0
	for k := lo; k < hi; k++ {
		x := cells[k]
		if n := nx[x]; n >= 0 {
			v2[x] = o.Combine(v[n], v[x])
			combines++
		} else {
			v2[x] = v[x]
		}
	}
	return combines
}

// FoldSeg implements Kernel for float64 minima.
func (o Float64Min) FoldSeg(acc float64, from []float64, idx []int32, lo, hi int) float64 {
	for k := lo; k < hi; k++ {
		acc = o.Combine(acc, from[idx[k]])
	}
	return acc
}

// ScanSeg implements Kernel for float64 minima.
func (o Float64Min) ScanSeg(v []float64, acc float64, from []float64, idx []int32, lo, hi int) float64 {
	for k := lo; k < hi; k++ {
		x := idx[k]
		acc = o.Combine(acc, from[x])
		v[x] = acc
	}
	return acc
}

// CombineGathered implements Kernel for float64 maxima.
func (o Float64Max) CombineGathered(v, src []float64, dst []int32, lo, hi int) {
	for k := lo; k < hi; k++ {
		v[dst[k]] = o.Combine(src[k], v[dst[k]])
	}
}

// CombineScatter implements Kernel for float64 maxima.
func (o Float64Max) CombineScatter(v, from []float64, dst, src []int32, lo, hi int) {
	for k := lo; k < hi; k++ {
		v[dst[k]] = o.Combine(from[src[k]], v[dst[k]])
	}
}

// JumpRound implements Kernel for float64 maxima.
func (o Float64Max) JumpRound(v2, v []float64, nx []int, cells []int, lo, hi int) int {
	combines := 0
	for k := lo; k < hi; k++ {
		x := cells[k]
		if n := nx[x]; n >= 0 {
			v2[x] = o.Combine(v[n], v[x])
			combines++
		} else {
			v2[x] = v[x]
		}
	}
	return combines
}

// FoldSeg implements Kernel for float64 maxima.
func (o Float64Max) FoldSeg(acc float64, from []float64, idx []int32, lo, hi int) float64 {
	for k := lo; k < hi; k++ {
		acc = o.Combine(acc, from[idx[k]])
	}
	return acc
}

// ScanSeg implements Kernel for float64 maxima.
func (o Float64Max) ScanSeg(v []float64, acc float64, from []float64, idx []int32, lo, hi int) float64 {
	for k := lo; k < hi; k++ {
		x := idx[k]
		acc = o.Combine(acc, from[x])
		v[x] = acc
	}
	return acc
}

// Kernel conformance of the hot monoids.
var (
	_ Kernel[int64]   = IntAdd{}
	_ Kernel[float64] = Float64Add{}
	_ Kernel[float64] = Float64Min{}
	_ Kernel[float64] = Float64Max{}
)
