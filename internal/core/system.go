package core

import (
	"errors"
	"fmt"
)

// System describes an indexed recurrence system: N loop iterations over an
// array of M cells. Iteration i performs A[G[i]] = op(A[F[i]], A[H[i]]).
// A nil H means the ordinary form H = G, i.e. A[G[i]] = op(A[F[i]], A[G[i]]).
type System struct {
	// M is the number of array cells; valid indices are 0..M-1.
	M int
	// N is the number of loop iterations; G, F (and H when present) have
	// length N.
	N int
	// G maps each iteration to the cell it writes.
	G []int
	// F maps each iteration to its first operand cell.
	F []int
	// H maps each iteration to its second operand cell. nil means H = G
	// (the ordinary IR form).
	H []int
}

// Ordinary reports whether the system is in the ordinary form H = G, either
// because H is nil or because H equals G element-wise.
func (s *System) Ordinary() bool {
	if s.H == nil {
		return true
	}
	for i, h := range s.H {
		if h != s.G[i] {
			return false
		}
	}
	return true
}

// GDistinct reports whether no cell is written by more than one iteration —
// the paper's precondition for the O(n)-processor ordinary algorithm and for
// the Möbius rewriting of the extended linear form.
func (s *System) GDistinct() bool {
	seen := make(map[int]struct{}, len(s.G))
	for _, g := range s.G {
		if _, dup := seen[g]; dup {
			return false
		}
		seen[g] = struct{}{}
	}
	return true
}

// ErrInvalidSystem wraps all validation failures.
var ErrInvalidSystem = errors.New("core: invalid IR system")

// Validate checks structural consistency: positive sizes, matching map
// lengths, and in-bounds indices. It does NOT require G distinct; solvers
// with that precondition check it themselves.
func (s *System) Validate() error {
	if s.M <= 0 {
		return fmt.Errorf("%w: M = %d, want > 0", ErrInvalidSystem, s.M)
	}
	if s.N < 0 {
		return fmt.Errorf("%w: N = %d, want >= 0", ErrInvalidSystem, s.N)
	}
	if len(s.G) != s.N || len(s.F) != s.N {
		return fmt.Errorf("%w: len(G)=%d len(F)=%d, want N=%d",
			ErrInvalidSystem, len(s.G), len(s.F), s.N)
	}
	if s.H != nil && len(s.H) != s.N {
		return fmt.Errorf("%w: len(H)=%d, want N=%d", ErrInvalidSystem, len(s.H), s.N)
	}
	check := func(name string, idx []int) error {
		for i, v := range idx {
			if v < 0 || v >= s.M {
				return fmt.Errorf("%w: %s[%d] = %d out of range [0,%d)",
					ErrInvalidSystem, name, i, v, s.M)
			}
		}
		return nil
	}
	if err := check("G", s.G); err != nil {
		return err
	}
	if err := check("F", s.F); err != nil {
		return err
	}
	if s.H != nil {
		if err := check("H", s.H); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := &System{M: s.M, N: s.N}
	c.G = append([]int(nil), s.G...)
	c.F = append([]int(nil), s.F...)
	if s.H != nil {
		c.H = append([]int(nil), s.H...)
	}
	return c
}

// OperandH returns the second-operand cell of iteration i, resolving the
// H = G convention for ordinary systems.
func (s *System) OperandH(i int) int {
	if s.H == nil {
		return s.G[i]
	}
	return s.H[i]
}

// String summarizes the system shape for error messages and reports.
func (s *System) String() string {
	form := "general"
	if s.Ordinary() {
		form = "ordinary"
	}
	return fmt.Sprintf("IR{%s, n=%d, m=%d}", form, s.N, s.M)
}

// FromFuncs builds a System by tabulating index functions over 0..n-1.
// h may be nil for the ordinary form. It is a convenience for examples and
// tests that state systems the way the paper does, as functions f, g, h.
func FromFuncs(n, m int, g, f, h func(i int) int) *System {
	s := &System{M: m, N: n, G: make([]int, n), F: make([]int, n)}
	if h != nil {
		s.H = make([]int, n)
	}
	for i := 0; i < n; i++ {
		s.G[i] = g(i)
		s.F[i] = f(i)
		if h != nil {
			s.H[i] = h(i)
		}
	}
	return s
}
