package core

import (
	"math"
	"math/big"
)

// This file provides the library of concrete operators used by the solvers,
// examples and benchmarks. Naming convention: the type is <Domain><Op>,
// e.g. IntAdd is (int64, +). Commutative operators implement
// CommutativeMonoid; non-commutative ones (Concat, matrix products) only
// Semigroup/Monoid, which the type system then keeps out of the GIR solver.

// ---------------------------------------------------------------------------
// int64 operators

// IntAdd is (int64, +, 0). Pow(a, k) = k*a computed exactly via big.Int and
// truncated to int64 (wrap-around), matching repeated Combine.
type IntAdd struct{}

// Name returns "int64-add".
func (IntAdd) Name() string { return "int64-add" }

// Combine returns a + b (native wrap-around semantics).
func (IntAdd) Combine(a, b int64) int64 { return a + b }

// Identity returns 0.
func (IntAdd) Identity() int64 { return 0 }

// Pow returns k*a with the same wrap-around semantics as k-fold addition.
func (IntAdd) Pow(a int64, k *big.Int) int64 {
	var r big.Int
	r.Mul(big.NewInt(a), k)
	return truncInt64(&r)
}

// truncInt64 reduces r modulo 2^64 and reinterprets as int64, matching the
// overflow behaviour of native int64 arithmetic.
func truncInt64(r *big.Int) int64 {
	var m big.Int
	m.And(r, mask64)
	return int64(m.Uint64())
}

var mask64 = new(big.Int).SetUint64(^uint64(0))

// IntMax is (int64, max, MinInt64). Idempotent: Pow(a,k>=1) = a.
type IntMax struct{}

// Name returns "int64-max".
func (IntMax) Name() string { return "int64-max" }

// Combine returns the larger of a and b.
func (IntMax) Combine(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Identity returns math.MinInt64.
func (IntMax) Identity() int64 { return -1 << 63 }

// Pow exploits idempotence: a for k >= 1, the identity for k = 0.
func (IntMax) Pow(a int64, k *big.Int) int64 {
	if k.Sign() == 0 {
		return IntMax{}.Identity()
	}
	return a
}

// IntMin is (int64, min, MaxInt64). Idempotent.
type IntMin struct{}

// Name returns "int64-min".
func (IntMin) Name() string { return "int64-min" }

// Combine returns the smaller of a and b.
func (IntMin) Combine(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Identity returns math.MaxInt64.
func (IntMin) Identity() int64 { return 1<<63 - 1 }

// Pow exploits idempotence: a for k >= 1, the identity for k = 0.
func (IntMin) Pow(a int64, k *big.Int) int64 {
	if k.Sign() == 0 {
		return IntMin{}.Identity()
	}
	return a
}

// IntXor is (int64, ^, 0). Pow depends only on parity of k.
type IntXor struct{}

// Name returns "int64-xor".
func (IntXor) Name() string { return "int64-xor" }

// Combine returns a XOR b.
func (IntXor) Combine(a, b int64) int64 { return a ^ b }

// Identity returns 0.
func (IntXor) Identity() int64 { return 0 }

// Pow returns a for odd k and 0 for even k (self-inverse operator).
func (IntXor) Pow(a int64, k *big.Int) int64 {
	if k.Bit(0) == 1 {
		return a
	}
	return 0
}

// ---------------------------------------------------------------------------
// Modular multiplication: the workhorse for property tests of the GIR path,
// because powers stay bounded and the operation is exactly associative.

// MulMod is (Z_m, *, 1) for an odd modulus m < 2^31 (kept small so products
// fit in int64 without overflow).
type MulMod struct {
	// M is the modulus; must be >= 2.
	M int64
}

// Name returns "mul-mod".
func (o MulMod) Name() string { return "mul-mod" }

// Combine returns a*b mod M, normalizing negative operands first.
func (o MulMod) Combine(a, b int64) int64 {
	a %= o.M
	b %= o.M
	if a < 0 {
		a += o.M
	}
	if b < 0 {
		b += o.M
	}
	return a * b % o.M
}

// Identity returns 1 mod M.
func (o MulMod) Identity() int64 { return 1 % o.M }

// Pow uses big.Int.Exp, which handles huge exponents (e.g. Fibonacci-sized
// path counts) in O(log k) multiplications — the paper's "atomic power".
func (o MulMod) Pow(a int64, k *big.Int) int64 {
	a %= o.M
	if a < 0 {
		a += o.M
	}
	var r big.Int
	r.Exp(big.NewInt(a), k, big.NewInt(o.M))
	return r.Int64()
}

// AddMod is (Z_m, +, 0); Pow(a,k) = (k mod m)*a mod m.
type AddMod struct {
	// M is the modulus; must be >= 2.
	M int64
}

// Name returns "add-mod".
func (o AddMod) Name() string { return "add-mod" }

// Combine returns a+b mod M, normalized into [0, M).
func (o AddMod) Combine(a, b int64) int64 {
	r := (a%o.M + b%o.M) % o.M
	if r < 0 {
		r += o.M
	}
	return r
}

// Identity returns 0.
func (o AddMod) Identity() int64 { return 0 }

// Pow returns (k mod M)*a mod M — k-fold modular addition in O(1).
func (o AddMod) Pow(a int64, k *big.Int) int64 {
	var km big.Int
	km.Mod(k, big.NewInt(o.M))
	return o.Combine(a%o.M*km.Int64()%o.M, 0)
}

// ---------------------------------------------------------------------------
// float64 operators. Float addition/multiplication are only approximately
// associative; the parallel solvers regroup products, so results match the
// sequential loop up to rounding. Tests use approximate comparison.

// Float64Add is (float64, +, 0).
type Float64Add struct{}

// Name returns "float64-add".
func (Float64Add) Name() string { return "float64-add" }

// Combine returns a + b.
func (Float64Add) Combine(a, b float64) float64 { return a + b }

// Identity returns 0.
func (Float64Add) Identity() float64 { return 0 }

// Pow returns a*k (one rounding step, in place of k-fold addition).
func (Float64Add) Pow(a float64, k *big.Int) float64 {
	kf, _ := new(big.Float).SetInt(k).Float64()
	return a * kf
}

// Float64Mul is (float64, *, 1).
type Float64Mul struct{}

// Name returns "float64-mul".
func (Float64Mul) Name() string { return "float64-mul" }

// Combine returns a * b.
func (Float64Mul) Combine(a, b float64) float64 { return a * b }

// Identity returns 1.
func (Float64Mul) Identity() float64 { return 1 }

// Pow computes a^k by square-and-multiply, the grouping PowBySquaring uses.
func (Float64Mul) Pow(a float64, k *big.Int) float64 {
	return PowBySquaring[float64](Float64Mul{}, a, k)
}

// ---------------------------------------------------------------------------
// big.Int multiplication: exact, commutative, used by the Fibonacci-powers
// example (paper Fig. 5) where values genuinely have exponential magnitude.

// BigMul is (big.Int, *, 1). Values are treated as immutable.
type BigMul struct{}

// Name returns "bigint-mul".
func (BigMul) Name() string { return "bigint-mul" }

// Combine returns a*b in a fresh big.Int (operands are never mutated).
func (BigMul) Combine(a, b *big.Int) *big.Int {
	return new(big.Int).Mul(a, b)
}

// Identity returns a fresh big.Int holding 1.
func (BigMul) Identity() *big.Int { return big.NewInt(1) }

// Pow returns a^k exactly via big.Int.Exp when k fits in int64.
func (BigMul) Pow(a *big.Int, k *big.Int) *big.Int {
	if !k.IsInt64() {
		// Exact big-int powers with non-int64 exponents would not fit in
		// memory anyway; fall back to square-and-multiply which will OOM
		// honestly rather than silently truncate.
		return PowBySquaring[*big.Int](BigMul{}, a, k)
	}
	return new(big.Int).Exp(a, k, nil)
}

// ---------------------------------------------------------------------------

// Concat is the canonical NON-commutative associative operator. It is the
// sharpest test that the ordinary-IR solver preserves operand order, and it
// doubles as a trace extractor: running the loop over singleton strings
// yields each cell's trace spelled out.
type Concat struct{}

// Name returns "string-concat".
func (Concat) Name() string { return "string-concat" }

// Combine returns the concatenation ab — order matters.
func (Concat) Combine(a, b string) string { return a + b }

// Identity returns the empty string.
func (Concat) Identity() string { return "" }

// ---------------------------------------------------------------------------
// Compile-time conformance checks.
var (
	_ CommutativeMonoid[int64]    = IntAdd{}
	_ CommutativeMonoid[int64]    = IntMax{}
	_ CommutativeMonoid[int64]    = IntMin{}
	_ CommutativeMonoid[int64]    = IntXor{}
	_ CommutativeMonoid[int64]    = MulMod{M: 3}
	_ CommutativeMonoid[int64]    = AddMod{M: 3}
	_ CommutativeMonoid[float64]  = Float64Add{}
	_ CommutativeMonoid[float64]  = Float64Mul{}
	_ CommutativeMonoid[*big.Int] = BigMul{}
	_ CommutativeMonoid[int64]    = Gcd{}
	_ CommutativeMonoid[float64]  = Float64Min{}
	_ CommutativeMonoid[float64]  = Float64Max{}
	_ Monoid[string]              = Concat{}
)

// ---------------------------------------------------------------------------

// Gcd is (int64 >= 0, gcd, 0). Commutative and idempotent, so Pow(a, k>=1)
// = a; useful as a second lattice-like operator besides min/max.
type Gcd struct{}

// Name returns "int64-gcd".
func (Gcd) Name() string { return "int64-gcd" }

// Combine returns gcd(|a|, |b|) by Euclid's algorithm.
func (Gcd) Combine(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Identity returns 0 (gcd(a, 0) = a).
func (Gcd) Identity() int64 { return 0 }

// Pow exploits idempotence: |a| for k >= 1, 0 for k = 0.
func (Gcd) Pow(a int64, k *big.Int) int64 {
	if k.Sign() == 0 {
		return 0
	}
	if a < 0 {
		return -a
	}
	return a
}

// Float64Min is (float64, min, +Inf). Idempotent.
type Float64Min struct{}

// Name returns "float64-min".
func (Float64Min) Name() string { return "float64-min" }

// Combine returns the smaller of a and b.
func (Float64Min) Combine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Identity returns +Inf.
func (Float64Min) Identity() float64 { return math.Inf(1) }

// Pow exploits idempotence: a for k >= 1, +Inf for k = 0.
func (Float64Min) Pow(a float64, k *big.Int) float64 {
	if k.Sign() == 0 {
		return math.Inf(1)
	}
	return a
}

// Float64Max is (float64, max, -Inf). Idempotent.
type Float64Max struct{}

// Name returns "float64-max".
func (Float64Max) Name() string { return "float64-max" }

// Combine returns the larger of a and b.
func (Float64Max) Combine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Identity returns -Inf.
func (Float64Max) Identity() float64 { return math.Inf(-1) }

// Pow exploits idempotence: a for k >= 1, -Inf for k = 0.
func (Float64Max) Pow(a float64, k *big.Int) float64 {
	if k.Sign() == 0 {
		return math.Inf(-1)
	}
	return a
}
