package core

import (
	"errors"
	"fmt"

	"indexedrec/internal/graph"
)

// ErrInvalidSparse wraps all sparse-encoding validation failures: unsorted or
// duplicate touched-cell lists, cells out of the global range, or a compact
// system that does not fit its cell list. It is deliberately distinct from
// ErrInvalidSystem so transports can map sparse-encoding defects to their own
// status (irserved returns 422 for these, 400 for plain system defects).
var ErrInvalidSparse = errors.New("core: invalid sparse system")

// SparseSystem is the compressed (CSR-like) form of an indexed recurrence
// system over a global array of M cells of which only len(Cells) — the
// touched set — are ever read or written. Cells holds the touched global
// indices sorted strictly ascending, and Compact is the same recurrence
// remapped onto compact ids 0..len(Cells)-1 (Compact.M == len(Cells)).
//
// The remapping is an order-preserving bijection between touched global
// cells and compact ids, and the f/g/h maps only ever reference touched
// cells, so the compact system's dependence structure — last-writer links,
// chain forest, chain ordering, schedule selection, combine order — is
// isomorphic to the dense system's restricted to touched cells. Solving
// Compact and reading the results through Cells is therefore bit-identical
// to solving the dense expansion, while compile and solve walks cost O(n)
// instead of O(m). See DESIGN §16.
type SparseSystem struct {
	// M is the global cell count of the dense array the system addresses.
	M int
	// Cells lists the touched global cell indices, strictly ascending.
	Cells []int
	// Compact is the recurrence over compact ids; Compact.M == len(Cells).
	Compact *System
}

// CompressSystem converts a dense system to its sparse form: the touched set
// is the union of the G, F, and H images, and the compact maps are the dense
// maps pushed through the touched set's rank function. The input is not
// mutated. Systems touching zero cells (N == 0) have no sparse form and are
// rejected; callers should keep such degenerate solves on the dense path.
func CompressSystem(s *System) (*SparseSystem, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return NewSparseSystem(s.M, s.G, s.F, s.H)
}

// NewSparseSystem builds a sparse system from global-id index maps without
// requiring a dense System value first: m is the global cell count, and g, f,
// h hold global cell indices per iteration (h may be nil for the ordinary
// form H = G). This is the generator-friendly constructor — workloads emit
// global maps and compression happens here, in O(n log n).
func NewSparseSystem(m int, g, f, h []int) (*SparseSystem, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: M = %d, want > 0", ErrInvalidSparse, m)
	}
	if len(f) != len(g) || (h != nil && len(h) != len(g)) {
		return nil, fmt.Errorf("%w: len(G)=%d len(F)=%d len(H)=%d, want equal",
			ErrInvalidSparse, len(g), len(f), len(h))
	}
	if len(g) == 0 {
		return nil, fmt.Errorf("%w: system touches no cells (N = 0); use the dense form", ErrInvalidSparse)
	}
	for name, idx := range map[string][]int{"G": g, "F": f, "H": h} {
		for i, v := range idx {
			if v < 0 || v >= m {
				return nil, fmt.Errorf("%w: %s[%d] = %d out of range [0,%d)",
					ErrInvalidSparse, name, i, v, m)
			}
		}
	}
	set, err := graph.BuildIndexSet(g, f, h)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSparse, err)
	}
	cg, err := set.Remap(g)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSparse, err)
	}
	cf, err := set.Remap(f)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSparse, err)
	}
	ch, err := set.Remap(h)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSparse, err)
	}
	return &SparseSystem{
		M:       m,
		Cells:   set.Cells(),
		Compact: &System{M: set.Len(), N: len(g), G: cg, F: cf, H: ch},
	}, nil
}

// SparseFromCompact builds a sparse system from an already-compressed wire
// encoding: the global cell count, the touched-cell list, and index maps over
// compact ids. It validates everything a hostile client could get wrong —
// cells must be strictly ascending (which catches both unsorted and duplicate
// lists) and within [0, m), and the compact ids must be within
// [0, len(cells)). Cells that no map references are permitted; they pass
// through a solve unchanged, carrying their init value. All failures wrap
// ErrInvalidSparse.
func SparseFromCompact(m int, cells, g, f, h []int) (*SparseSystem, error) {
	sp := &SparseSystem{
		M:       m,
		Cells:   cells,
		Compact: &System{M: len(cells), N: len(g), G: g, F: f, H: h},
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// Validate checks the sparse invariants: positive global size, a strictly
// ascending in-range touched-cell list, and a compact system whose cell count
// matches the list. It is the wire-decode gate, so every failure wraps
// ErrInvalidSparse (never ErrInvalidSystem).
func (sp *SparseSystem) Validate() error {
	if sp.M <= 0 {
		return fmt.Errorf("%w: M = %d, want > 0", ErrInvalidSparse, sp.M)
	}
	if len(sp.Cells) == 0 {
		return fmt.Errorf("%w: empty touched-cell list; use the dense form", ErrInvalidSparse)
	}
	for i, v := range sp.Cells {
		if v < 0 || v >= sp.M {
			return fmt.Errorf("%w: cells[%d] = %d out of range [0,%d)", ErrInvalidSparse, i, v, sp.M)
		}
		if i > 0 && v <= sp.Cells[i-1] {
			return fmt.Errorf("%w: cells[%d]=%d not strictly greater than cells[%d]=%d (touched cells must be sorted and distinct)",
				ErrInvalidSparse, i, v, i-1, sp.Cells[i-1])
		}
	}
	if sp.Compact == nil {
		return fmt.Errorf("%w: nil compact system", ErrInvalidSparse)
	}
	if sp.Compact.M != len(sp.Cells) {
		return fmt.Errorf("%w: compact M = %d, want len(cells) = %d",
			ErrInvalidSparse, sp.Compact.M, len(sp.Cells))
	}
	if err := sp.Compact.Validate(); err != nil {
		// Rewrap: a compact-id defect is a sparse-encoding defect, and the
		// transports key their status codes off ErrInvalidSparse.
		return fmt.Errorf("%w: compact system: %v", ErrInvalidSparse, err)
	}
	return nil
}

// NumCells returns the touched-cell count n_c = len(Cells), the size every
// sparse plan, arena, and schedule scales with.
func (sp *SparseSystem) NumCells() int { return len(sp.Cells) }

// Dense expands the sparse system back to the dense global form: index maps
// over global cell ids and M equal to the global cell count. It allocates
// O(n) (the maps), not O(m); only init/value arrays of a dense *solve* cost
// O(m). The receiver must be valid (builders guarantee this).
func (sp *SparseSystem) Dense() *System {
	expand := func(compact []int) []int {
		if compact == nil {
			return nil
		}
		out := make([]int, len(compact))
		for i, c := range compact {
			out[i] = sp.Cells[c]
		}
		return out
	}
	return &System{
		M: sp.M,
		N: sp.Compact.N,
		G: expand(sp.Compact.G),
		F: expand(sp.Compact.F),
		H: expand(sp.Compact.H),
	}
}

// Clone returns a deep copy of the sparse system.
func (sp *SparseSystem) Clone() *SparseSystem {
	return &SparseSystem{
		M:       sp.M,
		Cells:   append([]int(nil), sp.Cells...),
		Compact: sp.Compact.Clone(),
	}
}

// String summarizes the sparse shape for error messages and reports.
func (sp *SparseSystem) String() string {
	form := "general"
	if sp.Compact.Ordinary() {
		form = "ordinary"
	}
	return fmt.Sprintf("sparseIR{%s, n=%d, nc=%d, m=%d}", form, sp.Compact.N, len(sp.Cells), sp.M)
}

// ExpandInit scatters a touched-cell init slice (length NumCells, compact
// order) into a full global init array of length M, zero-valued elsewhere.
// Untouched cells are never read by any iteration, so the zero fill cannot
// influence touched results — this is what makes the dense fallback
// bit-identical to the compact solve.
func ExpandInit[T any](sp *SparseSystem, init []T) ([]T, error) {
	if len(init) != len(sp.Cells) {
		return nil, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d",
			ErrInvalidSparse, len(init), len(sp.Cells))
	}
	full := make([]T, sp.M)
	for i, c := range sp.Cells {
		full[c] = init[i]
	}
	return full, nil
}

// GatherTouched gathers the touched cells of a full global value array
// (length M) into compact order — the inverse of ExpandInit, used to read a
// dense-fallback solve back into the sparse response shape.
func GatherTouched[T any](sp *SparseSystem, full []T) ([]T, error) {
	if len(full) != sp.M {
		return nil, fmt.Errorf("%w: len(values) = %d, want global cell count %d",
			ErrInvalidSparse, len(full), sp.M)
	}
	out := make([]T, len(sp.Cells))
	for i, c := range sp.Cells {
		out[i] = full[c]
	}
	return out, nil
}
