package core

// RunSequential executes the IR loop exactly as written, in iteration order,
// and returns the final array. It is the semantic definition of the problem
// and the oracle every parallel solver is tested against.
//
// init is not modified; the returned slice is fresh and has length s.M.
// RunSequential panics if len(init) != s.M (programming error, like an
// out-of-range slice index).
func RunSequential[T any](s *System, op Semigroup[T], init []T) []T {
	if len(init) != s.M {
		panic("core: RunSequential: len(init) != s.M")
	}
	a := make([]T, s.M)
	copy(a, init)
	if s.H == nil {
		for i := 0; i < s.N; i++ {
			a[s.G[i]] = op.Combine(a[s.F[i]], a[s.G[i]])
		}
		return a
	}
	for i := 0; i < s.N; i++ {
		a[s.G[i]] = op.Combine(a[s.F[i]], a[s.H[i]])
	}
	return a
}

// StepSequential executes iterations [lo, hi) of the loop in place on a.
// It is used by incremental visualizations and by tests that compare
// intermediate states.
func StepSequential[T any](s *System, op Semigroup[T], a []T, lo, hi int) {
	if lo < 0 || hi > s.N || lo > hi {
		panic("core: StepSequential: bad iteration range")
	}
	for i := lo; i < hi; i++ {
		a[s.G[i]] = op.Combine(a[s.F[i]], a[s.OperandH(i)])
	}
}
