package core

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// assocInt64 checks associativity of an int64 semigroup with testing/quick.
func assocInt64(t *testing.T, op Semigroup[int64]) {
	t.Helper()
	f := func(a, b, c int64) bool {
		return op.Combine(op.Combine(a, b), c) == op.Combine(a, op.Combine(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("%s not associative: %v", op.Name(), err)
	}
}

func TestAssociativity(t *testing.T) {
	for _, op := range []Semigroup[int64]{
		IntAdd{}, IntMax{}, IntMin{}, IntXor{},
		MulMod{M: 1_000_003}, AddMod{M: 97},
	} {
		t.Run(op.Name(), func(t *testing.T) { assocInt64(t, op) })
	}
}

func TestIdentityLaws(t *testing.T) {
	ops := []Monoid[int64]{
		IntAdd{}, IntMax{}, IntMin{}, IntXor{}, MulMod{M: 101}, AddMod{M: 101},
	}
	for _, op := range ops {
		t.Run(op.Name(), func(t *testing.T) {
			f := func(a int64) bool {
				e := op.Identity()
				return op.Combine(e, a) == op.Combine(a, op.Identity()) &&
					op.Combine(e, op.Combine(a, e)) == op.Combine(a, e)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

// powMatchesRepeat checks Pow(a,k) == a combined k times for small k.
func powMatchesRepeat(t *testing.T, op CommutativeMonoid[int64]) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := rng.Int63n(1000) - 500
		k := rng.Intn(20)
		want := op.Identity()
		for j := 0; j < k; j++ {
			want = op.Combine(want, a)
		}
		got := op.Pow(a, big.NewInt(int64(k)))
		if got != want {
			t.Fatalf("%s: Pow(%d, %d) = %d, want %d", op.Name(), a, k, got, want)
		}
	}
}

func TestPowMatchesRepeatedCombine(t *testing.T) {
	for _, op := range []CommutativeMonoid[int64]{
		IntAdd{}, IntMax{}, IntMin{}, IntXor{}, MulMod{M: 1_000_003}, AddMod{M: 97},
	} {
		t.Run(op.Name(), func(t *testing.T) { powMatchesRepeat(t, op) })
	}
}

func TestPowHugeExponent(t *testing.T) {
	// Exponent far beyond int64: fib(300)-sized. MulMod must handle it via
	// modular exponentiation; Fermat: 5^(p-1) = 1 mod p for prime p.
	p := int64(1_000_003)
	op := MulMod{M: p}
	pm1 := big.NewInt(p - 1)
	if got := op.Pow(5, pm1); got != 1 {
		t.Fatalf("5^(p-1) mod p = %d, want 1", got)
	}
	huge := new(big.Int).Exp(big.NewInt(10), big.NewInt(50), nil) // 10^50
	got := op.Pow(7, huge)
	var want big.Int
	want.Exp(big.NewInt(7), huge, big.NewInt(p))
	if got != want.Int64() {
		t.Fatalf("Pow(7, 10^50) = %d, want %d", got, want.Int64())
	}
}

func TestPowBySquaring(t *testing.T) {
	op := Float64Mul{}
	for k := 0; k <= 30; k++ {
		got := PowBySquaring[float64](op, 2, big.NewInt(int64(k)))
		want := float64(int64(1) << uint(k))
		if got != want {
			t.Fatalf("2^%d = %v, want %v", k, got, want)
		}
	}
}

func TestPowBySquaringNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative exponent")
		}
	}()
	PowBySquaring[float64](Float64Mul{}, 2, big.NewInt(-1))
}

func TestIntAddPowWrapAround(t *testing.T) {
	// k*a overflowing int64 must match repeated wrapping addition.
	a := int64(1) << 62
	got := IntAdd{}.Pow(a, big.NewInt(4)) // 2^64 ≡ 0
	if got != 0 {
		t.Fatalf("Pow(2^62, 4) = %d, want 0 (wrap)", got)
	}
	got = IntAdd{}.Pow(a, big.NewInt(3)) // 3*2^62 mod 2^64 = -2^62
	if got != -(int64(1) << 62) {
		t.Fatalf("Pow(2^62, 3) = %d, want %d", got, -(int64(1) << 62))
	}
}

func TestBigMul(t *testing.T) {
	op := BigMul{}
	a, b := big.NewInt(6), big.NewInt(7)
	if got := op.Combine(a, b); got.Int64() != 42 {
		t.Fatalf("6*7 = %v", got)
	}
	if a.Int64() != 6 || b.Int64() != 7 {
		t.Error("Combine mutated its operands")
	}
	if got := op.Pow(big.NewInt(2), big.NewInt(10)); got.Int64() != 1024 {
		t.Fatalf("2^10 = %v", got)
	}
	if got := op.Pow(big.NewInt(5), big.NewInt(0)); got.Int64() != 1 {
		t.Fatalf("5^0 = %v", got)
	}
}

func TestConcatNonCommutativeWitness(t *testing.T) {
	op := Concat{}
	if op.Combine("a", "b") == op.Combine("b", "a") {
		t.Error("Concat should witness non-commutativity")
	}
	if op.Combine(op.Combine("a", "b"), "c") != op.Combine("a", op.Combine("b", "c")) {
		t.Error("Concat must still be associative")
	}
}

func TestMulModNegativeOperands(t *testing.T) {
	op := MulMod{M: 97}
	got := op.Combine(-5, 3)
	if got < 0 || got >= 97 {
		t.Fatalf("Combine(-5,3) = %d, want value in [0,97)", got)
	}
	if got != (92*3)%97 {
		t.Fatalf("Combine(-5,3) = %d, want %d", got, (92*3)%97)
	}
	if p := op.Pow(-5, big.NewInt(2)); p != 25%97 {
		t.Fatalf("Pow(-5,2) = %d, want 25", p)
	}
}

func TestIdempotentPow(t *testing.T) {
	k := big.NewInt(1 << 40)
	if (IntMax{}).Pow(123, k) != 123 || (IntMin{}).Pow(123, k) != 123 {
		t.Error("max/min Pow should be identity on a for k >= 1")
	}
	if (IntMax{}).Pow(123, big.NewInt(0)) != (IntMax{}).Identity() {
		t.Error("max Pow(a, 0) should be identity element")
	}
}

func TestGcd(t *testing.T) {
	op := Gcd{}
	cases := []struct{ a, b, want int64 }{
		{12, 18, 6}, {7, 13, 1}, {0, 5, 5}, {5, 0, 5}, {-12, 18, 6}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := op.Combine(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	assocInt64(t, op)
	powMatchesRepeat(t, op)
}

func TestFloat64MinMax(t *testing.T) {
	if (Float64Min{}).Combine(2, 3) != 2 || (Float64Max{}).Combine(2, 3) != 3 {
		t.Fatal("min/max wrong")
	}
	if (Float64Min{}).Combine((Float64Min{}).Identity(), 9) != 9 {
		t.Fatal("min identity wrong")
	}
	if (Float64Max{}).Combine((Float64Max{}).Identity(), -9) != -9 {
		t.Fatal("max identity wrong")
	}
	k := big.NewInt(1 << 30)
	if (Float64Min{}).Pow(3.5, k) != 3.5 || (Float64Max{}).Pow(3.5, k) != 3.5 {
		t.Fatal("idempotent pow wrong")
	}
}

func TestGcdAsIROp(t *testing.T) {
	// gcd chains through an ordinary IR loop: A[i] = gcd(A[i-1], A[i]).
	s := FromFuncs(4, 5, func(i int) int { return i + 1 }, func(i int) int { return i }, nil)
	out := RunSequential[int64](s, Gcd{}, []int64{24, 36, 18, 12, 9})
	want := []int64{24, 12, 6, 6, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}
