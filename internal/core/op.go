package core

import "math/big"

// Semigroup is an associative binary operation over T. Associativity is the
// only property the ordinary-IR solver needs: it reorders the grouping of the
// trace product but never the order of its operands, so op need not be
// commutative (the paper's §2 requirement).
type Semigroup[T any] interface {
	// Combine returns op(a, b). Implementations must be associative:
	// Combine(Combine(a,b),c) == Combine(a,Combine(b,c)).
	Combine(a, b T) T
	// Name identifies the operator in reports and error messages.
	Name() string
}

// Monoid is a Semigroup with an identity element.
type Monoid[T any] interface {
	Semigroup[T]
	// Identity returns e such that Combine(e, x) == Combine(x, e) == x.
	Identity() T
}

// CommutativeMonoid is the operator contract of the general-IR (GIR) solver.
// The paper shows GIR traces are trees, so evaluation order cannot be
// preserved and op must be commutative; and traces can have exponential
// length, so the power a^k must be an atomic operation (paper §4).
type CommutativeMonoid[T any] interface {
	Monoid[T]
	// Pow returns a combined with itself k times (a^k under Combine).
	// Pow(a, 0) must return Identity(). k is never negative.
	Pow(a T, k *big.Int) T
}

// PowBySquaring implements Pow for any monoid via binary exponentiation in
// O(log k) Combine calls. It is the default used by the concrete commutative
// operators below; operators with a cheaper closed form (e.g. integer
// addition, where a^k = k*a) override it.
func PowBySquaring[T any](m Monoid[T], a T, k *big.Int) T {
	if k.Sign() < 0 {
		panic("core: negative exponent in PowBySquaring")
	}
	acc := m.Identity()
	base := a
	// Iterate over bits of k from least significant to most significant.
	for i, n := 0, k.BitLen(); i < n; i++ {
		if k.Bit(i) == 1 {
			acc = m.Combine(acc, base)
		}
		if i+1 < n {
			base = m.Combine(base, base)
		}
	}
	return acc
}
