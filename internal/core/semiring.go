package core

// The float64 semirings the 2-D grid family (internal/grid2d) folds with.
// Natale's wavefront decomposition is algebra-agnostic: the cell update
// w[i,j] = (a ⊗ w[i-1,j]) ⊕ (b ⊗ w[i,j-1]) ⊕ (d ⊗ w[i-1,j-1]) ⊕ c only
// needs (⊕, ⊗) to distribute, so the op classification lives here in the
// kernel layer — the affine ring for linear recurrences, max-plus and
// min-plus for dynamic programming — instead of being hard-coded into one
// solver. Every path through a grid solve (sequential oracle, generic
// interface dispatch, monomorphized kernels) funnels through gridCell, so
// the fold order — and with it bit-identity — is fixed in exactly one place.

// Semiring is a float64 semiring: the (⊕, ⊗) pair a 2-D recurrence cell
// update folds with. Implementations must be stateless value types; both
// methods must be pure so every dispatch path computes bit-identical
// results.
type Semiring interface {
	// SemiringName names the algebra as it appears on the wire and in plan
	// fingerprints ("affine", "maxplus", "minplus").
	SemiringName() string
	// Plus is ⊕, the combining operation (+, max, or min).
	Plus(x, y float64) float64
	// Times is ⊗, the scaling operation (×, or + for the tropical pair).
	Times(x, y float64) float64
}

// RingF64 is the ordinary affine ring: ⊕ = +, ⊗ = ×. It solves the linear
// grid recurrence w = a·up + b·left + d·diag + c.
type RingF64 struct{}

// SemiringName returns "affine".
func (RingF64) SemiringName() string { return "affine" }

// Plus returns x + y.
func (RingF64) Plus(x, y float64) float64 { return x + y }

// Times returns x · y.
func (RingF64) Times(x, y float64) float64 { return x * y }

// MaxPlusF64 is the max-plus tropical semiring: ⊕ = max, ⊗ = +. It turns
// the grid recurrence into a best-score dynamic program (Smith–Waterman,
// longest paths).
type MaxPlusF64 struct{}

// SemiringName returns "maxplus".
func (MaxPlusF64) SemiringName() string { return "maxplus" }

// Plus returns max(x, y); on a NaN operand the comparison fails closed and
// x wins, identically on every dispatch path.
func (MaxPlusF64) Plus(x, y float64) float64 {
	if y > x {
		return y
	}
	return x
}

// Times returns x + y.
func (MaxPlusF64) Times(x, y float64) float64 { return x + y }

// MinPlusF64 is the min-plus tropical semiring: ⊕ = min, ⊗ = +. It turns
// the grid recurrence into a least-cost dynamic program (edit distance,
// shortest paths).
type MinPlusF64 struct{}

// SemiringName returns "minplus".
func (MinPlusF64) SemiringName() string { return "minplus" }

// Plus returns min(x, y); on a NaN operand the comparison fails closed and
// x wins, identically on every dispatch path.
func (MinPlusF64) Plus(x, y float64) float64 {
	if y < x {
		return y
	}
	return x
}

// Times returns x + y.
func (MinPlusF64) Times(x, y float64) float64 { return x + y }

// GridKernel is the grid family's analogue of Kernel: a batched cell-update
// method over one anti-diagonal of the extended (boundary-augmented) grid.
// The monomorphized instances (GridKernelFor) compile the semiring's ops to
// direct calls; the generic instance (GridKernelGeneric) dispatches through
// the Semiring interface. Both run gridCell per cell, so they are
// bit-identical by construction — which is exactly what the grid2d fuzzer's
// kernel toggle asserts.
type GridKernel interface {
	// UpdateDiag computes w[ext] for the cells t in [lo, hi) of one
	// anti-diagonal. The extended grid w has row stride `stride`; cell t
	// sits at ext = ext0 + t·(stride-1) and reads its up / left / diagonal
	// neighbours at ext-stride, ext-1, ext-stride-1 (all on earlier
	// diagonals, so any partition of [0, count) races nothing). The
	// coefficient grids a, b, d, c (nil = term absent) have row stride
	// stride-1 and are indexed at cof0 + t·(stride-2).
	UpdateDiag(w []float64, a, b, d, c []float64, ext0, cof0, stride, lo, hi int)
}

// gridCell folds one cell update in the canonical term order — up, left,
// diagonal, constant, ⊕-folded left-associatively over the present terms.
// Generic over the semiring so concrete instantiations inline the ops while
// the interface instantiation yields the generic-dispatch reference path.
func gridCell[R Semiring](ring R, a, b, d, c []float64, cof int, up, left, diag float64) float64 {
	var acc float64
	has := false
	if a != nil {
		acc = ring.Times(a[cof], up)
		has = true
	}
	if b != nil {
		v := ring.Times(b[cof], left)
		if has {
			acc = ring.Plus(acc, v)
		} else {
			acc, has = v, true
		}
	}
	if d != nil {
		v := ring.Times(d[cof], diag)
		if has {
			acc = ring.Plus(acc, v)
		} else {
			acc, has = v, true
		}
	}
	if c != nil {
		if has {
			acc = ring.Plus(acc, c[cof])
		} else {
			acc = c[cof]
		}
	}
	return acc
}

// GridCell computes one cell update through interface dispatch — the
// sequential oracle's per-cell step, sharing gridCell with the batched
// kernels so every path folds terms identically.
func GridCell(ring Semiring, a, b, d, c []float64, cof int, up, left, diag float64) float64 {
	return gridCell(ring, a, b, d, c, cof, up, left, diag)
}

// gridKernel is the one UpdateDiag implementation, monomorphized per
// concrete semiring (direct calls) or instantiated at the interface type
// (generic dispatch).
type gridKernel[R Semiring] struct{ ring R }

func (k gridKernel[R]) UpdateDiag(w []float64, a, b, d, c []float64, ext0, cof0, stride, lo, hi int) {
	estep, cstep := stride-1, stride-2
	ext := ext0 + lo*estep
	cof := cof0 + lo*cstep
	for t := lo; t < hi; t++ {
		w[ext] = gridCell(k.ring, a, b, d, c, cof, w[ext-stride], w[ext-1], w[ext-stride-1])
		ext += estep
		cof += cstep
	}
}

// GridKernelFor returns the monomorphized batch kernel for one of the
// built-in semirings, or nil for an unknown implementation (callers then
// fall back to GridKernelGeneric).
func GridKernelFor(ring Semiring) GridKernel {
	switch ring.(type) {
	case RingF64:
		return gridKernel[RingF64]{}
	case MaxPlusF64:
		return gridKernel[MaxPlusF64]{}
	case MinPlusF64:
		return gridKernel[MinPlusF64]{}
	}
	return nil
}

// GridKernelGeneric returns the interface-dispatch batch kernel over ring —
// the reference path the kernel kill switch (grid2d.SetKernelsEnabled)
// falls back to, bit-identical to the monomorphized instances.
func GridKernelGeneric(ring Semiring) GridKernel {
	return gridKernel[Semiring]{ring: ring}
}
