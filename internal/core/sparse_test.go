package core

import (
	"errors"
	"math/rand"
	"testing"
)

// scatteredSystem builds a dense ordinary system over m cells whose n
// iterations touch a widely scattered subset: cell stride*i+off is written
// reading cell stride*(i-1)+off (one long strided chain).
func scatteredSystem(n, stride, off int) *System {
	m := stride*n + off + 1
	g := make([]int, n)
	f := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = stride*(i+1) + off
		f[i] = stride*i + off
	}
	return &System{M: m, N: n, G: g, F: f}
}

func TestCompressSystemRoundTrip(t *testing.T) {
	s := scatteredSystem(100, 1000, 7)
	sp, err := CompressSystem(s)
	if err != nil {
		t.Fatal(err)
	}
	if sp.M != s.M || sp.Compact.N != s.N {
		t.Fatalf("shape: got m=%d n=%d, want m=%d n=%d", sp.M, sp.Compact.N, s.M, s.N)
	}
	if got, want := sp.NumCells(), 101; got != want {
		t.Fatalf("NumCells = %d, want %d", got, want)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := 1; i < len(sp.Cells); i++ {
		if sp.Cells[i] <= sp.Cells[i-1] {
			t.Fatalf("cells not strictly ascending at %d", i)
		}
	}
	d := sp.Dense()
	if d.M != s.M || d.N != s.N {
		t.Fatalf("dense shape mismatch: %v vs %v", d, s)
	}
	for i := 0; i < s.N; i++ {
		if d.G[i] != s.G[i] || d.F[i] != s.F[i] {
			t.Fatalf("dense round trip diverged at iteration %d", i)
		}
	}
	if d.H != nil {
		t.Fatalf("dense H should stay nil for ordinary input")
	}
}

func TestCompressSystemGeneralH(t *testing.T) {
	s := FromFuncs(10, 10_000, func(i int) int { return 100 * (i + 1) },
		func(i int) int { return 100 * i }, func(i int) int { return 50 })
	sp, err := CompressSystem(s)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Compact.H == nil {
		t.Fatal("compact H lost")
	}
	d := sp.Dense()
	for i := 0; i < s.N; i++ {
		if d.H[i] != s.H[i] {
			t.Fatalf("H round trip diverged at %d: %d vs %d", i, d.H[i], s.H[i])
		}
	}
	// The touched set is the union of all three maps: cell 50 is read-only.
	found := false
	for _, c := range sp.Cells {
		if c == 50 {
			found = true
		}
	}
	if !found {
		t.Fatal("read-only H cell missing from touched set")
	}
}

func TestCompressSystemRejectsDegenerate(t *testing.T) {
	if _, err := CompressSystem(&System{M: 10, N: 0, G: []int{}, F: []int{}}); !errors.Is(err, ErrInvalidSparse) {
		t.Fatalf("N=0: got %v, want ErrInvalidSparse", err)
	}
	if _, err := CompressSystem(&System{M: 0}); !errors.Is(err, ErrInvalidSystem) {
		t.Fatalf("M=0: got %v, want ErrInvalidSystem", err)
	}
	if _, err := NewSparseSystem(100, []int{5}, []int{100}, nil); !errors.Is(err, ErrInvalidSparse) {
		t.Fatal("out-of-range global F index accepted")
	}
	if _, err := NewSparseSystem(100, []int{5, 6}, []int{4}, nil); !errors.Is(err, ErrInvalidSparse) {
		t.Fatal("length mismatch accepted")
	}
}

func TestSparseFromCompactValidation(t *testing.T) {
	ok := func(m int, cells, g, f, h []int) *SparseSystem {
		t.Helper()
		sp, err := SparseFromCompact(m, cells, g, f, h)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return sp
	}
	bad := func(name string, m int, cells, g, f, h []int) {
		t.Helper()
		_, err := SparseFromCompact(m, cells, g, f, h)
		if !errors.Is(err, ErrInvalidSparse) {
			t.Fatalf("%s: got %v, want ErrInvalidSparse", name, err)
		}
		if errors.Is(err, ErrInvalidSystem) {
			t.Fatalf("%s: sparse defects must not double as ErrInvalidSystem", name)
		}
	}

	ok(1000, []int{3, 500, 999}, []int{1, 2}, []int{0, 1}, nil)
	bad("unsorted cells", 1000, []int{500, 3, 999}, []int{1, 2}, []int{0, 1}, nil)
	bad("duplicate cells", 1000, []int{3, 3, 999}, []int{1, 2}, []int{0, 1}, nil)
	bad("cell out of range", 1000, []int{3, 500, 1000}, []int{1, 2}, []int{0, 1}, nil)
	bad("negative cell", 1000, []int{-1, 500, 999}, []int{1, 2}, []int{0, 1}, nil)
	bad("compact id out of range", 1000, []int{3, 500, 999}, []int{1, 3}, []int{0, 1}, nil)
	bad("empty cells", 1000, nil, nil, nil, nil)
	bad("global M zero", 0, []int{0}, []int{0}, []int{0}, nil)
	bad("map length mismatch", 1000, []int{3, 500, 999}, []int{1, 2}, []int{0}, nil)
}

func TestExpandGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sp, err := NewSparseSystem(10_000, []int{10, 500, 9_999}, []int{9, 10, 500}, nil)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int64, sp.NumCells())
	for i := range init {
		init[i] = rng.Int63n(1 << 30)
	}
	full, err := ExpandInit(sp, init)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != sp.M {
		t.Fatalf("len(full) = %d, want %d", len(full), sp.M)
	}
	back, err := GatherTouched(sp, full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range init {
		if back[i] != init[i] {
			t.Fatalf("round trip diverged at compact id %d", i)
		}
	}
	// Untouched cells stay zero-valued.
	nz := 0
	for _, v := range full {
		if v != 0 {
			nz++
		}
	}
	if nz > sp.NumCells() {
		t.Fatalf("%d nonzero cells in expansion, want <= %d", nz, sp.NumCells())
	}
	if _, err := ExpandInit(sp, init[:2]); !errors.Is(err, ErrInvalidSparse) {
		t.Fatal("short init accepted")
	}
	if _, err := GatherTouched(sp, full[:10]); !errors.Is(err, ErrInvalidSparse) {
		t.Fatal("short full slice accepted")
	}
}

func TestSparseCloneAndString(t *testing.T) {
	sp, err := NewSparseSystem(100, []int{50}, []int{40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := sp.Clone()
	c.Cells[0] = 99
	c.Compact.G[0] = 0
	if sp.Cells[0] == 99 || sp.Compact.G[0] == 0 {
		t.Fatal("Clone shares storage")
	}
	if s := sp.String(); s == "" {
		t.Fatal("empty String")
	}
}
