// Package core defines indexed recurrence (IR) systems and the operator
// algebra they are solved over.
//
// An IR system models the sequential loop
//
//	for i = 0 .. N-1:
//	    A[G[i]] = op(A[F[i]], A[H[i]])
//
// over an array A of M cells, where G, F, H are index maps that do not read
// A itself (Ben-Asher & Haber, "Parallel Solutions of Indexed Recurrence
// Equations", IPPS 1997). The special case H = G with G distinct is the
// "ordinary" IR problem solved in O(log n) time by package ordinary; the
// general case is solved by package gir via path counting.
//
// This package provides:
//
//   - the System type describing (M, N, G, F, H) with validation,
//   - the Semigroup / Monoid / CommutativeMonoid operator interfaces and a
//     library of concrete operators,
//   - RunSequential, the reference evaluator every parallel solver is
//     checked against, and
//   - write/read dependence precomputations (PrevWrites, LastWriter) shared
//     by the parallel solvers.
//
// All indices are 0-based; the paper's 1-based loop "for i = 1 to n" maps to
// iterations 0..N-1 here.
package core
