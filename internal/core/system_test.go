package core

import (
	"errors"
	"math/rand"
	"testing"
)

func TestValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		s    *System
	}{
		{"empty loop", &System{M: 1, N: 0, G: []int{}, F: []int{}}},
		{"ordinary", &System{M: 4, N: 2, G: []int{1, 2}, F: []int{0, 1}}},
		{"general", &System{M: 4, N: 2, G: []int{1, 2}, F: []int{0, 1}, H: []int{3, 3}}},
		{"self reference", &System{M: 2, N: 1, G: []int{0}, F: []int{0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(); err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    *System
	}{
		{"zero cells", &System{M: 0, N: 0, G: []int{}, F: []int{}}},
		{"negative N", &System{M: 1, N: -1, G: []int{}, F: []int{}}},
		{"G too short", &System{M: 2, N: 2, G: []int{0}, F: []int{0, 1}}},
		{"F too short", &System{M: 2, N: 2, G: []int{0, 1}, F: []int{0}}},
		{"H wrong length", &System{M: 2, N: 1, G: []int{0}, F: []int{0}, H: []int{0, 1}}},
		{"G out of range", &System{M: 2, N: 1, G: []int{2}, F: []int{0}}},
		{"F negative", &System{M: 2, N: 1, G: []int{0}, F: []int{-1}}},
		{"H out of range", &System{M: 2, N: 1, G: []int{0}, F: []int{0}, H: []int{5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !errors.Is(err, ErrInvalidSystem) {
				t.Fatalf("Validate() = %v, want ErrInvalidSystem", err)
			}
		})
	}
}

func TestOrdinaryDetection(t *testing.T) {
	s := &System{M: 3, N: 2, G: []int{1, 2}, F: []int{0, 0}}
	if !s.Ordinary() {
		t.Error("nil H should be ordinary")
	}
	s.H = []int{1, 2}
	if !s.Ordinary() {
		t.Error("H == G element-wise should be ordinary")
	}
	s.H = []int{1, 0}
	if s.Ordinary() {
		t.Error("H != G should not be ordinary")
	}
}

func TestGDistinct(t *testing.T) {
	if !(&System{M: 3, N: 2, G: []int{1, 2}, F: []int{0, 0}}).GDistinct() {
		t.Error("distinct G reported non-distinct")
	}
	if (&System{M: 3, N: 2, G: []int{1, 1}, F: []int{0, 0}}).GDistinct() {
		t.Error("duplicate G reported distinct")
	}
}

func TestFromFuncs(t *testing.T) {
	s := FromFuncs(3, 10, func(i int) int { return i + 1 }, func(i int) int { return i }, nil)
	if s.N != 3 || s.M != 10 {
		t.Fatalf("got n=%d m=%d", s.N, s.M)
	}
	wantG := []int{1, 2, 3}
	wantF := []int{0, 1, 2}
	for i := range wantG {
		if s.G[i] != wantG[i] || s.F[i] != wantF[i] {
			t.Fatalf("G=%v F=%v, want G=%v F=%v", s.G, s.F, wantG, wantF)
		}
	}
	if s.H != nil {
		t.Error("H should be nil when h func is nil")
	}
	s2 := FromFuncs(2, 10, func(i int) int { return i }, func(i int) int { return i }, func(i int) int { return 9 - i })
	if s2.H == nil || s2.H[0] != 9 || s2.H[1] != 8 {
		t.Fatalf("H = %v, want [9 8]", s2.H)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &System{M: 3, N: 1, G: []int{1}, F: []int{0}, H: []int{2}}
	c := s.Clone()
	c.G[0], c.F[0], c.H[0] = 2, 2, 0
	if s.G[0] != 1 || s.F[0] != 0 || s.H[0] != 2 {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestRunSequentialOrdinary(t *testing.T) {
	// The paper's Fig. 1 loop shape: for i = 1..n: A[i] := A[i+1] ⊗ A[i]
	// over strings so the trace is spelled out. With n=3, m=5 (0-based:
	// iterations write cells 0,1,2 reading cells 1,2,3):
	//   i=0: A[0] = A[1]+A[0] = "ba"
	//   i=1: A[1] = A[2]+A[1] = "cb"
	//   i=2: A[2] = A[3]+A[2] = "dc"
	// (reads run ahead of writes here, so no chaining occurs)
	s := FromFuncs(3, 5, func(i int) int { return i }, func(i int) int { return i + 1 }, nil)
	got := RunSequential[string](s, Concat{}, []string{"a", "b", "c", "d", "e"})
	want := []string{"ba", "cb", "dc", "d", "e"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: got %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRunSequentialGeneral(t *testing.T) {
	// Fibonacci-style GIR: A[i] = A[i-1] * A[i-2], values 2 and 3 so the
	// result encodes the powers: A[4] = 2^fib * 3^fib.
	s := FromFuncs(3, 5,
		func(i int) int { return i + 2 },
		func(i int) int { return i + 1 },
		func(i int) int { return i },
	)
	got := RunSequential[int64](s, MulMod{M: 1_000_003}, []int64{2, 3, 1, 1, 1})
	// A[2]=3*2=6, A[3]=6*3=18, A[4]=18*6=108
	want := []int64{2, 3, 6, 18, 108}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRunSequentialDoesNotMutateInit(t *testing.T) {
	s := FromFuncs(2, 3, func(i int) int { return i + 1 }, func(i int) int { return i }, nil)
	init := []int64{1, 2, 3}
	_ = RunSequential[int64](s, IntAdd{}, init)
	if init[0] != 1 || init[1] != 2 || init[2] != 3 {
		t.Errorf("init mutated: %v", init)
	}
}

func TestStepSequentialMatchesRun(t *testing.T) {
	s := FromFuncs(4, 6, func(i int) int { return i + 1 }, func(i int) int { return i }, nil)
	init := []int64{1, 2, 3, 4, 5, 6}
	want := RunSequential[int64](s, IntAdd{}, init)
	a := append([]int64(nil), init...)
	StepSequential[int64](s, IntAdd{}, a, 0, 2)
	StepSequential[int64](s, IntAdd{}, a, 2, 4)
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("cell %d: got %d, want %d", i, a[i], want[i])
		}
	}
}

func TestComputeDeps(t *testing.T) {
	// i=0: A[1] = A[0] . A[1]   (F reads init 0, H reads init 1)
	// i=1: A[2] = A[1] . A[3]   (F reads output of i=0)
	// i=2: A[1] = A[2] . A[1]   (F reads i=1, H reads i=0)
	s := &System{M: 4, N: 3,
		G: []int{1, 2, 1},
		F: []int{0, 1, 2},
		H: []int{1, 3, 1},
	}
	d := ComputeDeps(s)
	wantF := []int{-1, 0, 1}
	wantH := []int{-1, -1, 0}
	for i := range wantF {
		if d.FPrev[i] != wantF[i] {
			t.Errorf("FPrev[%d] = %d, want %d", i, d.FPrev[i], wantF[i])
		}
		if d.HPrev[i] != wantH[i] {
			t.Errorf("HPrev[%d] = %d, want %d", i, d.HPrev[i], wantH[i])
		}
	}
	wantLast := []int{-1, 2, 1, -1}
	for x := range wantLast {
		if d.LastWriter[x] != wantLast[x] {
			t.Errorf("LastWriter[%d] = %d, want %d", x, d.LastWriter[x], wantLast[x])
		}
	}
}

func TestComputeDepsOrdinaryHPrevAlwaysInitial(t *testing.T) {
	s := FromFuncs(5, 10, func(i int) int { return i + 5 }, func(i int) int { return i }, nil)
	d := ComputeDeps(s)
	for i, h := range d.HPrev {
		if h != -1 {
			t.Fatalf("HPrev[%d] = %d, want -1 for distinct-G ordinary system", i, h)
		}
	}
}

func TestComputeDepsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(10)
		n := rng.Intn(25)
		s := &System{M: m, N: n, G: make([]int, n), F: make([]int, n), H: make([]int, n)}
		for i := 0; i < n; i++ {
			s.G[i], s.F[i], s.H[i] = rng.Intn(m), rng.Intn(m), rng.Intn(m)
		}
		d := ComputeDeps(s)
		// Brute force: scan backwards for the latest earlier writer.
		prev := func(i, cell int) int {
			for j := i - 1; j >= 0; j-- {
				if s.G[j] == cell {
					return j
				}
			}
			return -1
		}
		for i := 0; i < n; i++ {
			if want := prev(i, s.F[i]); d.FPrev[i] != want {
				t.Fatalf("trial %d: FPrev[%d] = %d, want %d", trial, i, d.FPrev[i], want)
			}
			if want := prev(i, s.H[i]); d.HPrev[i] != want {
				t.Fatalf("trial %d: HPrev[%d] = %d, want %d", trial, i, d.HPrev[i], want)
			}
		}
		for x := 0; x < m; x++ {
			want := prev(n, x)
			if d.LastWriter[x] != want {
				t.Fatalf("trial %d: LastWriter[%d] = %d, want %d", trial, x, d.LastWriter[x], want)
			}
		}
	}
}
