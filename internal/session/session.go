package session

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"indexedrec/internal/gir"
	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/ir"
)

// ErrClosed is returned by operations on a closed (deleted, drained or
// evicted) session.
var ErrClosed = errors.New("session: closed")

// ErrLimit is returned when an append would push the concatenated system
// past the session's configured iteration bound.
var ErrLimit = errors.New("session: iteration limit exceeded")

// Spec describes the system a session opens from. Exactly one family shape
// applies: System/Op/Init for the ordinary and general families, the
// M/G/F/coefficient arrays for the Möbius family (as everywhere in the
// repo, nil C and D select the affine form).
type Spec struct {
	// Family selects the solver family; FamilyAuto resolves like
	// ir.CompileCtx (ordinary when eligible, else general).
	Family ir.Family
	// System is the initial system (N may be 0) — ordinary/general.
	System *ir.System
	// Op names the operator, Mod parameterizes the modular ones —
	// ordinary/general. Exactly one of InitInt/InitFloat must match the
	// operator's domain.
	Op        string
	Mod       int64
	InitInt   []int64
	InitFloat []float64
	// M, G, F, A, B, C, D, X0 describe the Möbius-family prefix (G may be
	// empty).
	M          int
	G, F       []int
	A, B, C, D []float64
	X0         []float64
	// MaxN bounds the concatenated iteration count across the session's
	// lifetime (<= 0 means unbounded).
	MaxN int
	// Opts carries solver options for plan compiles and cold re-solves.
	Opts ir.SolveOptions
	// MaxExponentBits caps CAP growth for general-family plan compiles.
	MaxExponentBits int
	// Plan optionally seeds the session with a pre-compiled plan of the
	// initial system (e.g. resolved through a server plan cache). The
	// session keeps its own reference, so cache eviction never invalidates
	// it; nil compiles one.
	Plan *ir.Plan
}

// Batch is one append: k more iterations for the session's family. For
// ordinary/general sessions G, F (and H for general) apply; for Möbius
// sessions G, F and the coefficient rows apply (nil C/D = affine).
type Batch struct {
	G, F, H    []int
	A, B, C, D []float64
}

// Result reports an append: the updated values of the cells the batch
// wrote (aligned with Batch.G) and the concatenated iteration count.
// Exactly one of the value slices is set, matching the session's domain.
type Result struct {
	N           int
	ValuesInt   []int64
	ValuesFloat []float64
	Values      []float64
}

// Session is one live incremental solve. All methods are safe for
// concurrent use; appends serialize on an internal lock so the state always
// reflects a prefix of the append stream.
type Session struct {
	mu     sync.Mutex
	closed bool

	family ir.Family
	m      int
	maxN   int
	opts   ir.SolveOptions
	bits   int

	// sys is the concatenated system so far (ordinary/general families).
	sys *ir.System
	op  string
	mod int64
	// resInt/resFloat is the ordinary resume state; genInt/genFloat the
	// general family's materialized state. Exactly one is non-nil.
	resInt   *ordinary.Resume[int64]
	resFloat *ordinary.Resume[float64]
	genInt   []int64
	genFloat []float64
	iop      ir.CommutativeMonoid[int64]
	fop      ir.CommutativeMonoid[float64]

	// ms/x0/mres is the Möbius family's concatenated system and state.
	ms   *moebius.MoebiusSystem
	x0   []float64
	mres *moebius.Resume

	// plan is the compiled structure as of planN iterations; appends past
	// the staleness threshold recompile it lazily through Plan.ExtendCtx.
	plan  *ir.Plan
	planN int

	appends int64
}

// Open creates a session from a spec, seeding the state with a fold of the
// initial system (the semantic oracle, so the state is exact from the
// start) and compiling — or adopting — the structure plan.
func Open(ctx context.Context, spec Spec) (*Session, error) {
	if spec.Family == ir.FamilyMoebius {
		return openMoebius(ctx, spec)
	}
	if spec.System == nil {
		return nil, fmt.Errorf("%w: missing system", ir.ErrInvalidSystem)
	}
	sys := spec.System.Clone()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	family := spec.Family
	if family == ir.FamilyAuto {
		if sys.Ordinary() && sys.GDistinct() {
			family = ir.FamilyOrdinary
		} else {
			family = ir.FamilyGeneral
		}
	}
	s := &Session{
		family: family,
		m:      sys.M,
		maxN:   spec.MaxN,
		opts:   spec.Opts,
		bits:   spec.MaxExponentBits,
		sys:    sys,
		op:     spec.Op,
		mod:    spec.Mod,
	}
	if spec.MaxN > 0 && sys.N > spec.MaxN {
		return nil, fmt.Errorf("%w: n = %d > %d", ErrLimit, sys.N, spec.MaxN)
	}
	switch family {
	case ir.FamilyOrdinary:
		if !sys.Ordinary() {
			return nil, fmt.Errorf("%w: H != G", ir.ErrPlanFamily)
		}
		if !sys.GDistinct() {
			return nil, fmt.Errorf("%w: %v", ordinary.ErrGNotDistinct, sys)
		}
	case ir.FamilyGeneral:
	default:
		return nil, fmt.Errorf("%w: cannot open family %v", ir.ErrPlanFamily, family)
	}
	iop, err := ir.IntOpByName(spec.Op, spec.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		if spec.InitInt == nil {
			return nil, fmt.Errorf("%w: op %q has integer domain but InitInt is nil", ir.ErrInvalidSystem, spec.Op)
		}
		if len(spec.InitInt) != sys.M {
			return nil, fmt.Errorf("%w: len(init) = %d, want m = %d", ir.ErrInvalidSystem, len(spec.InitInt), sys.M)
		}
		s.iop = iop
		cur := ir.RunSequential[int64](sys, iop, spec.InitInt)
		if family == ir.FamilyOrdinary {
			s.resInt, err = ordinary.NewResume[int64](iop, cur, ordinary.WrittenSet(sys))
			if err != nil {
				return nil, err
			}
		} else {
			s.genInt = cur
		}
	} else {
		fop, err := ir.FloatOpByName(spec.Op)
		if err != nil {
			return nil, err
		}
		if fop == nil {
			return nil, fmt.Errorf("%w: unknown op %q", ir.ErrInvalidSystem, spec.Op)
		}
		if spec.InitFloat == nil {
			return nil, fmt.Errorf("%w: op %q has float domain but InitFloat is nil", ir.ErrInvalidSystem, spec.Op)
		}
		if len(spec.InitFloat) != sys.M {
			return nil, fmt.Errorf("%w: len(init) = %d, want m = %d", ir.ErrInvalidSystem, len(spec.InitFloat), sys.M)
		}
		s.fop = fop
		cur := ir.RunSequential[float64](sys, fop, spec.InitFloat)
		if family == ir.FamilyOrdinary {
			s.resFloat, err = ordinary.NewResume[float64](fop, cur, ordinary.WrittenSet(sys))
			if err != nil {
				return nil, err
			}
		} else {
			s.genFloat = cur
		}
	}
	if err := s.adoptPlan(ctx, spec.Plan); err != nil {
		return nil, err
	}
	return s, nil
}

// openMoebius is the Möbius-family Open.
func openMoebius(ctx context.Context, spec Spec) (*Session, error) {
	ms := &moebius.MoebiusSystem{
		M: spec.M,
		G: append([]int(nil), spec.G...),
		F: append([]int(nil), spec.F...),
		A: append([]float64(nil), spec.A...),
		B: append([]float64(nil), spec.B...),
		C: append([]float64(nil), spec.C...),
		D: append([]float64(nil), spec.D...),
	}
	n := len(ms.G)
	if ms.C == nil {
		ms.C = make([]float64, n)
	}
	if ms.D == nil {
		ms.D = make([]float64, n)
		for i := range ms.D {
			ms.D[i] = 1
		}
	}
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	if err := ms.CheckFinite(); err != nil {
		return nil, err
	}
	if spec.MaxN > 0 && n > spec.MaxN {
		return nil, fmt.Errorf("%w: n = %d > %d", ErrLimit, n, spec.MaxN)
	}
	res, err := moebius.NewResume(ms.M, spec.X0)
	if err != nil {
		return nil, err
	}
	if err := res.Append(ms.G, ms.F, ms.A, ms.B, ms.C, ms.D); err != nil {
		return nil, err
	}
	s := &Session{
		family: ir.FamilyMoebius,
		m:      ms.M,
		maxN:   spec.MaxN,
		opts:   spec.Opts,
		ms:     ms,
		x0:     append([]float64(nil), spec.X0...),
		mres:   res,
	}
	if err := s.adoptPlan(ctx, spec.Plan); err != nil {
		return nil, err
	}
	return s, nil
}

// adoptPlan installs a caller-provided plan when its fingerprint matches
// the session's current structure, else compiles a fresh one. The session
// keeps its own reference, so external cache eviction cannot touch it.
func (s *Session) adoptPlan(ctx context.Context, p *ir.Plan) error {
	fp := s.fingerprintLocked()
	if p != nil && p.Fingerprint() == fp {
		s.plan, s.planN = p, p.N()
		return nil
	}
	var err error
	switch s.family {
	case ir.FamilyMoebius:
		s.plan, err = ir.CompileMoebiusCtx(ctx, s.ms.M, s.ms.G, s.ms.F)
	default:
		s.plan, err = ir.CompileCtx(ctx, s.sys, ir.CompileOptions{
			Family: s.family, Procs: s.opts.Procs, MaxExponentBits: s.bits,
		})
	}
	if err != nil {
		return err
	}
	s.planN = s.plan.N()
	return nil
}

// fingerprintLocked computes the concatenated structure's fingerprint.
func (s *Session) fingerprintLocked() string {
	switch s.family {
	case ir.FamilyMoebius:
		return ir.PlanFingerprint(ir.FamilyMoebius, len(s.ms.G), s.ms.M, s.ms.G, s.ms.F, nil, 0)
	case ir.FamilyGeneral:
		return ir.PlanFingerprint(ir.FamilyGeneral, s.sys.N, s.sys.M, s.sys.G, s.sys.F, s.sys.H, s.bits)
	default:
		return ir.PlanFingerprint(ir.FamilyOrdinary, s.sys.N, s.sys.M, s.sys.G, s.sys.F, nil, 0)
	}
}

// Append folds a batch into the session, in order, and returns the updated
// values of the batch's written cells. The fold is the sequential loop body
// itself, so the post-append state is bit-identical to RunSequential of the
// concatenated system. A validation error leaves the state untouched; an
// ErrNonFinite mid-batch (Möbius) poisons the batch exactly where the
// sequential loop would.
func (s *Session) Append(ctx context.Context, b Batch) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	k := len(b.G)
	if s.maxN > 0 && s.nLocked()+k > s.maxN {
		return nil, fmt.Errorf("%w: n would reach %d > %d", ErrLimit, s.nLocked()+k, s.maxN)
	}
	switch s.family {
	case ir.FamilyMoebius:
		if err := s.mres.Append(b.G, b.F, b.A, b.B, b.C, b.D); err != nil {
			return nil, err
		}
		s.ms.G = append(s.ms.G, b.G...)
		s.ms.F = append(s.ms.F, b.F...)
		s.ms.A = append(s.ms.A, b.A...)
		s.ms.B = append(s.ms.B, b.B...)
		s.ms.C = appendCoeff(s.ms.C, b.C, k, 0)
		s.ms.D = appendCoeff(s.ms.D, b.D, k, 1)
	case ir.FamilyOrdinary:
		if b.H != nil {
			return nil, fmt.Errorf("%w: ordinary session append has H", ir.ErrPlanFamily)
		}
		if s.resInt != nil {
			if err := s.resInt.Append(b.G, b.F); err != nil {
				return nil, err
			}
		} else {
			if err := s.resFloat.Append(b.G, b.F); err != nil {
				return nil, err
			}
		}
		s.sys.G = append(s.sys.G, b.G...)
		s.sys.F = append(s.sys.F, b.F...)
		s.sys.N += k
	default: // general
		if s.genInt != nil {
			if err := gir.AppendFold[int64](s.genInt, s.iop, b.G, b.F, b.H); err != nil {
				return nil, err
			}
		} else {
			if err := gir.AppendFold[float64](s.genFloat, s.fop, b.G, b.F, b.H); err != nil {
				return nil, err
			}
		}
		h := b.H
		if h == nil {
			h = b.G
		}
		if s.sys.H == nil && b.H != nil {
			s.sys.H = append([]int(nil), s.sys.G...)
		}
		s.sys.G = append(s.sys.G, b.G...)
		s.sys.F = append(s.sys.F, b.F...)
		if s.sys.H != nil {
			s.sys.H = append(s.sys.H, h...)
		}
		s.sys.N += k
	}
	s.appends++
	s.maybeRecompile(ctx)
	out := &Result{N: s.nLocked()}
	switch {
	case s.family == ir.FamilyMoebius:
		out.Values = gather(s.mres.Values(), b.G)
	case s.resInt != nil:
		out.ValuesInt = gather(s.resInt.Values(), b.G)
	case s.resFloat != nil:
		out.ValuesFloat = gather(s.resFloat.Values(), b.G)
	case s.genInt != nil:
		out.ValuesInt = gather(s.genInt, b.G)
	default:
		out.ValuesFloat = gather(s.genFloat, b.G)
	}
	return out, nil
}

// appendCoeff extends a stored coefficient row with a batch's (possibly nil
// = constant fill) row.
func appendCoeff(dst, src []float64, k int, fill float64) []float64 {
	if src != nil {
		return append(dst, src...)
	}
	for i := 0; i < k; i++ {
		dst = append(dst, fill)
	}
	return dst
}

func gather[T any](vals []T, idx []int) []T {
	out := make([]T, len(idx))
	for i, x := range idx {
		out[i] = vals[x]
	}
	return out
}

// maybeRecompile refreshes the cached plan once the appended suffix passes
// the staleness threshold, so a cold re-solve (re-home, verification) stays
// one compile behind at most. Compile failure is non-fatal here — the state
// is already exact; the stale plan stays until a later append retries.
func (s *Session) maybeRecompile(ctx context.Context) {
	if !gir.Stale(s.planN, s.nLocked()-s.planN, 0) {
		return
	}
	if s.family == ir.FamilyMoebius {
		if p, err := ir.CompileMoebiusCtx(ctx, s.ms.M, s.ms.G, s.ms.F); err == nil {
			s.plan, s.planN = p, p.N()
		}
		return
	}
	// Exercise the public extension path: the base is the system as of the
	// last compile (a prefix view of the concatenated slices).
	base := &ir.System{M: s.sys.M, N: s.planN, G: s.sys.G[:s.planN], F: s.sys.F[:s.planN]}
	var h []int
	if s.sys.H != nil {
		base.H = s.sys.H[:s.planN]
		h = s.sys.H[s.planN:]
	}
	_, p, err := s.plan.ExtendCtx(ctx, base,
		s.sys.G[s.planN:], s.sys.F[s.planN:], h,
		ir.CompileOptions{Procs: s.opts.Procs, MaxExponentBits: s.bits})
	if err == nil {
		s.plan, s.planN = p, p.N()
	}
}

// nLocked is the concatenated iteration count; callers hold s.mu.
func (s *Session) nLocked() int {
	if s.family == ir.FamilyMoebius {
		return len(s.ms.G)
	}
	return s.sys.N
}

// Family reports the session's solver family.
func (s *Session) Family() ir.Family { return s.family }

// M reports the cell count.
func (s *Session) M() int { return s.m }

// N reports the concatenated iteration count so far.
func (s *Session) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nLocked()
}

// Appends reports how many append batches have landed.
func (s *Session) Appends() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends
}

// Fingerprint returns the concatenated structure's current fingerprint.
func (s *Session) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fingerprintLocked()
}

// Plan returns the session's own compiled plan (possibly staleness-lagged
// behind the newest appends; see maybeRecompile). Never nil on an open
// session.
func (s *Session) Plan() *ir.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// Values returns a copy of the full current arrays; exactly one slice is
// non-nil, matching the session's family and domain.
func (s *Session) Values() (valuesInt []int64, valuesFloat []float64, values []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.family == ir.FamilyMoebius:
		values = append([]float64(nil), s.mres.Values()...)
	case s.resInt != nil:
		valuesInt = append([]int64(nil), s.resInt.Values()...)
	case s.resFloat != nil:
		valuesFloat = append([]float64(nil), s.resFloat.Values()...)
	case s.genInt != nil:
		valuesInt = append([]int64(nil), s.genInt...)
	default:
		valuesFloat = append([]float64(nil), s.genFloat...)
	}
	return
}

// System returns a clone of the concatenated system (ordinary/general
// families; nil for Möbius), for cold verification solves.
func (s *Session) System() *ir.System {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sys == nil {
		return nil
	}
	return s.sys.Clone()
}

// Moebius returns copies of the concatenated Möbius system and its initial
// array (nil for other families).
func (s *Session) Moebius() (*moebius.MoebiusSystem, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ms == nil {
		return nil, nil
	}
	ms := &moebius.MoebiusSystem{
		M: s.ms.M,
		G: append([]int(nil), s.ms.G...),
		F: append([]int(nil), s.ms.F...),
		A: append([]float64(nil), s.ms.A...),
		B: append([]float64(nil), s.ms.B...),
		C: append([]float64(nil), s.ms.C...),
		D: append([]float64(nil), s.ms.D...),
	}
	return ms, append([]float64(nil), s.x0...)
}

// Op reports the operator spec (ordinary/general families).
func (s *Session) Op() (name string, mod int64) { return s.op, s.mod }

// IntDomain reports whether the session's values are int64 (false = float64
// or Möbius).
func (s *Session) IntDomain() bool {
	return s.resInt != nil || s.genInt != nil
}

// Close marks the session closed; later appends fail with ErrClosed. An
// append already holding the lock finishes first — state is never freed
// under it. Idempotent; reports whether this call closed it.
func (s *Session) Close() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	return true
}

// Closed reports whether Close ran.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// SizeBytes estimates the session's resident size (state arrays, the
// concatenated structure and the compiled plan) for store accounting.
func (s *Session) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b int64
	if s.sys != nil {
		b += int64(len(s.sys.G)+len(s.sys.F)+len(s.sys.H)) * 8
	}
	if s.ms != nil {
		b += int64(len(s.ms.G)+len(s.ms.F)) * 8
		b += int64(len(s.ms.A)+len(s.ms.B)+len(s.ms.C)+len(s.ms.D)+len(s.x0)) * 8
		b += int64(s.m) * (8 + 32 + 8 + 1) // cur + comp + root + written
	}
	b += int64(len(s.genInt)+len(s.genFloat)) * 8
	if s.resInt != nil || s.resFloat != nil {
		b += int64(s.m) * 9 // cur + written
	}
	if s.plan != nil {
		b += s.plan.SizeBytes()
	}
	return b
}
