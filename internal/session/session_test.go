package session

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"indexedrec/internal/moebius"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

// randOrdinaryParts builds a random ordinary (distinct-g) chain workload
// split into a prefix system and appended batches: a permutation of cells
// 1..n where each iteration reads an earlier-written (or unwritten) cell.
func randOrdinaryParts(rng *rand.Rand, m, n int) (g, f []int) {
	perm := rng.Perm(m)
	if n > m {
		n = m
	}
	g = make([]int, n)
	f = make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = perm[i]
		f[i] = rng.Intn(m)
	}
	return g, f
}

func TestOrdinarySessionMatchesColdSolve(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	const m, n0, appends, k = 257, 40, 20, 10
	g, f := randOrdinaryParts(rng, m, n0+appends*k)
	init := workload.InitInt64(rng, m, 1000)
	s, err := Open(ctx, Spec{
		Family:  ir.FamilyOrdinary,
		System:  &ir.System{M: m, N: n0, G: g[:n0], F: f[:n0]},
		Op:      "int64-add",
		InitInt: init,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	at := n0
	for b := 0; b < appends; b++ {
		res, err := s.Append(ctx, Batch{G: g[at : at+k], F: f[at : at+k]})
		if err != nil {
			t.Fatalf("Append %d: %v", b, err)
		}
		if res.N != at+k {
			t.Fatalf("Append %d: N = %d, want %d", b, res.N, at+k)
		}
		at += k
	}
	// Bit-identical to a cold plan solve of the concatenated system (the
	// integer ops are exactly associative, so the parallel schedule agrees
	// with the sequential fold bit for bit).
	concat := &ir.System{M: m, N: at, G: g[:at], F: f[:at]}
	plan, err := ir.CompileCtx(ctx, concat, ir.CompileOptions{Family: ir.FamilyOrdinary})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sol, err := plan.SolveCtx(ctx, ir.PlanData{Op: "int64-add", InitInt: init})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	got, _, _ := s.Values()
	for x := range sol.ValuesInt {
		if got[x] != sol.ValuesInt[x] {
			t.Fatalf("cell %d: session %d, cold solve %d", x, got[x], sol.ValuesInt[x])
		}
	}
	if s.N() != at || s.Appends() != appends {
		t.Fatalf("N = %d appends = %d, want %d, %d", s.N(), s.Appends(), at, appends)
	}
	if fp := s.Fingerprint(); fp != plan.Fingerprint() {
		t.Fatalf("fingerprint %s != concat plan %s", fp, plan.Fingerprint())
	}
}

func TestGeneralSessionMatchesOracle(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	sys := workload.RandomGIR(rng, 32, 200)
	init := workload.InitInt64(rng, sys.M, 50)
	s, err := Open(ctx, Spec{
		Family:  ir.FamilyGeneral,
		System:  &ir.System{M: sys.M, N: 0, G: []int{}, F: []int{}},
		Op:      "int64-add",
		InitInt: init,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for at := 0; at < sys.N; at += 17 {
		hi := min(at+17, sys.N)
		if _, err := s.Append(ctx, Batch{G: sys.G[at:hi], F: sys.F[at:hi], H: sys.H[at:hi]}); err != nil {
			t.Fatalf("Append at %d: %v", at, err)
		}
	}
	want := ir.RunSequential[int64](sys, ir.IntAdd{}, init)
	got, _, _ := s.Values()
	for x := range want {
		if got[x] != want[x] {
			t.Fatalf("cell %d: session %d, oracle %d", x, got[x], want[x])
		}
	}
	// The staleness rule must have refreshed the plan: appends took the
	// concatenated system from 0 to sys.N iterations.
	if pn := s.Plan().N(); pn == 0 {
		t.Fatalf("plan never recompiled (planN = %d after %d appended)", pn, sys.N)
	}
}

func TestMoebiusSessionMatchesSequential(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	const m, n0, k = 129, 30, 11
	g, f := randOrdinaryParts(rng, m, n0+4*k)
	n := len(g)
	a, b, c, d := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range a {
		a[i] = 1 + rng.Float64()
		b[i] = rng.Float64()
		c[i] = rng.Float64() * 0.1
		d[i] = 1 + rng.Float64()
	}
	x0 := make([]float64, m)
	for i := range x0 {
		x0[i] = rng.Float64() * 4
	}
	s, err := Open(ctx, Spec{
		Family: ir.FamilyMoebius,
		M:      m, G: g[:n0], F: f[:n0], A: a[:n0], B: b[:n0], C: c[:n0], D: d[:n0],
		X0: x0,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for at := n0; at < n; at += k {
		hi := min(at+k, n)
		_, err := s.Append(ctx, Batch{G: g[at:hi], F: f[at:hi], A: a[at:hi], B: b[at:hi], C: c[at:hi], D: d[at:hi]})
		if err != nil {
			t.Fatalf("Append at %d: %v", at, err)
		}
	}
	ms := &moebius.MoebiusSystem{M: m, G: g, F: f, A: a, B: b, C: c, D: d}
	want := ms.RunSequential(x0)
	_, _, got := s.Values()
	for x := range want {
		if got[x] != want[x] {
			t.Fatalf("cell %d: session %v, sequential %v", x, got[x], want[x])
		}
	}
}

func TestAppendValidationLeavesStateUntouched(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, Spec{
		Family:  ir.FamilyOrdinary,
		System:  &ir.System{M: 4, N: 1, G: []int{1}, F: []int{0}},
		Op:      "int64-add",
		InitInt: []int64{1, 1, 1, 1},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	before, _, _ := s.Values()
	cases := []Batch{
		{G: []int{1}, F: []int{0}},              // rewrites cell 1
		{G: []int{2, 2}, F: []int{0, 0}},        // in-batch duplicate
		{G: []int{9}, F: []int{0}},              // out of range
		{G: []int{2}, F: []int{0, 1}},           // length mismatch
		{G: []int{2}, F: []int{0}, H: []int{0}}, // H on an ordinary session
	}
	for i, b := range cases {
		if _, err := s.Append(ctx, b); err == nil {
			t.Fatalf("case %d: append accepted", i)
		}
		after, _, _ := s.Values()
		for x := range before {
			if after[x] != before[x] {
				t.Fatalf("case %d mutated state at cell %d", i, x)
			}
		}
		if s.N() != 1 {
			t.Fatalf("case %d: N = %d, want 1", i, s.N())
		}
	}
	// A valid cell-2 append must still work after the failed duplicates —
	// the written marks were rolled back.
	if _, err := s.Append(ctx, Batch{G: []int{2}, F: []int{1}}); err != nil {
		t.Fatalf("valid append after failures: %v", err)
	}
}

func TestSessionIterationLimit(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, Spec{
		Family:  ir.FamilyOrdinary,
		System:  &ir.System{M: 8, N: 0, G: []int{}, F: []int{}},
		Op:      "int64-add",
		InitInt: make([]int64, 8),
		MaxN:    2,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Append(ctx, Batch{G: []int{1, 2}, F: []int{0, 1}}); err != nil {
		t.Fatalf("within limit: %v", err)
	}
	if _, err := s.Append(ctx, Batch{G: []int{3}, F: []int{2}}); err == nil {
		t.Fatal("append past MaxN accepted")
	}
}

func TestClosedSessionRefusesAppends(t *testing.T) {
	ctx := context.Background()
	s, err := Open(ctx, Spec{
		Family:  ir.FamilyOrdinary,
		System:  &ir.System{M: 4, N: 0, G: []int{}, F: []int{}},
		Op:      "int64-add",
		InitInt: make([]int64, 4),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !s.Close() {
		t.Fatal("first Close reported false")
	}
	if s.Close() {
		t.Fatal("second Close reported true")
	}
	if _, err := s.Append(ctx, Batch{G: []int{1}, F: []int{0}}); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func openTestSession(t *testing.T, m int) *Session {
	t.Helper()
	s, err := Open(context.Background(), Spec{
		Family:  ir.FamilyOrdinary,
		System:  &ir.System{M: m, N: 0, G: []int{}, F: []int{}},
		Op:      "int64-add",
		InitInt: make([]int64, m),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreTTLEvictionUnderConcurrentAppend(t *testing.T) {
	var mu sync.Mutex
	evicted := 0
	st := NewStore(StoreConfig{
		TTL: 20 * time.Millisecond,
		Hooks: Hooks{Closed: func(ev bool) {
			if ev {
				mu.Lock()
				evicted++
				mu.Unlock()
			}
		}},
	})
	defer st.Close()
	const sessions = 8
	ids := make([]string, sessions)
	for i := range ids {
		id, err := st.Put(openTestSession(t, 4096))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		ids[i] = id
	}
	// Hammer appends while the sweeper evicts: each worker appends until
	// its session is gone; the race detector guards the interleavings and
	// ErrClosed/ErrNotFound are the only acceptable failures.
	var wg sync.WaitGroup
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(id string, cell int) {
			defer wg.Done()
			for i := 0; ; i++ {
				s, err := st.Get(id)
				if err != nil {
					return // evicted
				}
				_, err = s.Append(context.Background(), Batch{G: []int{cell + i}, F: []int{0}})
				if err == ErrClosed {
					return // evicted mid-loop, cleanly
				}
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				st.Touch(id)
				if i >= 200 {
					return
				}
			}
		}(ids[w], 1+w*500)
	}
	wg.Wait()
	// Idle out everything that remains.
	deadline := time.Now().Add(2 * time.Second)
	for st.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st.Len() != 0 {
		t.Fatalf("%d sessions survived the TTL", st.Len())
	}
	mu.Lock()
	defer mu.Unlock()
	if evicted == 0 {
		t.Fatal("no eviction observed")
	}
}

func TestStoreByteBoundEvictsLRU(t *testing.T) {
	one := openTestSession(t, 64)
	per := one.SizeBytes()
	st := NewStore(StoreConfig{TTL: -1, MaxBytes: per*2 + per/2})
	defer st.Close()
	idA, err := st.Put(one)
	if err != nil {
		t.Fatalf("Put A: %v", err)
	}
	idB, err := st.Put(openTestSession(t, 64))
	if err != nil {
		t.Fatalf("Put B: %v", err)
	}
	st.Touch(idA) // B becomes the LRU
	if _, err := st.Put(openTestSession(t, 64)); err != nil {
		t.Fatalf("Put C: %v", err)
	}
	if _, err := st.Get(idB); err != ErrNotFound {
		t.Fatalf("LRU session B still resident (err = %v)", err)
	}
	if _, err := st.Get(idA); err != nil {
		t.Fatalf("recently used session A evicted: %v", err)
	}
	if st.Bytes() > per*2+per/2 {
		t.Fatalf("store bytes %d exceed bound", st.Bytes())
	}
}

func TestStoreCloseAll(t *testing.T) {
	st := NewStore(StoreConfig{TTL: -1})
	defer st.Close()
	id, err := st.Put(openTestSession(t, 16))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	s, err := st.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	st.CloseAll()
	if !s.Closed() {
		t.Fatal("session not closed by CloseAll")
	}
	if st.Len() != 0 || st.Bytes() != 0 {
		t.Fatalf("store not emptied: len %d bytes %d", st.Len(), st.Bytes())
	}
	if _, err := st.Get(id); err != ErrNotFound {
		t.Fatalf("Get after CloseAll: %v", err)
	}
}
