// Package session implements streaming (incremental) solves: a Session is a
// live indexed-recurrence system whose iteration stream keeps growing, with
// the solved state advanced per append instead of re-solved from scratch.
//
// The families reuse their own incremental structure:
//
//   - ordinary: distinct g makes every written cell's value final, so the
//     prefix is a settled materialization and each appended iteration is one
//     Combine against it (ordinary.Resume);
//   - Möbius/linear: the same settled-prefix argument plus a running
//     composed 2×2 map per write chain, folded in O(1) per appended
//     coefficient row (moebius.Resume) — the compact re-home snapshot;
//   - general (GIR): cells may be rewritten, so each appended iteration is
//     folded sequentially (gir.AppendFold, the semantic definition itself)
//     and the cached dependence-DAG plan is recompiled lazily once the
//     appended suffix passes a staleness threshold (gir.Stale).
//
// Correctness contract: after any sequence of appends a session's values
// are bit-identical to core.RunSequential of the concatenated system — the
// repo's semantic oracle. For exactly-associative operators (the integer
// library) that is also bit-identical to a cold parallel solve of the
// concatenated system; float operators relate to the parallel schedule the
// same way the direct solvers do (reassociation rounding). The fuzzer
// FuzzSessionAppendAgainstColdSolve enforces both claims.
//
// Store adds the service-side lifecycle: ID allocation, idle-TTL eviction,
// a byte-accounted LRU bound, and drain. Sessions are internally locked, so
// concurrent appends and a concurrent eviction serialize safely: eviction
// only marks the session closed — an in-flight append finishes on the still
// -valid state and later appends fail with ErrClosed.
package session
