package session

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// ErrNotFound is returned by Store lookups for unknown (or already deleted)
// session IDs.
var ErrNotFound = errors.New("session: not found")

// ErrStoreFull is returned by Put when even evicting every idle session
// cannot fit the new one under the store's byte bound.
var ErrStoreFull = errors.New("session: store full")

// Hooks observe store lifecycle for metrics; nil fields are skipped.
type Hooks struct {
	// Opened runs after a session is admitted.
	Opened func()
	// Closed runs when a session leaves the store; evicted distinguishes
	// TTL/size eviction from explicit deletes and drain.
	Closed func(evicted bool)
	// Bytes receives the store's resident byte total after each change.
	Bytes func(total int64)
}

// StoreConfig tunes a Store; zero values select the documented defaults.
type StoreConfig struct {
	// TTL evicts sessions idle longer than this (default 5m; negative
	// disables idle eviction).
	TTL time.Duration
	// MaxBytes bounds the summed SizeBytes of resident sessions (default
	// 256 MiB; negative disables the bound).
	MaxBytes int64
	// MaxSessions bounds the resident session count (default 1024;
	// negative disables).
	MaxSessions int
	// Hooks observe lifecycle events.
	Hooks Hooks
}

// Store owns the live sessions of one server: ID allocation, lookup with
// idle tracking, TTL + byte-bound eviction (least-recently-used first) and
// drain. Create with NewStore, stop the sweeper with Close.
type Store struct {
	cfg StoreConfig

	mu    sync.Mutex
	byID  map[string]*entry
	bytes int64

	stop chan struct{}
	done chan struct{}
}

type entry struct {
	s        *Session
	lastUsed time.Time
	bytes    int64
}

// NewStore builds a store and starts its idle sweeper.
func NewStore(cfg StoreConfig) *Store {
	if cfg.TTL == 0 {
		cfg.TTL = 5 * time.Minute
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 256 << 20
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 1024
	}
	st := &Store{
		cfg:  cfg,
		byID: make(map[string]*entry),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go st.sweep()
	return st
}

// Put admits a session and returns its fresh ID, evicting idle sessions
// LRU-first if the byte or count bound requires it.
func (st *Store) Put(s *Session) (string, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	id := hex.EncodeToString(buf[:])
	size := s.SizeBytes()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cfg.MaxBytes > 0 {
		st.evictOverLocked(st.cfg.MaxBytes - size)
		if st.bytes+size > st.cfg.MaxBytes {
			return "", ErrStoreFull
		}
	}
	if st.cfg.MaxSessions > 0 && len(st.byID) >= st.cfg.MaxSessions {
		st.evictCountLocked(st.cfg.MaxSessions - 1)
		if len(st.byID) >= st.cfg.MaxSessions {
			return "", ErrStoreFull
		}
	}
	st.byID[id] = &entry{s: s, lastUsed: time.Now(), bytes: size}
	st.bytes += size
	if st.cfg.Hooks.Opened != nil {
		st.cfg.Hooks.Opened()
	}
	st.reportBytesLocked()
	return id, nil
}

// Get returns the session for id, refreshing its idle clock.
func (st *Store) Get(id string) (*Session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.byID[id]
	if !ok {
		return nil, ErrNotFound
	}
	e.lastUsed = time.Now()
	return e.s, nil
}

// Touch re-accounts a session's size after it grew (appends) and refreshes
// its idle clock. Unknown IDs (racing a delete) are ignored.
func (st *Store) Touch(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.byID[id]
	if !ok {
		return
	}
	size := e.s.SizeBytes()
	st.bytes += size - e.bytes
	e.bytes = size
	e.lastUsed = time.Now()
	// A grown session may now breach the bound; evict others, never the
	// session just touched (it is the most recently used anyway).
	if st.cfg.MaxBytes > 0 && st.bytes > st.cfg.MaxBytes {
		st.evictOverLocked(st.cfg.MaxBytes)
	}
	st.reportBytesLocked()
}

// Delete closes and removes a session, reporting ErrNotFound for unknown
// IDs.
func (st *Store) Delete(id string) error {
	st.mu.Lock()
	e, ok := st.byID[id]
	if ok {
		delete(st.byID, id)
		st.bytes -= e.bytes
		st.reportBytesLocked()
	}
	st.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	e.s.Close()
	if st.cfg.Hooks.Closed != nil {
		st.cfg.Hooks.Closed(false)
	}
	return nil
}

// Len reports the resident session count.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// Bytes reports the resident byte total.
func (st *Store) Bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes
}

// CloseAll closes every session and empties the store — the drain path.
// The sweeper keeps running (Close stops it); new Puts are still accepted,
// but irserved's draining gate refuses opens before they reach the store.
func (st *Store) CloseAll() {
	st.mu.Lock()
	entries := make([]*entry, 0, len(st.byID))
	for id, e := range st.byID {
		entries = append(entries, e)
		delete(st.byID, id)
	}
	st.bytes = 0
	st.reportBytesLocked()
	st.mu.Unlock()
	for _, e := range entries {
		e.s.Close()
		if st.cfg.Hooks.Closed != nil {
			st.cfg.Hooks.Closed(false)
		}
	}
}

// Close stops the idle sweeper (sessions themselves are left to CloseAll).
func (st *Store) Close() {
	close(st.stop)
	<-st.done
}

// sweep evicts idle sessions every TTL/4.
func (st *Store) sweep() {
	defer close(st.done)
	if st.cfg.TTL < 0 {
		<-st.stop
		return
	}
	period := st.cfg.TTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
			st.evictIdle()
		}
	}
}

// evictIdle removes sessions idle past the TTL.
func (st *Store) evictIdle() {
	cutoff := time.Now().Add(-st.cfg.TTL)
	st.mu.Lock()
	var evicted []*entry
	for id, e := range st.byID {
		if e.lastUsed.Before(cutoff) {
			evicted = append(evicted, e)
			delete(st.byID, id)
			st.bytes -= e.bytes
		}
	}
	if evicted != nil {
		st.reportBytesLocked()
	}
	st.mu.Unlock()
	for _, e := range evicted {
		e.s.Close()
		if st.cfg.Hooks.Closed != nil {
			st.cfg.Hooks.Closed(true)
		}
	}
}

// evictOverLocked evicts least-recently-used sessions until the resident
// bytes fit under budget (or the store is empty). Callers hold st.mu.
func (st *Store) evictOverLocked(budget int64) {
	for st.bytes > budget && len(st.byID) > 0 {
		st.evictOldestLocked()
	}
}

// evictCountLocked evicts LRU sessions until at most want remain.
func (st *Store) evictCountLocked(want int) {
	for len(st.byID) > want && len(st.byID) > 0 {
		st.evictOldestLocked()
	}
}

func (st *Store) evictOldestLocked() {
	var oldID string
	var old *entry
	for id, e := range st.byID {
		if old == nil || e.lastUsed.Before(old.lastUsed) {
			oldID, old = id, e
		}
	}
	if old == nil {
		return
	}
	delete(st.byID, oldID)
	st.bytes -= old.bytes
	// Closing under st.mu is fine: Session.Close takes only the session's
	// own lock, and no session method takes st.mu.
	old.s.Close()
	if st.cfg.Hooks.Closed != nil {
		st.cfg.Hooks.Closed(true)
	}
	st.reportBytesLocked()
}

func (st *Store) reportBytesLocked() {
	if st.cfg.Hooks.Bytes != nil {
		st.cfg.Hooks.Bytes(st.bytes)
	}
}
