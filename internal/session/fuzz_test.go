package session

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
	"indexedrec/internal/workload"
	"indexedrec/ir"
)

// FuzzSessionAppendAgainstColdSolve drives random systems through a session
// — an opened prefix plus a random split of the rest into append batches —
// and checks the streamed state against cold solves of the concatenated
// system. The properties:
//
//   - every family, every domain: the session equals core.RunSequential of
//     the concatenated system bit for bit (the repo's semantic oracle);
//   - exactly-associative operators (the integer library): the session also
//     equals the parallel plan solve bit for bit;
//   - Möbius: the parallel solve agrees within rounding (its pointer-jumping
//     schedule reassociates the non-bitwise-associative matrix product —
//     the same relationship the direct solver has to the oracle).
func FuzzSessionAppendAgainstColdSolve(f *testing.F) {
	f.Add(int64(1), 8, 2, uint8(0))
	f.Add(int64(2), 64, 9, uint8(1))
	f.Add(int64(3), 33, 0, uint8(2))
	f.Add(int64(4), 120, 17, uint8(3))
	f.Add(int64(5), 1, 0, uint8(0))
	f.Add(int64(6), 300, 300, uint8(1))
	f.Add(int64(7), 17, 3, uint8(2))

	f.Fuzz(func(t *testing.T, seed int64, m, n0 int, kind uint8) {
		if m < 1 || m > 512 || n0 < 0 {
			t.Skip("out of budget")
		}
		rng := rand.New(rand.NewSource(seed))
		ctx := context.Background()
		switch kind % 4 {
		case 0:
			fuzzOrdinary(t, ctx, rng, m, n0, true)
		case 1:
			fuzzOrdinary(t, ctx, rng, m, n0, false)
		case 2:
			fuzzMoebius(t, ctx, rng, m, n0)
		default:
			fuzzGeneral(t, ctx, rng, m, n0)
		}
	})
}

// batchesOf splits [lo, hi) into random non-empty batch boundaries.
func batchesOf(rng *rand.Rand, lo, hi int) [][2]int {
	var out [][2]int
	for at := lo; at < hi; {
		k := 1 + rng.Intn(hi-at)
		out = append(out, [2]int{at, at + k})
		at += k
	}
	return out
}

func fuzzOrdinary(t *testing.T, ctx context.Context, rng *rand.Rand, m, n0 int, intDomain bool) {
	g, f := randOrdinaryParts(rng, m, m) // full permutation workload
	n := len(g)
	if n0 > n {
		n0 = n
	}
	spec := Spec{
		Family: ir.FamilyOrdinary,
		System: &ir.System{M: m, N: n0, G: g[:n0], F: f[:n0]},
	}
	if intDomain {
		spec.Op, spec.InitInt = "int64-add", workload.InitInt64(rng, m, 1<<40)
	} else {
		spec.Op = "float64-add"
		spec.InitFloat = make([]float64, m)
		for i := range spec.InitFloat {
			spec.InitFloat[i] = rng.NormFloat64()
		}
	}
	s, err := Open(ctx, spec)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range batchesOf(rng, n0, n) {
		if _, err := s.Append(ctx, Batch{G: g[b[0]:b[1]], F: f[b[0]:b[1]]}); err != nil {
			t.Fatalf("Append %v: %v", b, err)
		}
	}
	concat := &ir.System{M: m, N: n, G: g, F: f}
	gi, gf, _ := s.Values()
	if intDomain {
		want := ir.RunSequential[int64](concat, ir.IntAdd{}, spec.InitInt)
		plan, err := ir.CompileCtx(ctx, concat, ir.CompileOptions{Family: ir.FamilyOrdinary})
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		sol, err := plan.SolveCtx(ctx, ir.PlanData{Op: "int64-add", InitInt: spec.InitInt})
		if err != nil {
			t.Fatalf("cold solve: %v", err)
		}
		for x := range want {
			if gi[x] != want[x] || gi[x] != sol.ValuesInt[x] {
				t.Fatalf("cell %d: session %d, oracle %d, cold %d", x, gi[x], want[x], sol.ValuesInt[x])
			}
		}
	} else {
		want := ir.RunSequential[float64](concat, ir.Float64Add{}, spec.InitFloat)
		for x := range want {
			if gf[x] != want[x] && !(math.IsNaN(gf[x]) && math.IsNaN(want[x])) {
				t.Fatalf("cell %d: session %v, oracle %v", x, gf[x], want[x])
			}
		}
	}
}

func fuzzGeneral(t *testing.T, ctx context.Context, rng *rand.Rand, m, n0 int) {
	sys := workload.RandomGIR(rng, m, min(2*m, 600))
	if n0 > sys.N {
		n0 = sys.N
	}
	init := workload.InitInt64(rng, m, 100)
	s, err := Open(ctx, Spec{
		Family:  ir.FamilyGeneral,
		System:  &ir.System{M: m, N: n0, G: sys.G[:n0], F: sys.F[:n0], H: sys.H[:n0]},
		Op:      "int64-add",
		InitInt: init,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range batchesOf(rng, n0, sys.N) {
		if _, err := s.Append(ctx, Batch{G: sys.G[b[0]:b[1]], F: sys.F[b[0]:b[1]], H: sys.H[b[0]:b[1]]}); err != nil {
			t.Fatalf("Append %v: %v", b, err)
		}
	}
	want := ir.RunSequential[int64](sys, ir.IntAdd{}, init)
	gi, _, _ := s.Values()
	for x := range want {
		if gi[x] != want[x] {
			t.Fatalf("cell %d: session %d, oracle %d", x, gi[x], want[x])
		}
	}
	// int64-add is exact, so the parallel CAP solve agrees bitwise too.
	res, err := ir.SolveGeneralCtx[int64](ctx, sys, ir.IntAdd{}, init, ir.SolveOptions{})
	if err != nil {
		if errors.Is(err, ir.ErrExponentLimit) {
			return
		}
		t.Fatalf("cold general solve: %v", err)
	}
	for x := range res.Values {
		if gi[x] != res.Values[x] {
			t.Fatalf("cell %d: session %d, cold %d", x, gi[x], res.Values[x])
		}
	}
}

func fuzzMoebius(t *testing.T, ctx context.Context, rng *rand.Rand, m, n0 int) {
	g, f := randOrdinaryParts(rng, m, m)
	n := len(g)
	if n0 > n {
		n0 = n
	}
	a, b, c, d := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range a {
		a[i] = 1 + rng.Float64()
		b[i] = rng.NormFloat64()
		c[i] = rng.Float64() * 0.05
		d[i] = 1 + rng.Float64()
	}
	x0 := make([]float64, m)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	s, err := Open(ctx, Spec{
		Family: ir.FamilyMoebius,
		M:      m, G: g[:n0], F: f[:n0], A: a[:n0], B: b[:n0], C: c[:n0], D: d[:n0],
		X0: x0,
	})
	if err != nil {
		if errors.Is(err, moebius.ErrNonFinite) {
			t.Skip("prefix hits a zero denominator")
		}
		t.Fatalf("Open: %v", err)
	}
	for _, bt := range batchesOf(rng, n0, n) {
		_, err := s.Append(ctx, Batch{G: g[bt[0]:bt[1]], F: f[bt[0]:bt[1]],
			A: a[bt[0]:bt[1]], B: b[bt[0]:bt[1]], C: c[bt[0]:bt[1]], D: d[bt[0]:bt[1]]})
		if errors.Is(err, moebius.ErrNonFinite) {
			t.Skip("append hits a zero denominator")
		}
		if err != nil {
			t.Fatalf("Append %v: %v", bt, err)
		}
	}
	ms := &moebius.MoebiusSystem{M: m, G: g, F: f, A: a, B: b, C: c, D: d}
	want := ms.RunSequential(x0)
	_, _, got := s.Values()
	for x := range want {
		if got[x] != want[x] {
			t.Fatalf("cell %d: session %v, oracle %v", x, got[x], want[x])
		}
	}
	// The parallel composed-matrix solve reassociates; agreement is up to
	// rounding, not bitwise — assert a tight relative error.
	par, err := ms.SolveCtx(ctx, x0, ordinary.Options{})
	if err != nil {
		if errors.Is(err, moebius.ErrNonFinite) {
			return
		}
		t.Fatalf("parallel solve: %v", err)
	}
	for x := range want {
		diff := math.Abs(par[x] - got[x])
		scale := math.Max(1, math.Abs(got[x]))
		if diff/scale > 1e-9 {
			t.Fatalf("cell %d: parallel %v vs session %v (rel %g)", x, par[x], got[x], diff/scale)
		}
	}
}
