package scan

import (
	"fmt"

	"indexedrec/internal/parallel"
)

// This file extends the first-order machinery to ORDER-K linear recurrences
//
//	X[i] = a_1[i]·X[i-1] + a_2[i]·X[i-2] + ... + a_k[i]·X[i-k] + b[i]
//
// via companion matrices: the state vector (X[i], ..., X[i-k+1], 1) advances
// by one (k+1)×(k+1) matrix per step, matrices compose associatively, and a
// parallel prefix over the composition yields every X[i] in O(log n) depth —
// the classical generalization (Kogge–Stone [4]) of what the paper's Möbius
// route does for k = 1, and the machinery behind Livermore kernel 6's
// "general linear recurrence equations" family with fixed order.

// mat is a dense square float64 matrix (row-major).
type mat struct {
	n int
	a []float64
}

func newMat(n int) mat { return mat{n: n, a: make([]float64, n*n)} }

func identity(n int) mat {
	m := newMat(n)
	for i := 0; i < n; i++ {
		m.a[i*n+i] = 1
	}
	return m
}

// mul returns x·y.
func (x mat) mul(y mat) mat {
	n := x.n
	out := newMat(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			v := x.a[i*n+k]
			if v == 0 {
				continue
			}
			row := y.a[k*n:]
			for j := 0; j < n; j++ {
				out.a[i*n+j] += v * row[j]
			}
		}
	}
	return out
}

// matChainOp composes matrices in application order: Combine(first, second)
// represents "apply first, then second", i.e. second·first.
type matChainOp struct{}

func (matChainOp) Name() string         { return "matrix-compose" }
func (matChainOp) Combine(l, r mat) mat { return r.mul(l) }

// KTermRecurrence solves the order-k recurrence sequentially. a[j] is the
// coefficient series for lag j+1 (each of length n); entries with index < k
// are ignored (X[0..k-1] are the given initial values in x0).
func KTermRecurrence(k int, a [][]float64, b []float64, x0 []float64) ([]float64, error) {
	n := len(b)
	if len(a) != k {
		return nil, fmt.Errorf("scan: need %d coefficient series, got %d", k, len(a))
	}
	if len(x0) < k {
		return nil, fmt.Errorf("scan: need %d initial values, got %d", k, len(x0))
	}
	out := make([]float64, n)
	copy(out, x0[:min(len(x0), n)])
	for i := k; i < n; i++ {
		v := b[i]
		for j := 0; j < k; j++ {
			v += a[j][i] * out[i-j-1]
		}
		out[i] = v
	}
	return out, nil
}

// KTermRecurrenceParallel solves the same recurrence with parallel prefix
// over companion matrices: O(log n) depth, O(n·k²·log n) work.
func KTermRecurrenceParallel(k int, a [][]float64, b []float64, x0 []float64, procs int) ([]float64, error) {
	n := len(b)
	if len(a) != k {
		return nil, fmt.Errorf("scan: need %d coefficient series, got %d", k, len(a))
	}
	if len(x0) < k {
		return nil, fmt.Errorf("scan: need %d initial values, got %d", k, len(x0))
	}
	out := make([]float64, n)
	copy(out, x0[:min(len(x0), n)])
	if n <= k {
		return out, nil
	}

	d := k + 1
	steps := make([]mat, n-k) // steps[t] advances i = k+t
	parallel.For(n-k, procs, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			i := k + t
			m := newMat(d)
			for j := 0; j < k; j++ {
				m.a[0*d+j] = a[j][i] // row 0: the recurrence
			}
			m.a[0*d+k] = b[i]
			for r := 1; r < k; r++ {
				m.a[r*d+(r-1)] = 1 // shift rows
			}
			m.a[k*d+k] = 1 // affine 1
			steps[t] = m
		}
	})

	// Inclusive prefix of step compositions; pref[t] maps the initial
	// state to the state after i = k+t.
	pref := InclusiveParallel[mat](matChainOp{}, steps, procs)

	// Initial state: (X[k-1], X[k-2], ..., X[0], 1).
	state := make([]float64, d)
	for j := 0; j < k; j++ {
		state[j] = x0[k-1-j]
	}
	state[k] = 1

	parallel.For(n-k, procs, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			m := pref[t]
			// X[k+t] is row 0 of the composed map applied to the state.
			v := 0.0
			for j := 0; j < d; j++ {
				v += m.a[j] * state[j]
			}
			out[k+t] = v
		}
	})
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
