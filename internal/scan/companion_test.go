package scan

import (
	"math"
	"math/rand"
	"testing"
)

func constSeries(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestKTermFibonacci(t *testing.T) {
	// X[i] = X[i-1] + X[i-2], X[0]=0, X[1]=1: the Fibonacci numbers.
	n := 30
	a := [][]float64{constSeries(n, 1), constSeries(n, 1)}
	b := constSeries(n, 0)
	x0 := []float64{0, 1}
	seq, err := KTermRecurrence(2, a, b, x0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := KTermRecurrenceParallel(2, a, b, x0, 4)
	if err != nil {
		t.Fatal(err)
	}
	fib := []float64{0, 1}
	for i := 2; i < n; i++ {
		fib = append(fib, fib[i-1]+fib[i-2])
	}
	for i := 0; i < n; i++ {
		if seq[i] != fib[i] {
			t.Fatalf("seq[%d] = %v, want %v", i, seq[i], fib[i])
		}
		if math.Abs(par[i]-fib[i]) > 1e-6*math.Max(1, fib[i]) {
			t.Fatalf("par[%d] = %v, want %v", i, par[i], fib[i])
		}
	}
}

func TestKTermRandomOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, k := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 10; trial++ {
			n := k + rng.Intn(200)
			a := make([][]float64, k)
			for j := range a {
				a[j] = make([]float64, n)
				for i := range a[j] {
					a[j][i] = (rng.Float64() - 0.5) / float64(k) // keep bounded
				}
			}
			b := make([]float64, n)
			x0 := make([]float64, k)
			for i := range b {
				b[i] = rng.Float64() - 0.5
			}
			for i := range x0 {
				x0[i] = rng.Float64()
			}
			want, err := KTermRecurrence(k, a, b, x0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := KTermRecurrenceParallel(k, a, b, x0, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
					t.Fatalf("k=%d trial=%d i=%d: got %v want %v", k, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestKTermOrderOneMatchesAffineRoute(t *testing.T) {
	// k=1 must agree with the dedicated first-order solver.
	rng := rand.New(rand.NewSource(133))
	n := 300
	a1 := make([]float64, n)
	b := make([]float64, n)
	for i := range a1 {
		a1[i] = rng.Float64()*1.2 - 0.6
		b[i] = rng.Float64() - 0.5
	}
	x0 := rng.Float64()
	want := LinearRecurrenceParallel(a1, b, x0, 2)
	got, err := KTermRecurrenceParallel(1, [][]float64{a1}, b, []float64{x0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("i=%d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestKTermValidation(t *testing.T) {
	if _, err := KTermRecurrence(2, [][]float64{{1}}, []float64{0}, []float64{0, 1}); err == nil {
		t.Fatal("wrong coefficient count accepted")
	}
	if _, err := KTermRecurrenceParallel(2, [][]float64{{1}, {1}}, []float64{0, 0, 0}, []float64{0}, 1); err == nil {
		t.Fatal("too few initial values accepted")
	}
}

func TestKTermShortInput(t *testing.T) {
	// n <= k: output is just the initial values.
	out, err := KTermRecurrenceParallel(3, [][]float64{{0, 0}, {0, 0}, {0, 0}},
		[]float64{0, 0}, []float64{4, 5, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 || out[1] != 5 {
		t.Fatalf("out = %v", out)
	}
}
