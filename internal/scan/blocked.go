package scan

import (
	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// blockedSegs cuts n items across p workers into equal contiguous segments
// and returns the segment count and length. One segment per worker is the
// work-optimal split (T = n/P + log P); tiny inputs collapse to one segment
// so the reduce/tree overhead never exceeds the sequential scan's cost.
func blockedSegs(n, p int) (segs, segLen int) {
	if p <= 0 {
		p = parallel.DefaultProcs()
	}
	segLen = (n + p - 1) / p
	if segLen < 1 {
		segLen = 1
	}
	segs = (n + segLen - 1) / segLen
	return segs, segLen
}

// InclusiveBlocked computes the same inclusive prefix combine as
// InclusiveParallel with the work-optimal blocked schedule: each of ~procs
// segments is reduced sequentially to a summary, a Kogge–Stone tree scans
// the summaries in ⌈log₂ segs⌉ rounds, and a final pass re-folds each
// segment seeded by its predecessor's prefix. O(n) work and
// n/P + O(log P) depth, against the Kogge–Stone scan's O(n log n) work.
// The fold order matches Inclusive exactly, so results are bit-identical
// for exactly associative ops (floats may differ by re-association).
func InclusiveBlocked[T any](op core.Semigroup[T], xs []T, procs int) []T {
	n := len(xs)
	out := make([]T, n)
	if n == 0 {
		return out
	}
	segs, segLen := blockedSegs(n, procs)
	if segs == 1 {
		copy(out, Inclusive(op, xs))
		return out
	}

	// Phase 1: per-segment sequential reduce.
	sum := make([]T, segs)
	parallel.For(segs, procs, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			cLo, cHi := s*segLen, min((s+1)*segLen, n)
			acc := xs[cLo]
			for i := cLo + 1; i < cHi; i++ {
				acc = op.Combine(acc, xs[i])
			}
			sum[s] = acc
		}
	})

	// Phase 2: Kogge–Stone over the segment summaries (segs ≈ P entries, so
	// the O(segs log segs) work here is the +log P term, not a factor).
	sum2 := make([]T, segs)
	for stride := 1; stride < segs; stride *= 2 {
		st := stride
		parallel.For(segs, procs, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				if s >= st {
					sum2[s] = op.Combine(sum[s-st], sum[s])
				} else {
					sum2[s] = sum[s]
				}
			}
		})
		sum, sum2 = sum2, sum
	}

	// Phase 3: per-segment prefix apply, seeded by the predecessor prefix.
	parallel.For(segs, procs, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			cLo, cHi := s*segLen, min((s+1)*segLen, n)
			i := cLo
			var acc T
			if s == 0 {
				acc = xs[i]
				out[i] = acc
				i++
			} else {
				acc = sum[s-1]
			}
			for ; i < cHi; i++ {
				acc = op.Combine(acc, xs[i])
				out[i] = acc
			}
		}
	})
	return out
}

// LinearRecurrenceBlocked solves x[i] = a[i]·x[i-1] + b[i] via the blocked
// scan over affine-map composition — LinearRecurrenceParallel with
// InclusiveBlocked's O(n) work bound.
func LinearRecurrenceBlocked(a, b []float64, x0 float64, procs int) []float64 {
	n := len(a)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	maps := make([]affine, n)
	maps[0] = affine{a: 1, b: 0} // identity; x[0] is given
	for i := 1; i < n; i++ {
		maps[i] = affine{a: a[i], b: b[i]}
	}
	pref := InclusiveBlocked[affine](affineOp{}, maps, procs)
	parallel.For(n, procs, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = pref[i].a*x0 + pref[i].b
		}
	})
	return out
}
