// Package scan implements the classical parallel-prefix machinery the paper
// builds on (its references [2] Stone and [4] Kogge–Stone): sequential and
// parallel prefix combine (scan), and the first-order linear recurrence
// solver x[i] = a[i]·x[i-1] + b[i] via scan over coefficient pairs.
//
// Two parallel schedules are provided for each entry point:
//
//   - InclusiveParallel / LinearRecurrenceParallel — the Kogge–Stone scan:
//     ⌈log₂ n⌉ lock-step rounds, O(n log n) work, O(log n) depth. The same
//     round structure as the paper's pointer jumping, specialized to the
//     chain g(i) = i, f(i) = i-1.
//   - InclusiveBlocked / LinearRecurrenceBlocked — the work-optimal blocked
//     (Blelloch-style) scan: sequential per-segment reduce, a Kogge–Stone
//     tree over the segment summaries, then a per-segment prefix apply.
//     O(n) work, n/P + O(log P) depth. This is the standalone form of the
//     schedule ordinary plans compile for long write chains (DESIGN §14).
//
// Invariants and contracts:
//
//   - Both schedules fold the same operand sequence in the same order; they
//     differ only in association. For exactly associative ops the outputs
//     are bit-identical to the sequential Inclusive; float results may
//     differ from sequential (and from each other) by re-association
//     rounding only.
//   - All functions are pure: inputs are never mutated, every call returns
//     fresh output storage, and the package holds no state — concurrent
//     calls are safe. Parallelism is internal (parallel.For) and joined
//     before return.
//
// These are the baselines of experiments E14 and E20 (DESIGN.md): a linear
// recurrence can be solved by the classical scan route or by the paper's
// Möbius-matrix OrdinaryIR route, and the blocked variants measure what
// dropping the log n work factor is worth.
package scan
