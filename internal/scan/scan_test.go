package scan

import (
	"math"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
)

func TestInclusiveSequential(t *testing.T) {
	got := Inclusive[int64](core.IntAdd{}, []int64{1, 2, 3, 4})
	want := []int64{1, 3, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestInclusiveParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{0, 1, 2, 3, 17, 256, 1000} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Int63n(1000)
		}
		want := Inclusive[int64](core.IntAdd{}, xs)
		for _, p := range []int{1, 4} {
			got := InclusiveParallel[int64](core.IntAdd{}, xs, p)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d i=%d: got %d want %d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestInclusiveParallelNonCommutative(t *testing.T) {
	xs := []string{"a", "b", "c", "d", "e", "f", "g"}
	want := Inclusive[string](core.Concat{}, xs)
	got := InclusiveParallel[string](core.Concat{}, xs, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("i=%d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestLinearRecurrenceParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, n := range []int{1, 2, 33, 500} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()*1.4 - 0.7
			b[i] = rng.Float64()*2 - 1
		}
		x0 := rng.Float64()
		want := LinearRecurrence(a, b, x0)
		got := LinearRecurrenceParallel(a, b, x0, 4)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("n=%d i=%d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestLinearRecurrenceEmpty(t *testing.T) {
	if out := LinearRecurrenceParallel(nil, nil, 1, 2); len(out) != 0 {
		t.Fatal("expected empty output")
	}
}
