package scan

import (
	"math"
	"math/rand"
	"testing"

	"indexedrec/internal/core"
)

func TestInclusiveBlockedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 2, 3, 17, 256, 1000, 4096} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Int63n(1000)
		}
		want := Inclusive[int64](core.IntAdd{}, xs)
		for _, p := range []int{1, 2, 4, 16, 100} {
			got := InclusiveBlocked[int64](core.IntAdd{}, xs, p)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d i=%d: got %d want %d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestInclusiveBlockedNonCommutative(t *testing.T) {
	// Concat is exact and non-commutative: any order or association slip in
	// the three phases changes the output string.
	rng := rand.New(rand.NewSource(79))
	for _, n := range []int{1, 7, 64, 333} {
		xs := make([]string, n)
		for i := range xs {
			xs[i] = string(rune('a' + rng.Intn(26)))
		}
		want := Inclusive[string](core.Concat{}, xs)
		for _, p := range []int{1, 3, 8} {
			got := InclusiveBlocked[string](core.Concat{}, xs, p)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d i=%d: got %q want %q", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestLinearRecurrenceBlockedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, n := range []int{0, 1, 2, 33, 500, 5000} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()*1.4 - 0.7
			b[i] = rng.Float64()*2 - 1
		}
		x0 := rng.Float64()
		want := LinearRecurrence(a, b, x0)
		got := LinearRecurrenceBlocked(a, b, x0, 4)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("n=%d i=%d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}
