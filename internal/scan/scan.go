package scan

import (
	"indexedrec/internal/core"
	"indexedrec/internal/parallel"
)

// Inclusive computes the inclusive prefix combine of xs under op
// sequentially: out[i] = xs[0] ⊗ ... ⊗ xs[i].
func Inclusive[T any](op core.Semigroup[T], xs []T) []T {
	out := make([]T, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = op.Combine(out[i-1], xs[i])
	}
	return out
}

// InclusiveParallel is the Kogge–Stone scan: ⌈log₂ n⌉ lock-step rounds of
// out[i] = out[i-2^t] ⊗ out[i] with double buffering, O(n log n) work,
// O(log n) depth — the same round structure as the paper's pointer jumping,
// specialized to the chain g(i) = i, f(i) = i-1.
func InclusiveParallel[T any](op core.Semigroup[T], xs []T, procs int) []T {
	n := len(xs)
	cur := make([]T, n)
	copy(cur, xs)
	nxt := make([]T, n)
	for stride := 1; stride < n; stride *= 2 {
		s := stride
		parallel.For(n, procs, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i >= s {
					nxt[i] = op.Combine(cur[i-s], cur[i])
				} else {
					nxt[i] = cur[i]
				}
			}
		})
		cur, nxt = nxt, cur
	}
	return cur
}

// affine is the composition semigroup of maps x ↦ a·x + b; combining left
// then right yields the map "apply left first": (a2·a1, a2·b1 + b2).
type affine struct{ a, b float64 }

type affineOp struct{}

func (affineOp) Name() string { return "affine-compose" }
func (affineOp) Combine(l, r affine) affine {
	return affine{a: r.a * l.a, b: r.a*l.b + r.b}
}

// LinearRecurrence solves x[i] = a[i]·x[i-1] + b[i] for i = 1..n-1 with
// x[0] given, sequentially. a[0], b[0] are ignored.
func LinearRecurrence(a, b []float64, x0 float64) []float64 {
	out := make([]float64, len(a))
	if len(a) == 0 {
		return out
	}
	out[0] = x0
	for i := 1; i < len(a); i++ {
		out[i] = a[i]*out[i-1] + b[i]
	}
	return out
}

// LinearRecurrenceParallel solves the same recurrence via parallel prefix
// over affine-map composition (the Kogge–Stone formulation the paper cites
// as prior art): x[i] = (∘_{k≤i} φ_k)(x0), each φ_k = a_k·x + b_k.
func LinearRecurrenceParallel(a, b []float64, x0 float64, procs int) []float64 {
	n := len(a)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	maps := make([]affine, n)
	maps[0] = affine{a: 1, b: 0} // identity; x[0] is given
	for i := 1; i < n; i++ {
		maps[i] = affine{a: a[i], b: b[i]}
	}
	pref := InclusiveParallel[affine](affineOp{}, maps, procs)
	parallel.For(n, procs, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = pref[i].a*x0 + pref[i].b
		}
	})
	return out
}
