package server

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ValidateExposition checks text against the Prometheus text exposition
// format the Registry emits: every sample must belong to a declared TYPE
// family, sample lines must parse, counters must be non-negative, histogram
// buckets must be cumulative and end in +Inf, and every histogram series
// must carry _sum and _count. It returns the first violation found, or nil
// for a well-formed page. Tests across the repo (irserved, ircluster, CI
// smoke checks) share it so every new metric is validated through the same
// gate.
func ValidateExposition(text string) error {
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
	declared := map[string]string{} // base name -> type
	type histSeries struct {
		lastCum  float64
		sawInf   bool
		sawSum   bool
		sawCount bool
	}
	hists := map[string]*histSeries{} // name+labels(without le)
	stripLe := regexp.MustCompile(`le="[^"]*",?`)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("bad TYPE line: %q", line)
			}
			declared[parts[2]] = parts[3]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("bad sample line: %q", line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if declared[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		typ, ok := declared[base]
		if !ok {
			return fmt.Errorf("sample %q has no TYPE declaration", line)
		}
		val, err := strconv.ParseFloat(strings.Replace(valStr, "+Inf", "Inf", 1), 64)
		if err != nil {
			return fmt.Errorf("bad value in %q: %v", line, err)
		}
		if typ == "counter" && val < 0 {
			return fmt.Errorf("negative counter: %q", line)
		}
		if typ == "histogram" {
			series := stripLe.ReplaceAllString(labels, "")
			series = strings.ReplaceAll(series, ",}", "}")
			if series == "{}" {
				series = ""
			}
			key := base + series
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{}
				hists[key] = hs
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if val < hs.lastCum {
					return fmt.Errorf("non-cumulative bucket in %q (prev %v)", line, hs.lastCum)
				}
				hs.lastCum = val
				if strings.Contains(labels, `le="+Inf"`) {
					hs.sawInf = true
				}
			case strings.HasSuffix(name, "_sum"):
				hs.sawSum = true
			case strings.HasSuffix(name, "_count"):
				hs.sawCount = true
			}
		}
	}
	for key, hs := range hists {
		if !hs.sawInf || !hs.sawSum || !hs.sawCount {
			return fmt.Errorf("histogram %s missing +Inf bucket, _sum or _count", key)
		}
	}
	return nil
}
