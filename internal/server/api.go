package server

import (
	"encoding/json"
	"fmt"
	"math"

	"indexedrec/ir"
)

// API version prefix for all solve endpoints.
const APIPrefix = "/v1/solve/"

// OrdinaryRequest is the body of POST /v1/solve/ordinary — an ordinary
// system (H = G), an operator spec, and the initial array. Init is raw so
// int64 operators decode without float64 truncation.
type OrdinaryRequest struct {
	System ir.SystemWire   `json:"system"`
	Op     string          `json:"op"`
	Mod    int64           `json:"mod,omitempty"`
	Init   json.RawMessage `json:"init"`
	Opts   ir.OptionsWire  `json:"opts,omitempty"`
}

// OrdinaryResponse mirrors ir.OrdinaryResult on the wire; exactly one of
// ValuesInt/ValuesFloat is set, matching the operator's domain.
type OrdinaryResponse struct {
	ValuesInt   []int64   `json:"values_int,omitempty"`
	ValuesFloat []float64 `json:"values_float,omitempty"`
	Rounds      int       `json:"rounds"`
	Combines    int64     `json:"combines"`
	ElapsedMs   float64   `json:"elapsed_ms"`
}

// GeneralRequest is the body of POST /v1/solve/general — any G, F, H with a
// commutative-monoid operator.
type GeneralRequest struct {
	System ir.SystemWire   `json:"system"`
	Op     string          `json:"op"`
	Mod    int64           `json:"mod,omitempty"`
	Init   json.RawMessage `json:"init"`
	// WithPowers requests the symbolic power traces (the paper's Fig. 5
	// artifact) in the response; they can be large, so default off.
	WithPowers bool           `json:"with_powers,omitempty"`
	Opts       ir.OptionsWire `json:"opts,omitempty"`
}

// GeneralResponse mirrors ir.GeneralResult on the wire.
type GeneralResponse struct {
	ValuesInt   []int64          `json:"values_int,omitempty"`
	ValuesFloat []float64        `json:"values_float,omitempty"`
	Powers      [][]ir.PowerTerm `json:"powers,omitempty"`
	CAPRounds   int              `json:"cap_rounds"`
	ElapsedMs   float64          `json:"elapsed_ms"`
}

// LinearRequest is the body of POST /v1/solve/linear:
// X[g(i)] := a[i]·X[f(i)] + b[i], with Extended selecting the paper's
// X[g] := X[g] + a·X[f] + b rewriting. Linear requests are eligible for
// server-side batch coalescing.
type LinearRequest struct {
	M        int            `json:"m"`
	G        []int          `json:"g"`
	F        []int          `json:"f"`
	A        []float64      `json:"a"`
	B        []float64      `json:"b"`
	X0       []float64      `json:"x0"`
	Extended bool           `json:"extended,omitempty"`
	Opts     ir.OptionsWire `json:"opts,omitempty"`
}

// MoebiusRequest is the body of POST /v1/solve/moebius — the full
// fractional-linear form X[g] := (a·X[f]+b)/(c·X[f]+d). Eligible for
// batch coalescing.
type MoebiusRequest struct {
	M    int            `json:"m"`
	G    []int          `json:"g"`
	F    []int          `json:"f"`
	A    []float64      `json:"a"`
	B    []float64      `json:"b"`
	C    []float64      `json:"c"`
	D    []float64      `json:"d"`
	X0   []float64      `json:"x0"`
	Opts ir.OptionsWire `json:"opts,omitempty"`
}

// MoebiusResponse is shared by the linear and moebius endpoints. BatchSize
// reports how many requests the server coalesced into the dispatch that
// solved this one (1 = solved alone).
type MoebiusResponse struct {
	Values    []float64 `json:"values"`
	BatchSize int       `json:"batch_size"`
	ElapsedMs float64   `json:"elapsed_ms"`
}

// LoopRequest is the body of POST /v1/solve/loop — a sequential loop in the
// DSL, classified and executed with the matching parallel strategy.
type LoopRequest struct {
	Loop    string               `json:"loop"`
	N       int                  `json:"n,omitempty"`
	Arrays  map[string][]float64 `json:"arrays,omitempty"`
	Scalars map[string]float64   `json:"scalars,omitempty"`
	Opts    ir.OptionsWire       `json:"opts,omitempty"`
}

// LoopResponse returns the classification and the arrays after execution.
type LoopResponse struct {
	Analysis  string               `json:"analysis"`
	Strategy  string               `json:"strategy"`
	Arrays    map[string][]float64 `json:"arrays"`
	ElapsedMs float64              `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is the HTTP status, repeated so logs of bodies are self-contained.
	Code int `json:"code"`
}

// intOp and floatOp resolve the endpoints' operator specs through the
// registry that now lives next to the API it serves (ir.IntOpByName /
// ir.FloatOpByName); every registered operator satisfies CommutativeMonoid,
// so one table serves both endpoints (SolveOrdinary only needs the
// Semigroup subset).
func intOp(name string, mod int64) (ir.CommutativeMonoid[int64], error) {
	return ir.IntOpByName(name, mod)
}

func floatOp(name string) (ir.CommutativeMonoid[float64], error) {
	return ir.FloatOpByName(name)
}

// OpNames lists every operator spec the solve endpoints accept, for error
// messages and docs.
func OpNames() []string { return ir.OpNames() }

// decodeInitInt parses the raw init array as int64s, rejecting non-integral
// values rather than truncating.
func decodeInitInt(raw json.RawMessage) ([]int64, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing \"init\"")
	}
	var vals []json.Number
	if err := json.Unmarshal(raw, &vals); err != nil {
		return nil, fmt.Errorf("bad \"init\": %v", err)
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		x, err := v.Int64()
		if err != nil {
			return nil, fmt.Errorf("init[%d] = %s is not an int64 (op has integer domain)", i, v)
		}
		out[i] = x
	}
	return out, nil
}

// decodeInitFloat parses the raw init array as float64s, rejecting
// non-finite values up front (the solvers would reject them anyway).
func decodeInitFloat(raw json.RawMessage) ([]float64, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing \"init\"")
	}
	var out []float64
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("bad \"init\": %v", err)
	}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("init[%d] = %v is not finite", i, v)
		}
	}
	return out, nil
}
