package server

import (
	"encoding/json"
	"fmt"
	"math"

	"indexedrec/ir"
)

// API version prefix for all solve endpoints.
const APIPrefix = "/v1/solve/"

// OrdinaryRequest is the body of POST /v1/solve/ordinary — an ordinary
// system (H = G), an operator spec, and the initial array. Init is raw so
// int64 operators decode without float64 truncation.
type OrdinaryRequest struct {
	System ir.SystemWire   `json:"system"`
	Op     string          `json:"op"`
	Mod    int64           `json:"mod,omitempty"`
	Init   json.RawMessage `json:"init"`
	Opts   ir.OptionsWire  `json:"opts,omitempty"`
}

// OrdinaryResponse mirrors ir.OrdinaryResult on the wire; exactly one of
// ValuesInt/ValuesFloat is set, matching the operator's domain.
type OrdinaryResponse struct {
	ValuesInt   []int64   `json:"values_int,omitempty"`
	ValuesFloat []float64 `json:"values_float,omitempty"`
	// Cells echoes the touched-cell list of a sparse-encoded request:
	// values_int/values_float are then in compact order, with entry i the
	// final value of global cell Cells[i]. Empty for dense requests, whose
	// values tile the whole array.
	Cells     []int   `json:"cells,omitempty"`
	Rounds    int     `json:"rounds"`
	Combines  int64   `json:"combines"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// GeneralRequest is the body of POST /v1/solve/general — any G, F, H with a
// commutative-monoid operator.
type GeneralRequest struct {
	System ir.SystemWire   `json:"system"`
	Op     string          `json:"op"`
	Mod    int64           `json:"mod,omitempty"`
	Init   json.RawMessage `json:"init"`
	// WithPowers requests the symbolic power traces (the paper's Fig. 5
	// artifact) in the response; they can be large, so default off.
	WithPowers bool           `json:"with_powers,omitempty"`
	Opts       ir.OptionsWire `json:"opts,omitempty"`
}

// GeneralResponse mirrors ir.GeneralResult on the wire.
type GeneralResponse struct {
	ValuesInt   []int64   `json:"values_int,omitempty"`
	ValuesFloat []float64 `json:"values_float,omitempty"`
	// Cells echoes a sparse-encoded request's touched-cell list; values
	// (and power-trace rows) are then in compact order over these global
	// cells. Empty for dense requests.
	Cells     []int            `json:"cells,omitempty"`
	Powers    [][]ir.PowerTerm `json:"powers,omitempty"`
	CAPRounds int              `json:"cap_rounds"`
	ElapsedMs float64          `json:"elapsed_ms"`
}

// LinearRequest is the body of POST /v1/solve/linear:
// X[g(i)] := a[i]·X[f(i)] + b[i], with Extended selecting the paper's
// X[g] := X[g] + a·X[f] + b rewriting. Linear requests are eligible for
// server-side batch coalescing.
type LinearRequest struct {
	M        int            `json:"m"`
	G        []int          `json:"g"`
	F        []int          `json:"f"`
	A        []float64      `json:"a"`
	B        []float64      `json:"b"`
	X0       []float64      `json:"x0"`
	Extended bool           `json:"extended,omitempty"`
	Opts     ir.OptionsWire `json:"opts,omitempty"`
}

// MoebiusRequest is the body of POST /v1/solve/moebius — the full
// fractional-linear form X[g] := (a·X[f]+b)/(c·X[f]+d). Eligible for
// batch coalescing.
type MoebiusRequest struct {
	M    int            `json:"m"`
	G    []int          `json:"g"`
	F    []int          `json:"f"`
	A    []float64      `json:"a"`
	B    []float64      `json:"b"`
	C    []float64      `json:"c"`
	D    []float64      `json:"d"`
	X0   []float64      `json:"x0"`
	Opts ir.OptionsWire `json:"opts,omitempty"`
}

// MoebiusResponse is shared by the linear and moebius endpoints. BatchSize
// reports how many requests the server coalesced into the dispatch that
// solved this one (1 = solved alone).
type MoebiusResponse struct {
	Values    []float64 `json:"values"`
	BatchSize int       `json:"batch_size"`
	ElapsedMs float64   `json:"elapsed_ms"`
}

// Grid2DRequest is the body of POST /v1/solve/grid2d — a 2-D recurrence
// grid solved by anti-diagonal wavefronts over the system's semiring.
type Grid2DRequest struct {
	System ir.Grid2DSystem `json:"system"`
	Opts   ir.OptionsWire  `json:"opts,omitempty"`
}

// Grid2DResponse returns the solved interior grid, row-major Rows×Cols.
type Grid2DResponse struct {
	Values    []float64 `json:"values"`
	Rounds    int       `json:"rounds"`
	Cells     int64     `json:"cells"`
	ElapsedMs float64   `json:"elapsed_ms"`
}

// LoopRequest is the body of POST /v1/solve/loop — a sequential loop in the
// DSL, classified and executed with the matching parallel strategy.
type LoopRequest struct {
	Loop    string               `json:"loop"`
	N       int                  `json:"n,omitempty"`
	Arrays  map[string][]float64 `json:"arrays,omitempty"`
	Scalars map[string]float64   `json:"scalars,omitempty"`
	Opts    ir.OptionsWire       `json:"opts,omitempty"`
}

// LoopResponse returns the classification and the arrays after execution.
type LoopResponse struct {
	Analysis  string               `json:"analysis"`
	Strategy  string               `json:"strategy"`
	Arrays    map[string][]float64 `json:"arrays"`
	ElapsedMs float64              `json:"elapsed_ms"`
}

// ShardPrefix is the worker-role API prefix: coordinators scatter compiled
// plan slices to POST /v1/shard/solve.
const ShardPrefix = "/v1/shard/"

// ShardWire is the JSON form of an ir.Shard.
type ShardWire struct {
	// Lo and Hi bound the half-open slice of the plan's shard domain
	// (chains for the ordinary family, cells otherwise).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ShardRequest is the body of POST /v1/shard/solve: the system's structure
// (so the worker can compile or cache-load the plan by fingerprint), one
// shard of its domain, and the full PlanData the plan replays against.
// The Möbius family posts its coefficients in A..D/X0 and leaves Op/Init
// empty; ordinary and general post Op/Mod/Init and leave the arrays empty.
type ShardRequest struct {
	// Family names the solver family: "ordinary", "general", "moebius" or
	// "grid2d".
	Family string `json:"family"`
	// System carries the index maps; the Möbius family uses M, G, F with
	// H absent.
	System ir.SystemWire `json:"system"`
	// Shard is the slice of the plan's shard domain to execute.
	Shard ShardWire `json:"shard"`
	// Op, Mod and Init feed ordinary/general replays (see OrdinaryRequest).
	Op   string          `json:"op,omitempty"`
	Mod  int64           `json:"mod,omitempty"`
	Init json.RawMessage `json:"init,omitempty"`
	// A, B, C, D and X0 feed Möbius replays (nil C, D = the affine form).
	A  []float64 `json:"a,omitempty"`
	B  []float64 `json:"b,omitempty"`
	C  []float64 `json:"c,omitempty"`
	D  []float64 `json:"d,omitempty"`
	X0 []float64 `json:"x0,omitempty"`
	// Grid feeds grid2d replays: a contiguous row band of the full grid
	// with its halo boundaries already folded into North/West/NorthWest;
	// Shard records the band's [lo, hi) row range in the original grid and
	// System is ignored.
	Grid *ir.Grid2DSystem `json:"grid,omitempty"`
	// Opts carries procs/deadline/exponent options as elsewhere.
	Opts ir.OptionsWire `json:"opts,omitempty"`
}

// ShardResponse mirrors ir.ShardSolution on the wire, plus timing.
type ShardResponse struct {
	// Shard echoes the executed slice.
	Shard ShardWire `json:"shard"`
	// Cells lists a sparse (ordinary) shard's owned cells, ascending.
	Cells []int `json:"cells,omitempty"`
	// ValuesInt / ValuesFloat / Values carry the slice values; exactly one
	// is set, as in ir.ShardSolution.
	ValuesInt   []int64   `json:"values_int,omitempty"`
	ValuesFloat []float64 `json:"values_float,omitempty"`
	Values      []float64 `json:"values,omitempty"`
	// ElapsedMs is the worker-side solve time.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// ClusterPrefix is the coordinator's membership API prefix: workers
// self-register at POST /v1/cluster/register, renew their lease at POST
// /v1/cluster/heartbeat, and leave gracefully at POST
// /v1/cluster/deregister; GET /v1/cluster/workers reports the fleet view.
const ClusterPrefix = "/v1/cluster/"

// ClusterTokenHeader carries the shared registration token on the
// membership endpoints when the coordinator was started with one;
// requests without the matching token answer 401.
const ClusterTokenHeader = "X-IR-Cluster-Token"

// RegisterRequest is the body of POST /v1/cluster/register: a worker
// announcing itself to the coordinator.
type RegisterRequest struct {
	// Addr is the address the coordinator should dial the worker on
	// ("host:port" or a full base URL); it is also the membership key.
	Addr string `json:"addr"`
	// Version is the worker's build identification, shown in the fleet
	// view for mixed-fleet diagnosis.
	Version string `json:"version,omitempty"`
}

// RegisterResponse acknowledges a registration with the granted lease.
type RegisterResponse struct {
	// LeaseMs is how long the membership lease lasts; the worker should
	// heartbeat at roughly a third of it.
	LeaseMs int64 `json:"lease_ms"`
}

// MemberRequest is the body of POST /v1/cluster/heartbeat and
// /v1/cluster/deregister: the worker's registered address.
type MemberRequest struct {
	// Addr is the address the member registered under.
	Addr string `json:"addr"`
}

// TenantHeader is the request header naming the tenant for per-tenant
// admission; absent or empty means the default tenant.
const TenantHeader = "X-IR-Tenant"

// VersionResponse is the body of GET /version — build identification for
// mixed-version cluster diagnosis.
type VersionResponse struct {
	// Version is the main module version (or "(devel)" for local builds).
	Version string `json:"version"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
	// Revision and Modified identify the VCS state when embedded.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is the HTTP status, repeated so logs of bodies are self-contained.
	Code int `json:"code"`
}

// intOp and floatOp resolve the endpoints' operator specs through the
// registry that now lives next to the API it serves (ir.IntOpByName /
// ir.FloatOpByName); every registered operator satisfies CommutativeMonoid,
// so one table serves both endpoints (SolveOrdinary only needs the
// Semigroup subset).
func intOp(name string, mod int64) (ir.CommutativeMonoid[int64], error) {
	return ir.IntOpByName(name, mod)
}

func floatOp(name string) (ir.CommutativeMonoid[float64], error) {
	return ir.FloatOpByName(name)
}

// OpNames lists every operator spec the solve endpoints accept, for error
// messages and docs.
func OpNames() []string { return ir.OpNames() }

// DecodeInitInt parses the raw init array as int64s, rejecting non-integral
// values rather than truncating.
func DecodeInitInt(raw json.RawMessage) ([]int64, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing \"init\"")
	}
	var vals []json.Number
	if err := json.Unmarshal(raw, &vals); err != nil {
		return nil, fmt.Errorf("bad \"init\": %v", err)
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		x, err := v.Int64()
		if err != nil {
			return nil, fmt.Errorf("init[%d] = %s is not an int64 (op has integer domain)", i, v)
		}
		out[i] = x
	}
	return out, nil
}

// DecodeInitFloat parses the raw init array as float64s, rejecting
// non-finite values up front (the solvers would reject them anyway).
func DecodeInitFloat(raw json.RawMessage) ([]float64, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing \"init\"")
	}
	var out []float64
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("bad \"init\": %v", err)
	}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("init[%d] = %v is not finite", i, v)
		}
	}
	return out, nil
}
