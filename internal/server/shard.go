package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"indexedrec/ir"
)

// The worker role. A coordinator (internal/cluster) cuts a compiled plan's
// shard domain with ir.Plan.Partition and scatters the slices here; each
// worker compiles — or cache-loads, since the request carries the same
// structure the fingerprint hashes — the plan and executes its slice with
// ir.Plan.SolveShardCtx. Shard solves go through the same admission pool,
// deadlines, and load-shedding as whole solves, so a worker that also takes
// direct traffic degrades both honestly rather than either silently.

// execShard validates a ShardRequest and returns the pool closure that
// resolves the plan (via the shared cache) and executes the slice.
func (s *Server) execShard(body []byte) (func(ctx context.Context) (any, error), error) {
	var req ShardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}
	fam, err := ir.FamilyByName(req.Family)
	if err != nil {
		return nil, err
	}
	sh := ir.Shard{Lo: req.Shard.Lo, Hi: req.Shard.Hi}
	if sh.Lo < 0 || sh.Hi < sh.Lo {
		return nil, fmt.Errorf("%w: [%d, %d)", ir.ErrShard, sh.Lo, sh.Hi)
	}
	if fam == ir.FamilyMoebius {
		return s.execShardMoebius(&req, sh)
	}
	if fam == ir.FamilyGrid2D {
		return s.execShardGrid2D(&req, sh)
	}
	if req.System.IsSparse() {
		return s.execShardSparse(&req, fam, sh)
	}

	sys, opt, err := s.systemAndOptions(req.System, req.Opts)
	if err != nil {
		return nil, err
	}
	var bits int
	if fam == ir.FamilyGeneral {
		bits = s.cfg.MaxExponentBits
		if b := req.Opts.MaxExponentBits; b > 0 && b < bits {
			bits = b
		}
	} else if !sys.Ordinary() {
		return nil, fmt.Errorf("%w: ordinary shard requires H = G", ir.ErrInvalidSystem)
	}
	data := ir.PlanData{Op: req.Op, Mod: req.Mod, Opts: opt}
	iop, err := intOp(req.Op, req.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		if data.InitInt, err = DecodeInitInt(req.Init); err != nil {
			return nil, err
		}
		if len(data.InitInt) != sys.M {
			return nil, fmt.Errorf("len(init) = %d, want m = %d", len(data.InitInt), sys.M)
		}
	} else {
		fop, err := floatOp(req.Op)
		if err != nil {
			return nil, err
		}
		if fop == nil {
			return nil, fmt.Errorf("unknown op %q (one of %s)", req.Op, strings.Join(OpNames(), ", "))
		}
		if data.InitFloat, err = DecodeInitFloat(req.Init); err != nil {
			return nil, err
		}
		if len(data.InitFloat) != sys.M {
			return nil, fmt.Errorf("len(init) = %d, want m = %d", len(data.InitFloat), sys.M)
		}
	}
	fp := ir.PlanFingerprint(fam, sys.N, sys.M, sys.G, sys.F, sys.H, bits)
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		p, err := PlanFor(s.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
			return ir.CompileCtx(ctx, sys, ir.CompileOptions{
				Family: fam, Procs: opt.Procs, MaxExponentBits: bits,
			})
		})
		if err != nil {
			return nil, err
		}
		part, err := p.SolveShardCtx(ctx, data, sh)
		if err != nil {
			return nil, err
		}
		return shardResponse(part, start), nil
	}, nil
}

// execShardSparse is execShard's sparse arm: the request ships the compact
// structure plus the touched-cell list — O(n) on the wire however large the
// global array — and a compact init, and the worker resolves the compact
// plan through the shared cache keyed by the sparse fingerprint (one key for
// every shard of a solve, so rendezvous affinity warms exactly as for dense
// scatters). Shard ranges address the compact plan's chain/cell domain, and
// the response's cells/values are in compact ids like any ordinary shard's;
// the coordinator already holds the touched-cell list to map them globally.
// Shard solves always replay the compact plan — the coordinator decides
// sparse-vs-dense before scattering, so the kill switch gates the scatter,
// not the worker.
func (s *Server) execShardSparse(req *ShardRequest, fam ir.Family, sh ir.Shard) (func(ctx context.Context) (any, error), error) {
	sp, opt, err := s.sparseAndOptions(req.System, req.Opts)
	if err != nil {
		return nil, err
	}
	var bits int
	if fam == ir.FamilyGeneral {
		bits = s.cfg.MaxExponentBits
		if b := req.Opts.MaxExponentBits; b > 0 && b < bits {
			bits = b
		}
	} else if !sp.Compact.Ordinary() {
		return nil, fmt.Errorf("%w: ordinary shard requires H = G", ir.ErrInvalidSparse)
	}
	data := ir.PlanData{Op: req.Op, Mod: req.Mod, Opts: opt}
	iop, err := intOp(req.Op, req.Mod)
	if err != nil {
		return nil, err
	}
	if iop != nil {
		if data.InitInt, err = DecodeInitInt(req.Init); err != nil {
			return nil, err
		}
		if len(data.InitInt) != sp.NumCells() {
			return nil, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d", ir.ErrInvalidSparse, len(data.InitInt), sp.NumCells())
		}
	} else {
		fop, err := floatOp(req.Op)
		if err != nil {
			return nil, err
		}
		if fop == nil {
			return nil, fmt.Errorf("unknown op %q (one of %s)", req.Op, strings.Join(OpNames(), ", "))
		}
		if data.InitFloat, err = DecodeInitFloat(req.Init); err != nil {
			return nil, err
		}
		if len(data.InitFloat) != sp.NumCells() {
			return nil, fmt.Errorf("%w: len(init) = %d, want touched-cell count %d", ir.ErrInvalidSparse, len(data.InitFloat), sp.NumCells())
		}
	}
	fp := ir.SparseFingerprint(fam, sp, bits)
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		p, err := PlanFor(s.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
			return ir.CompileSparseCtx(ctx, sp, ir.CompileOptions{
				Family: fam, Procs: opt.Procs, MaxExponentBits: bits,
			})
		})
		if err != nil {
			return nil, err
		}
		part, err := p.SolveShardCtx(ctx, data, sh)
		if err != nil {
			return nil, err
		}
		return shardResponse(part, start), nil
	}, nil
}

// execShardGrid2D is execShard's grid2d-family arm. A coordinator band is a
// self-contained sub-grid: a contiguous row slice of the full system whose
// North/NorthWest boundaries carry the halo (the previous band's last output
// row), so the worker solves it like any whole grid — through the plan
// cache, keyed by the band's own shape — and Shard only echoes the band's
// row range in the original grid.
func (s *Server) execShardGrid2D(req *ShardRequest, sh ir.Shard) (func(ctx context.Context) (any, error), error) {
	grid := req.Grid
	if grid == nil {
		return nil, fmt.Errorf("%w: grid2d shard request missing grid", ir.ErrInvalidSystem)
	}
	if cells := int64(grid.Rows) * int64(grid.Cols); grid.Rows > 0 && grid.Cols > 0 && cells > int64(s.cfg.MaxN) {
		return nil, fmt.Errorf("grid %dx%d = %d cells exceeds the server limit %d",
			grid.Rows, grid.Cols, cells, s.cfg.MaxN)
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if sh.Hi-sh.Lo != grid.Rows {
		return nil, fmt.Errorf("%w: band [%d, %d) carries %d rows", ir.ErrShard, sh.Lo, sh.Hi, grid.Rows)
	}
	opt, err := req.Opts.Options()
	if err != nil {
		return nil, err
	}
	opt.Procs = s.clampProcs(opt.Procs)
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		res, err := solveGrid2D(ctx, s, grid, opt)
		if err != nil {
			return nil, err
		}
		return &ShardResponse{
			Shard:     ShardWire{Lo: sh.Lo, Hi: sh.Hi},
			Values:    res.Values,
			ElapsedMs: ms(start),
		}, nil
	}, nil
}

// execShardMoebius is execShard's Möbius-family arm: coefficients travel in
// A..D/X0, structure in System.M/G/F, and the compiled plan is the shadow
// ordinary system over 2x2 matrices.
func (s *Server) execShardMoebius(req *ShardRequest, sh ir.Shard) (func(ctx context.Context) (any, error), error) {
	g, f, m := req.System.G, req.System.F, req.System.M
	if len(g) > s.cfg.MaxN {
		return nil, fmt.Errorf("n = %d exceeds the server limit %d", len(g), s.cfg.MaxN)
	}
	opt, err := req.Opts.Options()
	if err != nil {
		return nil, err
	}
	opt.Procs = s.clampProcs(opt.Procs)
	data := ir.PlanData{A: req.A, B: req.B, C: req.C, D: req.D, X0: req.X0, Opts: opt}
	fp := ir.PlanFingerprint(ir.FamilyMoebius, len(g), m, g, f, nil, 0)
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		p, err := PlanFor(s.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
			return ir.CompileMoebiusCtx(ctx, m, g, f)
		})
		if err != nil {
			return nil, err
		}
		part, err := p.SolveShardCtx(ctx, data, sh)
		if err != nil {
			return nil, err
		}
		return shardResponse(part, start), nil
	}, nil
}

// shardResponse packs a shard solution for the wire.
func shardResponse(part *ir.ShardSolution, start time.Time) ShardResponse {
	return ShardResponse{
		Shard:       ShardWire{Lo: part.Shard.Lo, Hi: part.Shard.Hi},
		Cells:       part.Cells,
		ValuesInt:   part.ValuesInt,
		ValuesFloat: part.ValuesFloat,
		Values:      part.Values,
		ElapsedMs:   ms(start),
	}
}
