package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"indexedrec/ir"
)

// checkGoroutines snapshots the goroutine count and returns an assertion
// that it settles back (exiting workers need a beat to be reaped).
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: started with %d, still %d", base, runtime.NumGoroutine())
	}
}

// post sends a JSON body and returns status, headers and decoded-into-map
// body bytes.
func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// chainLinear builds a length-n linear chain request: X[i] := X[i-1] + 1
// over m = n+1 cells, whose solution is X = [1, 2, ..., n+1].
func chainLinear(n int) LinearRequest {
	g := make([]int, n)
	f := make([]int, n)
	a := make([]float64, n)
	b := make([]float64, n)
	x0 := make([]float64, n+1)
	x0[0] = 1
	for i := 0; i < n; i++ {
		g[i] = i + 1
		f[i] = i
		a[i] = 1
		b[i] = 1
	}
	return LinearRequest{M: n + 1, G: g, F: f, A: a, B: b, X0: x0}
}

// newTestServer starts a server over httptest and returns it plus a
// teardown func (also registered as a cleanup backstop — Shutdown is
// idempotent, so calling it early inside a test body is fine and lets the
// goroutine-leak assertions run after teardown).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	down := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}
	t.Cleanup(down)
	return s, ts, down
}

// TestCoalescing fires 32 concurrent linear requests and asserts the
// coalescer demonstrably batched them (batch-size metric > 1) while every
// request still got its own correct answer.
func TestCoalescing(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		s, ts, down := newTestServer(t, Config{
			BatchWindow: 25 * time.Millisecond,
			MaxBatch:    8,
			QueueDepth:  64,
		})
		defer down()
		const reqs = 32
		var wg sync.WaitGroup
		errs := make(chan error, reqs)
		for k := 0; k < reqs; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				n := 8 + k%5 // varied shapes coalesce fine — systems are independent
				resp, data := post(t, ts.URL+APIPrefix+"linear", chainLinear(n))
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("request %d: HTTP %d: %s", k, resp.StatusCode, data)
					return
				}
				var out MoebiusResponse
				if err := json.Unmarshal(data, &out); err != nil {
					errs <- fmt.Errorf("request %d: %v", k, err)
					return
				}
				for i := 0; i <= n; i++ {
					if out.Values[i] != float64(i+1) {
						errs <- fmt.Errorf("request %d: X[%d] = %v, want %d", k, i, out.Values[i], i+1)
						return
					}
				}
			}(k)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		batches, coalesced := s.BatchStats()
		if coalesced != reqs {
			t.Errorf("coalesced = %d, want %d", coalesced, reqs)
		}
		if batches >= reqs {
			t.Errorf("batches = %d for %d requests — nothing coalesced", batches, reqs)
		}
		if got := s.metrics.batchSize.MaxObservedBound(); got < 2 {
			t.Errorf("max batch-size bucket = %v, want >= 2 (a batch with >1 request)", got)
		}
		t.Logf("%d requests coalesced into %d batches (max bucket %v)",
			coalesced, batches, s.metrics.batchSize.MaxObservedBound())
	}()
	leak()
}

// TestOverloadSheds saturates a tiny queue and asserts shed requests get
// 429 + Retry-After while every accepted request still succeeds.
func TestOverloadSheds(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		s, ts, down := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
		defer down()
		hold := make(chan struct{})
		s.testHook = func() { <-hold }

		sys := OrdinaryRequest{
			System: systemWireChain(16),
			Op:     "int64-add",
			Init:   json.RawMessage(`[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]`),
		}
		const reqs = 12
		type result struct {
			code       int
			retryAfter string
			body       []byte
		}
		results := make(chan result, reqs)
		var wg sync.WaitGroup
		for k := 0; k < reqs; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, data := post(t, ts.URL+APIPrefix+"ordinary", sys)
				results <- result{resp.StatusCode, resp.Header.Get("Retry-After"), data}
			}()
		}
		// Give every request time to reach admission, then release the
		// single worker.
		time.Sleep(300 * time.Millisecond)
		close(hold)
		wg.Wait()
		close(results)

		var ok, shed int
		for r := range results {
			switch r.code {
			case http.StatusOK:
				ok++
				var out OrdinaryResponse
				if err := json.Unmarshal(r.body, &out); err != nil {
					t.Fatalf("bad 200 body: %v", err)
				}
				if out.ValuesInt[16] != 17 {
					t.Errorf("accepted request got wrong answer: %v", out.ValuesInt)
				}
			case http.StatusTooManyRequests:
				shed++
				if r.retryAfter == "" {
					t.Error("429 without Retry-After header")
				}
			default:
				t.Errorf("unexpected status %d: %s", r.code, r.body)
			}
		}
		if ok == 0 {
			t.Error("no request was accepted")
		}
		if shed == 0 {
			t.Error("no request was shed despite queue depth 1 and a held worker")
		}
		if got := s.metrics.shed.Value("ordinary"); got != int64(shed) {
			t.Errorf("shed metric = %d, want %d", got, shed)
		}
		t.Logf("%d accepted, %d shed", ok, shed)
	}()
	leak()
}

// systemWireChain builds the ordinary chain system A[i+1] = A[i] + A[i+1]
// over m = n+1 cells as wire JSON.
func systemWireChain(n int) (w ir.SystemWire) {
	w.M = n + 1
	w.N = n
	for i := 0; i < n; i++ {
		w.G = append(w.G, i+1)
		w.F = append(w.F, i)
	}
	return w
}

// TestDrain starts a long solve, begins Shutdown, and asserts /readyz flips
// to 503 and new solves are refused while the in-flight solve still
// completes — then everything exits with no leaked goroutines.
func TestDrain(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		s := New(Config{Workers: 1, QueueDepth: 4})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		hold := make(chan struct{})
		s.testHook = func() { <-hold }

		// Readiness starts green.
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz before drain: HTTP %d", resp.StatusCode)
		}

		inflightDone := make(chan []byte, 1)
		go func() {
			resp, data := post(t, ts.URL+APIPrefix+"linear", chainLinear(8))
			if resp.StatusCode != http.StatusOK {
				inflightDone <- []byte(fmt.Sprintf("HTTP %d: %s", resp.StatusCode, data))
				return
			}
			inflightDone <- nil
		}()
		// Wait until the solve is actually running (held in the hook).
		waitFor(t, time.Second, func() bool { return s.metrics.inflight.Value() >= 1 && s.pool.depth() == 0 })

		shutdownDone := make(chan error, 1)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			shutdownDone <- s.Shutdown(ctx)
		}()
		// readyz flips to 503 with the solve still in flight.
		waitFor(t, time.Second, func() bool {
			resp, err := http.Get(ts.URL + "/readyz")
			if err != nil {
				return false
			}
			defer resp.Body.Close()
			return resp.StatusCode == http.StatusServiceUnavailable
		})
		// New solves are refused during drain.
		resp2, data := post(t, ts.URL+APIPrefix+"linear", chainLinear(4))
		if resp2.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("solve during drain: HTTP %d (%s), want 503", resp2.StatusCode, data)
		}
		if resp2.Header.Get("Retry-After") == "" {
			t.Error("503 during drain without Retry-After")
		}

		close(hold) // let the in-flight solve finish
		if msg := <-inflightDone; msg != nil {
			t.Errorf("in-flight solve failed during drain: %s", msg)
		}
		if err := <-shutdownDone; err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	leak()
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestRequestValidation exercises the 4xx paths.
func TestRequestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name     string
		endpoint string
		body     string
		want     int
	}{
		{"malformed json", "linear", `{"m":`, http.StatusBadRequest},
		{"index out of range", "linear", `{"m":2,"g":[5],"f":[0],"a":[1],"b":[1],"x0":[1,0]}`, http.StatusBadRequest},
		{"duplicate g", "linear", `{"m":3,"g":[1,1],"f":[0,0],"a":[1,1],"b":[1,1],"x0":[1,0,0]}`, http.StatusBadRequest},
		{"nonfinite coefficient", "moebius", `{"m":2,"g":[1],"f":[0],"a":[1e999],"b":[0],"c":[0],"d":[1],"x0":[1,0]}`, http.StatusBadRequest},
		{"x0 length", "linear", `{"m":3,"g":[1],"f":[0],"a":[1],"b":[1],"x0":[1]}`, http.StatusBadRequest},
		{"unknown op", "ordinary", `{"system":{"m":2,"n":1,"g":[1],"f":[0]},"op":"no-such","init":[1,2]}`, http.StatusBadRequest},
		{"mod missing", "ordinary", `{"system":{"m":2,"n":1,"g":[1],"f":[0]},"op":"mul-mod","init":[1,2]}`, http.StatusBadRequest},
		{"float init for int op", "ordinary", `{"system":{"m":2,"n":1,"g":[1],"f":[0]},"op":"int64-add","init":[1.5,2]}`, http.StatusBadRequest},
		{"general on ordinary endpoint", "ordinary", `{"system":{"m":3,"n":1,"g":[1],"f":[0],"h":[2]},"op":"int64-add","init":[1,2,3]}`, http.StatusBadRequest},
		{"loop parse error", "loop", `{"loop":"for i = 1 to"}`, http.StatusBadRequest},
		{"loop missing", "loop", `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+APIPrefix+tc.endpoint, "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("HTTP %d, want %d (%s)", resp.StatusCode, tc.want, data)
			}
			var er ErrorResponse
			if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
				t.Errorf("error body not an ErrorResponse: %s", data)
			}
		})
	}
}

// TestDivisionByZero: a finite Möbius system whose chain divides by zero is
// a data-dependent failure — 422, and (because it's batched) its batch
// neighbors must still succeed via the per-item fallback.
func TestDivisionByZero(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{BatchWindow: 25 * time.Millisecond, MaxBatch: 8})
	// x[1] = (0*x[0] + 1) / (1*x[0] + 0) = 1/x[0] with x0[0] = 0 → 1/0.
	bad := MoebiusRequest{M: 2, G: []int{1}, F: []int{0},
		A: []float64{0}, B: []float64{1}, C: []float64{1}, D: []float64{0},
		X0: []float64{0, 0}}
	var wg sync.WaitGroup
	codes := make(chan int, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		resp, _ := post(t, ts.URL+APIPrefix+"moebius", bad)
		codes <- resp.StatusCode
	}()
	var goodValues []float64
	go func() {
		defer wg.Done()
		resp, data := post(t, ts.URL+APIPrefix+"linear", chainLinear(4))
		codes <- -resp.StatusCode // negative marks the good request
		var out MoebiusResponse
		_ = json.Unmarshal(data, &out)
		goodValues = out.Values
	}()
	wg.Wait()
	close(codes)
	for c := range codes {
		switch {
		case c == http.StatusUnprocessableEntity:
		case c == -http.StatusOK:
		case c < 0:
			t.Errorf("good request got HTTP %d, want 200", -c)
		default:
			t.Errorf("bad request got HTTP %d, want 422", c)
		}
	}
	if len(goodValues) == 5 && goodValues[4] != 5 {
		t.Errorf("good request values = %v", goodValues)
	}
	// The two coalesce only when they land in one window; either way the
	// bad one must not have poisoned the good one (asserted above). If
	// they did coalesce, the fallback counter recorded it.
	t.Logf("batch fallbacks: %d", s.metrics.batchFallbacks.Value())
}

// TestDeadline asserts a request-level deadline surfaces as 504.
func TestDeadline(t *testing.T) {
	leak := checkGoroutines(t)
	func() {
		s, ts, down := newTestServer(t, Config{Workers: 1})
		release := make(chan struct{})
		var once sync.Once
		s.testHook = func() { <-release }
		defer down()
		defer once.Do(func() { close(release) })

		req := OrdinaryRequest{
			System: systemWireChain(4),
			Op:     "int64-add",
			Init:   json.RawMessage(`[1,1,1,1,1]`),
		}
		req.Opts.TimeoutMs = 30
		resp, data := post(t, ts.URL+APIPrefix+"ordinary", req)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("HTTP %d (%s), want 504", resp.StatusCode, data)
		}
		once.Do(func() { close(release) })
	}()
	leak()
}

// TestMetricsEndpoint asserts /metrics serves valid exposition including
// the contract families after traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	post(t, ts.URL+APIPrefix+"linear", chainLinear(4))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	text := string(data)
	checkExposition(t, text)
	for _, fam := range []string{
		"irserved_requests_total", "irserved_queue_depth", "irserved_queue_capacity",
		"irserved_shed_total", "irserved_batch_size", "irserved_solve_seconds",
		"irserved_batches_total", "irserved_ready", "irserved_inflight_requests",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("metrics missing family %s", fam)
		}
	}
	if !strings.Contains(text, `irserved_requests_total{code="200",endpoint="linear"} 1`) {
		t.Errorf("per-endpoint counter missing:\n%s", text)
	}
}

// TestEndpointsEndToEnd runs one request through each solve endpoint and
// checks the answers against the obvious closed forms.
func TestEndpointsEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	t.Run("ordinary", func(t *testing.T) {
		req := OrdinaryRequest{System: systemWireChain(8), Op: "int64-add",
			Init: json.RawMessage(`[1,1,1,1,1,1,1,1,1]`)}
		resp, data := post(t, ts.URL+APIPrefix+"ordinary", req)
		if resp.StatusCode != 200 {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		var out OrdinaryResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		// A[i+1] = A[i] + A[i+1] over all-ones: A = [1, 2, ..., 9].
		for i, v := range out.ValuesInt {
			if v != int64(i+1) {
				t.Fatalf("ValuesInt = %v", out.ValuesInt)
			}
		}
		if out.Rounds <= 0 || out.Combines <= 0 {
			t.Errorf("missing stats: %+v", out)
		}
	})

	t.Run("general", func(t *testing.T) {
		// A[0] = A[0]*A[0] repeated 3 times over A[0]=2: 2^(2^3) = 256.
		body := `{"system":{"m":1,"n":3,"g":[0,0,0],"f":[0,0,0],"h":[0,0,0]},` +
			`"op":"mul-mod","mod":1000003,"init":[2],"with_powers":true}`
		resp, err := http.Post(ts.URL+APIPrefix+"general", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		var out GeneralResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.ValuesInt[0] != 256 {
			t.Errorf("ValuesInt = %v, want [256]", out.ValuesInt)
		}
		if len(out.Powers) == 0 {
			t.Error("with_powers requested but Powers empty")
		}
	})

	t.Run("moebius", func(t *testing.T) {
		// x[i+1] = 1/(1 + x[i]) from x[0] = 1: continued-fraction
		// convergents of the golden ratio reciprocal.
		n := 6
		req := MoebiusRequest{M: n + 1, X0: make([]float64, n+1)}
		req.X0[0] = 1
		for i := 0; i < n; i++ {
			req.G = append(req.G, i+1)
			req.F = append(req.F, i)
			req.A = append(req.A, 0)
			req.B = append(req.B, 1)
			req.C = append(req.C, 1)
			req.D = append(req.D, 1)
		}
		resp, data := post(t, ts.URL+APIPrefix+"moebius", req)
		if resp.StatusCode != 200 {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		var out MoebiusResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		want := 1.0
		for i := 1; i <= n; i++ {
			want = 1 / (1 + want)
			if diff := out.Values[i] - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("x[%d] = %v, want %v", i, out.Values[i], want)
			}
		}
		if out.BatchSize < 1 {
			t.Errorf("BatchSize = %d, want >= 1", out.BatchSize)
		}
	})

	t.Run("extended linear", func(t *testing.T) {
		// X[i] := X[i] + X[i-1] + 0 over ramp x0 — prefix-sum-ish chain.
		n := 4
		req := LinearRequest{M: n + 1, Extended: true, X0: []float64{1, 1, 1, 1, 1}}
		for i := 0; i < n; i++ {
			req.G = append(req.G, i+1)
			req.F = append(req.F, i)
			req.A = append(req.A, 1)
			req.B = append(req.B, 0)
		}
		resp, data := post(t, ts.URL+APIPrefix+"linear", req)
		if resp.StatusCode != 200 {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		var out MoebiusResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		// Sequential: X[i] = X[i] + X[i-1]: X = [1, 2, 3, 4, 5].
		for i, v := range out.Values {
			if v != float64(i+1) {
				t.Fatalf("Values = %v", out.Values)
			}
		}
	})

	t.Run("loop", func(t *testing.T) {
		req := LoopRequest{
			Loop:   "for i = 1 to n do X[i] := X[i-1] + X[i]",
			N:      8,
			Arrays: map[string][]float64{"X": {1, 1, 1, 1, 1, 1, 1, 1, 1}},
		}
		resp, data := post(t, ts.URL+APIPrefix+"loop", req)
		if resp.StatusCode != 200 {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		var out LoopResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		for i, v := range out.Arrays["X"] {
			if v != float64(i+1) {
				t.Fatalf("X = %v", out.Arrays["X"])
			}
		}
		if out.Strategy == "" || out.Analysis == "" {
			t.Errorf("missing analysis/strategy: %+v", out)
		}
	})
}
