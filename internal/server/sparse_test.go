package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"indexedrec/ir"
)

// sparseChain builds a sparse ordinary chain of n iterations strided over a
// global array of m cells, plus its compact init [1, 1, ...].
func sparseChain(t *testing.T, n, stride, m int) (*ir.SparseSystem, []int64) {
	t.Helper()
	g := make([]int, n)
	f := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = stride * (i + 1)
		f[i] = stride * i
	}
	sp, err := ir.NewSparseSystem(m, g, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int64, sp.NumCells())
	for i := range init {
		init[i] = 1
	}
	return sp, init
}

func rawInts(t *testing.T, init []int64) json.RawMessage {
	t.Helper()
	blob, err := json.Marshal(init)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestSparseOrdinaryEndpoint solves a sparse-encoded system over HTTP and
// checks the compact values and cell echo against the in-process solver,
// then repeats the request and asserts the compiled sparse plan was reused
// from the cache (keyed by the sparse fingerprint).
func TestSparseOrdinaryEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	sp, init := sparseChain(t, 400, 997, 1_000_000)
	want, err := ir.SolveSparseOrdinaryCtx[int64](context.Background(), sp, ir.IntAdd{}, init, ir.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	req := OrdinaryRequest{System: ir.WireFromSparse(sp), Op: "int64-add", Init: rawInts(t, init)}
	var out OrdinaryResponse
	for pass := 0; pass < 2; pass++ {
		resp, data := post(t, ts.URL+APIPrefix+"ordinary", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: HTTP %d: %s", pass, resp.StatusCode, data)
		}
		out = OrdinaryResponse{}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.ValuesInt) != sp.NumCells() || len(out.Cells) != sp.NumCells() {
			t.Fatalf("pass %d: got %d values over %d cells, want %d", pass, len(out.ValuesInt), len(out.Cells), sp.NumCells())
		}
		for i, v := range out.ValuesInt {
			if v != want.Values[i] || out.Cells[i] != sp.Cells[i] {
				t.Fatalf("pass %d: compact id %d: value %d cell %d, want %d at %d",
					pass, i, v, out.Cells[i], want.Values[i], sp.Cells[i])
			}
		}
	}
	if hits := s.metrics.planHits.Value(); hits < 1 {
		t.Fatalf("plan cache hits = %d after identical sparse re-solve", hits)
	}
	if got := s.metrics.sparseSolves.Value("sparse"); got != 2 {
		t.Fatalf(`sparse_solves_total{mode="sparse"} = %d, want 2`, got)
	}
}

// TestSparseOrdinaryFloatEndpoint covers the float operator arm of the
// sparse path.
func TestSparseOrdinaryFloatEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	sp, _ := sparseChain(t, 16, 1000, 50_000)
	init := make([]float64, sp.NumCells())
	for i := range init {
		init[i] = 0.5
	}
	blob, _ := json.Marshal(init)
	req := OrdinaryRequest{System: ir.WireFromSparse(sp), Op: "float64-add", Init: blob}
	resp, data := post(t, ts.URL+APIPrefix+"ordinary", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var out OrdinaryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	// The chain sums 0.5 down 16 links: the last touched cell holds 8.5.
	last := out.ValuesFloat[len(out.ValuesFloat)-1]
	if last != 8.5 {
		t.Fatalf("chain tail = %v, want 8.5", last)
	}
}

// TestSparseGeneralEndpoint solves a sparse general (H != G) system with
// power traces and checks the cell echo plus global power-trace cell ids.
func TestSparseGeneralEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	n, stride := 10, 2000
	g := make([]int, n)
	f := make([]int, n)
	h := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = stride * (i + 2)
		f[i] = stride * (i + 1)
		h[i] = stride * i
	}
	sp, err := ir.NewSparseSystem(stride*(n+2)+1, g, f, h)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]int64, sp.NumCells())
	for i := range init {
		init[i] = 2
	}
	want, err := ir.SolveSparseGeneralCtx[int64](context.Background(), sp, ir.MulMod{M: 1_000_003}, init, ir.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	req := GeneralRequest{
		System: ir.WireFromSparse(sp), Op: "mul-mod", Mod: 1_000_003,
		Init: rawInts(t, init), WithPowers: true,
	}
	resp, data := post(t, ts.URL+APIPrefix+"general", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var out GeneralResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.ValuesInt) != sp.NumCells() || len(out.Cells) != sp.NumCells() {
		t.Fatalf("got %d values over %d cells, want %d", len(out.ValuesInt), len(out.Cells), sp.NumCells())
	}
	for i, v := range out.ValuesInt {
		if v != want.Values[i] {
			t.Fatalf("compact id %d: %d, want %d", i, v, want.Values[i])
		}
	}
	if len(out.Powers) == 0 {
		t.Fatal("with_powers returned no traces")
	}
	for _, terms := range out.Powers {
		for _, term := range terms {
			if term.Cell%stride != 0 {
				t.Fatalf("power trace names cell %d: not a global touched cell", term.Cell)
			}
		}
	}
}

// TestSparseErrorPaths posts malformed sparse encodings and asserts each is
// refused with 422 and a typed JSON error naming the sparse validation.
func TestSparseErrorPaths(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	sp, init := sparseChain(t, 8, 100, 2_000)
	good := ir.WireFromSparse(sp)

	mutate := func(fn func(w *ir.SystemWire)) ir.SystemWire {
		w := good
		w.Cells = append([]int(nil), good.Cells...)
		w.G = append([]int(nil), good.G...)
		fn(&w)
		return w
	}
	cases := []struct {
		name string
		req  OrdinaryRequest
	}{
		{"unsorted cells", OrdinaryRequest{
			System: mutate(func(w *ir.SystemWire) { w.Cells[0], w.Cells[1] = w.Cells[1], w.Cells[0] }),
			Op:     "int64-add", Init: rawInts(t, init)}},
		{"duplicate cells", OrdinaryRequest{
			System: mutate(func(w *ir.SystemWire) { w.Cells[1] = w.Cells[0] }),
			Op:     "int64-add", Init: rawInts(t, init)}},
		{"cell out of range", OrdinaryRequest{
			System: mutate(func(w *ir.SystemWire) { w.Cells[len(w.Cells)-1] = w.M }),
			Op:     "int64-add", Init: rawInts(t, init)}},
		{"compact id out of range", OrdinaryRequest{
			System: mutate(func(w *ir.SystemWire) { w.G[0] = len(w.Cells) }),
			Op:     "int64-add", Init: rawInts(t, init)}},
		{"init length mismatch", OrdinaryRequest{
			System: good, Op: "int64-add", Init: rawInts(t, init[:len(init)-1])}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+APIPrefix+"ordinary", tc.req)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("HTTP %d: %s, want 422", resp.StatusCode, data)
			}
			var e ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("error body not JSON: %s", data)
			}
			if e.Code != http.StatusUnprocessableEntity || !strings.Contains(e.Error, "sparse") {
				t.Fatalf("error %+v does not name the sparse validation", e)
			}
		})
	}
}

// TestSparseKillSwitchFallback disables the sparse fast path and asserts
// the dense fallback answers bit-identically (with the cell echo intact),
// is counted under its own metric mode, and refuses global sizes beyond
// the server's dense limit instead of materialising them.
func TestSparseKillSwitchFallback(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{MaxN: 5_000})
	sp, init := sparseChain(t, 16, 100, 2_000) // m = 2000 fits MaxN densely
	req := OrdinaryRequest{System: ir.WireFromSparse(sp), Op: "int64-add", Init: rawInts(t, init)}

	solve := func() OrdinaryResponse {
		t.Helper()
		resp, data := post(t, ts.URL+APIPrefix+"ordinary", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		var out OrdinaryResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	fast := solve()

	ir.SetSparseEnabled(false)
	defer ir.SetSparseEnabled(true)
	slow := solve()
	if fmt.Sprint(fast.ValuesInt) != fmt.Sprint(slow.ValuesInt) || fmt.Sprint(fast.Cells) != fmt.Sprint(slow.Cells) {
		t.Fatalf("kill-switch fallback diverges: %v vs %v", fast, slow)
	}
	if got := s.metrics.sparseSolves.Value("dense-fallback"); got != 1 {
		t.Fatalf(`sparse_solves_total{mode="dense-fallback"} = %d, want 1`, got)
	}
	if got := s.metrics.sparseSolves.Value("sparse"); got != 1 {
		t.Fatalf(`sparse_solves_total{mode="sparse"} = %d, want 1`, got)
	}

	// With the fast path off, a sparse system over a huge global array must
	// be refused up front — expanding it would be the exact DoS the sparse
	// form exists to avoid.
	big, bigInit := sparseChain(t, 16, 1000, 5_000_000)
	bigReq := OrdinaryRequest{System: ir.WireFromSparse(big), Op: "int64-add", Init: rawInts(t, bigInit)}
	resp, data := post(t, ts.URL+APIPrefix+"ordinary", bigReq)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("global m=5M accepted with the sparse path disabled: %s", data)
	}

	// Re-enabled, the same request sails through the compact path.
	ir.SetSparseEnabled(true)
	resp, data = post(t, ts.URL+APIPrefix+"ordinary", bigReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d with sparse enabled: %s", resp.StatusCode, data)
	}
}

// TestSparseShardEndpoint partitions a sparse plan and executes each shard
// over the /v1/shard/solve endpoint, then checks the shards tile the
// compact value set of a whole solve.
func TestSparseShardEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	ctx := context.Background()
	sp, init := sparseChain(t, 300, 500, 2_000_000)
	p, err := ir.CompileSparseCtx(ctx, sp, ir.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := p.SolveCtx(ctx, ir.PlanData{Op: "int64-add", InitInt: init})
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[int]int64)
	for _, sh := range p.Partition(3) {
		req := ShardRequest{
			Family: "ordinary",
			System: ir.WireFromSparse(sp),
			Shard:  ShardWire{Lo: sh.Lo, Hi: sh.Hi},
			Op:     "int64-add",
			Init:   rawInts(t, init),
		}
		resp, data := post(t, ts.URL+ShardPrefix+"solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard [%d,%d): HTTP %d: %s", sh.Lo, sh.Hi, resp.StatusCode, data)
		}
		var out ShardResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Cells) != len(out.ValuesInt) {
			t.Fatalf("shard cells/values mismatch: %d vs %d", len(out.Cells), len(out.ValuesInt))
		}
		for i, c := range out.Cells {
			if _, dup := got[c]; dup {
				t.Fatalf("compact cell %d owned by two shards", c)
			}
			got[c] = out.ValuesInt[i]
		}
	}
	// Shards own written cells; init-only cells (the chain seed) stay with
	// the coordinator's init.
	written := make(map[int]bool)
	for _, gi := range sp.Compact.G {
		written[gi] = true
	}
	if len(got) != len(written) {
		t.Fatalf("shards cover %d compact cells, want %d written", len(got), len(written))
	}
	for c, v := range got {
		if v != whole.ValuesInt[c] {
			t.Fatalf("compact cell %d: sharded %d, whole %d", c, v, whole.ValuesInt[c])
		}
	}
}
