package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"indexedrec/ir"
)

// The compiled-plan LRU cache. Production traffic often re-solves one loop
// shape with fresh data every timestep, and the structure-only half of a
// solve — chain decomposition, the CAP dependence DAG and path counts, the
// Möbius shadow rewrite — depends only on the index maps. The server
// compiles that half once into a plan keyed by its canonical fingerprint
// (ir.PlanFingerprint over family, n, m, g, f, h) and replays it for every
// request with the same shape; replays are bit-identical to direct solves.
// The cache is bounded by plan SizeBytes, evicts least-recently-used
// entries, and is observable as irserved_plan_cache_{hits,misses,
// evictions}_total and irserved_plan_cache_bytes.

// CachedPlan is what the cache stores: a compiled plan of any family that
// can report its resident size (*ir.Plan, *moebius.Plan).
type CachedPlan interface {
	SizeBytes() int64
}

// PlanCache is a size-accounted LRU of compiled plans, keyed by fingerprint.
// All methods are safe for concurrent use; a nil *PlanCache means caching is
// disabled (see PlanFor).
type PlanCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions *Counter
	bytesGauge              *Gauge
}

type planEntry struct {
	key  string
	plan CachedPlan
	size int64
}

// PlanCacheMetrics wires a cache's observability: hit/miss/eviction
// counters and a resident-bytes gauge. Any field may be nil (unobserved).
// The cache is shared with internal/cluster, whose coordinator keys the
// same plans under ircluster_* metric names.
type PlanCacheMetrics struct {
	// Hits, Misses and Evictions count cache outcomes.
	Hits, Misses, Evictions *Counter
	// Bytes tracks resident plan bytes.
	Bytes *Gauge
}

// NewPlanCache builds a cache bounded by maxBytes (> 0).
func NewPlanCache(maxBytes int64, m PlanCacheMetrics) *PlanCache {
	return &PlanCache{
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		hits:       m.Hits,
		misses:     m.Misses,
		evictions:  m.Evictions,
		bytesGauge: m.Bytes,
	}
}

func inc(c *Counter) {
	if c != nil {
		c.Inc()
	}
}

// Get returns the cached plan for key, marking it most recently used.
func (c *PlanCache) Get(key string) (CachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		inc(c.misses)
		return nil, false
	}
	c.ll.MoveToFront(el)
	inc(c.hits)
	return el.Value.(*planEntry).plan, true
}

// Put inserts a compiled plan, evicting LRU entries until the byte bound
// holds again. A plan larger than the whole cache is not stored (it would
// evict everything for a single use). Re-inserting an existing key keeps the
// already-cached plan: equal fingerprints mean interchangeable plans.
func (c *PlanCache) Put(key string, plan CachedPlan) {
	size := plan.SizeBytes()
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&planEntry{key: key, plan: plan, size: size})
	c.items[key] = el
	c.bytes += size
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil || back == el {
			break
		}
		ent := back.Value.(*planEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= ent.size
		inc(c.evictions)
	}
	if c.bytesGauge != nil {
		c.bytesGauge.Set(c.bytes)
	}
}

// Len reports the entry count (tests and diagnostics).
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// PlanFor resolves a plan by fingerprint: cache hit, or compile (on the
// calling worker goroutine, under the request ctx) and insert. Concurrent
// misses on one key may compile twice; the first insert wins and the
// duplicate is dropped, which is harmless because equal fingerprints mean
// interchangeable plans. A nil cache (caching disabled) compiles every time.
func PlanFor[P CachedPlan](c *PlanCache, ctx context.Context, key string, compile func(context.Context) (P, error)) (P, error) {
	if c != nil {
		if v, ok := c.Get(key); ok {
			if p, ok := v.(P); ok {
				return p, nil
			}
			// A fingerprint can only collide across plan types if the hash
			// itself collides; recompile rather than misreplay.
		}
	}
	p, err := compile(ctx)
	if err != nil {
		var zero P
		return zero, err
	}
	if c != nil {
		c.Put(key, p)
	}
	return p, nil
}

// solveOrdinary runs one ordinary-family solve, through the plan cache when
// it is enabled and directly otherwise. Replayed results are bit-identical
// to ir.SolveOrdinaryCtx by the plan layer's contract.
func solveOrdinary[T any](ctx context.Context, s *Server, sys *ir.System, op ir.Semigroup[T], init []T, opt ir.SolveOptions) (*ir.OrdinaryResult[T], error) {
	if s.plans == nil {
		return ir.SolveOrdinaryCtx[T](ctx, sys, op, init, opt)
	}
	fp := ir.PlanFingerprint(ir.FamilyOrdinary, sys.N, sys.M, sys.G, sys.F, nil, 0)
	p, err := PlanFor(s.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
		return ir.CompileCtx(ctx, sys, ir.CompileOptions{Family: ir.FamilyOrdinary, Procs: opt.Procs})
	})
	if err != nil {
		return nil, err
	}
	return ir.SolveOrdinaryPlanCtx[T](ctx, p, op, init, opt)
}

// solveSparseOrdinary runs one sparse ordinary-family solve. With the sparse
// fast path enabled it resolves a compact plan through the cache — keyed by
// the sparse fingerprint, so plans are sized by the touched count and every
// same-shaped request replays them — and replays it over compact init. With
// the path disabled (ir.SetSparseEnabled kill switch) it expands to the
// dense form and solves that, bit-identically, provided the global size fits
// the server's dense limit. Each solve increments
// irserved_sparse_solves_total with the mode it took.
func solveSparseOrdinary[T any](ctx context.Context, s *Server, sp *ir.SparseSystem, op ir.Semigroup[T], init []T, opt ir.SolveOptions) (*ir.OrdinaryResult[T], error) {
	if !ir.SparseEnabled() {
		if sp.M > s.cfg.MaxN {
			return nil, fmt.Errorf("%w: global m = %d exceeds the server limit %d while the sparse fast path is disabled",
				ir.ErrInvalidSystem, sp.M, s.cfg.MaxN)
		}
		s.metrics.sparseSolves.Inc("dense-fallback")
		return ir.SolveSparseOrdinaryCtx[T](ctx, sp, op, init, opt)
	}
	s.metrics.sparseSolves.Inc("sparse")
	if s.plans == nil {
		return ir.SolveOrdinaryCtx[T](ctx, sp.Compact, op, init, opt)
	}
	fp := ir.SparseFingerprint(ir.FamilyOrdinary, sp, 0)
	p, err := PlanFor(s.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
		return ir.CompileSparseCtx(ctx, sp, ir.CompileOptions{Family: ir.FamilyOrdinary, Procs: opt.Procs})
	})
	if err != nil {
		return nil, err
	}
	return ir.SolveOrdinaryPlanCtx[T](ctx, p, op, init, opt)
}

// solveSparseGeneral is solveSparseOrdinary's general-family counterpart.
// Power traces name global cells on every path (the plan replay's compact
// sink ids are remapped through the plan's touched-cell list).
func solveSparseGeneral[T any](ctx context.Context, s *Server, sp *ir.SparseSystem, op ir.CommutativeMonoid[T], init []T, opt ir.SolveOptions) (*ir.GeneralResult[T], error) {
	if !ir.SparseEnabled() {
		if sp.M > s.cfg.MaxN {
			return nil, fmt.Errorf("%w: global m = %d exceeds the server limit %d while the sparse fast path is disabled",
				ir.ErrInvalidSystem, sp.M, s.cfg.MaxN)
		}
		s.metrics.sparseSolves.Inc("dense-fallback")
		return ir.SolveSparseGeneralCtx[T](ctx, sp, op, init, opt)
	}
	s.metrics.sparseSolves.Inc("sparse")
	if s.plans == nil {
		return ir.SolveSparseGeneralCtx[T](ctx, sp, op, init, opt)
	}
	fp := ir.SparseFingerprint(ir.FamilyGeneral, sp, opt.MaxExponentBits)
	p, err := PlanFor(s.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
		return ir.CompileSparseCtx(ctx, sp, ir.CompileOptions{
			Family:          ir.FamilyGeneral,
			Procs:           opt.Procs,
			MaxExponentBits: opt.MaxExponentBits,
		})
	})
	if err != nil {
		return nil, err
	}
	res, err := ir.SolveGeneralPlanCtx[T](ctx, p, op, init, opt)
	if err != nil {
		return nil, err
	}
	cells := p.TouchedCells()
	for _, terms := range res.Powers {
		for k := range terms {
			terms[k].Cell = cells[terms[k].Cell]
		}
	}
	return res, nil
}

// solveGrid2D runs one grid2d-family solve through the plan cache: grid
// plans depend only on (rows, cols, semiring, term mask), so repeated DP
// sweeps over the same shape reuse the compiled wavefront schedule and its
// pooled arenas.
func solveGrid2D(ctx context.Context, s *Server, sys *ir.Grid2DSystem, opt ir.SolveOptions) (*ir.Grid2DResult, error) {
	if s.plans == nil {
		return ir.SolveGrid2DCtx(ctx, sys, opt)
	}
	fp, err := ir.Grid2DFingerprint(sys)
	if err != nil {
		return nil, err
	}
	p, err := PlanFor(s.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
		return ir.CompileGrid2DCtx(ctx, sys)
	})
	if err != nil {
		return nil, err
	}
	return ir.SolveGrid2DPlanCtx(ctx, p, sys, opt)
}

// solveGeneral is solveOrdinary's general-family counterpart. The effective
// MaxExponentBits is part of the fingerprint because it changes the compiled
// CAP counts.
func solveGeneral[T any](ctx context.Context, s *Server, sys *ir.System, op ir.CommutativeMonoid[T], init []T, opt ir.SolveOptions) (*ir.GeneralResult[T], error) {
	if s.plans == nil {
		return ir.SolveGeneralCtx[T](ctx, sys, op, init, opt)
	}
	fp := ir.PlanFingerprint(ir.FamilyGeneral, sys.N, sys.M, sys.G, sys.F, sys.H, opt.MaxExponentBits)
	p, err := PlanFor(s.plans, ctx, fp, func(ctx context.Context) (*ir.Plan, error) {
		return ir.CompileCtx(ctx, sys, ir.CompileOptions{
			Family:          ir.FamilyGeneral,
			Procs:           opt.Procs,
			MaxExponentBits: opt.MaxExponentBits,
		})
	})
	if err != nil {
		return nil, err
	}
	return ir.SolveGeneralPlanCtx[T](ctx, p, op, init, opt)
}
