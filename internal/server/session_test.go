package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"indexedrec/ir"
)

// sessionParts builds an n-iteration ordinary workload over m cells (n must
// be <= m: the ordinary family writes each cell at most once across the
// whole stream, so prefixes and appended suffixes share one permutation).
func sessionParts(rng *rand.Rand, m, n int) (g, f []int) {
	g = rng.Perm(m)[:n]
	f = make([]int, n)
	for i := range f {
		f[i] = rng.Intn(m)
	}
	return g, f
}

func del(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestSessionStreamBitIdentical opens an ordinary integer session, streams
// 100 appends into it, and asserts the final state is bit-identical to a
// one-shot solve of the concatenated system — the CI smoke contract — plus
// the session metrics moved.
func TestSessionStreamBitIdentical(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(7))
	const m, n0, appends, k = 1000, 100, 100, 8
	g, f := sessionParts(rng, m, n0+appends*k)
	init := make([]int64, m)
	for i := range init {
		init[i] = rng.Int63n(1 << 30)
	}
	rawInit, _ := json.Marshal(init)

	resp, data := post(t, ts.URL+SessionPrefix, SessionOpenRequest{
		Family: "ordinary",
		System: ir.SystemWire{M: m, N: n0, G: g[:n0], F: f[:n0]},
		Op:     "int64-add",
		Init:   rawInit,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: HTTP %d: %s", resp.StatusCode, data)
	}
	var open SessionOpenResponse
	if err := json.Unmarshal(data, &open); err != nil {
		t.Fatal(err)
	}
	if open.ID == "" || open.N != n0 || open.Family != "ordinary" {
		t.Fatalf("open response %+v", open)
	}

	at := n0
	for a := 0; a < appends; a++ {
		resp, data := post(t, ts.URL+SessionPrefix+"/"+open.ID+"/append", SessionAppendRequest{
			G: g[at : at+k], F: f[at : at+k],
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: HTTP %d: %s", a, resp.StatusCode, data)
		}
		var ar SessionAppendResponse
		if err := json.Unmarshal(data, &ar); err != nil {
			t.Fatal(err)
		}
		if len(ar.ValuesInt) != k || ar.N != at+k {
			t.Fatalf("append %d: got %d values, n = %d", a, len(ar.ValuesInt), ar.N)
		}
		at += k
	}

	resp, data = post(t, ts.URL+APIPrefix+"ordinary", OrdinaryRequest{
		System: ir.SystemWire{M: m, N: at, G: g[:at], F: f[:at]},
		Op:     "int64-add",
		Init:   rawInit,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one-shot: HTTP %d: %s", resp.StatusCode, data)
	}
	var cold OrdinaryResponse
	if err := json.Unmarshal(data, &cold); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+SessionPrefix+"/"+open.ID, nil)
	gresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var state SessionStateResponse
	if err := json.NewDecoder(gresp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if state.N != at {
		t.Fatalf("state n = %d, want %d", state.N, at)
	}
	for x := range cold.ValuesInt {
		if state.ValuesInt[x] != cold.ValuesInt[x] {
			t.Fatalf("cell %d: session %d, one-shot %d", x, state.ValuesInt[x], cold.ValuesInt[x])
		}
	}

	if v := s.metrics.sessionAppends.Value(); v < appends {
		t.Fatalf("irserved_session_appends_total = %d, want >= %d", v, appends)
	}
	if v := s.metrics.sessions.Value("open"); v != 1 {
		t.Fatalf("irserved_sessions{state=open} = %d, want 1", v)
	}

	if resp := del(t, ts.URL+SessionPrefix+"/"+open.ID); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	if v := s.metrics.sessions.Value("open"); v != 0 {
		t.Fatalf("after delete, irserved_sessions{state=open} = %d", v)
	}
}

// TestSessionErrorPaths covers the API error contract: unknown IDs answer
// 404 on every session endpoint, appends after close answer 404, an
// oversized append answers 413, an invalid family 400, and a per-append
// deadline maps to 504 exactly like the solve endpoints.
func TestSessionErrorPaths(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{MaxRequestBytes: 4 << 10, Workers: 1})

	// Unknown IDs.
	if resp, _ := post(t, ts.URL+SessionPrefix+"/nope/append", SessionAppendRequest{G: []int{0}, F: []int{0}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append unknown: HTTP %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+SessionPrefix+"/nope", nil)
	gresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown: HTTP %d", gresp.StatusCode)
	}
	if resp := del(t, ts.URL+SessionPrefix+"/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown: HTTP %d", resp.StatusCode)
	}

	// Invalid family.
	if resp, data := post(t, ts.URL+SessionPrefix, SessionOpenRequest{Family: "quantum"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad family: HTTP %d: %s", resp.StatusCode, data)
	}

	// A linear session: X[i+1] := X[i] + 1 prefix, then appends.
	resp, data := post(t, ts.URL+SessionPrefix, SessionOpenRequest{
		Family: "linear",
		M:      8, G: []int{1, 2}, F: []int{0, 1},
		A: []float64{1, 1}, B: []float64{1, 1},
		X0: []float64{1, 0, 0, 0, 0, 0, 0, 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open linear: HTTP %d: %s", resp.StatusCode, data)
	}
	var open SessionOpenResponse
	if err := json.Unmarshal(data, &open); err != nil {
		t.Fatal(err)
	}
	resp, data = post(t, ts.URL+SessionPrefix+"/"+open.ID+"/append", SessionAppendRequest{
		G: []int{3, 4}, F: []int{2, 3}, A: []float64{1, 1}, B: []float64{1, 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append linear: HTTP %d: %s", resp.StatusCode, data)
	}
	var ar SessionAppendResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Values) != 2 || ar.Values[0] != 4 || ar.Values[1] != 5 {
		t.Fatalf("append linear values = %v, want [4 5]", ar.Values)
	}

	// Oversized append: blow past MaxRequestBytes, expect 413 (not the
	// solve endpoints' 400).
	big := make([]int, 4096)
	if resp, _ := post(t, ts.URL+SessionPrefix+"/"+open.ID+"/append", SessionAppendRequest{G: big, F: big}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized append: HTTP %d, want 413", resp.StatusCode)
	}

	// Per-append deadline: hold the single worker so the 1ms deadline
	// fires while queued.
	s.testHook = func() { time.Sleep(50 * time.Millisecond) }
	resp, data = post(t, ts.URL+SessionPrefix+"/"+open.ID+"/append", SessionAppendRequest{
		G: []int{5}, F: []int{4}, A: []float64{1}, B: []float64{1},
		Opts: ir.OptionsWire{TimeoutMs: 1},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline append: HTTP %d: %s, want 504", resp.StatusCode, data)
	}
	// The hook stays set: the abandoned job may still be reading it on the
	// worker goroutine (the 504 answered before the job finished).

	// Appends after close answer 404.
	if resp := del(t, ts.URL+SessionPrefix+"/"+open.ID); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+SessionPrefix+"/"+open.ID+"/append", SessionAppendRequest{
		G: []int{5}, F: []int{4}, A: []float64{1}, B: []float64{1},
	}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append after close: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestSessionIdleTTLEviction proves the store's idle sweeper evicts a
// neglected session and the API then reports it gone, with the eviction
// metric moving.
func TestSessionIdleTTLEviction(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{SessionTTL: 30 * time.Millisecond})
	resp, data := post(t, ts.URL+SessionPrefix, SessionOpenRequest{
		Family: "linear",
		M:      4, G: []int{1}, F: []int{0},
		A: []float64{1}, B: []float64{1}, X0: []float64{1, 0, 0, 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: HTTP %d: %s", resp.StatusCode, data)
	}
	var open SessionOpenResponse
	if err := json.Unmarshal(data, &open); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for s.sessions.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.sessions.Len(); n != 0 {
		t.Fatalf("session not evicted, store len %d", n)
	}
	if resp, _ := post(t, ts.URL+SessionPrefix+"/"+open.ID+"/append", SessionAppendRequest{
		G: []int{2}, F: []int{1}, A: []float64{1}, B: []float64{1},
	}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append after eviction: HTTP %d, want 404", resp.StatusCode)
	}
	if v := s.metrics.sessionEvictions.Value(); v < 1 {
		t.Fatalf("irserved_session_evictions_total = %d, want >= 1", v)
	}
}

// TestSessionDrainClosesSessions proves graceful shutdown closes every live
// session (the SIGTERM contract) and later appends are refused.
func TestSessionDrainClosesSessions(t *testing.T) {
	s, ts, down := newTestServer(t, Config{})
	resp, data := post(t, ts.URL+SessionPrefix, SessionOpenRequest{
		Family: "linear",
		M:      4, G: []int{1}, F: []int{0},
		A: []float64{1}, B: []float64{1}, X0: []float64{1, 0, 0, 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: HTTP %d: %s", resp.StatusCode, data)
	}
	var open SessionOpenResponse
	if err := json.Unmarshal(data, &open); err != nil {
		t.Fatal(err)
	}
	down()
	if n := s.sessions.Len(); n != 0 {
		t.Fatalf("after drain, store len %d", n)
	}
	if v := s.metrics.sessions.Value("open"); v != 0 {
		t.Fatalf("after drain, irserved_sessions{state=open} = %d", v)
	}
}

// TestSessionSurvivesPlanCacheEviction opens a session whose plan came
// through the plan cache, churns the cache until that plan is evicted, and
// proves the session still appends correctly — it holds its own plan
// reference, so cache eviction can never invalidate a live stream.
func TestSessionSurvivesPlanCacheEviction(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{PlanCacheBytes: 64 << 10})
	rng := rand.New(rand.NewSource(11))
	const m, n0, step = 128, 32, 32
	g, f := sessionParts(rng, m, m)
	init := make([]int64, m)
	for i := range init {
		init[i] = int64(i)
	}
	rawInit, _ := json.Marshal(init)
	resp, data := post(t, ts.URL+SessionPrefix, SessionOpenRequest{
		Family: "ordinary",
		System: ir.SystemWire{M: m, N: n0, G: g[:n0], F: f[:n0]},
		Op:     "int64-add",
		Init:   rawInit,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: HTTP %d: %s", resp.StatusCode, data)
	}
	var open SessionOpenResponse
	if err := json.Unmarshal(data, &open); err != nil {
		t.Fatal(err)
	}

	// Churn: 8 distinct ~21 KiB shapes through a 64 KiB cache evict the
	// session's entry. No cache Get of the session's key in the loop — a
	// hit would refresh its LRU position and defeat the churn.
	for size := 0; size < 8; size++ {
		n := 512 + size
		cg, cf := sessionParts(rng, n+1, n)
		ci := make([]int64, n+1)
		ciRaw, _ := json.Marshal(ci)
		resp, data := post(t, ts.URL+APIPrefix+"ordinary", OrdinaryRequest{
			System: ir.SystemWire{M: n + 1, N: n, G: cg, F: cf},
			Op:     "int64-add",
			Init:   ciRaw,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("churn %d: HTTP %d: %s", size, resp.StatusCode, data)
		}
	}
	if _, ok := s.plans.Get(open.Fingerprint); ok {
		t.Fatal("churn failed to evict the session's plan from the cache")
	}

	at := n0
	for at < m {
		resp, data := post(t, ts.URL+SessionPrefix+"/"+open.ID+"/append", SessionAppendRequest{
			G: g[at : at+step], F: f[at : at+step],
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append: HTTP %d: %s", resp.StatusCode, data)
		}
		at += step
	}
	resp, data = post(t, ts.URL+APIPrefix+"ordinary", OrdinaryRequest{
		System: ir.SystemWire{M: m, N: at, G: g[:at], F: f[:at]},
		Op:     "int64-add",
		Init:   rawInit,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one-shot: HTTP %d: %s", resp.StatusCode, data)
	}
	var cold OrdinaryResponse
	if err := json.Unmarshal(data, &cold); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+SessionPrefix+"/"+open.ID, nil)
	gresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var state SessionStateResponse
	if err := json.NewDecoder(gresp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	for x := range cold.ValuesInt {
		if state.ValuesInt[x] != cold.ValuesInt[x] {
			t.Fatalf("cell %d: session %d, one-shot %d", x, state.ValuesInt[x], cold.ValuesInt[x])
		}
	}
}

// TestSessionMetricsExposition asserts the new session series appear in the
// Prometheus text format.
func TestSessionMetricsExposition(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"irserved_sessions", "irserved_session_appends_total",
		"irserved_session_evictions_total", "irserved_session_bytes",
		"irserved_session_append_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
}
