package server

import (
	"context"
	"time"

	"indexedrec/internal/moebius"
	"indexedrec/internal/ordinary"
)

// The batch coalescer: Möbius-family requests (linear, extended, full
// fractional-linear) arriving close together are collected and dispatched as
// ONE moebius.SolveBatchCtx sweep — the Livermore-23 shape, where many small
// independent chain systems amortize scheduling and share the worker pool's
// parallelism. A batch closes when either the window timer fires (counted
// from the first request of the batch) or the batch reaches maxBatch,
// whichever comes first.

// batchItem is one coalescable request.
type batchItem struct {
	ms  *moebius.MoebiusSystem
	x0  []float64
	ctx context.Context
	// fp is the plan-cache fingerprint of (m, g, f); empty when the plan
	// cache is disabled.
	fp string
	// res receives exactly one result; buffered so a worker never blocks
	// on a requester that gave up.
	res chan batchResult
}

type batchResult struct {
	values []float64
	// size is the number of requests coalesced into the dispatch.
	size int
	err  error
}

type coalescer struct {
	in       chan *batchItem
	window   time.Duration
	maxBatch int
	dispatch func(items []*batchItem)
	done     chan struct{}
}

// newCoalescer starts the collector loop. dispatch is called with each
// closed batch (len >= 1) and must not block forever.
func newCoalescer(depth, maxBatch int, window time.Duration, dispatch func([]*batchItem)) *coalescer {
	c := &coalescer{
		in:       make(chan *batchItem, depth),
		window:   window,
		maxBatch: maxBatch,
		dispatch: dispatch,
		done:     make(chan struct{}),
	}
	go c.loop()
	return c
}

func (c *coalescer) loop() {
	defer close(c.done)
	var pending []*batchItem
	var timer *time.Timer
	var timerC <-chan time.Time
	flush := func() {
		if len(pending) > 0 {
			c.dispatch(pending)
			pending = nil
		}
		if timer != nil {
			timer.Stop()
			timer = nil
		}
		timerC = nil
	}
	for {
		select {
		case it, ok := <-c.in:
			if !ok {
				flush()
				return
			}
			pending = append(pending, it)
			if len(pending) == 1 {
				timer = time.NewTimer(c.window)
				timerC = timer.C
			}
			if len(pending) >= c.maxBatch {
				flush()
			}
		case <-timerC:
			timer = nil
			flush()
		}
	}
}

// close stops intake, flushes the pending batch, and waits for the
// collector to exit. Dispatched batches may still be executing on the
// worker pool; the pool's own close waits for those.
func (c *coalescer) close() {
	close(c.in)
	<-c.done
}

// runBatch executes one coalesced batch on a worker; base is the job
// context the worker delivered (the server lifetime, carrying the worker's
// gang). The happy path is a single SolveBatchCtx sweep; because every item
// was validated at admission, a sweep error means either cancellation or a
// data-dependent failure (division by zero along one item's chain), so on
// error the batch falls back to solving items individually — one poisoned
// request must not fail its batch neighbors.
func (s *Server) runBatch(base context.Context, items []*batchItem) {
	// Requests whose caller already gave up are answered (they are waited
	// on) but excluded from the sweep.
	live := items[:0:0]
	for _, it := range items {
		if err := it.ctx.Err(); err != nil {
			it.res <- batchResult{err: err}
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}
	s.metrics.batches.Inc()
	s.metrics.batchSize.Observe(float64(len(live)))

	// The sweep runs under the job ctx bounded by the latest item deadline,
	// so one slow batch cannot outlive every caller.
	ctx, cancel := batchContext(base, live)
	defer cancel()

	systems := make([]*moebius.MoebiusSystem, len(live))
	x0s := make([][]float64, len(live))
	for k, it := range live {
		systems[k] = it.ms
		x0s[k] = it.x0
	}
	opt := ordinary.Options{Procs: s.cfg.Procs}

	// Plan path: resolve each item's compiled plan (items coalesced together
	// usually share one shape, so after the first miss the rest hit the
	// cache) and sweep through them. A compile failure — only cancellation
	// can cause one here, admission already validated the maps — drops the
	// batch to the plan-less sweep below, which reports it per item.
	if s.plans != nil {
		plans := make([]*moebius.Plan, len(live))
		planned := true
		for k, it := range live {
			p, err := PlanFor(s.plans, ctx, it.fp, func(ctx context.Context) (*moebius.Plan, error) {
				return moebius.CompilePlan(ctx, it.ms.M, it.ms.G, it.ms.F)
			})
			if err != nil {
				planned = false
				break
			}
			plans[k] = p
		}
		if planned {
			out, err := moebius.SolveBatchPlansCtx(ctx, plans, systems, x0s, opt)
			if err == nil {
				for k, it := range live {
					it.res <- batchResult{values: out[k], size: len(live)}
				}
				return
			}
			// Fallback: per-item replays under each item's own ctx, so one
			// poisoned request cannot fail its batch neighbors.
			s.metrics.batchFallbacks.Inc()
			for k, it := range live {
				v, ierr := plans[k].SolveCtx(it.ctx, it.ms.A, it.ms.B, it.ms.C, it.ms.D, it.x0, opt)
				it.res <- batchResult{values: v, size: len(live), err: ierr}
			}
			return
		}
	}

	out, err := moebius.SolveBatchCtx(ctx, systems, x0s, opt)
	if err == nil {
		for k, it := range live {
			it.res <- batchResult{values: out[k], size: len(live)}
		}
		return
	}

	// Fallback: per-item solves under each item's own ctx.
	s.metrics.batchFallbacks.Inc()
	for _, it := range live {
		v, ierr := it.ms.SolveCtx(it.ctx, it.x0, opt)
		it.res <- batchResult{values: v, size: len(live), err: ierr}
	}
}

// batchContext derives the sweep context from base (the worker's job ctx),
// bounded by the latest deadline among the batch items (every item carries
// one — the handler applied the server default if the client didn't ask).
func batchContext(base context.Context, items []*batchItem) (context.Context, context.CancelFunc) {
	var latest time.Time
	haveAll := true
	for _, it := range items {
		d, ok := it.ctx.Deadline()
		if !ok {
			haveAll = false
			break
		}
		if d.After(latest) {
			latest = d
		}
	}
	if haveAll {
		return context.WithDeadline(base, latest)
	}
	return context.WithCancel(base)
}
