package server

import (
	"math"
	"strings"
	"testing"
)

// checkExposition asserts text is valid Prometheus text exposition; the
// checks live in the exported ValidateExposition so the cluster tests and
// CI smoke scripts validate through the same gate.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_ops_total", "Total ops.")
	c.Add(3)
	cv := reg.NewCounterVec("test_requests_total", "Requests.", "endpoint", "code")
	cv.Inc("linear", "200")
	cv.Inc("linear", "200")
	cv.Inc("moebius", "429")
	g := reg.NewGauge("test_depth", "Depth.")
	g.Set(7)
	reg.NewGaugeFunc("test_live", "Live reading.", func() float64 { return 2.5 })
	h := reg.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	hv := reg.NewHistogramVec("test_batch", "Batch sizes.", []float64{1, 2, 4}, "endpoint")
	hv.With("linear").Observe(1)
	hv.With("linear").Observe(3)
	hv.With("moebius").Observe(8)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	checkExposition(t, text)

	for _, want := range []string{
		"test_ops_total 3",
		`test_requests_total{code="200",endpoint="linear"} 2`,
		`test_requests_total{code="429",endpoint="moebius"} 1`,
		"test_depth 7",
		"test_live 2.5",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="10"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		`test_batch_bucket{endpoint="linear",le="1"} 1`,
		`test_batch_bucket{endpoint="linear",le="4"} 2`,
		`test_batch_bucket{endpoint="moebius",le="+Inf"} 1`,
		`test_batch_sum{endpoint="linear"} 4`,
		`test_batch_count{endpoint="moebius"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestHistogramMaxObservedBound(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("t", "t.", []float64{1, 2, 4})
	if got := h.MaxObservedBound(); got != 0 {
		t.Fatalf("empty histogram: MaxObservedBound = %v, want 0", got)
	}
	h.Observe(1)
	if got := h.MaxObservedBound(); got != 1 {
		t.Fatalf("after Observe(1): MaxObservedBound = %v, want 1", got)
	}
	h.Observe(3)
	if got := h.MaxObservedBound(); got != 4 {
		t.Fatalf("after Observe(3): MaxObservedBound = %v, want 4", got)
	}
	h.Observe(100)
	if got := h.MaxObservedBound(); !math.IsInf(got, 1) {
		t.Fatalf("after Observe(100): MaxObservedBound = %v, want +Inf", got)
	}
	if h.Count() != 3 || h.Sum() != 104 {
		t.Fatalf("Count/Sum = %d/%v, want 3/104", h.Count(), h.Sum())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		7:            "7",
		2.5:          "2.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		-3:           "-3",
		0.000125:     "0.000125",
		1e18:         "1e+18",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}
